module oagrid

go 1.24
