package oagrid

import (
	"errors"

	"oagrid/internal/grid"
)

// The typed error taxonomy of the campaign API. Errors returned by
// Handle.Wait (and surfaced as EventResult.Err) wrap exactly one of these
// sentinels, so callers branch with errors.Is instead of string-matching
// messages from internal packages they cannot import.
var (
	// ErrRejected reports an admission-control rejection: the daemon's
	// bounded campaign queue was full. Back off and retry.
	ErrRejected = grid.ErrRejected
	// ErrQuotaExceeded reports an admission rejected because the
	// submitting tenant's own queue quota was exhausted. It wraps
	// ErrRejected — existing retry loops keep working — but retrying helps
	// only once the tenant's earlier campaigns drain.
	ErrQuotaExceeded = grid.ErrQuotaExceeded
	// ErrCampaignFailed reports a campaign that was accepted but could not
	// run to completion — a timeout, a shutdown, no live cluster, or a
	// planning/evaluation failure. The wrapping error carries the reason.
	ErrCampaignFailed = grid.ErrCampaignFailed
	// ErrProtocol reports a wire-level violation talking to a daemon: a
	// missing or malformed frame, or an incompatible protocol version.
	// Retrying the same exchange cannot succeed.
	ErrProtocol = grid.ErrProtocol
	// ErrUnknownCampaign reports an Attach to a campaign ID the runner does
	// not know — never admitted, pruned past the daemon's retention cap, or
	// issued by a different runner/state dir. Resubmit instead of retrying.
	ErrUnknownCampaign = grid.ErrUnknownCampaign
	// ErrCampaignCancelled reports a campaign stopped by Runner.Cancel.
	// Waiting on it — or attaching to it, even after a restart on a state
	// dir — resolves with this error; the cancellation is terminal, so
	// resubmit if the work is still wanted.
	ErrCampaignCancelled = grid.ErrCampaignCancelled
	// ErrUnreachable reports an exchange that no daemon answered: every ring
	// member was down or unreachable at the transport level. Back off and
	// retry, or check the deployment.
	ErrUnreachable = grid.ErrUnreachable
	// ErrInvalidConfig reports a malformed setup handed to a constructor or
	// planner entry point — no clusters, an empty grid. Fix the
	// configuration; retrying cannot succeed.
	ErrInvalidConfig = errors.New("oagrid: invalid configuration")
)
