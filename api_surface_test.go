package oagrid

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// apiGolden is the committed snapshot of the package's exported surface.
// The gate exists so a future PR cannot silently break the v1 client API:
// any change to an exported type, function, method, constant or variable of
// package oagrid fails this test until the snapshot is regenerated —
// deliberately — with:
//
//	UPDATE_API_SURFACE=1 go test -run TestAPISurfaceGolden .
const apiGolden = "testdata/api_surface.golden"

// TestAPISurfaceGolden renders every exported declaration of the package
// (comment-free, sorted) and compares it against the committed snapshot.
func TestAPISurfaceGolden(t *testing.T) {
	got := renderAPISurface(t)
	if os.Getenv("UPDATE_API_SURFACE") != "" {
		if err := os.MkdirAll(filepath.Dir(apiGolden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiGolden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", apiGolden)
		return
	}
	want, err := os.ReadFile(apiGolden)
	if err != nil {
		t.Fatalf("missing API snapshot (run with UPDATE_API_SURFACE=1 to create it): %v", err)
	}
	if string(want) == got {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	seen := make(map[string]bool, len(wantLines))
	for _, l := range wantLines {
		seen[l] = true
	}
	for _, l := range gotLines {
		if !seen[l] {
			t.Errorf("surface gained: %s", l)
		}
	}
	seen = make(map[string]bool, len(gotLines))
	for _, l := range gotLines {
		seen[l] = true
	}
	for _, l := range wantLines {
		if !seen[l] {
			t.Errorf("surface lost: %s", l)
		}
	}
	t.Fatalf("exported API surface changed; review the diff above and, if intended, regenerate with UPDATE_API_SURFACE=1 go test -run TestAPISurfaceGolden .")
}

// renderAPISurface parses the package in the current directory and prints
// its exported declarations, one per block, sorted.
func renderAPISurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["oagrid"]
	if !ok {
		t.Fatalf("package oagrid not found; parsed %v", pkgs)
	}

	var blocks []string
	render := func(node any) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, node); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	// Deterministic file order: map iteration must not reorder specs that
	// share a name prefix.
	files := make([]string, 0, len(pkg.Files))
	for name := range pkg.Files {
		files = append(files, name)
	}
	sort.Strings(files)

	for _, name := range files {
		for _, decl := range pkg.Files[name].Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedRecv(d.Recv) {
					continue
				}
				d.Doc, d.Body = nil, nil
				blocks = append(blocks, render(d))
			case *ast.GenDecl:
				d.Doc = nil
				var specs []ast.Spec
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							s.Doc, s.Comment = nil, nil
							stripUnexportedFields(s.Type)
							specs = append(specs, s)
						}
					case *ast.ValueSpec:
						exported := false
						for _, n := range s.Names {
							exported = exported || n.IsExported()
						}
						if exported {
							s.Doc, s.Comment = nil, nil
							specs = append(specs, s)
						}
					}
				}
				if len(specs) == 0 {
					continue
				}
				d.Specs = specs
				blocks = append(blocks, render(d))
			}
		}
	}
	sort.Strings(blocks)
	return strings.Join(blocks, "\n\n") + "\n"
}

// stripUnexportedFields removes unexported struct fields from a type
// expression: they are implementation detail, not API, and keeping them in
// the snapshot would trip the gate on pure refactors.
func stripUnexportedFields(typ ast.Expr) {
	st, ok := typ.(*ast.StructType)
	if !ok || st.Fields == nil {
		return
	}
	var kept []*ast.Field
	for _, f := range st.Fields.List {
		exported := len(f.Names) == 0 // embedded: keep; its name is its type
		for _, n := range f.Names {
			exported = exported || n.IsExported()
		}
		if exported {
			f.Doc, f.Comment = nil, nil
			kept = append(kept, f)
		}
	}
	st.Fields.List = kept
}

// exportedRecv reports whether a receiver (nil for plain functions) names
// an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if recv == nil {
		return true
	}
	if len(recv.List) != 1 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch t := typ.(type) {
		case *ast.StarExpr:
			typ = t.X
		case *ast.IndexExpr:
			typ = t.X
		case *ast.Ident:
			return t.IsExported()
		default:
			return false
		}
	}
}
