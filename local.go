package oagrid

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/diet"
	"oagrid/internal/engine"
	"oagrid/internal/grid"
	"oagrid/internal/store"
)

// localRunner drives campaigns through the in-process engine: performance
// vectors, Algorithm-1 repartition and per-cluster evaluation all run on the
// engine's deterministic parallel sweep pool. With WithStateDir it is also
// durable: campaign transitions are journaled to the same WAL format the
// grid daemon uses, finished campaigns stay attachable across process
// restarts, and half-finished ones are resumed on construction. It
// implements the full control plane — Cancel, List, Info — with the same
// semantics as a Dial runner, minus the queue: a local campaign dispatches
// immediately, so priority is recorded and reported but never reorders.
type localRunner struct {
	clusters []*Cluster
	cfg      runnerConfig
	store    *store.Store // nil without WithStateDir

	// ctx governs runner-owned goroutines (journal-recovered campaign
	// resumes); Close cancels it and waits for them, so no evaluation or
	// journal append outlives the store. Campaigns started through Run run
	// under the caller's context instead — their lifecycle is the caller's.
	ctx     context.Context
	cancel  context.CancelFunc
	resumes sync.WaitGroup

	mu        sync.Mutex
	nextID    uint64
	campaigns map[uint64]*localCampaign
	// order tracks insertion so pruning drops the oldest finished campaigns
	// first (mirroring the daemon's KeepFinished retention) and List
	// enumerates in admission order.
	order []uint64
}

// localCampaign is the runner's control-plane record of one campaign: its
// handle, its submit options, and the gauges Info and List report.
type localCampaign struct {
	handle    *Handle
	priority  int
	labels    map[string]string
	deadline  time.Duration
	heuristic string
	scenarios int
	months    int

	// cancel aborts the campaign's evaluation context; nil for campaigns
	// recovered in a terminal state.
	cancel context.CancelFunc

	mu sync.Mutex
	// claimed marks the terminal transition as owned — by Cancel or by the
	// run goroutine's completion/failure path, whichever wins; the loser
	// backs off, so the handle resolves exactly once and the journal gets
	// exactly one terminal record.
	claimed   bool
	cancelled bool
	// paused marks a campaign this process gave up on via ctx cancellation:
	// terminal here, non-terminal in the journal (a future open resumes it).
	paused   bool
	status   string
	done     int
	rounds   int
	requeues int
	makespan float64
	errMsg   string
}

// claim reserves the campaign's terminal transition; exactly one caller
// wins.
func (lc *localCampaign) claim() bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.claimed {
		return false
	}
	lc.claimed = true
	return true
}

// markCancelled flags the campaign as cancelled (the claim winner on the
// cancel path calls it before aborting the evaluation context).
func (lc *localCampaign) markCancelled() {
	lc.mu.Lock()
	lc.cancelled = true
	lc.status = StatusCancelled
	lc.mu.Unlock()
}

// cancelledNow reports whether a cancel owns the campaign.
func (lc *localCampaign) cancelledNow() bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.cancelled
}

// setTerminal records the campaign's final gauges.
func (lc *localCampaign) setTerminal(status string, makespan float64, errMsg string) {
	lc.mu.Lock()
	lc.status = status
	lc.makespan = makespan
	lc.errMsg = errMsg
	lc.mu.Unlock()
}

// setPaused records a ctx-cancel pause: terminal for this process (the
// handle resolved with ctx's error, and the daemon reports the matching
// drain as failed), but non-terminal in the journal — the next runner on
// the state dir resumes the campaign.
func (lc *localCampaign) setPaused(errMsg string) {
	lc.mu.Lock()
	lc.paused = true
	lc.status = StatusFailed
	lc.errMsg = errMsg
	lc.mu.Unlock()
}

// takePause consumes the paused flag for a late Cancel: the campaign flips
// to cancelled exactly once, and the caller owes the journal the terminal
// record.
func (lc *localCampaign) takePause() bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if !lc.paused {
		return false
	}
	lc.paused = false
	lc.cancelled = true
	lc.status = StatusCancelled
	lc.errMsg = ""
	return true
}

// addProgress folds one finished chunk (n scenarios) into the gauges. It
// reports false — and folds nothing — once a cancel owns the campaign: the
// gauges freeze at the cancel claim, and the caller discards the chunk
// instead of publishing it after the verdict.
func (lc *localCampaign) addProgress(n int) bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.claimed {
		return false
	}
	lc.done += n
	return true
}

// startRound records that repartition round r was planned.
func (lc *localCampaign) startRound(r int) {
	lc.mu.Lock()
	if r+1 > lc.rounds {
		lc.rounds = r + 1
	}
	lc.mu.Unlock()
}

// info snapshots the campaign's control-plane view.
func (lc *localCampaign) info(id uint64) CampaignInfo {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return CampaignInfo{
		ID:        id,
		Status:    lc.status,
		Priority:  lc.priority,
		Labels:    lc.labels,
		Heuristic: lc.heuristic,
		Scenarios: lc.scenarios,
		Months:    lc.months,
		Done:      lc.done,
		Total:     lc.scenarios,
		Rounds:    lc.rounds,
		Requeues:  lc.requeues,
		Makespan:  lc.makespan,
		Err:       lc.errMsg,
		// Tenant parity with the daemon: derive from the same default label
		// key. A local runner has no admission queue, so QueuePos and
		// WaitMs stay zero.
		Tenant: localTenant(lc.labels),
	}
}

// localTenant mirrors the daemon's tenant derivation (grid.DefaultTenantKey)
// for local campaigns.
func localTenant(labels map[string]string) string {
	if name := labels[grid.DefaultTenantKey]; name != "" {
		return name
	}
	return grid.DefaultTenant
}

// keepLocalHandles caps how many campaign records a local runner retains:
// beyond it, the oldest finished campaigns are dropped (running campaigns
// are never pruned). The daemon's Config.KeepFinished default, for the same
// reason: a long-lived embedder must not accumulate every event stream ever.
const keepLocalHandles = 4096

// register indexes a campaign for Attach/List/Info and prunes past the
// retention cap. Callers hold no lock.
func (r *localRunner) register(id uint64, lc *localCampaign) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.campaigns[id] = lc
	r.order = append(r.order, id)
	for len(r.campaigns) > keepLocalHandles {
		pruned := false
		for i, oid := range r.order {
			if c := r.campaigns[oid]; c != nil && c.handle.finished() {
				delete(r.campaigns, oid)
				r.order = append(r.order[:i], r.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			return // everything old is still running; try again next insert
		}
	}
}

// Local builds a Runner over the in-process engine and the given clusters —
// the same pipeline a grid daemon's SeD fleet runs, minus the wire. Clusters
// are ordered by name internally (the daemon's tie-break order), so a Local
// run of a campaign is bit-identical to a Dial run against a daemon serving
// the same cluster profiles, at default options.
//
// With WithStateDir, Local replays the journal found there first: terminal
// campaigns come back attachable under their original IDs with their full
// event history (a cancelled campaign stays cancelled), and non-terminal
// campaigns (a previous process died mid-run) are re-admitted in the
// background, re-running only the scenarios without a completed chunk.
// Records live for the runner's lifetime.
func Local(clusters []*Cluster, opts ...RunnerOption) (Runner, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("%w: Local needs at least one cluster", ErrInvalidConfig)
	}
	sorted := make([]*Cluster, len(clusters))
	copy(sorted, clusters)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, cl := range sorted {
		if err := cl.Validate(); err != nil {
			return nil, err
		}
	}
	cfg := newRunnerConfig(opts)
	if _, err := core.ByName(cfg.heuristic); err != nil {
		return nil, err
	}
	r := &localRunner{clusters: sorted, cfg: cfg, campaigns: make(map[uint64]*localCampaign)}
	r.ctx, r.cancel = context.WithCancel(context.Background())
	if cfg.stateDir != "" {
		st, byID, err := store.Open(cfg.stateDir)
		if err != nil {
			return nil, err
		}
		r.store = st
		r.nextID = store.MaxID(byID)
		recovered := store.ByID(byID)
		// Phase 1: rebuild every campaign (terminal ones resolve immediately)
		// and collect the campaigns that need resuming.
		var jobs []resumeJob
		for _, rc := range recovered {
			if job, ok := r.recover(rc); ok {
				jobs = append(jobs, job)
			}
		}
		// Compact the journal down to what recovery retained, exactly like
		// the daemon does at startup: pruned campaigns stay pruned across
		// reopens and the WAL stays bounded. Must run before any new append
		// — which is why resumes launch only afterwards.
		if len(recovered) > 0 {
			kept := make([]*store.Campaign, 0, len(recovered))
			r.mu.Lock()
			for _, rc := range recovered {
				if _, ok := r.campaigns[rc.ID]; ok {
					kept = append(kept, rc)
				}
			}
			r.mu.Unlock()
			_ = st.Compact(kept) // best-effort: the old journal replays the same
		}
		// Online rotation between restarts: once the live segment outgrows
		// the threshold, the journal is checkpointed down to the campaigns
		// still registered. Safe because the runner never journals while
		// holding r.mu.
		st.AutoRotate(localRotateBytes, r.retainedIDs)
		// Phase 2: resume the interrupted campaigns under the runner's own
		// lifecycle context, each behind its own cancel func so Runner.Cancel
		// aborts a resumed campaign's evaluation exactly like a fresh one's.
		for _, job := range jobs {
			runCtx, cancel := context.WithCancel(r.ctx)
			job.lc.cancel = cancel
			r.resumes.Add(1)
			go func(job resumeJob, runCtx context.Context, cancel context.CancelFunc) {
				defer r.resumes.Done()
				defer cancel()
				r.run(runCtx, job.lc, job.handle, job.app, job.h, job.p)
			}(job, runCtx, cancel)
		}
	}
	return r, nil
}

// localRotateBytes is the local runner's WAL rotation threshold, matching
// the daemon's Config.RotateBytes default.
const localRotateBytes = 4 << 20

// retainedIDs snapshots the campaign table's keys — the journal rotation's
// retention set. Runs under the store's lock; safe because the runner
// never journals while holding r.mu.
func (r *localRunner) retainedIDs() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return store.IDs(r.campaigns)
}

// resumeJob is one journal-recovered campaign waiting to continue.
type resumeJob struct {
	lc     *localCampaign
	handle *Handle
	app    core.Application
	h      core.Heuristic
	p      localProgress
}

// recover rebuilds one journaled campaign: its handle replays the full
// event history. Terminal campaigns resolve immediately; for a campaign
// without a terminal record it returns the resume job the caller launches
// once the journal is compacted.
func (r *localRunner) recover(rc *store.Campaign) (resumeJob, bool) {
	handle := newHandle(rc.Scenarios)
	handle.setID(rc.ID)
	lc := &localCampaign{
		handle:    handle,
		priority:  rc.Priority,
		labels:    rc.Labels,
		deadline:  rc.Deadline,
		heuristic: rc.Heuristic,
		scenarios: rc.Scenarios,
		months:    rc.Months,
		status:    StatusRunning,
		done:      rc.ScenariosDone,
		rounds:    rc.Rounds,
		requeues:  rc.Requeues,
	}
	r.register(rc.ID, lc)
	handle.publish(EventAdmitted{ID: rc.ID})
	for i := range rc.History {
		for _, ev := range progressEvents(&rc.History[i]) {
			handle.publish(ev)
		}
	}
	if rc.Terminal() {
		lc.claimed = true
		switch rc.Status {
		case diet.CampaignDone:
			lc.setTerminal(StatusDone, rc.Makespan, "")
			res := &CampaignResult{Makespan: rc.Makespan, Requeues: rc.Requeues}
			for _, rep := range rc.Reports {
				res.Reports = append(res.Reports, reportFromWire(rep))
			}
			// Chunk records are journaled in arrival order; the result the
			// original process returned was sorted.
			sortClusterReports(res.Reports)
			handle.finish(res, nil)
		case diet.CampaignCancelled:
			lc.cancelled = true
			lc.setTerminal(StatusCancelled, 0, "")
			handle.finish(nil, fmt.Errorf("%w: %d", ErrCampaignCancelled, rc.ID))
		default:
			lc.setTerminal(StatusFailed, 0, rc.Err)
			handle.finish(nil, fmt.Errorf("%w: %s", ErrCampaignFailed, rc.Err))
		}
		return resumeJob{}, false
	}
	app := core.Application{Scenarios: rc.Scenarios, Months: rc.Months}
	h, err := core.ByName(rc.Heuristic)
	if err != nil {
		lc.claimed = true
		lc.setTerminal(StatusFailed, 0, err.Error())
		handle.finish(nil, campaignErr(context.Background(), err))
		return resumeJob{}, false
	}
	reports := make([]ClusterReport, 0, len(rc.Reports))
	for _, rep := range rc.Reports {
		reports = append(reports, reportFromWire(rep))
	}
	return resumeJob{lc: lc, handle: handle, app: app, h: h, p: localProgress{
		round:     rc.Rounds,
		remaining: rc.Remaining,
		reports:   reports,
		done:      rc.ScenariosDone,
	}}, true
}

// Run implements Runner.
func (r *localRunner) Run(ctx context.Context, c Campaign, opts ...SubmitOption) (*Handle, error) {
	app := core.Application(c.Experiment)
	if err := app.Validate(); err != nil {
		return nil, err
	}
	sub := newSubmitConfig(opts)
	name := sub.heuristic
	if name == "" {
		name = c.Heuristic
	}
	if name == "" {
		name = r.cfg.heuristic
	}
	h, err := core.ByName(name)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	r.mu.Unlock()
	// The admission record must be durable before the handle exists: an ID
	// the caller holds has to survive a crash, or Attach after a restart
	// would deny a campaign this runner accepted. The submit options ride
	// along so recovery keeps them.
	if r.store != nil {
		if err := r.store.Append(store.Record{
			Kind:      store.KindAdmitted,
			ID:        id,
			Scenarios: app.Scenarios,
			Months:    app.Months,
			Heuristic: name,
			Priority:  sub.priority,
			Labels:    sub.labels,
			Deadline:  sub.deadline,
		}); err != nil {
			return nil, err
		}
	}
	handle := newHandle(app.Scenarios)
	handle.setID(id)
	runCtx, cancel := context.WithCancel(ctx)
	lc := &localCampaign{
		handle:    handle,
		priority:  sub.priority,
		labels:    sub.labels,
		deadline:  sub.deadline,
		heuristic: name,
		scenarios: app.Scenarios,
		months:    app.Months,
		cancel:    cancel,
		// No admission queue in-process: the campaign dispatches immediately.
		status: StatusRunning,
	}
	r.register(id, lc)
	handle.publish(EventAdmitted{ID: id})
	remaining := make([]int, app.Scenarios)
	for i := range remaining {
		remaining[i] = i
	}
	go func() {
		defer cancel()
		r.run(runCtx, lc, handle, app, h, localProgress{remaining: remaining})
	}()
	return handle, nil
}

// Attach implements Runner: it returns the handle of a campaign this runner
// started or recovered from its state dir. Handles replay their full event
// stream to every subscriber, so attaching late loses nothing. An unknown
// ID resolves the handle with ErrUnknownCampaign — the same shape the
// remote runner has, so callers can always go straight to Wait.
func (r *localRunner) Attach(ctx context.Context, id uint64) (*Handle, error) {
	r.mu.Lock()
	lc := r.campaigns[id]
	r.mu.Unlock()
	if lc == nil {
		handle := newHandle(0)
		handle.finish(nil, fmt.Errorf("%w: %d", ErrUnknownCampaign, id))
		return handle, nil
	}
	return lc.handle, nil
}

// Cancel implements Runner: it stops a campaign this runner owns. The
// cancellation is journaled terminally before Cancel returns (on a durable
// runner), the evaluation context is aborted — sweep workers stop between
// evaluations — and the handle resolves with ErrCampaignCancelled. An
// already-finished campaign is a no-op; an unknown ID is ErrUnknownCampaign.
func (r *localRunner) Cancel(ctx context.Context, id uint64) error {
	r.mu.Lock()
	lc := r.campaigns[id]
	r.mu.Unlock()
	if lc == nil {
		return fmt.Errorf("%w: %d", ErrUnknownCampaign, id)
	}
	if !lc.claim() {
		// Already terminal in this process — a no-op, except for a
		// ctx-paused campaign, which is terminal only here: its journal is
		// non-terminal and the next open would resume it. The cancel must
		// still make the stop durable.
		if lc.takePause() {
			r.journal(store.Record{Kind: store.KindCancelled, ID: id})
		}
		return nil
	}
	lc.markCancelled()
	// WAL before ack: the cancellation must survive a crash that lands
	// between this return and the run goroutine noticing.
	r.journal(store.Record{Kind: store.KindCancelled, ID: id})
	if lc.cancel != nil {
		lc.cancel()
	}
	return nil
}

// List implements Runner: the campaign table in admission order, filtered.
func (r *localRunner) List(ctx context.Context, filter ListFilter) ([]CampaignInfo, error) {
	r.mu.Lock()
	ids := append([]uint64(nil), r.order...)
	table := make(map[uint64]*localCampaign, len(r.campaigns))
	for id, lc := range r.campaigns {
		table[id] = lc
	}
	r.mu.Unlock()
	out := make([]CampaignInfo, 0, len(ids))
	for _, id := range ids {
		lc := table[id]
		if lc == nil {
			continue
		}
		info := lc.info(id)
		if filter.Status != "" && info.Status != filter.Status {
			continue
		}
		if !diet.LabelsMatch(info.Labels, filter.Labels) {
			continue
		}
		out = append(out, info)
	}
	return out, nil
}

// Info implements Runner.
func (r *localRunner) Info(ctx context.Context, id uint64) (*CampaignInfo, error) {
	r.mu.Lock()
	lc := r.campaigns[id]
	r.mu.Unlock()
	if lc == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownCampaign, id)
	}
	info := lc.info(id)
	return &info, nil
}

// Close implements Runner: it stops the runner-owned resume goroutines
// (their campaigns stay non-terminal in the journal and continue on the
// next open — Close is a pause, like a daemon shutdown) and then releases
// the journal. Handles already returned stay valid; handles of interrupted
// resumes resolve with context.Canceled.
func (r *localRunner) Close() error {
	r.cancel()
	r.resumes.Wait()
	if r.store != nil {
		return r.store.Close()
	}
	return nil
}

// journal appends one record to the campaign WAL; a no-op without a state
// dir. Mid-run append failures are swallowed — losing a journal line only
// costs re-execution of the affected scenarios after a restart.
func (r *localRunner) journal(rec store.Record) {
	if r.store == nil {
		return
	}
	_ = r.store.Append(rec)
}

// errCampaignDeadline is the cancellation cause of a campaign's own
// WithDeadline timer, distinguishing it from the caller's ctx dying.
var errCampaignDeadline = fmt.Errorf("oagrid: campaign deadline exceeded")

// localProgress is a campaign's resumable position: the next round index,
// the scenario IDs still to run, and the chunk reports already banked. A
// fresh campaign starts at round 0 with everything remaining; a recovered
// one starts wherever the journal left off.
type localProgress struct {
	round     int
	remaining []int
	reports   []ClusterReport
	done      int
}

// run is the campaign body: the Figure-9 protocol against in-process
// clusters, one repartition round over p.remaining. Cancellation is
// cooperative between sweep jobs; a ctx-cancelled campaign resolves with
// ctx's error (pause semantics: the journal stays non-terminal), while a
// Runner.Cancel resolves with ErrCampaignCancelled after the cancel path
// journaled the terminal record.
func (r *localRunner) run(ctx context.Context, lc *localCampaign, handle *Handle, app core.Application, h core.Heuristic, p localProgress) {
	opts := r.cfg.engineOptions()
	id := handle.ID()
	// WithDeadline bounds the campaign itself, requeue rounds included —
	// the local equivalent of the daemon's per-campaign timeout. The cause
	// sentinel tells the campaign's own timer apart from a deadline the
	// caller's ctx brought along, which keeps pause semantics.
	if lc.deadline > 0 {
		var stop context.CancelFunc
		ctx, stop = context.WithTimeoutCause(ctx, lc.deadline, errCampaignDeadline)
		defer stop()
	}
	fail := func(err error) {
		if lc.cancelledNow() {
			// Runner.Cancel owns the terminal transition and already
			// journaled it; resolve the handle with the typed error.
			handle.finish(nil, fmt.Errorf("%w: %d", ErrCampaignCancelled, id))
			return
		}
		if !lc.claim() {
			handle.finish(nil, fmt.Errorf("%w: %d", ErrCampaignCancelled, id))
			return
		}
		if context.Cause(ctx) == errCampaignDeadline {
			// The campaign's own deadline fired — a terminal failure, like
			// the daemon's campaign timeout (unlike a caller's ctx
			// cancellation or deadline, which is a pause).
			msg := fmt.Sprintf("campaign %d exceeded its %s deadline", id, lc.deadline)
			r.journal(store.Record{Kind: store.KindDone, ID: id, Status: diet.CampaignFailed, Err: msg})
			lc.setTerminal(StatusFailed, 0, msg)
			handle.finish(nil, fmt.Errorf("%w: %s", ErrCampaignFailed, msg))
			return
		}
		err = campaignErr(ctx, err)
		// Cancellation is this process giving up, not the campaign failing:
		// like a daemon shutdown, it stays non-terminal in the journal, so
		// the next runner on the state dir resumes it — a clean ^C must
		// never destroy work that a kill -9 would have preserved. The pause
		// flag lets a later Runner.Cancel still journal the stop terminally.
		if ctx.Err() == nil {
			r.journal(store.Record{Kind: store.KindDone, ID: id, Status: diet.CampaignFailed, Err: err.Error()})
			lc.setTerminal(StatusFailed, 0, err.Error())
		} else {
			lc.setPaused(err.Error())
		}
		handle.finish(nil, err)
	}
	succeed := func(res *CampaignResult) {
		if !lc.claim() {
			// A cancel won the race against the last chunk boundary: the
			// result is discarded, the campaign is cancelled.
			handle.finish(nil, fmt.Errorf("%w: %d", ErrCampaignCancelled, id))
			return
		}
		r.journal(store.Record{Kind: store.KindDone, ID: id, Status: diet.CampaignDone, Makespan: res.Makespan})
		lc.setTerminal(StatusDone, res.Makespan, "")
		handle.finish(res, nil)
	}

	// Nothing remaining: a crash landed between the last chunk record and
	// the terminal record — every scenario already has a completed chunk, so
	// finalize straight from the banked reports.
	if len(p.remaining) == 0 {
		res := &CampaignResult{Reports: p.reports}
		sortClusterReports(res.Reports)
		res.Makespan = resultMakespan(res.Reports)
		succeed(res)
		return
	}

	// Steps 1-3: every cluster's performance vector for the remaining
	// scenarios, one batched sweep.
	sub := core.Application{Scenarios: len(p.remaining), Months: app.Months}
	vecs, err := engine.PerformanceVectorsContext(ctx, r.cfg.backend, sub, r.clusters, h, opts, r.cfg.workers)
	if err != nil {
		fail(err)
		return
	}

	// Step 4: Algorithm-1 repartition of the remaining scenario IDs, slots
	// assigned in ascending ID order — the same mapping the grid scheduler
	// uses, so chunk provenance matches a daemon run bit for bit.
	rep, err := core.Repartition(vecs)
	if err != nil {
		fail(err)
		return
	}
	ids := make([][]int, len(r.clusters))
	for slot, cl := range rep.Assignment {
		ids[cl] = append(ids[cl], p.remaining[slot])
	}
	var shares []PlannedShare
	var planned []diet.PlannedChunk
	for i, cl := range r.clusters {
		if len(ids[i]) > 0 {
			shares = append(shares, PlannedShare{Cluster: cl.Name, Scenarios: len(ids[i])})
			planned = append(planned, diet.PlannedChunk{Cluster: cl.Name, Scenarios: len(ids[i])})
		}
	}
	r.journal(store.Record{Kind: store.KindPlanned, ID: id, Round: p.round, Planned: planned})
	lc.startRound(p.round)
	handle.publish(EventPlanned{Shares: shares})

	// Steps 5-6: evaluate each loaded cluster's share concurrently, one
	// goroutine per chunk (campaigns load at most a handful of clusters).
	// Chunk events stream as evaluations complete — the same live,
	// arrival-ordered progress a daemon campaign shows — while the final
	// report list is sorted, so the Result stays deterministic.
	type chunkOut struct {
		report ClusterReport
		ids    []int
		err    error
	}
	var launched int
	outs := make(chan chunkOut)
	for i := range r.clusters {
		if len(ids[i]) == 0 {
			continue
		}
		launched++
		go func(cl *Cluster, chunk []int) {
			sub := core.Application{Scenarios: len(chunk), Months: app.Months}
			alloc, err := h.Plan(sub, cl.Timing, cl.Procs)
			if err != nil {
				outs <- chunkOut{err: err}
				return
			}
			result, err := engine.EvaluateContext(ctx, r.cfg.backend, sub, cl, alloc, opts)
			if err != nil {
				outs <- chunkOut{err: err}
				return
			}
			outs <- chunkOut{report: ClusterReport{
				Cluster:    cl.Name,
				Scenarios:  len(chunk),
				Makespan:   result.Makespan,
				Allocation: alloc,
				Round:      p.round,
				Result:     &result,
			}, ids: chunk}
		}(r.clusters[i], ids[i])
	}

	res := &CampaignResult{Reports: p.reports}
	done := p.done
	var firstErr error
	cancelled := false
	for ; launched > 0; launched-- {
		out := <-outs
		if lc.cancelledNow() {
			// Cancelled mid-round: drain and discard — a chunk that slipped
			// through must not surface as an event after the cancel verdict.
			cancelled = true
			continue
		}
		if out.err != nil {
			if firstErr == nil {
				firstErr = out.err
			}
			continue
		}
		r.journal(store.Record{Kind: store.KindChunk, ID: id, IDs: out.ids, Chunk: &diet.ExecResponse{
			Cluster:       out.report.Cluster,
			Makespan:      out.report.Makespan,
			Allocation:    out.report.Allocation,
			Scenarios:     out.report.Scenarios,
			Round:         out.report.Round,
			FirstScenario: out.ids[0],
		}})
		if !lc.addProgress(out.report.Scenarios) {
			cancelled = true
			continue
		}
		done += out.report.Scenarios
		handle.publish(EventChunkDone{Report: out.report, Done: done, Total: app.Scenarios})
		handle.publish(EventProgress{Done: done, Total: app.Scenarios})
		res.Reports = append(res.Reports, out.report)
	}
	if cancelled || lc.cancelledNow() {
		handle.finish(nil, fmt.Errorf("%w: %d", ErrCampaignCancelled, id))
		return
	}
	if firstErr != nil {
		fail(firstErr)
		return
	}
	sortClusterReports(res.Reports)
	res.Makespan = resultMakespan(res.Reports)
	succeed(res)
}

// sortClusterReports puts reports in the stable report order whatever the
// arrival interleaving — the daemon's ordering. Round breaks (cluster,
// scenarios) ties: a resumed campaign can land equal-sized chunks on the
// same cluster in two rounds, and a cluster appears at most once per round.
func sortClusterReports(reports []ClusterReport) {
	sort.SliceStable(reports, func(i, j int) bool {
		if reports[i].Cluster != reports[j].Cluster {
			return reports[i].Cluster < reports[j].Cluster
		}
		if reports[i].Scenarios != reports[j].Scenarios {
			return reports[i].Scenarios < reports[j].Scenarios
		}
		return reports[i].Round < reports[j].Round
	})
}

// campaignErr maps a campaign failure onto the error taxonomy: context
// cancellation stays the context's error, everything else wraps
// ErrCampaignFailed.
func campaignErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return fmt.Errorf("%w: %v", ErrCampaignFailed, err)
}
