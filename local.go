package oagrid

import (
	"context"
	"fmt"
	"sort"

	"oagrid/internal/core"
	"oagrid/internal/engine"
)

// localRunner drives campaigns through the in-process engine: performance
// vectors, Algorithm-1 repartition and per-cluster evaluation all run on the
// engine's deterministic parallel sweep pool.
type localRunner struct {
	clusters []*Cluster
	cfg      runnerConfig
}

// Local builds a Runner over the in-process engine and the given clusters —
// the same pipeline a grid daemon's SeD fleet runs, minus the wire. Clusters
// are ordered by name internally (the daemon's tie-break order), so a Local
// run of a campaign is bit-identical to a Dial run against a daemon serving
// the same cluster profiles, at default options.
func Local(clusters []*Cluster, opts ...RunnerOption) (Runner, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("oagrid: Local needs at least one cluster")
	}
	sorted := make([]*Cluster, len(clusters))
	copy(sorted, clusters)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, cl := range sorted {
		if err := cl.Validate(); err != nil {
			return nil, err
		}
	}
	cfg := newRunnerConfig(opts)
	if _, err := core.ByName(cfg.heuristic); err != nil {
		return nil, err
	}
	return &localRunner{clusters: sorted, cfg: cfg}, nil
}

// Run implements Runner.
func (r *localRunner) Run(ctx context.Context, c Campaign) (*Handle, error) {
	app := core.Application(c.Experiment)
	if err := app.Validate(); err != nil {
		return nil, err
	}
	name := c.Heuristic
	if name == "" {
		name = r.cfg.heuristic
	}
	h, err := core.ByName(name)
	if err != nil {
		return nil, err
	}
	handle := newHandle(app.Scenarios)
	go r.run(ctx, handle, app, h)
	return handle, nil
}

// Close implements Runner; a local runner holds no resources.
func (r *localRunner) Close() error { return nil }

// run is the campaign body: the Figure-9 protocol against in-process
// clusters. Cancellation is cooperative between sweep jobs; a cancelled
// campaign resolves with ctx's error.
func (r *localRunner) run(ctx context.Context, handle *Handle, app core.Application, h core.Heuristic) {
	opts := r.cfg.engineOptions()

	// Steps 1-3: every cluster's performance vector, one batched sweep.
	vecs, err := engine.PerformanceVectorsContext(ctx, r.cfg.backend, app, r.clusters, h, opts, r.cfg.workers)
	if err != nil {
		handle.finish(nil, campaignErr(ctx, err))
		return
	}

	// Step 4: Algorithm-1 repartition.
	rep, err := core.Repartition(vecs)
	if err != nil {
		handle.finish(nil, campaignErr(ctx, err))
		return
	}
	var shares []PlannedShare
	for i, cl := range r.clusters {
		if rep.Counts[i] > 0 {
			shares = append(shares, PlannedShare{Cluster: cl.Name, Scenarios: rep.Counts[i]})
		}
	}
	handle.publish(EventPlanned{Shares: shares})

	// Steps 5-6: evaluate each loaded cluster's share concurrently, one
	// goroutine per chunk (campaigns load at most a handful of clusters).
	// Chunk events stream as evaluations complete — the same live,
	// arrival-ordered progress a daemon campaign shows — while the final
	// report list is sorted, so the Result stays deterministic.
	type chunkOut struct {
		report ClusterReport
		err    error
	}
	var launched int
	outs := make(chan chunkOut)
	for i := range r.clusters {
		if rep.Counts[i] == 0 {
			continue
		}
		launched++
		go func(cl *Cluster, share int) {
			sub := core.Application{Scenarios: share, Months: app.Months}
			alloc, err := h.Plan(sub, cl.Timing, cl.Procs)
			if err != nil {
				outs <- chunkOut{err: err}
				return
			}
			result, err := engine.EvaluateContext(ctx, r.cfg.backend, sub, cl, alloc, opts)
			if err != nil {
				outs <- chunkOut{err: err}
				return
			}
			outs <- chunkOut{report: ClusterReport{
				Cluster:    cl.Name,
				Scenarios:  share,
				Makespan:   result.Makespan,
				Allocation: alloc,
				Result:     &result,
			}}
		}(r.clusters[i], rep.Counts[i])
	}

	res := &CampaignResult{}
	done := 0
	var firstErr error
	for ; launched > 0; launched-- {
		out := <-outs
		if out.err != nil {
			if firstErr == nil {
				firstErr = out.err
			}
			continue
		}
		done += out.report.Scenarios
		handle.publish(EventChunkDone{Report: out.report, Done: done, Total: app.Scenarios})
		handle.publish(EventProgress{Done: done, Total: app.Scenarios})
		res.Reports = append(res.Reports, out.report)
		if out.report.Makespan > res.Makespan {
			res.Makespan = out.report.Makespan
		}
	}
	if firstErr != nil {
		handle.finish(nil, campaignErr(ctx, firstErr))
		return
	}
	// Stable report order whatever the arrival interleaving — the daemon's
	// (cluster, scenarios) order; clusters appear at most once per campaign.
	sort.Slice(res.Reports, func(i, j int) bool {
		if res.Reports[i].Cluster != res.Reports[j].Cluster {
			return res.Reports[i].Cluster < res.Reports[j].Cluster
		}
		return res.Reports[i].Scenarios < res.Reports[j].Scenarios
	})
	handle.finish(res, nil)
}

// campaignErr maps a campaign failure onto the error taxonomy: context
// cancellation stays the context's error, everything else wraps
// ErrCampaignFailed.
func campaignErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return fmt.Errorf("%w: %v", ErrCampaignFailed, err)
}
