package oagrid

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"oagrid/internal/core"
	"oagrid/internal/diet"
	"oagrid/internal/engine"
	"oagrid/internal/store"
)

// localRunner drives campaigns through the in-process engine: performance
// vectors, Algorithm-1 repartition and per-cluster evaluation all run on the
// engine's deterministic parallel sweep pool. With WithStateDir it is also
// durable: campaign transitions are journaled to the same WAL format the
// grid daemon uses, finished campaigns stay attachable across process
// restarts, and half-finished ones are resumed on construction.
type localRunner struct {
	clusters []*Cluster
	cfg      runnerConfig
	store    *store.Store // nil without WithStateDir

	// ctx governs runner-owned goroutines (journal-recovered campaign
	// resumes); Close cancels it and waits for them, so no evaluation or
	// journal append outlives the store. Campaigns started through Run run
	// under the caller's context instead — their lifecycle is the caller's.
	ctx     context.Context
	cancel  context.CancelFunc
	resumes sync.WaitGroup

	mu      sync.Mutex
	nextID  uint64
	handles map[uint64]*Handle
	// order tracks handle insertion so pruning drops the oldest finished
	// campaigns first, mirroring the daemon's KeepFinished retention.
	order []uint64
}

// keepLocalHandles caps how many campaign handles a local runner retains:
// beyond it, the oldest finished handles are dropped (running campaigns are
// never pruned). The daemon's Config.KeepFinished default, for the same
// reason: a long-lived embedder must not accumulate every event stream ever.
const keepLocalHandles = 4096

// register indexes a handle for Attach and prunes past the retention cap.
// Callers hold no lock.
func (r *localRunner) register(id uint64, handle *Handle) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handles[id] = handle
	r.order = append(r.order, id)
	for len(r.handles) > keepLocalHandles {
		pruned := false
		for i, oid := range r.order {
			if h := r.handles[oid]; h != nil && h.finished() {
				delete(r.handles, oid)
				r.order = append(r.order[:i], r.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			return // everything old is still running; try again next insert
		}
	}
}

// Local builds a Runner over the in-process engine and the given clusters —
// the same pipeline a grid daemon's SeD fleet runs, minus the wire. Clusters
// are ordered by name internally (the daemon's tie-break order), so a Local
// run of a campaign is bit-identical to a Dial run against a daemon serving
// the same cluster profiles, at default options.
//
// With WithStateDir, Local replays the journal found there first: terminal
// campaigns come back attachable under their original IDs with their full
// event history, and non-terminal campaigns (a previous process died
// mid-run) are re-admitted in the background, re-running only the scenarios
// without a completed chunk. Handles live for the runner's lifetime.
func Local(clusters []*Cluster, opts ...RunnerOption) (Runner, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("oagrid: Local needs at least one cluster")
	}
	sorted := make([]*Cluster, len(clusters))
	copy(sorted, clusters)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, cl := range sorted {
		if err := cl.Validate(); err != nil {
			return nil, err
		}
	}
	cfg := newRunnerConfig(opts)
	if _, err := core.ByName(cfg.heuristic); err != nil {
		return nil, err
	}
	r := &localRunner{clusters: sorted, cfg: cfg, handles: make(map[uint64]*Handle)}
	r.ctx, r.cancel = context.WithCancel(context.Background())
	if cfg.stateDir != "" {
		st, byID, err := store.Open(cfg.stateDir)
		if err != nil {
			return nil, err
		}
		r.store = st
		r.nextID = store.MaxID(byID)
		recovered := store.ByID(byID)
		// Phase 1: rebuild every handle (terminal ones resolve immediately)
		// and collect the campaigns that need resuming.
		var jobs []resumeJob
		for _, rc := range recovered {
			if job, ok := r.recover(rc); ok {
				jobs = append(jobs, job)
			}
		}
		// Compact the journal down to what recovery retained, exactly like
		// the daemon does at startup: pruned campaigns stay pruned across
		// reopens and the WAL stays bounded. Must run before any new append
		// — which is why resumes launch only afterwards.
		if len(recovered) > 0 {
			kept := make([]*store.Campaign, 0, len(recovered))
			r.mu.Lock()
			for _, rc := range recovered {
				if _, ok := r.handles[rc.ID]; ok {
					kept = append(kept, rc)
				}
			}
			r.mu.Unlock()
			_ = st.Compact(kept) // best-effort: the old journal replays the same
		}
		// Phase 2: resume the interrupted campaigns under the runner's own
		// lifecycle context.
		for _, job := range jobs {
			r.resumes.Add(1)
			go func(job resumeJob) {
				defer r.resumes.Done()
				r.run(r.ctx, job.handle, job.app, job.h, job.p)
			}(job)
		}
	}
	return r, nil
}

// resumeJob is one journal-recovered campaign waiting to continue.
type resumeJob struct {
	handle *Handle
	app    core.Application
	h      core.Heuristic
	p      localProgress
}

// recover rebuilds one journaled campaign: its handle replays the full
// event history. Terminal campaigns resolve immediately; for a campaign
// without a terminal record it returns the resume job the caller launches
// once the journal is compacted.
func (r *localRunner) recover(rc *store.Campaign) (resumeJob, bool) {
	handle := newHandle(rc.Scenarios)
	handle.setID(rc.ID)
	r.register(rc.ID, handle)
	handle.publish(EventAdmitted{ID: rc.ID})
	for i := range rc.History {
		for _, ev := range progressEvents(&rc.History[i]) {
			handle.publish(ev)
		}
	}
	if rc.Terminal() {
		if rc.Status == diet.CampaignDone {
			res := &CampaignResult{Makespan: rc.Makespan, Requeues: rc.Requeues}
			for _, rep := range rc.Reports {
				res.Reports = append(res.Reports, reportFromWire(rep))
			}
			// Chunk records are journaled in arrival order; the result the
			// original process returned was sorted.
			sortClusterReports(res.Reports)
			handle.finish(res, nil)
		} else {
			handle.finish(nil, fmt.Errorf("%w: %s", ErrCampaignFailed, rc.Err))
		}
		return resumeJob{}, false
	}
	app := core.Application{Scenarios: rc.Scenarios, Months: rc.Months}
	h, err := core.ByName(rc.Heuristic)
	if err != nil {
		handle.finish(nil, campaignErr(context.Background(), err))
		return resumeJob{}, false
	}
	reports := make([]ClusterReport, 0, len(rc.Reports))
	for _, rep := range rc.Reports {
		reports = append(reports, reportFromWire(rep))
	}
	return resumeJob{handle: handle, app: app, h: h, p: localProgress{
		round:     rc.Rounds,
		remaining: rc.Remaining,
		reports:   reports,
		done:      rc.ScenariosDone,
	}}, true
}

// Run implements Runner.
func (r *localRunner) Run(ctx context.Context, c Campaign) (*Handle, error) {
	app := core.Application(c.Experiment)
	if err := app.Validate(); err != nil {
		return nil, err
	}
	name := c.Heuristic
	if name == "" {
		name = r.cfg.heuristic
	}
	h, err := core.ByName(name)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	r.mu.Unlock()
	// The admission record must be durable before the handle exists: an ID
	// the caller holds has to survive a crash, or Attach after a restart
	// would deny a campaign this runner accepted.
	if r.store != nil {
		if err := r.store.Append(store.Record{
			Kind:      store.KindAdmitted,
			ID:        id,
			Scenarios: app.Scenarios,
			Months:    app.Months,
			Heuristic: name,
		}); err != nil {
			return nil, err
		}
	}
	handle := newHandle(app.Scenarios)
	handle.setID(id)
	r.register(id, handle)
	handle.publish(EventAdmitted{ID: id})
	remaining := make([]int, app.Scenarios)
	for i := range remaining {
		remaining[i] = i
	}
	go r.run(ctx, handle, app, h, localProgress{remaining: remaining})
	return handle, nil
}

// Attach implements Runner: it returns the handle of a campaign this runner
// started or recovered from its state dir. Handles replay their full event
// stream to every subscriber, so attaching late loses nothing. An unknown
// ID resolves the handle with ErrUnknownCampaign — the same shape the
// remote runner has, so callers can always go straight to Wait.
func (r *localRunner) Attach(ctx context.Context, id uint64) (*Handle, error) {
	r.mu.Lock()
	handle := r.handles[id]
	r.mu.Unlock()
	if handle == nil {
		handle = newHandle(0)
		handle.finish(nil, fmt.Errorf("%w: %d", ErrUnknownCampaign, id))
	}
	return handle, nil
}

// Close implements Runner: it stops the runner-owned resume goroutines
// (their campaigns stay non-terminal in the journal and continue on the
// next open — Close is a pause, like a daemon shutdown) and then releases
// the journal. Handles already returned stay valid; handles of interrupted
// resumes resolve with context.Canceled.
func (r *localRunner) Close() error {
	r.cancel()
	r.resumes.Wait()
	if r.store != nil {
		return r.store.Close()
	}
	return nil
}

// journal appends one record to the campaign WAL; a no-op without a state
// dir. Mid-run append failures are swallowed — losing a journal line only
// costs re-execution of the affected scenarios after a restart.
func (r *localRunner) journal(rec store.Record) {
	if r.store == nil {
		return
	}
	_ = r.store.Append(rec)
}

// localProgress is a campaign's resumable position: the next round index,
// the scenario IDs still to run, and the chunk reports already banked. A
// fresh campaign starts at round 0 with everything remaining; a recovered
// one starts wherever the journal left off.
type localProgress struct {
	round     int
	remaining []int
	reports   []ClusterReport
	done      int
}

// run is the campaign body: the Figure-9 protocol against in-process
// clusters, one repartition round over p.remaining. Cancellation is
// cooperative between sweep jobs; a cancelled campaign resolves with ctx's
// error.
func (r *localRunner) run(ctx context.Context, handle *Handle, app core.Application, h core.Heuristic, p localProgress) {
	opts := r.cfg.engineOptions()
	id := handle.ID()
	fail := func(err error) {
		err = campaignErr(ctx, err)
		// Cancellation is this process giving up, not the campaign failing:
		// like a daemon shutdown, it stays non-terminal in the journal, so
		// the next runner on the state dir resumes it — a clean ^C must
		// never destroy work that a kill -9 would have preserved.
		if ctx.Err() == nil {
			r.journal(store.Record{Kind: store.KindDone, ID: id, Status: diet.CampaignFailed, Err: err.Error()})
		}
		handle.finish(nil, err)
	}

	// Nothing remaining: a crash landed between the last chunk record and
	// the terminal record — every scenario already has a completed chunk, so
	// finalize straight from the banked reports.
	if len(p.remaining) == 0 {
		res := &CampaignResult{Reports: p.reports}
		sortClusterReports(res.Reports)
		res.Makespan = resultMakespan(res.Reports)
		r.journal(store.Record{Kind: store.KindDone, ID: id, Status: diet.CampaignDone, Makespan: res.Makespan})
		handle.finish(res, nil)
		return
	}

	// Steps 1-3: every cluster's performance vector for the remaining
	// scenarios, one batched sweep.
	sub := core.Application{Scenarios: len(p.remaining), Months: app.Months}
	vecs, err := engine.PerformanceVectorsContext(ctx, r.cfg.backend, sub, r.clusters, h, opts, r.cfg.workers)
	if err != nil {
		fail(err)
		return
	}

	// Step 4: Algorithm-1 repartition of the remaining scenario IDs, slots
	// assigned in ascending ID order — the same mapping the grid scheduler
	// uses, so chunk provenance matches a daemon run bit for bit.
	rep, err := core.Repartition(vecs)
	if err != nil {
		fail(err)
		return
	}
	ids := make([][]int, len(r.clusters))
	for slot, cl := range rep.Assignment {
		ids[cl] = append(ids[cl], p.remaining[slot])
	}
	var shares []PlannedShare
	var planned []diet.PlannedChunk
	for i, cl := range r.clusters {
		if len(ids[i]) > 0 {
			shares = append(shares, PlannedShare{Cluster: cl.Name, Scenarios: len(ids[i])})
			planned = append(planned, diet.PlannedChunk{Cluster: cl.Name, Scenarios: len(ids[i])})
		}
	}
	r.journal(store.Record{Kind: store.KindPlanned, ID: id, Round: p.round, Planned: planned})
	handle.publish(EventPlanned{Shares: shares})

	// Steps 5-6: evaluate each loaded cluster's share concurrently, one
	// goroutine per chunk (campaigns load at most a handful of clusters).
	// Chunk events stream as evaluations complete — the same live,
	// arrival-ordered progress a daemon campaign shows — while the final
	// report list is sorted, so the Result stays deterministic.
	type chunkOut struct {
		report ClusterReport
		ids    []int
		err    error
	}
	var launched int
	outs := make(chan chunkOut)
	for i := range r.clusters {
		if len(ids[i]) == 0 {
			continue
		}
		launched++
		go func(cl *Cluster, chunk []int) {
			sub := core.Application{Scenarios: len(chunk), Months: app.Months}
			alloc, err := h.Plan(sub, cl.Timing, cl.Procs)
			if err != nil {
				outs <- chunkOut{err: err}
				return
			}
			result, err := engine.EvaluateContext(ctx, r.cfg.backend, sub, cl, alloc, opts)
			if err != nil {
				outs <- chunkOut{err: err}
				return
			}
			outs <- chunkOut{report: ClusterReport{
				Cluster:    cl.Name,
				Scenarios:  len(chunk),
				Makespan:   result.Makespan,
				Allocation: alloc,
				Round:      p.round,
				Result:     &result,
			}, ids: chunk}
		}(r.clusters[i], ids[i])
	}

	res := &CampaignResult{Reports: p.reports}
	done := p.done
	var firstErr error
	for ; launched > 0; launched-- {
		out := <-outs
		if out.err != nil {
			if firstErr == nil {
				firstErr = out.err
			}
			continue
		}
		done += out.report.Scenarios
		r.journal(store.Record{Kind: store.KindChunk, ID: id, IDs: out.ids, Chunk: &diet.ExecResponse{
			Cluster:       out.report.Cluster,
			Makespan:      out.report.Makespan,
			Allocation:    out.report.Allocation,
			Scenarios:     out.report.Scenarios,
			Round:         out.report.Round,
			FirstScenario: out.ids[0],
		}})
		handle.publish(EventChunkDone{Report: out.report, Done: done, Total: app.Scenarios})
		handle.publish(EventProgress{Done: done, Total: app.Scenarios})
		res.Reports = append(res.Reports, out.report)
	}
	if firstErr != nil {
		fail(firstErr)
		return
	}
	sortClusterReports(res.Reports)
	res.Makespan = resultMakespan(res.Reports)
	r.journal(store.Record{Kind: store.KindDone, ID: id, Status: diet.CampaignDone, Makespan: res.Makespan})
	handle.finish(res, nil)
}

// sortClusterReports puts reports in the stable report order whatever the
// arrival interleaving — the daemon's ordering. Round breaks (cluster,
// scenarios) ties: a resumed campaign can land equal-sized chunks on the
// same cluster in two rounds, and a cluster appears at most once per round.
func sortClusterReports(reports []ClusterReport) {
	sort.SliceStable(reports, func(i, j int) bool {
		if reports[i].Cluster != reports[j].Cluster {
			return reports[i].Cluster < reports[j].Cluster
		}
		if reports[i].Scenarios != reports[j].Scenarios {
			return reports[i].Scenarios < reports[j].Scenarios
		}
		return reports[i].Round < reports[j].Round
	})
}

// campaignErr maps a campaign failure onto the error taxonomy: context
// cancellation stays the context's error, everything else wraps
// ErrCampaignFailed.
func campaignErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return fmt.Errorf("%w: %v", ErrCampaignFailed, err)
}
