// Command oaload is the load injector for the grid scheduler daemon: it
// fires N concurrent simulation campaigns at a live daemon with Poisson,
// bursty or uniform arrival patterns, optionally kills a SeD mid-run, and
// reports service metrics (throughput, p50/p95/p99 latency, queue depth) as
// BENCH_grid.json — the artifact the CI bench-regression gate compares.
//
// Usage:
//
//	oaload                                  # self-hosted smoke: daemon + 3 SeDs in-process
//	oaload -campaigns 50 -arrival poisson -rate 40
//	oaload -arrival burst -burst 10 -gap 100ms
//	oaload -kill 0.3                        # kill one SeD after 30% of submissions
//	oaload -restart 0.5                     # kill + restart the daemon mid-run
//	oaload -cancel 0.2                      # cancel ~20% of campaigns server-side
//	oaload -tenants gold=1,silver=1,bronze=1  # multi-tenant fairness workload
//	oaload -profile burst -autoscale 1:5 -seds 1  # elastic-fleet burst bench
//	oaload -addr 127.0.0.1:7714             # drive an external daemon (injection off)
//
// Without -addr the injector starts its own scheduler and SeDs on loopback
// ports, which is also the hostile mode: -kill closes one SeD daemon
// mid-run, -restart kills the scheduler itself after a fraction of the
// submissions and restarts it on the same address and state dir (clients
// reattach by campaign ID and resume from the replayed journal), -cancel
// cancels a seeded fraction of the campaigns server-side right after
// admission (reported as cancels / cancel_latency_p95_ms), and -verify
// (default on) checks every completed chunk report bit-for-bit against a
// serial in-process evaluation of the same (cluster, scenario count).
//
// With -tenants the injector exercises the daemon's weighted-fair queueing:
// campaigns are labelled with cycling tenant names (round-robin by index)
// and mixed priorities ((i%3)*5, so priority flooding cannot skew tenant
// shares), the self-hosted daemon gets the matching -tenant-weights, and
// the report gains per-tenant completion/latency breakdowns plus a Jain
// fairness index and a max/min per-tenant p95 ratio — the numbers the CI
// fairness gate floors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"oagrid"
	"oagrid/internal/autoscale"
	"oagrid/internal/diet"
	"oagrid/internal/grid"
	"oagrid/internal/platform"
)

// loadReport is the BENCH_grid.json schema.
type loadReport struct {
	Campaigns      int     `json:"campaigns"`
	Arrival        string  `json:"arrival"`
	RatePerSec     float64 `json:"rate_per_sec"`
	Burst          int     `json:"burst,omitempty"`
	Scenarios      int     `json:"scenarios"`
	Months         int     `json:"months"`
	Heuristic      string  `json:"heuristic"`
	SeDs           int     `json:"seds"`
	SeDKilled      bool    `json:"sed_killed"`
	Seed           int64   `json:"seed"`
	GoMaxProcs     int     `json:"gomaxprocs"`
	Completed      int     `json:"completed"`
	Cancels        int     `json:"cancels"`
	CancelP95Ms    float64 `json:"cancel_latency_p95_ms,omitempty"`
	Rejections     int     `json:"rejections"`
	Requeues       uint64  `json:"requeues"`
	Evictions      uint64  `json:"evictions"`
	DaemonRestarts int     `json:"daemon_restarts"`
	Reattaches     int     `json:"reattaches"`
	Resubmits      int     `json:"resubmits"`
	Verified       bool    `json:"verified_bit_identical"`
	WallSeconds    float64 `json:"wall_seconds"`
	ThroughputCPS  float64 `json:"throughput_cps"`
	// Wire gauges over the injection window, across both codecs (the
	// self-hosted run counts client, daemon and SeD traffic in one process).
	Proto         string  `json:"proto"`
	BytesTx       uint64  `json:"bytes_tx"`
	BytesRx       uint64  `json:"bytes_rx"`
	FramesPerSec  float64 `json:"frames_per_sec"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxQueueDepth int     `json:"max_queue_depth"`
	// Multi-tenant fairness block, present only with -tenants: per-tenant
	// breakdowns plus the two aggregates the CI fairness gate floors.
	// FairnessJain is the Jain index over weight-normalized completed
	// throughput (1.0 = perfectly fair); TenantP95Ratio is max/min p95
	// latency across tenants that completed work (1.0 = identical tails).
	Tenants         map[string]tenantReport `json:"tenants,omitempty"`
	FairnessJain    float64                 `json:"fairness_jain,omitempty"`
	TenantP95Ratio  float64                 `json:"tenant_p95_ratio,omitempty"`
	QuotaRejections int                     `json:"quota_rejections,omitempty"`
	// Sharded-ring block, present only with -ring: the member list driven
	// and each shard's local (non-fanned-out) accounting after the run.
	Ring   []string               `json:"ring,omitempty"`
	Shards map[string]shardReport `json:"shards,omitempty"`
	// Elastic-fleet block, present only with -profile burst: phase-tagged
	// latency percentiles (warm/peak/cool), periodic fleet-size samples,
	// and — when the self-hosted daemon runs -autoscale — the controller's
	// scale counters. FleetPeak is the largest dispatchable fleet any
	// sample saw; the CI autoscale gate floors it and ceilings PeakP99Ms.
	Profile          string                 `json:"profile,omitempty"`
	PeakMult         float64                `json:"peak_mult,omitempty"`
	Phases           map[string]phaseReport `json:"phases,omitempty"`
	FleetBase        int                    `json:"fleet_base,omitempty"`
	FleetPeak        int                    `json:"fleet_peak,omitempty"`
	FleetSamples     []fleetSample          `json:"fleet_samples,omitempty"`
	ScaleUps         uint64                 `json:"scale_ups,omitempty"`
	ScaleDowns       uint64                 `json:"scale_downs,omitempty"`
	ScaleUpLatencyMs float64                `json:"scale_up_latency_ms,omitempty"`
}

// phaseReport is one burst-profile phase's service numbers.
type phaseReport struct {
	Campaigns int     `json:"campaigns"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// fleetSample is one periodic observation of the dispatchable fleet size
// (alive, non-draining SeDs).
type fleetSample struct {
	TMs  float64 `json:"t_ms"`
	Size int     `json:"size"`
}

// shardReport is one ring member's local accounting, read through the
// forwarded-request envelope so the numbers are the shard's own rather than
// the ring-wide fan-out merge every plain stats call returns.
type shardReport struct {
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled,omitempty"`
	Requeues  uint64 `json:"requeues"`
	MaxQueue  int    `json:"max_queue_depth"`
}

// tenantReport is one tenant's slice of the fairness workload.
type tenantReport struct {
	Weight    float64 `json:"weight"`
	Submitted int     `json:"submitted"`
	Completed int     `json:"completed"`
	Cancels   int     `json:"cancels,omitempty"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	MeanMs    float64 `json:"mean_ms"`
}

func main() {
	var (
		addr      = flag.String("addr", "", "daemon address (empty = self-hosted daemon + SeDs)")
		ringSpec  = flag.String("ring", "", "comma-separated ring member addresses to drive (external sharded ring; submissions spread across members, per-shard accounting in the report; members must run the default cluster profiles for -verify)")
		campaigns = flag.Int("campaigns", 50, "campaigns to inject")
		arrival   = flag.String("arrival", "poisson", "arrival pattern: poisson, burst or uniform")
		rate      = flag.Float64("rate", 50, "mean arrival rate in campaigns/second (poisson, uniform)")
		burst     = flag.Int("burst", 10, "campaigns per burst (burst pattern)")
		gap       = flag.Duration("gap", 100*time.Millisecond, "pause between bursts (burst pattern)")
		ns        = flag.Int("ns", 4, "scenarios per campaign")
		months    = flag.Int("months", 12, "months per scenario")
		heuristic = flag.String("heuristic", oagrid.KnapsackName, "planning heuristic")
		kill      = flag.Float64("kill", 0, "kill one SeD after this fraction of submissions (self-hosted only, 0 = never)")
		cancelFr  = flag.Float64("cancel", 0, "cancel this fraction of campaigns server-side mid-run (0 = never)")
		restart   = flag.Float64("restart", 0, "kill the daemon after this fraction of submissions and restart it on the same state dir (self-hosted only, 0 = never)")
		state     = flag.String("state", "", "daemon state dir (self-hosted; default: a temp dir when -restart > 0)")
		verify    = flag.Bool("verify", true, "check reports bit-for-bit against serial evaluation (self-hosted only)")
		seds      = flag.Int("seds", 3, "in-process SeDs (self-hosted only)")
		cprocs    = flag.Int("cprocs", 30, "processors per in-process SeD cluster")
		queueCap  = flag.Int("queue", 64, "daemon queue bound (self-hosted only)")
		inflight  = flag.Int("inflight", 4, "per-SeD in-flight limit (self-hosted only)")
		dispatch  = flag.Int("dispatchers", 4, "daemon concurrent campaign dispatchers (self-hosted only)")
		seed      = flag.Int64("seed", 1, "arrival-schedule random seed")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-campaign client deadline")
		out       = flag.String("out", "BENCH_grid.json", "benchmark artifact path (empty = skip writing)")
		proto     = flag.String("proto", "binary", "wire codec: binary (v4 framing when the peer speaks it) or legacy (force the pre-v4 codec)")
		tenants   = flag.String("tenants", "", "fairness workload as name=weight[,name=weight...]: campaigns get round-robin tenant labels and cycling priorities; the self-hosted daemon gets the weights")

		profile       = flag.String("profile", "", "arrival profile: burst (warm quarter at -rate, peak half at -rate x -peak-mult, cool quarter back at -rate; overrides -arrival, phase-tagged percentiles and fleet-size samples in the report)")
		peakMult      = flag.Float64("peak-mult", 4, "peak-phase rate multiplier for -profile burst")
		autoscaleSpec = flag.String("autoscale", "", "elastic SeD fleet bounds as min:max (self-hosted only; grows from -seds toward max under pressure, drains back when calm)")
		sedSpeeds     = flag.String("sed-speeds", "", "comma-separated relative SeD speed factors, cycled (self-hosted only; 1 = reference, 0.5 = twice as slow)")
		extVerify     = flag.Bool("verify-external", false, "verify against an external -addr daemon too, assuming it serves the default cluster profiles (-seds/-cprocs must match the daemon's)")
	)
	flag.Parse()

	tenantWeights, err := parseTenantWeights(*tenants)
	if err != nil {
		fail(err)
	}
	asMin, asMax, err := parseAutoscale(*autoscaleSpec)
	if err != nil {
		fail(err)
	}
	speeds, err := parseSpeeds(*sedSpeeds)
	if err != nil {
		fail(err)
	}
	if *profile != "" && *profile != "burst" {
		fail(fmt.Errorf("oaload: unknown -profile %q (want burst)", *profile))
	}
	var tenantNames []string
	for name := range tenantWeights {
		tenantNames = append(tenantNames, name)
	}
	sort.Strings(tenantNames)

	switch *proto {
	case "binary":
	case "legacy":
		diet.ForceLegacyCodec(true)
	default:
		fail(fmt.Errorf("oaload: unknown -proto %q (want binary or legacy)", *proto))
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	campaign := oagrid.NewCampaign(*ns, *months)
	campaign.Heuristic = *heuristic

	report := loadReport{
		Campaigns:  *campaigns,
		Arrival:    *arrival,
		Proto:      *proto,
		RatePerSec: *rate,
		Scenarios:  *ns,
		Months:     *months,
		Heuristic:  *heuristic,
		SeDs:       *seds,
		Seed:       *seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if *arrival == "burst" {
		report.Burst = *burst
	}
	if *profile != "" {
		report.Profile = *profile
		report.PeakMult = *peakMult
	}

	// Self-hosted fabric unless pointed at an external daemon or ring.
	target := *addr
	ringMembers := splitRing(*ringSpec)
	if len(ringMembers) > 0 {
		if target != "" {
			fail(errors.New("oaload: -addr and -ring are mutually exclusive"))
		}
		target = strings.Join(ringMembers, ",")
		report.Ring = ringMembers
	}
	stateDir := *state
	var fabric *grid.Fabric
	var verifyClusters map[string]*platform.Cluster
	if len(ringMembers) > 0 {
		if *kill > 0 || *restart > 0 {
			fmt.Fprintln(os.Stderr, "oaload: -kill and -restart need the self-hosted fabric; disabled against a ring (kill a ring daemon externally instead)")
			*kill, *restart = 0, 0
		}
		if *verify {
			// Ring daemons run the paper's default cluster profiles (oarun
			// -daemon), so the serial verifier can be built without a fabric.
			verifyClusters = defaultClusters(*seds, *cprocs)
		}
	} else if target == "" {
		if *restart > 0 && stateDir == "" {
			tmp, err := os.MkdirTemp("", "oaload-state-*")
			if err != nil {
				fail(err)
			}
			defer os.RemoveAll(tmp)
			stateDir = tmp
		}
		var err error
		fabric, err = grid.StartFabricSpeeds(grid.Config{
			Addr:           "127.0.0.1:0",
			QueueCap:       *queueCap,
			Dispatchers:    *dispatch,
			PerSeDInFlight: *inflight,
			EvictAfter:     time.Second,
			StateDir:       stateDir,
			TenantWeights:  tenantWeights,
		}, *seds, *cprocs, 100*time.Millisecond, speeds)
		if err != nil {
			fail(err)
		}
		defer fabric.Close()
		*seds = len(fabric.SeDs)
		report.SeDs = *seds
		target = fabric.Sched.Addr()
		if err := fabric.WaitAlive(*seds, 5*time.Second); err != nil {
			fail(err)
		}
		verifyClusters = fabric.Clusters
	} else if *kill > 0 || *restart > 0 || (*verify && !*extVerify) {
		fmt.Fprintln(os.Stderr, "oaload: -kill, -restart and -verify need the self-hosted fabric; disabled against an external daemon (-verify-external opts verification back in)")
		*kill, *restart = 0, 0
		if !*extVerify {
			*verify = false
		}
	}
	if *extVerify && fabric == nil && len(ringMembers) == 0 && *verify {
		// The external daemon is assumed to serve the default profiles the
		// way oarun -daemon does; autoscale-spawned "<name>#<seq>" clones
		// fall back to their base profile inside the verifier.
		verifyClusters = defaultClusters(*seds, *cprocs)
	}

	var ctl *autoscale.Controller
	if asMax > 0 {
		if fabric == nil {
			fail(errors.New("oaload: -autoscale needs the self-hosted fabric (drop -addr/-ring, or pass -autoscale to the external oarun daemon instead)"))
		}
		if *restart > 0 {
			fail(errors.New("oaload: -autoscale and -restart are mutually exclusive (the controller holds the old scheduler)"))
		}
		ascfg := autoscale.Config{
			Min:            asMin,
			Max:            asMax,
			HeartbeatEvery: 100 * time.Millisecond,
			// The injection window is seconds long; sample well inside it so
			// the burst's queue pressure is seen while it is still building.
			Sample: 50 * time.Millisecond,
			Speeds: speeds,
		}
		if *profile == "burst" {
			// The burst profile is the acceptance workload: its peak phase is
			// only a few hundred milliseconds wide, so the policy must react
			// on the first pressured samples rather than wait for the default
			// half-second thresholds — by then the peak is over.
			ascfg.Policy = autoscale.Policy{
				UpQueue:       2,
				UpWaitMs:      100,
				DownIdleTicks: 4,
				CoolDownTicks: 1,
			}
		}
		ctl, err = autoscale.Start(fabric.Sched, fabric.SeDs, ascfg)
		if err != nil {
			fail(err)
		}
		defer ctl.Close()
	}

	var arrivals []time.Duration
	var phaseTags []string
	if *profile == "burst" {
		arrivals, phaseTags, err = scheduleBurstProfile(*campaigns, *rate, *peakMult)
	} else {
		arrivals, err = schedule(*arrival, *campaigns, *rate, *burst, *gap, *seed)
	}
	if err != nil {
		fail(err)
	}
	// The cancel injector's victim set: chosen up front on its own seeded
	// stream so the arrival schedule stays identical with and without it.
	cancelSet := make(map[int]bool)
	if *cancelFr > 0 {
		crng := rand.New(rand.NewSource(*seed + 1))
		for i := 0; i < *campaigns; i++ {
			if crng.Float64() < *cancelFr {
				cancelSet[i] = true
			}
		}
	}
	killAt := -1
	if *kill > 0 && fabric != nil && len(fabric.SeDs) > 1 {
		killAt = int(*kill * float64(*campaigns))
		if killAt >= *campaigns {
			killAt = *campaigns - 1
		}
	}
	restartAt := -1
	if *restart > 0 && fabric != nil {
		restartAt = int(*restart * float64(*campaigns))
		if restartAt >= *campaigns {
			restartAt = *campaigns - 1
		}
	}

	fmt.Printf("== oaload: %d campaigns (NS=%d, NM=%d, %s), %s arrivals against %s ==\n",
		*campaigns, *ns, *months, *heuristic, *arrival, target)

	// All submissions flow through the public client API: one streamed
	// campaign per goroutine, typed ErrRejected for the admission-retry loop.
	// A plain target shares one Runner; a ring gets one Runner per member —
	// each with the others as fallbacks — and campaigns round-robin across
	// them, so admission (and therefore ownership) spreads over the shards
	// and cross-shard routing actually gets exercised.
	var runners []oagrid.Runner
	if len(ringMembers) > 1 {
		for i := range ringMembers {
			rot := append(append([]string{}, ringMembers[i:]...), ringMembers[:i]...)
			r, err := oagrid.Dial(ctx, strings.Join(rot, ","), oagrid.WithTimeout(*timeout))
			if err != nil {
				fail(err)
			}
			defer r.Close()
			runners = append(runners, r)
		}
	} else {
		r, err := oagrid.Dial(ctx, target, oagrid.WithTimeout(*timeout))
		if err != nil {
			fail(err)
		}
		defer r.Close()
		runners = append(runners, r)
	}

	var killOnce, restartOnce sync.Once
	latencies := make([]time.Duration, *campaigns)
	outcomes := make([]campaignOutcome, *campaigns)

	// Scheduler-level gauges do not survive a restart (they are process
	// state, not journal state), so the pre-restart numbers are banked here
	// and folded into the report — otherwise BENCH_grid.json would report
	// the fresh instance's near-zero requeue/eviction counters.
	var preRequeues, preEvictions uint64
	var preMaxQueue int

	// restartDaemon replaces the scheduler with a fresh one on the same
	// address and state dir — the load-time equivalent of a crashed daemon
	// coming back: SeDs rejoin on their next heartbeat, the journal
	// re-admits unfinished campaigns, and streaming clients reattach by ID.
	restartDaemon := func(i int) {
		addr := fabric.Sched.Addr()
		fmt.Printf("-- restarting daemon at campaign %d --\n", i)
		stats := fabric.Sched.Stats()
		preRequeues, preEvictions, preMaxQueue = stats.Requeues, stats.Evicted, stats.MaxQueueDepth
		fabric.Sched.Close()
		var err error
		for attempt := 0; attempt < 100; attempt++ {
			var sched *grid.Scheduler
			sched, err = grid.Start(grid.Config{
				Addr:           addr,
				QueueCap:       *queueCap,
				PerSeDInFlight: *inflight,
				EvictAfter:     time.Second,
				StateDir:       stateDir,
				TenantWeights:  tenantWeights,
			})
			if err == nil {
				fabric.Sched = sched
				report.DaemonRestarts++
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		fail(fmt.Errorf("oaload: daemon restart on %s: %w", addr, err))
	}

	wireBefore := diet.WireStats()
	start := time.Now()

	// The burst profile samples the dispatchable fleet (alive, non-draining
	// SeDs) over the wire every 100ms — the record of the scale-up and the
	// scale-back the report's fleet_peak/fleet_base summarize.
	var samplerWg sync.WaitGroup
	samplerStop := make(chan struct{})
	if *profile == "burst" {
		report.FleetBase = *seds
		sampleClient := &grid.Client{Addr: target}
		if len(ringMembers) > 0 {
			sampleClient = &grid.Client{Addr: ringMembers[0], Addrs: ringMembers[1:]}
		}
		samplerWg.Add(1)
		go func() {
			defer samplerWg.Done()
			t := time.NewTicker(100 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-samplerStop:
					return
				case <-t.C:
				}
				st, err := sampleClient.Stats()
				if err != nil {
					continue
				}
				size := 0
				for _, sd := range st.SeDs {
					if sd.Alive && !sd.Draining {
						size++
					}
				}
				report.FleetSamples = append(report.FleetSamples, fleetSample{
					TMs:  float64(time.Since(start)) / float64(time.Millisecond),
					Size: size,
				})
				if size > report.FleetPeak {
					report.FleetPeak = size
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for i := 0; i < *campaigns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Until(start.Add(arrivals[i])))
			if i == killAt {
				killOnce.Do(func() {
					// The first profile is the fastest cluster: it always
					// holds the largest scenario share, so its death is
					// guaranteed to cost requeues, not just an eviction.
					victim := fabric.SeDs[0]
					fmt.Printf("-- killing SeD %s at campaign %d --\n", victim.Addr(), i)
					victim.Close()
					report.SeDKilled = true
				})
			}
			if i == restartAt {
				restartOnce.Do(func() { restartDaemon(i) })
			}
			var opts []oagrid.SubmitOption
			if len(tenantNames) > 0 {
				// Round-robin tenants with cycling priorities: every tenant
				// submits the same priority mix, so a fair scheduler must give
				// equal-weight tenants equal shares regardless of priority.
				opts = append(opts,
					oagrid.WithLabels(map[string]string{grid.DefaultTenantKey: tenantNames[i%len(tenantNames)]}),
					oagrid.WithPriority((i%3)*5))
			}
			t0 := time.Now()
			// Recovery through Attach is on under restart injection and
			// against a ring: a ring member may be killed externally mid-run,
			// and its admitted campaigns are finished by the failover owner.
			outcomes[i] = runCampaign(ctx, runners[i%len(runners)], campaign, t0.Add(*timeout),
				restartAt >= 0 || len(ringMembers) > 0, cancelSet[i], opts)
			latencies[i] = time.Since(t0)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	// With an elastic fleet the run is not over at the last verdict: the
	// report must also witness the scale-back. Keep the fleet sampler
	// running and wait (bounded) for the controller to drain back to min —
	// the burst acceptance is "up AND back down", not just up.
	if ctl != nil && *profile == "burst" {
		settle := time.Now().Add(30 * time.Second)
		for time.Now().Before(settle) {
			cs := ctl.Counters()
			if cs.FleetSize <= asMin && cs.Draining == 0 {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	close(samplerStop)
	samplerWg.Wait()
	wireAfter := diet.WireStats()
	report.BytesTx = wireAfter.BytesTx - wireBefore.BytesTx
	report.BytesRx = wireAfter.BytesRx - wireBefore.BytesRx
	if frames := wireAfter.FramesTx + wireAfter.FramesRx - wireBefore.FramesTx - wireBefore.FramesRx; wall > 0 {
		report.FramesPerSec = float64(frames) / wall.Seconds()
	}

	completed := 0
	results := make([]*oagrid.CampaignResult, *campaigns)
	var sorted, cancelLatencies []time.Duration
	for i, out := range outcomes {
		if out.err != nil {
			fail(fmt.Errorf("campaign %d: %w", i, out.err))
		}
		// Admission-retry and restart-recovery bookkeeping counts whatever
		// the campaign's fate — a cancelled campaign may still have been
		// rejected, reattached or resubmitted on its way in.
		report.Rejections += out.rejections
		report.QuotaRejections += out.quotaRejections
		report.Reattaches += out.reattaches
		report.Resubmits += out.resubmits
		if out.cancelled {
			// A cancelled campaign is a successful control-plane operation,
			// not a completion: it leaves the latency percentiles and enters
			// the cancel-latency ones.
			report.Cancels++
			cancelLatencies = append(cancelLatencies, out.cancelLatency)
			continue
		}
		completed++
		results[i] = out.res
		sorted = append(sorted, latencies[i])
	}
	report.Completed = completed
	report.WallSeconds = wall.Seconds()
	if wall > 0 {
		report.ThroughputCPS = float64(completed) / wall.Seconds()
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	report.P50Ms = percentileMs(sorted, 50)
	report.P95Ms = percentileMs(sorted, 95)
	report.P99Ms = percentileMs(sorted, 99)
	sort.Slice(cancelLatencies, func(i, j int) bool { return cancelLatencies[i] < cancelLatencies[j] })
	report.CancelP95Ms = percentileMs(cancelLatencies, 95)

	if len(tenantNames) > 0 {
		report.Tenants = tenantBreakdown(tenantNames, tenantWeights, outcomes, latencies)
		report.FairnessJain = jainIndex(tenantNames, tenantWeights, report.Tenants)
		report.TenantP95Ratio = p95Ratio(report.Tenants)
	}
	if *profile == "burst" {
		report.Phases = phaseBreakdown(phaseTags, outcomes, latencies)
		if ctl != nil {
			cs := ctl.Counters()
			report.ScaleUps = cs.ScaleUps
			report.ScaleDowns = cs.ScaleDowns
			report.ScaleUpLatencyMs = cs.ScaleUpLatencyMaxMs
		}
	}

	// Ring-wide gauges: any member answers (stats fan out and merge), and the
	// multi-addr client survives a member killed during the run. A plain
	// target keeps the single-address client.
	statsClient := &grid.Client{Addr: target}
	if len(ringMembers) > 0 {
		statsClient = &grid.Client{Addr: ringMembers[0], Addrs: ringMembers[1:]}
	}
	if stats, err := statsClient.Stats(); err == nil {
		report.MaxQueueDepth = stats.MaxQueueDepth
		if preMaxQueue > report.MaxQueueDepth {
			report.MaxQueueDepth = preMaxQueue
		}
		report.Requeues = stats.Requeues + preRequeues
		report.Evictions = stats.Evicted + preEvictions
	}
	if len(ringMembers) > 0 {
		report.Shards = shardAccounting(ringMembers)
	}

	if *verify {
		if err := verifyAll(verifyClusters, campaign, results); err != nil {
			fail(err)
		}
		report.Verified = true
	}

	fmt.Printf("completed %d/%d in %.3fs  throughput %.1f campaigns/s\n",
		completed, *campaigns, report.WallSeconds, report.ThroughputCPS)
	fmt.Printf("latency p50 %.1fms  p95 %.1fms  p99 %.1fms   max queue depth %d  rejections %d  requeues %d\n",
		report.P50Ms, report.P95Ms, report.P99Ms, report.MaxQueueDepth, report.Rejections, report.Requeues)
	fmt.Printf("wire (%s): %d B tx, %d B rx, %.0f frames/s\n",
		report.Proto, report.BytesTx, report.BytesRx, report.FramesPerSec)
	if len(tenantNames) > 0 {
		for _, name := range tenantNames {
			tr := report.Tenants[name]
			fmt.Printf("tenant %-10s w=%-4g submitted %3d  completed %3d  p50 %.1fms  p95 %.1fms\n",
				name, tr.Weight, tr.Submitted, tr.Completed, tr.P50Ms, tr.P95Ms)
		}
		fmt.Printf("fairness: Jain %.4f  p95 ratio %.2f  quota rejections %d\n",
			report.FairnessJain, report.TenantP95Ratio, report.QuotaRejections)
	}
	if *profile == "burst" {
		for _, name := range []string{"warm", "peak", "cool"} {
			if ph, ok := report.Phases[name]; ok {
				fmt.Printf("phase %-5s %3d campaigns  p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
					name, ph.Campaigns, ph.P50Ms, ph.P95Ms, ph.P99Ms)
			}
		}
		fmt.Printf("fleet: base %d, peak %d (%d samples)", report.FleetBase, report.FleetPeak, len(report.FleetSamples))
		if ctl != nil {
			fmt.Printf("  scale-ups %d, scale-downs %d, scale-up latency max %.1fms",
				report.ScaleUps, report.ScaleDowns, report.ScaleUpLatencyMs)
		}
		fmt.Println()
	}
	if len(report.Shards) > 0 {
		for _, m := range ringMembers {
			sr, ok := report.Shards[m]
			if !ok {
				fmt.Printf("shard %-22s unreachable (no local accounting)\n", m)
				continue
			}
			fmt.Printf("shard %-22s completed %4d  failed %d  requeues %d  max queue %d\n",
				m, sr.Completed, sr.Failed, sr.Requeues, sr.MaxQueue)
		}
	}
	if report.Cancels > 0 {
		fmt.Printf("cancel injection: %d campaign(s) cancelled server-side, cancel latency p95 %.1fms\n",
			report.Cancels, report.CancelP95Ms)
	}
	if report.DaemonRestarts > 0 {
		fmt.Printf("restart injection: %d daemon restart(s), %d reattach(es), %d resubmit(s)\n",
			report.DaemonRestarts, report.Reattaches, report.Resubmits)
	}
	if report.Verified {
		fmt.Println("verification: every chunk report bit-identical to serial evaluation")
	}

	if *out == "" {
		return
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// splitRing parses the -ring member list: whitespace trimmed, empties dropped.
func splitRing(spec string) []string {
	if spec == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(spec, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// defaultClusters rebuilds the cluster map a self-hosted fabric (and an oarun
// -daemon with default flags) serves: the paper's five Grid'5000 profiles,
// capped to n and with procs processors each. It feeds the serial verifier
// when the daemons are external and there is no fabric to read it from.
func defaultClusters(n, procs int) map[string]*platform.Cluster {
	out := map[string]*platform.Cluster{}
	profiles := platform.FiveClusters()
	if n > len(profiles) {
		n = len(profiles)
	}
	for _, cl := range profiles[:n] {
		cl.Procs = procs
		out[cl.Name] = cl
	}
	return out
}

// shardAccounting asks every ring member for its own local stats. A plain
// stats request to a ring member fans out and merges, so each member is
// queried through the forwarded-request envelope instead — the receiver
// serves a forwarded request locally, which is exactly the per-shard view.
// Unreachable members (a killed daemon) are simply absent from the map.
func shardAccounting(members []string) map[string]shardReport {
	out := make(map[string]shardReport, len(members))
	for _, m := range members {
		resp, err := diet.RoundTrip(m, &diet.Request{
			Version: diet.ProtocolVersion,
			Kind:    diet.KindForward,
			Forward: &diet.ForwardRequest{
				From:  "oaload",
				Inner: &diet.Request{Version: diet.ProtocolVersion, Kind: diet.KindStats, Stats: &diet.StatsRequest{}},
			},
		})
		if err != nil || resp.Stats == nil {
			continue
		}
		out[m] = shardReport{
			Completed: resp.Stats.Completed,
			Failed:    resp.Stats.Failed,
			Cancelled: resp.Stats.Cancelled,
			Requeues:  resp.Stats.Requeues,
			MaxQueue:  resp.Stats.MaxQueueDepth,
		}
	}
	return out
}

// scheduleBurstProfile builds the elastic-fleet acceptance workload: a warm
// quarter of the campaigns arriving uniformly at rate, a peak half at rate x
// mult, and a cool quarter back at rate. Arrivals are fully deterministic
// (uniform steps within each phase) so the run replays exactly; the returned
// tags name each campaign's phase for the report's percentile breakdown.
func scheduleBurstProfile(n int, rate, mult float64) ([]time.Duration, []string, error) {
	if n <= 0 {
		return nil, nil, errors.New("oaload: need at least one campaign")
	}
	if rate <= 0 {
		return nil, nil, errors.New("oaload: -profile burst needs -rate > 0")
	}
	if mult < 1 {
		return nil, nil, errors.New("oaload: -profile burst needs -peak-mult >= 1")
	}
	warm := n / 4
	peak := n / 2
	out := make([]time.Duration, n)
	tags := make([]string, n)
	t := 0.0
	for i := 0; i < n; i++ {
		r := rate
		switch {
		case i < warm:
			tags[i] = "warm"
		case i < warm+peak:
			tags[i], r = "peak", rate*mult
		default:
			tags[i] = "cool"
		}
		out[i] = time.Duration(t * float64(time.Second))
		t += 1.0 / r
	}
	return out, tags, nil
}

// phaseBreakdown folds completed-campaign latencies into per-phase
// percentiles, keyed by the tags scheduleBurstProfile assigned.
func phaseBreakdown(tags []string, outcomes []campaignOutcome, latencies []time.Duration) map[string]phaseReport {
	buckets := map[string][]time.Duration{}
	for i, oc := range outcomes {
		if oc.res == nil {
			continue
		}
		buckets[tags[i]] = append(buckets[tags[i]], latencies[i])
	}
	out := make(map[string]phaseReport, len(buckets))
	for name, lats := range buckets {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		out[name] = phaseReport{
			Campaigns: len(lats),
			P50Ms:     percentileMs(lats, 50),
			P95Ms:     percentileMs(lats, 95),
			P99Ms:     percentileMs(lats, 99),
		}
	}
	return out
}

// parseAutoscale parses the -autoscale "min:max" fleet bounds; an empty
// spec (autoscaling off) parses to (0, 0).
func parseAutoscale(spec string) (min, max int, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	lo, hi, ok := strings.Cut(spec, ":")
	if ok {
		min, err = strconv.Atoi(strings.TrimSpace(lo))
		if err == nil {
			max, err = strconv.Atoi(strings.TrimSpace(hi))
		}
	}
	if !ok || err != nil || min < 1 || max < min {
		return 0, 0, fmt.Errorf("oaload: bad -autoscale %q (want min:max with 1 <= min <= max)", spec)
	}
	return min, max, nil
}

// parseSpeeds parses the -sed-speeds factor list.
func parseSpeeds(spec string) ([]float64, error) {
	if spec == "" {
		return nil, nil
	}
	var out []float64
	for _, p := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("oaload: bad -sed-speeds entry %q (want a positive factor)", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// schedule precomputes the deterministic arrival offsets of every campaign.
func schedule(pattern string, n int, rate float64, burst int, gap time.Duration, seed int64) ([]time.Duration, error) {
	if n <= 0 {
		return nil, errors.New("oaload: need at least one campaign")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	switch pattern {
	case "poisson":
		if rate <= 0 {
			return nil, errors.New("oaload: poisson arrivals need -rate > 0")
		}
		t := 0.0
		for i := range out {
			t += rng.ExpFloat64() / rate
			out[i] = time.Duration(t * float64(time.Second))
		}
	case "uniform":
		if rate <= 0 {
			return nil, errors.New("oaload: uniform arrivals need -rate > 0")
		}
		step := time.Duration(float64(time.Second) / rate)
		for i := range out {
			out[i] = time.Duration(i) * step
		}
	case "burst":
		if burst <= 0 {
			return nil, errors.New("oaload: burst arrivals need -burst > 0")
		}
		for i := range out {
			out[i] = time.Duration(i/burst) * gap
		}
	default:
		return nil, fmt.Errorf("oaload: unknown arrival pattern %q (want poisson, burst or uniform)", pattern)
	}
	return out, nil
}

// percentileMs picks the nearest-rank percentile from ascending latencies.
func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return float64(sorted[rank]) / float64(time.Millisecond)
}

// parseTenantWeights parses "gold=10,silver=1" into a weight map.
func parseTenantWeights(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, pair := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("oaload: bad -tenants entry %q (want name=weight)", pair)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("oaload: bad -tenants weight %q for tenant %q (want a positive number)", val, name)
		}
		out[name] = w
	}
	return out, nil
}

// tenantBreakdown folds the per-campaign outcomes into per-tenant service
// numbers. Campaign i belongs to tenant i%len(names) — the same round-robin
// assignment the injection loop used.
func tenantBreakdown(names []string, weights map[string]float64, outcomes []campaignOutcome, latencies []time.Duration) map[string]tenantReport {
	buckets := make(map[string][]time.Duration, len(names))
	out := make(map[string]tenantReport, len(names))
	for _, name := range names {
		out[name] = tenantReport{Weight: weights[name]}
	}
	for i, oc := range outcomes {
		name := names[i%len(names)]
		tr := out[name]
		tr.Submitted++
		switch {
		case oc.cancelled:
			tr.Cancels++
		case oc.res != nil:
			tr.Completed++
			buckets[name] = append(buckets[name], latencies[i])
		}
		out[name] = tr
	}
	for name, lats := range buckets {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		tr := out[name]
		tr.P50Ms = percentileMs(lats, 50)
		tr.P95Ms = percentileMs(lats, 95)
		var sum time.Duration
		for _, d := range lats {
			sum += d
		}
		tr.MeanMs = float64(sum) / float64(len(lats)) / float64(time.Millisecond)
		out[name] = tr
	}
	return out
}

// jainIndex is Jain's fairness index (Σx)²/(n·Σx²) over the tenants'
// weight-normalized completed throughput: 1.0 means every tenant got exactly
// its weighted share, 1/n means one tenant took everything.
func jainIndex(names []string, weights map[string]float64, tenants map[string]tenantReport) float64 {
	var sum, sumSq float64
	for _, name := range names {
		x := float64(tenants[name].Completed) / weights[name]
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(names)) * sumSq)
}

// p95Ratio is max/min p95 latency across tenants that completed work — the
// tail-latency face of fairness (1.0 = identical tails). Zero when fewer
// than two tenants completed anything.
func p95Ratio(tenants map[string]tenantReport) float64 {
	min, max := math.Inf(1), 0.0
	n := 0
	for _, tr := range tenants {
		if tr.Completed == 0 || tr.P95Ms <= 0 {
			continue
		}
		n++
		min = math.Min(min, tr.P95Ms)
		max = math.Max(max, tr.P95Ms)
	}
	if n < 2 || min <= 0 {
		return 0
	}
	return max / min
}

// campaignOutcome is one injected campaign's bookkeeping.
type campaignOutcome struct {
	res        *oagrid.CampaignResult
	rejections int
	// quotaRejections counts the subset of rejections that were the tenant's
	// own quota rather than the shared queue bound.
	quotaRejections int
	reattaches      int
	resubmits       int
	cancelled       bool
	// cancelLatency is the time from issuing Runner.Cancel to the handle
	// resolving with the cancelled verdict.
	cancelLatency time.Duration
	err           error
}

// runCampaign drives one campaign through the Runner with admission-control
// backoff: rejected submissions retry every few milliseconds until accepted
// or the deadline passes. With restart injection on, a stream that dies
// after admission is recovered through Runner.Attach — retried until the
// (possibly restarting) daemon answers — and only an ErrUnknownCampaign
// verdict falls back to resubmission. With wantCancel the campaign is
// cancelled server-side as soon as it is admitted; a fast campaign may
// still beat the cancel to the finish line, in which case it counts as
// completed (cancelling a finished campaign is a no-op).
func runCampaign(ctx context.Context, runner oagrid.Runner, c oagrid.Campaign, deadline time.Time, reattach, wantCancel bool, opts []oagrid.SubmitOption) campaignOutcome {
	var out campaignOutcome
	pause := func() bool {
		if time.Now().Add(5 * time.Millisecond).After(deadline) {
			return false
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(5 * time.Millisecond):
		}
		return true
	}
	// cancelSent carries the timestamp of the issued cancel — a channel, so
	// the latency read after Wait has a sync edge with the injector.
	cancelSent := make(chan time.Time, 1)
	cancelLatency := func() time.Duration {
		select {
		case at := <-cancelSent:
			return time.Since(at)
		default:
			return 0
		}
	}
	for {
		h, err := runner.Run(ctx, c, opts...)
		if err != nil {
			out.err = err
			return out
		}
		if wantCancel {
			// A fresh attempt measures its own cancel: drop a previous
			// attempt's banked timestamp (its submission died), or the
			// reported latency would span the failed attempt too.
			select {
			case <-cancelSent:
			default:
			}
			go func() {
				// Wait for admission: the ID is the cancel handle. A
				// rejected or finished campaign closes Done first.
				for h.ID() == 0 {
					select {
					case <-h.Done():
						return
					case <-time.After(time.Millisecond):
					}
				}
				// Bank the issue time before the RPC: the verdict frame can
				// resolve Wait before the cancel round trip even returns.
				select {
				case cancelSent <- time.Now():
				default:
				}
				// Retry through a restarting daemon's dial-refused window.
				for {
					if err := runner.Cancel(ctx, h.ID()); err == nil || errors.Is(err, oagrid.ErrUnknownCampaign) {
						return
					}
					select {
					case <-ctx.Done():
						return
					case <-h.Done():
						return
					case <-time.After(5 * time.Millisecond):
					}
				}
			}()
		}
		res, err := h.Wait()
		if err == nil {
			out.res = res
			return out
		}
		if wantCancel && errors.Is(err, oagrid.ErrCampaignCancelled) {
			out.cancelled = true
			out.cancelLatency = cancelLatency()
			return out
		}
		if errors.Is(err, oagrid.ErrRejected) {
			out.rejections++
			if errors.Is(err, oagrid.ErrQuotaExceeded) {
				out.quotaRejections++
			}
			if !pause() {
				out.err = err
				return out
			}
			continue
		}
		id := h.ID()
		if !reattach || id == 0 {
			// No restart injection (any failure is real), or the stream died
			// before the admission verdict: resubmit if we can.
			if !reattach {
				out.err = err
				return out
			}
			out.resubmits++
			if !pause() {
				out.err = err
				return out
			}
			continue
		}
		// Admitted, then the stream broke: the campaign lives on (journal or
		// daemon memory) — reattach until the daemon answers. A journaled
		// terminal failure keeps answering ErrCampaignFailed on every attach;
		// allow a couple of retries (the shutdown window of a restarting
		// daemon also reads as ErrCampaignFailed) and then treat it as the
		// permanent verdict it is, instead of replaying the history until the
		// deadline.
		failedVerdicts := 0
		for {
			ah, aerr := runner.Attach(ctx, id)
			if aerr == nil {
				res, aerr = ah.Wait()
				if aerr == nil {
					out.reattaches++
					out.res = res
					return out
				}
				if wantCancel && errors.Is(aerr, oagrid.ErrCampaignCancelled) {
					// The cancel landed while the stream was cut; the
					// journaled verdict survives the daemon restart.
					out.cancelled = true
					out.cancelLatency = cancelLatency()
					return out
				}
				if errors.Is(aerr, oagrid.ErrUnknownCampaign) {
					out.resubmits++
					break // back to a fresh submission
				}
				if errors.Is(aerr, oagrid.ErrCampaignFailed) {
					if failedVerdicts++; failedVerdicts >= 3 {
						out.err = aerr
						return out
					}
				}
			}
			if !pause() {
				out.err = aerr
				return out
			}
		}
		if !pause() {
			out.err = err
			return out
		}
	}
}

// verifyAll re-evaluates every chunk report serially in-process through
// grid.Verifier and demands bit-identical makespans — the service must be
// an exact distributed replay of engine.Evaluate, even across
// failure-driven requeues, daemon restarts and ring failovers.
func verifyAll(clusters map[string]*platform.Cluster, c oagrid.Campaign, results []*oagrid.CampaignResult) error {
	v, err := grid.NewVerifier(clusters, c.Heuristic)
	if err != nil {
		return err
	}
	for i, res := range results {
		if res == nil {
			continue
		}
		chunks := make([]grid.ChunkReport, len(res.Reports))
		for j, rep := range res.Reports {
			chunks[j] = grid.ChunkReport{Cluster: rep.Cluster, Scenarios: rep.Scenarios, Makespan: rep.Makespan, Round: rep.Round}
		}
		if err := v.VerifyChunks(c.Experiment, res.Makespan, chunks); err != nil {
			return fmt.Errorf("campaign %d: %w", i, err)
		}
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "oaload:", err)
	os.Exit(1)
}
