// Command oabench regenerates the paper's evaluation figures as CSV series
// and ASCII plots, and benchmarks the evaluation engine itself.
//
// Usage:
//
//	oabench -fig all                 # everything, reduced scale (~seconds)
//	oabench -fig 8 -full             # figure 8 at full paper scale
//	oabench -fig 7 -csv out/         # also write CSV files
//	oabench -fig ablations           # the DESIGN.md ablation experiments
//	oabench -fig engine              # serial-vs-parallel engine benchmark
//	                                 # (writes BENCH_engine.json)
//	oabench -gate BENCH_baseline.json
//	                                 # CI bench-regression gate: compare the
//	                                 # current BENCH_engine.json + BENCH_grid.json
//	                                 # against the committed baseline, exit 1 on
//	                                 # >20% throughput regression or any lost
//	                                 # bit-identical verification
//
// Figure numbering follows the paper: 1 (task-duration calibration from the
// toy coupled model), 7 (optimal groupings), 8 (single-cluster gains),
// 10 (grid-repartition gains). Every measured figure runs through
// internal/engine's batched sweep runner; -workers sizes the pool.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"oagrid/internal/climate/field"
	"oagrid/internal/core"
	"oagrid/internal/figures"
	"oagrid/internal/stats"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 1, 7, 8, 10, ablations, engine or all")
		full     = flag.Bool("full", false, "paper-scale workload (NS=10, NM=1800, dense sweeps); slower")
		months   = flag.Int("months", 0, "override months per scenario (0 = 60 reduced / 1800 full)")
		step     = flag.Int("step", 0, "override resource sweep stride (0 = 5 reduced / 1 full)")
		csvDir   = flag.String("csv", "", "directory to write CSV series into (optional)")
		workers  = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
		benchOut = flag.String("bench-out", "BENCH_engine.json", "path of the engine benchmark artifact (empty = skip writing)")

		gate         = flag.String("gate", "", "bench-regression gate: path of the committed BENCH_baseline.json (runs the gate instead of figures)")
		engineJSON   = flag.String("engine-json", "BENCH_engine.json", "current engine artifact for -gate (empty = skip)")
		gridJSON     = flag.String("grid-json", "BENCH_grid.json", "current grid load artifact for -gate (empty = skip)")
		fairnessJSON = flag.String("fairness-json", "", "multi-tenant fairness artifact for -gate, from `oaload -tenants ...` (empty = skip fairness floors)")
		ringJSON     = flag.String("ring-json", "", "sharded-ring artifact for -gate, from `oaload -ring ...` (empty = skip the ring floor)")
		asJSON       = flag.String("autoscale-json", "", "elastic-fleet artifact for -gate, from `oaload -profile burst -autoscale ...` (empty = skip the autoscale bounds)")
		tolerance    = flag.Float64("tolerance", 0, "allowed throughput regression for -gate (0 = baseline's, else 20%)")
	)
	flag.Parse()

	if *gate != "" {
		runGate(*gate, *engineJSON, *gridJSON, *fairnessJSON, *ringJSON, *asJSON, *tolerance)
		return
	}

	cfg := figures.DefaultConfig()
	if *full {
		cfg.App = core.Default()
		cfg.RStep = 1
	} else {
		cfg.App = core.Application{Scenarios: 10, Months: 60}
		cfg.RStep = 5
	}
	if *months > 0 {
		cfg.App.Months = *months
	}
	if *step > 0 {
		cfg.RStep = *step
	}
	cfg.Workers = *workers

	want := func(name string) bool { return *fig == "all" || *fig == name }
	ran := false
	if want("1") {
		ran = true
		runFigure1(*full)
	}
	if want("7") {
		ran = true
		runFigure7(cfg, *csvDir)
	}
	if want("8") {
		ran = true
		runFigure8(cfg, *csvDir)
	}
	if want("10") {
		ran = true
		runFigure10(cfg, *csvDir, *full)
	}
	if want("ablations") {
		ran = true
		runAblations(cfg, *csvDir)
	}
	if want("engine") {
		ran = true
		runEngineBench(cfg, *benchOut)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "oabench: unknown figure %q (want 1, 7, 8, 10, ablations, engine or all)\n", *fig)
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "oabench:", err)
	os.Exit(1)
}

func writeCSV(dir, name string, series ...*stats.Series) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err)
	}
	var b strings.Builder
	for _, s := range series {
		b.WriteString(s.CSV())
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func runFigure1(full bool) {
	fmt.Println("== Figure 1: task-duration calibration (toy coupled model) ==")
	dir, err := os.MkdirTemp("", "oabench-fig1-*")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)
	cfg := figures.Figure1Config{
		WorkDir:   dir,
		AtmosGrid: field.Grid{NLat: 24, NLon: 48},
		OceanGrid: field.Grid{NLat: 36, NLon: 72},
		Days:      3,
	}
	if full {
		cfg.AtmosGrid = field.Grid{NLat: 48, NLon: 96}
		cfg.OceanGrid = field.Grid{NLat: 72, NLon: 144}
		cfg.Days = 30
	}
	res, err := figures.Figure1(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Println(res.Table())
}

func runFigure7(cfg figures.Config, csvDir string) {
	fmt.Println("== Figure 7: optimal groupings for 10 scenario simulations ==")
	s, err := figures.Figure7(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Print(stats.ASCIIPlot(100, 12, s))
	writeCSV(csvDir, "figure7.csv", s)
}

func runFigure8(cfg figures.Config, csvDir string) {
	fmt.Printf("== Figure 8: gains over basic (NS=%d, NM=%d, 5 cluster profiles) ==\n",
		cfg.App.Scenarios, cfg.App.Months)
	series, err := figures.Figure8(cfg)
	if err != nil {
		fail(err)
	}
	for _, s := range series {
		fmt.Printf("-- %s --\n", s.Label)
		fmt.Print(stats.ASCIIPlot(100, 10, s))
	}
	writeCSV(csvDir, "figure8.csv", series...)
}

func runFigure10(cfg figures.Config, csvDir string, full bool) {
	fmt.Printf("== Figure 10: grid gains, 2-5 clusters (NS=%d, NM=%d) ==\n",
		cfg.App.Scenarios, cfg.App.Months)
	sweep := []int{11, 25, 50, 75, 99}
	if full {
		sweep = sweep[:0]
		for r := 11; r <= 99; r += 2 {
			sweep = append(sweep, r)
		}
	}
	series, points, err := figures.Figure10(cfg, sweep)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%8s %8s %14s %14s %14s\n", "clusters", "procs", "gain-redis-%", "gain-a2m-%", "gain-knap-%")
	for _, pt := range points {
		fmt.Printf("%8d %8d %14.2f %14.2f %14.2f\n",
			pt.Clusters, pt.ProcsPerCluster, pt.Gains[0], pt.Gains[1], pt.Gains[2])
	}
	writeCSV(csvDir, "figure10.csv", series...)
}

func runAblations(cfg figures.Config, csvDir string) {
	fmt.Println("== Ablation A1: knapsack value function (makespans, lower is better) ==")
	a1, err := figures.AblationKnapsackValue(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Print(stats.ASCIIPlot(100, 10, a1...))
	writeCSV(csvDir, "ablation-knapsack-value.csv", a1...)

	fmt.Println("== Ablation A2: dispatch fairness policies (makespans) ==")
	a2, err := figures.AblationFairness(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Print(stats.ASCIIPlot(100, 10, a2...))
	writeCSV(csvDir, "ablation-fairness.csv", a2...)

	fmt.Println("== Ablation A3: analytical-model error vs executor (%) ==")
	a3, err := figures.AblationModelError(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Print(stats.ASCIIPlot(100, 8, a3))
	writeCSV(csvDir, "ablation-model-error.csv", a3)

	fmt.Println("== Ablation A4: knapsack gain under duration jitter (%) ==")
	a4, err := figures.AblationJitter(cfg, []float64{0, 0.05, 0.15}, 3)
	if err != nil {
		fail(err)
	}
	fmt.Print(stats.ASCIIPlot(100, 10, a4...))
	writeCSV(csvDir, "ablation-jitter.csv", a4...)

	fmt.Println("== Ablation A5: related-work baselines (CPA, sequential DAGs; makespans) ==")
	a5, err := figures.AblationCPA(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Print(stats.ASCIIPlot(100, 10, a5...))
	writeCSV(csvDir, "ablation-cpa.csv", a5...)
}
