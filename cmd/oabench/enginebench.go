package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"oagrid/internal/engine"
	"oagrid/internal/figures"
)

// The engine benchmark runs the Figure-8 job matrix — the reference sweep
// workload of the repository — through every in-process backend twice, with
// one worker and with a full pool, and writes the wall-clock and makespan
// summary as a JSON artifact. Future PRs compare against this file to keep a
// performance trajectory of the evaluation hot path.

// backendBench is one backend's serial-vs-parallel measurement.
type backendBench struct {
	Backend         string  `json:"backend"`
	Jobs            int     `json:"jobs"`
	Workers         int     `json:"workers"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	BitIdentical    bool    `json:"bit_identical"`
	BestMakespanS   float64 `json:"best_makespan_s"`
	BestHeuristic   string  `json:"best_heuristic"`
}

// engineBench is the BENCH_engine.json schema.
type engineBench struct {
	Workload   string         `json:"workload"`
	Scenarios  int            `json:"scenarios"`
	Months     int            `json:"months"`
	RStep      int            `json:"rstep"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Backends   []backendBench `json:"backends"`
}

func runEngineBench(cfg figures.Config, outPath string) {
	m := figures.Figure8Matrix(cfg)
	jobs := m.Jobs()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	report := engineBench{
		Workload:   "figure-8 matrix (5 profiles × R sweep × 4 heuristics)",
		Scenarios:  cfg.App.Scenarios,
		Months:     cfg.App.Months,
		RStep:      cfg.RStep,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	fmt.Printf("== Engine benchmark: %d jobs, %d workers ==\n", len(jobs), workers)
	for _, ev := range engine.Backends() {
		t0 := time.Now()
		serial := engine.Sweep(ev, jobs, 1)
		serialWall := time.Since(t0)
		t0 = time.Now()
		parallel := engine.Sweep(ev, jobs, workers)
		parallelWall := time.Since(t0)

		b := backendBench{
			Backend:         ev.Name(),
			Jobs:            len(jobs),
			Workers:         workers,
			SerialSeconds:   serialWall.Seconds(),
			ParallelSeconds: parallelWall.Seconds(),
			BitIdentical:    identicalResults(serial, parallel),
			BestMakespanS:   math.Inf(1),
		}
		if parallelWall > 0 {
			b.Speedup = serialWall.Seconds() / parallelWall.Seconds()
		}
		for i, r := range serial {
			if r.Err != nil {
				fail(r.Err)
			}
			if r.Result.Makespan < b.BestMakespanS {
				b.BestMakespanS = r.Result.Makespan
				b.BestHeuristic = jobs[i].Heuristic.Name()
			}
		}
		report.Backends = append(report.Backends, b)
		fmt.Printf("%-8s serial %8.3fs   parallel %8.3fs   speedup %5.2fx   bit-identical %v\n",
			ev.Name(), b.SerialSeconds, b.ParallelSeconds, b.Speedup, b.BitIdentical)
	}

	if outPath == "" {
		return
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}

// identicalResults compares two sweep outputs at float-bit granularity.
func identicalResults(a, b []engine.JobResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		ra, rb := a[i], b[i]
		if (ra.Err == nil) != (rb.Err == nil) {
			return false
		}
		if ra.Err != nil && ra.Err.Error() != rb.Err.Error() {
			return false
		}
		if math.Float64bits(ra.Result.Makespan) != math.Float64bits(rb.Result.Makespan) ||
			math.Float64bits(ra.Result.MainsDone) != math.Float64bits(rb.Result.MainsDone) ||
			math.Float64bits(ra.Result.BusyProcSeconds) != math.Float64bits(rb.Result.BusyProcSeconds) ||
			math.Float64bits(ra.Result.Utilization) != math.Float64bits(rb.Result.Utilization) ||
			ra.Result.RestartedMains != rb.Result.RestartedMains {
			return false
		}
		if len(ra.Alloc.Groups) != len(rb.Alloc.Groups) || ra.Alloc.PostProcs != rb.Alloc.PostProcs {
			return false
		}
		for g := range ra.Alloc.Groups {
			if ra.Alloc.Groups[g] != rb.Alloc.Groups[g] {
				return false
			}
		}
	}
	return true
}
