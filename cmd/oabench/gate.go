package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// The bench-regression gate compares the artifacts of the current run —
// BENCH_engine.json from `oabench -fig engine` and BENCH_grid.json from
// `oaload` — against the committed BENCH_baseline.json and fails (exit 1)
// on a throughput regression beyond the tolerance. It also re-asserts the
// correctness bits both artifacts carry: a run that got faster by dropping
// bit-identical results does not pass.

// baseline is the committed BENCH_baseline.json schema. Floors are absolute
// throughputs: set them conservatively below the reference machine's
// measurement so hardware variance does not trip the gate, and let the
// tolerance catch real regressions from there.
type baseline struct {
	Note      string  `json:"note"`
	Tolerance float64 `json:"tolerance"`
	Engine    struct {
		// JobsPerSec maps backend name to its parallel sweep throughput floor.
		JobsPerSec map[string]float64 `json:"jobs_per_sec"`
	} `json:"engine"`
	Grid struct {
		ThroughputCPS float64 `json:"throughput_cps"`
	} `json:"grid"`
	// Ring floors the sharded-ring run (`oaload -ring ...` against a
	// 3-daemon ring → -ring-json): aggregate throughput across the shards.
	Ring struct {
		ThroughputCPS float64 `json:"throughput_cps"`
	} `json:"ring"`
	// Fairness floors apply to the dedicated multi-tenant run (`oaload
	// -tenants ...` → -fairness-json). They are absolute bounds, not
	// tolerance-scaled throughputs: Jain below JainMin or a per-tenant p95
	// ratio above P95RatioMax is a fairness regression whatever the speed.
	Fairness struct {
		JainMin     float64 `json:"jain_min"`
		P95RatioMax float64 `json:"p95_ratio_max"`
	} `json:"fairness"`
	// Autoscale bounds the elastic-fleet burst run (`oaload -profile burst
	// -autoscale ...` → -autoscale-json). Like fairness these are absolute
	// bounds: the run must have grown the fleet to at least FleetPeakMin,
	// shrunk it back (ScaleDownsMin), kept the peak-phase p99 under the
	// ceiling, and reacted within ScaleUpLatencyMaxMs.
	Autoscale struct {
		FleetPeakMin        int     `json:"fleet_peak_min"`
		ScaleDownsMin       int     `json:"scale_downs_min"`
		PeakP99MaxMs        float64 `json:"peak_p99_max_ms"`
		ScaleUpLatencyMaxMs float64 `json:"scale_up_latency_max_ms"`
	} `json:"autoscale"`
}

// gateEngine mirrors the BENCH_engine.json fields the gate reads.
type gateEngine struct {
	Backends []struct {
		Backend         string  `json:"backend"`
		Jobs            int     `json:"jobs"`
		ParallelSeconds float64 `json:"parallel_seconds"`
		BitIdentical    bool    `json:"bit_identical"`
	} `json:"backends"`
}

// gateGrid mirrors the BENCH_grid.json fields the gate reads.
type gateGrid struct {
	Campaigns int `json:"campaigns"`
	Completed int `json:"completed"`
	// Cancels counts campaigns the injector cancelled server-side: a
	// successful control-plane operation, so completion accounting is
	// completed + cancels == campaigns.
	Cancels       int     `json:"cancels"`
	ThroughputCPS float64 `json:"throughput_cps"`
	Verified      bool    `json:"verified_bit_identical"`
	SeDKilled     bool    `json:"sed_killed"`
	// The fairness aggregates of a multi-tenant run (zero otherwise).
	FairnessJain   float64 `json:"fairness_jain"`
	TenantP95Ratio float64 `json:"tenant_p95_ratio"`
}

// gateAutoscale mirrors the BENCH_autoscale.json fields the gate reads: the
// elastic-fleet witness (peak size, completed scale-downs, spawn latency)
// plus the invariants a scale-down must not break (zero requeues,
// bit-identical verification).
type gateAutoscale struct {
	Campaigns        int     `json:"campaigns"`
	Completed        int     `json:"completed"`
	Requeues         int     `json:"requeues"`
	Verified         bool    `json:"verified_bit_identical"`
	FleetBase        int     `json:"fleet_base"`
	FleetPeak        int     `json:"fleet_peak"`
	ScaleUps         uint64  `json:"scale_ups"`
	ScaleDowns       uint64  `json:"scale_downs"`
	ScaleUpLatencyMs float64 `json:"scale_up_latency_ms"`
	Phases           map[string]struct {
		P99Ms float64 `json:"p99_ms"`
	} `json:"phases"`
}

func runGate(basePath, enginePath, gridPath, fairnessPath, ringPath, autoscalePath string, tolerance float64) {
	var base baseline
	readJSON(basePath, &base)
	if tolerance <= 0 {
		tolerance = base.Tolerance
	}
	if tolerance <= 0 {
		tolerance = 0.20
	}
	fmt.Printf("== Bench-regression gate: tolerance %.0f%% against %s ==\n", tolerance*100, basePath)
	if base.Note != "" {
		fmt.Printf("baseline note: %s\n", base.Note)
	}

	failed := false
	check := func(name string, current, floor float64) {
		limit := floor * (1 - tolerance)
		verdict := "ok"
		if current < limit {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-28s current %10.1f   baseline %10.1f   limit %10.1f   %s\n",
			name, current, floor, limit, verdict)
	}

	if enginePath != "" {
		var eng gateEngine
		readJSON(enginePath, &eng)
		for _, b := range eng.Backends {
			if !b.BitIdentical {
				fmt.Printf("%-28s parallel sweep NOT bit-identical to serial\n", "engine/"+b.Backend)
				failed = true
			}
			floor, ok := base.Engine.JobsPerSec[b.Backend]
			if !ok || floor <= 0 {
				continue
			}
			current := 0.0
			if b.ParallelSeconds > 0 {
				current = float64(b.Jobs) / b.ParallelSeconds
			}
			check("engine/"+b.Backend+" jobs/s", current, floor)
		}
	}

	if gridPath != "" {
		var g gateGrid
		readJSON(gridPath, &g)
		if g.Completed+g.Cancels != g.Campaigns {
			fmt.Printf("%-28s %d completed + %d cancelled of %d campaigns\n", "grid/completion", g.Completed, g.Cancels, g.Campaigns)
			failed = true
		}
		if !g.Verified {
			fmt.Printf("%-28s campaign reports not verified bit-identical\n", "grid/verification")
			failed = true
		}
		if base.Grid.ThroughputCPS > 0 {
			check("grid campaigns/s", g.ThroughputCPS, base.Grid.ThroughputCPS)
		}
	}

	if ringPath != "" {
		var r gateGrid
		readJSON(ringPath, &r)
		if r.Completed+r.Cancels != r.Campaigns {
			fmt.Printf("%-28s %d completed + %d cancelled of %d campaigns\n", "ring/completion", r.Completed, r.Cancels, r.Campaigns)
			failed = true
		}
		if !r.Verified {
			fmt.Printf("%-28s campaign reports not verified bit-identical\n", "ring/verification")
			failed = true
		}
		if base.Ring.ThroughputCPS > 0 {
			check("ring campaigns/s", r.ThroughputCPS, base.Ring.ThroughputCPS)
		}
	}

	if fairnessPath != "" {
		var f gateGrid
		readJSON(fairnessPath, &f)
		if f.Completed+f.Cancels != f.Campaigns {
			fmt.Printf("%-28s %d completed + %d cancelled of %d campaigns\n", "fairness/completion", f.Completed, f.Cancels, f.Campaigns)
			failed = true
		}
		if !f.Verified {
			fmt.Printf("%-28s campaign reports not verified bit-identical\n", "fairness/verification")
			failed = true
		}
		if floor := base.Fairness.JainMin; floor > 0 {
			verdict := "ok"
			if f.FairnessJain < floor {
				verdict = "REGRESSION"
				failed = true
			}
			fmt.Printf("%-28s current %10.4f   floor    %10.4f   %s\n", "fairness Jain index", f.FairnessJain, floor, verdict)
		}
		if ceil := base.Fairness.P95RatioMax; ceil > 0 {
			verdict := "ok"
			if f.TenantP95Ratio > ceil {
				verdict = "REGRESSION"
				failed = true
			}
			fmt.Printf("%-28s current %10.2f   ceiling  %10.2f   %s\n", "fairness tenant p95 ratio", f.TenantP95Ratio, ceil, verdict)
		}
	}

	if autoscalePath != "" {
		var a gateAutoscale
		readJSON(autoscalePath, &a)
		if a.Completed != a.Campaigns {
			fmt.Printf("%-28s %d completed of %d campaigns\n", "autoscale/completion", a.Completed, a.Campaigns)
			failed = true
		}
		if !a.Verified {
			fmt.Printf("%-28s campaign reports not verified bit-identical\n", "autoscale/verification")
			failed = true
		}
		if a.Requeues != 0 {
			fmt.Printf("%-28s %d chunks requeued, want 0 (drain must finish in-flight work)\n", "autoscale/requeues", a.Requeues)
			failed = true
		}
		if floor := base.Autoscale.FleetPeakMin; floor > 0 {
			verdict := "ok"
			if a.FleetPeak < floor {
				verdict = "REGRESSION"
				failed = true
			}
			fmt.Printf("%-28s current %10d   floor    %10d   %s\n", "autoscale fleet peak", a.FleetPeak, floor, verdict)
		}
		if floor := base.Autoscale.ScaleDownsMin; floor > 0 {
			verdict := "ok"
			if a.ScaleDowns < uint64(floor) {
				verdict = "REGRESSION"
				failed = true
			}
			fmt.Printf("%-28s current %10d   floor    %10d   %s\n", "autoscale scale-downs", a.ScaleDowns, floor, verdict)
		}
		if ceil := base.Autoscale.PeakP99MaxMs; ceil > 0 {
			verdict := "ok"
			p99 := a.Phases["peak"].P99Ms
			if p99 > ceil {
				verdict = "REGRESSION"
				failed = true
			}
			fmt.Printf("%-28s current %10.1f   ceiling  %10.1f   %s\n", "autoscale peak p99 ms", p99, ceil, verdict)
		}
		if ceil := base.Autoscale.ScaleUpLatencyMaxMs; ceil > 0 {
			verdict := "ok"
			if a.ScaleUpLatencyMs > ceil {
				verdict = "REGRESSION"
				failed = true
			}
			fmt.Printf("%-28s current %10.1f   ceiling  %10.1f   %s\n", "autoscale spawn latency ms", a.ScaleUpLatencyMs, ceil, verdict)
		}
	}

	if failed {
		fmt.Println("gate: FAILED")
		os.Exit(1)
	}
	fmt.Println("gate: ok")
}

func readJSON(path string, v any) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
}
