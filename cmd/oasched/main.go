// Command oasched plans and simulates one scheduling configuration: it
// prints the processor grouping every heuristic chooses for a cluster, the
// analytical and simulated makespans, and optionally an ASCII Gantt chart.
// Planning and evaluation run through the unified engine, so the model and
// simulated columns come from the same two pluggable backends the figure
// harness uses, and the per-heuristic evaluations run as one batched sweep.
//
// With -addr the configuration is submitted as a campaign to a live grid
// scheduler daemon (oarun -daemon) instead of simulated locally, streaming
// typed progress; -attach reconnects to a campaign the daemon already
// knows — after a network cut, or a daemon restart on a -state dir — and
// replays its full history before following it live. The control-plane
// verbs drive the same daemon: -list enumerates its campaign table (with
// -status/-labels filters), -info prints one campaign's snapshot, and
// -cancel stops a campaign server-side — the daemon journals the
// cancellation, so it survives restarts. Submissions take per-campaign
// options: -priority orders the daemon's admission queue, -labels tags the
// campaign for -list filters, -deadline bounds it individually.
//
// Usage:
//
//	oasched -r 53 -ns 10 -nm 1800                  # the paper's worked example
//	oasched -r 53 -ns 4 -nm 6 -heuristic knapsack -gantt
//	oasched -r 60 -speed 1.29                      # a slower cluster profile
//	oasched -r 53 -heuristic cpa                   # related-work baseline
//	oasched -addr 127.0.0.1:7714 -ns 10 -nm 1800   # submit to a daemon
//	oasched -addr 127.0.0.1:7714 -ns 10 -priority 5 -labels team=ocean,tier=gold
//	oasched -addr 127.0.0.1:7714 -attach 17        # reattach to campaign 17
//	oasched -addr 127.0.0.1:7714 -list             # the daemon's campaign table
//	oasched -addr 127.0.0.1:7714 -list -status running -labels team=ocean
//	oasched -addr 127.0.0.1:7714 -info 17          # one campaign's snapshot
//	oasched -addr 127.0.0.1:7714 -cancel 17        # stop campaign 17 server-side
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"oagrid"
	"oagrid/internal/baseline"
	"oagrid/internal/core"
	"oagrid/internal/engine"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
)

func main() {
	var (
		r         = flag.Int("r", 53, "processors in the cluster")
		ns        = flag.Int("ns", 10, "scenarios (NS)")
		nm        = flag.Int("nm", 1800, "months per scenario (NM)")
		heuristic = flag.String("heuristic", "", "only this heuristic: basic, redistribute, all-to-main, knapsack, cpa, sequential-dags (default: the paper's four)")
		speed     = flag.Float64("speed", 1.0, "cluster slowness factor (1.0 = reference, 1177s..1622s anchors ≈ 0.93..1.29)")
		gantt     = flag.Bool("gantt", false, "print an ASCII Gantt chart (small workloads only)")
		policy    = flag.String("policy", "least-advanced", "dispatch policy: least-advanced, round-robin, most-advanced")
		workers   = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
		addr      = flag.String("addr", "", "grid scheduler daemon address: submit the campaign remotely instead of simulating locally")
		attach    = flag.Uint64("attach", 0, "with -addr: reattach to a campaign the daemon already knows by ID")
		list      = flag.Bool("list", false, "with -addr: list the daemon's campaign table instead of submitting")
		info      = flag.Uint64("info", 0, "with -addr: print one campaign's control-plane snapshot by ID")
		cancelID  = flag.Uint64("cancel", 0, "with -addr: cancel a campaign server-side by ID")
		status    = flag.String("status", "", "with -list: keep only campaigns in this state (queued, running, done, failed, cancelled)")
		labels    = flag.String("labels", "", "submit: comma-separated k=v labels for the campaign; with -list: label-subset filter")
		priority  = flag.Int("priority", 0, "submit: admission-queue priority (higher dispatches first)")
		deadline  = flag.Duration("deadline", 0, "submit: per-campaign deadline overriding the daemon's default (0 = daemon default)")
	)
	flag.Parse()

	labelSet, err := parseLabels(*labels)
	if err != nil {
		fail(err)
	}
	if *addr != "" && (*list || *info != 0 || *cancelID != 0) {
		controlPlane(*addr, *list, *info, *cancelID, *status, labelSet)
		return
	}
	if *list || *info != 0 || *cancelID != 0 {
		fail(fmt.Errorf("-list, -info and -cancel need -addr: only a daemon has a campaign table"))
	}

	app := core.Application{Scenarios: *ns, Months: *nm}
	if err := app.Validate(); err != nil {
		fail(err)
	}

	if *addr != "" {
		runRemote(*addr, *attach, app, *heuristic, *priority, labelSet, *deadline)
		return
	}
	if *attach != 0 {
		fail(fmt.Errorf("-attach needs -addr: only a daemon holds reattachable campaigns"))
	}
	timing := platform.ReferenceTiming()
	timing.Speed = *speed
	cluster := &platform.Cluster{Name: "oasched", Procs: *r, Timing: timing}

	var pol exec.Policy
	switch *policy {
	case "least-advanced":
		pol = exec.LeastAdvanced
	case "round-robin":
		pol = exec.RoundRobin
	case "most-advanced":
		pol = exec.MostAdvanced
	default:
		fail(fmt.Errorf("unknown policy %q", *policy))
	}

	var hs []core.Heuristic
	if *heuristic == "" {
		hs = core.All()
	} else {
		h, err := byName(*heuristic)
		if err != nil {
			fail(err)
		}
		hs = []core.Heuristic{h}
	}

	// ^C cancels the sweeps cooperatively: workers stop claiming jobs and
	// the partial table is abandoned with a clean error.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	opts := engine.Options{Exec: exec.Options{Policy: pol, RecordTrace: *gantt}}
	jobs := make([]engine.Job, len(hs))
	for i, h := range hs {
		jobs[i] = engine.Job{App: app, Cluster: cluster, Heuristic: h, Opts: opts}
	}
	simulated, err := engine.SweepContext(ctx, engine.DES{}, jobs, *workers)
	if err != nil {
		fail(err)
	}
	// Model column: re-evaluate the simulated allocations analytically, so
	// each heuristic plans once and both columns describe the same plan.
	modelJobs := make([]engine.Job, len(jobs))
	for i, j := range jobs {
		j.Heuristic = nil
		j.Alloc = simulated[i].Alloc
		modelJobs[i] = j
	}
	modeled, err := engine.SweepContext(ctx, engine.Model{}, modelJobs, *workers)
	if err != nil {
		fail(err)
	}

	fmt.Printf("cluster: %d processors, speed %.3f (T[11]=%.0fs)  workload: %d scenarios × %d months\n\n",
		*r, *speed, mustMain(timing, platform.MaxGroup), *ns, *nm)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "heuristic\tallocation\tmodel (s)\tsimulated (s)\tgain vs basic")
	var baselineMS float64
	for i, h := range hs {
		if simulated[i].Err != nil {
			fail(simulated[i].Err)
		}
		alloc, res := simulated[i].Alloc, simulated[i].Result
		model := "-"
		// The analytical equations are exact only for uniform groupings; show
		// the model column where the paper defines it.
		if modeled[i].Err == nil && uniform(alloc) {
			model = fmt.Sprintf("%.0f", modeled[i].Result.Makespan)
		}
		if i == 0 {
			baselineMS = res.Makespan
		}
		gain := 100 * (baselineMS - res.Makespan) / baselineMS
		fmt.Fprintf(w, "%s\t%v post=%d\t%s\t%.0f\t%+.2f%%\n",
			h.Name(), alloc.Groups, alloc.PostProcs, model, res.Makespan, gain)
		if *gantt && res.Trace != nil {
			if len(res.Trace.Spans) > 2000 {
				fmt.Fprintln(os.Stderr, "oasched: workload too large for a Gantt chart; shrink -ns/-nm")
			} else {
				w.Flush()
				fmt.Println()
				fmt.Print(res.Trace.Gantt(100))
				fmt.Println()
			}
		}
	}
	w.Flush()
}

// parseLabels splits "k=v,k2=v2" into a label map.
func parseLabels(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("malformed label %q (want k=v[,k=v...])", pair)
		}
		out[k] = v
	}
	return out, nil
}

// controlPlane serves the query/cancel verbs against a daemon: -cancel
// first (so -cancel + -list shows the post-cancel table), then -info, then
// -list.
func controlPlane(addr string, list bool, info, cancelID uint64, status string, labels map[string]string) {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	runner, err := oagrid.Dial(ctx, addr)
	if err != nil {
		fail(err)
	}
	defer runner.Close()

	if cancelID != 0 {
		if err := runner.Cancel(ctx, cancelID); err != nil {
			fail(err)
		}
		ci, err := runner.Info(ctx, cancelID)
		if err != nil {
			fail(err)
		}
		fmt.Printf("campaign %d: %s\n", cancelID, ci.Status)
	}
	if info != 0 {
		ci, err := runner.Info(ctx, info)
		if err != nil {
			fail(err)
		}
		printInfos([]oagrid.CampaignInfo{*ci})
	}
	if list {
		infos, err := runner.List(ctx, oagrid.ListFilter{Status: status, Labels: labels})
		if err != nil {
			fail(err)
		}
		printInfos(infos)
	}
}

// printInfos renders campaign snapshots as the control-plane table.
func printInfos(infos []oagrid.CampaignInfo) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "id\tstatus\tprio\tns×nm\tdone\trounds\trequeues\tmakespan\theuristic\tlabels")
	for _, ci := range infos {
		makespan := "-"
		if ci.Status == oagrid.StatusDone {
			makespan = fmt.Sprintf("%.0fs", ci.Makespan)
		}
		labels := make([]string, 0, len(ci.Labels))
		for k, v := range ci.Labels {
			labels = append(labels, k+"="+v)
		}
		sort.Strings(labels)
		fmt.Fprintf(w, "%d\t%s\t%d\t%d×%d\t%d/%d\t%d\t%d\t%s\t%s\t%s\n",
			ci.ID, ci.Status, ci.Priority, ci.Scenarios, ci.Months, ci.Done, ci.Total,
			ci.Rounds, ci.Requeues, makespan, ci.Heuristic, strings.Join(labels, ","))
	}
	w.Flush()
	fmt.Printf("%d campaign(s)\n", len(infos))
}

// runRemote drives the configuration through a grid scheduler daemon via
// the public client API: submit (or reattach to) one campaign, stream its
// typed events, and print the final accounting. The admission line prints
// the campaign ID — the durable name to reattach with after a cut or a
// daemon restart, and the handle for oasched -cancel/-info.
func runRemote(addr string, attach uint64, app core.Application, heuristic string, priority int, labels map[string]string, deadline time.Duration) {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	runner, err := oagrid.Dial(ctx, addr)
	if err != nil {
		fail(err)
	}
	defer runner.Close()

	var h *oagrid.Handle
	if attach != 0 {
		h, err = runner.Attach(ctx, attach)
	} else {
		var opts []oagrid.SubmitOption
		if priority != 0 {
			opts = append(opts, oagrid.WithPriority(priority))
		}
		if len(labels) > 0 {
			opts = append(opts, oagrid.WithLabels(labels))
		}
		if deadline > 0 {
			opts = append(opts, oagrid.WithDeadline(deadline))
		}
		h, err = runner.Run(ctx, oagrid.Campaign{Experiment: oagrid.Experiment(app), Heuristic: heuristic}, opts...)
	}
	if err != nil {
		fail(err)
	}
	for ev := range h.Events() {
		switch ev := ev.(type) {
		case oagrid.EventAdmitted:
			fmt.Printf("campaign %d admitted at %s (reattach with -addr %s -attach %d)\n", ev.ID, addr, addr, ev.ID)
		case oagrid.EventPlanned:
			fmt.Printf("planned:")
			for _, share := range ev.Shares {
				fmt.Printf("  %s×%d", share.Cluster, share.Scenarios)
			}
			fmt.Println()
		case oagrid.EventChunkDone:
			fmt.Printf("  chunk done: %s ×%d round %d makespan %.0fs  (%d/%d scenarios)\n",
				ev.Report.Cluster, ev.Report.Scenarios, ev.Report.Round, ev.Report.Makespan, ev.Done, ev.Total)
		case oagrid.EventProgress:
			if ev.Requeued > 0 {
				fmt.Printf("  requeued %d scenario(s) after a cluster failure\n", ev.Requeued)
			}
		}
	}
	res, err := h.Wait()
	if err != nil {
		fail(err)
	}
	fmt.Printf("campaign %d done: makespan %.0fs over %d chunk(s), %d requeue(s)\n",
		h.ID(), res.Makespan, len(res.Reports), res.Requeues)
}

// byName resolves the paper's heuristics plus the related-work baselines.
func byName(name string) (core.Heuristic, error) {
	if h, err := core.ByName(name); err == nil {
		return h, nil
	}
	for _, h := range []core.Heuristic{baseline.CPA{}, baseline.SequentialDAGs{}} {
		if h.Name() == name {
			return h, nil
		}
	}
	return nil, fmt.Errorf("unknown heuristic %q", name)
}

func uniform(al core.Allocation) bool {
	for _, g := range al.Groups[1:] {
		if g != al.Groups[0] {
			return false
		}
	}
	return len(al.Groups) > 0
}

func mustMain(t platform.Timing, g int) float64 {
	v, err := t.MainSeconds(g)
	if err != nil {
		fail(err)
	}
	return v
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "oasched:", err)
	os.Exit(1)
}
