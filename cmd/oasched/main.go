// Command oasched plans and simulates one scheduling configuration: it
// prints the processor grouping every heuristic chooses for a cluster, the
// analytical and simulated makespans, and optionally an ASCII Gantt chart.
// Planning and evaluation run through the unified engine, so the model and
// simulated columns come from the same two pluggable backends the figure
// harness uses, and the per-heuristic evaluations run as one batched sweep.
//
// With -addr the configuration is submitted as a campaign to a live grid
// scheduler daemon (oarun -daemon) instead of simulated locally, streaming
// typed progress; -attach reconnects to a campaign the daemon already
// knows — after a network cut, or a daemon restart on a -state dir — and
// replays its full history before following it live.
//
// Usage:
//
//	oasched -r 53 -ns 10 -nm 1800                  # the paper's worked example
//	oasched -r 53 -ns 4 -nm 6 -heuristic knapsack -gantt
//	oasched -r 60 -speed 1.29                      # a slower cluster profile
//	oasched -r 53 -heuristic cpa                   # related-work baseline
//	oasched -addr 127.0.0.1:7714 -ns 10 -nm 1800   # submit to a daemon
//	oasched -addr 127.0.0.1:7714 -attach 17        # reattach to campaign 17
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"

	"oagrid"
	"oagrid/internal/baseline"
	"oagrid/internal/core"
	"oagrid/internal/engine"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
)

func main() {
	var (
		r         = flag.Int("r", 53, "processors in the cluster")
		ns        = flag.Int("ns", 10, "scenarios (NS)")
		nm        = flag.Int("nm", 1800, "months per scenario (NM)")
		heuristic = flag.String("heuristic", "", "only this heuristic: basic, redistribute, all-to-main, knapsack, cpa, sequential-dags (default: the paper's four)")
		speed     = flag.Float64("speed", 1.0, "cluster slowness factor (1.0 = reference, 1177s..1622s anchors ≈ 0.93..1.29)")
		gantt     = flag.Bool("gantt", false, "print an ASCII Gantt chart (small workloads only)")
		policy    = flag.String("policy", "least-advanced", "dispatch policy: least-advanced, round-robin, most-advanced")
		workers   = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
		addr      = flag.String("addr", "", "grid scheduler daemon address: submit the campaign remotely instead of simulating locally")
		attach    = flag.Uint64("attach", 0, "with -addr: reattach to a campaign the daemon already knows by ID")
	)
	flag.Parse()

	app := core.Application{Scenarios: *ns, Months: *nm}
	if err := app.Validate(); err != nil {
		fail(err)
	}

	if *addr != "" {
		runRemote(*addr, *attach, app, *heuristic)
		return
	}
	if *attach != 0 {
		fail(fmt.Errorf("-attach needs -addr: only a daemon holds reattachable campaigns"))
	}
	timing := platform.ReferenceTiming()
	timing.Speed = *speed
	cluster := &platform.Cluster{Name: "oasched", Procs: *r, Timing: timing}

	var pol exec.Policy
	switch *policy {
	case "least-advanced":
		pol = exec.LeastAdvanced
	case "round-robin":
		pol = exec.RoundRobin
	case "most-advanced":
		pol = exec.MostAdvanced
	default:
		fail(fmt.Errorf("unknown policy %q", *policy))
	}

	var hs []core.Heuristic
	if *heuristic == "" {
		hs = core.All()
	} else {
		h, err := byName(*heuristic)
		if err != nil {
			fail(err)
		}
		hs = []core.Heuristic{h}
	}

	// ^C cancels the sweeps cooperatively: workers stop claiming jobs and
	// the partial table is abandoned with a clean error.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	opts := engine.Options{Exec: exec.Options{Policy: pol, RecordTrace: *gantt}}
	jobs := make([]engine.Job, len(hs))
	for i, h := range hs {
		jobs[i] = engine.Job{App: app, Cluster: cluster, Heuristic: h, Opts: opts}
	}
	simulated, err := engine.SweepContext(ctx, engine.DES{}, jobs, *workers)
	if err != nil {
		fail(err)
	}
	// Model column: re-evaluate the simulated allocations analytically, so
	// each heuristic plans once and both columns describe the same plan.
	modelJobs := make([]engine.Job, len(jobs))
	for i, j := range jobs {
		j.Heuristic = nil
		j.Alloc = simulated[i].Alloc
		modelJobs[i] = j
	}
	modeled, err := engine.SweepContext(ctx, engine.Model{}, modelJobs, *workers)
	if err != nil {
		fail(err)
	}

	fmt.Printf("cluster: %d processors, speed %.3f (T[11]=%.0fs)  workload: %d scenarios × %d months\n\n",
		*r, *speed, mustMain(timing, platform.MaxGroup), *ns, *nm)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "heuristic\tallocation\tmodel (s)\tsimulated (s)\tgain vs basic")
	var baselineMS float64
	for i, h := range hs {
		if simulated[i].Err != nil {
			fail(simulated[i].Err)
		}
		alloc, res := simulated[i].Alloc, simulated[i].Result
		model := "-"
		// The analytical equations are exact only for uniform groupings; show
		// the model column where the paper defines it.
		if modeled[i].Err == nil && uniform(alloc) {
			model = fmt.Sprintf("%.0f", modeled[i].Result.Makespan)
		}
		if i == 0 {
			baselineMS = res.Makespan
		}
		gain := 100 * (baselineMS - res.Makespan) / baselineMS
		fmt.Fprintf(w, "%s\t%v post=%d\t%s\t%.0f\t%+.2f%%\n",
			h.Name(), alloc.Groups, alloc.PostProcs, model, res.Makespan, gain)
		if *gantt && res.Trace != nil {
			if len(res.Trace.Spans) > 2000 {
				fmt.Fprintln(os.Stderr, "oasched: workload too large for a Gantt chart; shrink -ns/-nm")
			} else {
				w.Flush()
				fmt.Println()
				fmt.Print(res.Trace.Gantt(100))
				fmt.Println()
			}
		}
	}
	w.Flush()
}

// runRemote drives the configuration through a grid scheduler daemon via
// the public client API: submit (or reattach to) one campaign, stream its
// typed events, and print the final accounting. The admission line prints
// the campaign ID — the durable name to reattach with after a cut or a
// daemon restart.
func runRemote(addr string, attach uint64, app core.Application, heuristic string) {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	runner, err := oagrid.Dial(ctx, addr)
	if err != nil {
		fail(err)
	}
	defer runner.Close()

	var h *oagrid.Handle
	if attach != 0 {
		h, err = runner.Attach(ctx, attach)
	} else {
		h, err = runner.Run(ctx, oagrid.Campaign{Experiment: oagrid.Experiment(app), Heuristic: heuristic})
	}
	if err != nil {
		fail(err)
	}
	for ev := range h.Events() {
		switch ev := ev.(type) {
		case oagrid.EventAdmitted:
			fmt.Printf("campaign %d admitted at %s (reattach with -addr %s -attach %d)\n", ev.ID, addr, addr, ev.ID)
		case oagrid.EventPlanned:
			fmt.Printf("planned:")
			for _, share := range ev.Shares {
				fmt.Printf("  %s×%d", share.Cluster, share.Scenarios)
			}
			fmt.Println()
		case oagrid.EventChunkDone:
			fmt.Printf("  chunk done: %s ×%d round %d makespan %.0fs  (%d/%d scenarios)\n",
				ev.Report.Cluster, ev.Report.Scenarios, ev.Report.Round, ev.Report.Makespan, ev.Done, ev.Total)
		case oagrid.EventProgress:
			if ev.Requeued > 0 {
				fmt.Printf("  requeued %d scenario(s) after a cluster failure\n", ev.Requeued)
			}
		}
	}
	res, err := h.Wait()
	if err != nil {
		fail(err)
	}
	fmt.Printf("campaign %d done: makespan %.0fs over %d chunk(s), %d requeue(s)\n",
		h.ID(), res.Makespan, len(res.Reports), res.Requeues)
}

// byName resolves the paper's heuristics plus the related-work baselines.
func byName(name string) (core.Heuristic, error) {
	if h, err := core.ByName(name); err == nil {
		return h, nil
	}
	for _, h := range []core.Heuristic{baseline.CPA{}, baseline.SequentialDAGs{}} {
		if h.Name() == name {
			return h, nil
		}
	}
	return nil, fmt.Errorf("unknown heuristic %q", name)
}

func uniform(al core.Allocation) bool {
	for _, g := range al.Groups[1:] {
		if g != al.Groups[0] {
			return false
		}
	}
	return len(al.Groups) > 0
}

func mustMain(t platform.Timing, g int) float64 {
	v, err := t.MainSeconds(g)
	if err != nil {
		fail(err)
	}
	return v
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "oasched:", err)
	os.Exit(1)
}
