// Command oasched plans and simulates one scheduling configuration: it
// prints the processor grouping every heuristic chooses for a cluster, the
// analytical and simulated makespans, and optionally an ASCII Gantt chart.
//
// Usage:
//
//	oasched -r 53 -ns 10 -nm 1800                  # the paper's worked example
//	oasched -r 53 -ns 4 -nm 6 -heuristic knapsack -gantt
//	oasched -r 60 -speed 1.29                      # a slower cluster profile
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"oagrid/internal/core"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
)

func main() {
	var (
		r         = flag.Int("r", 53, "processors in the cluster")
		ns        = flag.Int("ns", 10, "scenarios (NS)")
		nm        = flag.Int("nm", 1800, "months per scenario (NM)")
		heuristic = flag.String("heuristic", "", "only this heuristic (default: all four)")
		speed     = flag.Float64("speed", 1.0, "cluster slowness factor (1.0 = reference, 1177s..1622s anchors ≈ 0.93..1.29)")
		gantt     = flag.Bool("gantt", false, "print an ASCII Gantt chart (small workloads only)")
		policy    = flag.String("policy", "least-advanced", "dispatch policy: least-advanced, round-robin, most-advanced")
	)
	flag.Parse()

	app := core.Application{Scenarios: *ns, Months: *nm}
	if err := app.Validate(); err != nil {
		fail(err)
	}
	timing := platform.ReferenceTiming()
	timing.Speed = *speed

	var pol exec.Policy
	switch *policy {
	case "least-advanced":
		pol = exec.LeastAdvanced
	case "round-robin":
		pol = exec.RoundRobin
	case "most-advanced":
		pol = exec.MostAdvanced
	default:
		fail(fmt.Errorf("unknown policy %q", *policy))
	}

	var hs []core.Heuristic
	if *heuristic == "" {
		hs = core.All()
	} else {
		h, err := core.ByName(*heuristic)
		if err != nil {
			fail(err)
		}
		hs = []core.Heuristic{h}
	}

	fmt.Printf("cluster: %d processors, speed %.3f (T[11]=%.0fs)  workload: %d scenarios × %d months\n\n",
		*r, *speed, mustMain(timing, platform.MaxGroup), *ns, *nm)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "heuristic\tallocation\tmodel (s)\tsimulated (s)\tgain vs basic")
	var baseline float64
	for i, h := range hs {
		alloc, err := h.Plan(app, timing, *r)
		if err != nil {
			fail(err)
		}
		model := "-"
		if uniform(alloc) {
			if ms, err := core.UniformEstimate(app, timing, *r, alloc.Groups[0]); err == nil {
				model = fmt.Sprintf("%.0f", ms)
			}
		}
		res, err := exec.Run(app, timing, *r, alloc, exec.Options{Policy: pol, RecordTrace: *gantt})
		if err != nil {
			fail(err)
		}
		if i == 0 {
			baseline = res.Makespan
		}
		gain := 100 * (baseline - res.Makespan) / baseline
		fmt.Fprintf(w, "%s\t%v post=%d\t%s\t%.0f\t%+.2f%%\n",
			h.Name(), alloc.Groups, alloc.PostProcs, model, res.Makespan, gain)
		if *gantt && res.Trace != nil {
			if len(res.Trace.Spans) > 2000 {
				fmt.Fprintln(os.Stderr, "oasched: workload too large for a Gantt chart; shrink -ns/-nm")
			} else {
				w.Flush()
				fmt.Println()
				fmt.Print(res.Trace.Gantt(100))
				fmt.Println()
			}
		}
	}
	w.Flush()
}

func uniform(al core.Allocation) bool {
	for _, g := range al.Groups[1:] {
		if g != al.Groups[0] {
			return false
		}
	}
	return len(al.Groups) > 0
}

func mustMain(t platform.Timing, g int) float64 {
	v, err := t.MainSeconds(g)
	if err != nil {
		fail(err)
	}
	return v
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "oasched:", err)
	os.Exit(1)
}
