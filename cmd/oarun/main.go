// Command oarun drives the toy coupled climate model directly: it runs the
// six-task monthly pipeline (caif, mp, pcr, cof, emi, cd) for a scenario,
// calibrates the Figure-1 task-duration table across the moldable processor
// range, executes a whole scheduled mini-ensemble for real (the paper's
// "verify our simulations by real experiments"), or serves as the grid's
// long-running scheduler daemon.
//
// Usage:
//
//	oarun -months 3 -scenario 2 -procs 8 -dir /tmp/oa   # run a chain
//	oarun -calibrate                                    # Figure-1 table
//	oarun -schedule -ns 3 -months 2 -r 20               # realrun an ensemble
//	oarun -daemon -addr 127.0.0.1:7714 -seds 3          # scheduler daemon
//	oarun -daemon -state /var/lib/oagrid                # durable daemon
//	oarun -daemon -seds 1 -autoscale 1:5                # elastic SeD fleet
//
// Daemon mode starts an internal/grid scheduler on -addr and, when -seds is
// positive, that many in-process SeDs (the paper's five Grid'5000 cluster
// profiles, -cprocs processors each) registered against it with heartbeats.
// External SeDs can join at any time by heartbeating the same address.
// Submit campaigns with cmd/oaload or the public client API (oagrid.Dial);
// stop with ^C.
//
// With -state the daemon is durable: campaign transitions are journaled to
// an append-only WAL under the directory, and a daemon restarted on the
// same -state (after a crash, a kill -9, or a clean ^C) re-admits every
// unfinished campaign and keeps serving previously issued campaign IDs —
// clients reattach with oagrid's Runner.Attach and resume streaming from
// the replayed history.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"oagrid/internal/autoscale"
	"oagrid/internal/climate/field"
	"oagrid/internal/climate/pipeline"
	"oagrid/internal/core"
	"oagrid/internal/diet"
	"oagrid/internal/figures"
	"oagrid/internal/grid"
	"oagrid/internal/platform"
	"oagrid/internal/realrun"
)

func main() {
	var (
		months    = flag.Int("months", 1, "months to run (chained through restarts)")
		scenario  = flag.Int("scenario", 0, "scenario index (fixes the cloud parametrization)")
		procs     = flag.Int("procs", 8, "processors for the coupled run (4-11)")
		dir       = flag.String("dir", "", "experiment directory (default: a temp dir)")
		days      = flag.Int("days", 30, "days per month (lower = faster)")
		calibrate = flag.Bool("calibrate", false, "measure the Figure-1 task table instead")
		big       = flag.Bool("big", false, "use larger grids (slower, cleaner timings)")
		schedule  = flag.Bool("schedule", false, "plan with the knapsack heuristic and execute the ensemble for real")
		ns        = flag.Int("ns", 3, "scenarios for -schedule")
		r         = flag.Int("r", 20, "cluster processors for -schedule")

		daemon   = flag.Bool("daemon", false, "run the online grid scheduler daemon")
		addr     = flag.String("addr", "127.0.0.1:7714", "daemon listen address")
		seds     = flag.Int("seds", 3, "in-process SeDs to start for the daemon (0 = external SeDs only)")
		cprocs   = flag.Int("cprocs", 30, "processors per in-process SeD cluster")
		queueCap = flag.Int("queue", 64, "daemon campaign queue bound (admission control)")
		inflight = flag.Int("inflight", 4, "daemon per-SeD in-flight request limit")
		dispatch = flag.Int("dispatchers", 4, "daemon concurrent campaign dispatchers")
		hbEvery  = flag.Duration("hb", 500*time.Millisecond, "SeD heartbeat interval")
		evict    = flag.Duration("evict", 3*time.Second, "daemon heartbeat eviction deadline")
		state    = flag.String("state", "", "daemon state dir: journal campaigns and recover them on restart (empty = in-memory only)")
		proto    = flag.String("proto", "binary", "wire codec: binary (v4 framing when the peer speaks it) or legacy (force the pre-v4 codec; debugging escape hatch)")
		ringSpec = flag.String("ring", "", "comma-separated ring member addresses (this daemon's -addr included): shard one campaign namespace across several daemons with consistent-hash ownership and WAL-replay failover; requires -state and concrete addresses")
		ringHb   = flag.Duration("ring-hb", time.Second, "ring membership ping and WAL replication interval")
		ringDead = flag.Duration("ring-dead", 0, "silence after which a ring peer is declared dead and its campaigns failed over (0 = 4x -ring-hb)")

		autoscaleSpec = flag.String("autoscale", "", "elastic SeD fleet bounds as min:max (empty = fixed fleet); the daemon starts -seds SeDs and grows toward max under queue pressure, draining gracefully back when calm")
		sedSpeeds     = flag.String("sed-speeds", "", "comma-separated relative speed factors cycled across SeDs (1 = reference, 0.5 = twice as slow); scales advertised performance vectors only, never execution")

		metrics     = flag.String("metrics", "", "daemon /metrics listen address, Prometheus text format (empty = off; 127.0.0.1:0 for an ephemeral port)")
		tenantKey   = flag.String("tenant-key", grid.DefaultTenantKey, "label key that names a campaign's fair-queueing tenant")
		tenantWts   = flag.String("tenant-weights", "", "weighted-fair-queueing weights as name=weight[,name=weight...]; unlisted tenants weigh 1")
		tenantQuota = flag.Int("tenant-quota", 0, "per-tenant cap on queued campaigns; beyond it a tenant's submissions get the retryable quota-exceeded rejection (0 = no per-tenant cap)")
	)
	flag.Parse()

	switch *proto {
	case "binary":
	case "legacy":
		diet.ForceLegacyCodec(true)
	default:
		fmt.Fprintf(os.Stderr, "oarun: unknown -proto %q (want binary or legacy)\n", *proto)
		os.Exit(2)
	}

	if *daemon {
		weights, err := parseTenantWeights(*tenantWts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oarun: %v\n", err)
			os.Exit(2)
		}
		asMin, asMax, err := parseAutoscale(*autoscaleSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oarun: %v\n", err)
			os.Exit(2)
		}
		speeds, err := parseSpeeds(*sedSpeeds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oarun: %v\n", err)
			os.Exit(2)
		}
		runDaemon(daemonConfig{
			addr:        *addr,
			state:       *state,
			seds:        *seds,
			cprocs:      *cprocs,
			asMin:       asMin,
			asMax:       asMax,
			speeds:      speeds,
			queueCap:    *queueCap,
			inflight:    *inflight,
			dispatchers: *dispatch,
			hbEvery:     *hbEvery,
			evict:       *evict,
			metrics:     *metrics,
			tenantKey:   *tenantKey,
			weights:     weights,
			quota:       *tenantQuota,
			ring:        *ringSpec,
			ringHb:      *ringHb,
			ringDead:    *ringDead,
		})
		return
	}

	atmos, ocean := field.Grid{NLat: 24, NLon: 48}, field.Grid{NLat: 36, NLon: 72}
	if *big {
		atmos, ocean = field.Grid{NLat: 48, NLon: 96}, field.Grid{NLat: 72, NLon: 144}
	}

	root := *dir
	if root == "" {
		tmp, err := os.MkdirTemp("", "oarun-*")
		if err != nil {
			fail(err)
		}
		root = tmp
		fmt.Printf("working directory: %s\n", root)
	}

	if *calibrate {
		res, err := figures.Figure1(figures.Figure1Config{
			WorkDir:   root,
			AtmosGrid: atmos,
			OceanGrid: ocean,
			Days:      *days,
		})
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Table())
		return
	}

	if *schedule {
		app := core.Application{Scenarios: *ns, Months: *months}
		alloc, err := (core.Knapsack{}).Plan(app, platform.ReferenceTiming(), *r)
		if err != nil {
			fail(err)
		}
		fmt.Printf("plan on %d processors: %v\n", *r, alloc)
		res, err := realrun.Run(realrun.Config{
			Root:      root,
			App:       app,
			Alloc:     alloc,
			AtmosGrid: atmos,
			OceanGrid: ocean,
			Days:      *days,
		})
		if err != nil {
			fail(err)
		}
		for _, rep := range res.Reports {
			fmt.Printf("  s%02d m%04d on group %d: main %v, post %v, T=%.2fK\n",
				rep.Scenario, rep.Month, rep.Group, rep.MainWall.Round(1e6), rep.PostWall.Round(1e6), rep.GlobalT)
		}
		fmt.Printf("real wall time: %v for %d months\n", res.Wall.Round(1e6), len(res.Reports))
		return
	}

	cfg := pipeline.Config{
		Root:      root,
		Scenario:  *scenario,
		Procs:     *procs,
		AtmosGrid: atmos,
		OceanGrid: ocean,
		Days:      *days,
	}
	fmt.Printf("scenario %d on %d processors (%d atmosphere ranks), %d-day months\n",
		*scenario, *procs, *procs-3, *days)
	for m := 0; m < *months; m++ {
		diag, tt, err := pipeline.RunMonth(cfg, m)
		if err != nil {
			fail(err)
		}
		fmt.Printf("month %4d: T=%.2fK SST=%.2fK ice=%.3f precip=%.1f  (caif %v, mp %v, pcr %v, cof %v, emi %v, cd %v)\n",
			m, diag.GlobalT, diag.GlobalSST, diag.IceFraction, diag.TotalPrecip,
			tt.CAIF.Round(1e6), tt.MP.Round(1e6), tt.PCR.Round(1e6),
			tt.COF.Round(1e6), tt.EMI.Round(1e6), tt.CD.Round(1e6))
	}
	fmt.Printf("outputs in %s\n", cfg.Dir())
}

// splitRing parses the -ring member list, trimming whitespace and dropping
// empty entries.
func splitRing(spec string) []string {
	var out []string
	for _, p := range strings.Split(spec, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseTenantWeights parses "gold=10,silver=1" into a weight map.
func parseTenantWeights(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, pair := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -tenant-weights entry %q (want name=weight)", pair)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad -tenant-weights weight %q for tenant %q (want a positive number)", val, name)
		}
		out[name] = w
	}
	return out, nil
}

// parseAutoscale parses the -autoscale "min:max" fleet bounds; an empty
// spec (autoscaling off) parses to (0, 0).
func parseAutoscale(spec string) (min, max int, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	lo, hi, ok := strings.Cut(spec, ":")
	if ok {
		min, err = strconv.Atoi(strings.TrimSpace(lo))
		if err == nil {
			max, err = strconv.Atoi(strings.TrimSpace(hi))
		}
	}
	if !ok || err != nil || min < 1 || max < min {
		return 0, 0, fmt.Errorf("bad -autoscale %q (want min:max with 1 <= min <= max)", spec)
	}
	return min, max, nil
}

// parseSpeeds parses the -sed-speeds factor list.
func parseSpeeds(spec string) ([]float64, error) {
	if spec == "" {
		return nil, nil
	}
	var out []float64
	for _, p := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -sed-speeds entry %q (want a positive factor)", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// daemonConfig bundles the -daemon flag set.
type daemonConfig struct {
	addr, state        string
	seds, cprocs       int
	asMin, asMax       int
	speeds             []float64
	queueCap, inflight int
	dispatchers        int
	hbEvery, evict     time.Duration
	metrics, tenantKey string
	weights            map[string]float64
	quota              int
	ring               string
	ringHb, ringDead   time.Duration
}

// runDaemon serves the online scheduler until SIGINT/SIGTERM, printing a
// stats line every few seconds.
func runDaemon(dc daemonConfig) {
	if dc.asMax > 0 && dc.seds < 1 {
		fail(fmt.Errorf("-autoscale needs at least one in-process SeD (-seds 1) to clone profiles from"))
	}
	fabric, err := grid.StartFabricSpeeds(grid.Config{
		Addr:           dc.addr,
		QueueCap:       dc.queueCap,
		Dispatchers:    dc.dispatchers,
		PerSeDInFlight: dc.inflight,
		EvictAfter:     dc.evict,
		StateDir:       dc.state,
		MetricsAddr:    dc.metrics,
		TenantKey:      dc.tenantKey,
		TenantWeights:  dc.weights,
		TenantQuota:    dc.quota,
	}, dc.seds, dc.cprocs, dc.hbEvery, dc.speeds)
	if err != nil {
		fail(err)
	}
	defer fabric.Close()
	sched := fabric.Sched
	fmt.Printf("scheduler daemon listening on %s (queue %d, %d dispatchers, %d in-flight/SeD)\n",
		sched.Addr(), dc.queueCap, dc.dispatchers, dc.inflight)
	if maddr := sched.MetricsAddr(); maddr != "" {
		fmt.Printf("metrics endpoint on http://%s/metrics\n", maddr)
	}
	if dc.state != "" {
		fmt.Printf("durable: campaign journal under %s (restart on the same -state to recover)\n", dc.state)
	}
	if dc.ring != "" {
		members := splitRing(dc.ring)
		if err := sched.JoinRing(dc.addr, members, dc.ringHb, dc.ringDead); err != nil {
			fail(err)
		}
		fmt.Printf("ring member %s of %d (%s)\n", dc.addr, len(members), strings.Join(members, ","))
	}
	for _, sed := range fabric.SeDs {
		fmt.Printf("SeD %-12s %s (%d processors, speed %g)\n", sed.Cluster().Name, sed.Addr(), sed.Cluster().Procs, sed.Speed())
	}
	var ctl *autoscale.Controller
	if dc.asMax > 0 {
		ctl, err = autoscale.Start(sched, fabric.SeDs, autoscale.Config{
			Min:            dc.asMin,
			Max:            dc.asMax,
			HeartbeatEvery: dc.hbEvery,
			// Sample at the heartbeat interval: fleet state changes no faster
			// than heartbeats land, and a -hb tuned for a fast-moving fabric
			// should make the scaler react at the same pace.
			Sample: dc.hbEvery,
			Speeds: dc.speeds,
		})
		if err != nil {
			fail(err)
		}
		defer ctl.Close()
		fmt.Printf("autoscale: elastic fleet %d..%d SeDs\n", dc.asMin, dc.asMax)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			fmt.Println("\nshutting down")
			return
		case <-tick.C:
			st := sched.Stats()
			alive := 0
			for _, sd := range st.SeDs {
				if sd.Alive {
					alive++
				}
			}
			line := fmt.Sprintf("queue %d (max %d)  running %d  done %d  failed %d  rejected %d  requeues %d  seds %d/%d alive",
				st.QueueDepth, st.MaxQueueDepth, st.Running, st.Completed, st.Failed, st.Rejected, st.Requeues, alive, len(st.SeDs))
			if ctl != nil {
				cs := ctl.Counters()
				line += fmt.Sprintf("  fleet %d (+%d/-%d, %d draining)", cs.FleetSize, cs.ScaleUps, cs.ScaleDowns, cs.Draining)
			}
			fmt.Println(line)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "oarun:", err)
	os.Exit(1)
}
