// Command oagrid demonstrates the paper's Figure-9 protocol end to end on a
// loopback deployment of the DIET-like middleware: it starts a master agent
// and one server daemon per cluster profile, submits an experiment, and
// prints every protocol step — performance vectors, the Algorithm-1
// repartition, and each cluster's execution report.
//
// Usage:
//
//	oagrid -clusters 5 -procs 44 -ns 10 -nm 1800 -heuristic knapsack
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"oagrid/internal/core"
	"oagrid/internal/diet"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
)

func main() {
	var (
		nClusters = flag.Int("clusters", 5, "clusters to start (1-5 speed profiles)")
		procs     = flag.Int("procs", 44, "processors per cluster")
		ns        = flag.Int("ns", 10, "scenarios (NS)")
		nm        = flag.Int("nm", 1800, "months per scenario (NM)")
		heuristic = flag.String("heuristic", core.NameKnapsack, "per-cluster heuristic")
	)
	flag.Parse()
	if *nClusters < 1 || *nClusters > 5 {
		fail(fmt.Errorf("clusters must be 1..5, got %d", *nClusters))
	}

	// Boot the middleware.
	ma, err := diet.StartMasterAgent("127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	defer ma.Close()
	fmt.Printf("master agent listening on %s\n", ma.Addr())

	profiles := platform.FiveClusters()[:*nClusters]
	for _, cl := range profiles {
		cl.Procs = *procs
		sed, err := diet.StartSeD("127.0.0.1:0", cl, exec.Options{})
		if err != nil {
			fail(err)
		}
		defer sed.Close()
		if err := sed.RegisterWith(ma.Addr()); err != nil {
			fail(err)
		}
		t11, _ := cl.Timing.MainSeconds(platform.MaxGroup)
		fmt.Printf("SeD %-12s registered at %s (%d procs, T[11]=%.0fs)\n", cl.Name, sed.Addr(), cl.Procs, t11)
	}

	// Steps 1–6.
	app := core.Application{Scenarios: *ns, Months: *nm}
	fmt.Printf("\n(1) client request: %d scenarios × %d months, heuristic %q\n", *ns, *nm, *heuristic)
	client := &diet.Client{MAAddr: ma.Addr()}
	res, err := client.Submit(app, *heuristic)
	if err != nil {
		fail(err)
	}

	fmt.Println("(2,3) performance vectors (makespan of 1..NS scenarios, hours):")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, name := range res.Clusters {
		fmt.Fprintf(w, "  %s\t", name)
		for _, v := range res.Vectors[name] {
			fmt.Fprintf(w, "%.0f\t", v/3600)
		}
		fmt.Fprintln(w)
	}
	w.Flush()

	fmt.Println("(4) repartition (Algorithm 1):")
	for i, name := range res.Clusters {
		fmt.Printf("  %-12s %d scenario(s)\n", name, res.Repartition.Counts[i])
	}

	fmt.Println("(5,6) execution reports:")
	for _, r := range res.Reports {
		fmt.Printf("  %-12s %d scenario(s)  groups %v post=%d  makespan %.0f h\n",
			r.Cluster, r.Scenarios, r.Allocation.Groups, r.Allocation.PostProcs, r.Makespan/3600)
	}
	fmt.Printf("\nglobal makespan: %.0f hours (%.1f days)\n", res.Makespan/3600, res.Makespan/86400)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "oagrid:", err)
	os.Exit(1)
}
