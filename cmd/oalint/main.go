// Command oalint is the repo's static-analysis driver: it runs the
// framegate, deterministic, hotpath and typederr analyzers (see
// internal/analysis) over the module and reports findings one per line as
//
//	path/to/file.go:line:col: analyzer: message
//
// exiting 1 when anything is found and 2 when a package fails to load.
//
// Standalone mode (what CI runs):
//
//	go run ./cmd/oalint ./...
//
// Patterns are go-style: a plain directory, or dir/... for a recursive
// walk; the default is ./... over the whole module. oalint locates the
// enclosing go.mod and chdirs there first, because the stdlib source
// importer resolves module-internal imports through the go command, which
// is cwd-sensitive.
//
// Vet-tool mode: oalint also speaks the cmd/go vet-tool protocol
// (-V=full, -flags, and a trailing vet.cfg argument), so
//
//	go vet -vettool=$(pwd)/bin/oalint ./...
//
// works too. In that mode cmd/go drives one invocation per package; test
// packages are skipped (the analyzers govern non-test code).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"oagrid/internal/analysis"
	"oagrid/internal/analysis/deterministic"
	"oagrid/internal/analysis/framegate"
	"oagrid/internal/analysis/hotpath"
	"oagrid/internal/analysis/typederr"
)

// version is the -V=full answer; cmd/go hashes it into its action cache
// key, so bump it when analyzer behavior changes.
const version = "1.0.0"

// analyzers is the suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	framegate.Analyzer,
	deterministic.Analyzer,
	hotpath.Analyzer,
	typederr.Analyzer,
}

func main() {
	versionFlag := flag.String("V", "", "print version and exit (cmd/go passes -V=full)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (cmd/go protocol)")
	flag.Usage = usage
	flag.Parse()

	switch {
	case *versionFlag != "":
		// Shape required by cmd/go's buildid probe: "<name> version <ver>".
		fmt.Printf("oalint version %s\n", version)
		return
	case *flagsFlag:
		// No tool-specific flags; cmd/go wants a JSON array either way.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetToolMode(args[0]))
	}
	os.Exit(standaloneMode(args))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: oalint [packages]\n\nAnalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, firstLine(a.Doc))
	}
	fmt.Fprintf(os.Stderr, "\nSuppress one finding with //oalint:allow <analyzer> <reason> on or above its line.\n")
}

func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}

// standaloneMode analyzes the module packages matching patterns.
func standaloneMode(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	root, err := analysis.ModuleRoot(cwd)
	if err != nil {
		return fail(err)
	}
	// The source importer shells out to the go command for module-internal
	// import resolution, which only works from inside the module.
	if err := os.Chdir(root); err != nil {
		return fail(err)
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.Load(root, patterns)
	if err != nil {
		return fail(err)
	}
	var diags []string
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			err := analysis.Run(a, pkg, func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				file := pos.Filename
				if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
				diags = append(diags, fmt.Sprintf("%s:%d:%d: %s: %s", file, pos.Line, pos.Column, d.Analyzer, d.Message))
			})
			if err != nil {
				return fail(fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err))
			}
		}
	}
	sort.Strings(diags)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "oalint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// vetConfig is the subset of cmd/go's vet.cfg oalint consumes.
type vetConfig struct {
	ID         string
	Dir        string
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

// vetToolMode handles one per-package invocation from go vet -vettool.
func vetToolMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return fail(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fail(fmt.Errorf("oalint: parsing %s: %w", cfgPath, err))
	}
	// cmd/go caches analysis facts through this file; oalint keeps no
	// cross-package facts, but the file must exist for the cache entry.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("oalint\n"), 0o666); err != nil {
			return fail(err)
		}
	}
	// "Only compute vetx data; don't report detected problems."
	if cfg.VetxOnly {
		return 0
	}
	// Test variants (ID "pkg [pkg.test]" or _test.go files) are out of
	// scope: the invariants govern shipped code.
	if strings.Contains(cfg.ID, " [") {
		return 0
	}
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			return 0
		}
	}
	pkg, err := analysis.NewLoader().LoadDir(cfg.Dir, cfg.ImportPath)
	if err != nil {
		return fail(err)
	}
	count := 0
	for _, a := range analyzers {
		runErr := analysis.Run(a, pkg, func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
			count++
		})
		if runErr != nil {
			return fail(fmt.Errorf("%s on %s: %w", a.Name, cfg.ImportPath, runErr))
		}
	}
	if count > 0 {
		return 1
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return 2
}
