// Package oagrid schedules Ocean-Atmosphere climate-prediction ensembles on
// clusters and grids, reproducing "Ocean-Atmosphere Modelization over the
// Grid" (Caniou, Caron, Charrier, Chis, Desprez, Maisonnave — INRIA RR-6695
// / ICPP 2008).
//
// An experiment is NS independent scenarios, each a chain of NM monthly
// simulations; every month is one moldable main task (the coupled
// ARPEGE+OPA+TRIP run under OASIS, 4–11 processors) followed by one
// single-processor post-processing task. The package plans how a cluster's
// processors are divided into main-task groups (four heuristics, the best
// being a bounded-knapsack formulation), replays the plan on an event-driven
// executor, and distributes scenarios over heterogeneous grids with the
// paper's greedy repartition.
//
// The client API v1 is one concept: a Runner accepts a Campaign and returns
// a Handle streaming typed Events (planned, chunk-done, progress, result).
// Two runners share the interface — Local runs the campaign on the
// in-process engine, Dial submits it to a grid scheduler daemon over the
// versioned wire protocol — and both produce bit-identical Results at
// default options:
//
//	runner, _ := oagrid.Local(oagrid.FiveClusters())
//	h, _ := runner.Run(ctx, oagrid.NewCampaign(10, 1800))
//	for ev := range h.Events() {
//		if p, ok := ev.(oagrid.EventProgress); ok {
//			fmt.Printf("%d/%d scenarios\n", p.Done, p.Total)
//		}
//	}
//	res, err := h.Wait()
//
// Swapping the engine for a live daemon is one line:
//
//	runner, err := oagrid.Dial(ctx, "127.0.0.1:7714")
//
// The pre-campaign entry points (Plan, Simulate, Evaluate, Compare,
// Distribute, Sweep) remain as thin wrappers over the same engine the Local
// runner uses:
//
//	app := oagrid.NewExperiment(10, 1800)           // 10 scenarios × 150 years
//	cluster := oagrid.ReferenceCluster(53)          // 53 processors
//	plan, _ := oagrid.Plan(oagrid.Knapsack, app, cluster)
//	res, _ := oagrid.Simulate(app, cluster, plan, oagrid.Options{})
//	fmt.Println(plan, res.Makespan)
//
// The deeper layers are importable through this facade: the analytical
// makespan model (equations 1–5 of the paper), the toy coupled climate model
// that stands in for the real ARPEGE/OPA/TRIP binaries, and a loopback
// reimplementation of the DIET middleware protocol the paper deploys with.
package oagrid

import (
	"context"
	"fmt"

	"oagrid/internal/core"
	"oagrid/internal/engine"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
)

// Re-exported core types. Aliases keep the facade zero-cost: values flow
// unchanged between the public API and the internal packages.
type (
	// Experiment is the ensemble: NS scenarios of NM months.
	Experiment = core.Application
	// Allocation is a division of processors into main-task groups plus a
	// post-processing pool.
	Allocation = core.Allocation
	// Heuristic plans allocations.
	Heuristic = core.Heuristic
	// Cluster is a homogeneous processor pool with benchmark timings.
	Cluster = platform.Cluster
	// Grid is an ordered set of clusters.
	Grid = platform.Grid
	// Timing yields main/post task durations for a cluster.
	Timing = platform.Timing
	// Options tunes the executor (dispatch policy, jitter, tracing).
	Options = exec.Options
	// Result is an evaluation report (makespan, utilization, trace).
	Result = engine.Result
	// Evaluator is a pluggable makespan backend: the analytical model, the
	// event-driven executor, or real execution (realrun.Backend).
	Evaluator = engine.Evaluator
	// SweepJob is one cell of a batched evaluation matrix.
	SweepJob = engine.Job
	// SweepResult is the outcome of one sweep job, stored at the job index.
	SweepResult = engine.JobResult
)

// The in-process evaluator backends.
var (
	// ModelBackend evaluates with the analytical model (equations 1–5).
	ModelBackend Evaluator = engine.Model{}
	// DESBackend evaluates with the event-driven executor (ground truth).
	DESBackend Evaluator = engine.DES{}
)

// Sweep fans the jobs across a worker pool (workers <= 0 uses GOMAXPROCS)
// and returns results indexed like jobs — bit-identical to a serial run
// whatever the worker count.
func Sweep(ev Evaluator, jobs []SweepJob, workers int) []SweepResult {
	return engine.Sweep(ev, jobs, workers)
}

// SweepContext is Sweep with cooperative cancellation: workers stop
// claiming jobs once ctx is done, unstarted jobs carry ctx's error in their
// slot, and the call returns ctx.Err(). Results that are present are
// exactly what a serial run would have produced for those indices.
func SweepContext(ctx context.Context, ev Evaluator, jobs []SweepJob, workers int) ([]SweepResult, error) {
	return engine.SweepContext(ctx, ev, jobs, workers)
}

// Heuristic names, the values Campaign.Heuristic and WithHeuristic accept.
const (
	BasicName        = core.NameBasic
	RedistributeName = core.NameRedistribute
	AllToMainName    = core.NameAllToMain
	KnapsackName     = core.NameKnapsack
)

// The four heuristics of the paper, in presentation order.
var (
	// Basic gives every main task the same processor count G, chosen by the
	// analytical model (paper §4.1).
	Basic Heuristic = core.Basic{}
	// Redistribute is Improvement 1: idle processors join the groups.
	Redistribute Heuristic = core.Redistribute{}
	// AllToMain is Improvement 2: no dedicated post-processing processors.
	AllToMain Heuristic = core.AllToMain{}
	// Knapsack is Improvement 3 and the paper's best performer.
	Knapsack Heuristic = core.Knapsack{}
)

// Heuristics returns the four planners in presentation order.
func Heuristics() []Heuristic { return core.All() }

// HeuristicByName resolves "basic", "redistribute", "all-to-main" or
// "knapsack".
func HeuristicByName(name string) (Heuristic, error) { return core.ByName(name) }

// NewExperiment builds an ensemble of the given shape.
func NewExperiment(scenarios, months int) Experiment {
	return Experiment{Scenarios: scenarios, Months: months}
}

// DefaultExperiment is the paper's evaluation workload: 10 scenarios × 1800
// months (150 years each).
func DefaultExperiment() Experiment { return core.Default() }

// ReferenceCluster returns the calibration cluster (Figure-1 timings:
// pcr = 1260 s on 11 processors) with the given processor count.
func ReferenceCluster(procs int) *Cluster { return platform.ReferenceCluster(procs) }

// FiveClusters returns the five Grid'5000-style speed profiles used in the
// paper's evaluation (fastest 1177 s, slowest 1622 s on 11 processors).
func FiveClusters() []*Cluster { return platform.FiveClusters() }

// NewGrid assembles and validates a grid.
func NewGrid(clusters ...*Cluster) (*Grid, error) { return platform.NewGrid(clusters...) }

// Plan divides the cluster's processors with the given heuristic.
func Plan(h Heuristic, app Experiment, cluster *Cluster) (Allocation, error) {
	if err := cluster.Validate(); err != nil {
		return Allocation{}, err
	}
	return h.Plan(app, cluster.Timing, cluster.Procs)
}

// EstimateMakespan evaluates the paper's analytical model (equations 1–5)
// for a uniform group size on the cluster.
func EstimateMakespan(app Experiment, cluster *Cluster, group int) (float64, error) {
	if err := cluster.Validate(); err != nil {
		return 0, err
	}
	return core.UniformEstimate(app, cluster.Timing, cluster.Procs, group)
}

// Simulate replays an allocation on the event-driven executor and returns
// the measured makespan (and the trace when Options.RecordTrace is set). It
// is a thin wrapper over the same engine path the Local runner drives;
// EvaluateContext is the cancellable form.
func Simulate(app Experiment, cluster *Cluster, alloc Allocation, opt Options) (Result, error) {
	return Evaluate(DESBackend, app, cluster, alloc, opt)
}

// Evaluate runs an allocation through any backend — the engine-level entry
// the three evaluators share.
func Evaluate(ev Evaluator, app Experiment, cluster *Cluster, alloc Allocation, opt Options) (Result, error) {
	return EvaluateContext(context.Background(), ev, app, cluster, alloc, opt)
}

// EvaluateContext is Evaluate under a context: a done ctx short-circuits
// before the backend runs. Evaluations are virtual-time and fast, so
// cancellation is cooperative at the evaluation boundary — a result that is
// returned is always whole.
func EvaluateContext(ctx context.Context, ev Evaluator, app Experiment, cluster *Cluster, alloc Allocation, opt Options) (Result, error) {
	if err := cluster.Validate(); err != nil {
		return Result{}, err
	}
	return engine.EvaluateContext(ctx, ev, app, cluster, alloc, engine.Options{Exec: opt})
}

// GridPlan is the outcome of distributing an experiment over a grid.
type GridPlan struct {
	// Clusters lists cluster names in grid order.
	Clusters []string
	// Counts[i] is the number of scenarios cluster i received.
	Counts []int
	// Vectors[i] is cluster i's performance vector (makespan of 1..NS
	// scenarios).
	Vectors [][]float64
	// Allocations[i] is the processor grouping cluster i uses for its share
	// (zero-valued when the cluster received no scenario).
	Allocations []Allocation
	// Makespan is the global (max over clusters) makespan.
	Makespan float64
}

// Distribute runs the paper's heterogeneous-grid pipeline: each cluster
// computes its performance vector with the heuristic, the greedy Algorithm 1
// assigns scenarios, and each loaded cluster's share is simulated.
func Distribute(app Experiment, grid *Grid, h Heuristic, opt Options) (*GridPlan, error) {
	if grid == nil || len(grid.Clusters) == 0 {
		return nil, fmt.Errorf("%w: empty grid", ErrInvalidConfig)
	}
	plan := &GridPlan{
		Clusters:    grid.Names(),
		Allocations: make([]Allocation, len(grid.Clusters)),
	}
	// One batched sweep computes every cluster's performance vector over the
	// engine worker pool.
	vecs, err := engine.PerformanceVectors(DESBackend, app, grid.Clusters, h, engine.Options{Exec: opt}, 0)
	if err != nil {
		return nil, fmt.Errorf("oagrid: %w", err)
	}
	plan.Vectors = vecs
	rep, err := core.Repartition(plan.Vectors)
	if err != nil {
		return nil, err
	}
	plan.Counts = rep.Counts
	plan.Makespan = rep.Makespan
	for i, cl := range grid.Clusters {
		if rep.Counts[i] == 0 {
			continue
		}
		share := Experiment{Scenarios: rep.Counts[i], Months: app.Months}
		alloc, err := h.Plan(share, cl.Timing, cl.Procs)
		if err != nil {
			return nil, fmt.Errorf("oagrid: cluster %s: %w", cl.Name, err)
		}
		plan.Allocations[i] = alloc
	}
	return plan, nil
}

// Compare plans and simulates every heuristic on one cluster and returns the
// makespans keyed by heuristic name — the experiment behind the paper's
// Figure 8 at a single resource count. The four evaluations run as one
// batched sweep.
func Compare(app Experiment, cluster *Cluster, opt Options) (map[string]float64, error) {
	hs := Heuristics()
	jobs := make([]SweepJob, len(hs))
	for i, h := range hs {
		jobs[i] = SweepJob{App: app, Cluster: cluster, Heuristic: h, Opts: engine.Options{Exec: opt}}
	}
	results := Sweep(DESBackend, jobs, 0)
	out := make(map[string]float64, len(hs))
	for i, h := range hs {
		if results[i].Err != nil {
			return nil, fmt.Errorf("oagrid: %s: %w", h.Name(), results[i].Err)
		}
		out[h.Name()] = results[i].Result.Makespan
	}
	return out, nil
}
