package oagrid

import (
	"math"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	app := NewExperiment(10, 36)
	cluster := ReferenceCluster(53)
	plan, err := Plan(Knapsack, app, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if plan.UsedProcs() > 53 {
		t.Fatalf("plan uses %d processors on a 53-processor cluster", plan.UsedProcs())
	}
	res, err := Simulate(app, cluster, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("non-positive makespan")
	}
}

func TestEstimateMatchesPaperWorkedExample(t *testing.T) {
	// Worked example of §4.2: R = 53, NS = 10 → basic picks G = 7.
	app := DefaultExperiment()
	cluster := ReferenceCluster(53)
	plan, err := Plan(Basic, app, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Groups[0] != 7 || len(plan.Groups) != 7 {
		t.Fatalf("basic plan %v, want seven groups of 7", plan.Groups)
	}
	best, err := EstimateMakespan(app, cluster, 7)
	if err != nil {
		t.Fatal(err)
	}
	for g := 4; g <= 11; g++ {
		ms, err := EstimateMakespan(app, cluster, g)
		if err != nil {
			t.Fatal(err)
		}
		if ms < best-1e-9 {
			t.Fatalf("G=%d has estimate %g below the chosen G=7's %g", g, ms, best)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	app := NewExperiment(10, 24)
	cluster := ReferenceCluster(53)
	ms, err := Compare(app, cluster, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("Compare returned %d entries", len(ms))
	}
	// The knapsack heuristic must not lose to basic (the paper's headline).
	if ms["knapsack"] > ms["basic"]*(1+1e-9) {
		t.Fatalf("knapsack %g worse than basic %g", ms["knapsack"], ms["basic"])
	}
}

func TestDistribute(t *testing.T) {
	clusters := FiveClusters()[:3]
	for _, c := range clusters {
		c.Procs = 40
	}
	grid, err := NewGrid(clusters...)
	if err != nil {
		t.Fatal(err)
	}
	app := NewExperiment(8, 24)
	plan, err := Distribute(app, grid, Knapsack, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, c := range plan.Counts {
		total += c
		if c > 0 && len(plan.Allocations[i].Groups) == 0 {
			t.Fatalf("cluster %s has scenarios but no allocation", plan.Clusters[i])
		}
	}
	if total != app.Scenarios {
		t.Fatalf("distributed %d scenarios, want %d", total, app.Scenarios)
	}
	if plan.Makespan <= 0 || math.IsInf(plan.Makespan, 0) {
		t.Fatalf("bad makespan %g", plan.Makespan)
	}
	// The fastest cluster (first profile) must receive at least as many
	// scenarios as the slowest in the prefix.
	if plan.Counts[0] < plan.Counts[2] {
		t.Fatalf("fastest cluster got %d, slowest %d", plan.Counts[0], plan.Counts[2])
	}
	if _, err := Distribute(app, nil, Knapsack, Options{}); err == nil {
		t.Fatal("nil grid accepted")
	}
}

func TestHeuristicByName(t *testing.T) {
	for _, name := range []string{"basic", "redistribute", "all-to-main", "knapsack"} {
		h, err := HeuristicByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if h.Name() != name {
			t.Fatalf("ByName(%q) = %q", name, h.Name())
		}
	}
	if _, err := HeuristicByName("zzz"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if len(Heuristics()) != 4 {
		t.Fatalf("Heuristics() returned %d", len(Heuristics()))
	}
}

func TestEstimateMakespanErrors(t *testing.T) {
	app := NewExperiment(2, 2)
	if _, err := EstimateMakespan(app, ReferenceCluster(10), 3); err == nil {
		t.Error("group below the moldable range accepted")
	}
	if _, err := EstimateMakespan(app, ReferenceCluster(10), 12); err == nil {
		t.Error("group above the moldable range accepted")
	}
	bad := ReferenceCluster(0)
	if _, err := EstimateMakespan(app, bad, 7); err == nil {
		t.Error("invalid cluster accepted")
	}
	if _, err := Plan(Basic, app, bad); err == nil {
		t.Error("Plan accepted an invalid cluster")
	}
	if _, err := Simulate(app, bad, Allocation{Groups: []int{4}}, Options{}); err == nil {
		t.Error("Simulate accepted an invalid cluster")
	}
}

func TestFiveClustersIndependentCopies(t *testing.T) {
	a := FiveClusters()
	a[0].Procs = 999
	b := FiveClusters()
	if b[0].Procs == 999 {
		t.Fatal("FiveClusters returns shared cluster instances")
	}
	if len(a) != 5 || a[0].Name != "sagittaire" || a[4].Name != "azur" {
		t.Fatalf("unexpected profile set: %v, %v", a[0].Name, a[4].Name)
	}
}

func TestSimulateWithTraceAndGantt(t *testing.T) {
	app := NewExperiment(2, 3)
	cluster := ReferenceCluster(12)
	plan, err := Plan(Basic, app, cluster)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(app, cluster, plan, Options{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace recorded")
	}
	if err := res.Trace.Validate(app.Scenarios, app.Months); err != nil {
		t.Fatal(err)
	}
	gantt := res.Trace.Gantt(60)
	if len(gantt) == 0 {
		t.Fatal("empty Gantt rendering")
	}
}
