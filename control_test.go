package oagrid

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"oagrid/internal/grid"
)

// waitAdmitted blocks until the handle has an ID (or the campaign ended).
func waitAdmitted(t *testing.T, h *Handle) uint64 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for h.ID() == 0 {
		select {
		case <-h.Done():
			if h.ID() == 0 {
				t.Fatal("campaign ended without an admission")
			}
		case <-time.After(time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never admitted")
		}
	}
	return h.ID()
}

// waitPlanned consumes the stream until the first EventPlanned.
func waitPlanned(t *testing.T, ctx context.Context, h *Handle) {
	t.Helper()
	for ev := range h.EventsContext(ctx) {
		switch ev.(type) {
		case EventPlanned:
			return
		case EventResult:
			t.Fatal("campaign finished before its planned event was seen")
		}
	}
	t.Fatal("event stream closed before the planned event")
}

// chunkScenarios folds the handle's (complete, replayed) stream into the
// scenario count its EventChunkDone events covered.
func chunkScenarios(h *Handle) int {
	total := 0
	for ev := range h.Events() {
		if chunk, ok := ev.(EventChunkDone); ok {
			total += chunk.Report.Scenarios
		}
	}
	return total
}

// assertCancelledFrozen checks the operational cancel guarantees on a
// resolved campaign: status cancelled, progress gauges frozen at the cancel
// claim (nothing trickles in afterwards), and no chunk event beyond what
// the gauges account for. (The exact no-chunk-after-verdict ordering is
// enforced deterministically by the grid-layer gate-SeD test; here chunks
// may legitimately have completed before the cancel landed.)
func assertCancelledFrozen(t *testing.T, ctx context.Context, runner Runner, id uint64, h *Handle) {
	t.Helper()
	info1, err := runner.Info(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if info1.Status != StatusCancelled {
		t.Fatalf("cancelled campaign info status %q", info1.Status)
	}
	time.Sleep(300 * time.Millisecond) // let any straggler chunks land — they must be discarded
	info2, err := runner.Info(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Status != StatusCancelled || info2.Done != info1.Done {
		t.Fatalf("cancelled campaign moved after the verdict: %d done, then %d", info1.Done, info2.Done)
	}
	if got := chunkScenarios(h); got > info2.Done {
		t.Fatalf("handle stream carries %d chunk scenarios, gauges froze at %d", got, info2.Done)
	}
}

// TestLocalCancelMidCampaign: Runner.Cancel on a Local campaign stops the
// evaluation cooperatively mid-round, resolves the handle with the typed
// error, surfaces no chunk events, and shows up as cancelled in Info/List.
func TestLocalCancelMidCampaign(t *testing.T) {
	ctx := context.Background()
	runner, err := Local(testFleet(5))
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()

	// Big enough that the cancel lands mid-evaluation.
	h, err := runner.Run(ctx, NewCampaign(10, 1800), WithPriority(3), WithLabels(map[string]string{"team": "ocean"}))
	if err != nil {
		t.Fatal(err)
	}
	id := waitAdmitted(t, h)
	waitPlanned(t, ctx, h)
	if err := runner.Cancel(ctx, id); err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if !errors.Is(err, ErrCampaignCancelled) {
		t.Fatalf("Wait returned %v, want ErrCampaignCancelled", err)
	}
	if res != nil {
		t.Fatalf("cancelled campaign returned a result: %+v", res)
	}
	assertCancelledFrozen(t, ctx, runner, id, h)

	info, err := runner.Info(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Priority != 3 || info.Labels["team"] != "ocean" {
		t.Fatalf("info %+v, want submit options intact", info)
	}
	// Cancelling again is a no-op; cancelling the unknown is typed.
	if err := runner.Cancel(ctx, id); err != nil {
		t.Fatalf("second cancel errored: %v", err)
	}
	if err := runner.Cancel(ctx, 424242); !errors.Is(err, ErrUnknownCampaign) {
		t.Fatalf("cancel of unknown campaign returned %v, want ErrUnknownCampaign", err)
	}
	// Attach resolves with the cancelled verdict too.
	ah, err := runner.Attach(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ah.Wait(); !errors.Is(err, ErrCampaignCancelled) {
		t.Fatalf("attach to cancelled campaign resolved with %v, want ErrCampaignCancelled", err)
	}
}

// TestDialCancelMidRoundWithSeDKill: a remote campaign is cancelled in the
// same round a SeD dies. The cancel must win — typed error, no chunk frames
// — while a concurrent, non-cancelled campaign in the same daemon rides
// through the SeD failure and finishes bit-identical to serial evaluation.
func TestDialCancelMidRoundWithSeDKill(t *testing.T) {
	ctx := context.Background()
	fabric := startTestFabric(t, 3)
	runner, err := Dial(ctx, fabric.Sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()

	// The victim: a campaign big enough to still be mid-round when the SeD
	// dies and the cancel lands.
	victim, err := runner.Run(ctx, NewCampaign(10, 1800), WithLabels(map[string]string{"fate": "cancel"}))
	if err != nil {
		t.Fatal(err)
	}
	// The survivor: a normal campaign sharing the daemon and the SeD fleet.
	survivor, err := runner.Run(ctx, NewCampaign(8, 24))
	if err != nil {
		t.Fatal(err)
	}

	victimID := waitAdmitted(t, victim)
	// Kill a SeD and cancel in the same round: the victim is deep in its
	// first round (the 10×1800 performance-vector sweep alone takes far
	// longer than these two calls), so the cancel must cooperate with the
	// abort/requeue machinery, not run after it.
	fabric.SeDs[1].Close()
	if err := runner.Cancel(ctx, victimID); err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Wait(); !errors.Is(err, ErrCampaignCancelled) {
		t.Fatalf("victim resolved with %v, want ErrCampaignCancelled", err)
	}
	assertCancelledFrozen(t, ctx, runner, victimID, victim)

	res, err := survivor.Wait()
	if err != nil {
		t.Fatalf("survivor failed: %v", err)
	}
	// Bit-identical to serial evaluation, SeD kill and neighbor cancel
	// notwithstanding.
	v, err := grid.NewVerifier(fabric.Clusters, KnapsackName)
	if err != nil {
		t.Fatal(err)
	}
	chunks := make([]grid.ChunkReport, len(res.Reports))
	for i, rep := range res.Reports {
		chunks[i] = grid.ChunkReport{Cluster: rep.Cluster, Scenarios: rep.Scenarios, Makespan: rep.Makespan, Round: rep.Round}
	}
	if err := v.VerifyChunks(NewExperiment(8, 24), res.Makespan, chunks); err != nil {
		t.Fatal(err)
	}

	// The daemon's stats account the cancellation.
	if stats := fabric.Sched.Stats(); stats.Cancelled != 1 {
		t.Fatalf("daemon stats report %d cancelled campaigns, want 1", stats.Cancelled)
	}
}

// TestLocalCancelDurableStaysCancelled: a cancelled campaign on a durable
// Local runner replays as cancelled — never resumed — on the next open.
func TestLocalCancelDurableStaysCancelled(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	r1, err := Local(testFleet(2), WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	h, err := r1.Run(ctx, NewCampaign(10, 1800), WithLabels(map[string]string{"tier": "gold"}))
	if err != nil {
		t.Fatal(err)
	}
	id := waitAdmitted(t, h)
	if err := r1.Cancel(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); !errors.Is(err, ErrCampaignCancelled) {
		t.Fatalf("Wait returned %v, want ErrCampaignCancelled", err)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := Local(testFleet(2), WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	ah, err := r2.Attach(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ah.Wait(); !errors.Is(err, ErrCampaignCancelled) {
		t.Fatalf("replayed cancelled campaign resolved with %v, want ErrCampaignCancelled", err)
	}
	infos, err := r2.List(ctx, ListFilter{Status: StatusCancelled})
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != id || infos[0].Labels["tier"] != "gold" {
		t.Fatalf("cancelled filter returned %+v, want the replayed campaign with its labels", infos)
	}
	// Nothing queued or running: the cancelled campaign was not resumed.
	for _, status := range []string{StatusQueued, StatusRunning} {
		live, err := r2.List(ctx, ListFilter{Status: status})
		if err != nil {
			t.Fatal(err)
		}
		if len(live) != 0 {
			t.Fatalf("%s campaigns after replay: %+v", status, live)
		}
	}
}

// TestListInfoFiltersLocalAndRemote: List/Info report submit options and
// filter by status and label subset, identically on both runner flavours.
func TestListInfoFiltersLocalAndRemote(t *testing.T) {
	ctx := context.Background()
	local, err := Local(testFleet(2))
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	fabric := startTestFabric(t, 2)
	remote, err := Dial(ctx, fabric.Sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	for name, runner := range map[string]Runner{"local": local, "remote": remote} {
		a, err := runner.Run(ctx, NewCampaign(4, 12),
			WithPriority(7),
			WithLabels(map[string]string{"team": "ocean", "tier": "gold"}),
			WithCampaignHeuristic(BasicName),
			WithDeadline(time.Minute))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := runner.Run(ctx, NewCampaign(4, 12), WithLabels(map[string]string{"team": "atmos"}))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := a.Wait(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := b.Wait(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		info, err := runner.Info(ctx, a.ID())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.Status != StatusDone || info.Priority != 7 || info.Heuristic != BasicName ||
			info.Labels["team"] != "ocean" || info.Done != 4 || info.Total != 4 {
			t.Fatalf("%s: info %+v, want done with submit options echoed", name, info)
		}
		if info.Makespan <= 0 {
			t.Fatalf("%s: done campaign reports makespan %g", name, info.Makespan)
		}

		all, err := runner.List(ctx, ListFilter{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(all) != 2 || all[0].ID >= all[1].ID {
			t.Fatalf("%s: unfiltered list %+v, want both campaigns in ID order", name, all)
		}
		ocean, err := runner.List(ctx, ListFilter{Labels: map[string]string{"team": "ocean"}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ocean) != 1 || ocean[0].ID != a.ID() {
			t.Fatalf("%s: label filter returned %+v", name, ocean)
		}
		none, err := runner.List(ctx, ListFilter{Status: StatusRunning})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(none) != 0 {
			t.Fatalf("%s: running filter on finished table returned %+v", name, none)
		}
		if _, err := runner.Info(ctx, 999999); !errors.Is(err, ErrUnknownCampaign) {
			t.Fatalf("%s: Info on unknown ID returned %v, want ErrUnknownCampaign", name, err)
		}
		if err := runner.Cancel(ctx, 999999); !errors.Is(err, ErrUnknownCampaign) {
			t.Fatalf("%s: Cancel on unknown ID returned %v, want ErrUnknownCampaign", name, err)
		}
	}
}

// TestLocalDeadlineVsCallerDeadline: WithDeadline expiring is a terminal
// failure (journaled, ErrCampaignFailed), but the caller's own ctx deadline
// stays a pause — non-terminal in the journal, so the next runner on the
// state dir resumes the campaign.
func TestLocalDeadlineVsCallerDeadline(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	r1, err := Local(testFleet(2), WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}

	// The campaign's own deadline: terminal.
	h1, err := r1.Run(ctx, NewCampaign(10, 1800), WithDeadline(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Wait(); !errors.Is(err, ErrCampaignFailed) {
		t.Fatalf("deadline expiry resolved with %v, want ErrCampaignFailed", err)
	}
	id1 := h1.ID()

	// The caller's ctx deadline: a pause.
	shortCtx, cancel := context.WithTimeout(ctx, time.Millisecond)
	defer cancel()
	h2, err := r1.Run(shortCtx, NewCampaign(10, 1800), WithDeadline(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Wait(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("caller deadline resolved with %v, want context.DeadlineExceeded", err)
	}
	id2 := h2.ID()
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := Local(testFleet(2), WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	// The deadline-failed campaign replays failed; the paused one resumes
	// and completes.
	fh, err := r2.Attach(ctx, id1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Wait(); !errors.Is(err, ErrCampaignFailed) {
		t.Fatalf("replayed deadline failure resolved with %v, want ErrCampaignFailed", err)
	}
	ph, err := r2.Attach(ctx, id2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ph.Wait()
	if err != nil {
		t.Fatalf("paused campaign did not resume: %v", err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("resumed campaign result %+v", res)
	}
}

// TestEventsContextReleasesAbandonedSubscriber: a subscriber of a stream
// bigger than its buffer that walks away would pin its delivery goroutine
// forever with Events; EventsContext releases it on cancellation.
func TestEventsContextReleasesAbandonedSubscriber(t *testing.T) {
	h := newHandle(0) // minimal buffer: 32 + replay at subscription time
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	ch := h.EventsContext(ctx)
	// A pathological stream: far more events than the subscription buffer.
	for i := 0; i < 500; i++ {
		h.publish(EventProgress{Done: i, Total: 500})
	}
	// Consume one event, then abandon the (now overflowing) subscription.
	<-ch
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("%d goroutines before, %d after the abandoned subscription", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The channel closes rather than leaking.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, ok := <-ch; !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscription channel never closed after cancellation")
		}
	}
	// The handle itself is unharmed: a fresh subscriber drains normally.
	h.finish(&CampaignResult{Makespan: 1}, nil)
	var last Event
	for ev := range h.Events() {
		last = ev
	}
	res, ok := last.(EventResult)
	if !ok || math.Float64bits(res.Result.Makespan) != math.Float64bits(1) {
		t.Fatalf("fresh subscriber ended on %#v, want the terminal EventResult", last)
	}
}
