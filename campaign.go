package oagrid

import (
	"context"
	"sync"

	"oagrid/internal/diet"
)

// Campaign is the unit of work a climatologist submits: an ensemble
// experiment plus the heuristic that should plan it. The same value runs
// unchanged through every Runner — in-process (Local) or against a grid
// daemon (Dial) — and yields bit-identical Results at default options.
type Campaign struct {
	// Experiment is the ensemble to run: NS scenarios of NM months.
	Experiment Experiment
	// Heuristic names the planning heuristic ("basic", "redistribute",
	// "all-to-main", "knapsack"). Empty uses the runner's default
	// (WithHeuristic, or "knapsack").
	Heuristic string
}

// NewCampaign builds a campaign for an ensemble of the given shape, planned
// by the runner's default heuristic.
func NewCampaign(scenarios, months int) Campaign {
	return Campaign{Experiment: NewExperiment(scenarios, months)}
}

// Runner executes campaigns — the campaign control plane. Run returns
// immediately with a handle that streams typed Events and resolves to the
// final CampaignResult; the error covers only immediately-detectable
// problems (malformed campaign, unknown heuristic) — admission rejections
// and execution failures surface through the handle with the package's
// typed errors (ErrRejected, ErrCampaignFailed, ErrCampaignCancelled,
// ErrProtocol).
//
// Cancelling ctx stops only this client's involvement: a local run stops
// its worker pool between evaluations, a remote run releases its connection
// while the daemon-side campaign keeps running to its own deadline. Either
// way the handle resolves with ctx's error. Cancel, by contrast, stops the
// campaign itself, wherever it runs.
//
// Local and Dial implement every method with identical semantics, so a
// program written against Runner moves between in-process and grid
// execution unchanged.
type Runner interface {
	// Run starts one campaign. Submit options shape this campaign alone:
	// WithPriority orders it in the admission queue, WithLabels tags it for
	// List filters, WithDeadline bounds it individually, and
	// WithCampaignHeuristic overrides the planner — so one shared Runner
	// serves differently-shaped tenants.
	Run(ctx context.Context, c Campaign, opts ...SubmitOption) (*Handle, error)
	// Attach reconnects to a previously started campaign by the ID its
	// EventAdmitted (or Handle.ID) reported. The returned handle replays
	// the campaign's full progress history from the start, follows it live,
	// and resolves to the final result — against a daemon this works across
	// network cuts, client restarts, and daemon restarts on a state dir
	// (WithStateDir / oarun -state). An unknown ID resolves the handle with
	// an error wrapping ErrUnknownCampaign; a cancelled campaign's handle
	// resolves with an error wrapping ErrCampaignCancelled, even after a
	// restart.
	Attach(ctx context.Context, id uint64) (*Handle, error)
	// Cancel stops a campaign by ID, server-side for remote runners: a
	// queued campaign never dispatches, a running one halts at the next
	// chunk boundary with its in-flight work abandoned — no EventChunkDone
	// follows the cancel verdict. The cancellation is journaled terminally
	// before Cancel returns (on durable runners), so it survives a kill -9
	// restart; waiters and attachers resolve with ErrCampaignCancelled.
	// Cancelling an unknown ID returns an error wrapping ErrUnknownCampaign;
	// cancelling a campaign that already finished is a no-op.
	Cancel(ctx context.Context, id uint64) error
	// List enumerates the runner's campaign table in admission (ID) order —
	// queued, running and retained terminal campaigns — filtered by status
	// and label subset when the filter carries them.
	List(ctx context.Context, filter ListFilter) ([]CampaignInfo, error)
	// Info fetches one campaign's control-plane snapshot. An unknown ID
	// returns an error wrapping ErrUnknownCampaign.
	Info(ctx context.Context, id uint64) (*CampaignInfo, error)
	// Close releases the runner's resources. Handles already returned stay
	// valid.
	Close() error
}

// Campaign statuses reported by CampaignInfo.Status and ListFilter.Status.
const (
	StatusQueued    = diet.CampaignQueued
	StatusRunning   = diet.CampaignRunning
	StatusDone      = diet.CampaignDone
	StatusFailed    = diet.CampaignFailed
	StatusCancelled = diet.CampaignCancelled
)

// CampaignInfo is the control-plane view of one campaign: the submit
// options it carried plus its progress gauges — what Runner.Info and
// Runner.List report to an operator, as opposed to the CampaignResult a
// waiting submitter streams.
type CampaignInfo struct {
	// ID is the runner-issued campaign ID.
	ID uint64
	// Status is one of the Status constants.
	Status string
	// Priority, Labels and Heuristic echo the campaign's submit options
	// (Heuristic is the resolved planner, never empty).
	Priority int
	Labels   map[string]string
	// Heuristic names the planning heuristic the campaign runs with.
	Heuristic string
	// Scenarios and Months are the campaign's shape.
	Scenarios int
	Months    int
	// Done counts scenarios with a finished chunk; Total mirrors Scenarios.
	Done  int
	Total int
	// Rounds counts repartition rounds started; Requeues counts chunks lost
	// to dead clusters and re-repartitioned.
	Rounds   int
	Requeues int
	// Makespan is set once the campaign is done.
	Makespan float64
	// Err carries the failure reason of a failed campaign.
	Err string
	// Tenant is the fair-queueing tenant the campaign runs under — the
	// value of the daemon's tenant label key (default "team"), "default"
	// when the campaign carries none. Local runners derive it the same way
	// so Info stays runner-agnostic.
	Tenant string
	// QueuePos is the campaign's 1-based dispatch position within its
	// tenant's queue while queued, 0 after dispatch (and always 0 on local
	// runners, which have no admission queue).
	QueuePos int
	// WaitMs is the campaign's admission-to-dispatch wait in milliseconds:
	// ticking while queued, frozen once a dispatcher takes it.
	WaitMs float64
}

// ListFilter narrows Runner.List. The zero value matches every campaign.
type ListFilter struct {
	// Status keeps only campaigns in that state when non-empty (one of the
	// Status constants).
	Status string
	// Labels keeps only campaigns whose label set contains every given pair
	// (subset match) when non-empty.
	Labels map[string]string
}

// Event is one typed progress notification of a running campaign. The
// concrete types are EventAdmitted, EventPlanned, EventChunkDone,
// EventProgress and EventResult.
type Event interface{ isEvent() }

// EventAdmitted reports the campaign's admission and carries its ID — the
// durable name for the campaign: it polls, reattaches (Runner.Attach), and
// survives a daemon restart on a state dir. Hold on to it if the campaign
// may outlive this connection.
type EventAdmitted struct {
	// ID is the runner-issued campaign ID.
	ID uint64
}

// PlannedShare is one cluster's slice of a repartition.
type PlannedShare struct {
	// Cluster is the cluster's name.
	Cluster string
	// Scenarios is how many scenarios the cluster received.
	Scenarios int
}

// EventPlanned reports a computed repartition: Algorithm 1 has assigned the
// campaign's (remaining) scenarios to clusters. A campaign emits it once per
// repartition round — more than once only when a cluster died and its share
// was requeued.
type EventPlanned struct {
	// Shares lists each loaded cluster's scenario count for this round.
	Shares []PlannedShare
}

// EventChunkDone reports one cluster finishing its scenario share.
type EventChunkDone struct {
	// Report is the finished chunk's evaluation report.
	Report ClusterReport
	// Done and Total count completed scenarios campaign-wide.
	Done, Total int
}

// EventProgress reports scenario-level completion, including chunks lost to
// a dead cluster and sent back for re-repartition.
type EventProgress struct {
	// Done and Total count completed scenarios campaign-wide.
	Done, Total int
	// Requeued is non-zero when this update reports scenarios returned to
	// the queue after their cluster died.
	Requeued int
}

// EventResult is the terminal event: the campaign's final state, mirrored by
// Handle.Wait.
type EventResult struct {
	// Result is the campaign's report; nil when Err is set.
	Result *CampaignResult
	// Err is the campaign's failure, nil on success.
	Err error
}

func (EventAdmitted) isEvent()  {}
func (EventPlanned) isEvent()   {}
func (EventChunkDone) isEvent() {}
func (EventProgress) isEvent()  {}
func (EventResult) isEvent()    {}

// ClusterReport is one cluster's evaluation of its scenario share.
type ClusterReport struct {
	// Cluster is the cluster's name.
	Cluster string
	// Scenarios is the size of the share.
	Scenarios int
	// Makespan is the share's completion time in seconds.
	Makespan float64
	// Allocation is the processor grouping the cluster used.
	Allocation Allocation
	// Round is the repartition round that dispatched the share: 0 for the
	// first attempt, higher for work requeued after a cluster failure or
	// resumed after a restart. Rounds run sequentially, so the campaign
	// makespan is the sum of per-round maxima.
	Round int
	// Result carries the full backend report (utilization, trace, ...) on
	// live local runs; remote runs and journal-recovered local campaigns
	// transfer only the fields above and leave it nil.
	Result *Result
}

// CampaignResult is a campaign's final report. It is bit-identical between
// Local and Dial runners at default options, and bit-identical to a serial
// engine evaluation of each cluster's share — cancellation or no
// cancellation, whatever the worker count.
type CampaignResult struct {
	// Makespan is the campaign's completion time: the sum over repartition
	// rounds of each round's slowest chunk. A campaign with no failures has
	// one round, so this is simply the slowest cluster's makespan.
	Makespan float64
	// Reports holds one entry per evaluated chunk, sorted by (cluster,
	// scenarios, round). A cluster appears more than once only when work
	// was requeued onto it after a failure or resumed after a restart.
	Reports []ClusterReport
	// Requeues counts chunks that were re-dispatched after a cluster died.
	Requeues int
}

// resultMakespan folds chunk reports into the campaign makespan: rounds run
// sequentially, so it is the sum of per-round chunk maxima. It delegates to
// the one shared fold (diet.CampaignMakespan), so local and remote results
// stay bit-identical.
func resultMakespan(reports []ClusterReport) float64 {
	folded := make([]diet.ExecResponse, 0, len(reports))
	for _, r := range reports {
		folded = append(folded, diet.ExecResponse{Makespan: r.Makespan, Round: r.Round})
	}
	return diet.CampaignMakespan(folded)
}

// Handle is a running campaign. Events streams typed progress; Wait blocks
// for the final result. Both may be used together or alone — events buffer
// internally, so a caller that only Waits never blocks the runner, and a
// caller that subscribes late still sees every event from the start.
type Handle struct {
	mu    sync.Mutex
	queue []Event
	ended bool
	// change is closed and replaced on every publish: a broadcast that
	// wakes every subscriber pump at once.
	change chan struct{}
	done   chan struct{}
	result *CampaignResult
	err    error
	// id is the runner-issued campaign ID, set at admission.
	id uint64
	// scenarios sizes subscription buffers: the event count of any healthy
	// campaign is a small multiple of its scenario count.
	scenarios int
}

func newHandle(scenarios int) *Handle {
	return &Handle{change: make(chan struct{}), done: make(chan struct{}), scenarios: scenarios}
}

// ID returns the campaign's runner-issued ID — the value to pass to
// Runner.Attach after a cut or restart. It is 0 until the campaign is
// admitted; subscribe to EventAdmitted to learn it as soon as it exists.
func (h *Handle) ID() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.id
}

// setID records the campaign ID at admission.
func (h *Handle) setID(id uint64) {
	h.mu.Lock()
	h.id = id
	h.mu.Unlock()
}

// setScenarios sizes subscription buffers once the campaign shape is known —
// an attached handle learns it from the attach verdict, not at creation.
func (h *Handle) setScenarios(n int) {
	h.mu.Lock()
	if n > h.scenarios {
		h.scenarios = n
	}
	h.mu.Unlock()
}

// finished reports whether the campaign reached its terminal event.
func (h *Handle) finished() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ended
}

// publish appends one event to the stream and wakes all subscribers; it
// never blocks the producer.
func (h *Handle) publish(ev Event) {
	h.mu.Lock()
	h.queue = append(h.queue, ev)
	h.broadcastLocked()
	h.mu.Unlock()
}

// broadcastLocked wakes every pump parked on the current change channel.
// Callers hold h.mu.
func (h *Handle) broadcastLocked() {
	close(h.change)
	h.change = make(chan struct{})
}

// finish publishes the terminal EventResult, stores the outcome for Wait and
// closes the stream.
func (h *Handle) finish(res *CampaignResult, err error) {
	h.mu.Lock()
	h.result, h.err = res, err
	h.queue = append(h.queue, EventResult{Result: res, Err: err})
	h.ended = true
	h.broadcastLocked()
	h.mu.Unlock()
	close(h.done)
}

// Events is EventsContext without a cancellation context. The subscription
// channel is sized to hold any healthy campaign's full stream, so a
// consumer that stops reading early (break after the first chunk, say) does
// not strand the delivery goroutine: it finishes into the buffer and exits.
// Only a pathological stream bigger than the buffer (thousands of requeue
// rounds) falls back to blocking delivery, where abandoning the channel
// would pin the goroutine — use EventsContext (and cancel the context when
// done) or drain until close when consuming such campaigns.
func (h *Handle) Events() <-chan Event {
	return h.EventsContext(context.Background())
}

// EventsContext returns one subscription to the campaign's event stream.
// Every call gets its own channel that replays all events already emitted,
// then follows the campaign live, and closes after the terminal EventResult
// — independent subscribers each see the complete stream. Delivery never
// blocks the campaign itself (events buffer internally). Cancelling ctx
// closes the channel early and releases the delivery goroutine — the safe
// way to abandon a subscription whose stream may exceed its buffer.
func (h *Handle) EventsContext(ctx context.Context) <-chan Event {
	h.mu.Lock()
	// Replay + live allowance: 4 frames per scenario covers planned, chunk,
	// progress and requeue events across several repartition rounds.
	size := len(h.queue) + 4*h.scenarios + 32
	h.mu.Unlock()
	out := make(chan Event, size)
	go h.pump(ctx, out)
	return out
}

// pump delivers the full event sequence in order to one subscriber and
// closes its channel after the terminal event — or as soon as ctx is
// cancelled, whichever comes first (a nil-Done context never fires and
// costs nothing on the fast path).
func (h *Handle) pump(ctx context.Context, out chan<- Event) {
	done := ctx.Done()
	next := 0
	for {
		h.mu.Lock()
		if next < len(h.queue) {
			ev := h.queue[next]
			h.mu.Unlock()
			select {
			case out <- ev:
			case <-done:
				close(out)
				return
			}
			next++
			continue
		}
		ended := h.ended
		change := h.change
		h.mu.Unlock()
		if ended {
			close(out)
			return
		}
		select {
		case <-change:
		case <-done:
			close(out)
			return
		}
	}
}

// Done returns a channel that closes when the campaign reaches a terminal
// state.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Wait blocks until the campaign ends and returns its final result. The
// error wraps ErrRejected for admission rejections, ErrCampaignFailed for
// campaigns that started but could not finish, ErrProtocol for wire-level
// violations, and is the context's error when the campaign was cancelled.
func (h *Handle) Wait() (*CampaignResult, error) {
	<-h.done
	return h.result, h.err
}
