package oagrid

import (
	"context"
	"strings"

	"oagrid/internal/core"
	"oagrid/internal/diet"
	"oagrid/internal/grid"
)

// remoteRunner drives campaigns against a grid scheduler daemon over the
// versioned diet wire protocol.
type remoteRunner struct {
	client grid.Client
	cfg    runnerConfig
}

// Dial builds a Runner over a live grid scheduler daemon (cmd/oarun
// -daemon). It verifies a daemon answers before returning — ctx bounds
// that probe. Each campaign then streams on its own connection: admission
// verdict, per-campaign progress frames (protocol v2; a v1 daemon simply
// sends none), and the final result, with the frame deadline refreshed on
// every frame so campaigns may outlive any single timeout. At default
// options a dialed campaign's Result is bit-identical to a Local run over
// the same cluster profiles.
//
// addr may list several comma-separated addresses ("a:7714,b:7714,c:7714")
// when the daemons form a sharded ring (oarun -daemon -ring): the first is
// the primary, the rest are fallbacks tried when it is unreachable, and
// ownership redirects from any member are followed and cached so
// steady-state traffic goes straight to the shard that owns each campaign.
// A single address behaves exactly as before.
func Dial(ctx context.Context, addr string, opts ...RunnerOption) (Runner, error) {
	cfg := newRunnerConfig(opts)
	if _, err := core.ByName(cfg.heuristic); err != nil {
		return nil, err
	}
	primary, fallbacks := splitAddrs(addr)
	r := &remoteRunner{
		client: grid.Client{Addr: primary, Addrs: fallbacks, Timeout: cfg.timeout},
		cfg:    cfg,
	}
	if _, err := r.client.StatsContext(ctx); err != nil {
		return nil, err
	}
	return r, nil
}

// splitAddrs parses Dial's address argument: a comma-separated member list
// becomes the primary plus fallbacks; whitespace around entries is ignored
// and empty entries dropped.
func splitAddrs(addr string) (string, []string) {
	parts := strings.Split(addr, ",")
	all := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			all = append(all, p)
		}
	}
	if len(all) == 0 {
		return addr, nil
	}
	return all[0], all[1:]
}

// Run implements Runner. Submit options travel to the daemon on the wire
// (protocol v3): priority orders its admission queue, labels tag the
// campaign for List, a deadline overrides its campaign timeout.
func (r *remoteRunner) Run(ctx context.Context, c Campaign, opts ...SubmitOption) (*Handle, error) {
	app := core.Application(c.Experiment)
	if err := app.Validate(); err != nil {
		return nil, err
	}
	sub := newSubmitConfig(opts)
	name := sub.heuristic
	if name == "" {
		name = c.Heuristic
	}
	if name == "" {
		name = r.cfg.heuristic
	}
	if _, err := core.ByName(name); err != nil {
		return nil, err
	}
	handle := newHandle(app.Scenarios)
	meta := grid.SubmitMeta{Priority: sub.priority, Labels: sub.labels, Deadline: sub.deadline}
	go r.run(ctx, handle, app, name, meta)
	return handle, nil
}

// Cancel implements Runner: the daemon journals the cancellation before the
// verdict returns, so it survives any restart. An unknown ID is
// ErrUnknownCampaign; a campaign that finished first is a no-op.
func (r *remoteRunner) Cancel(ctx context.Context, id uint64) error {
	_, err := r.client.CancelContext(ctx, id)
	return err
}

// List implements Runner: the daemon's campaign table in admission order.
func (r *remoteRunner) List(ctx context.Context, filter ListFilter) ([]CampaignInfo, error) {
	infos, err := r.client.ListCampaignsContext(ctx, &diet.ListCampaignsRequest{
		Status: filter.Status,
		Labels: filter.Labels,
	})
	if err != nil {
		return nil, err
	}
	out := make([]CampaignInfo, len(infos))
	for i := range infos {
		out[i] = infoFromWire(&infos[i])
	}
	return out, nil
}

// Info implements Runner.
func (r *remoteRunner) Info(ctx context.Context, id uint64) (*CampaignInfo, error) {
	wi, err := r.client.InfoContext(ctx, id)
	if err != nil {
		return nil, err
	}
	info := infoFromWire(wi)
	return &info, nil
}

// infoFromWire maps the wire control-plane snapshot onto the public shape.
func infoFromWire(wi *diet.CampaignInfo) CampaignInfo {
	return CampaignInfo{
		ID:        wi.ID,
		Status:    wi.Status,
		Priority:  wi.Priority,
		Labels:    wi.Labels,
		Heuristic: wi.Heuristic,
		Scenarios: wi.Scenarios,
		Months:    wi.Months,
		Done:      wi.Done,
		Total:     wi.Total,
		Rounds:    wi.Rounds,
		Requeues:  wi.Requeues,
		Makespan:  wi.Makespan,
		Err:       wi.Err,
		Tenant:    wi.Tenant,
		QueuePos:  wi.QueuePos,
		WaitMs:    wi.WaitMs,
	}
}

// Attach implements Runner: it reconnects to a daemon-side campaign by ID
// over a KindAttach stream. The handle replays the campaign's full progress
// history — including everything published before a network cut or a
// daemon restart on a state dir — then follows it live to the result.
// Attach blocks until the attach verdict (one dial plus one frame, bounded
// by WithTimeout) or the failure that precedes it: the verdict carries the
// campaign shape that sizes event-subscription buffers, so a handle
// returned earlier could hand Events() an undersized channel and strand an
// abandoning consumer's delivery goroutine.
func (r *remoteRunner) Attach(ctx context.Context, id uint64) (*Handle, error) {
	handle := newHandle(0) // shape arrives with the attach verdict
	ready := make(chan struct{})
	go r.attach(ctx, handle, id, ready)
	select {
	case <-ready: // verdict arrived; scenarios are set
	case <-handle.done: // failed before the verdict (dial error, unknown ID)
	}
	return handle, nil
}

// Close implements Runner. Campaigns dial their own connections, so there
// is nothing to release.
func (r *remoteRunner) Close() error { return nil }

func (r *remoteRunner) run(ctx context.Context, handle *Handle, app core.Application, heuristic string, meta grid.SubmitMeta) {
	res, err := r.client.RunContext(ctx, app, heuristic, meta,
		func(id uint64) {
			handle.setID(id)
			handle.publish(EventAdmitted{ID: id})
		},
		func(u *diet.ProgressUpdate) {
			for _, ev := range progressEvents(u) {
				handle.publish(ev)
			}
		})
	if err != nil {
		if ctx.Err() != nil {
			err = ctx.Err()
		}
		handle.finish(nil, err)
		return
	}
	handle.finish(fromWire(res), nil)
}

func (r *remoteRunner) attach(ctx context.Context, handle *Handle, id uint64, ready chan<- struct{}) {
	res, err := r.client.AttachContext(ctx, id,
		func(v *diet.AttachResponse) {
			handle.setID(v.ID)
			handle.setScenarios(v.Total)
			handle.publish(EventAdmitted{ID: v.ID})
			close(ready)
		},
		func(u *diet.ProgressUpdate) {
			for _, ev := range progressEvents(u) {
				handle.publish(ev)
			}
		})
	if err != nil {
		if ctx.Err() != nil {
			err = ctx.Err()
		}
		handle.finish(nil, err)
		return
	}
	handle.finish(fromWire(res), nil)
}

// progressEvents maps one wire progress frame onto the typed event stream.
func progressEvents(u *diet.ProgressUpdate) []Event {
	switch u.Stage {
	case diet.StagePlanned:
		shares := make([]PlannedShare, len(u.Planned))
		for i, p := range u.Planned {
			shares[i] = PlannedShare{Cluster: p.Cluster, Scenarios: p.Scenarios}
		}
		return []Event{EventPlanned{Shares: shares}}
	case diet.StageChunk:
		if u.Chunk == nil {
			return nil
		}
		return []Event{
			EventChunkDone{
				Report: reportFromWire(*u.Chunk),
				Done:   u.Done, Total: u.Total,
			},
			EventProgress{Done: u.Done, Total: u.Total},
		}
	case diet.StageRequeue:
		return []Event{EventProgress{Done: u.Done, Total: u.Total, Requeued: u.Requeued}}
	default:
		return nil
	}
}

// reportFromWire maps one wire chunk report onto the public shape. The full
// backend Result does not travel the wire (or the journal), so it stays nil.
func reportFromWire(rep diet.ExecResponse) ClusterReport {
	return ClusterReport{
		Cluster:    rep.Cluster,
		Scenarios:  rep.Scenarios,
		Makespan:   rep.Makespan,
		Allocation: rep.Allocation,
		Round:      rep.Round,
	}
}

// fromWire maps the daemon's campaign result onto the public shape.
func fromWire(res *diet.CampaignResult) *CampaignResult {
	out := &CampaignResult{Makespan: res.Makespan, Requeues: res.Requeues}
	for _, rep := range res.Reports {
		out.Reports = append(out.Reports, reportFromWire(rep))
	}
	return out
}
