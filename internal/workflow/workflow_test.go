package workflow

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"oagrid/internal/platform"
)

func TestDAGBasics(t *testing.T) {
	d := NewDAG()
	a := &Task{ID: "a", MinProcs: 1, MaxProcs: 1, Seconds: 1}
	b := &Task{ID: "b", MinProcs: 1, MaxProcs: 1, Seconds: 2}
	if err := d.AddTask(a); err != nil {
		t.Fatal(err)
	}
	if err := d.AddTask(b); err != nil {
		t.Fatal(err)
	}
	if err := d.AddTask(a); err == nil {
		t.Fatal("expected duplicate-ID error")
	}
	if err := d.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge("a", "b"); err != nil {
		t.Fatal("re-adding an edge must be idempotent")
	}
	if d.Edges() != 1 {
		t.Fatalf("edges = %d, want 1", d.Edges())
	}
	if err := d.AddEdge("a", "zz"); err == nil {
		t.Fatal("expected missing-endpoint error")
	}
	if err := d.AddEdge("a", "a"); err == nil {
		t.Fatal("expected self-edge error")
	}
	if got := d.Successors("a"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Successors = %v", got)
	}
	if got := d.Predecessors("b"); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Predecessors = %v", got)
	}
	if src := d.Sources(); len(src) != 1 || src[0].ID != "a" {
		t.Fatalf("Sources = %v", src)
	}
	if snk := d.Sinks(); len(snk) != 1 || snk[0].ID != "b" {
		t.Fatalf("Sinks = %v", snk)
	}
}

func TestAddTaskValidation(t *testing.T) {
	d := NewDAG()
	bad := []*Task{
		nil,
		{ID: ""},
		{ID: "x", MinProcs: 0, MaxProcs: 1},
		{ID: "x", MinProcs: 2, MaxProcs: 1},
		{ID: "x", MinProcs: 1, MaxProcs: 1, Seconds: -4},
	}
	for i, task := range bad {
		if err := d.AddTask(task); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	d := NewDAG()
	for _, id := range []string{"a", "b", "c"} {
		if err := d.AddTask(&Task{ID: id, MinProcs: 1, MaxProcs: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}} {
		if err := d.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
	if _, err := d.TopoSort(); err == nil {
		t.Fatal("TopoSort accepted a cyclic graph")
	}
}

func TestMonthDAGStructure(t *testing.T) {
	d, err := MonthDAG(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 6 || d.Edges() != 5 {
		t.Fatalf("month DAG has %d tasks and %d edges, want 6 and 5", d.Len(), d.Edges())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	pcr := d.Task("pcr-s02-m0005")
	if pcr == nil {
		t.Fatal("pcr task missing")
	}
	if pcr.MinProcs != platform.MinGroup || pcr.MaxProcs != platform.MaxGroup {
		t.Fatalf("pcr moldable range [%d,%d], want [4,11]", pcr.MinProcs, pcr.MaxProcs)
	}
	if pcr.Seconds != platform.PcrSeconds {
		t.Fatalf("pcr duration %g, want %g", pcr.Seconds, platform.PcrSeconds)
	}
	// Critical path covers all six tasks: 1+1+1260+60+60+60.
	cp, path, err := d.CriticalPath(func(task *Task) float64 { return task.Seconds })
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + 1 + platform.PcrSeconds + 3*60.0; cp != want {
		t.Fatalf("critical path %g, want %g", cp, want)
	}
	if len(path) != 6 {
		t.Fatalf("critical path has %d hops, want 6: %v", len(path), path)
	}
}

func TestFusedMonthDAG(t *testing.T) {
	d, err := FusedMonthDAG(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Edges() != 1 {
		t.Fatalf("fused month: %d tasks, %d edges", d.Len(), d.Edges())
	}
	main := d.Task("main-s00-m0000")
	if main == nil || main.Seconds != platform.PreSeconds+platform.PcrSeconds {
		t.Fatalf("fused main wrong: %+v", main)
	}
	post := d.Task("post-s00-m0000")
	if post == nil || post.Seconds != platform.PostSeconds {
		t.Fatalf("fused post wrong: %+v", post)
	}
}

func TestScenarioChain(t *testing.T) {
	const months = 12
	chain, err := ScenarioChain(1, months, true)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Len() != 2*months {
		t.Fatalf("chain has %d tasks, want %d", chain.Len(), 2*months)
	}
	if err := chain.Validate(); err != nil {
		t.Fatal(err)
	}
	// Critical path: NM fused mains plus the last post.
	cp, _, err := chain.CriticalPath(func(task *Task) float64 { return task.Seconds })
	if err != nil {
		t.Fatal(err)
	}
	want := months*(platform.PreSeconds+platform.PcrSeconds) + platform.PostSeconds
	if cp != want {
		t.Fatalf("chain critical path %g, want %g", cp, want)
	}
	// The six-task variant chains pcr → caif of the next month.
	full, err := ScenarioChain(0, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() != 18 {
		t.Fatalf("full chain has %d tasks, want 18", full.Len())
	}
	found := false
	for _, s := range full.Successors("pcr-s00-m0000") {
		if s == "caif-s00-m0001" {
			found = true
		}
	}
	if !found {
		t.Fatal("restart edge pcr(m) → caif(m+1) missing")
	}
	if _, err := ScenarioChain(0, 0, true); err == nil {
		t.Fatal("expected error for zero months")
	}
}

func TestEnsembleAndLink(t *testing.T) {
	dags, err := Ensemble(4, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(dags) != 4 {
		t.Fatalf("ensemble size %d, want 4", len(dags))
	}
	merged, err := LinkEnsemble(dags)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 chains × 6 tasks + entry + exit.
	if merged.Len() != 4*6+2 {
		t.Fatalf("merged has %d tasks", merged.Len())
	}
	if src := merged.Sources(); len(src) != 1 || src[0].ID != "entry" {
		t.Fatalf("merged sources = %v", src)
	}
	if snk := merged.Sinks(); len(snk) != 1 || snk[0].ID != "exit" {
		t.Fatalf("merged sinks = %v", snk)
	}
	if _, err := Ensemble(0, 3, true); err == nil {
		t.Fatal("expected error for zero scenarios")
	}
}

func TestMergeRejectsCollisions(t *testing.T) {
	a, err := FusedMonthDAG(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FusedMonthDAG(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Fatal("expected ID collision error")
	}
}

// TestTopoRespectsEdges is a property test: in any topological order every
// edge points forward.
func TestTopoRespectsEdges(t *testing.T) {
	f := func(nRaw, mRaw uint8) bool {
		scenarios := 1 + int(nRaw)%4
		months := 1 + int(mRaw)%6
		dags, err := Ensemble(scenarios, months, nRaw%2 == 0)
		if err != nil {
			return false
		}
		merged, err := LinkEnsemble(dags)
		if err != nil {
			return false
		}
		topo, err := merged.TopoSort()
		if err != nil {
			return false
		}
		pos := make(map[string]int, len(topo))
		for i, task := range topo {
			pos[task.ID] = i
		}
		for _, task := range merged.Tasks() {
			for _, s := range merged.Successors(task.ID) {
				if pos[task.ID] >= pos[s] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindPre: "pre", KindMain: "main", KindPost: "post", Kind(9): "kind(9)"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestTaskIDFormat(t *testing.T) {
	d, err := MonthDAG(3, 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range d.Tasks() {
		if !strings.Contains(task.ID, "-s03-m0017") {
			t.Fatalf("unexpected task ID %q", task.ID)
		}
		if task.ID != fmt.Sprintf("%s-s03-m0017", task.Name) {
			t.Fatalf("ID %q does not embed name %q", task.ID, task.Name)
		}
	}
}
