package workflow

import (
	"fmt"

	"oagrid/internal/platform"
)

// Task-name constants of the monthly simulation pipeline (paper §2).
const (
	TaskCAIF = "caif" // concatenate_atmospheric_input_files
	TaskMP   = "mp"   // modify_parameters
	TaskPCR  = "pcr"  // process_coupled_run
	TaskCOF  = "cof"  // convert_output_format
	TaskEMI  = "emi"  // extract_minimum_information
	TaskCD   = "cd"   // compress_diags
)

// Figure-1 nominal durations in seconds.
var figure1Seconds = map[string]float64{
	TaskCAIF: 1,
	TaskMP:   1,
	TaskPCR:  platform.PcrSeconds,
	TaskCOF:  60,
	TaskEMI:  60,
	TaskCD:   60,
}

// taskID builds the canonical "name-sXX-mYYYY" identifier.
func taskID(name string, scenario, month int) string {
	return fmt.Sprintf("%s-s%02d-m%04d", name, scenario, month)
}

// MonthDAG builds the full six-task DAG of one monthly simulation, with the
// dependencies of the paper's Figure 1: the two pre-processing tasks feed the
// coupled run, and the three post-processing phases run in their textual
// order (convert, extract, compress).
func MonthDAG(scenario, month int) (*DAG, error) {
	d := NewDAG()
	add := func(name string, kind Kind, minP, maxP int) error {
		return d.AddTask(&Task{
			ID:       taskID(name, scenario, month),
			Name:     name,
			Kind:     kind,
			Scenario: scenario,
			Month:    month,
			MinProcs: minP,
			MaxProcs: maxP,
			Seconds:  figure1Seconds[name],
		})
	}
	if err := add(TaskCAIF, KindPre, 1, 1); err != nil {
		return nil, err
	}
	if err := add(TaskMP, KindPre, 1, 1); err != nil {
		return nil, err
	}
	if err := add(TaskPCR, KindMain, platform.MinGroup, platform.MaxGroup); err != nil {
		return nil, err
	}
	if err := add(TaskCOF, KindPost, 1, 1); err != nil {
		return nil, err
	}
	if err := add(TaskEMI, KindPost, 1, 1); err != nil {
		return nil, err
	}
	if err := add(TaskCD, KindPost, 1, 1); err != nil {
		return nil, err
	}
	edges := [][2]string{
		{TaskCAIF, TaskMP},
		{TaskMP, TaskPCR},
		{TaskPCR, TaskCOF},
		{TaskCOF, TaskEMI},
		{TaskEMI, TaskCD},
	}
	for _, e := range edges {
		if err := d.AddEdge(taskID(e[0], scenario, month), taskID(e[1], scenario, month)); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// FusedMonthDAG builds the simplified two-task DAG of the paper's §4.1:
// one fused moldable main task (pre-processing + coupled run) and one fused
// post task.
func FusedMonthDAG(scenario, month int) (*DAG, error) {
	d := NewDAG()
	main := &Task{
		ID:       taskID("main", scenario, month),
		Name:     "main",
		Kind:     KindMain,
		Scenario: scenario,
		Month:    month,
		MinProcs: platform.MinGroup,
		MaxProcs: platform.MaxGroup,
		Seconds:  platform.PreSeconds + platform.PcrSeconds,
	}
	post := &Task{
		ID:       taskID("post", scenario, month),
		Name:     "post",
		Kind:     KindPost,
		Scenario: scenario,
		Month:    month,
		MinProcs: 1,
		MaxProcs: 1,
		Seconds:  platform.PostSeconds,
	}
	if err := d.AddTask(main); err != nil {
		return nil, err
	}
	if err := d.AddTask(post); err != nil {
		return nil, err
	}
	if err := d.AddEdge(main.ID, post.ID); err != nil {
		return nil, err
	}
	return d, nil
}

// ScenarioChain builds the 1D mesh of one scenario: months chained so that
// month m's main task depends on month m-1's (restart files, ~120 MB). When
// fused is true each month is the two-task model, otherwise the six-task
// pipeline of Figure 1.
func ScenarioChain(scenario, months int, fused bool) (*DAG, error) {
	if months <= 0 {
		return nil, fmt.Errorf("workflow: scenario needs at least one month, got %d", months)
	}
	chain := NewDAG()
	for m := 0; m < months; m++ {
		var (
			month *DAG
			err   error
		)
		if fused {
			month, err = FusedMonthDAG(scenario, m)
		} else {
			month, err = MonthDAG(scenario, m)
		}
		if err != nil {
			return nil, err
		}
		if err := chain.Merge(month); err != nil {
			return nil, err
		}
		if m > 0 {
			// The restart produced by month m-1's coupled run feeds month m's
			// first pre-processing step (fused model: main → main).
			var from, to string
			if fused {
				from = taskID("main", scenario, m-1)
				to = taskID("main", scenario, m)
			} else {
				from = taskID(TaskPCR, scenario, m-1)
				to = taskID(TaskCAIF, scenario, m)
			}
			if err := chain.AddEdge(from, to); err != nil {
				return nil, err
			}
		}
	}
	return chain, nil
}

// Ensemble builds the NS independent scenario chains of one experiment.
func Ensemble(scenarios, months int, fused bool) ([]*DAG, error) {
	if scenarios <= 0 {
		return nil, fmt.Errorf("workflow: ensemble needs at least one scenario, got %d", scenarios)
	}
	out := make([]*DAG, scenarios)
	for s := 0; s < scenarios; s++ {
		chain, err := ScenarioChain(s, months, fused)
		if err != nil {
			return nil, err
		}
		out[s] = chain
	}
	return out, nil
}

// LinkEnsemble merges independent DAGs under a synthetic entry and exit node,
// the multi-DAG scheduling technique of the paper's §3.1 ("link all the entry
// tasks of the DAGs to an unique entry node and do the same with the exit
// nodes").
func LinkEnsemble(dags []*DAG) (*DAG, error) {
	merged := NewDAG()
	entry := &Task{ID: "entry", Name: "entry", Kind: KindPre, MinProcs: 1, MaxProcs: 1}
	exit := &Task{ID: "exit", Name: "exit", Kind: KindPost, MinProcs: 1, MaxProcs: 1}
	if err := merged.AddTask(entry); err != nil {
		return nil, err
	}
	for _, d := range dags {
		if err := merged.Merge(d); err != nil {
			return nil, err
		}
	}
	if err := merged.AddTask(exit); err != nil {
		return nil, err
	}
	for _, d := range dags {
		for _, src := range d.Sources() {
			if err := merged.AddEdge(entry.ID, src.ID); err != nil {
				return nil, err
			}
		}
		for _, snk := range d.Sinks() {
			if err := merged.AddEdge(snk.ID, exit.ID); err != nil {
				return nil, err
			}
		}
	}
	return merged, nil
}
