// Package workflow models the application structure of the study: directed
// acyclic graphs of (possibly moldable) tasks, chains of identical DAGs — one
// chain per climate scenario — and the ensemble of independent chains that
// makes up a full experiment (paper §2 and §3.1).
package workflow

import (
	"errors"
	"fmt"
)

// Kind classifies tasks by the phase they belong to in the monthly
// simulation pipeline.
type Kind int

const (
	// KindPre marks single-processor pre-processing tasks (caif, mp).
	KindPre Kind = iota
	// KindMain marks the moldable coupled-run task (pcr) or the fused
	// pre+main task of the simplified model.
	KindMain
	// KindPost marks single-processor post-processing tasks (cof, emi, cd)
	// or the fused post task.
	KindPost
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPre:
		return "pre"
	case KindMain:
		return "main"
	case KindPost:
		return "post"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Task is one node of a DAG. MinProcs == MaxProcs == 1 for sequential tasks;
// the coupled run is moldable over [MinProcs, MaxProcs].
type Task struct {
	ID       string
	Name     string
	Kind     Kind
	Scenario int
	Month    int
	MinProcs int
	MaxProcs int
	// Seconds is the nominal duration at the reference benchmark grouping
	// (Figure 1 of the paper); platform timing models rescale it.
	Seconds float64
}

// DAG is a directed acyclic graph of tasks with deterministic iteration
// order (insertion order).
type DAG struct {
	tasks map[string]*Task
	order []string
	succ  map[string][]string
	pred  map[string][]string
	edges int
}

// NewDAG returns an empty DAG.
func NewDAG() *DAG {
	return &DAG{
		tasks: make(map[string]*Task),
		succ:  make(map[string][]string),
		pred:  make(map[string][]string),
	}
}

// AddTask inserts a task; IDs must be unique and non-empty.
func (d *DAG) AddTask(t *Task) error {
	if t == nil || t.ID == "" {
		return errors.New("workflow: task with empty ID")
	}
	if t.MinProcs <= 0 || t.MaxProcs < t.MinProcs {
		return fmt.Errorf("workflow: task %s has invalid processor range [%d,%d]", t.ID, t.MinProcs, t.MaxProcs)
	}
	if t.Seconds < 0 {
		return fmt.Errorf("workflow: task %s has negative duration", t.ID)
	}
	if _, dup := d.tasks[t.ID]; dup {
		return fmt.Errorf("workflow: duplicate task ID %q", t.ID)
	}
	d.tasks[t.ID] = t
	d.order = append(d.order, t.ID)
	return nil
}

// AddEdge inserts the dependency from → to. Both endpoints must exist.
func (d *DAG) AddEdge(from, to string) error {
	if _, ok := d.tasks[from]; !ok {
		return fmt.Errorf("workflow: edge source %q not in DAG", from)
	}
	if _, ok := d.tasks[to]; !ok {
		return fmt.Errorf("workflow: edge target %q not in DAG", to)
	}
	if from == to {
		return fmt.Errorf("workflow: self edge on %q", from)
	}
	for _, s := range d.succ[from] {
		if s == to {
			return nil // idempotent
		}
	}
	d.succ[from] = append(d.succ[from], to)
	d.pred[to] = append(d.pred[to], from)
	d.edges++
	return nil
}

// Len returns the number of tasks.
func (d *DAG) Len() int { return len(d.order) }

// Edges returns the number of distinct edges.
func (d *DAG) Edges() int { return d.edges }

// Task returns the task with the given ID, or nil.
func (d *DAG) Task(id string) *Task { return d.tasks[id] }

// Tasks returns all tasks in insertion order.
func (d *DAG) Tasks() []*Task {
	out := make([]*Task, len(d.order))
	for i, id := range d.order {
		out[i] = d.tasks[id]
	}
	return out
}

// Successors returns the direct successors of id in insertion order.
func (d *DAG) Successors(id string) []string {
	return append([]string(nil), d.succ[id]...)
}

// Predecessors returns the direct predecessors of id.
func (d *DAG) Predecessors(id string) []string {
	return append([]string(nil), d.pred[id]...)
}

// Sources returns tasks without predecessors.
func (d *DAG) Sources() []*Task {
	var out []*Task
	for _, id := range d.order {
		if len(d.pred[id]) == 0 {
			out = append(out, d.tasks[id])
		}
	}
	return out
}

// Sinks returns tasks without successors.
func (d *DAG) Sinks() []*Task {
	var out []*Task
	for _, id := range d.order {
		if len(d.succ[id]) == 0 {
			out = append(out, d.tasks[id])
		}
	}
	return out
}

// TopoSort returns a topological order (stable with respect to insertion
// order) or an error if the graph has a cycle.
func (d *DAG) TopoSort() ([]*Task, error) {
	indeg := make(map[string]int, len(d.tasks))
	for id, ps := range d.pred {
		indeg[id] = len(ps)
	}
	var queue []string
	for _, id := range d.order {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	out := make([]*Task, 0, len(d.order))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		out = append(out, d.tasks[id])
		for _, s := range d.succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(out) != len(d.order) {
		return nil, errors.New("workflow: DAG contains a cycle")
	}
	return out, nil
}

// Validate checks the DAG is acyclic and every edge endpoint exists.
func (d *DAG) Validate() error {
	_, err := d.TopoSort()
	return err
}

// CriticalPath returns the longest path length under the given duration
// function and the task IDs along it, source to sink.
func (d *DAG) CriticalPath(dur func(*Task) float64) (float64, []string, error) {
	topo, err := d.TopoSort()
	if err != nil {
		return 0, nil, err
	}
	dist := make(map[string]float64, len(topo))
	via := make(map[string]string, len(topo))
	best, bestID := -1.0, ""
	for _, t := range topo {
		dt := dur(t)
		if dt < 0 {
			return 0, nil, fmt.Errorf("workflow: negative duration for task %s", t.ID)
		}
		v := dt
		for _, p := range d.pred[t.ID] {
			if c := dist[p] + dt; c > v {
				v = c
				via[t.ID] = p
			}
		}
		dist[t.ID] = v
		if v > best {
			best, bestID = v, t.ID
		}
	}
	var path []string
	for id := bestID; id != ""; id = via[id] {
		path = append(path, id)
	}
	// Reverse into source→sink order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	if best < 0 {
		best = 0
	}
	return best, path, nil
}

// Merge copies all tasks and edges of other into d. Task IDs must not
// collide; use distinct scenario prefixes when merging chains.
func (d *DAG) Merge(other *DAG) error {
	for _, t := range other.Tasks() {
		cp := *t
		if err := d.AddTask(&cp); err != nil {
			return err
		}
	}
	for _, id := range other.order {
		for _, s := range other.succ[id] {
			if err := d.AddEdge(id, s); err != nil {
				return err
			}
		}
	}
	return nil
}
