package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/platform"
)

// slowEvaluator wraps DES and blocks until release closes on its first
// call, so a test can hold the sweep mid-flight deterministically.
type slowEvaluator struct {
	started chan struct{} // receives one token per evaluation started
	release chan struct{}
}

func (s *slowEvaluator) Name() string { return "slow" }

func (s *slowEvaluator) Evaluate(app core.Application, cluster *platform.Cluster, alloc core.Allocation, opts Options) (Result, error) {
	s.started <- struct{}{}
	<-s.release
	return DES{}.Evaluate(app, cluster, alloc, opts)
}

// TestSweepContextCancellation: a ctx cancelled mid-sweep stops workers
// promptly — running jobs finish, unstarted jobs carry ctx.Err(), and the
// sweep returns ctx.Err().
func TestSweepContextCancellation(t *testing.T) {
	cluster := platform.ReferenceCluster(20)
	ev := &slowEvaluator{started: make(chan struct{}, 64), release: make(chan struct{})}
	jobs := make([]Job, 32)
	for i := range jobs {
		jobs[i] = Job{
			App:       core.Application{Scenarios: 2, Months: 6},
			Cluster:   cluster,
			Heuristic: core.Knapsack{},
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		results []JobResult
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		results, err := SweepContext(ctx, ev, jobs, 2)
		done <- outcome{results, err}
	}()

	// Both workers are now parked inside an evaluation; cancel and let them
	// go. No further jobs may start.
	<-ev.started
	<-ev.started
	cancel()
	close(ev.release)

	var out outcome
	select {
	case out = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sweep did not return after cancellation")
	}
	if !errors.Is(out.err, context.Canceled) {
		t.Fatalf("SweepContext returned %v, want context.Canceled", out.err)
	}
	finished, cancelled := 0, 0
	for i, r := range out.results {
		switch {
		case r.Err == nil:
			finished++
			if r.Result.Makespan <= 0 {
				t.Fatalf("job %d finished with non-positive makespan", i)
			}
		case errors.Is(r.Err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("job %d failed with %v", i, r.Err)
		}
	}
	if finished != 2 {
		t.Fatalf("%d jobs finished, want exactly the 2 in flight at cancellation", finished)
	}
	if cancelled != len(jobs)-2 {
		t.Fatalf("%d jobs cancelled, want %d", cancelled, len(jobs)-2)
	}
}

// TestSweepContextCleanRunMatchesSweep: without cancellation the ctx-aware
// sweep is the plain sweep.
func TestSweepContextCleanRunMatchesSweep(t *testing.T) {
	cluster := platform.ReferenceCluster(25)
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{
			App:       core.Application{Scenarios: i%4 + 1, Months: 12},
			Cluster:   cluster,
			Heuristic: core.Knapsack{},
		}
	}
	plain := Sweep(DES{}, jobs, 3)
	withCtx, err := SweepContext(context.Background(), DES{}, jobs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i].Err != nil || withCtx[i].Err != nil {
			t.Fatalf("job %d errored: %v / %v", i, plain[i].Err, withCtx[i].Err)
		}
		if plain[i].Result.Makespan != withCtx[i].Result.Makespan {
			t.Fatalf("job %d differs: %g vs %g", i, plain[i].Result.Makespan, withCtx[i].Result.Makespan)
		}
	}
}

// TestEvaluateContextShortCircuits: a done ctx never reaches the backend.
func TestEvaluateContextShortCircuits(t *testing.T) {
	cluster := platform.ReferenceCluster(20)
	app := core.Application{Scenarios: 2, Months: 6}
	alloc, err := (core.Knapsack{}).Plan(app, cluster.Timing, cluster.Procs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvaluateContext(ctx, DES{}, app, cluster, alloc, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("EvaluateContext returned %v, want context.Canceled", err)
	}
	if res, err := EvaluateContext(context.Background(), DES{}, app, cluster, alloc, Options{}); err != nil || res.Makespan <= 0 {
		t.Fatalf("live ctx evaluation failed: %v %+v", err, res)
	}
}
