package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"oagrid/internal/core"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
)

// Job is one cell of a sweep matrix: plan app on the cluster with the
// heuristic (or take Alloc as given) and evaluate the result.
type Job struct {
	// App is the workload.
	App core.Application
	// Cluster hosts the run. Jobs that share a *Cluster share the memoized
	// timing and the plan cache, so matrices should build one cluster value
	// per (profile, resource count) and reuse it across heuristics and
	// variants — Matrix and PerformanceVectors do.
	Cluster *platform.Cluster
	// Heuristic plans the allocation. Leave nil to evaluate Alloc as given.
	Heuristic core.Heuristic
	// Alloc is the pre-computed allocation evaluated when Heuristic is nil.
	Alloc core.Allocation
	// Opts tunes the evaluation; the jitter seed travels with the job, which
	// is what keeps parallel sweeps bit-identical to serial ones.
	Opts Options
	// PlanKey disambiguates planner variants whose Name() collides (the
	// knapsack value-function ablation builds three planners all named
	// "knapsack"). Empty uses Heuristic.Name().
	PlanKey string
}

// JobResult is the outcome of one job, stored at the job's index.
type JobResult struct {
	// Alloc is the evaluated allocation (planned or passed through).
	Alloc core.Allocation
	// Result is the backend's report; zero when Err is set.
	Result Result
	// Err is the job's failure. One failing job does not stop the sweep.
	Err error
}

// FirstError returns the error of the lowest-indexed failed job, or nil.
func FirstError(results []JobResult) error {
	for i := range results {
		if results[i].Err != nil {
			return fmt.Errorf("engine: job %d: %w", i, results[i].Err)
		}
	}
	return nil
}

// Sweep evaluates every job on ev with a pool of workers goroutines
// (workers <= 0 uses GOMAXPROCS). The result slice is indexed like jobs and
// is bit-identical whatever the worker count: jobs are self-contained
// (deterministic seeds in Opts), workers claim indices from an atomic
// counter, and each result is written to its own slot — arrival order never
// influences the output. Distinct clusters are validated and their timings
// memoized once, serially, before the pool starts.
func Sweep(ev Evaluator, jobs []Job, workers int) []JobResult {
	results, _ := SweepContext(context.Background(), ev, jobs, workers)
	return results
}

// SweepContext is Sweep with cooperative cancellation: workers stop claiming
// jobs once ctx is done, jobs never started carry ctx's error in their slot,
// and the sweep returns ctx.Err(). Cancellation is checked between jobs — a
// job already running finishes (evaluations are virtual-time and fast), so
// results that are present are exactly the results a serial run would have
// produced for those indices.
func SweepContext(ctx context.Context, ev Evaluator, jobs []Job, workers int) ([]JobResult, error) {
	results := make([]JobResult, len(jobs))
	if len(jobs) == 0 {
		return results, ctx.Err()
	}
	if ev == nil {
		ev = Default()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// Per-cluster preparation: validate once, memoize the timing once. The
	// prepared copy keeps the original's name and size so backends and error
	// messages see the cluster the caller described.
	type prepared struct {
		cluster *platform.Cluster
		err     error
	}
	prep := make(map[*platform.Cluster]prepared, 8)
	for i := range jobs {
		cl := jobs[i].Cluster
		if cl == nil {
			continue
		}
		if _, ok := prep[cl]; ok {
			continue
		}
		if err := cl.Validate(); err != nil {
			prep[cl] = prepared{err: err}
			continue
		}
		cp := *cl
		cp.Timing = Memoize(cp.Timing)
		prep[cl] = prepared{cluster: &cp}
	}

	cache := newPlanCache()
	run := func(j Job) JobResult {
		if j.Cluster == nil {
			return JobResult{Err: errors.New("engine: job without a cluster")}
		}
		p := prep[j.Cluster]
		if p.err != nil {
			return JobResult{Err: p.err}
		}
		alloc := j.Alloc
		if j.Heuristic != nil {
			name := j.PlanKey
			if name == "" {
				name = j.Heuristic.Name()
			}
			key := planKey{
				cluster:   j.Cluster,
				scenarios: j.App.Scenarios,
				months:    j.App.Months,
				procs:     p.cluster.Procs,
				heuristic: name,
			}
			var err error
			alloc, err = cache.plan(key, j.Heuristic, j.App, p.cluster.Timing)
			if err != nil {
				return JobResult{Err: err}
			}
		} else if len(alloc.Groups) == 0 {
			return JobResult{Err: errors.New("engine: job without a heuristic or an allocation")}
		}
		res, err := ev.Evaluate(j.App, p.cluster, alloc, j.Opts)
		if err != nil {
			return JobResult{Err: err}
		}
		return JobResult{Alloc: alloc, Result: res}
	}

	if workers == 1 {
		for i := range jobs {
			if err := ctx.Err(); err != nil {
				results[i] = JobResult{Err: err}
				continue
			}
			results[i] = run(jobs[i])
		}
		return results, ctx.Err()
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(jobs) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i] = JobResult{Err: err}
					continue
				}
				results[i] = run(jobs[i])
			}
		}()
	}
	wg.Wait()
	return results, ctx.Err()
}

// Variant is one executor configuration of a sweep matrix.
type Variant struct {
	// Policy is the dispatch rule.
	Policy exec.Policy
	// Jitter and Seed configure the deterministic duration noise.
	Jitter float64
	Seed   uint64
}

// Matrix enumerates the cross product (cluster × heuristic × variant) the
// evaluation sweeps iterate: resource counts and speed profiles enter as
// clusters, dispatch policies and jitter streams as variants.
type Matrix struct {
	// App is the workload shared by every cell.
	App core.Application
	// Clusters are the platforms, typically profile.WithProcs(r) copies —
	// build each copy once so plan-cache sharing applies.
	Clusters []*platform.Cluster
	// Heuristics are the planners. Empty defaults to core.All().
	Heuristics []core.Heuristic
	// Variants are the executor configurations. Empty defaults to the
	// paper's single zero variant.
	Variants []Variant
	// Base is merged into every job's options before the variant is applied
	// (tracing, failure injection, ...).
	Base Options
}

func (m Matrix) heuristics() []core.Heuristic {
	if len(m.Heuristics) == 0 {
		return core.All()
	}
	return m.Heuristics
}

func (m Matrix) variants() []Variant {
	if len(m.Variants) == 0 {
		// The default variant inherits the base options verbatim, so a
		// matrix without explicit variants honours Base.Exec untouched.
		return []Variant{{
			Policy: m.Base.Exec.Policy,
			Jitter: m.Base.Exec.Jitter,
			Seed:   m.Base.Exec.Seed,
		}}
	}
	return m.Variants
}

// Size returns the number of jobs the matrix expands to.
func (m Matrix) Size() int {
	return len(m.Clusters) * len(m.heuristics()) * len(m.variants())
}

// Index returns the job index of (cluster ci, heuristic hi, variant vi);
// Jobs emits cells in this order.
func (m Matrix) Index(ci, hi, vi int) int {
	return (ci*len(m.heuristics())+hi)*len(m.variants()) + vi
}

// Jobs expands the matrix into a job slice ordered by Index.
func (m Matrix) Jobs() []Job {
	hs, vs := m.heuristics(), m.variants()
	jobs := make([]Job, 0, m.Size())
	for _, cl := range m.Clusters {
		for _, h := range hs {
			for _, v := range vs {
				opts := m.Base
				opts.Exec.Policy = v.Policy
				opts.Exec.Jitter = v.Jitter
				opts.Exec.Seed = v.Seed
				jobs = append(jobs, Job{
					App:       m.App,
					Cluster:   cl,
					Heuristic: h,
					Opts:      opts,
				})
			}
		}
	}
	return jobs
}

// PerformanceVector computes one cluster's vector through the batched sweep
// runner — the form a SeD answers a perf request with. Entry k-1 is the
// makespan of k scenarios planned by h; values are bit-identical to a serial
// plan-then-evaluate loop over k.
func PerformanceVector(ev Evaluator, app core.Application, cluster *platform.Cluster, h core.Heuristic, opts Options, workers int) ([]float64, error) {
	vecs, err := PerformanceVectors(ev, app, []*platform.Cluster{cluster}, h, opts, workers)
	if err != nil {
		return nil, err
	}
	return vecs[0], nil
}

// PerformanceVectors computes, for every cluster, the makespan of running
// 1..NS scenarios planned by h — the per-cluster vectors of the paper's
// Figure-9 protocol — in one batched sweep. Entry [c][k-1] is cluster c's
// makespan for k scenarios.
func PerformanceVectors(ev Evaluator, app core.Application, clusters []*platform.Cluster, h core.Heuristic, opts Options, workers int) ([][]float64, error) {
	return PerformanceVectorsContext(context.Background(), ev, app, clusters, h, opts, workers)
}

// PerformanceVectorsContext is PerformanceVectors under a context: the
// underlying sweep stops claiming jobs once ctx is done and the call returns
// ctx's error.
func PerformanceVectorsContext(ctx context.Context, ev Evaluator, app core.Application, clusters []*platform.Cluster, h core.Heuristic, opts Options, workers int) ([][]float64, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if len(clusters) == 0 {
		return nil, errors.New("engine: no cluster")
	}
	jobs := make([]Job, 0, len(clusters)*app.Scenarios)
	for _, cl := range clusters {
		for k := 1; k <= app.Scenarios; k++ {
			jobs = append(jobs, Job{
				App:       core.Application{Scenarios: k, Months: app.Months},
				Cluster:   cl,
				Heuristic: h,
				Opts:      opts,
			})
		}
	}
	results, err := SweepContext(ctx, ev, jobs, workers)
	if err != nil {
		return nil, err
	}
	vecs := make([][]float64, len(clusters))
	for ci, cl := range clusters {
		vec := make([]float64, app.Scenarios)
		for k := 1; k <= app.Scenarios; k++ {
			r := results[ci*app.Scenarios+k-1]
			if r.Err != nil {
				return nil, fmt.Errorf("engine: cluster %s at k=%d: %w", cl.Name, k, r.Err)
			}
			vec[k-1] = r.Result.Makespan
		}
		vecs[ci] = vec
	}
	return vecs, nil
}
