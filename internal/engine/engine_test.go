package engine_test

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"oagrid/internal/core"
	"oagrid/internal/engine"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
)

func testApp() core.Application { return core.Application{Scenarios: 6, Months: 12} }

// TestModelBackendMatchesCoreEstimate pins the analytical backend to the
// core-level estimate it wraps.
func TestModelBackendMatchesCoreEstimate(t *testing.T) {
	app := testApp()
	cl := platform.ReferenceCluster(40)
	for _, h := range core.All() {
		alloc, err := h.Plan(app, cl.Timing, cl.Procs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Model{}.Evaluate(app, cl, alloc, engine.Options{})
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		want, err := core.EstimateEvaluator().Evaluate(app, cl.Timing, cl.Procs, alloc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != want {
			t.Errorf("%s: model backend %g, core estimate %g", h.Name(), res.Makespan, want)
		}
		if res.Backend != "model" {
			t.Errorf("backend label %q", res.Backend)
		}
	}
}

// TestDESBackendMatchesExecRun pins the event-driven backend to exec.Run.
func TestDESBackendMatchesExecRun(t *testing.T) {
	app := testApp()
	cl := platform.ReferenceCluster(40)
	opts := engine.Options{Exec: exec.Options{Jitter: 0.1, Seed: 7}}
	for _, h := range core.All() {
		alloc, err := h.Plan(app, cl.Timing, cl.Procs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.DES{}.Evaluate(app, cl, alloc, opts)
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		want, err := exec.Run(app, cl.Timing, cl.Procs, alloc, opts.Exec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != want.Makespan || res.Utilization != want.Utilization ||
			res.MainsDone != want.MainsDone || res.BusyProcSeconds != want.BusyProcSeconds {
			t.Errorf("%s: DES backend %+v, exec.Run %+v", h.Name(), res, want)
		}
	}
}

// TestMemoizeMatchesOriginal checks the memoized timing is indistinguishable
// from its source over and outside the moldable range.
func TestMemoizeMatchesOriginal(t *testing.T) {
	for _, cl := range platform.FiveClusters() {
		orig := cl.Timing
		memo := engine.Memoize(orig)
		if memo == orig {
			t.Fatalf("%s: timing not memoized", cl.Name)
		}
		if engine.Memoize(memo) != memo {
			t.Fatalf("%s: double memoization not idempotent", cl.Name)
		}
		lo, hi := orig.Range()
		if mlo, mhi := memo.Range(); mlo != lo || mhi != hi {
			t.Fatalf("%s: range [%d,%d] != [%d,%d]", cl.Name, mlo, mhi, lo, hi)
		}
		for g := lo; g <= hi; g++ {
			want, err := orig.MainSeconds(g)
			if err != nil {
				t.Fatal(err)
			}
			got, err := memo.MainSeconds(g)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s g=%d: memo %g, original %g", cl.Name, g, got, want)
			}
		}
		if memo.PostSeconds() != orig.PostSeconds() {
			t.Fatalf("%s: post seconds differ", cl.Name)
		}
		if _, err := memo.MainSeconds(lo - 1); err == nil {
			t.Fatalf("%s: no error below the range", cl.Name)
		}
		if _, err := memo.MainSeconds(hi + 1); err == nil {
			t.Fatalf("%s: no error above the range", cl.Name)
		}
	}
}

// countingHeuristic counts Plan invocations to expose the plan cache.
type countingHeuristic struct {
	inner core.Heuristic
	calls *atomic.Int64
}

func (c countingHeuristic) Name() string { return c.inner.Name() }
func (c countingHeuristic) Plan(app core.Application, tm platform.Timing, procs int) (core.Allocation, error) {
	c.calls.Add(1)
	return c.inner.Plan(app, tm, procs)
}

// TestSweepPlanCache verifies that jobs sharing (cluster, app, heuristic)
// across variants plan exactly once.
func TestSweepPlanCache(t *testing.T) {
	app := testApp()
	var calls atomic.Int64
	h := countingHeuristic{inner: core.Knapsack{}, calls: &calls}
	clusters := []*platform.Cluster{
		platform.ReferenceCluster(30),
		platform.ReferenceCluster(45),
		platform.ReferenceCluster(60),
	}
	var jobs []engine.Job
	for _, cl := range clusters {
		for seed := uint64(0); seed < 4; seed++ {
			jobs = append(jobs, engine.Job{
				App:       app,
				Cluster:   cl,
				Heuristic: h,
				Opts:      engine.Options{Exec: exec.Options{Jitter: 0.05, Seed: seed}},
			})
		}
	}
	results := engine.Sweep(engine.DES{}, jobs, 4)
	if err := engine.FirstError(results); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != int64(len(clusters)) {
		t.Errorf("planned %d times for %d distinct clusters (%d jobs)", got, len(clusters), len(jobs))
	}
	// Same cluster, same heuristic: the allocation must be shared verbatim.
	for i := 1; i < 4; i++ {
		if len(results[i].Alloc.Groups) != len(results[0].Alloc.Groups) {
			t.Errorf("job %d got a different plan than job 0", i)
		}
	}
	// Different seeds over the same plan must still change the measurement.
	if results[0].Result.Makespan == results[1].Result.Makespan {
		t.Errorf("distinct jitter seeds produced identical makespans")
	}
}

// TestSweepErrorIsolation checks a failing job does not poison the batch.
func TestSweepErrorIsolation(t *testing.T) {
	app := testApp()
	jobs := []engine.Job{
		{App: app, Cluster: platform.ReferenceCluster(40), Heuristic: core.Knapsack{}},
		{App: app, Cluster: platform.ReferenceCluster(2), Heuristic: core.Knapsack{}}, // too small for any group
		{App: app}, // no cluster
		{App: app, Cluster: platform.ReferenceCluster(40)}, // no heuristic, no alloc
	}
	results := engine.Sweep(engine.DES{}, jobs, 2)
	if results[0].Err != nil {
		t.Fatalf("healthy job failed: %v", results[0].Err)
	}
	if results[0].Result.Makespan <= 0 {
		t.Fatal("healthy job produced no makespan")
	}
	for i := 1; i < len(jobs); i++ {
		if results[i].Err == nil {
			t.Errorf("job %d should have failed", i)
		}
	}
	if err := engine.FirstError(results); err == nil {
		t.Error("FirstError missed the failures")
	}
}

// TestSweepPrecomputedAlloc evaluates an explicit allocation without a
// heuristic.
func TestSweepPrecomputedAlloc(t *testing.T) {
	app := testApp()
	cl := platform.ReferenceCluster(40)
	alloc, err := (core.Basic{}).Plan(app, cl.Timing, cl.Procs)
	if err != nil {
		t.Fatal(err)
	}
	results := engine.Sweep(engine.DES{}, []engine.Job{{App: app, Cluster: cl, Alloc: alloc}}, 1)
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	want, err := exec.Run(app, cl.Timing, cl.Procs, alloc, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Result.Makespan != want.Makespan {
		t.Errorf("sweep %g, direct run %g", results[0].Result.Makespan, want.Makespan)
	}
}

// TestPerformanceVectorsMatchCore pins the batched vectors to the serial
// core.PerformanceVector implementation, for both backends.
func TestPerformanceVectorsMatchCore(t *testing.T) {
	app := testApp()
	clusters := []*platform.Cluster{}
	for _, cl := range platform.FiveClusters()[:3] {
		clusters = append(clusters, cl.WithProcs(33))
	}
	for _, ev := range engine.Backends() {
		vecs, err := engine.PerformanceVectors(ev, app, clusters, core.Knapsack{}, engine.Options{}, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(vecs) != len(clusters) {
			t.Fatalf("%s: %d vectors for %d clusters", ev.Name(), len(vecs), len(clusters))
		}
		for ci, cl := range clusters {
			want, err := core.PerformanceVector(app, cl.Timing, cl.Procs, core.Knapsack{},
				engine.CoreEvaluator(ev, engine.Options{}))
			if err != nil {
				t.Fatal(err)
			}
			for k := range want {
				if math.Float64bits(vecs[ci][k]) != math.Float64bits(want[k]) {
					t.Errorf("%s %s k=%d: batched %g, serial %g", ev.Name(), cl.Name, k+1, vecs[ci][k], want[k])
				}
			}
			// The paper's repartition assumes non-decreasing vectors.
			for k := 1; k < len(vecs[ci]); k++ {
				if vecs[ci][k] < vecs[ci][k-1] {
					t.Errorf("%s %s: vector decreases at k=%d", ev.Name(), cl.Name, k+1)
				}
			}
		}
	}
}

// TestMatrixInheritsBaseOptions guards against the default variant wiping
// the matrix-wide executor settings: without explicit variants, jobs must
// carry Base.Exec verbatim.
func TestMatrixInheritsBaseOptions(t *testing.T) {
	base := engine.Options{Exec: exec.Options{Policy: exec.RoundRobin, Jitter: 0.07, Seed: 42, NoIdleSteal: true}}
	m := engine.Matrix{
		App:        testApp(),
		Clusters:   []*platform.Cluster{platform.ReferenceCluster(30)},
		Heuristics: []core.Heuristic{core.Basic{}},
		Base:       base,
	}
	jobs := m.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("matrix expanded to %d jobs, want 1", len(jobs))
	}
	if !reflect.DeepEqual(jobs[0].Opts, base) {
		t.Errorf("job options %+v, want base %+v", jobs[0].Opts, base)
	}
	// With explicit variants, the variant's fields override but the rest of
	// the base (here NoIdleSteal) survives.
	m.Variants = []engine.Variant{{Policy: exec.MostAdvanced, Seed: 9}}
	jobs = m.Jobs()
	if got := jobs[0].Opts.Exec; got.Policy != exec.MostAdvanced || got.Seed != 9 || got.Jitter != 0 || !got.NoIdleSteal {
		t.Errorf("variant job options %+v", got)
	}
}

// TestByName resolves the in-process backends.
func TestByName(t *testing.T) {
	for _, name := range []string{"model", "des"} {
		ev, err := engine.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, ev.Name())
		}
	}
	if _, err := engine.ByName("teleport"); err == nil {
		t.Error("unknown backend resolved")
	}
}
