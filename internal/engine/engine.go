// Package engine unifies the repository's three makespan evaluators behind
// one pluggable interface and drives batches of evaluations through a
// deterministic parallel sweep runner.
//
// The paper's methodology is a three-stage pipeline: plan with an analytical
// model (internal/core, equations 1–5), validate the plan on an event-driven
// executor (internal/exec, the ground truth of every figure), and — as the
// paper's §7 "ongoing work" — verify the simulation by real execution
// (internal/realrun, the toy coupled climate model). Each stage answers the
// same question, "how long does this allocation take?", so the engine gives
// them one signature:
//
//	Evaluate(app, cluster, alloc, opts) (Result, error)
//
// Backends:
//
//   - Model — the analytical estimate; exact (paper equations) for uniform
//     groupings, throughput-based otherwise. Microseconds per call.
//   - DES — the discrete-event executor; bit-for-bit deterministic given
//     Options, including under task-duration jitter. Milliseconds per call.
//   - realrun.Backend — real execution of the toy coupled model (lives in
//     internal/realrun, which imports this package).
//
// The sweep runner (Sweep, Matrix, PerformanceVectors) fans a job matrix
// across a worker pool while keeping results bit-identical to a serial run:
// jobs carry their own deterministic seeds and results are collected by job
// index, never by arrival order.
//
//oalint:deterministic
package engine

import (
	"context"
	"errors"

	"oagrid/internal/core"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
	"oagrid/internal/trace"
)

// Options tunes an evaluation. The zero value reproduces the paper's setup:
// least-advanced dispatch, no jitter, no tracing.
type Options struct {
	// Exec configures the event-driven executor (dispatch policy, jitter
	// amplitude and seed, failure injection, tracing). The Model backend
	// ignores it; realrun.Backend honours the parts that exist physically.
	Exec exec.Options
}

// Result is the common run report of every backend. All durations are in
// seconds of the evaluated schedule (virtual time for Model and DES, wall
// clock for realrun). Fields a backend cannot measure are zero.
type Result struct {
	// Backend names the evaluator that produced the result.
	Backend string
	// Makespan is the completion time of the last task.
	Makespan float64
	// MainsDone is the completion time of the last main task.
	MainsDone float64
	// BusyProcSeconds accumulates processors × seconds of actual work.
	BusyProcSeconds float64
	// Utilization is BusyProcSeconds / (procs × Makespan).
	Utilization float64
	// RestartedMains counts main tasks lost to injected failures and re-run.
	RestartedMains int
	// Trace is non-nil when Options.Exec.RecordTrace was set and the backend
	// records spans.
	Trace *trace.Trace
}

// Evaluator is the pluggable backend interface: it measures (or models) the
// makespan of one allocation on one cluster.
type Evaluator interface {
	// Name identifies the backend in artifacts and benchmark reports.
	Name() string
	// Evaluate runs app under alloc on the cluster. Implementations must be
	// safe for concurrent use and deterministic for fixed inputs — Sweep
	// relies on both.
	Evaluate(app core.Application, cluster *platform.Cluster, alloc core.Allocation, opts Options) (Result, error)
}

// Model is the analytical backend: the paper's equations 1–5 for uniform
// allocations with a dedicated post pool, the steady-state throughput bound
// otherwise (the quantity the knapsack heuristic maximizes).
type Model struct{}

// Name implements Evaluator.
func (Model) Name() string { return "model" }

// Evaluate implements Evaluator.
func (Model) Evaluate(app core.Application, cluster *platform.Cluster, alloc core.Allocation, _ Options) (Result, error) {
	if cluster == nil {
		return Result{}, errors.New("engine: nil cluster")
	}
	ms, err := core.EstimateEvaluator().Evaluate(app, cluster.Timing, cluster.Procs, alloc)
	if err != nil {
		return Result{}, err
	}
	// The analytical model folds the post drain into the makespan and does
	// not separate the last main; report the makespan for both.
	return Result{Backend: "model", Makespan: ms, MainsDone: ms}, nil
}

// DES is the event-driven backend, the ground truth the model is validated
// against and the evaluator behind every figure of the paper.
type DES struct{}

// Name implements Evaluator.
func (DES) Name() string { return "des" }

// Evaluate implements Evaluator.
func (DES) Evaluate(app core.Application, cluster *platform.Cluster, alloc core.Allocation, opts Options) (Result, error) {
	if cluster == nil {
		return Result{}, errors.New("engine: nil cluster")
	}
	res, err := exec.Run(app, cluster.Timing, cluster.Procs, alloc, opts.Exec)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Backend:         "des",
		Makespan:        res.Makespan,
		MainsDone:       res.MainsDone,
		BusyProcSeconds: res.BusyProcSeconds,
		Utilization:     res.Utilization,
		RestartedMains:  res.RestartedMains,
		Trace:           res.Trace,
	}, nil
}

// EvaluateContext runs one evaluation under a context. A single evaluation
// is virtual-time and fast (micro- to milliseconds), so cancellation is
// cooperative at the job boundary: a done ctx short-circuits before the
// backend runs, and the result of a run that did start is returned whole —
// never a torn, partially-evaluated Result. This is the unit SweepContext
// cancels between.
func EvaluateContext(ctx context.Context, ev Evaluator, app core.Application, cluster *platform.Cluster, alloc core.Allocation, opts Options) (Result, error) {
	if ev == nil {
		ev = Default()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return ev.Evaluate(app, cluster, alloc, opts)
}

// Default returns the backend figures and the facade use unless told
// otherwise: the event-driven executor.
func Default() Evaluator { return DES{} }

// Backends returns the in-process backends in cost order (realrun.Backend
// needs a working directory and is constructed explicitly).
func Backends() []Evaluator { return []Evaluator{Model{}, DES{}} }

// ByName resolves "model" or "des".
func ByName(name string) (Evaluator, error) {
	for _, ev := range Backends() {
		if ev.Name() == name {
			return ev, nil
		}
	}
	return nil, errors.New("engine: unknown backend " + name)
}

// CoreEvaluator adapts a backend to the low-level core.Evaluator interface
// (timing + processor count instead of a cluster), which the DIET middleware
// demo and core.PerformanceVector consume.
func CoreEvaluator(ev Evaluator, opts Options) core.Evaluator {
	return core.EvaluatorFunc(func(app core.Application, t platform.Timing, procs int, alloc core.Allocation) (float64, error) {
		cl := &platform.Cluster{Name: "adhoc", Procs: procs, Timing: t}
		res, err := ev.Evaluate(app, cl, alloc, opts)
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	})
}
