package engine_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/engine"
	"oagrid/internal/figures"
)

// figure8Jobs builds the reduced Figure-8 job matrix the determinism and
// speedup checks run: 5 speed profiles × resource sweep × 4 heuristics.
func figure8Jobs(months, rstep int) []engine.Job {
	cfg := figures.Config{App: core.Application{Scenarios: 10, Months: months}, RStep: rstep}
	return figures.Figure8Matrix(cfg).Jobs()
}

// encodeResults flattens sweep results into bytes at float-bit granularity,
// the strictest possible equality for "bit-identical result slices".
func encodeResults(t *testing.T, results []engine.JobResult) []byte {
	t.Helper()
	var b bytes.Buffer
	for _, r := range results {
		if r.Err != nil {
			b.WriteString(r.Err.Error())
			b.WriteByte(0)
			continue
		}
		for _, v := range []float64{
			r.Result.Makespan,
			r.Result.MainsDone,
			r.Result.BusyProcSeconds,
			r.Result.Utilization,
		} {
			if err := binary.Write(&b, binary.LittleEndian, math.Float64bits(v)); err != nil {
				t.Fatal(err)
			}
		}
		if err := binary.Write(&b, binary.LittleEndian, int64(r.Result.RestartedMains)); err != nil {
			t.Fatal(err)
		}
		for _, g := range r.Alloc.Groups {
			if err := binary.Write(&b, binary.LittleEndian, int64(g)); err != nil {
				t.Fatal(err)
			}
		}
		if err := binary.Write(&b, binary.LittleEndian, int64(r.Alloc.PostProcs)); err != nil {
			t.Fatal(err)
		}
	}
	return b.Bytes()
}

// TestSweepDeterministicFigure8 is the engine's core guarantee: the Figure-8
// job matrix produces byte-identical result slices with 1 worker and with N
// workers, with and without duration jitter.
func TestSweepDeterministicFigure8(t *testing.T) {
	jobs := figure8Jobs(24, 10)
	// Jitter exercises the per-job seed path: determinism must come from the
	// job payload, never from execution order.
	for i := range jobs {
		jobs[i].Opts.Exec.Jitter = 0.1
		jobs[i].Opts.Exec.Seed = uint64(i)
	}
	for _, ev := range engine.Backends() {
		serial := engine.Sweep(ev, jobs, 1)
		if err := engine.FirstError(serial); err != nil {
			t.Fatalf("%s: %v", ev.Name(), err)
		}
		for _, workers := range []int{2, 4, 16} {
			parallel := engine.Sweep(ev, jobs, workers)
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("%s: results with %d workers differ structurally from serial", ev.Name(), workers)
			}
			if !bytes.Equal(encodeResults(t, serial), encodeResults(t, parallel)) {
				t.Fatalf("%s: results with %d workers not byte-identical to serial", ev.Name(), workers)
			}
		}
	}
}

// TestSweepRepeatable re-runs the same matrix twice with the same worker
// count: the engine must also be deterministic run-to-run, not only
// serial-to-parallel.
func TestSweepRepeatable(t *testing.T) {
	jobs := figure8Jobs(24, 20)
	a := engine.Sweep(engine.DES{}, jobs, 8)
	b := engine.Sweep(engine.DES{}, jobs, 8)
	if !bytes.Equal(encodeResults(t, a), encodeResults(t, b)) {
		t.Fatal("two identical parallel sweeps disagree")
	}
}

// TestSweepParallelSpeedup checks the acceptance bar: with 4+ workers on 4+
// CPUs the Figure-8 matrix must run at least 2× faster than with 1 worker.
// DES jobs are pure CPU with no shared mutable state, so the bar is
// comfortable on real hardware; the test skips on smaller machines where the
// wall clock cannot show parallelism.
func TestSweepParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	cpus := runtime.NumCPU()
	if cpus < 4 {
		t.Skipf("need 4+ CPUs for a meaningful wall-clock comparison, have %d", cpus)
	}
	workers := 4
	if cpus >= 8 {
		workers = 8
	}
	jobs := figure8Jobs(60, 5) // 420 DES jobs, ~hundreds of ms serial
	measure := func(w int) time.Duration {
		t0 := time.Now()
		results := engine.Sweep(engine.DES{}, jobs, w)
		d := time.Since(t0)
		if err := engine.FirstError(results); err != nil {
			t.Fatal(err)
		}
		return d
	}
	engine.Sweep(engine.DES{}, jobs[:workers], workers) // warm up the pool path
	best := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		serial := measure(1)
		parallel := measure(workers)
		speedup := serial.Seconds() / parallel.Seconds()
		if speedup > best {
			best = speedup
		}
		if best >= 2 {
			t.Logf("speedup %.2fx with %d workers (serial %v, parallel %v)", speedup, workers, serial, parallel)
			return
		}
	}
	t.Errorf("best speedup %.2fx with %d workers on %d CPUs, want >= 2x", best, workers, cpus)
}

// BenchmarkSweepSerial and BenchmarkSweepParallel track the evaluation hot
// path; compare with benchstat across PRs.
func BenchmarkSweepSerial(b *testing.B)   { benchmarkSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchmarkSweep(b, 0) }

func benchmarkSweep(b *testing.B, workers int) {
	jobs := figure8Jobs(36, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := engine.Sweep(engine.DES{}, jobs, workers)
		if err := engine.FirstError(results); err != nil {
			b.Fatal(err)
		}
	}
}
