package engine

import (
	"fmt"
	"sync"

	"oagrid/internal/core"
	"oagrid/internal/platform"
)

// MemoTiming is a platform.Timing with every MainSeconds value of the
// moldable range precomputed into a dense slice. The executor asks for task
// durations on every dispatch and the Amdahl model recomputes a division each
// time; a sweep over thousands of jobs asks millions of times, so Sweep
// memoizes each distinct cluster's timing once up front.
type MemoTiming struct {
	lo, hi int
	main   []float64
	post   float64
}

var _ platform.Timing = (*MemoTiming)(nil)

// Memoize returns a cached view of t. Timings that are already memoized come
// back unchanged; timings whose range cannot be tabulated (holes, empty
// range) fall back to the original model.
func Memoize(t platform.Timing) platform.Timing {
	if t == nil {
		return nil
	}
	if m, ok := t.(*MemoTiming); ok {
		return m
	}
	lo, hi := t.Range()
	if lo > hi {
		return t
	}
	m := &MemoTiming{lo: lo, hi: hi, post: t.PostSeconds(), main: make([]float64, hi-lo+1)}
	for g := lo; g <= hi; g++ {
		s, err := t.MainSeconds(g)
		if err != nil {
			return t
		}
		m.main[g-lo] = s
	}
	return m
}

// MainSeconds implements platform.Timing.
func (m *MemoTiming) MainSeconds(g int) (float64, error) {
	if g < m.lo || g > m.hi {
		return 0, fmt.Errorf("platform: group size %d outside moldable range [%d,%d]", g, m.lo, m.hi)
	}
	return m.main[g-m.lo], nil
}

// PostSeconds implements platform.Timing.
func (m *MemoTiming) PostSeconds() float64 { return m.post }

// Range implements platform.Timing.
func (m *MemoTiming) Range() (int, int) { return m.lo, m.hi }

// planKey identifies one planning problem inside a sweep. The cluster enters
// by pointer identity: jobs that should share a plan must share the *Cluster
// (Matrix and PerformanceVectors arrange this).
type planKey struct {
	cluster           *platform.Cluster
	scenarios, months int
	procs             int
	heuristic         string
}

// planEntry is a single-flight cache slot: the first goroutine to claim the
// key runs the heuristic, every other waits on the Once and reuses the plan.
type planEntry struct {
	once  sync.Once
	alloc core.Allocation
	err   error
}

// planCache memoizes heuristic plans for the lifetime of one Sweep call.
// Planning is pure — a (heuristic, app, cluster) triple always yields the
// same allocation — so a sweep matrix that revisits the triple across
// policies, jitter amplitudes and seeds plans it exactly once.
type planCache struct {
	mu sync.Mutex
	m  map[planKey]*planEntry
}

func newPlanCache() *planCache {
	return &planCache{m: make(map[planKey]*planEntry)}
}

func (c *planCache) plan(key planKey, h core.Heuristic, app core.Application, t platform.Timing) (core.Allocation, error) {
	c.mu.Lock()
	e := c.m[key]
	if e == nil {
		e = &planEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.alloc, e.err = h.Plan(app, t, key.procs) })
	return e.alloc, e.err
}
