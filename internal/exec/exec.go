// Package exec is the event-driven executor behind every measured makespan:
// it replays an allocation on a virtual cluster with the dispatch rule of the
// paper's §4.3 — "sorting the ready time of each group of processors and when
// a group becomes ready, the month of the less advanced simulation waiting is
// scheduled on this group" — and lets post tasks run on dedicated processors,
// on processors of transiently idle groups (the model's Rleft absorption),
// and after the main tasks.
//
// The executor is the ground truth the analytical model (internal/core) is
// validated against, and the evaluator used to build the performance vectors
// of the grid repartition.
//
//oalint:deterministic
package exec

import (
	"fmt"
	"math"
	"sort"

	"oagrid/internal/core"
	"oagrid/internal/platform"
	"oagrid/internal/sim"
	"oagrid/internal/trace"
)

// Policy selects which ready scenario an idle group serves next.
type Policy int

const (
	// LeastAdvanced is the paper's fairness rule: serve the scenario with the
	// fewest completed months (ties by scenario index).
	LeastAdvanced Policy = iota
	// RoundRobin serves ready scenarios in first-ready-first-served order.
	RoundRobin
	// MostAdvanced serves the scenario with the most completed months; it
	// finishes scenarios one after the other and exists for the fairness
	// ablation.
	MostAdvanced
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LeastAdvanced:
		return "least-advanced"
	case RoundRobin:
		return "round-robin"
	case MostAdvanced:
		return "most-advanced"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Options tunes a run.
type Options struct {
	// Policy is the scenario dispatch rule; the zero value is the paper's.
	Policy Policy
	// Jitter, when positive, perturbs every task duration by a deterministic
	// pseudo-random factor in [1−Jitter, 1+Jitter]. The perturbation of a
	// task depends only on (Seed, scenario, month, kind), so different
	// heuristics face identical noise — the ablation A4 relies on this.
	Jitter float64
	// Seed selects the jitter stream.
	Seed uint64
	// RecordTrace enables span recording (costs memory on large runs).
	RecordTrace bool
	// NoIdleSteal forbids idle group processors from absorbing post tasks,
	// leaving posts to dedicated processors and the end-of-run drain only.
	NoIdleSteal bool
	// Failures injects group outages: while a window is open the group's
	// processors are down, and a main task caught running is lost and
	// re-executed from the recovery point — the behaviour of a node crash
	// with restart-file recovery on the real grid. Post tasks are short and
	// assumed to be retried for free.
	Failures []Failure
	// StickyDispatch switches to the literal reading of the paper's rule
	// where a scenario finishing at the very instant a group frees competes
	// immediately. With unequal group sizes that reading is pathological:
	// the scenario that just left the slow group is the least advanced, so
	// the slow group re-takes it forever and its serial chain dominates the
	// makespan. The default therefore serves scenarios that were already
	// waiting before the group freed ("the less advanced simulation
	// *waiting*", §4.3) and falls back to same-instant arrivals only when no
	// earlier one exists. See the scheduling-pathology note in EXPERIMENTS.md.
	StickyDispatch bool
}

// Failure is one group outage window.
type Failure struct {
	// Group indexes the allocation's group list.
	Group int
	// At is the outage start in seconds; Duration its length.
	At, Duration float64
}

// Result summarizes a run.
type Result struct {
	// Makespan is the completion time of the last task.
	Makespan float64
	// MainsDone is the completion time of the last main task.
	MainsDone float64
	// BusyProcSeconds accumulates processors × seconds of actual work.
	BusyProcSeconds float64
	// Utilization is BusyProcSeconds / (procs × Makespan).
	Utilization float64
	// RestartedMains counts main tasks lost to injected failures and re-run.
	RestartedMains int
	// Trace is non-nil when Options.RecordTrace was set.
	Trace *trace.Trace
}

type scenarioState struct {
	monthsDone int
	readyAt    float64 // when the next main may start
	running    bool
	finished   bool
	readySeq   int // FIFO ticket for the round-robin policy
}

type group struct {
	id      int
	size    int
	mainDur float64   // unperturbed duration of a main task on this group
	freeAt  float64   // when the group finishes its current main
	busy    bool      // a main task is committed to the group
	procEnd []float64 // per-processor end of borrowed post work
	idleSeq int       // FIFO ticket: order in which groups went idle
}

// borrowEnd returns when the latest borrowed post on the group finishes.
func (g *group) borrowEnd() float64 {
	end := 0.0
	for _, e := range g.procEnd {
		if e > end {
			end = e
		}
	}
	return end
}

type postTask struct {
	scenario, month int
}

type engine struct {
	app     core.Application
	timing  platform.Timing
	procs   int
	opt     Options
	simr    *sim.Simulator
	groups  []*group
	postEnd []float64 // dedicated post processors: busy-until times
	scen    []scenarioState
	queue   []postTask // ready post tasks, FIFO from queueHead on
	// queueHead is the FIFO's consumed prefix: popping advances the index
	// instead of re-slicing, so the backing array is reused once the queue
	// drains rather than reallocated on every completion event.
	queueHead int
	tr        *trace.Trace

	mainsLeft  int // mains not yet dispatched
	postsLeft  int // posts not yet completed
	restarts   int // mains lost to injected failures
	idleTicket int
	readySeq   int
	busyAccum  float64
	mainsDone  float64
	postDur    float64

	idleScratch []*group // reused by idleGroups across dispatches
}

// Run executes the allocation and returns the measured makespan.
func Run(app core.Application, t platform.Timing, procs int, alloc core.Allocation, opt Options) (Result, error) {
	if err := alloc.Validate(app, t, procs); err != nil {
		return Result{}, err
	}
	e := &engine{
		app:       app,
		timing:    t,
		procs:     procs,
		opt:       opt,
		simr:      sim.New(),
		postEnd:   make([]float64, alloc.PostProcs),
		scen:      make([]scenarioState, app.Scenarios),
		mainsLeft: app.Tasks(),
		postsLeft: app.Tasks(),
		postDur:   t.PostSeconds(),
	}
	if opt.RecordTrace {
		e.tr = &trace.Trace{}
	}
	for i, size := range alloc.Groups {
		dur, err := t.MainSeconds(size)
		if err != nil {
			return Result{}, err
		}
		e.groups = append(e.groups, &group{
			id:      i,
			size:    size,
			mainDur: dur,
			procEnd: make([]float64, size),
		})
	}
	e.dispatch(0)
	end := e.simr.Run()
	if e.mainsLeft != 0 || e.postsLeft != 0 {
		return Result{}, fmt.Errorf("exec: deadlock with %d mains and %d posts outstanding", e.mainsLeft, e.postsLeft)
	}
	res := Result{
		Makespan:        end,
		MainsDone:       e.mainsDone,
		BusyProcSeconds: e.busyAccum,
		RestartedMains:  e.restarts,
		Trace:           e.tr,
	}
	if end > 0 {
		res.Utilization = e.busyAccum / (float64(procs) * end)
	}
	return res, nil
}

// mainDuration returns the (possibly jittered) duration of main(s,m) on g.
func (e *engine) mainDuration(g *group, s, m int) float64 {
	return g.mainDur * e.jitterFactor(s, m, 0)
}

// postDuration returns the (possibly jittered) duration of post(s,m).
func (e *engine) postDuration(s, m int) float64 {
	return e.postDur * e.jitterFactor(s, m, 1)
}

// jitterFactor derives the deterministic perturbation of one task.
func (e *engine) jitterFactor(s, m, kind int) float64 {
	if e.opt.Jitter <= 0 {
		return 1
	}
	x := e.opt.Seed ^ uint64(s)<<40 ^ uint64(m)<<8 ^ uint64(kind)
	// splitmix64 finalizer.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	u := float64(x>>11) / float64(1<<53) // uniform in [0,1)
	return 1 + e.opt.Jitter*(2*u-1)
}

// pickScenario returns the index of the ready scenario to serve, or -1.
// Scenarios that were already waiting before now are preferred over ones
// that became ready at this very instant (see Options.StickyDispatch).
func (e *engine) pickScenario(now float64) int {
	if !e.opt.StickyDispatch {
		if s := e.pickAmong(func(st *scenarioState) bool { return st.readyAt < now }); s >= 0 {
			return s
		}
	}
	return e.pickAmong(func(st *scenarioState) bool { return st.readyAt <= now })
}

// pickAmong applies the dispatch policy over the eligible ready scenarios.
func (e *engine) pickAmong(eligible func(*scenarioState) bool) int {
	best := -1
	for i := range e.scen {
		st := &e.scen[i]
		if st.finished || st.running || !eligible(st) {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := &e.scen[best]
		switch e.opt.Policy {
		case LeastAdvanced:
			if st.monthsDone < b.monthsDone {
				best = i
			}
		case MostAdvanced:
			if st.monthsDone > b.monthsDone {
				best = i
			}
		case RoundRobin:
			if st.readySeq < b.readySeq {
				best = i
			}
		}
	}
	return best
}

// idleGroups returns groups without a committed main, ordered by the time
// they went idle (the paper's "sorting the ready time of each group"). The
// returned slice is a scratch buffer reused across dispatches — it runs once
// per completion event, so under service traffic (thousands of concurrent
// executor runs behind the grid daemon) the per-event allocation shows up.
func (e *engine) idleGroups() []*group {
	idle := e.idleScratch[:0]
	for _, g := range e.groups {
		if !g.busy {
			idle = append(idle, g)
		}
	}
	e.idleScratch = idle
	sort.Slice(idle, func(i, j int) bool {
		if idle[i].idleSeq != idle[j].idleSeq {
			return idle[i].idleSeq < idle[j].idleSeq
		}
		return idle[i].id < idle[j].id
	})
	return idle
}

// dispatch assigns ready mains to idle groups, then ready posts to free
// processors. It is invoked after every completion event.
func (e *engine) dispatch(now float64) {
	// Phase 1: mains to idle groups.
	if e.mainsLeft > 0 {
		for _, g := range e.idleGroups() {
			s := e.pickScenario(now)
			if s < 0 {
				break
			}
			e.startMain(now, g, s)
		}
	}
	// Phase 2: posts to free processors.
	e.drainPosts(now)
	// Phase 3: if mains remain but nothing is running on some idle group,
	// wake up when the next scenario becomes ready.
	if e.mainsLeft > 0 {
		e.scheduleWakeup(now)
	}
}

// applyFailures pushes a task interval through the group's outage windows:
// a start inside a window waits for recovery; a window opening mid-task
// kills the attempt and re-runs it after recovery. It returns the final
// start and end plus the number of lost attempts.
func (e *engine) applyFailures(gid int, start, dur float64) (s, end float64, restarts int) {
	end = start + dur
	for changed := true; changed; {
		changed = false
		for _, f := range e.opt.Failures {
			if f.Group != gid || f.Duration <= 0 {
				continue
			}
			recover := f.At + f.Duration
			switch {
			case start >= f.At && start < recover:
				// Waiting out an outage loses no work.
				start = recover
				end = start + dur
				changed = true
			case f.At > start && f.At < end:
				// The attempt dies at f.At; re-run from recovery.
				restarts++
				start = recover
				end = start + dur
				changed = true
			}
		}
	}
	return start, end, restarts
}

// startMain commits scenario s to group g at the current time; the start is
// delayed past any borrowed post work still running on the group.
func (e *engine) startMain(now float64, g *group, s int) {
	st := &e.scen[s]
	start := now
	if be := g.borrowEnd(); be > start {
		start = be
	}
	dur := e.mainDuration(g, s, st.monthsDone)
	if len(e.opt.Failures) > 0 {
		var restarts int
		start, _, restarts = e.applyFailures(g.id, start, dur)
		e.restarts += restarts
	}
	end := start + dur
	month := st.monthsDone
	st.running = true
	g.busy = true
	g.freeAt = end
	e.mainsLeft--
	e.busyAccum += dur * float64(g.size)
	if e.tr != nil {
		e.tr.Add(trace.Span{
			Resource: fmt.Sprintf("g%d", g.id),
			Kind:     trace.Main,
			Scenario: s,
			Month:    month,
			Start:    start,
			End:      end,
		})
	}
	_, err := e.simr.At(end, func(t2 float64) { e.finishMain(t2, g, s, month) })
	if err != nil {
		panic(err) // end >= now by construction
	}
}

// finishMain handles a main-task completion: advances the scenario, enqueues
// the post task, releases the group.
func (e *engine) finishMain(now float64, g *group, s, month int) {
	st := &e.scen[s]
	st.running = false
	st.monthsDone++
	st.readyAt = now
	e.readySeq++
	st.readySeq = e.readySeq
	if st.monthsDone >= e.app.Months {
		st.finished = true
	}
	g.busy = false
	e.idleTicket++
	g.idleSeq = e.idleTicket
	if now > e.mainsDone {
		e.mainsDone = now
	}
	e.queue = append(e.queue, postTask{scenario: s, month: month})
	e.dispatch(now)
}

// drainPosts starts as many queued posts as free processors allow: dedicated
// post processors first, then individual processors of idle groups.
func (e *engine) drainPosts(now float64) {
	if e.postDur <= 0 {
		// Zero-length posts complete immediately.
		e.postsLeft -= len(e.queue) - e.queueHead
		e.queue = e.queue[:0]
		e.queueHead = 0
		return
	}
	for e.queueHead < len(e.queue) {
		res, procEnd := e.freePostSlot(now)
		if procEnd == nil {
			return
		}
		pt := e.queue[e.queueHead]
		e.queueHead++
		if e.queueHead == len(e.queue) {
			e.queue = e.queue[:0]
			e.queueHead = 0
		}
		dur := e.postDuration(pt.scenario, pt.month)
		end := now + dur
		*procEnd = end
		e.busyAccum += dur
		if e.tr != nil {
			e.tr.Add(trace.Span{
				Resource: res,
				Kind:     trace.Post,
				Scenario: pt.scenario,
				Month:    pt.month,
				Start:    now,
				End:      end,
			})
		}
		if _, err := e.simr.At(end, func(t2 float64) {
			e.postsLeft--
			e.dispatch(t2)
		}); err != nil {
			panic(err)
		}
	}
}

// freePostSlot finds a processor free at time now for a post task. It
// returns the resource name and a pointer to its busy-until slot, or nil.
func (e *engine) freePostSlot(now float64) (string, *float64) {
	for i := range e.postEnd {
		if e.postEnd[i] <= now {
			return fmt.Sprintf("p%d", i), &e.postEnd[i]
		}
	}
	if e.opt.NoIdleSteal && e.mainsLeft > 0 {
		// Strict mode: groups keep their processors for main tasks until no
		// main remains to dispatch; the end-of-run drain still uses them.
		return "", nil
	}
	for _, g := range e.groups {
		if g.busy {
			continue
		}
		// A group that could immediately serve a waiting main must not steal
		// posts; dispatch() runs mains first, so reaching here means no main
		// is ready for it right now.
		for i := range g.procEnd {
			if g.procEnd[i] <= now && g.freeAt <= now {
				return fmt.Sprintf("g%d.%d", g.id, i), &g.procEnd[i]
			}
		}
	}
	return "", nil
}

// scheduleWakeup arms an event at the earliest future scenario readiness so
// idle groups re-attempt dispatch. Completions normally drive dispatch; the
// wake-up covers the corner where a group sits idle while every unfinished
// scenario is mid-flight.
func (e *engine) scheduleWakeup(now float64) {
	idle := false
	for _, g := range e.groups {
		if !g.busy {
			idle = true
			break
		}
	}
	if !idle {
		return
	}
	next := math.Inf(1)
	for i := range e.scen {
		st := &e.scen[i]
		if st.finished || st.running {
			continue
		}
		if st.readyAt > now && st.readyAt < next {
			next = st.readyAt
		}
	}
	if !math.IsInf(next, 1) {
		if _, err := e.simr.At(next, e.dispatch); err != nil {
			panic(err)
		}
	}
}

// Evaluator adapts the executor to the core.Evaluator interface used by the
// performance vectors and the figure harness.
func Evaluator(opt Options) core.Evaluator {
	return core.EvaluatorFunc(func(app core.Application, t platform.Timing, procs int, alloc core.Allocation) (float64, error) {
		res, err := Run(app, t, procs, alloc, opt)
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	})
}
