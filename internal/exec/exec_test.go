package exec

import (
	"math"
	"testing"
	"testing/quick"

	"oagrid/internal/core"
	"oagrid/internal/platform"
)

func mustPlan(t *testing.T, h core.Heuristic, app core.Application, tm platform.Timing, procs int) core.Allocation {
	t.Helper()
	al, err := h.Plan(app, tm, procs)
	if err != nil {
		t.Fatalf("%s plan: %v", h.Name(), err)
	}
	return al
}

func TestRunSmallTraceValid(t *testing.T) {
	app := core.Application{Scenarios: 3, Months: 4}
	ref := platform.ReferenceTiming()
	for _, h := range core.All() {
		al := mustPlan(t, h, app, ref, 26)
		res, err := Run(app, ref, 26, al, Options{RecordTrace: true})
		if err != nil {
			t.Fatalf("%s: run: %v", h.Name(), err)
		}
		if res.Trace == nil {
			t.Fatalf("%s: no trace recorded", h.Name())
		}
		if err := res.Trace.Validate(app.Scenarios, app.Months); err != nil {
			t.Fatalf("%s: invalid trace: %v", h.Name(), err)
		}
		if got := res.Trace.Makespan(); math.Abs(got-res.Makespan) > 1e-9 {
			t.Fatalf("%s: trace makespan %g != result makespan %g", h.Name(), got, res.Makespan)
		}
		if res.Utilization <= 0 || res.Utilization > 1+1e-9 {
			t.Fatalf("%s: utilization %g out of range", h.Name(), res.Utilization)
		}
	}
}

// TestWaveBound: for a uniform allocation the main phase must last exactly
// ceil(nbtasks/nbmax) waves of TG (the paper's equation 1), because the
// least-advanced policy never strands a runnable month.
func TestWaveBound(t *testing.T) {
	ref := platform.ReferenceTiming()
	cases := []struct {
		ns, nm, procs int
	}{
		{10, 12, 53},
		{10, 7, 53}, // nbused != 0
		{3, 5, 22},
		{7, 3, 44},
		{2, 9, 11},
	}
	for _, tc := range cases {
		app := core.Application{Scenarios: tc.ns, Months: tc.nm}
		al := mustPlan(t, core.Basic{}, app, ref, tc.procs)
		g := al.Groups[0]
		tg, err := ref.MainSeconds(g)
		if err != nil {
			t.Fatal(err)
		}
		nbmax := len(al.Groups)
		waves := (app.Tasks() + nbmax - 1) / nbmax
		want := float64(waves) * tg
		res, err := Run(app, ref, tc.procs, al, Options{})
		if err != nil {
			t.Fatalf("run %+v: %v", tc, err)
		}
		if math.Abs(res.MainsDone-want) > 1e-6 {
			t.Errorf("case %+v: mains finished at %g, want %d waves × %g = %g",
				tc, res.MainsDone, waves, tg, want)
		}
	}
}

// TestModelMatchesSimulation validates the analytical model (equations 1–5)
// against the event-driven executor over a sweep of cluster sizes: the main
// phase is exact and the post accounting agrees within a few post-task
// lengths, i.e. well under one percent of the makespan for realistic
// parameters.
func TestModelMatchesSimulation(t *testing.T) {
	ref := platform.ReferenceTiming()
	app := core.Application{Scenarios: 10, Months: 36}
	for procs := 11; procs <= 130; procs++ {
		al := mustPlan(t, core.Basic{}, app, ref, procs)
		model, err := core.UniformEstimate(app, ref, procs, al.Groups[0])
		if err != nil {
			t.Fatalf("R=%d: estimate: %v", procs, err)
		}
		res, err := Run(app, ref, procs, al, Options{})
		if err != nil {
			t.Fatalf("R=%d: run: %v", procs, err)
		}
		diff := math.Abs(model - res.Makespan)
		// The executor drains posts continuously while the model quantizes
		// them per wave; allow a few post-task lengths of slack.
		if slack := 4 * ref.PostSeconds(); diff > slack {
			t.Errorf("R=%d G=%d: model %.1f vs simulated %.1f (diff %.1f > %.1f)",
				procs, al.Groups[0], model, res.Makespan, diff, slack)
		}
		if rel := diff / res.Makespan; rel > 0.01 {
			t.Errorf("R=%d: relative model error %.4f exceeds 1%%", procs, rel)
		}
	}
}

// TestSimulationNeverBeatsThroughputBound: the executor can never finish the
// mains faster than the aggregate group throughput allows.
func TestSimulationNeverBeatsThroughputBound(t *testing.T) {
	ref := platform.ReferenceTiming()
	f := func(rRaw, nsRaw, nmRaw uint8) bool {
		procs := 11 + int(rRaw)%120
		app := core.Application{Scenarios: 1 + int(nsRaw)%10, Months: 1 + int(nmRaw)%20}
		for _, h := range core.All() {
			al, err := h.Plan(app, ref, procs)
			if err != nil {
				return false
			}
			res, err := Run(app, ref, procs, al, Options{})
			if err != nil {
				return false
			}
			rate := 0.0
			for _, g := range al.Groups {
				tg, err := ref.MainSeconds(g)
				if err != nil {
					return false
				}
				rate += 1 / tg
			}
			if res.MainsDone < float64(app.Tasks())/rate-1e-6 {
				return false
			}
			if res.Makespan < res.MainsDone {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestJitterDeterminism(t *testing.T) {
	app := core.Application{Scenarios: 4, Months: 8}
	ref := platform.ReferenceTiming()
	al := mustPlan(t, core.Knapsack{}, app, ref, 30)
	a, err := Run(app, ref, 30, al, Options{Jitter: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(app, ref, 30, al, Options{Jitter: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("same seed produced different makespans: %g vs %g", a.Makespan, b.Makespan)
	}
	c, err := Run(app, ref, 30, al, Options{Jitter: 0.1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan == c.Makespan {
		t.Fatalf("different seeds produced identical makespans %g", a.Makespan)
	}
	clean, err := Run(app, ref, 30, al, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(a.Makespan-clean.Makespan) / clean.Makespan; rel > 0.15 {
		t.Fatalf("10%% jitter moved makespan by %.1f%%", rel*100)
	}
}

func TestPoliciesAllComplete(t *testing.T) {
	app := core.Application{Scenarios: 5, Months: 6}
	ref := platform.ReferenceTiming()
	al := mustPlan(t, core.Basic{}, app, ref, 33)
	for _, p := range []Policy{LeastAdvanced, RoundRobin, MostAdvanced} {
		res, err := Run(app, ref, 33, al, Options{Policy: p, RecordTrace: true})
		if err != nil {
			t.Fatalf("policy %v: %v", p, err)
		}
		if err := res.Trace.Validate(app.Scenarios, app.Months); err != nil {
			t.Fatalf("policy %v: invalid trace: %v", p, err)
		}
	}
}

// TestNoIdleStealSlower: forbidding idle groups from absorbing post tasks can
// only lengthen (or preserve) the makespan.
func TestNoIdleStealSlower(t *testing.T) {
	app := core.Application{Scenarios: 10, Months: 7} // nbused != 0 exercises Rleft
	ref := platform.ReferenceTiming()
	al := mustPlan(t, core.Basic{}, app, ref, 53)
	def, err := Run(app, ref, 53, al, Options{})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Run(app, ref, 53, al, Options{NoIdleSteal: true})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Makespan < def.Makespan-1e-9 {
		t.Fatalf("NoIdleSteal makespan %g beat default %g", strict.Makespan, def.Makespan)
	}
}

func TestRunRejectsInvalidAllocation(t *testing.T) {
	app := core.Application{Scenarios: 2, Months: 2}
	ref := platform.ReferenceTiming()
	if _, err := Run(app, ref, 10, core.Allocation{Groups: []int{11, 11}}, Options{}); err == nil {
		t.Error("expected error for oversubscribed allocation")
	}
	if _, err := Run(app, ref, 10, core.Allocation{}, Options{}); err == nil {
		t.Error("expected error for empty allocation")
	}
}

// TestEvaluatorMatchesRun checks the core.Evaluator adapter.
func TestEvaluatorMatchesRun(t *testing.T) {
	app := core.Application{Scenarios: 3, Months: 5}
	ref := platform.ReferenceTiming()
	al := mustPlan(t, core.Redistribute{}, app, ref, 40)
	direct, err := Run(app, ref, 40, al, Options{})
	if err != nil {
		t.Fatal(err)
	}
	viaEval, err := Evaluator(Options{}).Evaluate(app, ref, 40, al)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Makespan != viaEval {
		t.Fatalf("evaluator %g != direct run %g", viaEval, direct.Makespan)
	}
}

// TestFairnessMetric: under the least-advanced policy the spread of scenario
// completion times is no larger than under most-advanced, which finishes
// scenarios sequentially.
func TestFairnessMetric(t *testing.T) {
	app := core.Application{Scenarios: 6, Months: 10}
	ref := platform.ReferenceTiming()
	al := mustPlan(t, core.Basic{}, app, ref, 26)
	spread := func(p Policy) float64 {
		res, err := Run(app, ref, 26, al, Options{Policy: p, RecordTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		last := make([]float64, app.Scenarios)
		for _, s := range res.Trace.Spans {
			if s.End > last[s.Scenario] {
				last[s.Scenario] = s.End
			}
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range last {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return hi - lo
	}
	if fair, unfair := spread(LeastAdvanced), spread(MostAdvanced); fair > unfair+1e-9 {
		t.Fatalf("least-advanced spread %g exceeds most-advanced spread %g", fair, unfair)
	}
}

// TestFailureInjection verifies the outage semantics: an outage before any
// work delays the whole schedule without losing work; an outage cutting a
// running main re-runs it; and the makespan never improves under failures.
func TestFailureInjection(t *testing.T) {
	app := core.Application{Scenarios: 3, Months: 4}
	ref := platform.ReferenceTiming()
	al := mustPlan(t, core.Basic{}, app, ref, 22)
	clean, err := Run(app, ref, 22, al, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Outage opening mid-task: the caught main re-runs.
	midOutage, err := Run(app, ref, 22, al, Options{
		RecordTrace: true,
		Failures:    []Failure{{Group: 0, At: 100, Duration: 500}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if midOutage.RestartedMains == 0 {
		t.Fatal("mid-task outage lost no main")
	}
	if midOutage.Makespan <= clean.Makespan {
		t.Fatalf("failures shortened the makespan: %g vs %g", midOutage.Makespan, clean.Makespan)
	}
	if err := midOutage.Trace.Validate(app.Scenarios, app.Months); err != nil {
		t.Fatalf("trace invalid under failures: %v", err)
	}

	// A zero-duration window is a no-op.
	noop, err := Run(app, ref, 22, al, Options{Failures: []Failure{{Group: 0, At: 100, Duration: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if noop.Makespan != clean.Makespan {
		t.Fatalf("zero-length outage changed the makespan: %g vs %g", noop.Makespan, clean.Makespan)
	}

	// An outage on every group at t=0 shifts the whole schedule without
	// losing work.
	var fs []Failure
	for i := range al.Groups {
		fs = append(fs, Failure{Group: i, At: 0, Duration: 1000})
	}
	shifted, err := Run(app, ref, 22, al, Options{Failures: fs})
	if err != nil {
		t.Fatal(err)
	}
	if shifted.RestartedMains != 0 {
		t.Fatalf("boot-time outage restarted %d mains", shifted.RestartedMains)
	}
	if math.Abs(shifted.Makespan-(clean.Makespan+1000)) > 1e-6 {
		t.Fatalf("boot-time outage shifted makespan to %g, want %g", shifted.Makespan, clean.Makespan+1000)
	}
}

// TestFailureEdgeCases: windows on unknown groups are ignored, overlapping
// windows compose, and chained outages push a task repeatedly.
func TestFailureEdgeCases(t *testing.T) {
	app := core.Application{Scenarios: 2, Months: 2}
	ref := platform.ReferenceTiming()
	al := mustPlan(t, core.Basic{}, app, ref, 11)
	clean, err := Run(app, ref, 11, al, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Failure on a group index that does not exist: no effect.
	ghost, err := Run(app, ref, 11, al, Options{Failures: []Failure{{Group: 99, At: 10, Duration: 1e6}}})
	if err != nil {
		t.Fatal(err)
	}
	if ghost.Makespan != clean.Makespan {
		t.Fatalf("ghost failure changed makespan: %g vs %g", ghost.Makespan, clean.Makespan)
	}
	// Two chained outages both catch re-runs of the first month.
	tg, err := ref.MainSeconds(al.Groups[0])
	if err != nil {
		t.Fatal(err)
	}
	chained, err := Run(app, ref, 11, al, Options{Failures: []Failure{
		{Group: 0, At: tg / 2, Duration: 100},
		{Group: 0, At: tg/2 + 100 + tg/2, Duration: 100},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if chained.RestartedMains < 2 {
		t.Fatalf("chained outages restarted only %d mains", chained.RestartedMains)
	}
	if chained.Makespan <= clean.Makespan {
		t.Fatal("chained outages did not lengthen the run")
	}
}

// TestStickyDispatchPathology pins the finding of EXPERIMENTS.md: under the
// literal dispatch rule a heterogeneous allocation degrades because one
// scenario sticks to the slow group.
func TestStickyDispatchPathology(t *testing.T) {
	app := core.Application{Scenarios: 10, Months: 60}
	ref := platform.ReferenceTiming()
	al := mustPlan(t, core.Knapsack{}, app, ref, 53) // 8×6 + 1×5: one slow group
	def, err := Run(app, ref, 53, al, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sticky, err := Run(app, ref, 53, al, Options{StickyDispatch: true})
	if err != nil {
		t.Fatal(err)
	}
	if rel := (sticky.Makespan - def.Makespan) / def.Makespan; rel < 0.02 {
		t.Fatalf("sticky dispatch only %.2f%% worse; the pathology should be visible", rel*100)
	}
}
