package trip

import (
	"math"
	"testing"

	"oagrid/internal/climate/field"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(field.Grid{NLat: 24, NLon: 48})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFlowNetworkAcyclic(t *testing.T) {
	m := newModel(t)
	if m.LandCells() == 0 {
		t.Fatal("no land cells routed")
	}
	// Every land cell's flow target is either ocean, off-grid (-1) or
	// another land cell; the topological order built in New proves
	// acyclicity, so reaching here is the assertion.
	mask := field.LandMask(m.grid)
	land := 0
	for _, v := range mask.Data {
		if v > 0.5 {
			land++
		}
	}
	if m.LandCells() != land {
		t.Fatalf("routed %d of %d land cells", m.LandCells(), land)
	}
}

// TestWaterConservation is the core invariant: inflow = discharge + Δstorage
// to round-off, whatever the forcing.
func TestWaterConservation(t *testing.T) {
	m := newModel(t)
	runoff := field.MustNew(m.CouplingGrid(), "runoff", "kg/m2")
	for i := range runoff.Data {
		runoff.Data[i] = float64(i%7) * 0.3
	}
	for day := 0; day < 40; day++ {
		if err := m.Import("runoff", runoff); err != nil {
			t.Fatal(err)
		}
		if err := m.Advance(1); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Export("discharge"); err != nil {
			t.Fatal(err)
		}
	}
	in, out, stored := m.Balance()
	if in <= 0 {
		t.Fatal("no water entered the network")
	}
	if rel := math.Abs(in-out-stored) / in; rel > 1e-9 {
		t.Fatalf("water imbalance: in=%g out=%g stored=%g (rel %g)", in, out, stored, rel)
	}
	if out <= 0 {
		t.Fatal("no discharge reached the ocean")
	}
}

func TestDischargeLandsOnOceanCells(t *testing.T) {
	m := newModel(t)
	runoff := field.MustNew(m.CouplingGrid(), "runoff", "kg/m2")
	runoff.Fill(1)
	if err := m.Import("runoff", runoff); err != nil {
		t.Fatal(err)
	}
	if err := m.Advance(5); err != nil {
		t.Fatal(err)
	}
	disch, err := m.Export("discharge")
	if err != nil {
		t.Fatal(err)
	}
	mask := field.LandMask(m.CouplingGrid())
	for idx, v := range disch.Data {
		if v > 0 && mask.Data[idx] > 0.5 {
			t.Fatalf("discharge on land cell %d", idx)
		}
	}
	if disch.Sum() <= 0 {
		t.Fatal("no discharge produced")
	}
	// Export resets the accumulator.
	second, err := m.Export("discharge")
	if err != nil {
		t.Fatal(err)
	}
	if second.Sum() != 0 {
		t.Fatal("discharge accumulator did not reset")
	}
}

func TestStorageDrainsWithoutForcing(t *testing.T) {
	m := newModel(t)
	runoff := field.MustNew(m.CouplingGrid(), "runoff", "kg/m2")
	runoff.Fill(2)
	if err := m.Import("runoff", runoff); err != nil {
		t.Fatal(err)
	}
	if err := m.Advance(3); err != nil {
		t.Fatal(err)
	}
	runoff.Fill(0)
	if err := m.Import("runoff", runoff); err != nil {
		t.Fatal(err)
	}
	_, _, before := m.Balance()
	if err := m.Advance(30); err != nil {
		t.Fatal(err)
	}
	_, _, after := m.Balance()
	if after >= before {
		t.Fatalf("storage did not drain: %g → %g", before, after)
	}
}

func TestCouplerContract(t *testing.T) {
	m := newModel(t)
	if m.Name() != "trip" {
		t.Fatalf("Name = %q", m.Name())
	}
	if len(m.Exports()) != 1 || m.Exports()[0] != "discharge" {
		t.Fatalf("Exports = %v", m.Exports())
	}
	if len(m.Imports()) != 1 || m.Imports()[0] != "runoff" {
		t.Fatalf("Imports = %v", m.Imports())
	}
	if _, err := m.Export("nope"); err == nil {
		t.Fatal("unknown export accepted")
	}
	f := field.MustNew(m.CouplingGrid(), "x", "1")
	if err := m.Import("nope", f); err == nil {
		t.Fatal("unknown import accepted")
	}
	if err := m.Advance(0); err == nil {
		t.Fatal("zero steps accepted")
	}
	if _, err := New(field.Grid{NLat: 0, NLon: 0}); err == nil {
		t.Fatal("degenerate grid accepted")
	}
}

func TestNegativeRunoffClamped(t *testing.T) {
	m := newModel(t)
	runoff := field.MustNew(m.CouplingGrid(), "runoff", "kg/m2")
	runoff.Fill(-5)
	if err := m.Import("runoff", runoff); err != nil {
		t.Fatal(err)
	}
	if err := m.Advance(2); err != nil {
		t.Fatal(err)
	}
	in, _, stored := m.Balance()
	if in != 0 || stored < 0 {
		t.Fatalf("negative runoff leaked: in=%g stored=%g", in, stored)
	}
}
