// Package trip is the toy stand-in for the TRIP (Total Runoff Integrating
// Pathways) global river routing model: a sequential linear-reservoir scheme
// on steepest-descent (D8) flow directions derived from the synthetic
// topography, delivering continental runoff to ocean river mouths. Water is
// conserved exactly: inflow = Δstorage + discharge, which the tests check to
// round-off.
package trip

import (
	"fmt"

	"oagrid/internal/climate/field"
)

// releaseRate is the fraction of each cell's storage released downstream per
// routing step (a one-day linear reservoir).
const releaseRate = 0.25

// Model is the routing state; it implements the coupler component contract
// with import "runoff" and export "discharge".
type Model struct {
	grid field.Grid
	mask *field.Field

	// flowTo[idx] is the flat index the cell drains to; -1 marks ocean cells
	// (sinks) and land cells draining directly off their continent.
	flowTo []int
	// order lists land cells upstream-first so one sweep routes all water.
	order []int

	Storage *field.Field // water stored in each land cell

	runoff *field.Field // imported runoff accumulation
	disch  *field.Field // exported discharge at ocean mouth cells

	totalIn, totalOut float64
	steps             int
}

// New derives flow directions from the synthetic elevation model.
func New(g field.Grid) (*Model, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		grid:    g,
		mask:    field.LandMask(g),
		Storage: field.MustNew(g, "rivsto", "kg/m2"),
		runoff:  field.MustNew(g, "runoff", "kg/m2"),
		disch:   field.MustNew(g, "discharge", "kg/m2"),
	}
	elev := field.Elevation(g, m.mask)
	if err := m.deriveFlow(elev); err != nil {
		return nil, err
	}
	return m, nil
}

// deriveFlow computes D8 steepest-descent directions and a topological
// ordering of the land cells; a cycle is a hard error (the synthetic
// elevation is plateau-free, so none can occur).
func (m *Model) deriveFlow(elev *field.Field) error {
	g := m.grid
	n := g.Cells()
	m.flowTo = make([]int, n)
	for idx := range m.flowTo {
		m.flowTo[idx] = -1
	}
	for i := 0; i < g.NLat; i++ {
		for j := 0; j < g.NLon; j++ {
			idx := i*g.NLon + j
			if m.mask.Data[idx] < 0.5 {
				continue // ocean: sink
			}
			bestDrop, bestIdx := 0.0, -1
			h := elev.At(i, j)
			for di := -1; di <= 1; di++ {
				for dj := -1; dj <= 1; dj++ {
					if di == 0 && dj == 0 {
						continue
					}
					ni := i + di
					if ni < 0 || ni >= g.NLat {
						continue
					}
					nj := ((j+dj)%g.NLon + g.NLon) % g.NLon
					nIdx := ni*g.NLon + nj
					var nh float64
					if m.mask.Data[nIdx] < 0.5 {
						nh = 0 // sea level: coastal cells drain to the ocean
					} else {
						nh = elev.At(ni, nj)
					}
					if drop := h - nh; drop > bestDrop {
						bestDrop, bestIdx = drop, nIdx
					}
				}
			}
			m.flowTo[idx] = bestIdx
		}
	}
	// Kahn's algorithm over land cells yields an upstream-first order and
	// detects cycles.
	indeg := make([]int, n)
	for idx, to := range m.flowTo {
		if m.mask.Data[idx] > 0.5 && to >= 0 && m.mask.Data[to] > 0.5 {
			indeg[to]++
		}
	}
	queue := make([]int, 0, n)
	for idx := range m.flowTo {
		if m.mask.Data[idx] > 0.5 && indeg[idx] == 0 {
			queue = append(queue, idx)
		}
	}
	for len(queue) > 0 {
		idx := queue[0]
		queue = queue[1:]
		m.order = append(m.order, idx)
		if to := m.flowTo[idx]; to >= 0 && m.mask.Data[to] > 0.5 {
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	landCells := 0
	for idx := range m.flowTo {
		if m.mask.Data[idx] > 0.5 {
			landCells++
		}
	}
	if len(m.order) != landCells {
		return fmt.Errorf("trip: flow network has a cycle (%d of %d land cells ordered)", len(m.order), landCells)
	}
	return nil
}

// Steps returns the number of routing steps taken.
func (m *Model) Steps() int { return m.steps }

// LandCells returns the number of routed land cells.
func (m *Model) LandCells() int { return len(m.order) }

// Name implements the coupler component contract.
func (m *Model) Name() string { return "trip" }

// Exports lists the coupling fields this component produces.
func (m *Model) Exports() []string { return []string{"discharge"} }

// Imports lists the coupling fields this component consumes.
func (m *Model) Imports() []string { return []string{"runoff"} }

// Export implements the coupler contract; the discharge accumulator resets
// on read.
func (m *Model) Export(name string) (*field.Field, error) {
	if name != "discharge" {
		return nil, fmt.Errorf("trip: unknown export %q", name)
	}
	out := m.disch.Copy()
	m.disch.Fill(0)
	return out, nil
}

// Import implements the coupler contract.
func (m *Model) Import(name string, f *field.Field) error {
	if name != "runoff" {
		return fmt.Errorf("trip: unknown import %q", name)
	}
	return m.runoff.CopyInto(f)
}

// Advance routes n steps: each step injects 1/n of the imported runoff,
// releases a fraction of every reservoir downstream in upstream-first order,
// and accumulates what reaches the ocean into the discharge export.
func (m *Model) Advance(n int) error {
	if n <= 0 {
		return fmt.Errorf("trip: non-positive step count %d", n)
	}
	per := 1.0 / float64(n)
	for s := 0; s < n; s++ {
		for _, idx := range m.order {
			in := m.runoff.Data[idx] * per
			if in < 0 {
				in = 0
			}
			m.totalIn += in
			m.Storage.Data[idx] += in
			out := releaseRate * m.Storage.Data[idx]
			m.Storage.Data[idx] -= out
			to := m.flowTo[idx]
			switch {
			case to < 0:
				// Endorheic edge cell: evaporates (counts as discharge for
				// the balance).
				m.disch.Data[idx] += 0
				m.totalOut += out
			case m.mask.Data[to] < 0.5:
				// River mouth: deliver to the ocean cell.
				m.disch.Data[to] += out
				m.totalOut += out
			default:
				m.Storage.Data[to] += out
			}
		}
		m.steps++
	}
	return nil
}

// Balance returns total inflow, total outflow and current storage; the
// conservation invariant is in = out + storage.
func (m *Model) Balance() (in, out, stored float64) {
	for _, idx := range m.order {
		stored += m.Storage.Data[idx]
	}
	return m.totalIn, m.totalOut, stored
}

// CouplingGrid implements oasis.GridProvider.
func (m *Model) CouplingGrid() field.Grid { return m.grid }
