package sdf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"oagrid/internal/climate/field"
)

func sample(t *testing.T) []Record {
	t.Helper()
	g := field.Grid{NLat: 6, NLon: 12}
	a := field.MustNew(g, "tos", "K")
	b := field.MustNew(g, "pr", "kg/m2")
	for i := range a.Data {
		a.Data[i] = 270 + float64(i)*0.1
		b.Data[i] = float64(i % 5)
	}
	return []Record{{Time: 42, Field: a}, {Time: 42, Field: b}}
}

func TestRoundTrip(t *testing.T) {
	recs := sample(t)
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Time != recs[i].Time {
			t.Fatalf("record %d time %d, want %d", i, got[i].Time, recs[i].Time)
		}
		if got[i].Field.Name != recs[i].Field.Name || got[i].Field.Unit != recs[i].Field.Unit {
			t.Fatalf("record %d metadata mismatch", i)
		}
		if got[i].Field.Grid != recs[i].Field.Grid {
			t.Fatalf("record %d grid mismatch", i)
		}
		for j := range recs[i].Field.Data {
			if got[i].Field.Data[j] != recs[i].Field.Data[j] {
				t.Fatalf("record %d cell %d differs", i, j)
			}
		}
	}
}

func TestEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty stream returned %d records", len(got))
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("NOPE\x00\x00\x00\x00")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(strings.NewReader("SD")); err == nil {
		t.Fatal("truncated magic accepted")
	}
}

func TestTruncatedData(t *testing.T) {
	recs := sample(t)
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{5, 10, len(raw) / 2, len(raw) - 3} {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestImplausibleHeaderRejected(t *testing.T) {
	// Hand-build a header with a huge grid to ensure the allocation guard
	// fires instead of OOM.
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.Write([]byte{1, 0, 0, 0})    // one record
	buf.Write([]byte{1, 0})          // name len 1
	buf.WriteString("x")             // name
	buf.Write([]byte{0, 0})          // unit len 0
	buf.Write([]byte{0, 0, 0, 0x7f}) // nlat huge
	buf.Write([]byte{0, 0, 0, 0x7f}) // nlon huge
	buf.Write(make([]byte, 8))       // time
	if _, err := Read(&buf); err == nil {
		t.Fatal("implausible grid accepted")
	}
}

func TestNilFieldRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Record{{Time: 1}}); err == nil {
		t.Fatal("nil field accepted")
	}
}

func TestFind(t *testing.T) {
	recs := sample(t)
	r, err := Find(recs, "pr")
	if err != nil {
		t.Fatal(err)
	}
	if r.Field.Name != "pr" {
		t.Fatalf("Find returned %q", r.Field.Name)
	}
	if _, err := Find(recs, "missing"); err == nil {
		t.Fatal("missing record found")
	}
}

// Property: any single-record stream round-trips bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(nlatRaw, nlonRaw uint8, ts int64, vals []float64) bool {
		g := field.Grid{NLat: 2 + int(nlatRaw)%10, NLon: 2 + int(nlonRaw)%10}
		fl := field.MustNew(g, "f", "u")
		for i := range fl.Data {
			if len(vals) > 0 {
				fl.Data[i] = vals[i%len(vals)]
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, []Record{{Time: ts, Field: fl}}); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != 1 || got[0].Time != ts {
			return false
		}
		for i := range fl.Data {
			a, b := got[0].Field.Data[i], fl.Data[i]
			if a != b && !(a != a && b != b) { // NaN-safe comparison
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
