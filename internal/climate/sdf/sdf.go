// Package sdf implements the "self-describing format" the post-processing
// conversion task (convert_output_format) standardizes diagnostic files into
// (paper §2): a compact binary container where every record carries its own
// name, units, grid shape and timestamp — a miniature NetCDF built on the
// standard library only.
//
// Layout (little endian):
//
//	magic   "SDF1"
//	count   uint32                      number of records
//	record: nameLen uint16, name bytes
//	        unitLen uint16, unit bytes
//	        nlat uint32, nlon uint32
//	        time int64                  (month index or epoch, writer-defined)
//	        data nlat*nlon float64
package sdf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"oagrid/internal/climate/field"
)

// Magic identifies an SDF stream.
const Magic = "SDF1"

// maxDim guards against corrupt headers allocating absurd buffers.
const maxDim = 1 << 16

// Record is one self-described field with its timestamp.
type Record struct {
	Time  int64
	Field *field.Field
}

// Write serializes the records to w.
func Write(w io.Writer, records []Record) error {
	if _, err := w.Write([]byte(Magic)); err != nil {
		return fmt.Errorf("sdf: writing magic: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(records))); err != nil {
		return fmt.Errorf("sdf: writing count: %w", err)
	}
	for i, r := range records {
		if r.Field == nil {
			return fmt.Errorf("sdf: record %d has no field", i)
		}
		if err := writeString(w, r.Field.Name); err != nil {
			return err
		}
		if err := writeString(w, r.Field.Unit); err != nil {
			return err
		}
		hdr := []interface{}{
			uint32(r.Field.Grid.NLat),
			uint32(r.Field.Grid.NLon),
			r.Time,
		}
		for _, h := range hdr {
			if err := binary.Write(w, binary.LittleEndian, h); err != nil {
				return fmt.Errorf("sdf: record %d header: %w", i, err)
			}
		}
		if want, got := r.Field.Grid.Cells(), len(r.Field.Data); want != got {
			return fmt.Errorf("sdf: record %d (%s): %d cells declared, %d present", i, r.Field.Name, want, got)
		}
		if err := binary.Write(w, binary.LittleEndian, r.Field.Data); err != nil {
			return fmt.Errorf("sdf: record %d data: %w", i, err)
		}
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > math.MaxUint16 {
		return fmt.Errorf("sdf: string of %d bytes too long", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Read parses an SDF stream.
func Read(r io.Reader) ([]Record, error) {
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("sdf: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("sdf: bad magic %q", magic)
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("sdf: reading count: %w", err)
	}
	records := make([]Record, 0, count)
	for i := uint32(0); i < count; i++ {
		name, err := readString(r)
		if err != nil {
			return nil, fmt.Errorf("sdf: record %d name: %w", i, err)
		}
		unit, err := readString(r)
		if err != nil {
			return nil, fmt.Errorf("sdf: record %d unit: %w", i, err)
		}
		var nlat, nlon uint32
		var ts int64
		if err := binary.Read(r, binary.LittleEndian, &nlat); err != nil {
			return nil, fmt.Errorf("sdf: record %d: %w", i, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &nlon); err != nil {
			return nil, fmt.Errorf("sdf: record %d: %w", i, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &ts); err != nil {
			return nil, fmt.Errorf("sdf: record %d: %w", i, err)
		}
		if nlat == 0 || nlon == 0 || nlat > maxDim || nlon > maxDim {
			return nil, fmt.Errorf("sdf: record %d (%s): implausible grid %dx%d", i, name, nlat, nlon)
		}
		f, err := field.New(field.Grid{NLat: int(nlat), NLon: int(nlon)}, name, unit)
		if err != nil {
			return nil, fmt.Errorf("sdf: record %d: %w", i, err)
		}
		if err := binary.Read(r, binary.LittleEndian, f.Data); err != nil {
			return nil, fmt.Errorf("sdf: record %d data: %w", i, err)
		}
		records = append(records, Record{Time: ts, Field: f})
	}
	return records, nil
}

// Find returns the first record whose field has the given name.
func Find(records []Record, name string) (Record, error) {
	for _, r := range records {
		if r.Field.Name == name {
			return r, nil
		}
	}
	return Record{}, fmt.Errorf("sdf: no record named %q", name)
}

// ErrTruncated wraps short reads for callers that want to distinguish them.
var ErrTruncated = errors.New("sdf: truncated stream")
