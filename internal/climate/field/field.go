// Package field provides the gridded geophysical fields shared by the toy
// climate components: uniform latitude–longitude grids, area-weighted and
// regional means, and bilinear regridding between component grids (the job
// the OASIS coupler performs between ARPEGE's and OPA's grids).
package field

import (
	"errors"
	"fmt"
	"math"
)

// Grid is a uniform global latitude–longitude grid. Latitude runs from
// -90+Δ/2 to 90-Δ/2 over NLat rows (cell centers); longitude from 0 to
// 360-Δ over NLon columns, periodic.
type Grid struct {
	NLat int
	NLon int
}

// Validate checks the grid is usable.
func (g Grid) Validate() error {
	if g.NLat < 2 || g.NLon < 2 {
		return fmt.Errorf("field: degenerate grid %dx%d", g.NLat, g.NLon)
	}
	return nil
}

// Cells returns the number of grid cells.
func (g Grid) Cells() int { return g.NLat * g.NLon }

// LatAt returns the latitude of row i's cell center in degrees.
func (g Grid) LatAt(i int) float64 {
	return -90 + (float64(i)+0.5)*180/float64(g.NLat)
}

// LonAt returns the longitude of column j's cell center in degrees.
func (g Grid) LonAt(j int) float64 {
	return (float64(j) + 0.5) * 360 / float64(g.NLon)
}

// CellWeight returns the relative area weight of row i (∝ cos latitude).
func (g Grid) CellWeight(i int) float64 {
	return math.Cos(g.LatAt(i) * math.Pi / 180)
}

// Field is a scalar field on a Grid, row-major (lat, lon).
type Field struct {
	Grid Grid
	Name string
	Unit string
	Data []float64
}

// New allocates a zero field on the grid.
func New(g Grid, name, unit string) (*Field, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Field{Grid: g, Name: name, Unit: unit, Data: make([]float64, g.Cells())}, nil
}

// MustNew is New for statically valid grids; it panics on error.
func MustNew(g Grid, name, unit string) *Field {
	f, err := New(g, name, unit)
	if err != nil {
		panic(err)
	}
	return f
}

// idx returns the flat index of (i, j) with periodic longitude.
func (f *Field) idx(i, j int) int {
	j = ((j % f.Grid.NLon) + f.Grid.NLon) % f.Grid.NLon
	return i*f.Grid.NLon + j
}

// At returns the value at row i, column j (longitude periodic).
func (f *Field) At(i, j int) float64 { return f.Data[f.idx(i, j)] }

// Set stores v at row i, column j (longitude periodic).
func (f *Field) Set(i, j int, v float64) { f.Data[f.idx(i, j)] = v }

// Fill sets every cell to v.
func (f *Field) Fill(v float64) {
	for i := range f.Data {
		f.Data[i] = v
	}
}

// Copy returns a deep copy.
func (f *Field) Copy() *Field {
	cp := *f
	cp.Data = append([]float64(nil), f.Data...)
	return &cp
}

// CopyInto copies data from src; grids must match.
func (f *Field) CopyInto(src *Field) error {
	if src.Grid != f.Grid {
		return fmt.Errorf("field: grid mismatch %+v vs %+v", src.Grid, f.Grid)
	}
	copy(f.Data, src.Data)
	return nil
}

// AddScaled adds s·src cell-wise; grids must match.
func (f *Field) AddScaled(src *Field, s float64) error {
	if src.Grid != f.Grid {
		return fmt.Errorf("field: grid mismatch in AddScaled")
	}
	for i := range f.Data {
		f.Data[i] += s * src.Data[i]
	}
	return nil
}

// Stats returns the min, max and unweighted mean of the field.
func (f *Field) Stats() (min, max, mean float64) {
	if len(f.Data) == 0 {
		return 0, 0, 0
	}
	min, max = f.Data[0], f.Data[0]
	sum := 0.0
	for _, v := range f.Data {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	return min, max, sum / float64(len(f.Data))
}

// Mean returns the area-weighted global mean.
func (f *Field) Mean() float64 {
	num, den := 0.0, 0.0
	for i := 0; i < f.Grid.NLat; i++ {
		w := f.Grid.CellWeight(i)
		for j := 0; j < f.Grid.NLon; j++ {
			num += w * f.At(i, j)
			den += w
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Sum returns the plain (unweighted) sum of all cells — the conservation
// check quantity of the advection–diffusion tests.
func (f *Field) Sum() float64 {
	s := 0.0
	for _, v := range f.Data {
		s += v
	}
	return s
}

// IsFinite reports whether every cell is a finite number.
func (f *Field) IsFinite() bool {
	for _, v := range f.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Region is a latitude/longitude box (degrees) used by the analysis task
// extract_minimum_information.
type Region struct {
	Name           string
	LatMin, LatMax float64
	LonMin, LonMax float64
}

// StandardRegions are the key regions reported by the post-processing
// analysis: the globe, the tropics, the North Atlantic and the Arctic.
func StandardRegions() []Region {
	return []Region{
		{Name: "global", LatMin: -90, LatMax: 90, LonMin: 0, LonMax: 360},
		{Name: "tropics", LatMin: -23.5, LatMax: 23.5, LonMin: 0, LonMax: 360},
		{Name: "north-atlantic", LatMin: 30, LatMax: 65, LonMin: 280, LonMax: 350},
		{Name: "arctic", LatMin: 66.5, LatMax: 90, LonMin: 0, LonMax: 360},
	}
}

// RegionMean returns the area-weighted mean of f over the region. It returns
// an error when the region covers no cell center.
func (f *Field) RegionMean(r Region) (float64, error) {
	num, den := 0.0, 0.0
	for i := 0; i < f.Grid.NLat; i++ {
		lat := f.Grid.LatAt(i)
		if lat < r.LatMin || lat > r.LatMax {
			continue
		}
		w := f.Grid.CellWeight(i)
		for j := 0; j < f.Grid.NLon; j++ {
			lon := f.Grid.LonAt(j)
			if lon < r.LonMin || lon > r.LonMax {
				continue
			}
			num += w * f.At(i, j)
			den += w
		}
	}
	if den == 0 {
		return 0, fmt.Errorf("field: region %s covers no cell of grid %dx%d", r.Name, f.Grid.NLat, f.Grid.NLon)
	}
	return num / den, nil
}

// Regrid interpolates f bilinearly onto dst's grid and stores the result in
// dst. Longitudes wrap; latitudes clamp at the poles. Values stay within the
// source's range (no overshoot), the property the regrid tests rely on.
func Regrid(dst, src *Field) error {
	if dst == nil || src == nil {
		return errors.New("field: nil field in Regrid")
	}
	if dst.Grid == src.Grid {
		copy(dst.Data, src.Data)
		return nil
	}
	sg, dg := src.Grid, dst.Grid
	for i := 0; i < dg.NLat; i++ {
		// Fractional source row of the destination latitude.
		fi := (dg.LatAt(i) + 90) / (180 / float64(sg.NLat))
		fi -= 0.5
		i0 := int(math.Floor(fi))
		wi := fi - float64(i0)
		i1 := i0 + 1
		if i0 < 0 {
			i0, i1, wi = 0, 0, 0
		}
		if i1 >= sg.NLat {
			i0, i1, wi = sg.NLat-1, sg.NLat-1, 0
		}
		for j := 0; j < dg.NLon; j++ {
			fj := dg.LonAt(j) / (360 / float64(sg.NLon))
			fj -= 0.5
			j0 := int(math.Floor(fj))
			wj := fj - float64(j0)
			v00 := src.At(i0, j0)
			v01 := src.At(i0, j0+1)
			v10 := src.At(i1, j0)
			v11 := src.At(i1, j0+1)
			top := v00*(1-wj) + v01*wj
			bot := v10*(1-wj) + v11*wj
			dst.Set(i, j, top*(1-wi)+bot*wi)
		}
	}
	return nil
}
