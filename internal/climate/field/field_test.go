package field

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGridGeometry(t *testing.T) {
	g := Grid{NLat: 4, NLon: 8}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Cells() != 32 {
		t.Fatalf("Cells = %d, want 32", g.Cells())
	}
	if lat := g.LatAt(0); math.Abs(lat+67.5) > 1e-12 {
		t.Fatalf("LatAt(0) = %g, want -67.5", lat)
	}
	if lat := g.LatAt(3); math.Abs(lat-67.5) > 1e-12 {
		t.Fatalf("LatAt(3) = %g, want 67.5", lat)
	}
	if lon := g.LonAt(0); math.Abs(lon-22.5) > 1e-12 {
		t.Fatalf("LonAt(0) = %g, want 22.5", lon)
	}
	if (Grid{NLat: 1, NLon: 8}).Validate() == nil {
		t.Fatal("degenerate grid accepted")
	}
}

func TestFieldAccessPeriodicLon(t *testing.T) {
	f := MustNew(Grid{NLat: 3, NLon: 4}, "x", "1")
	f.Set(1, 0, 7)
	if f.At(1, 4) != 7 || f.At(1, -4) != 7 {
		t.Fatal("longitude wrap broken")
	}
}

func TestStatsMeanSum(t *testing.T) {
	f := MustNew(Grid{NLat: 2, NLon: 2}, "x", "1")
	f.Fill(3)
	min, max, mean := f.Stats()
	if min != 3 || max != 3 || mean != 3 {
		t.Fatalf("Stats = %g/%g/%g", min, max, mean)
	}
	if f.Sum() != 12 {
		t.Fatalf("Sum = %g", f.Sum())
	}
	// Constant fields have area-weighted mean equal to the constant.
	if m := f.Mean(); math.Abs(m-3) > 1e-12 {
		t.Fatalf("Mean = %g, want 3", m)
	}
}

func TestCopySemantics(t *testing.T) {
	f := MustNew(Grid{NLat: 2, NLon: 2}, "x", "1")
	f.Fill(1)
	cp := f.Copy()
	cp.Set(0, 0, 99)
	if f.At(0, 0) == 99 {
		t.Fatal("Copy shares backing storage")
	}
	g := MustNew(Grid{NLat: 2, NLon: 2}, "y", "1")
	if err := g.CopyInto(f); err != nil {
		t.Fatal(err)
	}
	if g.At(1, 1) != 1 {
		t.Fatal("CopyInto failed")
	}
	other := MustNew(Grid{NLat: 3, NLon: 2}, "z", "1")
	if err := g.CopyInto(other); err == nil {
		t.Fatal("grid mismatch accepted")
	}
	if err := g.AddScaled(f, 2); err != nil {
		t.Fatal(err)
	}
	if g.At(0, 0) != 3 {
		t.Fatalf("AddScaled result %g, want 3", g.At(0, 0))
	}
	if err := g.AddScaled(other, 1); err == nil {
		t.Fatal("AddScaled grid mismatch accepted")
	}
}

func TestRegionMean(t *testing.T) {
	g := Grid{NLat: 36, NLon: 72}
	f := MustNew(g, "t", "K")
	// Value = latitude, so the tropics mean must be ~0 and the arctic mean
	// clearly positive.
	for i := 0; i < g.NLat; i++ {
		for j := 0; j < g.NLon; j++ {
			f.Set(i, j, g.LatAt(i))
		}
	}
	for _, r := range StandardRegions() {
		m, err := f.RegionMean(r)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		switch r.Name {
		case "tropics":
			if math.Abs(m) > 1 {
				t.Errorf("tropics mean %g, want ≈0", m)
			}
		case "arctic":
			if m < 66 {
				t.Errorf("arctic mean %g, want > 66", m)
			}
		case "global":
			if math.Abs(m) > 1 {
				t.Errorf("global mean of latitude %g, want ≈0", m)
			}
		}
	}
	if _, err := f.RegionMean(Region{Name: "empty", LatMin: 89.9, LatMax: 89.95}); err == nil {
		t.Error("empty region accepted")
	}
}

func TestIsFinite(t *testing.T) {
	f := MustNew(Grid{NLat: 2, NLon: 2}, "x", "1")
	if !f.IsFinite() {
		t.Fatal("zero field reported non-finite")
	}
	f.Set(0, 1, math.NaN())
	if f.IsFinite() {
		t.Fatal("NaN not detected")
	}
}

func TestRegridIdentity(t *testing.T) {
	g := Grid{NLat: 6, NLon: 12}
	src := MustNew(g, "x", "1")
	for i := range src.Data {
		src.Data[i] = float64(i)
	}
	dst := MustNew(g, "x", "1")
	if err := Regrid(dst, src); err != nil {
		t.Fatal(err)
	}
	for i := range src.Data {
		if dst.Data[i] != src.Data[i] {
			t.Fatal("same-grid regrid is not a copy")
		}
	}
}

// TestRegridBounds: bilinear interpolation never overshoots the source range
// and preserves constants exactly, on any grid pair.
func TestRegridBounds(t *testing.T) {
	f := func(a, b, c, d uint8, konst bool) bool {
		sg := Grid{NLat: 2 + int(a)%30, NLon: 2 + int(b)%30}
		dg := Grid{NLat: 2 + int(c)%30, NLon: 2 + int(d)%30}
		src := MustNew(sg, "x", "1")
		if konst {
			src.Fill(5)
		} else {
			for i := range src.Data {
				src.Data[i] = math.Sin(float64(i) * 0.7)
			}
		}
		dst := MustNew(dg, "x", "1")
		if err := Regrid(dst, src); err != nil {
			return false
		}
		smin, smax, _ := src.Stats()
		dmin, dmax, _ := dst.Stats()
		const eps = 1e-12
		if dmin < smin-eps || dmax > smax+eps {
			return false
		}
		if konst {
			for _, v := range dst.Data {
				if math.Abs(v-5) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRegridNil(t *testing.T) {
	if err := Regrid(nil, nil); err == nil {
		t.Fatal("nil fields accepted")
	}
}

func TestLandMaskAndElevation(t *testing.T) {
	g := Grid{NLat: 24, NLon: 48}
	mask := LandMask(g)
	land, ocean := 0, 0
	for _, v := range mask.Data {
		if v > 0.5 {
			land++
		} else {
			ocean++
		}
	}
	if land == 0 || ocean == 0 {
		t.Fatalf("mask degenerate: %d land, %d ocean", land, ocean)
	}
	frac := float64(land) / float64(len(mask.Data))
	if frac < 0.15 || frac > 0.55 {
		t.Fatalf("land fraction %.2f implausible", frac)
	}
	elev := Elevation(g, mask)
	seen := make(map[float64]bool)
	for idx, v := range elev.Data {
		if mask.Data[idx] < 0.5 {
			if v != 0 {
				t.Fatal("ocean cell with elevation")
			}
			continue
		}
		if v <= 0 {
			t.Fatal("land cell at or below sea level")
		}
		if seen[v] {
			t.Fatalf("duplicate land elevation %g (plateau would break D8 routing)", v)
		}
		seen[v] = true
	}
}
