package field

// LandMask returns a synthetic land/sea mask on g (1 = land, 0 = ocean) with
// two idealized continents, enough structure to give the river-routing model
// coastlines and the coupler distinct surface types. The real study uses
// observed topography; any fixed mask exercises the same code paths.
func LandMask(g Grid) *Field {
	m := MustNew(g, "landmask", "1")
	for i := 0; i < g.NLat; i++ {
		lat := g.LatAt(i)
		for j := 0; j < g.NLon; j++ {
			lon := g.LonAt(j)
			land := 0.0
			// Continent A: a broad Eurasia/Africa-like block.
			if lat > -35 && lat < 70 && lon > 0 && lon < 120 {
				land = 1
			}
			// Continent B: an Americas-like strip.
			if lat > -55 && lat < 60 && lon > 200 && lon < 280 {
				land = 1
			}
			m.Set(i, j, land)
		}
	}
	return m
}

// Elevation returns a synthetic, plateau-free land elevation (meters) used to
// derive river flow directions: two ridge lines with a deterministic
// micro-slope so steepest-descent routing never ties.
func Elevation(g Grid, mask *Field) *Field {
	e := MustNew(g, "elevation", "m")
	for i := 0; i < g.NLat; i++ {
		lat := g.LatAt(i)
		for j := 0; j < g.NLon; j++ {
			if mask.At(i, j) < 0.5 {
				e.Set(i, j, 0)
				continue
			}
			lon := g.LonAt(j)
			h := 200.0
			// Ridge through continent A around lon 60.
			d := lon - 60
			if d < 0 {
				d = -d
			}
			if d < 40 {
				h += (40 - d) * 60
			}
			// Ridge through continent B around lon 240.
			d2 := lon - 240
			if d2 < 0 {
				d2 = -d2
			}
			if d2 < 25 {
				h += (25 - d2) * 90
			}
			// Slope towards the poles plus a tie-breaking micro-gradient.
			h += lat * 2
			h += float64(i)*1e-3 + float64(j)*1e-6
			e.Set(i, j, h)
		}
	}
	return e
}
