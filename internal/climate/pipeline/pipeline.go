// Package pipeline implements the six tasks of one monthly simulation
// exactly as the paper's Figure 1 names them, operating on files in a
// scenario working directory:
//
//	pre-processing:  caif (concatenate_atmospheric_input_files)
//	                 mp   (modify_parameters)
//	main:            pcr  (process_coupled_run — internal/climate/model)
//	post-processing: cof  (convert_output_format, native → SDF)
//	                 emi  (extract_minimum_information, regional means)
//	                 cd   (compress_diags, gzip)
//
// RunMonth chains the six tasks; RunScenario chains months through the
// restart files, reproducing the 1D-mesh structure the scheduler operates
// on.
package pipeline

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"oagrid/internal/climate/field"
	"oagrid/internal/climate/model"
	"oagrid/internal/climate/sdf"
)

// forcingChunks is how many per-source input files caif gathers (surface,
// ozone, aerosols, greenhouse gases — four in the toy setup).
const forcingChunks = 4

// Config identifies one scenario member and its run parameters.
type Config struct {
	// Root is the experiment directory; each scenario works in
	// Root/scenario-NN/.
	Root string
	// Scenario indexes the ensemble member; it determines the cloud
	// parameter below when CloudParam is zero.
	Scenario int
	// Procs is the processor count for the coupled run (4..11).
	Procs int
	// CloudParam overrides the ensemble parametrization when non-zero.
	CloudParam float64
	// Grids and month length forwarded to the model (zero = defaults).
	AtmosGrid, OceanGrid field.Grid
	Days                 int
}

// cloudParamFor derives the ensemble member's cloud-dynamics parameter: each
// scenario gets "a distinct physical parametrization of clouds dynamics"
// (paper §1), spread over a plausible range.
func cloudParamFor(scenario int) float64 {
	return 0.25 + 0.05*float64(scenario%10)
}

// Dir returns the scenario working directory.
func (c Config) Dir() string {
	return filepath.Join(c.Root, fmt.Sprintf("scenario-%02d", c.Scenario))
}

func (c Config) cloudParam() float64 {
	if c.CloudParam != 0 {
		return c.CloudParam
	}
	return cloudParamFor(c.Scenario)
}

// TaskTiming records the wall-clock duration of each task of one month, the
// measurement behind the Figure-1 calibration.
type TaskTiming struct {
	CAIF, MP, PCR, COF, EMI, CD time.Duration
}

// Total sums the six task durations.
func (t TaskTiming) Total() time.Duration {
	return t.CAIF + t.MP + t.PCR + t.COF + t.EMI + t.CD
}

// CAIF is concatenate_atmospheric_input_files: it gathers the month's
// forcing chunk files (generated deterministically when absent, standing in
// for the real boundary-condition archives) into a single inputs file in the
// working directory.
func CAIF(cfg Config, month int) error {
	dir := cfg.Dir()
	if err := os.MkdirAll(filepath.Join(dir, "inputs"), 0o755); err != nil {
		return fmt.Errorf("pipeline: caif: %w", err)
	}
	var parts []string
	for c := 0; c < forcingChunks; c++ {
		p := filepath.Join(dir, "inputs", fmt.Sprintf("forcing-m%04d-part%d.bin", month, c))
		if err := ensureForcingChunk(p, cfg.Scenario, month, c); err != nil {
			return err
		}
		parts = append(parts, p)
	}
	out, err := os.Create(filepath.Join(dir, fmt.Sprintf("inputs-m%04d.bin", month)))
	if err != nil {
		return fmt.Errorf("pipeline: caif: %w", err)
	}
	defer out.Close()
	w := bufio.NewWriter(out)
	for _, p := range parts {
		in, err := os.Open(p)
		if err != nil {
			return fmt.Errorf("pipeline: caif: %w", err)
		}
		if _, err := io.Copy(w, in); err != nil {
			in.Close()
			return fmt.Errorf("pipeline: caif: concatenating %s: %w", p, err)
		}
		in.Close()
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return out.Close()
}

// ensureForcingChunk writes a deterministic pseudo-forcing file when absent.
func ensureForcingChunk(path string, scenario, month, chunk int) error {
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pipeline: generating forcing: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	// A small deterministic payload: enough to exercise concatenation.
	seed := uint64(scenario)<<32 ^ uint64(month)<<8 ^ uint64(chunk)
	for i := 0; i < 512; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		fmt.Fprintf(w, "%016x\n", seed)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// MP is modify_parameters: it writes the namelist carrying the scenario's
// physical parametrization for the month.
func MP(cfg Config, month int) error {
	dir := cfg.Dir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("pipeline: mp: %w", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "&run\n")
	fmt.Fprintf(&b, "  scenario     = %d\n", cfg.Scenario)
	fmt.Fprintf(&b, "  month        = %d\n", month)
	fmt.Fprintf(&b, "  cloud_param  = %.6f\n", cfg.cloudParam())
	fmt.Fprintf(&b, "  procs        = %d\n", cfg.Procs)
	fmt.Fprintf(&b, "/\n")
	if err := os.WriteFile(filepath.Join(dir, "params.nml"), []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("pipeline: mp: %w", err)
	}
	return nil
}

// PCR is process_coupled_run: the moldable main task.
func PCR(cfg Config, month int) (*model.Diagnostics, error) {
	dir := cfg.Dir()
	if _, err := os.Stat(filepath.Join(dir, "params.nml")); err != nil {
		return nil, fmt.Errorf("pipeline: pcr: namelist missing (run mp first): %w", err)
	}
	return model.Run(model.Config{
		WorkDir:    dir,
		Procs:      cfg.Procs,
		Scenario:   cfg.Scenario,
		Month:      month,
		CloudParam: cfg.cloudParam(),
		AtmosGrid:  cfg.AtmosGrid,
		OceanGrid:  cfg.OceanGrid,
		Days:       cfg.Days,
	})
}

// SDFPath returns the standardized diagnostics file for a month.
func SDFPath(dir string, scenario, month int) string {
	return filepath.Join(dir, fmt.Sprintf("diags-s%02d-m%04d.sdf", scenario, month))
}

// COF is convert_output_format: every diagnostic file coming from the model
// components is standardized into the self-describing SDF format.
func COF(cfg Config, month int) error {
	dir := cfg.Dir()
	scen, m, fields, err := model.LoadRaw(model.RawDiagPath(dir, cfg.Scenario, month))
	if err != nil {
		return fmt.Errorf("pipeline: cof: %w", err)
	}
	if scen != cfg.Scenario || m != month {
		return fmt.Errorf("pipeline: cof: raw dump labelled s%d/m%d, expected s%d/m%d", scen, m, cfg.Scenario, month)
	}
	out, err := os.Create(SDFPath(dir, cfg.Scenario, month))
	if err != nil {
		return fmt.Errorf("pipeline: cof: %w", err)
	}
	defer out.Close()
	records := make([]sdf.Record, len(fields))
	for i, f := range fields {
		records[i] = sdf.Record{Time: int64(month), Field: f}
	}
	if err := sdf.Write(out, records); err != nil {
		return err
	}
	return out.Close()
}

// SeriesPath returns the scenario's analysis series file.
func SeriesPath(dir string) string { return filepath.Join(dir, "series.csv") }

// EMI is extract_minimum_information: global and regional means of the key
// fields are appended to the scenario's time series.
func EMI(cfg Config, month int) error {
	dir := cfg.Dir()
	in, err := os.Open(SDFPath(dir, cfg.Scenario, month))
	if err != nil {
		return fmt.Errorf("pipeline: emi: %w", err)
	}
	defer in.Close()
	records, err := sdf.Read(bufio.NewReader(in))
	if err != nil {
		return fmt.Errorf("pipeline: emi: %w", err)
	}
	seriesFile := SeriesPath(dir)
	newFile := false
	if _, err := os.Stat(seriesFile); err != nil {
		newFile = true
	}
	out, err := os.OpenFile(seriesFile, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("pipeline: emi: %w", err)
	}
	defer out.Close()
	w := bufio.NewWriter(out)
	if newFile {
		fmt.Fprintf(w, "month,field,region,mean\n")
	}
	for _, rec := range records {
		for _, region := range field.StandardRegions() {
			mean, err := rec.Field.RegionMean(region)
			if err != nil {
				return fmt.Errorf("pipeline: emi: %w", err)
			}
			fmt.Fprintf(w, "%d,%s,%s,%.6f\n", month, rec.Field.Name, region.Name, mean)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return out.Close()
}

// CD is compress_diags: the volume of model diagnostic files is drastically
// reduced to facilitate storage and transfers (gzip; the original SDF file
// is removed).
func CD(cfg Config, month int) error {
	dir := cfg.Dir()
	src := SDFPath(dir, cfg.Scenario, month)
	in, err := os.Open(src)
	if err != nil {
		return fmt.Errorf("pipeline: cd: %w", err)
	}
	defer in.Close()
	out, err := os.Create(src + ".gz")
	if err != nil {
		return fmt.Errorf("pipeline: cd: %w", err)
	}
	defer out.Close()
	gz, err := gzip.NewWriterLevel(out, gzip.BestCompression)
	if err != nil {
		return err
	}
	if _, err := io.Copy(gz, in); err != nil {
		return fmt.Errorf("pipeline: cd: compressing: %w", err)
	}
	if err := gz.Close(); err != nil {
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	in.Close()
	if err := os.Remove(src); err != nil {
		return fmt.Errorf("pipeline: cd: removing original: %w", err)
	}
	return nil
}

// DecompressDiags undoes CD for analysis tooling and tests.
func DecompressDiags(dir string, scenario, month int) ([]sdf.Record, error) {
	f, err := os.Open(SDFPath(dir, scenario, month) + ".gz")
	if err != nil {
		return nil, fmt.Errorf("pipeline: decompress: %w", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("pipeline: decompress: %w", err)
	}
	defer gz.Close()
	return sdf.Read(gz)
}

// RunMonth executes the full six-task pipeline for one month and returns the
// model diagnostics and the per-task wall-clock timings.
func RunMonth(cfg Config, month int) (*model.Diagnostics, TaskTiming, error) {
	var tt TaskTiming
	stamp := func(d *time.Duration, f func() error) error {
		t0 := time.Now()
		err := f()
		*d = time.Since(t0)
		return err
	}
	if err := stamp(&tt.CAIF, func() error { return CAIF(cfg, month) }); err != nil {
		return nil, tt, err
	}
	if err := stamp(&tt.MP, func() error { return MP(cfg, month) }); err != nil {
		return nil, tt, err
	}
	var diag *model.Diagnostics
	if err := stamp(&tt.PCR, func() error {
		d, err := PCR(cfg, month)
		diag = d
		return err
	}); err != nil {
		return nil, tt, err
	}
	if err := stamp(&tt.COF, func() error { return COF(cfg, month) }); err != nil {
		return nil, tt, err
	}
	if err := stamp(&tt.EMI, func() error { return EMI(cfg, month) }); err != nil {
		return nil, tt, err
	}
	if err := stamp(&tt.CD, func() error { return CD(cfg, month) }); err != nil {
		return nil, tt, err
	}
	return diag, tt, nil
}

// RunScenario chains months 0..months-1 of one scenario.
func RunScenario(cfg Config, months int) ([]*model.Diagnostics, error) {
	if months <= 0 {
		return nil, fmt.Errorf("pipeline: need at least one month")
	}
	var out []*model.Diagnostics
	for m := 0; m < months; m++ {
		d, _, err := RunMonth(cfg, m)
		if err != nil {
			return nil, fmt.Errorf("pipeline: month %d: %w", m, err)
		}
		out = append(out, d)
	}
	return out, nil
}
