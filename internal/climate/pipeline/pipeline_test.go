package pipeline

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oagrid/internal/climate/field"
	"oagrid/internal/climate/sdf"
)

func fastConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Root:      t.TempDir(),
		Scenario:  2,
		Procs:     5,
		AtmosGrid: field.Grid{NLat: 12, NLon: 24},
		OceanGrid: field.Grid{NLat: 18, NLon: 36},
		Days:      3,
	}
}

func TestRunMonthFullPipeline(t *testing.T) {
	cfg := fastConfig(t)
	diag, tt, err := RunMonth(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diag == nil || diag.Month != 0 {
		t.Fatal("missing or mislabelled diagnostics")
	}
	if tt.Total() <= 0 || tt.PCR <= 0 {
		t.Fatalf("task timings not recorded: %+v", tt)
	}
	dir := cfg.Dir()
	// caif output.
	if _, err := os.Stat(filepath.Join(dir, "inputs-m0000.bin")); err != nil {
		t.Fatalf("caif output missing: %v", err)
	}
	// mp output.
	nml, err := os.ReadFile(filepath.Join(dir, "params.nml"))
	if err != nil {
		t.Fatalf("namelist missing: %v", err)
	}
	if !strings.Contains(string(nml), "cloud_param") {
		t.Fatalf("namelist lacks cloud parameter:\n%s", nml)
	}
	// cof output is compressed away by cd; the gz must exist, the sdf not.
	if _, err := os.Stat(SDFPath(dir, 2, 0) + ".gz"); err != nil {
		t.Fatalf("compressed diagnostics missing: %v", err)
	}
	if _, err := os.Stat(SDFPath(dir, 2, 0)); err == nil {
		t.Fatal("uncompressed diagnostics not removed by cd")
	}
	// emi output.
	series, err := os.ReadFile(SeriesPath(dir))
	if err != nil {
		t.Fatalf("series missing: %v", err)
	}
	text := string(series)
	if !strings.HasPrefix(text, "month,field,region,mean\n") {
		t.Fatalf("series header wrong:\n%s", text)
	}
	for _, want := range []string{"tos,global", "t2m,tropics", "sic,arctic"} {
		if !strings.Contains(text, want) {
			t.Errorf("series lacks %q", want)
		}
	}
}

func TestCompressedDiagsRoundTrip(t *testing.T) {
	cfg := fastConfig(t)
	if _, _, err := RunMonth(cfg, 0); err != nil {
		t.Fatal(err)
	}
	records, err := DecompressDiags(cfg.Dir(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no records in compressed diagnostics")
	}
	if _, err := sdf.Find(records, "tos"); err != nil {
		t.Fatal(err)
	}
	if _, err := sdf.Find(records, "pr"); err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if !r.Field.IsFinite() {
			t.Fatalf("field %s has non-finite values", r.Field.Name)
		}
	}
}

func TestCompressionShrinks(t *testing.T) {
	cfg := fastConfig(t)
	if err := CAIF(cfg, 0); err != nil {
		t.Fatal(err)
	}
	if err := MP(cfg, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := PCR(cfg, 0); err != nil {
		t.Fatal(err)
	}
	if err := COF(cfg, 0); err != nil {
		t.Fatal(err)
	}
	raw, err := os.Stat(SDFPath(cfg.Dir(), 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := CD(cfg, 0); err != nil {
		t.Fatal(err)
	}
	gz, err := os.Stat(SDFPath(cfg.Dir(), 2, 0) + ".gz")
	if err != nil {
		t.Fatal(err)
	}
	if gz.Size() >= raw.Size() {
		t.Fatalf("compression grew the file: %d → %d bytes", raw.Size(), gz.Size())
	}
}

func TestRunScenarioChains(t *testing.T) {
	cfg := fastConfig(t)
	diags, err := RunScenario(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 3 {
		t.Fatalf("got %d months, want 3", len(diags))
	}
	// The series file accumulates all three months.
	f, err := os.Open(SeriesPath(cfg.Dir()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	months := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		parts := strings.SplitN(sc.Text(), ",", 2)
		months[parts[0]] = true
	}
	for _, m := range []string{"0", "1", "2"} {
		if !months[m] {
			t.Errorf("series lacks month %s", m)
		}
	}
	if _, err := RunScenario(cfg, 0); err == nil {
		t.Fatal("zero months accepted")
	}
}

func TestTaskOrderEnforced(t *testing.T) {
	cfg := fastConfig(t)
	// pcr before mp must fail (namelist missing).
	if _, err := PCR(cfg, 0); err == nil {
		t.Fatal("pcr ran without a namelist")
	}
	// cof before pcr must fail (raw dump missing).
	if err := MP(cfg, 0); err != nil {
		t.Fatal(err)
	}
	if err := COF(cfg, 0); err == nil {
		t.Fatal("cof ran without raw diagnostics")
	}
	// emi before cof must fail (sdf missing).
	if err := EMI(cfg, 0); err == nil {
		t.Fatal("emi ran without sdf diagnostics")
	}
	// cd before cof must fail.
	if err := CD(cfg, 0); err == nil {
		t.Fatal("cd ran without sdf diagnostics")
	}
}

func TestEnsembleParamsDistinct(t *testing.T) {
	// Each scenario member gets a distinct cloud parametrization (paper §1).
	seen := map[float64]bool{}
	for s := 0; s < 10; s++ {
		p := cloudParamFor(s)
		if p <= 0 || p >= 1 {
			t.Fatalf("scenario %d: cloud parameter %g out of range", s, p)
		}
		if seen[p] {
			t.Fatalf("scenario %d: duplicate cloud parameter %g", s, p)
		}
		seen[p] = true
	}
}

func TestCAIFDeterministicForcing(t *testing.T) {
	cfg := fastConfig(t)
	if err := CAIF(cfg, 0); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(filepath.Join(cfg.Dir(), "inputs-m0000.bin"))
	if err != nil {
		t.Fatal(err)
	}
	// Re-running caif reuses the same chunks and yields identical output.
	if err := CAIF(cfg, 0); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(filepath.Join(cfg.Dir(), "inputs-m0000.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatal("caif output not deterministic")
	}
	if len(first) == 0 {
		t.Fatal("caif produced empty input file")
	}
}
