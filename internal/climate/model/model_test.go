package model

import (
	"os"
	"testing"

	"oagrid/internal/climate/field"
)

// fastConfig is a short, coarse month for test speed.
func fastConfig(t *testing.T, procs, month int) Config {
	t.Helper()
	return Config{
		WorkDir:    t.TempDir(),
		Procs:      procs,
		Scenario:   3,
		Month:      month,
		CloudParam: 0.4,
		AtmosGrid:  field.Grid{NLat: 12, NLon: 24},
		OceanGrid:  field.Grid{NLat: 18, NLon: 36},
		Days:       4,
	}
}

func TestValidate(t *testing.T) {
	good := fastConfig(t, 4, 0)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.WorkDir = "" },
		func(c *Config) { c.Procs = 3 },
		func(c *Config) { c.Procs = 12 },
		func(c *Config) { c.Scenario = -1 },
		func(c *Config) { c.CloudParam = 0 },
		func(c *Config) { c.CloudParam = 1.5 },
	} {
		c := fastConfig(t, 4, 0)
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
}

func TestRunProducesFiles(t *testing.T) {
	cfg := fastConfig(t, 5, 0)
	d, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Scenario != 3 || d.Month != 0 {
		t.Fatalf("diagnostics labelled s%d/m%d", d.Scenario, d.Month)
	}
	if d.GlobalT < 200 || d.GlobalT > 330 {
		t.Fatalf("global mean T %g K unphysical", d.GlobalT)
	}
	if d.GlobalSST < 260 || d.GlobalSST > 320 {
		t.Fatalf("global mean SST %g K unphysical", d.GlobalSST)
	}
	if d.TotalPrecip <= 0 {
		t.Fatal("no precipitation this month")
	}
	if d.IceFraction < 0 || d.IceFraction > 1 {
		t.Fatalf("ice fraction %g", d.IceFraction)
	}
	if _, err := os.Stat(RestartPath(cfg.WorkDir, 3, 0)); err != nil {
		t.Fatalf("restart missing: %v", err)
	}
	if _, err := os.Stat(RawDiagPath(cfg.WorkDir, 3, 0)); err != nil {
		t.Fatalf("raw diagnostics missing: %v", err)
	}
}

func TestMonthChainingViaRestart(t *testing.T) {
	cfg := fastConfig(t, 4, 0)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Month = 1
	d2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Month != 1 {
		t.Fatalf("month 1 diagnostics labelled m%d", d2.Month)
	}
	// Month 2 without month 1's restart directory must fail.
	broken := cfg
	broken.WorkDir = t.TempDir()
	broken.Month = 2
	if _, err := Run(broken); err == nil {
		t.Fatal("missing restart accepted")
	}
}

// TestDeterministicAcrossProcs: the coupled run is bitwise reproducible and
// the result does not depend on the processor count (only the wall time
// does), the moldability property the scheduler relies on.
func TestDeterministicAcrossProcs(t *testing.T) {
	run := func(procs int) *Diagnostics {
		cfg := fastConfig(t, procs, 0)
		d, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b, c := run(4), run(8), run(11)
	if a.GlobalT != b.GlobalT || b.GlobalT != c.GlobalT {
		t.Fatalf("global T depends on processor count: %v %v %v", a.GlobalT, b.GlobalT, c.GlobalT)
	}
	if a.GlobalSST != b.GlobalSST || a.TotalPrecip != c.TotalPrecip {
		t.Fatal("diagnostics depend on processor count")
	}
}

func TestRestartScenarioMismatch(t *testing.T) {
	cfg := fastConfig(t, 4, 0)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	// Rename the restart so a different scenario appears to own it.
	if err := os.Rename(
		RestartPath(cfg.WorkDir, 3, 0),
		RestartPath(cfg.WorkDir, 4, 0),
	); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Scenario = 4
	other.Month = 1
	if _, err := Run(other); err == nil {
		t.Fatal("restart of another scenario accepted")
	}
}

func TestLoadRawRoundTrip(t *testing.T) {
	cfg := fastConfig(t, 4, 0)
	d, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scen, month, fields, err := LoadRaw(RawDiagPath(cfg.WorkDir, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if scen != 3 || month != 0 {
		t.Fatalf("raw dump labelled s%d/m%d", scen, month)
	}
	if len(fields) != len(d.Fields) {
		t.Fatalf("raw dump has %d fields, want %d", len(fields), len(d.Fields))
	}
	for i := range fields {
		if fields[i].Name != d.Fields[i].Name {
			t.Fatalf("field %d is %q, want %q", i, fields[i].Name, d.Fields[i].Name)
		}
		for j := range fields[i].Data {
			if fields[i].Data[j] != d.Fields[i].Data[j] {
				t.Fatalf("field %s cell %d differs after round trip", fields[i].Name, j)
			}
		}
	}
	if _, _, _, err := LoadRaw("/nonexistent/raw.bin"); err == nil {
		t.Fatal("missing raw file accepted")
	}
}

func TestWallClockRecorded(t *testing.T) {
	cfg := fastConfig(t, 4, 0)
	d, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.WallClock <= 0 {
		t.Fatal("wall clock not recorded")
	}
}
