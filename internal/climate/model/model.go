// Package model implements process_coupled_run, the moldable main task of
// the monthly simulation: it assembles the toy ARPEGE, OPA and TRIP
// components under the OASIS coupler, integrates one month with daily
// coupling, and reads/writes the restart state that chains consecutive
// months of a scenario (the paper's ~120 MB exchange, scaled down with the
// grid).
//
// The processor count maps exactly as in the paper: OPA, TRIP and OASIS are
// sequential (one processor each), ARPEGE parallelizes over procs−3 workers
// and stops scaling beyond 8 — so the task is moldable on 4..11 processors.
package model

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"oagrid/internal/climate/arpege"
	"oagrid/internal/climate/field"
	"oagrid/internal/climate/oasis"
	"oagrid/internal/climate/opa"
	"oagrid/internal/climate/trip"
	"oagrid/internal/platform"
)

// Default component grids: the atmosphere is coarser than the ocean, so
// every exchange through the coupler exercises the regridder.
var (
	DefaultAtmosGrid = field.Grid{NLat: 24, NLon: 48}
	DefaultOceanGrid = field.Grid{NLat: 36, NLon: 72}
)

// DaysPerMonth is the length of one monthly simulation in coupling periods.
const DaysPerMonth = 30

// Config parameterizes one coupled monthly run.
type Config struct {
	// WorkDir receives restart and diagnostic files.
	WorkDir string
	// Procs is the total processor count (4..11): 3 sequential components
	// plus 1..8 atmosphere workers.
	Procs int
	// Scenario and Month identify the chain position.
	Scenario, Month int
	// CloudParam is the ensemble's varied cloud-dynamics parameter.
	CloudParam float64
	// AtmosGrid/OceanGrid override the default grids (zero values use the
	// defaults). Larger grids make wall-clock calibration measurable.
	AtmosGrid, OceanGrid field.Grid
	// Days overrides DaysPerMonth when positive (tests use shorter months).
	Days int
}

func (c *Config) normalize() {
	if c.AtmosGrid == (field.Grid{}) {
		c.AtmosGrid = DefaultAtmosGrid
	}
	if c.OceanGrid == (field.Grid{}) {
		c.OceanGrid = DefaultOceanGrid
	}
	if c.Days <= 0 {
		c.Days = DaysPerMonth
	}
}

// Validate checks the run configuration.
func (c Config) Validate() error {
	c.normalize()
	if c.WorkDir == "" {
		return fmt.Errorf("model: empty work directory")
	}
	if c.Procs < platform.MinGroup || c.Procs > platform.MaxGroup {
		return fmt.Errorf("model: %d processors outside the moldable range [%d,%d]",
			c.Procs, platform.MinGroup, platform.MaxGroup)
	}
	if c.Scenario < 0 || c.Month < 0 {
		return fmt.Errorf("model: negative scenario or month")
	}
	if c.CloudParam <= 0 || c.CloudParam >= 1 {
		return fmt.Errorf("model: cloud parameter %g outside (0,1)", c.CloudParam)
	}
	return nil
}

// Restart is the chained state between consecutive months of one scenario.
type Restart struct {
	Scenario, Month int
	AtmosT, AtmosQ  []float64
	SST, Sal        []float64
	RiverStorage    []float64
	AtmosGrid       field.Grid
	OceanGrid       field.Grid
}

// RestartPath returns the canonical restart file name for a month.
func RestartPath(dir string, scenario, month int) string {
	return filepath.Join(dir, fmt.Sprintf("restart-s%02d-m%04d.gob", scenario, month))
}

// RawDiagPath returns the canonical raw-diagnostics file name (the input of
// convert_output_format).
func RawDiagPath(dir string, scenario, month int) string {
	return filepath.Join(dir, fmt.Sprintf("raw-s%02d-m%04d.bin", scenario, month))
}

// Diagnostics summarizes one month; the raw file carries the full fields.
type Diagnostics struct {
	Scenario, Month int
	GlobalT         float64 // area-weighted mean air temperature (K)
	GlobalSST       float64
	TotalPrecip     float64
	IceFraction     float64
	WallClock       time.Duration
	Fields          []*field.Field
}

// Run executes one coupled month: load (or cold-start) the restart, couple
// the three components for Config.Days daily periods, write the new restart
// and the raw diagnostics, and return the summary.
func Run(cfg Config) (*Diagnostics, error) {
	cfg.normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()

	workers := cfg.Procs - platform.SequentialComponents
	if workers > platform.MaxAtmosphereProcs {
		workers = platform.MaxAtmosphereProcs
	}
	atm, err := arpege.New(arpege.Config{Grid: cfg.AtmosGrid, Workers: workers, CloudParam: cfg.CloudParam})
	if err != nil {
		return nil, err
	}
	ocn, err := opa.New(opa.Config{Grid: cfg.OceanGrid})
	if err != nil {
		return nil, err
	}
	riv, err := trip.New(cfg.AtmosGrid)
	if err != nil {
		return nil, err
	}

	// Chain from the previous month's restart when it exists.
	if cfg.Month > 0 {
		if err := loadRestart(RestartPath(cfg.WorkDir, cfg.Scenario, cfg.Month-1), cfg, atm, ocn, riv); err != nil {
			return nil, err
		}
	}

	cpl := oasis.New()
	if err := cpl.AddComponent(atm, arpege.StepsPerDay); err != nil {
		return nil, err
	}
	if err := cpl.AddComponent(ocn, opa.StepsPerDay); err != nil {
		return nil, err
	}
	if err := cpl.AddComponent(riv, 1); err != nil {
		return nil, err
	}
	links := []oasis.Link{
		{FromComponent: "arpege", FromField: "heatflux", ToComponent: "opa", ToField: "heatflux"},
		{FromComponent: "arpege", FromField: "freshwater", ToComponent: "opa", ToField: "freshwater"},
		{FromComponent: "arpege", FromField: "runoff", ToComponent: "trip", ToField: "runoff"},
		{FromComponent: "trip", FromField: "discharge", ToComponent: "opa", ToField: "discharge"},
		{FromComponent: "opa", FromField: "sst", ToComponent: "arpege", ToField: "sst"},
	}
	for _, l := range links {
		if err := cpl.AddLink(l); err != nil {
			return nil, err
		}
	}
	if err := cpl.Run(cfg.Days); err != nil {
		return nil, err
	}

	// Persist the restart chain.
	if err := saveRestart(RestartPath(cfg.WorkDir, cfg.Scenario, cfg.Month), cfg, atm, ocn, riv); err != nil {
		return nil, err
	}

	// Raw diagnostics: monthly fields dumped in the model's native (gob)
	// layout; convert_output_format turns them into SDF.
	precip := atm.PrecipDiagnostic()
	diagFields := []*field.Field{atm.T.Copy(), ocn.SST.Copy(), ocn.Ice.Copy(), precip}
	if err := saveRaw(RawDiagPath(cfg.WorkDir, cfg.Scenario, cfg.Month), cfg, diagFields); err != nil {
		return nil, err
	}

	d := &Diagnostics{
		Scenario:    cfg.Scenario,
		Month:       cfg.Month,
		GlobalT:     atm.T.Mean(),
		GlobalSST:   ocn.SST.Mean(),
		TotalPrecip: precip.Sum(),
		IceFraction: ocn.Ice.Mean(),
		WallClock:   time.Since(start),
		Fields:      diagFields,
	}
	if !atm.T.IsFinite() || !ocn.SST.IsFinite() {
		return nil, fmt.Errorf("model: numerical blow-up in scenario %d month %d", cfg.Scenario, cfg.Month)
	}
	return d, nil
}

func saveRestart(path string, cfg Config, atm *arpege.Model, ocn *opa.Model, riv *trip.Model) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("model: creating restart: %w", err)
	}
	defer f.Close()
	r := Restart{
		Scenario:     cfg.Scenario,
		Month:        cfg.Month,
		AtmosT:       atm.T.Data,
		AtmosQ:       atm.Q.Data,
		SST:          ocn.SST.Data,
		Sal:          ocn.Sal.Data,
		RiverStorage: riv.Storage.Data,
		AtmosGrid:    cfg.AtmosGrid,
		OceanGrid:    cfg.OceanGrid,
	}
	if err := gob.NewEncoder(f).Encode(&r); err != nil {
		return fmt.Errorf("model: encoding restart: %w", err)
	}
	return f.Close()
}

func loadRestart(path string, cfg Config, atm *arpege.Model, ocn *opa.Model, riv *trip.Model) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("model: restart of month %d missing (months of a scenario chain strictly): %w",
			cfg.Month-1, err)
	}
	defer f.Close()
	var r Restart
	if err := gob.NewDecoder(f).Decode(&r); err != nil {
		return fmt.Errorf("model: decoding restart %s: %w", path, err)
	}
	if r.AtmosGrid != cfg.AtmosGrid || r.OceanGrid != cfg.OceanGrid {
		return fmt.Errorf("model: restart %s on grids %v/%v, run configured for %v/%v",
			path, r.AtmosGrid, r.OceanGrid, cfg.AtmosGrid, cfg.OceanGrid)
	}
	if r.Scenario != cfg.Scenario {
		return fmt.Errorf("model: restart %s belongs to scenario %d, not %d", path, r.Scenario, cfg.Scenario)
	}
	copy(atm.T.Data, r.AtmosT)
	copy(atm.Q.Data, r.AtmosQ)
	copy(ocn.SST.Data, r.SST)
	copy(ocn.Sal.Data, r.Sal)
	copy(riv.Storage.Data, r.RiverStorage)
	return nil
}

// rawDump is the gob container of the native diagnostic dump.
type rawDump struct {
	Scenario, Month int
	Names           []string
	Units           []string
	Grids           []field.Grid
	Data            [][]float64
}

func saveRaw(path string, cfg Config, fields []*field.Field) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("model: creating raw diagnostics: %w", err)
	}
	defer f.Close()
	d := rawDump{Scenario: cfg.Scenario, Month: cfg.Month}
	for _, fl := range fields {
		d.Names = append(d.Names, fl.Name)
		d.Units = append(d.Units, fl.Unit)
		d.Grids = append(d.Grids, fl.Grid)
		d.Data = append(d.Data, fl.Data)
	}
	if err := gob.NewEncoder(f).Encode(&d); err != nil {
		return fmt.Errorf("model: encoding raw diagnostics: %w", err)
	}
	return f.Close()
}

// LoadRaw reads a native diagnostic dump back into fields, the input side of
// convert_output_format.
func LoadRaw(path string) (scenario, month int, fields []*field.Field, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("model: opening raw diagnostics: %w", err)
	}
	defer f.Close()
	var d rawDump
	if err := gob.NewDecoder(f).Decode(&d); err != nil {
		return 0, 0, nil, fmt.Errorf("model: decoding raw diagnostics %s: %w", path, err)
	}
	for i := range d.Names {
		fl, err := field.New(d.Grids[i], d.Names[i], d.Units[i])
		if err != nil {
			return 0, 0, nil, err
		}
		copy(fl.Data, d.Data[i])
		fields = append(fields, fl)
	}
	return d.Scenario, d.Month, fields, nil
}
