package oasis

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"oagrid/internal/climate/arpege"
	"oagrid/internal/climate/field"
	"oagrid/internal/climate/opa"
)

// fake is a minimal component for coupler unit tests.
type fake struct {
	name      string
	grid      field.Grid
	exports   map[string]*field.Field
	imports   map[string]*field.Field
	advanced  atomic.Int64
	failAfter int // Advance fails once this many periods completed (0 = never)
}

func newFake(name string, g field.Grid, exports, imports []string) *fake {
	f := &fake{
		name:    name,
		grid:    g,
		exports: make(map[string]*field.Field),
		imports: make(map[string]*field.Field),
	}
	for _, e := range exports {
		fl := field.MustNew(g, e, "1")
		fl.Fill(1)
		f.exports[e] = fl
	}
	for _, i := range imports {
		f.imports[i] = field.MustNew(g, i, "1")
	}
	return f
}

func (f *fake) Name() string { return f.name }
func (f *fake) Exports() []string {
	var out []string
	for k := range f.exports {
		out = append(out, k)
	}
	return out
}
func (f *fake) Imports() []string {
	var out []string
	for k := range f.imports {
		out = append(out, k)
	}
	return out
}
func (f *fake) Export(name string) (*field.Field, error) {
	fl, ok := f.exports[name]
	if !ok {
		return nil, fmt.Errorf("fake %s: no export %q", f.name, name)
	}
	return fl.Copy(), nil
}
func (f *fake) Import(name string, fl *field.Field) error {
	dst, ok := f.imports[name]
	if !ok {
		return fmt.Errorf("fake %s: no import %q", f.name, name)
	}
	return dst.CopyInto(fl)
}
func (f *fake) Advance(n int) error {
	cur := f.advanced.Add(int64(n))
	if f.failAfter > 0 && cur >= int64(f.failAfter) {
		return errors.New("synthetic component failure")
	}
	return nil
}
func (f *fake) CouplingGrid() field.Grid { return f.grid }

func TestRunExchangesAndAdvances(t *testing.T) {
	g := field.Grid{NLat: 4, NLon: 8}
	a := newFake("a", g, []string{"flux"}, nil)
	b := newFake("b", g, nil, []string{"flux"})
	c := New()
	if err := c.AddComponent(a, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.AddComponent(b, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddLink(Link{FromComponent: "a", FromField: "flux", ToComponent: "b", ToField: "flux"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(5); err != nil {
		t.Fatal(err)
	}
	if c.Periods() != 5 {
		t.Fatalf("Periods = %d", c.Periods())
	}
	if got := a.advanced.Load(); got != 15 {
		t.Fatalf("component a advanced %d steps, want 15", got)
	}
	if got := b.advanced.Load(); got != 10 {
		t.Fatalf("component b advanced %d steps, want 10", got)
	}
	if b.imports["flux"].Sum() != float64(g.Cells()) {
		t.Fatal("flux not delivered")
	}
}

func TestRegridAcrossGrids(t *testing.T) {
	a := newFake("a", field.Grid{NLat: 4, NLon: 8}, []string{"flux"}, nil)
	b := newFake("b", field.Grid{NLat: 8, NLon: 16}, nil, []string{"flux"})
	c := New()
	if err := c.AddComponent(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddComponent(b, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddLink(Link{FromComponent: "a", FromField: "flux", ToComponent: "b", ToField: "flux"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(1); err != nil {
		t.Fatal(err)
	}
	// Source is constant 1 → destination must be constant 1 after bilinear
	// regridding.
	for _, v := range b.imports["flux"].Data {
		if v != 1 {
			t.Fatalf("regridded value %g, want 1", v)
		}
	}
}

func TestAddComponentValidation(t *testing.T) {
	c := New()
	if err := c.AddComponent(nil, 1); err == nil {
		t.Fatal("nil component accepted")
	}
	g := field.Grid{NLat: 4, NLon: 8}
	a := newFake("a", g, nil, nil)
	if err := c.AddComponent(a, 0); err == nil {
		t.Fatal("zero steps accepted")
	}
	if err := c.AddComponent(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddComponent(newFake("a", g, nil, nil), 1); err == nil {
		t.Fatal("duplicate component accepted")
	}
}

func TestAddLinkValidation(t *testing.T) {
	g := field.Grid{NLat: 4, NLon: 8}
	c := New()
	if err := c.AddComponent(newFake("a", g, []string{"x"}, nil), 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddComponent(newFake("b", g, nil, []string{"y"}), 1); err != nil {
		t.Fatal(err)
	}
	cases := []Link{
		{FromComponent: "zz", FromField: "x", ToComponent: "b", ToField: "y"},
		{FromComponent: "a", FromField: "x", ToComponent: "zz", ToField: "y"},
		{FromComponent: "a", FromField: "nope", ToComponent: "b", ToField: "y"},
		{FromComponent: "a", FromField: "x", ToComponent: "b", ToField: "nope"},
	}
	for i, l := range cases {
		if err := c.AddLink(l); err == nil {
			t.Errorf("case %d: bad link %v accepted", i, l)
		}
	}
	if err := c.AddLink(Link{FromComponent: "a", FromField: "x", ToComponent: "b", ToField: "y"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	c := New()
	if err := c.Run(1); err == nil {
		t.Fatal("empty coupler ran")
	}
	g := field.Grid{NLat: 4, NLon: 8}
	if err := c.AddComponent(newFake("a", g, nil, nil), 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err == nil {
		t.Fatal("zero periods accepted")
	}
	bad := newFake("bad", g, nil, nil)
	bad.failAfter = 2
	if err := c.AddComponent(bad, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(5); err == nil {
		t.Fatal("component failure not propagated")
	}
}

func TestLinkString(t *testing.T) {
	l := Link{FromComponent: "a", FromField: "x", ToComponent: "b", ToField: "y"}
	if got := l.String(); got != "a.x -> b.y" {
		t.Fatalf("String = %q", got)
	}
}

// TestSplitRunEquivalence: coupling is lock-step and deterministic, so
// Run(2) followed by Run(3) must leave the coupled system in exactly the
// state of a single Run(5). Uses the real atmosphere and ocean components.
func TestSplitRunEquivalence(t *testing.T) {
	build := func() (*Coupler, *opa.Model) {
		atm, err := arpege.New(arpege.Config{
			Grid:       field.Grid{NLat: 12, NLon: 24},
			Workers:    2,
			CloudParam: 0.4,
		})
		if err != nil {
			t.Fatal(err)
		}
		ocn, err := opa.New(opa.Config{Grid: field.Grid{NLat: 18, NLon: 36}})
		if err != nil {
			t.Fatal(err)
		}
		c := New()
		if err := c.AddComponent(atm, 4); err != nil {
			t.Fatal(err)
		}
		if err := c.AddComponent(ocn, 2); err != nil {
			t.Fatal(err)
		}
		links := []Link{
			{FromComponent: "arpege", FromField: "heatflux", ToComponent: "opa", ToField: "heatflux"},
			{FromComponent: "opa", FromField: "sst", ToComponent: "arpege", ToField: "sst"},
		}
		for _, l := range links {
			if err := c.AddLink(l); err != nil {
				t.Fatal(err)
			}
		}
		return c, ocn
	}
	cSplit, oSplit := build()
	if err := cSplit.Run(2); err != nil {
		t.Fatal(err)
	}
	if err := cSplit.Run(3); err != nil {
		t.Fatal(err)
	}
	cOnce, oOnce := build()
	if err := cOnce.Run(5); err != nil {
		t.Fatal(err)
	}
	if cSplit.Periods() != cOnce.Periods() {
		t.Fatalf("period counts differ: %d vs %d", cSplit.Periods(), cOnce.Periods())
	}
	for i := range oSplit.SST.Data {
		if oSplit.SST.Data[i] != oOnce.SST.Data[i] {
			t.Fatalf("SST diverges at cell %d: %v vs %v", i, oSplit.SST.Data[i], oOnce.SST.Data[i])
		}
	}
}
