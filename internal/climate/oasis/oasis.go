// Package oasis is the toy stand-in for the OASIS coupler: it "ensures
// simultaneous run of each element and synchronizes information exchanges"
// (paper §2). Components advance concurrently — one goroutine each, like the
// one processor each gets in the real configuration — and between coupling
// periods the coupler performs the declared field exchanges, regridding
// between component grids.
package oasis

import (
	"errors"
	"fmt"
	"sync"

	"oagrid/internal/climate/field"
)

// Component is the contract every coupled model implements (the toy ARPEGE,
// OPA and TRIP all do).
type Component interface {
	// Name identifies the component in link definitions and errors.
	Name() string
	// Exports and Imports list the coupling field names.
	Exports() []string
	Imports() []string
	// Export returns the named coupling field (accumulators reset on read).
	Export(name string) (*field.Field, error)
	// Import delivers the named coupling field, already on this component's
	// grid.
	Import(name string, f *field.Field) error
	// Advance integrates n internal steps.
	Advance(n int) error
}

// Link is one namcouple-style exchange: source component/field to
// destination component/field, regridded automatically when grids differ.
type Link struct {
	FromComponent, FromField string
	ToComponent, ToField     string
}

// String implements fmt.Stringer.
func (l Link) String() string {
	return fmt.Sprintf("%s.%s -> %s.%s", l.FromComponent, l.FromField, l.ToComponent, l.ToField)
}

// Coupler owns the components and their exchange table.
type Coupler struct {
	components map[string]Component
	order      []string
	links      []Link
	// StepsPer maps a component name to its internal steps per coupling
	// period (components run with different internal time steps).
	stepsPer map[string]int
	periods  int
}

// New builds an empty coupler.
func New() *Coupler {
	return &Coupler{
		components: make(map[string]Component),
		stepsPer:   make(map[string]int),
	}
}

// AddComponent registers a component with its internal steps per coupling
// period.
func (c *Coupler) AddComponent(comp Component, stepsPerPeriod int) error {
	if comp == nil {
		return errors.New("oasis: nil component")
	}
	if stepsPerPeriod <= 0 {
		return fmt.Errorf("oasis: component %s needs a positive step count", comp.Name())
	}
	if _, dup := c.components[comp.Name()]; dup {
		return fmt.Errorf("oasis: duplicate component %q", comp.Name())
	}
	c.components[comp.Name()] = comp
	c.order = append(c.order, comp.Name())
	c.stepsPer[comp.Name()] = stepsPerPeriod
	return nil
}

// AddLink registers an exchange. Both endpoints must exist and declare the
// fields.
func (c *Coupler) AddLink(l Link) error {
	src, ok := c.components[l.FromComponent]
	if !ok {
		return fmt.Errorf("oasis: link %v: unknown source component", l)
	}
	dst, ok := c.components[l.ToComponent]
	if !ok {
		return fmt.Errorf("oasis: link %v: unknown destination component", l)
	}
	if !contains(src.Exports(), l.FromField) {
		return fmt.Errorf("oasis: link %v: %s does not export %q", l, src.Name(), l.FromField)
	}
	if !contains(dst.Imports(), l.ToField) {
		return fmt.Errorf("oasis: link %v: %s does not import %q", l, dst.Name(), l.ToField)
	}
	c.links = append(c.links, l)
	return nil
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// Periods returns how many coupling periods have completed.
func (c *Coupler) Periods() int { return c.periods }

// Run executes n coupling periods: every period, all components advance
// concurrently by their configured internal steps, then the coupler performs
// every exchange in declaration order.
func (c *Coupler) Run(n int) error {
	if len(c.components) == 0 {
		return errors.New("oasis: no components registered")
	}
	if n <= 0 {
		return fmt.Errorf("oasis: non-positive period count %d", n)
	}
	for p := 0; p < n; p++ {
		// Simultaneous run of each element: one goroutine per component, as
		// one processor each in the real deployment.
		var wg sync.WaitGroup
		errs := make([]error, len(c.order))
		for i, name := range c.order {
			comp := c.components[name]
			steps := c.stepsPer[name]
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = comp.Advance(steps)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("oasis: period %d: component %s: %w", p, c.order[i], err)
			}
		}
		// Synchronized exchange phase.
		for _, l := range c.links {
			if err := c.exchange(l); err != nil {
				return fmt.Errorf("oasis: period %d: %w", p, err)
			}
		}
		c.periods++
	}
	return nil
}

// exchange moves one field across a link, regridding when necessary.
func (c *Coupler) exchange(l Link) error {
	src := c.components[l.FromComponent]
	dst := c.components[l.ToComponent]
	f, err := src.Export(l.FromField)
	if err != nil {
		return fmt.Errorf("link %v: %w", l, err)
	}
	dstGrid, ok := gridOf(dst)
	if !ok {
		return fmt.Errorf("link %v: destination %s does not reveal its grid", l, dst.Name())
	}
	if f.Grid == dstGrid {
		return dst.Import(l.ToField, f)
	}
	out := field.MustNew(dstGrid, f.Name, f.Unit)
	if err := field.Regrid(out, f); err != nil {
		return fmt.Errorf("link %v: %w", l, err)
	}
	return dst.Import(l.ToField, out)
}

// GridProvider is the optional interface components implement to reveal
// their grid to the coupler's regridder.
type GridProvider interface {
	CouplingGrid() field.Grid
}

func gridOf(c Component) (field.Grid, bool) {
	if gp, ok := c.(GridProvider); ok {
		return gp.CouplingGrid(), true
	}
	return field.Grid{}, false
}
