// Package arpege is the toy stand-in for the ARPEGE atmospheric general
// circulation model: a two-field (temperature, humidity) advection–diffusion
// dynamical core with a cloud/precipitation parametrization — the physical
// parameter the paper's ensemble varies — integrated in parallel over
// latitude bands by a pool of goroutine "ranks" with explicit halo exchange,
// the same decomposition structure as the MPI original. The Jacobi update
// makes the result bit-for-bit identical for any worker count, which the
// tests verify.
package arpege

import (
	"fmt"
	"math"
	"sync"

	"oagrid/internal/climate/field"
)

// Physical constants of the toy dynamics. Tuned for stability at the default
// one-hour step on coarse grids, not for meteorological accuracy.
const (
	dtSeconds    = 3600.0 // one integration step = 1 h
	StepsPerDay  = 24
	diffusivity  = 0.06  // grid-units² per step, horizontal mixing
	zonalCourant = 0.25  // upwind advection Courant number (u·dt/dx)
	relaxRate    = 0.01  // per-step relaxation towards radiative equilibrium
	fluxCoeff    = 0.02  // air–sea heat exchange per step (K per K contrast)
	evapCoeff    = 0.004 // evaporation coefficient over ocean
	freezeK      = 273.15
)

// Config describes one atmosphere instance.
type Config struct {
	Grid field.Grid
	// Workers is the number of parallel ranks (the paper's 1–8 atmosphere
	// processors).
	Workers int
	// CloudParam is the cloud-dynamics parametrization constant the ensemble
	// varies: the fraction of super-saturated humidity removed as
	// precipitation per step. Physically plausible range ~[0.05, 0.9].
	CloudParam float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Grid.Validate(); err != nil {
		return err
	}
	if c.Workers < 1 {
		return fmt.Errorf("arpege: need at least one worker, got %d", c.Workers)
	}
	if c.Workers > c.Grid.NLat {
		return fmt.Errorf("arpege: %d workers exceed %d latitude rows", c.Workers, c.Grid.NLat)
	}
	if c.CloudParam <= 0 || c.CloudParam >= 1 {
		return fmt.Errorf("arpege: cloud parameter %g outside (0,1)", c.CloudParam)
	}
	return nil
}

// Model is the atmosphere state. It implements the coupler's Component
// contract via Exports/Imports on the fields named "heatflux", "freshwater",
// "runoff" (exports) and "sst" (import).
type Model struct {
	cfg  Config
	mask *field.Field

	T *field.Field // air temperature (K)
	Q *field.Field // specific humidity (kg/kg)

	sst *field.Field // imported sea-surface temperature (K)

	// Coupling accumulators, reset at every Export.
	heatflux   *field.Field // W-like units, positive warms the ocean
	freshwater *field.Field // precipitation − evaporation over ocean
	runoff     *field.Field // precipitation excess over land, for TRIP
	precip     *field.Field // monthly precipitation diagnostic

	steps int
}

// New builds an initialized atmosphere: a pole-to-equator temperature
// gradient and moist tropics.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		cfg:        cfg,
		mask:       field.LandMask(cfg.Grid),
		T:          field.MustNew(cfg.Grid, "t2m", "K"),
		Q:          field.MustNew(cfg.Grid, "huss", "kg/kg"),
		sst:        field.MustNew(cfg.Grid, "sst", "K"),
		heatflux:   field.MustNew(cfg.Grid, "heatflux", "K/step"),
		freshwater: field.MustNew(cfg.Grid, "freshwater", "kg/m2"),
		runoff:     field.MustNew(cfg.Grid, "runoff", "kg/m2"),
		precip:     field.MustNew(cfg.Grid, "pr", "kg/m2"),
	}
	for i := 0; i < cfg.Grid.NLat; i++ {
		lat := cfg.Grid.LatAt(i) * math.Pi / 180
		for j := 0; j < cfg.Grid.NLon; j++ {
			m.T.Set(i, j, equilibriumT(lat))
			m.Q.Set(i, j, 0.012*math.Cos(lat)*math.Cos(lat))
		}
	}
	// A sensible default SST until the coupler delivers the real one.
	for i := range m.sst.Data {
		m.sst.Data[i] = m.T.Data[i]
	}
	return m, nil
}

// equilibriumT is the radiative-equilibrium profile the temperature relaxes
// towards.
func equilibriumT(latRad float64) float64 {
	return 255 + 45*math.Cos(latRad)*math.Cos(latRad)
}

// qsat is the saturation humidity, a simplified Clausius–Clapeyron curve.
func qsat(t float64) float64 {
	return 0.012 * math.Exp(0.06*(t-288))
}

// Steps returns the number of integration steps taken so far.
func (m *Model) Steps() int { return m.steps }

// Name implements the coupler component contract.
func (m *Model) Name() string { return "arpege" }

// Exports lists the coupling fields this component produces.
func (m *Model) Exports() []string { return []string{"heatflux", "freshwater", "runoff"} }

// Imports lists the coupling fields this component consumes.
func (m *Model) Imports() []string { return []string{"sst"} }

// Export returns (and for flux accumulators, resets) a coupling field.
func (m *Model) Export(name string) (*field.Field, error) {
	switch name {
	case "heatflux":
		out := m.heatflux.Copy()
		m.heatflux.Fill(0)
		return out, nil
	case "freshwater":
		out := m.freshwater.Copy()
		m.freshwater.Fill(0)
		return out, nil
	case "runoff":
		out := m.runoff.Copy()
		m.runoff.Fill(0)
		return out, nil
	default:
		return nil, fmt.Errorf("arpege: unknown export %q", name)
	}
}

// Import receives a coupling field (regridded by the coupler).
func (m *Model) Import(name string, f *field.Field) error {
	if name != "sst" {
		return fmt.Errorf("arpege: unknown import %q", name)
	}
	return m.sst.CopyInto(f)
}

// PrecipDiagnostic returns the accumulated precipitation field and resets it.
func (m *Model) PrecipDiagnostic() *field.Field {
	out := m.precip.Copy()
	m.precip.Fill(0)
	return out
}

// band is the latitude slab owned by one worker, with one halo row on each
// side.
type band struct {
	lo, hi int // owned rows [lo, hi)
	up     chan []float64
	down   chan []float64
}

// Advance integrates n steps with the configured worker pool. The dynamics
// are Jacobi (new values depend only on the previous step), so the result is
// independent of the decomposition; the halo exchange mirrors the MPI
// communication structure of the original code.
func (m *Model) Advance(n int) error {
	if n <= 0 {
		return fmt.Errorf("arpege: non-positive step count %d", n)
	}
	w := m.cfg.Workers
	nlat := m.cfg.Grid.NLat
	bands := make([]band, w)
	for k := 0; k < w; k++ {
		bands[k] = band{
			lo:   k * nlat / w,
			hi:   (k + 1) * nlat / w,
			up:   make(chan []float64, 1),
			down: make(chan []float64, 1),
		}
	}
	// Double buffers shared by all workers; each worker writes only its own
	// rows and reads neighbor rows of the previous step, synchronized by the
	// halo channels acting as a barrier.
	curT, nxtT := m.T.Data, make([]float64, len(m.T.Data))
	curQ, nxtQ := m.Q.Data, make([]float64, len(m.Q.Data))

	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(k int) {
			defer wg.Done()
			b := bands[k]
			srcT, dstT := curT, nxtT
			srcQ, dstQ := curQ, nxtQ
			for step := 0; step < n; step++ {
				m.stepRows(b.lo, b.hi, srcT, srcQ, dstT, dstQ)
				// Halo exchange doubles as the step barrier: a rank may only
				// proceed once both neighbors have finished writing the rows
				// it will read next step. The payload carries the boundary
				// rows exactly as an MPI halo would.
				if k > 0 {
					bands[k-1].down <- dstT[b.lo*m.cfg.Grid.NLon : (b.lo+1)*m.cfg.Grid.NLon]
				}
				if k < w-1 {
					bands[k+1].up <- dstT[(b.hi-1)*m.cfg.Grid.NLon : b.hi*m.cfg.Grid.NLon]
				}
				if k < w-1 {
					<-b.down
				}
				if k > 0 {
					<-b.up
				}
				srcT, dstT = dstT, srcT
				srcQ, dstQ = dstQ, srcQ
			}
		}(k)
	}
	wg.Wait()
	if n%2 == 1 {
		curT, nxtT = nxtT, curT
		curQ, nxtQ = nxtQ, curQ
	}
	m.T.Data = curT
	m.Q.Data = curQ
	m.steps += n
	return nil
}

// stepRows advances rows [lo, hi) one step, reading srcT/srcQ and writing
// dstT/dstQ, and accumulates the coupling fluxes for those rows.
func (m *Model) stepRows(lo, hi int, srcT, srcQ, dstT, dstQ []float64) {
	g := m.cfg.Grid
	nlon := g.NLon
	at := func(data []float64, i, j int) float64 {
		if i < 0 {
			i = 0
		}
		if i >= g.NLat {
			i = g.NLat - 1
		}
		j = ((j % nlon) + nlon) % nlon
		return data[i*nlon+j]
	}
	for i := lo; i < hi; i++ {
		latRad := g.LatAt(i) * math.Pi / 180
		teq := equilibriumT(latRad)
		for j := 0; j < nlon; j++ {
			idx := i*nlon + j
			t := srcT[idx]
			q := srcQ[idx]
			// Upwind zonal advection (westerlies, constant Courant number).
			advT := zonalCourant * (at(srcT, i, j-1) - t)
			advQ := zonalCourant * (at(srcQ, i, j-1) - q)
			// Five-point diffusion.
			difT := diffusivity * (at(srcT, i-1, j) + at(srcT, i+1, j) +
				at(srcT, i, j-1) + at(srcT, i, j+1) - 4*t)
			difQ := diffusivity * (at(srcQ, i-1, j) + at(srcQ, i+1, j) +
				at(srcQ, i, j-1) + at(srcQ, i, j+1) - 4*q)
			// Surface exchange with the imported SST (ocean cells only).
			ocean := m.mask.Data[idx] < 0.5
			sst := m.sst.Data[idx]
			heat := 0.0
			evap := 0.0
			if ocean {
				heat = fluxCoeff * (sst - t)
				if e := evapCoeff * (qsat(sst) - q); e > 0 {
					evap = e
				}
			}
			// Cloud parametrization: rain out super-saturation.
			prec := 0.0
			if excess := q + advQ + difQ + evap - qsat(t); excess > 0 {
				prec = m.cfg.CloudParam * excess
			}
			latent := 80 * prec // condensation heating

			dstT[idx] = t + advT + difT + relaxRate*(teq-t) + heat + latent
			dstQ[idx] = q + advQ + difQ + evap - prec

			// Coupling accumulators (each row is owned by exactly one
			// worker, so these writes never race).
			m.precip.Data[idx] += prec
			if ocean {
				m.heatflux.Data[idx] += -heat // what the air gains, the sea loses
				m.freshwater.Data[idx] += prec - evap
			} else {
				m.runoff.Data[idx] += prec
			}
		}
	}
}

// CouplingGrid implements oasis.GridProvider.
func (m *Model) CouplingGrid() field.Grid { return m.cfg.Grid }
