package arpege

import (
	"math"
	"testing"

	"oagrid/internal/climate/field"
)

func testConfig(workers int) Config {
	return Config{
		Grid:       field.Grid{NLat: 24, NLon: 48},
		Workers:    workers,
		CloudParam: 0.4,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Grid: field.Grid{NLat: 1, NLon: 4}, Workers: 1, CloudParam: 0.4},
		{Grid: field.Grid{NLat: 8, NLon: 8}, Workers: 0, CloudParam: 0.4},
		{Grid: field.Grid{NLat: 8, NLon: 8}, Workers: 9, CloudParam: 0.4},
		{Grid: field.Grid{NLat: 8, NLon: 8}, Workers: 2, CloudParam: 0},
		{Grid: field.Grid{NLat: 8, NLon: 8}, Workers: 2, CloudParam: 1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestDecompositionInvariance is the MPI-correctness property: the Jacobi
// core with halo exchange must produce bit-for-bit identical state for any
// worker count.
func TestDecompositionInvariance(t *testing.T) {
	ref, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Advance(48); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 4, 8} {
		m, err := New(testConfig(w))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Advance(48); err != nil {
			t.Fatal(err)
		}
		for i := range ref.T.Data {
			if m.T.Data[i] != ref.T.Data[i] {
				t.Fatalf("workers=%d: T differs at cell %d: %v vs %v", w, i, m.T.Data[i], ref.T.Data[i])
			}
			if m.Q.Data[i] != ref.Q.Data[i] {
				t.Fatalf("workers=%d: Q differs at cell %d", w, i)
			}
		}
	}
}

func TestStabilityAndPhysicalRange(t *testing.T) {
	m, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Advance(30 * StepsPerDay); err != nil {
		t.Fatal(err)
	}
	if !m.T.IsFinite() || !m.Q.IsFinite() {
		t.Fatal("non-finite state after one month")
	}
	min, max, _ := m.T.Stats()
	if min < 180 || max > 340 {
		t.Fatalf("temperature range [%g,%g] K unphysical", min, max)
	}
	qmin, _, _ := m.Q.Stats()
	if qmin < -1e-12 {
		t.Fatalf("negative humidity %g", qmin)
	}
	if m.Steps() != 30*StepsPerDay {
		t.Fatalf("Steps = %d", m.Steps())
	}
}

func TestCloudParamControlsPrecip(t *testing.T) {
	run := func(param float64) float64 {
		cfg := testConfig(2)
		cfg.CloudParam = param
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Advance(StepsPerDay * 10); err != nil {
			t.Fatal(err)
		}
		return m.PrecipDiagnostic().Sum()
	}
	lo, hi := run(0.1), run(0.8)
	if lo <= 0 || hi <= 0 {
		t.Fatalf("no precipitation produced: %g / %g", lo, hi)
	}
	if lo == hi {
		t.Fatalf("cloud parameter has no effect: %g == %g", lo, hi)
	}
}

func TestCouplerContract(t *testing.T) {
	m, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "arpege" {
		t.Fatalf("Name = %q", m.Name())
	}
	if err := m.Advance(4); err != nil {
		t.Fatal(err)
	}
	for _, name := range m.Exports() {
		f, err := m.Export(name)
		if err != nil {
			t.Fatalf("Export(%s): %v", name, err)
		}
		if f == nil || !f.IsFinite() {
			t.Fatalf("Export(%s) returned bad field", name)
		}
	}
	// Accumulators reset on export.
	f, err := m.Export("heatflux")
	if err != nil {
		t.Fatal(err)
	}
	if f.Sum() != 0 {
		t.Fatal("heatflux accumulator did not reset")
	}
	if _, err := m.Export("nope"); err == nil {
		t.Fatal("unknown export accepted")
	}
	sst := field.MustNew(m.CouplingGrid(), "sst", "K")
	sst.Fill(300)
	if err := m.Import("sst", sst); err != nil {
		t.Fatal(err)
	}
	if err := m.Import("nope", sst); err == nil {
		t.Fatal("unknown import accepted")
	}
}

// TestWarmSSTWarmsAir: importing a uniformly warm ocean must raise the mean
// air temperature relative to a cold one — the basic sign of the coupling.
func TestWarmSSTWarmsAir(t *testing.T) {
	run := func(sstK float64) float64 {
		m, err := New(testConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		sst := field.MustNew(m.CouplingGrid(), "sst", "K")
		sst.Fill(sstK)
		if err := m.Import("sst", sst); err != nil {
			t.Fatal(err)
		}
		if err := m.Advance(StepsPerDay * 5); err != nil {
			t.Fatal(err)
		}
		return m.T.Mean()
	}
	warm, cold := run(305), run(271)
	if warm <= cold {
		t.Fatalf("warm SST mean T %g ≤ cold SST mean T %g", warm, cold)
	}
}

func TestAdvanceErrors(t *testing.T) {
	m, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Advance(0); err == nil {
		t.Fatal("zero steps accepted")
	}
	if err := m.Advance(-3); err == nil {
		t.Fatal("negative steps accepted")
	}
}

// TestOddStepBufferSwap guards the double-buffer bookkeeping: odd and even
// step counts must chain to the same state as one combined run.
func TestOddStepBufferSwap(t *testing.T) {
	a, err := New(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Advance(7); err != nil {
		t.Fatal(err)
	}
	if err := a.Advance(5); err != nil {
		t.Fatal(err)
	}
	b, err := New(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Advance(12); err != nil {
		t.Fatal(err)
	}
	for i := range a.T.Data {
		if math.Abs(a.T.Data[i]-b.T.Data[i]) != 0 {
			t.Fatalf("split advance diverges at cell %d", i)
		}
	}
}
