package opa

import (
	"testing"

	"oagrid/internal/climate/field"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(Config{Grid: field.Grid{NLat: 36, NLon: 72}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{Grid: field.Grid{NLat: 1, NLon: 4}}); err == nil {
		t.Fatal("degenerate grid accepted")
	}
}

func TestStability(t *testing.T) {
	m := newModel(t)
	if err := m.Advance(30 * StepsPerDay); err != nil {
		t.Fatal(err)
	}
	if !m.SST.IsFinite() || !m.Sal.IsFinite() {
		t.Fatal("non-finite ocean state")
	}
	min, max, _ := m.SST.Stats()
	if min < freezeK-3-1e-9 || max > 310+1e-9 {
		t.Fatalf("SST range [%g,%g] outside envelope", min, max)
	}
	if m.Steps() != 30*StepsPerDay {
		t.Fatalf("Steps = %d", m.Steps())
	}
}

func TestIceFractionBoundsAndColdPoles(t *testing.T) {
	m := newModel(t)
	if err := m.Advance(StepsPerDay * 5); err != nil {
		t.Fatal(err)
	}
	for idx, v := range m.Ice.Data {
		if v < 0 || v > 1 {
			t.Fatalf("ice fraction %g at cell %d", v, idx)
		}
	}
	// Polar rows are near or below freezing initially, so some ice exists.
	if m.Ice.Sum() == 0 {
		t.Fatal("no sea ice anywhere")
	}
	// Tropical ice should be zero.
	g := m.CouplingGrid()
	eq := g.NLat / 2
	for j := 0; j < g.NLon; j++ {
		if m.Ice.At(eq, j) != 0 {
			t.Fatalf("tropical ice at column %d", j)
		}
	}
}

func TestHeatFluxWarms(t *testing.T) {
	warm := newModel(t)
	flux := field.MustNew(warm.CouplingGrid(), "heatflux", "K/step")
	flux.Fill(0.5)
	if err := warm.Import("heatflux", flux); err != nil {
		t.Fatal(err)
	}
	if err := warm.Advance(StepsPerDay); err != nil {
		t.Fatal(err)
	}
	ctl := newModel(t)
	if err := ctl.Advance(StepsPerDay); err != nil {
		t.Fatal(err)
	}
	if warm.SST.Mean() <= ctl.SST.Mean() {
		t.Fatalf("positive heat flux did not warm: %g vs %g", warm.SST.Mean(), ctl.SST.Mean())
	}
}

func TestFreshwaterDilutes(t *testing.T) {
	m := newModel(t)
	fresh := field.MustNew(m.CouplingGrid(), "freshwater", "kg/m2")
	fresh.Fill(0.2)
	if err := m.Import("freshwater", fresh); err != nil {
		t.Fatal(err)
	}
	before := m.Sal.Mean()
	if err := m.Advance(StepsPerDay); err != nil {
		t.Fatal(err)
	}
	if m.Sal.Mean() >= before {
		t.Fatalf("freshwater did not dilute salinity: %g → %g", before, m.Sal.Mean())
	}
}

func TestCouplerContract(t *testing.T) {
	m := newModel(t)
	if m.Name() != "opa" {
		t.Fatalf("Name = %q", m.Name())
	}
	f, err := m.Export("sst")
	if err != nil || f == nil {
		t.Fatalf("Export(sst): %v", err)
	}
	if _, err := m.Export("nope"); err == nil {
		t.Fatal("unknown export accepted")
	}
	for _, imp := range m.Imports() {
		fld := field.MustNew(m.CouplingGrid(), imp, "1")
		if err := m.Import(imp, fld); err != nil {
			t.Fatalf("Import(%s): %v", imp, err)
		}
	}
	if err := m.Import("nope", f); err == nil {
		t.Fatal("unknown import accepted")
	}
	if err := m.Advance(0); err == nil {
		t.Fatal("zero steps accepted")
	}
}

func TestLandCellsInert(t *testing.T) {
	m := newModel(t)
	g := m.CouplingGrid()
	mask := field.LandMask(g)
	var landIdx int = -1
	for idx, v := range mask.Data {
		if v > 0.5 {
			landIdx = idx
			break
		}
	}
	if landIdx < 0 {
		t.Skip("no land cell on this grid")
	}
	before := m.SST.Data[landIdx]
	if err := m.Advance(StepsPerDay * 3); err != nil {
		t.Fatal(err)
	}
	if m.SST.Data[landIdx] != before {
		t.Fatal("land cell SST changed")
	}
}
