// Package opa is the toy stand-in for the OPA/NEMO ocean model: a sequential
// (single-processor, as in the paper's configuration) advection–diffusion
// model of sea-surface temperature and salinity with a diagnostic sea-ice
// fraction, driven by a prescribed double-gyre circulation and by the heat,
// freshwater and river-discharge fluxes delivered through the coupler.
package opa

import (
	"fmt"
	"math"

	"oagrid/internal/climate/field"
)

// Tunable constants of the toy ocean.
const (
	StepsPerDay = 8    // 3-hour ocean step
	diffusivity = 0.04 // grid-units² per step
	gyreCourant = 0.18 // maximum advective Courant number
	mixedLayerK = 0.15 // converts coupler heat flux to K per step
	freshToSalt = 12.0 // converts freshwater flux to salinity tendency
	freezeK     = 271.35
	iceSlope    = 0.4  // ice fraction per kelvin below freezing
	restoreRate = 0.05 // per-step restoring to the radiative climatology
)

// Config describes one ocean instance.
type Config struct {
	Grid field.Grid
}

// Model is the ocean state; it implements the coupler component contract
// with export "sst" and imports "heatflux", "freshwater", "discharge".
type Model struct {
	cfg  Config
	mask *field.Field // land mask on the ocean grid (land cells inert)

	SST *field.Field // sea-surface temperature (K)
	Sal *field.Field // salinity (psu)
	Ice *field.Field // diagnostic sea-ice fraction [0,1]

	heat  *field.Field // imported heat flux
	fresh *field.Field // imported freshwater flux
	disch *field.Field // imported river discharge

	clim *field.Field // radiative-equilibrium SST the surface restores to

	steps int
}

// New builds an initialized ocean with a warm-tropics SST profile.
func New(cfg Config) (*Model, error) {
	if err := cfg.Grid.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		cfg:   cfg,
		mask:  field.LandMask(cfg.Grid),
		SST:   field.MustNew(cfg.Grid, "tos", "K"),
		Sal:   field.MustNew(cfg.Grid, "sos", "psu"),
		Ice:   field.MustNew(cfg.Grid, "sic", "1"),
		heat:  field.MustNew(cfg.Grid, "heatflux", "K/step"),
		fresh: field.MustNew(cfg.Grid, "freshwater", "kg/m2"),
		disch: field.MustNew(cfg.Grid, "discharge", "kg/m2"),
		clim:  field.MustNew(cfg.Grid, "clim", "K"),
	}
	for i := 0; i < cfg.Grid.NLat; i++ {
		lat := cfg.Grid.LatAt(i) * math.Pi / 180
		for j := 0; j < cfg.Grid.NLon; j++ {
			// The radiative climatology dips below freezing at the poles so
			// the sea-ice diagnostic stays active against diffusive warming.
			clim := 269.5 + 30.3*math.Cos(lat)*math.Cos(lat)
			m.clim.Set(i, j, clim)
			m.SST.Set(i, j, clim)
			m.Sal.Set(i, j, 34.7)
		}
	}
	m.updateIce()
	return m, nil
}

// Steps returns the number of integration steps taken.
func (m *Model) Steps() int { return m.steps }

// Name implements the coupler component contract.
func (m *Model) Name() string { return "opa" }

// Exports lists the coupling fields this component produces.
func (m *Model) Exports() []string { return []string{"sst"} }

// Imports lists the coupling fields this component consumes.
func (m *Model) Imports() []string { return []string{"heatflux", "freshwater", "discharge"} }

// Export implements the coupler contract.
func (m *Model) Export(name string) (*field.Field, error) {
	if name != "sst" {
		return nil, fmt.Errorf("opa: unknown export %q", name)
	}
	return m.SST.Copy(), nil
}

// Import implements the coupler contract.
func (m *Model) Import(name string, f *field.Field) error {
	switch name {
	case "heatflux":
		return m.heat.CopyInto(f)
	case "freshwater":
		return m.fresh.CopyInto(f)
	case "discharge":
		return m.disch.CopyInto(f)
	default:
		return fmt.Errorf("opa: unknown import %q", name)
	}
}

// velocity returns the prescribed double-gyre velocity (in Courant units) at
// row i, column j: westward in the tropics, eastward at mid-latitudes, with
// a weak meridional overturning.
func (m *Model) velocity(i, j int) (u, v float64) {
	lat := m.cfg.Grid.LatAt(i) * math.Pi / 180
	lon := m.cfg.Grid.LonAt(j) * math.Pi / 180
	u = -gyreCourant * math.Cos(3*lat)
	v = 0.3 * gyreCourant * math.Sin(2*lat) * math.Sin(lon)
	return u, v
}

// Advance integrates n sequential steps.
func (m *Model) Advance(n int) error {
	if n <= 0 {
		return fmt.Errorf("opa: non-positive step count %d", n)
	}
	g := m.cfg.Grid
	nlat, nlon := g.NLat, g.NLon
	next := make([]float64, len(m.SST.Data))
	nextS := make([]float64, len(m.Sal.Data))
	at := func(data []float64, i, j int) float64 {
		if i < 0 {
			i = 0
		}
		if i >= nlat {
			i = nlat - 1
		}
		j = ((j % nlon) + nlon) % nlon
		return data[i*nlon+j]
	}
	// Per-coupling-period fluxes are spread uniformly over the n steps.
	heatPer := 1.0 / float64(n)
	for s := 0; s < n; s++ {
		src, srcS := m.SST.Data, m.Sal.Data
		for i := 0; i < nlat; i++ {
			for j := 0; j < nlon; j++ {
				idx := i*nlon + j
				if m.mask.Data[idx] > 0.5 {
					next[idx] = src[idx]
					nextS[idx] = srcS[idx]
					continue
				}
				t := src[idx]
				sal := srcS[idx]
				u, v := m.velocity(i, j)
				// First-order upwind advection.
				var advT, advS float64
				if u >= 0 {
					advT += u * (at(src, i, j-1) - t)
					advS += u * (at(srcS, i, j-1) - sal)
				} else {
					advT += -u * (at(src, i, j+1) - t)
					advS += -u * (at(srcS, i, j+1) - sal)
				}
				if v >= 0 {
					advT += v * (at(src, i-1, j) - t)
					advS += v * (at(srcS, i-1, j) - sal)
				} else {
					advT += -v * (at(src, i+1, j) - t)
					advS += -v * (at(srcS, i+1, j) - sal)
				}
				difT := diffusivity * (at(src, i-1, j) + at(src, i+1, j) +
					at(src, i, j-1) + at(src, i, j+1) - 4*t)
				difS := diffusivity * (at(srcS, i-1, j) + at(srcS, i+1, j) +
					at(srcS, i, j-1) + at(srcS, i, j+1) - 4*sal)
				// Sea ice insulates the air–sea heat exchange.
				ice := m.Ice.Data[idx]
				heating := mixedLayerK * m.heat.Data[idx] * heatPer * (1 - ice)
				restoring := restoreRate * (m.clim.Data[idx] - t)
				dilution := -freshToSalt * (m.fresh.Data[idx] + m.disch.Data[idx]) * heatPer * sal / 35
				next[idx] = t + advT + difT + heating + restoring
				nextS[idx] = sal + advS + difS + dilution
				// Keep the toy ocean in a physical envelope.
				if next[idx] < freezeK-3 {
					next[idx] = freezeK - 3
				}
				if next[idx] > 310 {
					next[idx] = 310
				}
			}
		}
		m.SST.Data, next = next, m.SST.Data
		m.Sal.Data, nextS = nextS, m.Sal.Data
		m.updateIce()
		m.steps++
	}
	return nil
}

// updateIce recomputes the diagnostic sea-ice fraction from SST.
func (m *Model) updateIce() {
	for idx, t := range m.SST.Data {
		if m.mask.Data[idx] > 0.5 {
			m.Ice.Data[idx] = 0
			continue
		}
		frac := iceSlope * (freezeK - t)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		m.Ice.Data[idx] = frac
	}
}

// CouplingGrid implements oasis.GridProvider.
func (m *Model) CouplingGrid() field.Grid { return m.cfg.Grid }
