// Package typederr guards the errors.Is contracts of the public API. The
// oagrid facade and grid.Client promise that every error they return wraps
// exactly one of the package's typed sentinels (ErrRejected,
// ErrQuotaExceeded, ErrCampaignFailed, ErrProtocol, ErrUnknownCampaign,
// ErrCampaignCancelled, ErrUnreachable, ring.ErrIncompatiblePeer, ...) so
// callers branch with errors.Is instead of string-matching messages. That
// contract erodes one fmt.Errorf at a time: a bare, sentinel-free error on
// an exported path compiles, passes tests that only assert err != nil, and
// silently breaks every caller's retry/backoff classification.
//
// This analyzer flags, inside exported error-returning entry points of the
// root oagrid package and exported methods of internal/grid's Client:
//
//   - errors.New calls — a fresh ad-hoc error can never satisfy errors.Is
//     against a published sentinel (declare package-level sentinels in the
//     errors block instead);
//   - fmt.Errorf calls whose format string carries no %w verb — without a
//     wrap directive the result unwraps to nothing.
//
// Deliberately exempt: unexported helpers (they may build the wrapped
// message the exported caller returns) and fmt.Errorf with %w, whatever it
// wraps — wrapping an upstream error or a sentinel are both legitimate.
package typederr

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"oagrid/internal/analysis"
)

// Analyzer is the typederr checker.
var Analyzer = &analysis.Analyzer{
	Name: "typederr",
	Doc:  "flags bare errors.New/fmt.Errorf (no %w) inside exported entry points that promise typed sentinels",
	Run:  run,
}

// Cover maps the covered package paths to the receiver type whose exported
// methods carry the contract there; the empty string covers every exported
// function and method in the package. A var, not a const table, so the
// golden tests can point it at fixture packages.
var Cover = map[string]string{
	"oagrid":               "",
	"oagrid/internal/grid": "Client",
}

func run(pass *analysis.Pass) error {
	recvType, ok := Cover[pass.Pkg.Path()]
	if !ok {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() || !returnsError(pass, fn) {
				continue
			}
			if recvType == "" || receiverTypeName(fn) == recvType {
				checkFunc(pass, fn)
			}
		}
	}
	return nil
}

// returnsError reports whether fn's results include an error.
func returnsError(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, field := range fn.Type.Results.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && tv.Type != nil && types.Identical(tv.Type, types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}

// receiverTypeName returns fn's receiver base type name ("" for functions).
func receiverTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch {
		case pkg.Imported().Path() == "errors" && sel.Sel.Name == "New":
			pass.Reportf(call.Pos(), "errors.New inside exported %s breaks the errors.Is contract; wrap a package sentinel with fmt.Errorf(\"...: %%w\", Err...) or declare a new exported sentinel", fn.Name.Name)
		case pkg.Imported().Path() == "fmt" && sel.Sel.Name == "Errorf":
			if len(call.Args) == 0 {
				return true
			}
			format, ok := stringLiteral(call.Args[0])
			if ok && !strings.Contains(format, "%w") {
				pass.Reportf(call.Pos(), "fmt.Errorf without %%w inside exported %s returns an unwrappable error; wrap a package sentinel or the upstream error", fn.Name.Name)
			}
		}
		return true
	})
}

// stringLiteral unquotes a string literal expression.
func stringLiteral(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
