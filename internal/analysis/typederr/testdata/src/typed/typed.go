// Package typed exercises the typederr analyzer with a Client receiver
// cover, mirroring the internal/grid.Client contract.
package typed

import (
	"errors"
	"fmt"
)

// ErrUnreachable is the fixture's published sentinel.
var ErrUnreachable = errors.New("typed: no scheduler reachable")

// Client mirrors grid.Client: its exported methods promise typed errors.
type Client struct{}

// Submit returns a bare fmt.Errorf — the contract violation.
func (c *Client) Submit(n int) error {
	if n < 0 {
		return fmt.Errorf("typed: negative scenario count %d", n) // want `fmt.Errorf without %w inside exported Submit`
	}
	return nil
}

// Attach returns a fresh ad-hoc error — never errors.Is-matchable.
func (c *Client) Attach(id uint64) error {
	return errors.New("typed: attach failed") // want `errors.New inside exported Attach`
}

// Wrapped honors the contract by wrapping the sentinel.
func (c *Client) Wrapped(id uint64) error {
	return fmt.Errorf("typed: campaign %d: %w", id, ErrUnreachable)
}

// roundTrip is unexported: helpers may build the message their exported
// caller wraps.
func (c *Client) roundTrip() error {
	return errors.New("typed: transport closed")
}

// Other receivers are outside the Client cover.
type Other struct{}

// Do is exported but not on Client; the cover skips it.
func (o *Other) Do() error {
	return errors.New("typed: other")
}

// Dial is a plain function; a receiver-scoped cover skips it too.
func Dial(addr string) error {
	return errors.New("typed: dial")
}
