// Package typedall exercises the typederr analyzer with a whole-package
// cover, mirroring the root oagrid facade.
package typedall

import (
	"errors"
	"fmt"
)

// ErrInvalidConfig is the fixture's published sentinel.
var ErrInvalidConfig = errors.New("typedall: invalid configuration")

// Connect violates the contract with a fresh error.
func Connect(addr string) error {
	return errors.New("typedall: connection refused") // want `errors.New inside exported Connect`
}

// Run violates the contract with an unwrappable fmt.Errorf.
func Run() error {
	return fmt.Errorf("typedall: run failed") // want `fmt.Errorf without %w inside exported Run`
}

// Configure honors the contract by wrapping the sentinel.
func Configure(clusters int) error {
	if clusters == 0 {
		return fmt.Errorf("typedall: need at least one cluster: %w", ErrInvalidConfig)
	}
	return nil
}

// Legacy carries a reviewed suppression while migration is in flight.
func Legacy() error {
	//oalint:allow typederr bare error predates the sentinel migration
	return errors.New("typedall: legacy path")
}

// helper is unexported and free to build bare messages.
func helper() error {
	return errors.New("typedall: helper detail")
}

// Describe returns no error; the analyzer ignores it.
func Describe() string {
	return fmt.Sprintf("clusters=%d", 1)
}
