package typederr_test

import (
	"path/filepath"
	"testing"

	"oagrid/internal/analysis"
	"oagrid/internal/analysis/analysistest"
	"oagrid/internal/analysis/typederr"
)

// withCover swaps the coverage table to point at a fixture package.
func withCover(t *testing.T, cover map[string]string) {
	t.Helper()
	saved := typederr.Cover
	typederr.Cover = cover
	t.Cleanup(func() { typederr.Cover = saved })
}

func TestClientReceiverCover(t *testing.T) {
	withCover(t, map[string]string{"fixture/typed": "Client"})
	analysistest.Run(t, "testdata/src/typed", typederr.Analyzer)
}

func TestWholePackageCover(t *testing.T) {
	withCover(t, map[string]string{"fixture/typedall": ""})
	analysistest.Run(t, "testdata/src/typedall", typederr.Analyzer)
}

func TestUncoveredPackageIsSkipped(t *testing.T) {
	withCover(t, map[string]string{"some/other/path": ""})
	// The typed fixture is full of violations; with no cover entry for its
	// path the analyzer must stay silent. The want-comment harness cannot
	// express "expect nothing despite the comments", so run directly.
	abs, err := filepath.Abs("testdata/src/typed")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.NewLoader().LoadDir(abs, "fixture/typed")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var got []analysis.Diagnostic
	if err := analysis.Run(typederr.Analyzer, pkg, func(d analysis.Diagnostic) { got = append(got, d) }); err != nil {
		t.Fatalf("running typederr: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("typederr reported %d diagnostics on an uncovered package; want 0", len(got))
	}
}
