package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package, ready to run
// analyzers over.
type Package struct {
	Dir   string
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages with the standard library's
// source importer, sharing one file set and one import cache across every
// loaded package. It analyzes the build-selected non-test files of each
// package — the same file set go build compiles.
//
// The source importer resolves module-internal import paths through the go
// command, which is cwd-sensitive: callers must run with the working
// directory inside the module (cmd/oalint chdirs to the module root).
type Loader struct {
	fset *token.FileSet
	imp  types.ImporterFrom
}

// NewLoader builds a loader with a fresh file set and import cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// ModuleRoot walks up from dir to the enclosing go.mod directory.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("oalint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module path from root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("oalint: no module directive in %s/go.mod", root)
}

// Expand resolves package patterns against the module rooted at root: the
// "dir/..." form walks recursively (skipping testdata, hidden and
// underscore directories), anything else names one directory. Directories
// without buildable Go files are silently dropped, mirroring go list.
func Expand(root string, patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if dir != "" && !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec, pat = true, rest
		} else if pat == "..." {
			rec, pat = true, "."
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(root, dir)
		}
		if !rec {
			add(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// Load type-checks the packages under the given patterns (relative to the
// module root containing dir) and returns them in deterministic path order.
func (l *Loader) Load(dir string, patterns []string) ([]*Package, error) {
	root, err := ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := Expand(root, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		path := mod
		if rel != "." {
			path = mod + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(d, path)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. It returns *build.NoGoError when dir holds no buildable Go
// files.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l.imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("oalint: type-checking %s:\n\t%s", path, strings.Join(typeErrs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("oalint: type-checking %s: %w", path, err)
	}
	return &Package{Dir: dir, Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// Run applies one analyzer to one loaded package, sending non-suppressed
// diagnostics to report.
func Run(a *Analyzer, pkg *Package, report func(Diagnostic)) error {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		report:    report,
	}
	buildSuppressions(pass)
	return a.Run(pass)
}
