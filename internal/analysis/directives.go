package analysis

import (
	"go/ast"
	"strings"
)

// The //oalint:* directive namespace. Directives are ordinary Go directive
// comments (no space after //), so gofmt leaves them alone and godoc hides
// them:
//
//	//oalint:hotpath        — the function (or, on a package clause, every
//	                          function in the package) must stay free of
//	                          allocating constructs (see the hotpath analyzer)
//	//oalint:deterministic  — the function/package must stay free of
//	                          iteration-order, wall-clock and scheduling
//	                          nondeterminism (see the deterministic analyzer)
//	//oalint:allow <name> [reason] — suppress the named analyzer's
//	                          diagnostics on this line and the next; "all"
//	                          suppresses every analyzer. Use sparingly and
//	                          leave the reason.
const (
	DirectiveHotpath       = "hotpath"
	DirectiveDeterministic = "deterministic"
)

const directivePrefix = "//oalint:"

// hasDirective reports whether the comment group carries //oalint:<name>.
func hasDirective(g *ast.CommentGroup, name string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		rest, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		if word, _, _ := strings.Cut(rest, " "); word == name {
			return true
		}
	}
	return false
}

// MarkedFuncs returns every function declaration in the pass that the named
// directive applies to: functions carrying it in their doc comment, plus —
// when any file's package clause carries it — every function in the package.
func (p *Pass) MarkedFuncs(name string) []*ast.FuncDecl {
	wholePackage := false
	for _, f := range p.Files {
		if hasDirective(f.Doc, name) {
			wholePackage = true
			break
		}
	}
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if wholePackage || hasDirective(fn.Doc, name) {
				out = append(out, fn)
			}
		}
	}
	return out
}

// buildSuppressions indexes every //oalint:allow comment by file and line.
// The value set holds the analyzer names the comment names (space-separated
// up to a "--"- or "—"-free reason; in practice: one name, then prose).
func buildSuppressions(p *Pass) {
	p.suppress = make(map[string]map[int]map[string]bool)
	for _, f := range p.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				word, args, _ := strings.Cut(rest, " ")
				if word != "allow" {
					continue
				}
				fields := strings.Fields(args)
				if len(fields) == 0 {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				lines := p.suppress[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					p.suppress[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					lines[pos.Line] = names
				}
				// Only the first field is the analyzer name; the rest is the
				// required human justification.
				names[fields[0]] = true
			}
		}
	}
}
