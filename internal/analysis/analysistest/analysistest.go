// Package analysistest runs an analyzer over golden fixture packages and
// checks its diagnostics against // want comments — the same contract as
// golang.org/x/tools/go/analysis/analysistest, restated over the repo's
// dependency-free analysis framework.
//
// A fixture file marks each expected diagnostic on the line it occurs:
//
//	for k := range m { // want `deterministic: map iteration`
//
// The quoted (or backquoted) want argument is a regexp matched against the
// analyzer's message for a diagnostic reported on that line. Several want
// arguments on one line expect several diagnostics. Lines without a want
// comment must produce no diagnostics.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"oagrid/internal/analysis"
)

// wantRe pulls the quoted regexp arguments off a want comment.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type key struct {
	file string
	line int
}

// Run loads the fixture package in dir and applies a to it, comparing
// diagnostics against the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkg, err := analysis.NewLoader().LoadDir(abs, "fixture/"+filepath.Base(abs))
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}

	// Collect the expectations.
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{file: pos.Filename, line: pos.Line}
				for _, q := range wantRe.FindAllString(rest, -1) {
					expr := strings.Trim(q, "`")
					if strings.HasPrefix(q, `"`) {
						expr = strings.ReplaceAll(q[1:len(q)-1], `\"`, `"`)
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", pos, q, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	// Run the analyzer.
	var got []analysis.Diagnostic
	if err := analysis.Run(a, pkg, func(d analysis.Diagnostic) { got = append(got, d) }); err != nil {
		t.Fatalf("analysistest: running %s on %s: %v", a.Name, dir, err)
	}

	// Match diagnostics against expectations.
	matched := map[key][]bool{}
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range got {
		pos := pkg.Fset.Position(d.Pos)
		k := key{file: pos.Filename, line: pos.Line}
		ok := false
		for i, re := range wants[k] {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, a.Name, d.Message)
		}
	}
	var missing []string
	for k, res := range wants {
		for i, hit := range matched[k] {
			if !hit {
				missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, res[i].String()))
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("%s", m)
	}
}

// Position is a convenience re-export so fixture helpers can format
// positions consistently (kept tiny; analysistest is test-only code).
func Position(fset *token.FileSet, pos token.Pos) string { return fset.Position(pos).String() }
