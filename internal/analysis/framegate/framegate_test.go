package framegate_test

import (
	"testing"

	"oagrid/internal/analysis/analysistest"
	"oagrid/internal/analysis/framegate"
)

// TestGatedCodecIsClean pins the correctly-gated codec extract — the shape
// production internal/diet has today — to zero diagnostics.
func TestGatedCodecIsClean(t *testing.T) {
	analysistest.Run(t, "testdata/src/gated", framegate.Analyzer)
}

// TestUngatedCodeRegression is the acceptance fixture for the protocol-v5
// incident: deleting the `ver >= ProtocolV5` guard around the
// SubmitResponse.Code append (and its decoder mirror) must produce framegate
// findings, alongside the neighboring gate mistakes the fixture stages.
func TestUngatedCodeRegression(t *testing.T) {
	analysistest.Run(t, "testdata/src/ungated", framegate.Analyzer)
}
