package framegate

// WireSchema is the committed statement of the binary codec's frame
// layouts. Scope keys are "enc:<fk kind>" / "dec:<fk kind>" for the
// encoder/decoder case bodies and "hlp:<func>" for shared layout helpers.
// Base lists the fields every peer at the scope's floor version (v4)
// encodes and decodes unconditionally, in no particular order; Gated maps
// later fields to the negotiated version that introduced them. A scope
// present in Base with an empty field list is a known frame whose payload
// carries no schema-tracked fields (error strings, JSON envelopes,
// helper-delegated bodies).
//
// Editing the codec's layout without editing this file is a framegate
// finding by design: the schema diff is the reviewable record of what
// changed on the wire, exactly the review signal whose absence let the
// ungated SubmitResponse.Code append ship in PR 7.
type WireSchema struct {
	// Ignore names the bookkeeping struct types whose fields are not wire
	// payload: envelopes, headers and codec state.
	Ignore map[string]bool
	// Helpers names the functions that encode/decode a shared layout and
	// therefore form scopes of their own.
	Helpers map[string]bool
	// Base maps scope -> unconditional "Type.Field" layout.
	Base map[string][]string
	// Gated maps scope -> "Type.Field" -> minimum negotiated version.
	Gated map[string]map[string]int
}

// Schema is the active schema. A package variable rather than a constant
// structure so the golden tests can swap in fixture schemas; production use
// (cmd/oalint) always runs the committed default below.
var Schema = WireSchema{
	Ignore: map[string]bool{
		"Request":      true,
		"Response":     true,
		"FrameHeader":  true,
		"FrameDecoder": true,
		"byteReader":   true,
	},
	Helpers: map[string]bool{
		"appendExecResponse": true,
		"decodeExecResponse": true,
	},
	Base: map[string][]string{
		// ---- requests ----
		"enc:fkSubmitReq":    submitReqLayout,
		"dec:fkSubmitReq":    submitReqLayout,
		"enc:fkExecReq":      execReqLayout,
		"dec:fkExecReq":      execReqLayout,
		"enc:fkPerfReq":      perfReqLayout,
		"dec:fkPerfReq":      perfReqLayout,
		"enc:fkHeartbeatReq": heartbeatReqLayout,
		"dec:fkHeartbeatReq": heartbeatReqLayout,
		"enc:fkAttachReq":    attachReqLayout,
		"dec:fkAttachReq":    attachReqLayout,
		"enc:fkResultReq":    resultReqLayout,
		"dec:fkResultReq":    resultReqLayout,
		"enc:fkJSONReq":      {},
		"dec:fkJSONReq":      {},

		// ---- responses ----
		"enc:fkErr":        {},
		"dec:fkErr":        {},
		"enc:fkSubmitResp": submitRespLayout,
		"dec:fkSubmitResp": submitRespLayout,
		// The exec payload is entirely delegated to the helpers below.
		"enc:fkExecResp":       {},
		"dec:fkExecResp":       {},
		"enc:fkPerfResp":       perfRespLayout,
		"dec:fkPerfResp":       perfRespLayout,
		"enc:fkHeartbeatResp":  {"HeartbeatResponse.OK"},
		"dec:fkHeartbeatResp":  {"HeartbeatResponse.OK"},
		"enc:fkAttachResp":     attachRespLayout,
		"dec:fkAttachResp":     attachRespLayout,
		"enc:fkProgress":       progressLayout,
		"dec:fkProgress":       progressLayout,
		"enc:fkCampaignResult": campaignResultLayout,
		"dec:fkCampaignResult": campaignResultLayout,
		"enc:fkJSONResp":       {},
		"dec:fkJSONResp":       {},

		// ---- shared layout helpers ----
		"hlp:appendExecResponse": execRespLayout,
		"hlp:decodeExecResponse": execRespLayout,
	},
	Gated: map[string]map[string]int{
		// Protocol v5: the SubmitResponse reject-code field. Encoded only
		// when the negotiated version is >= 5 and decoded only when the
		// frame header says >= 5 — the retrofit that fixed the PR 7 break.
		"enc:fkSubmitResp": {"SubmitResponse.Code": 5},
		"dec:fkSubmitResp": {"SubmitResponse.Code": 5},
		// Protocol v7: the elastic-fleet heartbeat fields — the SeD's speed
		// factor and its graceful-drain flag — gated exactly like the v5
		// retrofit so pre-v7 peers keep byte-exact v4 heartbeat frames.
		"enc:fkHeartbeatReq": {"HeartbeatRequest.Speed": 7, "HeartbeatRequest.Draining": 7},
		"dec:fkHeartbeatReq": {"HeartbeatRequest.Speed": 7, "HeartbeatRequest.Draining": 7},
	},
}

// Shared layouts, spelled once so the encoder and decoder halves cannot
// drift apart in this file either.
var (
	submitReqLayout = []string{
		"SubmitRequest.Scenarios", "SubmitRequest.Months", "SubmitRequest.Heuristic",
		"SubmitRequest.Wait", "SubmitRequest.Progress", "SubmitRequest.Priority",
		"SubmitRequest.Deadline", "SubmitRequest.Labels",
	}
	execReqLayout      = []string{"ExecRequest.Months", "ExecRequest.Heuristic", "ExecRequest.ScenarioIDs"}
	perfReqLayout      = []string{"PerfRequest.Scenarios", "PerfRequest.Months", "PerfRequest.Heuristic"}
	heartbeatReqLayout = []string{"HeartbeatRequest.Cluster", "HeartbeatRequest.Addr", "HeartbeatRequest.Procs", "HeartbeatRequest.InFlight"}
	attachReqLayout    = []string{"AttachRequest.ID", "AttachRequest.Progress"}
	resultReqLayout    = []string{"ResultRequest.ID"}

	submitRespLayout = []string{
		"SubmitResponse.ID", "SubmitResponse.Accepted", "SubmitResponse.Reason", "SubmitResponse.QueueDepth",
	}
	perfRespLayout   = []string{"PerfResponse.Cluster", "PerfResponse.Procs", "PerfResponse.Vector"}
	attachRespLayout = []string{"AttachResponse.ID", "AttachResponse.Found", "AttachResponse.Status", "AttachResponse.Done", "AttachResponse.Total"}
	progressLayout   = []string{
		"ProgressUpdate.ID", "ProgressUpdate.Stage", "ProgressUpdate.Done", "ProgressUpdate.Total",
		"ProgressUpdate.Requeued", "ProgressUpdate.Planned", "ProgressUpdate.Chunk",
		"PlannedChunk.Cluster", "PlannedChunk.Scenarios",
	}
	campaignResultLayout = []string{
		"CampaignResult.ID", "CampaignResult.Status", "CampaignResult.Makespan", "CampaignResult.Requeues",
		"CampaignResult.Done", "CampaignResult.Total", "CampaignResult.Err", "CampaignResult.Reports",
	}
	execRespLayout = []string{
		"ExecResponse.Cluster", "ExecResponse.Makespan", "ExecResponse.Scenarios", "ExecResponse.Round",
		"ExecResponse.FirstScenario", "ExecResponse.Allocation",
		"Allocation.Groups", "Allocation.PostProcs", "Allocation.Heuristic",
	}
)
