package gated

// Minimal stand-ins for the codec's primitives; the analyzer only needs
// them to type-check, not to round-trip bytes.

func beginFrame(b []byte, ver, kind byte) ([]byte, int) {
	return append(b, 0xF7, 'O', 'A', '4', ver, kind, 0, 0, 0, 0, 0, 0), len(b)
}

func finishFrame(b []byte, start int) ([]byte, error) { _ = start; return b, nil }

func appendU64(b []byte, v uint64) []byte { return append(b, byte(v)) }
func appendInt(b []byte, v int) []byte    { return appendU64(b, uint64(int64(v))) }
func appendStr(b []byte, s string) []byte { return append(b, s...) }
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// byteReader is the bounds-checked payload walker (bookkeeping; ignored).
type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) u64(what string) uint64 { _ = what; return 0 }
func (r *byteReader) int(what string) int    { return int(int64(r.u64(what))) }
func (r *byteReader) bool(what string) bool  { _ = what; return false }
func (r *byteReader) done() error            { return r.err }

// FrameDecoder holds decode state (bookkeeping; ignored).
type FrameDecoder struct{ Retain bool }

func (d *FrameDecoder) str(r *byteReader, what string) string { _ = r; _ = what; return "" }
