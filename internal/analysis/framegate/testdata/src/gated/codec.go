// Package gated is the correctly-gated extract of internal/diet's
// fkSubmitResp codec: the shape the framegate analyzer must accept without
// a single diagnostic. The v5 Code field is guarded on both halves exactly
// as the production codec guards it.
package gated

// Protocol versions, as in internal/diet/wire.go.
const (
	ProtocolV4 = 4
	ProtocolV5 = 5
)

// Frame kinds under test.
const (
	fkErr        = 0x21
	fkSubmitResp = 0x22
)

// Response is the envelope (bookkeeping; ignored by the schema).
type Response struct {
	Version int
	Err     string
	Submit  *SubmitResponse
}

// SubmitResponse is the wire struct whose layout the schema commits.
type SubmitResponse struct {
	ID         uint64
	Accepted   bool
	Reason     string
	QueueDepth int
	Code       string
}

// FrameHeader mirrors the parsed v4 header (bookkeeping; ignored).
type FrameHeader struct {
	Version byte
	Kind    byte
}

// AppendResponseFrame is the encoder half, gates intact.
func AppendResponseFrame(buf []byte, resp *Response) ([]byte, error) {
	ver := resp.Version
	if ver < ProtocolV4 {
		ver = ProtocolV4
	}
	switch {
	case resp.Err != "":
		b, start := beginFrame(buf, byte(ver), fkErr)
		b = appendStr(b, resp.Err)
		return finishFrame(b, start)
	case resp.Submit != nil:
		b, start := beginFrame(buf, byte(ver), fkSubmitResp)
		r := resp.Submit
		b = appendU64(b, r.ID)
		b = appendBool(b, r.Accepted)
		b = appendStr(b, r.Reason)
		b = appendInt(b, r.QueueDepth)
		// Code is a v5 field: a frame stamped with a lower negotiated
		// version must stay byte-exact for pre-v5 peers.
		if ver >= ProtocolV5 {
			b = appendStr(b, r.Code)
		}
		return finishFrame(b, start)
	default:
		return buf, nil
	}
}

// DecodeResponseFrame is the decoder half, gates intact.
func DecodeResponseFrame(d *FrameDecoder, hdr FrameHeader, payload []byte) (*Response, error) {
	resp := &Response{Version: int(hdr.Version)}
	r := &byteReader{b: payload}
	switch hdr.Kind {
	case fkErr:
		resp.Err = d.str(r, "error message")
	case fkSubmitResp:
		s := &SubmitResponse{
			ID:       r.u64("submit id"),
			Accepted: r.bool("submit accepted"),
			Reason:   d.str(r, "submit reason"),
		}
		s.QueueDepth = r.int("submit queue depth")
		// Mirror the encoder's version gate: a v4 daemon's frame ends at
		// QueueDepth.
		if hdr.Version >= ProtocolV5 {
			s.Code = d.str(r, "submit reject code")
		}
		resp.Submit = s
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return resp, nil
}
