// Package ungated reproduces the protocol-v5 incident verbatim — the PR 7
// change that appended SubmitResponse.Code to the fkSubmitResp frame with
// no negotiated-version gate, breaking every pre-v5 peer whose strict
// decoder rejects trailing payload bytes — plus the neighboring gate
// mistakes framegate must catch: a base field moved behind a gate, a gate
// pinned at the wrong version, a never-committed field, a dropped base
// field and a frame kind missing from the schema entirely.
package ungated

// Protocol versions, as in internal/diet/wire.go.
const (
	ProtocolV4 = 4
	ProtocolV5 = 5
)

// Frame kinds under test. fkTrace is deliberately absent from the schema.
const (
	fkErr        = 0x21
	fkSubmitResp = 0x22
	fkTrace      = 0x29
)

// Response is the envelope (bookkeeping; ignored by the schema).
type Response struct {
	Version int
	Err     string
	Submit  *SubmitResponse
	Trace   *TraceFrame
}

// SubmitResponse carries one never-committed field (Station) on top of the
// production layout.
type SubmitResponse struct {
	ID         uint64
	Accepted   bool
	Reason     string
	QueueDepth int
	Code       string
	Station    string
}

// TraceFrame is the payload of the unscheduled frame kind.
type TraceFrame struct {
	Span string
}

// FrameHeader mirrors the parsed v4 header (bookkeeping; ignored).
type FrameHeader struct {
	Version byte
	Kind    byte
}

// AppendResponseFrame is the encoder half with the gates wrong.
func AppendResponseFrame(buf []byte, resp *Response) ([]byte, error) {
	ver := resp.Version
	if ver < ProtocolV4 {
		ver = ProtocolV4
	}
	switch {
	case resp.Err != "":
		b, start := beginFrame(buf, byte(ver), fkErr)
		b = appendStr(b, resp.Err)
		return finishFrame(b, start)
	case resp.Submit != nil:
		b, start := beginFrame(buf, byte(ver), fkSubmitResp)
		r := resp.Submit
		b = appendU64(b, r.ID)
		b = appendBool(b, r.Accepted)
		b = appendStr(b, r.Reason)
		// A base field moved behind a gate: pre-v5 peers stop receiving it.
		if ver >= ProtocolV5 {
			b = appendInt(b, r.QueueDepth) // want `SubmitResponse\.QueueDepth is part of enc:fkSubmitResp's base layout but sits behind a v5 gate`
		}
		// The PR 7 bug, verbatim: the v5 field appended unconditionally.
		b = appendStr(b, r.Code) // want `SubmitResponse\.Code is a v5 field of enc:fkSubmitResp encoded/decoded without its negotiated-version gate`
		// A field nobody committed to the schema.
		b = appendStr(b, r.Station) // want `SubmitResponse\.Station is not part of enc:fkSubmitResp's committed wire layout`
		return finishFrame(b, start)
	case resp.Trace != nil: // want `frame scope enc:fkTrace is not in the committed framegate schema`
		b, start := beginFrame(buf, byte(ver), fkTrace)
		b = appendStr(b, resp.Trace.Span)
		return finishFrame(b, start)
	default:
		return buf, nil
	}
}

// DecodeResponseFrame is the decoder half with its own gate mistakes.
func DecodeResponseFrame(d *FrameDecoder, hdr FrameHeader, payload []byte) (*Response, error) {
	resp := &Response{Version: int(hdr.Version)}
	r := &byteReader{b: payload}
	switch hdr.Kind {
	case fkErr:
		resp.Err = d.str(r, "error message")
	case fkSubmitResp: // want `dec:fkSubmitResp's base-layout field SubmitResponse\.Reason is no longer encoded/decoded unconditionally`
		s := &SubmitResponse{
			ID:       r.u64("submit id"),
			Accepted: r.bool("submit accepted"),
			// Reason dropped: old peers' payload offsets shift under them.
		}
		s.QueueDepth = r.int("submit queue depth")
		// Gate pinned at the wrong version: desynchronized codec halves.
		if hdr.Version >= 6 {
			s.Code = d.str(r, "submit reject code") // want `SubmitResponse\.Code is gated at v6 here but the schema \(and the other codec half\) pin it to v5`
		}
		// Version-gated, but never committed to the schema.
		if hdr.Version >= 7 {
			s.Station = d.str(r, "submit station") // want `SubmitResponse\.Station is version-gated but absent from the framegate schema`
		}
		resp.Submit = s
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return resp, nil
}
