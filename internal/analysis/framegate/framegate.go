// Package framegate enforces the wire protocol's version-gating invariant
// in internal/diet's binary codec — the compile-time gate for the incident
// class behind protocol v5: PR 7 appended SubmitResponse.Code to the
// fkSubmitResp frame unconditionally, which broke every mixed-version
// submit in both directions against the strict trailing-bytes decoder, and
// had to be retrofitted as `if ver >= ProtocolV5` / `if hdr.Version >=
// ProtocolV5` guards (the fix that became protocol v5).
//
// The analyzer works against a committed wire schema (schema.go): for every
// fk* frame kind it knows the base (v4) field layout and the
// version-gated fields with their minimum negotiated version. Encoder
// scopes are the case bodies that call beginFrame(..., fkX); decoder
// scopes are the case bodies of a switch over a frame header's .Kind
// field; shared layout helpers (appendExecResponse, decodeExecResponse)
// are scopes of their own. Within a scope it flags:
//
//   - a schema-gated field encoded or decoded without its `ver >=
//     ProtocolVN` / `hdr.Version >= N` guard — the exact v5 Code bug;
//   - a field that is in neither the base layout nor the gated set —
//     a brand-new ungated frame field, the bug about to be reintroduced;
//   - a gate at the wrong version, which would desynchronize the encoder
//     and decoder halves (both sides check against the same schema entry);
//   - a base-layout field moved under a version guard (old peers would
//     stop receiving it) and a base or gated field that vanished from the
//     scope entirely (old peers would mis-parse what remains).
//
// Changing the wire layout therefore takes two deliberate edits — the
// codec and the schema — and the schema diff is the reviewable statement
// of what the frame now says on the wire.
package framegate

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"oagrid/internal/analysis"
)

// Analyzer is the framegate checker.
var Analyzer = &analysis.Analyzer{
	Name: "framegate",
	Doc:  "flags frame fields encoded/decoded without their negotiated-version gate in the binary codec",
	Run:  run,
}

// ref is one field reference inside a scope.
type ref struct {
	field string // "Type.Field"
	gate  int    // 0 = unconditional, else the guard's minimum version
	pos   token.Pos
}

// scopeKind distinguishes encoder and decoder scopes in diagnostics and
// schema keys.
const (
	encScope = "enc"
	decScope = "dec"
)

func run(pass *analysis.Pass) error {
	scopes := map[string][]ref{}      // schema key -> field references
	anchors := map[string]token.Pos{} // schema key -> scope position for whole-scope diagnostics

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if Schema.Helpers[fn.Name.Name] {
				key := "hlp:" + fn.Name.Name
				anchors[key] = fn.Pos()
				collectStmts(pass, fn.Body.List, 0, key, scopes)
				continue
			}
			collectCases(pass, fn, scopes, anchors)
		}
	}
	enforce(pass, scopes, anchors)
	return nil
}

// collectCases finds the encoder and decoder case bodies inside fn and
// collects their field references.
func collectCases(pass *analysis.Pass, fn *ast.FuncDecl, scopes map[string][]ref, anchors map[string]token.Pos) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		decoder := isKindSwitch(sw)
		for _, clause := range sw.Body.List {
			cc, ok := clause.(*ast.CaseClause)
			if !ok {
				continue
			}
			var key string
			if decoder {
				kind := caseKindName(cc)
				if kind == "" {
					continue
				}
				key = decScope + ":" + kind
			} else {
				kind := beginFrameKind(cc)
				if kind == "" {
					continue
				}
				key = encScope + ":" + kind
			}
			anchors[key] = cc.Pos()
			if _, ok := scopes[key]; !ok {
				scopes[key] = nil // scope exists even when it references no fields
			}
			collectStmts(pass, cc.Body, 0, key, scopes)
		}
		return true
	})
}

// isKindSwitch reports whether sw switches over a frame header's Kind.
func isKindSwitch(sw *ast.SwitchStmt) bool {
	sel, ok := sw.Tag.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Kind"
}

// caseKindName returns the fk* constant a decoder case matches ("" when the
// clause is a default or matches something else).
func caseKindName(cc *ast.CaseClause) string {
	for _, e := range cc.List {
		if id, ok := e.(*ast.Ident); ok && strings.HasPrefix(id.Name, "fk") {
			return id.Name
		}
	}
	return ""
}

// beginFrameKind returns the fk* constant the clause passes to beginFrame
// ("" when the clause opens no frame).
func beginFrameKind(cc *ast.CaseClause) string {
	kind := ""
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || kind != "" {
				return kind == ""
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "beginFrame" && len(call.Args) == 3 {
				if k, ok := call.Args[2].(*ast.Ident); ok {
					kind = k.Name
				}
			}
			return kind == ""
		})
		if kind != "" {
			break
		}
	}
	return kind
}

// collectStmts walks statements, tracking the active version gate: entering
// the body of `if ver >= ProtocolVN` (or `hdr.Version >= N`) sets the gate
// to N; everything else inherits.
func collectStmts(pass *analysis.Pass, stmts []ast.Stmt, gate int, key string, scopes map[string][]ref) {
	for _, stmt := range stmts {
		collectStmt(pass, stmt, gate, key, scopes)
	}
}

func collectStmt(pass *analysis.Pass, stmt ast.Stmt, gate int, key string, scopes map[string][]ref) {
	switch s := stmt.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			collectStmt(pass, s.Init, gate, key, scopes)
		}
		if v := guardVersion(pass, s.Cond); v > 0 {
			collectStmts(pass, s.Body.List, v, key, scopes)
		} else {
			collectExpr(pass, s.Cond, gate, key, scopes)
			collectStmts(pass, s.Body.List, gate, key, scopes)
		}
		if s.Else != nil {
			collectStmt(pass, s.Else, gate, key, scopes)
		}
	case *ast.BlockStmt:
		collectStmts(pass, s.List, gate, key, scopes)
	case *ast.ForStmt:
		if s.Init != nil {
			collectStmt(pass, s.Init, gate, key, scopes)
		}
		if s.Cond != nil {
			collectExpr(pass, s.Cond, gate, key, scopes)
		}
		if s.Post != nil {
			collectStmt(pass, s.Post, gate, key, scopes)
		}
		collectStmts(pass, s.Body.List, gate, key, scopes)
	case *ast.RangeStmt:
		collectExpr(pass, s.X, gate, key, scopes)
		collectStmts(pass, s.Body.List, gate, key, scopes)
	case *ast.SwitchStmt:
		// A nested switch inside a case body (none today) keeps the gate.
		if s.Tag != nil {
			collectExpr(pass, s.Tag, gate, key, scopes)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					collectExpr(pass, e, gate, key, scopes)
				}
				collectStmts(pass, cc.Body, gate, key, scopes)
			}
		}
	default:
		ast.Inspect(stmt, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				collectExpr(pass, e, gate, key, scopes)
				return false
			}
			return true
		})
	}
}

// collectExpr records every wire-struct field the expression touches.
func collectExpr(pass *analysis.Pass, e ast.Expr, gate int, key string, scopes map[string][]ref) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if field, ok := fieldOf(pass, n); ok {
				scopes[key] = append(scopes[key], ref{field: field, gate: gate, pos: n.Sel.Pos()})
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			name, isStruct := namedStruct(tv.Type)
			if !isStruct || Schema.Ignore[name] {
				return true
			}
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						scopes[key] = append(scopes[key], ref{field: name + "." + id.Name, gate: gate, pos: id.Pos()})
					}
				}
			}
		}
		return true
	})
}

// fieldOf resolves a selector to "Type.Field" when it selects a struct
// field of a non-ignored named type.
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	name, isStruct := namedStruct(s.Recv())
	if !isStruct || Schema.Ignore[name] {
		return "", false
	}
	return name + "." + sel.Sel.Name, true
}

// namedStruct unwraps pointers and reports the named struct type's name.
func namedStruct(t types.Type) (string, bool) {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		if ptr, ok := t.(*types.Pointer); ok {
			named, ok = ptr.Elem().(*types.Named)
			if !ok {
				return "", false
			}
		} else {
			return "", false
		}
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return "", false
	}
	return named.Obj().Name(), true
}

// guardVersion recognizes a negotiated-version guard in a condition: any
// conjunct of the shape `<version-expr> >= <const>` where the left side is
// an identifier named ver/version or a selector ending .Version, and the
// right side is an integer constant (ProtocolVN or a literal). Returns the
// version, or 0 when the condition guards something else.
func guardVersion(pass *analysis.Pass, cond ast.Expr) int {
	version := 0
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || version != 0 {
			return version == 0
		}
		if be.Op != token.GEQ || !isVersionExpr(be.X) {
			return true
		}
		tv, ok := pass.TypesInfo.Types[be.Y]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			return true
		}
		if v, ok := constant.Int64Val(tv.Value); ok && v > 0 {
			version = int(v)
		}
		return version == 0
	})
	return version
}

// isVersionExpr matches the codec's version spellings: `ver`, `version`, a
// selector ending in .Version, or a conversion of either.
func isVersionExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		n := strings.ToLower(e.Name)
		return n == "ver" || n == "version"
	case *ast.SelectorExpr:
		return e.Sel.Name == "Version"
	case *ast.CallExpr: // int(hdr.Version)
		if len(e.Args) == 1 {
			return isVersionExpr(e.Args[0])
		}
	case *ast.ParenExpr:
		return isVersionExpr(e.X)
	}
	return false
}

// enforce checks every collected scope against the schema.
func enforce(pass *analysis.Pass, scopes map[string][]ref, anchors map[string]token.Pos) {
	keys := make([]string, 0, len(scopes))
	for k := range scopes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		base, baseKnown := Schema.Base[key]
		gated := Schema.Gated[key]
		if !baseKnown && gated == nil {
			pass.Reportf(anchors[key], "frame scope %s is not in the committed framegate schema (internal/analysis/framegate/schema.go); new frame kinds and layout helpers must be added there deliberately", key)
			continue
		}
		baseSet := map[string]bool{}
		for _, f := range base {
			baseSet[f] = true
		}
		seenBase := map[string]bool{}
		seenGated := map[string]bool{}
		for _, r := range scopes[key] {
			switch {
			case r.gate == 0 && baseSet[r.field]:
				seenBase[r.field] = true
			case r.gate == 0 && gated[r.field] > 0:
				pass.Reportf(r.pos, "%s is a v%d field of %s encoded/decoded without its negotiated-version gate; wrap it in `if ver >= ProtocolV%d` (encoder) / `if hdr.Version >= ProtocolV%d` (decoder) — this is the protocol-v5 SubmitResponse.Code bug pattern", r.field, gated[r.field], key, gated[r.field], gated[r.field])
				seenGated[r.field] = true // present, just misgated: don't also report it missing
			case r.gate == 0:
				pass.Reportf(r.pos, "%s is not part of %s's committed wire layout; an ungated new frame field breaks every pre-existing peer (the v5 Code incident) — gate it behind the next protocol version and add it to the framegate schema", r.field, key)
			case gated[r.field] > 0 && gated[r.field] != r.gate:
				pass.Reportf(r.pos, "%s is gated at v%d here but the schema (and the other codec half) pin it to v%d; mismatched gates desynchronize encoder and decoder", r.field, r.gate, gated[r.field])
				seenGated[r.field] = true
			case gated[r.field] > 0:
				seenGated[r.field] = true
			case baseSet[r.field]:
				pass.Reportf(r.pos, "%s is part of %s's base layout but sits behind a v%d gate; pre-v%d peers would stop receiving it and mis-parse the rest of the frame", r.field, key, r.gate, r.gate)
				seenBase[r.field] = true
			default:
				pass.Reportf(r.pos, "%s is version-gated but absent from the framegate schema; add it to Gated[%q] so both codec halves agree on v%d", r.field, key, r.gate)
			}
		}
		for _, f := range base {
			if !seenBase[f] {
				pass.Reportf(anchors[key], "%s's base-layout field %s is no longer encoded/decoded unconditionally; removing or reordering base fields breaks every existing peer (update the schema only with a protocol bump)", key, f)
			}
		}
		gatedFields := make([]string, 0, len(gated))
		for f := range gated {
			gatedFields = append(gatedFields, f)
		}
		sort.Strings(gatedFields)
		for _, f := range gatedFields {
			if !seenGated[f] {
				pass.Reportf(anchors[key], "%s's gated field %s (v%d) is missing its guarded encode/decode; peers at or above v%d expect it", key, f, gated[f], gated[f])
			}
		}
	}
}
