package hotpath_test

import (
	"testing"

	"oagrid/internal/analysis/analysistest"
	"oagrid/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata/src/hot", hotpath.Analyzer)
}
