// Package hotpath is the source-level half of the repo's zero-allocation
// discipline. The v4 wire codec, the progress fan-out and the queue-position
// path are pinned at 0 allocs/op by benchmarks and TestZeroAllocHotKinds —
// but a benchmark only fails after the regression ships and only on the
// inputs it measures. This analyzer flags the allocating constructs most
// often introduced by casual edits inside functions marked //oalint:hotpath:
//
//   - fmt.Sprint/Sprintf/Sprintln/Append* calls: every call boxes its
//     arguments into ...any and allocates the result. (fmt.Errorf is
//     deliberately exempt — error paths are off the hot path by
//     definition, and typederr governs their shape instead.)
//   - string concatenation with + / +=, which allocates per evaluation.
//   - function literals, whose captures escape to the heap; hoist the
//     closure or restructure (sync.Once-style cached closures belong in a
//     cold constructor, not a marked function).
//   - append to a slice the function declared empty (var s []T or
//     s := []T{}) and never sized: growth reallocates along the way;
//     preallocate with make(cap) or reuse a scratch buffer.
//   - explicit conversions to an interface type, which box the operand.
//
// Deliberate cold-fallback allocations inside a hot function (a scratch
// buffer growing to a new high-water mark, an intern-table miss) carry an
// //oalint:allow hotpath <reason> suppression at the call site, keeping
// each one a reviewed decision instead of an accident.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"oagrid/internal/analysis"
)

// Analyzer is the hotpath checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "flags allocating constructs (fmt.Sprint*, string concat, closures, un-capped appends, interface boxing) in //oalint:hotpath code",
	Run:  run,
}

// sprintFamily lists the allocating fmt formatters (Errorf exempt; see the
// package comment).
var sprintFamily = map[string]bool{
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Append": true, "Appendf": true, "Appendln": true,
}

func run(pass *analysis.Pass) error {
	for _, fn := range pass.MarkedFuncs(analysis.DirectiveHotpath) {
		checkFunc(pass, fn)
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	uncapped := emptySlices(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n, uncapped)
		case *ast.BinaryExpr:
			// Constant folds ("a" + "b") cost nothing at run time.
			if n.Op == token.ADD && isString(pass, n.X) && !isConst(pass, n) {
				pass.Reportf(n.OpPos, "string concatenation allocates on a hot path; append into a reused []byte instead")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass, n.Lhs[0]) {
				pass.Reportf(n.TokPos, "string += allocates on a hot path; append into a reused []byte instead")
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal on a hot path captures to the heap; hoist it to a declaration or a struct field")
			return false // the literal's body is not itself marked
		}
		return true
	})
}

// checkCall flags fmt.Sprint* calls, interface-boxing conversions and
// appends to never-sized local slices.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, uncapped map[types.Object]bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" && sprintFamily[fun.Sel.Name] {
				pass.Reportf(call.Pos(), "fmt.%s allocates (formatting state + boxed arguments) on a hot path; use strconv or append helpers", fun.Sel.Name)
			}
		}
	case *ast.Ident:
		if fun.Name == "append" && len(call.Args) > 0 {
			if id, ok := call.Args[0].(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && uncapped[obj] {
					pass.Reportf(call.Pos(), "append to %s grows an un-capped fresh slice on a hot path; preallocate with make(len 0, cap) or reuse a scratch buffer", id.Name)
				}
			}
		}
	}
	// Interface boxing through an explicit conversion: T(x) where T is an
	// interface and x is concrete.
	if len(call.Args) == 1 {
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && types.IsInterface(tv.Type) {
			if atv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && atv.Type != nil && !types.IsInterface(atv.Type) {
				pass.Reportf(call.Pos(), "conversion to %s boxes its operand on a hot path", types.ExprString(call.Fun))
			}
		}
	}
}

// emptySlices collects the function's local slice variables declared with
// no backing array (var s []T, s := []T{}) that are never re-made with a
// capacity, the targets of the un-capped-append check.
func emptySlices(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	empty := map[types.Object]bool{}
	sized := map[types.Object]bool{}
	note := func(id *ast.Ident, rhs ast.Expr) {
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
			return
		}
		switch r := rhs.(type) {
		case nil:
			empty[obj] = true // var s []T
		case *ast.CompositeLit:
			if len(r.Elts) == 0 {
				empty[obj] = true // s := []T{}
			} else {
				sized[obj] = true
			}
		default:
			sized[obj] = true // make(...), a call result, a slice expr, ...
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						var rhs ast.Expr
						if i < len(vs.Values) {
							rhs = vs.Values[i]
						}
						note(name, rhs)
					}
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				// `s = append(s, ...)` must not count as re-sizing s.
				if call, ok := n.Rhs[i].(*ast.CallExpr); ok {
					if fid, ok := call.Fun.(*ast.Ident); ok && fid.Name == "append" {
						continue
					}
				}
				note(id, n.Rhs[i])
			}
		}
		return true
	})
	for obj := range sized {
		delete(empty, obj)
	}
	return empty
}

// isConst reports whether e folded to a compile-time constant.
func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// isString reports whether e's static type is (an alias of) string.
func isString(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
