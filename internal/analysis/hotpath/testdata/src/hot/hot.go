// Package hot exercises the hotpath analyzer.
package hot

import (
	"fmt"
	"strconv"
)

//oalint:hotpath
func sprint(n int) string {
	return fmt.Sprintf("n=%d", n) // want `fmt.Sprintf allocates`
}

//oalint:hotpath
func sprintAppend(buf []byte, n int) []byte {
	return fmt.Appendf(buf, "%d", n) // want `fmt.Appendf allocates`
}

//oalint:hotpath
func errorPathExempt(err error) error {
	return fmt.Errorf("hot: wrapping is off the hot path: %w", err)
}

//oalint:hotpath
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//oalint:hotpath
func constFold() string {
	return "a" + "b" // folded at compile time, costs nothing
}

//oalint:hotpath
func plusAssign(s string) string {
	s += "!" // want `string \+= allocates`
	return s
}

//oalint:hotpath
func closure(xs []int) int {
	f := func() int { return len(xs) } // want `function literal on a hot path`
	return f()
}

//oalint:hotpath
func growingAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2) // want `append to out grows an un-capped fresh slice`
	}
	return out
}

//oalint:hotpath
func preallocated(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

//oalint:hotpath
func box(v int) any {
	return any(v) // want `conversion to any boxes its operand`
}

//oalint:hotpath
func fastPath(n int64, buf []byte) []byte {
	return strconv.AppendInt(buf, n, 10)
}

//oalint:hotpath
func internMiss(k string, tbl map[string]string) string {
	v, ok := tbl[k]
	if !ok {
		v = k + ":" //oalint:allow hotpath intern-table miss is the cold branch
		tbl[k] = v
	}
	return v
}

// unmarked code may allocate freely.
func unmarked(n int) string {
	return fmt.Sprintf("%d", n)
}
