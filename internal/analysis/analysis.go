// Package analysis is the repo's static-analysis framework: a deliberate,
// dependency-free mirror of the golang.org/x/tools/go/analysis API shape,
// built on go/ast + go/types only. The repo carries no third-party modules
// (and its CI images build offline), so the x/tools driver stack is out of
// reach — but the Analyzer/Pass/Diagnostic contract is small enough to
// restate exactly, which keeps every checker source-compatible with the
// upstream API should the dependency ever become available.
//
// The analyzers themselves live in subpackages (framegate, deterministic,
// hotpath, typederr); cmd/oalint is the multichecker driver and
// analysistest is the golden-fixture harness.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. The shape matches
// golang.org/x/tools/go/analysis.Analyzer for the fields this repo uses.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //oalint:allow
	// suppressions. By convention it is a single lowercase word.
	Name string
	// Doc is the analyzer's help text; the first line is its summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one analyzed package through an Analyzer.Run invocation.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report receives every non-suppressed diagnostic.
	report func(Diagnostic)
	// suppress maps file -> line -> analyzer names allowed on that line
	// (built once per package from //oalint:allow comments).
	suppress map[string]map[int]map[string]bool
}

// Diagnostic is one finding, positioned at Pos.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a diagnostic unless an //oalint:allow comment on the same
// line (or the line above) names this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if lines, ok := p.suppress[position.Filename]; ok {
		for _, ln := range [2]int{position.Line, position.Line - 1} {
			if names, ok := lines[ln]; ok && (names[p.Analyzer.Name] || names["all"]) {
				return
			}
		}
	}
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}
