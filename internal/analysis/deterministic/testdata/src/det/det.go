// Package det exercises the deterministic analyzer.
package det

import (
	"math/rand"
	"sort"
	"time"
)

//oalint:deterministic
func mapOrderLeak(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		total += v
	}
	return total
}

//oalint:deterministic
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

//oalint:deterministic
func collectNeverSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is nondeterministic`
		keys = append(keys, k)
	}
	return keys
}

//oalint:deterministic
func wallClock() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

//oalint:deterministic
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock`
}

//oalint:deterministic
func globalRand() float64 {
	return rand.Float64() // want `rand.Float64 samples the unseeded process-global generator`
}

//oalint:deterministic
func seededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

//oalint:deterministic
func racingFanIn(a, b chan int) int {
	select { // want `select over 2 channels resolves ready cases at random`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

//oalint:deterministic
func pollOne(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}

//oalint:deterministic
func suppressed(m map[string]int) int {
	n := 0
	//oalint:allow deterministic cardinality is order-independent
	for range m {
		n++
	}
	return n
}

// unmarked code is out of scope however nondeterministic it is.
func unmarked() time.Time {
	return time.Now()
}
