package deterministic_test

import (
	"testing"

	"oagrid/internal/analysis/analysistest"
	"oagrid/internal/analysis/deterministic"
)

func TestDeterministic(t *testing.T) {
	analysistest.Run(t, "testdata/src/det", deterministic.Analyzer)
}
