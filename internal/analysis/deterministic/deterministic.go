// Package deterministic enforces the repo's bit-identical reproducibility
// discipline at the source level. Every PR since PR 1 carries an acceptance
// test asserting that parallel, restarted, failed-over and cross-version
// runs produce byte-for-byte identical campaign results; this analyzer
// turns the three incident classes those tests keep catching into
// compile-time findings inside code marked //oalint:deterministic:
//
//   - ranging over a map: Go randomizes iteration order per run, so any
//     map-order-dependent output (report assembly, stats merging, encoded
//     label sets) diverges between bit-identical runs. The one allowed
//     shape is the collect-then-sort idiom — a range whose body only
//     appends to a slice that the same function later sorts.
//   - wall-clock reads (time.Now / time.Since / time.Until): virtual-time
//     evaluation is what makes the paper's figures reproducible; a
//     wall-clock read in a result path ties output to scheduling.
//   - the unseeded global math/rand generators, whose sequences differ per
//     process. Seeded generators built with rand.New(rand.NewSource(seed))
//     stay available — jitter in the engine is deterministic noise.
//   - select statements with several live communication cases: when more
//     than one case is ready the runtime picks uniformly at random, so a
//     result-ordering path must not fan in through a bare select.
package deterministic

import (
	"go/ast"
	"go/types"

	"oagrid/internal/analysis"
)

// Analyzer is the deterministic checker.
var Analyzer = &analysis.Analyzer{
	Name: "deterministic",
	Doc:  "flags map-iteration, wall-clock, global-rand and select nondeterminism in //oalint:deterministic code",
	Run:  run,
}

// wallClock lists the time package's wall-clock reads. time.Parse, unit
// constants and Duration arithmetic stay legal — only sampling the clock is
// nondeterministic.
var wallClock = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the math/rand package-level functions that build
// explicitly seeded state rather than sampling the shared global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, fn := range pass.MarkedFuncs(analysis.DirectiveDeterministic) {
		checkFunc(pass, fn)
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			checkRange(pass, fn, n)
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.SelectStmt:
			checkSelect(pass, n)
		}
		return true
	})
}

// checkRange flags ranging over a map unless the loop is a pure
// collect-into-a-slice loop whose slice the function later sorts.
func checkRange(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if target, ok := collectTarget(rng); ok && sortedAfter(pass, fn, rng, target) {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration order is nondeterministic in a deterministic path; collect into a slice and sort (or suppress with //oalint:allow deterministic <reason>)")
}

// collectTarget matches a loop body consisting of exactly one statement of
// the form `x = append(x, ...)` and returns x's printed form.
func collectTarget(rng *ast.RangeStmt) (string, bool) {
	if len(rng.Body.List) != 1 {
		return "", false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return "", false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return "", false
	}
	lhs := types.ExprString(asg.Lhs[0])
	if types.ExprString(call.Args[0]) != lhs {
		return "", false
	}
	return lhs, true
}

// sortedAfter reports whether, after the range statement, the function
// passes target to a sort.* or slices.Sort* call.
func sortedAfter(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, target string) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg := packageOf(pass, sel); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkCall flags wall-clock reads and global math/rand sampling.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch packageOf(pass, sel) {
	case "time":
		if wallClock[sel.Sel.Name] {
			pass.Reportf(call.Pos(), "time.%s reads the wall clock in a deterministic path; thread the timestamp in as data", sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[sel.Sel.Name] {
			pass.Reportf(call.Pos(), "rand.%s samples the unseeded process-global generator in a deterministic path; use rand.New(rand.NewSource(seed))", sel.Sel.Name)
		}
	}
}

// checkSelect flags selects that can choose between several ready cases.
func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	comms := 0
	for _, clause := range sel.Body.List {
		if c, ok := clause.(*ast.CommClause); ok && c.Comm != nil {
			comms++
		}
	}
	if comms >= 2 {
		pass.Reportf(sel.Pos(), "select over %d channels resolves ready cases at random in a deterministic path; serialize the fan-in or order results by index", comms)
	}
}

// packageOf resolves a selector's qualifier to its package path ("" when the
// qualifier is not a package name).
func packageOf(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pkg.Imported().Path()
}
