package realrun

import (
	"oagrid/internal/climate/field"
	"oagrid/internal/core"
	"oagrid/internal/engine"
	"oagrid/internal/platform"
)

// Backend adapts real execution to the engine.Evaluator interface, making
// the live toy-model runner the third pluggable evaluator next to the
// analytical model and the event-driven executor. Where those two report
// virtual seconds, Backend reports measured wall-clock seconds — the paper's
// "verify our simulations by real experiments" loop.
//
// A Backend is stateless between Evaluate calls; each call lays its scenario
// directories out under Root. Keep workloads tiny (every month runs the real
// coupled model) and give concurrent evaluations distinct roots.
type Backend struct {
	// Root is the experiment directory.
	Root string
	// AtmosGrid, OceanGrid and Days forward to the climate model (zero
	// values use the package defaults; tests use coarse grids, short months).
	AtmosGrid, OceanGrid field.Grid
	Days                 int
}

var _ engine.Evaluator = Backend{}

// Name implements engine.Evaluator.
func (Backend) Name() string { return "realrun" }

// Evaluate implements engine.Evaluator: it executes the allocation for real
// and reports measured wall-clock durations in place of virtual time. The
// cluster contributes its identity and the utilization denominator — the
// real run's speed is the host machine's, not the profile's.
func (b Backend) Evaluate(app core.Application, cluster *platform.Cluster, alloc core.Allocation, _ engine.Options) (engine.Result, error) {
	res, err := Run(Config{
		Root:      b.Root,
		App:       app,
		Alloc:     alloc,
		AtmosGrid: b.AtmosGrid,
		OceanGrid: b.OceanGrid,
		Days:      b.Days,
	})
	if err != nil {
		return engine.Result{}, err
	}
	out := engine.Result{
		Backend:  "realrun",
		Makespan: res.Wall.Seconds(),
	}
	// Busy time: each month occupied its group's processors for the main
	// wall and one processor for the post wall, mirroring the simulator's
	// BusyProcSeconds accounting.
	for _, r := range res.Reports {
		out.BusyProcSeconds += r.MainWall.Seconds() * float64(groupProcs(alloc.Groups[r.Group]))
		out.BusyProcSeconds += r.PostWall.Seconds()
	}
	// Same convention as the DES backend: divide by the cluster's total
	// processors so the two backends' Utilization is comparable; fall back
	// to the allocation's claim when no cluster is given.
	procs := alloc.UsedProcs()
	if cluster != nil && cluster.Procs > 0 {
		procs = cluster.Procs
	}
	if procs > 0 && out.Makespan > 0 {
		out.Utilization = out.BusyProcSeconds / (float64(procs) * out.Makespan)
	}
	return out, nil
}
