// Package realrun executes a schedule for real: where internal/exec replays
// an allocation in virtual time, realrun drives the actual toy coupled
// climate model and its file pipeline with live goroutine worker groups —
// the paper's "ongoing work" of verifying the simulated schedules by real
// experiments (its §7: "we will be able to verify our simulations by real
// experiments on Grid'5000").
//
// Each main-task group of the allocation becomes a worker executing
// pre-processing and the coupled run (with group-size-many atmosphere ranks,
// minus the three sequential components); completed months feed a
// post-processing pool running the conversion/analysis/compression tasks.
// Dispatch follows the same least-advanced rule as the simulator, so the
// realrun schedule shape mirrors the simulated one at miniature scale.
package realrun

import (
	"fmt"
	"sync"
	"time"

	"oagrid/internal/climate/field"
	"oagrid/internal/climate/pipeline"
	"oagrid/internal/core"
)

// Config describes one real execution.
type Config struct {
	// Root is the experiment directory (one scenario subdirectory each).
	Root string
	// App is the workload; keep NS × NM small — every month runs the real
	// coupled model.
	App core.Application
	// Alloc is the processor division to execute.
	Alloc core.Allocation
	// Grids and days per month forwarded to the model (zero = package
	// defaults; tests use coarse grids and short months).
	AtmosGrid, OceanGrid field.Grid
	Days                 int
}

// MonthReport records one executed month.
type MonthReport struct {
	Scenario, Month int
	Group           int // group index that ran the main task
	MainWall        time.Duration
	PostWall        time.Duration
	GlobalT         float64
}

// Result summarizes a real execution.
type Result struct {
	Wall    time.Duration
	Reports []MonthReport
}

// Run executes the whole experiment. It returns after every month of every
// scenario has been processed and post-processed.
func Run(cfg Config) (*Result, error) {
	if err := cfg.App.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Alloc.Groups) == 0 {
		return nil, fmt.Errorf("realrun: allocation has no group")
	}
	if cfg.Root == "" {
		return nil, fmt.Errorf("realrun: empty root directory")
	}
	start := time.Now()

	type mainJob struct {
		scenario, month, group int
	}
	type postJob struct {
		scenario, month, group int
		mainWall               time.Duration
		globalT                float64
	}

	var (
		mu         sync.Mutex
		monthsDone = make([]int, cfg.App.Scenarios) // months mained per scenario
		inFlight   = make([]bool, cfg.App.Scenarios)
		dispatched = 0
		firstErr   error
	)
	total := cfg.App.Tasks()

	// nextScenario implements the least-advanced rule over scenarios that
	// are neither finished nor currently running.
	nextScenario := func() (int, bool) {
		best, found := -1, false
		for s := 0; s < cfg.App.Scenarios; s++ {
			if inFlight[s] || monthsDone[s] >= cfg.App.Months {
				continue
			}
			if !found || monthsDone[s] < monthsDone[best] {
				best, found = s, true
			}
		}
		return best, found
	}

	postCh := make(chan postJob, total)
	reports := make(chan MonthReport, total)

	// Post pool: the dedicated post processors; when the allocation reserves
	// none, a single drain worker stands in for the idle-processor
	// absorption of the simulated schedule.
	postWorkers := cfg.Alloc.PostProcs
	if postWorkers == 0 {
		postWorkers = 1
	}
	var postWG sync.WaitGroup
	postWG.Add(postWorkers)
	for w := 0; w < postWorkers; w++ {
		go func() {
			defer postWG.Done()
			for pj := range postCh {
				pcfg := pipeline.Config{
					Root:      cfg.Root,
					Scenario:  pj.scenario,
					Procs:     groupProcs(cfg.Alloc.Groups[pj.group]),
					AtmosGrid: cfg.AtmosGrid,
					OceanGrid: cfg.OceanGrid,
					Days:      cfg.Days,
				}
				t0 := time.Now()
				err := pipeline.COF(pcfg, pj.month)
				if err == nil {
					err = pipeline.EMI(pcfg, pj.month)
				}
				if err == nil {
					err = pipeline.CD(pcfg, pj.month)
				}
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("realrun: post s%d/m%d: %w", pj.scenario, pj.month, err)
				}
				mu.Unlock()
				reports <- MonthReport{
					Scenario: pj.scenario,
					Month:    pj.month,
					Group:    pj.group,
					MainWall: pj.mainWall,
					PostWall: time.Since(t0),
					GlobalT:  pj.globalT,
				}
			}
		}()
	}

	// Group workers: pull the least-advanced runnable scenario, run the
	// pre-processing and the coupled month, hand the diagnostics to the
	// post pool.
	var groupWG sync.WaitGroup
	groupWG.Add(len(cfg.Alloc.Groups))
	for g := range cfg.Alloc.Groups {
		go func(g int) {
			defer groupWG.Done()
			for {
				mu.Lock()
				if firstErr != nil || dispatched >= total {
					mu.Unlock()
					return
				}
				s, ok := nextScenario()
				if !ok {
					mu.Unlock()
					// Other groups hold the remaining scenarios; yield.
					time.Sleep(200 * time.Microsecond)
					continue
				}
				month := monthsDone[s]
				inFlight[s] = true
				dispatched++
				mu.Unlock()

				pcfg := pipeline.Config{
					Root:      cfg.Root,
					Scenario:  s,
					Procs:     groupProcs(cfg.Alloc.Groups[g]),
					AtmosGrid: cfg.AtmosGrid,
					OceanGrid: cfg.OceanGrid,
					Days:      cfg.Days,
				}
				t0 := time.Now()
				err := pipeline.CAIF(pcfg, month)
				if err == nil {
					err = pipeline.MP(pcfg, month)
				}
				var globalT float64
				if err == nil {
					d, perr := pipeline.PCR(pcfg, month)
					err = perr
					if d != nil {
						globalT = d.GlobalT
					}
				}
				wall := time.Since(t0)

				mu.Lock()
				inFlight[s] = false
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("realrun: main s%d/m%d on group %d: %w", s, month, g, err)
					}
					mu.Unlock()
					return
				}
				monthsDone[s]++
				mu.Unlock()
				postCh <- postJob{scenario: s, month: month, group: g, mainWall: wall, globalT: globalT}
			}
		}(g)
	}

	groupWG.Wait()
	close(postCh)
	postWG.Wait()
	close(reports)

	res := &Result{Wall: time.Since(start)}
	for r := range reports {
		res.Reports = append(res.Reports, r)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if len(res.Reports) != total {
		return nil, fmt.Errorf("realrun: executed %d months, want %d", len(res.Reports), total)
	}
	return res, nil
}

// groupProcs clamps a group size into the coupled run's moldable range (the
// allocation validated this already; the clamp guards direct callers).
func groupProcs(g int) int {
	if g < 4 {
		return 4
	}
	if g > 11 {
		return 11
	}
	return g
}
