package realrun

import (
	"testing"

	"oagrid/internal/climate/field"
	"oagrid/internal/core"
	"oagrid/internal/engine"
	"oagrid/internal/platform"
)

// TestBackendImplementsEngineEvaluator runs a miniature experiment through
// the engine interface and checks the wall-clock report is coherent.
func TestBackendImplementsEngineEvaluator(t *testing.T) {
	app := core.Application{Scenarios: 2, Months: 1}
	cl := platform.ReferenceCluster(9)
	alloc, err := (core.Knapsack{}).Plan(app, cl.Timing, cl.Procs)
	if err != nil {
		t.Fatal(err)
	}
	var ev engine.Evaluator = Backend{
		Root:      t.TempDir(),
		AtmosGrid: field.Grid{NLat: 12, NLon: 24},
		OceanGrid: field.Grid{NLat: 18, NLon: 36},
		Days:      2,
	}
	res, err := ev.Evaluate(app, cl, alloc, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "realrun" {
		t.Errorf("backend label %q", res.Backend)
	}
	if res.Makespan <= 0 {
		t.Error("no wall-clock makespan")
	}
	if res.BusyProcSeconds <= 0 {
		t.Error("no busy time accounted")
	}
	if res.Utilization <= 0 || res.Utilization > float64(alloc.UsedProcs()) {
		t.Errorf("implausible utilization %g", res.Utilization)
	}
}

// TestBackendInSweep drives the real backend through the sweep runner, the
// same batched path the virtual backends use.
func TestBackendInSweep(t *testing.T) {
	app := core.Application{Scenarios: 1, Months: 1}
	cl := platform.ReferenceCluster(6)
	jobs := []engine.Job{{
		App:       app,
		Cluster:   cl,
		Heuristic: core.Basic{},
	}}
	ev := Backend{
		Root:      t.TempDir(),
		AtmosGrid: field.Grid{NLat: 12, NLon: 24},
		OceanGrid: field.Grid{NLat: 18, NLon: 36},
		Days:      1,
	}
	results := engine.Sweep(ev, jobs, 1)
	if err := engine.FirstError(results); err != nil {
		t.Fatal(err)
	}
	if results[0].Result.Makespan <= 0 {
		t.Error("sweep through the real backend produced no makespan")
	}
}
