package realrun

import (
	"os"
	"path/filepath"
	"testing"

	"oagrid/internal/climate/field"
	"oagrid/internal/climate/pipeline"
	"oagrid/internal/core"
	"oagrid/internal/platform"
)

func fastConfig(t *testing.T, app core.Application, alloc core.Allocation) Config {
	t.Helper()
	return Config{
		Root:      t.TempDir(),
		App:       app,
		Alloc:     alloc,
		AtmosGrid: field.Grid{NLat: 12, NLon: 24},
		OceanGrid: field.Grid{NLat: 18, NLon: 36},
		Days:      2,
	}
}

func TestRealRunExecutesEverything(t *testing.T) {
	app := core.Application{Scenarios: 3, Months: 2}
	ref := platform.ReferenceTiming()
	alloc, err := (core.Knapsack{}).Plan(app, ref, 15)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(t, app, alloc)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != app.Tasks() {
		t.Fatalf("executed %d months, want %d", len(res.Reports), app.Tasks())
	}
	if res.Wall <= 0 {
		t.Fatal("no wall time recorded")
	}
	// Every (scenario, month) ran exactly once, on a valid group.
	seen := map[[2]int]bool{}
	for _, r := range res.Reports {
		key := [2]int{r.Scenario, r.Month}
		if seen[key] {
			t.Fatalf("month s%d/m%d executed twice", r.Scenario, r.Month)
		}
		seen[key] = true
		if r.Group < 0 || r.Group >= len(alloc.Groups) {
			t.Fatalf("month on unknown group %d", r.Group)
		}
		if r.MainWall <= 0 || r.PostWall <= 0 {
			t.Fatalf("month s%d/m%d without wall times", r.Scenario, r.Month)
		}
		if r.GlobalT < 200 || r.GlobalT > 330 {
			t.Fatalf("month s%d/m%d with unphysical global T %g", r.Scenario, r.Month, r.GlobalT)
		}
	}
	// The real artifacts exist: compressed diagnostics and the series file
	// for every scenario.
	for s := 0; s < app.Scenarios; s++ {
		dir := pipeline.Config{Root: cfg.Root, Scenario: s}.Dir()
		for m := 0; m < app.Months; m++ {
			if _, err := os.Stat(pipeline.SDFPath(dir, s, m) + ".gz"); err != nil {
				t.Fatalf("missing compressed diagnostics for s%d/m%d: %v", s, m, err)
			}
		}
		if _, err := os.Stat(filepath.Join(dir, "series.csv")); err != nil {
			t.Fatalf("missing series for scenario %d: %v", s, err)
		}
	}
}

// TestRealRunChainsMonths: month 1 must consume month 0's restart, which the
// model enforces; a full run across two months therefore proves the workers
// respected the chain order.
func TestRealRunChainsMonths(t *testing.T) {
	app := core.Application{Scenarios: 2, Months: 3}
	alloc := core.Allocation{Groups: []int{5, 4}, PostProcs: 1, Heuristic: "manual"}
	cfg := fastConfig(t, app, alloc)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 6 {
		t.Fatalf("executed %d months, want 6", len(res.Reports))
	}
}

func TestRealRunValidation(t *testing.T) {
	app := core.Application{Scenarios: 1, Months: 1}
	if _, err := Run(Config{Root: "", App: app, Alloc: core.Allocation{Groups: []int{4}}}); err == nil {
		t.Fatal("empty root accepted")
	}
	if _, err := Run(Config{Root: t.TempDir(), App: app, Alloc: core.Allocation{}}); err == nil {
		t.Fatal("empty allocation accepted")
	}
	if _, err := Run(Config{Root: t.TempDir(), App: core.Application{}, Alloc: core.Allocation{Groups: []int{4}}}); err == nil {
		t.Fatal("invalid application accepted")
	}
}

func TestGroupProcsClamp(t *testing.T) {
	if groupProcs(2) != 4 || groupProcs(15) != 11 || groupProcs(7) != 7 {
		t.Fatal("groupProcs clamp broken")
	}
}
