package figures

import (
	"strings"
	"testing"

	"oagrid/internal/climate/field"
	"oagrid/internal/platform"
)

func TestFigure1Calibration(t *testing.T) {
	res, err := Figure1(Figure1Config{
		WorkDir:   t.TempDir(),
		AtmosGrid: field.Grid{NLat: 12, NLon: 24},
		OceanGrid: field.Grid{NLat: 18, NLon: 36},
		Days:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One measurement per moldable processor count.
	for g := platform.MinGroup; g <= platform.MaxGroup; g++ {
		tt, ok := res.Timings[g]
		if !ok {
			t.Fatalf("no timing row for g=%d", g)
		}
		if tt.PCR <= 0 || tt.Total() <= tt.PCR {
			t.Fatalf("g=%d: implausible timings %+v", g, tt)
		}
		if res.ScaledMain[g] <= 0 {
			t.Fatalf("g=%d: missing scaled main duration", g)
		}
		if res.Speedup[g] <= 0 {
			t.Fatalf("g=%d: missing speedup", g)
		}
	}
	// The scaling pins the anchor: main at MaxGroup = the paper's 1262 s.
	if got, want := res.ScaledMain[platform.MaxGroup], platform.PcrSeconds+platform.PreSeconds; got != want {
		t.Fatalf("scaled main at %d procs = %g, want %g", platform.MaxGroup, got, want)
	}
	table := res.Table()
	for _, want := range []string{"procs", "speedup", "paper figure 1", "host cores"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table lacks %q:\n%s", want, table)
		}
	}
}

func TestFigure1NeedsWorkDir(t *testing.T) {
	if _, err := Figure1(Figure1Config{}); err == nil {
		t.Fatal("empty work directory accepted")
	}
}
