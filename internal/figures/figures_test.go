package figures

import (
	"math"
	"testing"

	"oagrid/internal/core"
)

// testConfig shrinks the workload: gains are governed by the wave structure,
// not the chain length, so three simulated years per scenario suffice.
func testConfig() Config {
	return Config{
		App:   core.Application{Scenarios: 10, Months: 36},
		RStep: 7,
	}
}

func TestFigure7Shape(t *testing.T) {
	cfg := DefaultConfig() // grouping choice is model-based and cheap
	cfg.RStep = 1
	s, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 110 {
		t.Fatalf("figure 7 has %d points, want 110", len(s.Points))
	}
	for _, p := range s.Points {
		g := p.Mean
		if g < 4 || g > 11 {
			t.Fatalf("R=%g: grouping %g outside [4,11]", p.X, g)
		}
	}
	// Anchors from the paper: G=7 at R=53 (worked example), G=11 with
	// plentiful resources (R=120 hosts 10 groups of 11), small G at R=20.
	at := func(r float64) float64 {
		for _, p := range s.Points {
			if p.X == r {
				return p.Mean
			}
		}
		t.Fatalf("no point at R=%g", r)
		return 0
	}
	if at(53) != 7 {
		t.Errorf("figure 7 at R=53: G=%g, want 7", at(53))
	}
	if at(120) != 11 {
		t.Errorf("figure 7 at R=120: G=%g, want 11", at(120))
	}
	if at(20) > 6 {
		t.Errorf("figure 7 at R=20: G=%g, want small (≤6)", at(20))
	}
	// Large-R plateau: the last points are all 11.
	if at(115) != 11 || at(118) != 11 {
		t.Errorf("figure 7 should plateau at 11 near R=120")
	}
}

func TestFigure8GainsShape(t *testing.T) {
	cfg := testConfig()
	series, err := Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("figure 8 has %d series, want 3", len(series))
	}
	knap := series[2]
	if knap.Label != "gain-knapsack" {
		t.Fatalf("third series is %q, want gain-knapsack", knap.Label)
	}
	maxGain := 0.0
	for si, s := range series {
		if len(s.Points) == 0 {
			t.Fatalf("series %d empty", si)
		}
		for _, p := range s.Points {
			if p.Mean > maxGain {
				maxGain = p.Mean
			}
			// Gains stay within the paper's plotted range (-2%..14%).
			if p.Mean < -6 || p.Mean > 20 {
				t.Errorf("%s at R=%g: gain %.2f%% outside plausible range", s.Label, p.X, p.Mean)
			}
			if p.StdDev < 0 {
				t.Errorf("%s at R=%g: negative stddev", s.Label, p.X)
			}
		}
	}
	// The evaluation's headline: improvements reach gains of several percent.
	if maxGain < 3 {
		t.Errorf("best gain %.2f%%, expected a few percent at least", maxGain)
	}
	// Knapsack dominates at low resource counts (paper: "yields the best
	// results with low resources").
	lowR := knap.Points[0]
	for _, s := range series[:2] {
		if s.Points[0].Mean > lowR.Mean+1e-9 {
			t.Errorf("at R=%g, %s gain %.2f%% beats knapsack %.2f%%",
				lowR.X, s.Label, s.Points[0].Mean, lowR.Mean)
		}
	}
}

func TestFigure8LargeRConvergence(t *testing.T) {
	// With R ≥ 11·NS + margin every heuristic builds NS groups of 11, so the
	// gains vanish ("with a lot of resources, there are no more gains since
	// there are NS groups of 11 resources").
	cfg := testConfig()
	cfg.App.Scenarios = 4 // 4 groups of 11 fit well below 120
	series, err := Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		last := s.Points[len(s.Points)-1]
		if math.Abs(last.Mean) > 0.5 {
			t.Errorf("%s at R=%g: gain %.2f%% should be ≈0 with saturated groups", s.Label, last.X, last.Mean)
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	cfg := testConfig()
	sweep := []int{11, 33, 55, 77, 99}
	series, points, err := Figure10(cfg, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("figure 10 has %d series, want 3", len(series))
	}
	wantPoints := 4 * len(sweep) // k = 2..5
	if len(points) != wantPoints {
		t.Fatalf("figure 10 has %d grid points, want %d", len(points), wantPoints)
	}
	for _, pt := range points {
		if pt.Clusters < 2 || pt.Clusters > 5 {
			t.Fatalf("grid point with %d clusters", pt.Clusters)
		}
		wantX := float64(pt.Clusters) + float64(pt.ProcsPerCluster)/100
		if math.Abs(pt.X-wantX) > 1e-12 {
			t.Fatalf("x encoding %g, want %g", pt.X, wantX)
		}
		if len(pt.Gains) != 3 {
			t.Fatalf("grid point has %d gains, want 3", len(pt.Gains))
		}
		for i, g := range pt.Gains {
			if g < -8 || g > 20 {
				t.Errorf("k=%d R=%d: gain[%d] = %.2f%% implausible", pt.Clusters, pt.ProcsPerCluster, i, g)
			}
		}
	}
}

func TestFigure10EstimateMode(t *testing.T) {
	cfg := testConfig()
	cfg.UseEstimate = true
	_, points, err := Figure10(cfg, []int{25, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("estimate-mode figure 10 has %d points, want 8", len(points))
	}
}

func TestAblationKnapsackValue(t *testing.T) {
	cfg := testConfig()
	series, err := AblationKnapsackValue(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("ablation has %d series, want 3", len(series))
	}
	// The paper's 1/T value maximizes aggregate throughput, which governs the
	// steady-state but not the finish-line effects of the last waves — so an
	// alternative value can win an isolated point by a sliver. Assert the
	// paper's choice is never beaten by more than 2% anywhere and wins on
	// average (this asymmetry is the ablation's finding, see EXPERIMENTS.md).
	var sumRef, sumAlt [3]float64
	for i := 1; i < 3; i++ {
		for j, p := range series[i].Points {
			ref := series[0].Points[j]
			sumRef[i] += ref.Mean
			sumAlt[i] += p.Mean
			if p.Mean < ref.Mean*0.98 {
				t.Errorf("%s at R=%g: makespan %.0f beats the paper's value function %.0f by >2%%",
					series[i].Label, p.X, p.Mean, ref.Mean)
			}
		}
		if sumAlt[i] < sumRef[i] {
			t.Errorf("%s wins on average over the paper's 1/T value", series[i].Label)
		}
	}
}

func TestAblationFairness(t *testing.T) {
	series, err := AblationFairness(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("fairness ablation has %d series, want 3", len(series))
	}
	// Round-robin tracks least-advanced closely (both keep scenarios
	// balanced), but most-advanced drains scenarios sequentially and strands
	// the tail on few groups — it must never beat least-advanced and is
	// expected to collapse badly somewhere. This is why the paper's policy
	// matters (ablation A2).
	worstMostAdvanced := 0.0
	for j := range series[0].Points {
		la := series[0].Points[j].Mean
		rr := series[1].Points[j].Mean
		ma := series[2].Points[j].Mean
		if rel := math.Abs(rr-la) / la; rel > 0.10 {
			t.Errorf("round-robin at R=%g deviates %.1f%% from least-advanced", series[1].Points[j].X, rel*100)
		}
		if ma < la*(1-1e-9) {
			t.Errorf("most-advanced at R=%g beats least-advanced (%g < %g)", series[2].Points[j].X, ma, la)
		}
		if rel := (ma - la) / la; rel > worstMostAdvanced {
			worstMostAdvanced = rel
		}
	}
	if worstMostAdvanced < 0.10 {
		t.Errorf("most-advanced never collapsed (worst +%.1f%%); the fairness ablation lost its signal", worstMostAdvanced*100)
	}
}

func TestAblationModelError(t *testing.T) {
	s, err := AblationModelError(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if p.Mean > 1.0 {
			t.Errorf("model error %.3f%% at R=%g exceeds 1%%", p.Mean, p.X)
		}
	}
}

func TestAblationCPA(t *testing.T) {
	cfg := testConfig()
	series, err := AblationCPA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("cpa ablation has %d series, want 4", len(series))
	}
	byLabel := map[string]int{}
	for i, s := range series {
		byLabel[s.Label] = i
	}
	for _, want := range []string{"basic", "knapsack", "cpa", "sequential-dags"} {
		if _, ok := byLabel[want]; !ok {
			t.Fatalf("missing series %q", want)
		}
	}
	// The paper's §3 argument, quantified. CPA's allotment ignores the NS
	// concurrency cap, so knapsack must win on average and never lose by
	// more than 2% (isolated finish-line effects can hand CPA a sliver at a
	// lucky R, as with the value-function ablation). Sequential DAGs must
	// collapse everywhere (one scenario at a time cannot exploit the
	// cluster).
	knap := series[byLabel["knapsack"]]
	cpa := series[byLabel["cpa"]]
	seq := series[byLabel["sequential-dags"]]
	var sumKnap, sumCPA float64
	for j, p := range knap.Points {
		cpaMS := cpa.Points[j].Mean
		sumKnap += p.Mean
		sumCPA += cpaMS
		if p.Mean > cpaMS*1.02 {
			t.Errorf("at R=%g: knapsack %.0f worse than CPA %.0f by >2%%", p.X, p.Mean, cpaMS)
		}
		if seqMS := seq.Points[j].Mean; seqMS < p.Mean*1.5 {
			t.Errorf("at R=%g: sequential DAGs %.0f did not collapse vs knapsack %.0f", p.X, seqMS, p.Mean)
		}
	}
	if sumKnap >= sumCPA {
		t.Errorf("knapsack does not beat CPA on average (%.0f vs %.0f)", sumKnap, sumCPA)
	}
}

func TestAblationJitter(t *testing.T) {
	cfg := testConfig()
	cfg.RStep = 25
	series, err := AblationJitter(cfg, []float64{0, 0.05}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("jitter ablation has %d series, want 2", len(series))
	}
	// Zero amplitude must reproduce the deterministic gain for every seed.
	for _, p := range series[0].Points {
		if p.StdDev != 0 {
			t.Errorf("zero-jitter gains vary across seeds at R=%g", p.X)
		}
	}
}
