// Package figures regenerates every evaluation figure of the paper as data
// series: Figure 7 (optimal groupings), Figure 8 (gains of the three improved
// heuristics on one cluster) and Figure 10 (gains on a grid of 2–5 clusters
// with Algorithm-1 repartition), plus the ablation experiments listed in
// DESIGN.md. Every measured point flows through internal/engine's batched
// sweep runner, so figures parallelize across GOMAXPROCS workers while
// staying bit-identical to a serial run. The command cmd/oabench prints
// these series as CSV and ASCII plots; bench_test.go wraps each one in a
// testing.B benchmark.
package figures

import (
	"fmt"

	"oagrid/internal/core"
	"oagrid/internal/engine"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
	"oagrid/internal/stats"
)

// Config parameterizes the experiment harness.
type Config struct {
	// App is the workload; the paper uses 10 scenarios × 1800 months. The
	// benchmarks shrink Months — gains are wave-structured and virtually
	// independent of the chain length beyond a few dozen months.
	App core.Application
	// Exec tunes the executor (policy, jitter).
	Exec exec.Options
	// RStep is the resource-count stride of the single-cluster sweeps
	// (Figures 7 and 8); 1 reproduces the paper's dense curves.
	RStep int
	// UseEstimate switches the per-cluster makespan evaluation from the
	// event-driven executor (ground truth, slower) to the analytical model.
	UseEstimate bool
	// Workers sizes the sweep worker pool; 0 uses GOMAXPROCS. Results are
	// bit-identical whatever the value.
	Workers int
}

// DefaultConfig returns the paper's evaluation setup.
func DefaultConfig() Config {
	return Config{App: core.Default(), RStep: 1}
}

func (c Config) normalized() Config {
	if c.App.Scenarios == 0 {
		c.App = core.Default()
	}
	if c.RStep <= 0 {
		c.RStep = 1
	}
	return c
}

// evaluator returns the configured backend.
func (c Config) evaluator() engine.Evaluator {
	if c.UseEstimate {
		return engine.Model{}
	}
	return engine.DES{}
}

// options lifts the executor options into engine options.
func (c Config) options() engine.Options {
	return engine.Options{Exec: c.Exec}
}

// rsweep returns one resized copy per resource count of the sweep, sharing
// each copy across heuristics and variants so the engine's plan cache and
// timing memos apply.
func rsweep(profile *platform.Cluster, from, to, step int) []*platform.Cluster {
	var out []*platform.Cluster
	for r := from; r <= to; r += step {
		out = append(out, profile.WithProcs(r))
	}
	return out
}

// Figure7 computes the optimal grouping (the basic heuristic's G) for
// resource counts 11..120 with 10 scenario simulations, the paper's Figure 7.
// The returned series maps R to G.
func Figure7(cfg Config) (*stats.Series, error) {
	cfg = cfg.normalized()
	ref := engine.Memoize(platform.ReferenceTiming())
	s := &stats.Series{Label: "best-grouping"}
	for r := 11; r <= 120; r += cfg.RStep {
		al, err := (core.Basic{}).Plan(cfg.App, ref, r)
		if err != nil {
			return nil, fmt.Errorf("figures: figure 7 at R=%d: %w", r, err)
		}
		s.Add(float64(r), float64(al.Groups[0]))
	}
	return s, nil
}

// Figure8Matrix builds the Figure-8 job matrix: resource counts 20..120 on
// the five cluster speed profiles, planned by the basic heuristic and its
// three improvements. The determinism test and the engine benchmark reuse it
// as the reference workload.
func Figure8Matrix(cfg Config) engine.Matrix {
	cfg = cfg.normalized()
	var clusters []*platform.Cluster
	for _, cl := range platform.FiveClusters() {
		clusters = append(clusters, rsweep(cl, 20, 120, cfg.RStep)...)
	}
	return engine.Matrix{
		App:        cfg.App,
		Clusters:   clusters,
		Heuristics: core.All(),
		Base:       cfg.options(),
	}
}

// Figure8 computes, for each resource count R in 20..120, the makespan gain
// (percent) of each improved heuristic over the basic one, averaged over the
// five cluster speed profiles — the paper's Figure 8 (three stacked panels:
// Gain 1 = redistribute, Gain 2 = all-to-main, Gain 3 = knapsack). Each
// series point carries the mean and the standard deviation over the five
// profiles. The whole matrix runs as one batched sweep.
func Figure8(cfg Config) ([]*stats.Series, error) {
	cfg = cfg.normalized()
	m := Figure8Matrix(cfg)
	results := engine.Sweep(cfg.evaluator(), m.Jobs(), cfg.Workers)
	if err := engine.FirstError(results); err != nil {
		return nil, fmt.Errorf("figures: figure 8: %w", err)
	}
	// The matrix nests clusters as (profile, R): profiles outer, R inner.
	profiles := len(platform.FiveClusters())
	rcount := len(m.Clusters) / profiles
	improved := core.Improvements()
	series := make([]*stats.Series, len(improved))
	for i, h := range improved {
		series[i] = &stats.Series{Label: "gain-" + h.Name()}
	}
	for ri := 0; ri < rcount; ri++ {
		r := m.Clusters[ri].Procs
		gains := make([][]float64, len(improved))
		for pi := 0; pi < profiles; pi++ {
			ci := pi*rcount + ri
			base := results[m.Index(ci, 0, 0)].Result.Makespan
			for hi := range improved {
				ms := results[m.Index(ci, hi+1, 0)].Result.Makespan
				gains[hi] = append(gains[hi], stats.GainPercent(base, ms))
			}
		}
		for i := range improved {
			series[i].Add(float64(r), gains[i]...)
		}
	}
	return series, nil
}

// GridPoint is one Figure-10 configuration: k identical-size clusters drawn
// from the five speed profiles.
type GridPoint struct {
	Clusters        int
	ProcsPerCluster int
	// X is the paper's axis encoding: clusters + procs/100 ("2.25 represents
	// two clusters with 25 resources each").
	X float64
	// Gain per improved heuristic (percent over basic), in
	// core.Improvements() order.
	Gains []float64
}

// Figure10 computes the grid experiment: for 2..5 clusters (prefixes of the
// five speed profiles) with identical per-cluster resource counts, scenarios
// are distributed with Algorithm 1 using per-cluster performance vectors
// computed by each heuristic; the gain compares the resulting global
// makespan against the basic-heuristic pipeline. procsSweep lists the
// per-cluster resource counts to visit (the paper uses 11..99).
func Figure10(cfg Config, procsSweep []int) ([]*stats.Series, []GridPoint, error) {
	cfg = cfg.normalized()
	profiles := platform.FiveClusters()
	improved := core.Improvements()
	series := make([]*stats.Series, len(improved))
	for i, h := range improved {
		series[i] = &stats.Series{Label: "gain-" + h.Name()}
	}
	var points []GridPoint
	for k := 2; k <= len(profiles); k++ {
		for _, procs := range procsSweep {
			// One resized cluster set per grid point, shared by all four
			// heuristics' vector sweeps.
			clusters := make([]*platform.Cluster, k)
			for i, cl := range profiles[:k] {
				clusters[i] = cl.WithProcs(procs)
			}
			base, err := gridMakespan(cfg, clusters, core.Basic{})
			if err != nil {
				return nil, nil, fmt.Errorf("figures: figure 10 k=%d R=%d: %w", k, procs, err)
			}
			pt := GridPoint{
				Clusters:        k,
				ProcsPerCluster: procs,
				X:               float64(k) + float64(procs)/100,
			}
			for i, h := range improved {
				ms, err := gridMakespan(cfg, clusters, h)
				if err != nil {
					return nil, nil, fmt.Errorf("figures: figure 10 k=%d R=%d: %w", k, procs, err)
				}
				g := stats.GainPercent(base, ms)
				pt.Gains = append(pt.Gains, g)
				series[i].Add(pt.X, g)
			}
			points = append(points, pt)
		}
	}
	return series, points, nil
}

// gridMakespan runs the full Figure-9 pipeline for one heuristic: per-cluster
// performance vectors (batched over the engine pool), Algorithm-1
// repartition, global makespan.
func gridMakespan(cfg Config, clusters []*platform.Cluster, h core.Heuristic) (float64, error) {
	perf, err := engine.PerformanceVectors(cfg.evaluator(), cfg.App, clusters, h, cfg.options(), cfg.Workers)
	if err != nil {
		return 0, err
	}
	res, err := core.Repartition(perf)
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}
