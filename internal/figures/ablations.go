package figures

import (
	"fmt"
	"math"

	"oagrid/internal/core"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
	"oagrid/internal/stats"
)

// This file implements the ablation experiments A1–A4 of DESIGN.md — design
// choices the paper fixes without comparison, explored here.

// AblationKnapsackValue (A1) compares the paper's knapsack value function
// 1/T[g] against two alternatives on the reference cluster: the
// per-processor-efficiency value 1/(g·T[g]) and a square-root compromise.
// The literal (paper-formulation) planner is used so the value function
// alone decides the grouping — the default planner's pin-aware re-ranking
// would mask the differences. It returns one makespan series per value
// function.
func AblationKnapsackValue(cfg Config) ([]*stats.Series, error) {
	cfg = cfg.normalized()
	ref := platform.ReferenceTiming()
	ev := cfg.evaluator()
	variants := []struct {
		label string
		value func(g int, tg float64) float64
	}{
		{"value-1/T", nil}, // the paper's choice
		{"value-1/(gT)", func(g int, tg float64) float64 { return 1 / (float64(g) * tg) }},
		{"value-1/(sqrt(g)T)", func(g int, tg float64) float64 { return 1 / (math.Sqrt(float64(g)) * tg) }},
	}
	series := make([]*stats.Series, len(variants))
	for i, v := range variants {
		series[i] = &stats.Series{Label: v.label}
		for r := 20; r <= 120; r += cfg.RStep {
			h := core.Knapsack{Literal: true, Value: v.value}
			ms, err := makespanOn(cfg, ev, ref, r, h)
			if err != nil {
				return nil, fmt.Errorf("figures: knapsack-value ablation at R=%d: %w", r, err)
			}
			series[i].Add(float64(r), ms)
		}
	}
	return series, nil
}

// AblationFairness (A2) measures the makespan of the knapsack allocation
// under the three dispatch policies. The paper's least-advanced rule is
// motivated by fairness; this shows what it costs (or not) in makespan.
func AblationFairness(cfg Config) ([]*stats.Series, error) {
	cfg = cfg.normalized()
	ref := platform.ReferenceTiming()
	policies := []exec.Policy{exec.LeastAdvanced, exec.RoundRobin, exec.MostAdvanced}
	series := make([]*stats.Series, len(policies))
	for i, p := range policies {
		series[i] = &stats.Series{Label: p.String()}
		opt := cfg.Exec
		opt.Policy = p
		ev := exec.Evaluator(opt)
		for r := 20; r <= 120; r += cfg.RStep {
			ms, err := makespanOn(cfg, ev, ref, r, core.Knapsack{})
			if err != nil {
				return nil, fmt.Errorf("figures: fairness ablation at R=%d: %w", r, err)
			}
			series[i].Add(float64(r), ms)
		}
	}
	return series, nil
}

// AblationModelError (A3) reports the relative error (percent) of the
// analytical model (equations 1–5) against the event-driven executor for the
// basic heuristic across the resource sweep.
func AblationModelError(cfg Config) (*stats.Series, error) {
	cfg = cfg.normalized()
	ref := platform.ReferenceTiming()
	ev := exec.Evaluator(cfg.Exec)
	s := &stats.Series{Label: "model-error-%"}
	for r := 11; r <= 120; r += cfg.RStep {
		al, err := (core.Basic{}).Plan(cfg.App, ref, r)
		if err != nil {
			return nil, err
		}
		model, err := core.UniformEstimate(cfg.App, ref, r, al.Groups[0])
		if err != nil {
			return nil, err
		}
		sim, err := ev.Evaluate(cfg.App, ref, r, al)
		if err != nil {
			return nil, err
		}
		s.Add(float64(r), 100*math.Abs(model-sim)/sim)
	}
	return s, nil
}

// AblationJitter (A4) recomputes the knapsack-vs-basic gain under increasing
// task-duration jitter. Each series is one jitter amplitude; points carry
// gains for several seeds, exposing how robust the 12%-class gains are to
// run-time noise.
func AblationJitter(cfg Config, amplitudes []float64, seeds int) ([]*stats.Series, error) {
	cfg = cfg.normalized()
	if seeds <= 0 {
		seeds = 3
	}
	ref := platform.ReferenceTiming()
	series := make([]*stats.Series, len(amplitudes))
	for i, amp := range amplitudes {
		series[i] = &stats.Series{Label: fmt.Sprintf("jitter-%g%%", amp*100)}
		for r := 20; r <= 120; r += cfg.RStep {
			var gains []float64
			for seed := 0; seed < seeds; seed++ {
				opt := cfg.Exec
				opt.Jitter = amp
				opt.Seed = uint64(seed + 1)
				ev := exec.Evaluator(opt)
				base, err := makespanOn(cfg, ev, ref, r, core.Basic{})
				if err != nil {
					return nil, err
				}
				kn, err := makespanOn(cfg, ev, ref, r, core.Knapsack{})
				if err != nil {
					return nil, err
				}
				gains = append(gains, stats.GainPercent(base, kn))
			}
			series[i].Add(float64(r), gains...)
		}
	}
	return series, nil
}
