package figures

import (
	"fmt"
	"math"

	"oagrid/internal/baseline"
	"oagrid/internal/core"
	"oagrid/internal/engine"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
	"oagrid/internal/stats"
)

// This file implements the ablation experiments A1–A5 of DESIGN.md — design
// choices the paper fixes without comparison, explored here. Each ablation is
// one engine.Sweep over a (cluster × heuristic × variant) matrix.

// referenceSweep returns the shared single-cluster resource sweep: the
// reference profile resized to each resource count, one copy per count.
func referenceSweep(cfg Config, from int) []*platform.Cluster {
	return rsweep(platform.ReferenceCluster(0), from, 120, cfg.RStep)
}

// AblationKnapsackValue (A1) compares the paper's knapsack value function
// 1/T[g] against two alternatives on the reference cluster: the
// per-processor-efficiency value 1/(g·T[g]) and a square-root compromise.
// The literal (paper-formulation) planner is used so the value function
// alone decides the grouping — the default planner's pin-aware re-ranking
// would mask the differences. It returns one makespan series per value
// function.
func AblationKnapsackValue(cfg Config) ([]*stats.Series, error) {
	cfg = cfg.normalized()
	clusters := referenceSweep(cfg, 20)
	variants := []struct {
		label string
		value func(g int, tg float64) float64
	}{
		{"value-1/T", nil}, // the paper's choice
		{"value-1/(gT)", func(g int, tg float64) float64 { return 1 / (float64(g) * tg) }},
		{"value-1/(sqrt(g)T)", func(g int, tg float64) float64 { return 1 / (math.Sqrt(float64(g)) * tg) }},
	}
	// All three planners share the name "knapsack"; the per-variant PlanKey
	// keeps their plan-cache entries apart inside the single sweep.
	jobs := make([]engine.Job, 0, len(variants)*len(clusters))
	for _, v := range variants {
		h := core.Knapsack{Literal: true, Value: v.value}
		for _, cl := range clusters {
			jobs = append(jobs, engine.Job{
				App:       cfg.App,
				Cluster:   cl,
				Heuristic: h,
				Opts:      cfg.options(),
				PlanKey:   v.label,
			})
		}
	}
	results := engine.Sweep(cfg.evaluator(), jobs, cfg.Workers)
	if err := engine.FirstError(results); err != nil {
		return nil, fmt.Errorf("figures: knapsack-value ablation: %w", err)
	}
	series := make([]*stats.Series, len(variants))
	for i, v := range variants {
		series[i] = &stats.Series{Label: v.label}
		for ci, cl := range clusters {
			series[i].Add(float64(cl.Procs), results[i*len(clusters)+ci].Result.Makespan)
		}
	}
	return series, nil
}

// AblationFairness (A2) measures the makespan of the knapsack allocation
// under the three dispatch policies. The paper's least-advanced rule is
// motivated by fairness; this shows what it costs (or not) in makespan.
func AblationFairness(cfg Config) ([]*stats.Series, error) {
	cfg = cfg.normalized()
	policies := []exec.Policy{exec.LeastAdvanced, exec.RoundRobin, exec.MostAdvanced}
	m := engine.Matrix{
		App:        cfg.App,
		Clusters:   referenceSweep(cfg, 20),
		Heuristics: []core.Heuristic{core.Knapsack{}},
		Base:       cfg.options(),
	}
	for _, p := range policies {
		m.Variants = append(m.Variants, engine.Variant{
			Policy: p,
			Jitter: cfg.Exec.Jitter,
			Seed:   cfg.Exec.Seed,
		})
	}
	results := engine.Sweep(cfg.evaluator(), m.Jobs(), cfg.Workers)
	if err := engine.FirstError(results); err != nil {
		return nil, fmt.Errorf("figures: fairness ablation: %w", err)
	}
	series := make([]*stats.Series, len(policies))
	for vi, p := range policies {
		series[vi] = &stats.Series{Label: p.String()}
		for ci, cl := range m.Clusters {
			series[vi].Add(float64(cl.Procs), results[m.Index(ci, 0, vi)].Result.Makespan)
		}
	}
	return series, nil
}

// AblationModelError (A3) reports the relative error (percent) of the
// analytical model (equations 1–5) against the event-driven executor for the
// basic heuristic across the resource sweep — the same job list evaluated on
// both backends.
func AblationModelError(cfg Config) (*stats.Series, error) {
	cfg = cfg.normalized()
	m := engine.Matrix{
		App:        cfg.App,
		Clusters:   referenceSweep(cfg, 11),
		Heuristics: []core.Heuristic{core.Basic{}},
		Base:       cfg.options(),
	}
	jobs := m.Jobs()
	sim := engine.Sweep(engine.DES{}, jobs, cfg.Workers)
	if err := engine.FirstError(sim); err != nil {
		return nil, err
	}
	// Evaluate the very allocations the executor ran on the model backend,
	// so each cell is planned once and the two sweeps stay comparable.
	model := engine.Sweep(engine.Model{}, allocJobs(jobs, sim), cfg.Workers)
	if err := engine.FirstError(model); err != nil {
		return nil, err
	}
	s := &stats.Series{Label: "model-error-%"}
	for ci, cl := range m.Clusters {
		i := m.Index(ci, 0, 0)
		mms, sms := model[i].Result.Makespan, sim[i].Result.Makespan
		s.Add(float64(cl.Procs), 100*math.Abs(mms-sms)/sms)
	}
	return s, nil
}

// allocJobs clones jobs with the allocations a previous sweep planned, so a
// second backend re-evaluates identical plans without re-planning.
func allocJobs(jobs []engine.Job, results []engine.JobResult) []engine.Job {
	out := make([]engine.Job, len(jobs))
	for i, j := range jobs {
		j.Heuristic = nil
		j.PlanKey = ""
		j.Alloc = results[i].Alloc
		out[i] = j
	}
	return out
}

// AblationJitter (A4) recomputes the knapsack-vs-basic gain under increasing
// task-duration jitter. Each series is one jitter amplitude; points carry
// gains for several seeds, exposing how robust the 12%-class gains are to
// run-time noise. The full (amplitude × seed × R) matrix runs as one sweep.
func AblationJitter(cfg Config, amplitudes []float64, seeds int) ([]*stats.Series, error) {
	cfg = cfg.normalized()
	if seeds <= 0 {
		seeds = 3
	}
	m := engine.Matrix{
		App:        cfg.App,
		Clusters:   referenceSweep(cfg, 20),
		Heuristics: []core.Heuristic{core.Basic{}, core.Knapsack{}},
		Base:       cfg.options(),
	}
	for _, amp := range amplitudes {
		for seed := 0; seed < seeds; seed++ {
			m.Variants = append(m.Variants, engine.Variant{
				Policy: cfg.Exec.Policy,
				Jitter: amp,
				Seed:   uint64(seed + 1),
			})
		}
	}
	results := engine.Sweep(cfg.evaluator(), m.Jobs(), cfg.Workers)
	if err := engine.FirstError(results); err != nil {
		return nil, fmt.Errorf("figures: jitter ablation: %w", err)
	}
	series := make([]*stats.Series, len(amplitudes))
	for ai, amp := range amplitudes {
		series[ai] = &stats.Series{Label: fmt.Sprintf("jitter-%g%%", amp*100)}
		for ci, cl := range m.Clusters {
			var gains []float64
			for seed := 0; seed < seeds; seed++ {
				vi := ai*seeds + seed
				base := results[m.Index(ci, 0, vi)].Result.Makespan
				kn := results[m.Index(ci, 1, vi)].Result.Makespan
				gains = append(gains, stats.GainPercent(base, kn))
			}
			series[ai].Add(float64(cl.Procs), gains...)
		}
	}
	return series, nil
}

// AblationCPA (A5) pits the paper's heuristics against the related-work
// baselines its §3 dismisses: the adapted CPA mixed-parallelism allotment
// and the naive sequential-DAGs strategy (internal/baseline). It returns one
// makespan series per planner on the reference cluster — the quantitative
// version of "these heuristics are not applicable here".
func AblationCPA(cfg Config) ([]*stats.Series, error) {
	cfg = cfg.normalized()
	planners := []core.Heuristic{
		core.Basic{},
		core.Knapsack{},
		baseline.CPA{},
		baseline.SequentialDAGs{},
	}
	m := engine.Matrix{
		App:        cfg.App,
		Clusters:   referenceSweep(cfg, 20),
		Heuristics: planners,
		Base:       cfg.options(),
	}
	results := engine.Sweep(cfg.evaluator(), m.Jobs(), cfg.Workers)
	if err := engine.FirstError(results); err != nil {
		return nil, fmt.Errorf("figures: cpa ablation: %w", err)
	}
	series := make([]*stats.Series, len(planners))
	for hi, h := range planners {
		series[hi] = &stats.Series{Label: h.Name()}
		for ci, cl := range m.Clusters {
			series[hi].Add(float64(cl.Procs), results[m.Index(ci, hi, 0)].Result.Makespan)
		}
	}
	return series, nil
}
