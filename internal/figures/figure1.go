package figures

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"oagrid/internal/climate/field"
	"oagrid/internal/climate/pipeline"
	"oagrid/internal/platform"
)

// Figure1Config controls the task-duration calibration experiment, which
// re-derives the paper's Figure-1 benchmark table by actually running the
// toy coupled model and the six pipeline tasks.
type Figure1Config struct {
	// WorkDir is where the pipeline files land (a temp dir in tests).
	WorkDir string
	// AtmosGrid/OceanGrid size the toy model; larger grids make the
	// parallel speedup visible above scheduling noise.
	AtmosGrid, OceanGrid field.Grid
	// Days per simulated month (30 = paper month, tests use fewer).
	Days int
}

// Figure1Result is the measured counterpart of the paper's Figure 1.
type Figure1Result struct {
	// Timings[g] holds the measured wall-clock of each pipeline task for one
	// month run with g processors (g−3 atmosphere workers).
	Timings map[int]pipeline.TaskTiming
	// ScaledMain[g] is the measured pcr+pre time rescaled so that
	// ScaledMain[11] equals the paper's 1262 s — the calibration that links
	// the toy model to the scheduling study's timing tables.
	ScaledMain map[int]float64
	// Speedup[g] is measured pcr(4)/pcr(g).
	Speedup map[int]float64
}

// Figure1 runs one coupled month per processor count in the moldable range
// and measures every pipeline task, reproducing the paper's benchmark
// procedure ("The times have been obtained by performing benchmarks").
func Figure1(cfg Figure1Config) (*Figure1Result, error) {
	if cfg.WorkDir == "" {
		return nil, fmt.Errorf("figures: figure 1 needs a work directory")
	}
	if cfg.Days <= 0 {
		cfg.Days = 6
	}
	res := &Figure1Result{
		Timings:    make(map[int]pipeline.TaskTiming),
		ScaledMain: make(map[int]float64),
		Speedup:    make(map[int]float64),
	}
	for g := platform.MinGroup; g <= platform.MaxGroup; g++ {
		pcfg := pipeline.Config{
			Root:      cfg.WorkDir,
			Scenario:  g, // distinct scenario dir per processor count
			Procs:     g,
			AtmosGrid: cfg.AtmosGrid,
			OceanGrid: cfg.OceanGrid,
			Days:      cfg.Days,
		}
		_, tt, err := pipeline.RunMonth(pcfg, 0)
		if err != nil {
			return nil, fmt.Errorf("figures: figure 1 at g=%d: %w", g, err)
		}
		res.Timings[g] = tt
	}
	refMain := res.Timings[platform.MaxGroup].PCR + res.Timings[platform.MaxGroup].CAIF + res.Timings[platform.MaxGroup].MP
	base := res.Timings[platform.MinGroup].PCR
	for g := platform.MinGroup; g <= platform.MaxGroup; g++ {
		tt := res.Timings[g]
		main := tt.PCR + tt.CAIF + tt.MP
		if refMain > 0 {
			res.ScaledMain[g] = (platform.PcrSeconds + platform.PreSeconds) * float64(main) / float64(refMain)
		}
		if tt.PCR > 0 {
			res.Speedup[g] = float64(base) / float64(tt.PCR)
		}
	}
	return res, nil
}

// Table renders the calibration next to the paper's Figure-1 values. The
// measured speedup saturates at min(atmosphere workers, host cores): the
// paper benchmarked on full clusters, so on small hosts only the shape up to
// runtime.NumCPU() is meaningful (the structural moldability is verified by
// the arpege decomposition tests instead).
func (r *Figure1Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "host cores: %d (speedup saturates there)\n", runtime.NumCPU())
	fmt.Fprintf(&b, "%-6s %12s %12s %12s %10s\n", "procs", "pcr(meas)", "post(meas)", "main(scaled)", "speedup")
	gs := make([]int, 0, len(r.Timings))
	for g := range r.Timings {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	for _, g := range gs {
		tt := r.Timings[g]
		post := tt.COF + tt.EMI + tt.CD
		fmt.Fprintf(&b, "%-6d %12s %12s %11.0fs %10.2f\n",
			g, round(tt.PCR), round(post), r.ScaledMain[g], r.Speedup[g])
	}
	fmt.Fprintf(&b, "\npaper figure 1: caif=1s mp=1s pcr=1260s cof=60s emi=60s cd=60s (main on %d procs)\n",
		platform.MaxGroup)
	return b.String()
}

func round(d time.Duration) time.Duration { return d.Round(100 * time.Microsecond) }
