// Package generic implements the paper's stated future work: "extending the
// present work to a generic heuristic that can schedule the same kind of
// workflow, made of independent chains of identical DAGs composed of
// moldable tasks" (conclusion of the paper).
//
// The key observation is the same fusion the paper applies to
// Ocean-Atmosphere (§4.1): in a chain of identical DAGs, every task is
// either *blocking* — the next repetition cannot start before it finishes
// (pre-processing, the coupled run) — or *non-blocking* — it only consumes a
// processor on the side (post-processing). Folding the blocking tasks into
// one moldable "main" whose duration is the blocking critical path at a
// given allotment, and the non-blocking tasks into one single-processor
// "post", turns any such workflow into the two-task model the whole
// scheduling stack (heuristics, executor, repartition) already solves.
//
// A ChainTemplate therefore compiles to a platform.Timing, and from there the
// Ocean-Atmosphere machinery is reused unchanged.
package generic

import (
	"errors"
	"fmt"

	"oagrid/internal/platform"
)

// Stage is one task of the repeated DAG template. Stages are given in
// topological order of the template; the structural detail beyond
// blocking/non-blocking does not influence the fused model (the paper's own
// fusion makes the same simplification).
type Stage struct {
	Name string
	// MinProcs/MaxProcs bound the stage's moldable range; single-processor
	// stages use 1/1.
	MinProcs, MaxProcs int
	// Seconds returns the stage duration on g processors (g within the
	// moldable range). For sequential stages it is called with g = 1.
	Seconds func(g int) float64
	// Blocking marks stages the next chain repetition depends on. At least
	// one stage must be blocking.
	Blocking bool
}

// ChainTemplate is the repeated DAG of one chain.
type ChainTemplate struct {
	Stages []Stage
}

// Validate checks the template is well formed.
func (c ChainTemplate) Validate() error {
	if len(c.Stages) == 0 {
		return errors.New("generic: empty chain template")
	}
	blocking := false
	for i, s := range c.Stages {
		if s.Seconds == nil {
			return fmt.Errorf("generic: stage %d (%s) has no duration function", i, s.Name)
		}
		if s.MinProcs <= 0 || s.MaxProcs < s.MinProcs {
			return fmt.Errorf("generic: stage %d (%s) has invalid processor range [%d,%d]",
				i, s.Name, s.MinProcs, s.MaxProcs)
		}
		if s.Blocking {
			blocking = true
		} else if s.MinProcs != 1 || s.MaxProcs != 1 {
			return fmt.Errorf("generic: non-blocking stage %d (%s) must be single-processor", i, s.Name)
		}
	}
	if !blocking {
		return errors.New("generic: template needs at least one blocking stage")
	}
	return nil
}

// moldableRange returns the processor range of the fused main task: the
// intersection lower bound is the largest stage minimum (every blocking
// stage must fit in the group) and the upper bound the largest stage maximum
// (beyond it no stage improves).
func (c ChainTemplate) moldableRange() (lo, hi int) {
	lo, hi = 1, 1
	for _, s := range c.Stages {
		if !s.Blocking {
			continue
		}
		if s.MinProcs > lo {
			lo = s.MinProcs
		}
		if s.MaxProcs > hi {
			hi = s.MaxProcs
		}
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// fusedTiming adapts a template to platform.Timing.
type fusedTiming struct {
	tmpl   ChainTemplate
	lo, hi int
}

var _ platform.Timing = fusedTiming{}

// Timing compiles the template into the fused two-task timing model.
func (c ChainTemplate) Timing() (platform.Timing, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	lo, hi := c.moldableRange()
	// Reject templates whose durations misbehave early.
	ft := fusedTiming{tmpl: c, lo: lo, hi: hi}
	for g := lo; g <= hi; g++ {
		if _, err := ft.MainSeconds(g); err != nil {
			return nil, err
		}
	}
	if ft.PostSeconds() < 0 {
		return nil, errors.New("generic: negative fused post duration")
	}
	return ft, nil
}

// MainSeconds implements platform.Timing: the sum of the blocking stages'
// durations when the group's g processors are offered to each in turn
// (clamped into the stage's own moldable range).
func (f fusedTiming) MainSeconds(g int) (float64, error) {
	if g < f.lo || g > f.hi {
		return 0, fmt.Errorf("generic: group size %d outside fused range [%d,%d]", g, f.lo, f.hi)
	}
	total := 0.0
	for _, s := range f.tmpl.Stages {
		if !s.Blocking {
			continue
		}
		gs := g
		if gs > s.MaxProcs {
			gs = s.MaxProcs
		}
		if gs < s.MinProcs {
			return 0, fmt.Errorf("generic: stage %s needs %d processors, group has %d", s.Name, s.MinProcs, g)
		}
		d := s.Seconds(gs)
		if d < 0 {
			return 0, fmt.Errorf("generic: stage %s has negative duration at g=%d", s.Name, gs)
		}
		total += d
	}
	return total, nil
}

// PostSeconds implements platform.Timing: the non-blocking stages run
// sequentially on one processor.
func (f fusedTiming) PostSeconds() float64 {
	total := 0.0
	for _, s := range f.tmpl.Stages {
		if s.Blocking {
			continue
		}
		total += s.Seconds(1)
	}
	return total
}

// Range implements platform.Timing.
func (f fusedTiming) Range() (int, int) { return f.lo, f.hi }

// OceanAtmosphere returns the paper's own application expressed as a chain
// template (six stages, Figure 1), for cross-checking the generic fusion
// against the hand-fused model.
func OceanAtmosphere() ChainTemplate {
	ref := platform.ReferenceTiming()
	pcr := func(g int) float64 {
		// The template works on the raw coupled-run curve; the fused
		// pre-processing seconds are carried by caif/mp below.
		s, err := ref.MainSeconds(g)
		if err != nil {
			return -1 // surfaces as a validation error
		}
		return s - platform.PreSeconds
	}
	one := func(seconds float64) func(int) float64 {
		return func(int) float64 { return seconds }
	}
	return ChainTemplate{Stages: []Stage{
		{Name: "caif", MinProcs: 1, MaxProcs: 1, Seconds: one(1), Blocking: true},
		{Name: "mp", MinProcs: 1, MaxProcs: 1, Seconds: one(1), Blocking: true},
		{Name: "pcr", MinProcs: platform.MinGroup, MaxProcs: platform.MaxGroup, Seconds: pcr, Blocking: true},
		{Name: "cof", MinProcs: 1, MaxProcs: 1, Seconds: one(60)},
		{Name: "emi", MinProcs: 1, MaxProcs: 1, Seconds: one(60)},
		{Name: "cd", MinProcs: 1, MaxProcs: 1, Seconds: one(60)},
	}}
}
