package generic

import (
	"math"
	"testing"

	"oagrid/internal/core"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
)

func TestValidate(t *testing.T) {
	good := OceanAtmosphere()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ChainTemplate{
		{},
		{Stages: []Stage{{Name: "x", MinProcs: 1, MaxProcs: 1, Blocking: true}}},                                                                                                                          // nil Seconds
		{Stages: []Stage{{Name: "x", MinProcs: 0, MaxProcs: 1, Seconds: func(int) float64 { return 1 }, Blocking: true}}},                                                                                 // bad range
		{Stages: []Stage{{Name: "x", MinProcs: 1, MaxProcs: 1, Seconds: func(int) float64 { return 1 }}}},                                                                                                 // no blocking stage
		{Stages: []Stage{{Name: "x", MinProcs: 2, MaxProcs: 4, Seconds: func(int) float64 { return 1 }}, {Name: "y", MinProcs: 1, MaxProcs: 1, Seconds: func(int) float64 { return 1 }, Blocking: true}}}, // parallel non-blocking
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: invalid template accepted", i)
		}
	}
}

// TestOceanAtmosphereFusionMatchesHandFused: compiling the paper's own
// six-stage template must reproduce the hand-fused reference timing exactly
// (main = caif + mp + pcr, post = cof + emi + cd).
func TestOceanAtmosphereFusionMatchesHandFused(t *testing.T) {
	tm, err := OceanAtmosphere().Timing()
	if err != nil {
		t.Fatal(err)
	}
	ref := platform.ReferenceTiming()
	lo, hi := tm.Range()
	rlo, rhi := ref.Range()
	if lo != rlo || hi != rhi {
		t.Fatalf("fused range [%d,%d], want [%d,%d]", lo, hi, rlo, rhi)
	}
	for g := lo; g <= hi; g++ {
		got, err := tm.MainSeconds(g)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.MainSeconds(g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("fused main at g=%d is %g, hand-fused %g", g, got, want)
		}
	}
	if got, want := tm.PostSeconds(), ref.PostSeconds(); got != want {
		t.Fatalf("fused post %g, want %g", got, want)
	}
}

// TestGenericPipelineEndToEnd schedules a three-stage video-pipeline-like
// chain (decode [moldable] → analyze [moldable] → archive [non-blocking])
// through the whole existing stack: heuristic planning, executor, and
// repartition across two clusters.
func TestGenericPipelineEndToEnd(t *testing.T) {
	tmpl := ChainTemplate{Stages: []Stage{
		{Name: "decode", MinProcs: 1, MaxProcs: 4,
			Seconds: func(g int) float64 { return 100 + 400/float64(g) }, Blocking: true},
		{Name: "analyze", MinProcs: 2, MaxProcs: 8,
			Seconds: func(g int) float64 { return 200 + 1600/float64(g) }, Blocking: true},
		{Name: "archive", MinProcs: 1, MaxProcs: 1,
			Seconds: func(int) float64 { return 45 }},
	}}
	tm, err := tmpl.Timing()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := tm.Range()
	if lo != 2 || hi != 8 {
		t.Fatalf("fused range [%d,%d], want [2,8]", lo, hi)
	}
	// Fused main at g=8: decode clamps to 4 (100+100), analyze 200+200.
	got, err := tm.MainSeconds(8)
	if err != nil {
		t.Fatal(err)
	}
	if want := 200.0 + 400.0; got != want {
		t.Fatalf("fused main at 8 = %g, want %g", got, want)
	}
	if tm.PostSeconds() != 45 {
		t.Fatalf("fused post = %g, want 45", tm.PostSeconds())
	}

	app := core.Application{Scenarios: 6, Months: 40}
	for _, h := range core.All() {
		al, err := h.Plan(app, tm, 30)
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		res, err := exec.Run(app, tm, 30, al, exec.Options{RecordTrace: true})
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		if err := res.Trace.Validate(app.Scenarios, app.Months); err != nil {
			t.Fatalf("%s: invalid trace: %v", h.Name(), err)
		}
	}

	// Heterogeneous repartition over a fast and a slow variant of the
	// template's platform.
	slow := scaled{tm, 1.4}
	vecFast, err := core.PerformanceVector(app, tm, 24, core.Knapsack{}, exec.Evaluator(exec.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	vecSlow, err := core.PerformanceVector(app, slow, 24, core.Knapsack{}, exec.Evaluator(exec.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Repartition([][]float64{vecFast, vecSlow})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counts[0] < rep.Counts[1] {
		t.Fatalf("fast cluster got %d chains, slow got %d", rep.Counts[0], rep.Counts[1])
	}
}

// scaled wraps a Timing with a slowdown factor.
type scaled struct {
	platform.Timing
	factor float64
}

func (s scaled) MainSeconds(g int) (float64, error) {
	v, err := s.Timing.MainSeconds(g)
	return v * s.factor, err
}
func (s scaled) PostSeconds() float64 { return s.Timing.PostSeconds() * s.factor }

func TestNegativeDurationRejected(t *testing.T) {
	tmpl := ChainTemplate{Stages: []Stage{
		{Name: "bad", MinProcs: 1, MaxProcs: 4,
			Seconds: func(g int) float64 { return float64(2 - g) }, Blocking: true},
	}}
	if _, err := tmpl.Timing(); err == nil {
		t.Fatal("negative stage duration accepted")
	}
}

func TestStageMinimumEnforced(t *testing.T) {
	// A blocking stage needing at least 6 processors narrows the fused range.
	tmpl := ChainTemplate{Stages: []Stage{
		{Name: "big", MinProcs: 6, MaxProcs: 10,
			Seconds: func(g int) float64 { return 1000 / float64(g) }, Blocking: true},
		{Name: "small", MinProcs: 1, MaxProcs: 1,
			Seconds: func(int) float64 { return 5 }, Blocking: true},
	}}
	tm, err := tmpl.Timing()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := tm.Range()
	if lo != 6 || hi != 10 {
		t.Fatalf("range [%d,%d], want [6,10]", lo, hi)
	}
	if _, err := tm.MainSeconds(5); err == nil {
		t.Fatal("undersized group accepted")
	}
}
