// Package core implements the paper's contribution: the analytical makespan
// model for the fused two-task application (equations 1–5), the basic
// resource-grouping heuristic and its three improvements (idle-resource
// redistribution, all-resources-to-main, knapsack grouping), and the
// heterogeneous-grid adaptation (per-cluster performance vectors plus the
// greedy scenario repartition of Algorithm 1).
package core

import (
	"errors"
	"fmt"

	"oagrid/internal/platform"
)

// Application describes one Ocean-Atmosphere experiment in the simplified
// model of the paper's §4.1: NS independent scenarios, each a chain of NM
// monthly simulations, where each month is one moldable main task followed by
// one single-processor post task.
type Application struct {
	Scenarios int // NS: independent simulations run concurrently
	Months    int // NM: months per scenario (1800 for the 150-year study)
}

// Default returns the experiment configuration of the paper's evaluation:
// around 10 scenarios of 150 years (1800 months).
func Default() Application {
	return Application{Scenarios: 10, Months: 1800}
}

// Tasks returns nbtasks = NS × NM, the number of main (and of post) tasks.
func (a Application) Tasks() int { return a.Scenarios * a.Months }

// Validate checks the experiment is non-degenerate.
func (a Application) Validate() error {
	if a.Scenarios <= 0 {
		return fmt.Errorf("core: need at least one scenario, got %d", a.Scenarios)
	}
	if a.Months <= 0 {
		return fmt.Errorf("core: need at least one month per scenario, got %d", a.Months)
	}
	return nil
}

// Allocation is a division of a cluster's R processors into disjoint
// main-task groups plus a pool of post-processing processors. It is the
// output of every heuristic and the input of the executor.
type Allocation struct {
	// Groups holds the processor count of each main-task group, at most one
	// group per scenario. Order is not significant; heuristics emit
	// descending sizes.
	Groups []int
	// PostProcs is the number of processors dedicated to post tasks. Any
	// processor of the cluster also absorbs post tasks once main tasks no
	// longer need it (see internal/exec).
	PostProcs int
	// Heuristic records which planner produced the allocation.
	Heuristic string
}

// UsedProcs returns the total processors claimed by the allocation.
func (al Allocation) UsedProcs() int {
	n := al.PostProcs
	for _, g := range al.Groups {
		n += g
	}
	return n
}

// MaxConcurrentMains returns how many main tasks can run simultaneously.
func (al Allocation) MaxConcurrentMains() int { return len(al.Groups) }

// Validate checks the allocation against the application, the timing model's
// moldable range and the cluster size.
func (al Allocation) Validate(app Application, t platform.Timing, procs int) error {
	if err := app.Validate(); err != nil {
		return err
	}
	if t == nil {
		return errors.New("core: nil timing model")
	}
	if len(al.Groups) == 0 {
		return errors.New("core: allocation has no main-task group")
	}
	if len(al.Groups) > app.Scenarios {
		return fmt.Errorf("core: %d groups exceed the %d concurrently runnable scenarios",
			len(al.Groups), app.Scenarios)
	}
	lo, hi := t.Range()
	for i, g := range al.Groups {
		if g < lo || g > hi {
			return fmt.Errorf("core: group %d has %d processors, outside moldable range [%d,%d]", i, g, lo, hi)
		}
	}
	if al.PostProcs < 0 {
		return fmt.Errorf("core: negative post-processing pool %d", al.PostProcs)
	}
	if used := al.UsedProcs(); used > procs {
		return fmt.Errorf("core: allocation uses %d processors on a %d-processor cluster", used, procs)
	}
	return nil
}

// String renders the allocation compactly, e.g. "knapsack: 3×8 + 4×7, post=1".
func (al Allocation) String() string {
	if len(al.Groups) == 0 {
		return fmt.Sprintf("%s: (empty)", al.Heuristic)
	}
	out := fmt.Sprintf("%s: ", al.Heuristic)
	run, size := 0, al.Groups[0]
	flush := func() {
		if run > 0 {
			if out[len(out)-2:] != ": " {
				out += " + "
			}
			out += fmt.Sprintf("%d×%d", run, size)
		}
	}
	for _, g := range al.Groups {
		if g == size {
			run++
			continue
		}
		flush()
		run, size = 1, g
	}
	flush()
	out += fmt.Sprintf(", post=%d", al.PostProcs)
	return out
}
