package core

import (
	"fmt"
	"math"

	"oagrid/internal/platform"
)

// UniformEstimate is the analytical makespan model of the paper's §4.1 for a
// homogeneous cluster of R processors where every main task runs on the same
// number G of processors. It implements equations (1) through (5):
//
//   - nbmax = min(NS, ⌊R/G⌋) main tasks run concurrently, in ⌈nbtasks/nbmax⌉
//     "waves" of duration TG (equation 1);
//   - R2 = R − nbmax·G leftover processors absorb post tasks while mains run;
//   - post tasks that do not fit (the "overpass", Figures 4–6) plus those of
//     the final wave(s) run after the mains on all R processors
//     (equations 2–5, split on R2 = 0 and on nbused = nbtasks mod nbmax).
//
// The function returns the modeled makespan in seconds.
func UniformEstimate(app Application, t platform.Timing, procs, group int) (float64, error) {
	if err := app.Validate(); err != nil {
		return 0, err
	}
	tg, err := t.MainSeconds(group)
	if err != nil {
		return 0, err
	}
	tp := t.PostSeconds()
	if procs < group {
		return 0, fmt.Errorf("core: %d processors cannot host one group of %d", procs, group)
	}
	nbmax := procs / group
	if nbmax > app.Scenarios {
		nbmax = app.Scenarios
	}
	nbtasks := app.Tasks()
	r2 := procs - nbmax*group
	n := ceilDiv(nbtasks, nbmax)
	nbused := nbtasks % nbmax
	msMulti := float64(n) * tg // equation (1)
	if tp <= 0 {
		return msMulti, nil
	}
	// ratio = ⌊TG/TP⌋: post tasks one processor completes during one wave.
	ratio := int(math.Floor(tg / tp))

	if r2 == 0 {
		if nbused == 0 {
			// Equation (2): no processor is free until the mains finish; all
			// posts run at the end on the full cluster.
			return msMulti + float64(ceilDiv(nbtasks, procs))*tp, nil
		}
		// Equation (3): the last, incomplete wave leaves Rleft processors
		// idle; they absorb ⌊TG/TP⌋ posts each, the remainder runs at the end.
		rleft := procs - nbused*group
		remPost := nbused + maxInt(0, nbtasks-nbused-ratio*rleft)
		return msMulti + float64(ceilDiv(remPost, procs))*tp, nil
	}

	// R2 > 0: each complete wave generates nbmax posts while the R2 reserved
	// processors complete Npossible of them.
	npossible := ratio * r2
	if nbused == 0 {
		// Equation (4): overflow from the first n−1 waves plus the final
		// wave's posts run at the end.
		noverpass := maxInt(0, (n-1)*(nbmax-npossible))
		return msMulti + float64(ceilDiv(noverpass+nbmax, procs))*tp, nil
	}
	// Equation (5): overflow from the first n−2 complete waves, plus the last
	// complete wave's nbmax posts, lands on the processors freed during the
	// incomplete wave (Rleft); what still does not fit, plus the incomplete
	// wave's nbused posts, runs at the end.
	noverpass := maxInt(0, (n-2)*(nbmax-npossible))
	novertot := noverpass + nbmax
	rleft := procs - group*nbused
	remPost := nbused + maxInt(0, novertot-ratio*rleft)
	return msMulti + float64(ceilDiv(remPost, procs))*tp, nil
}

// PostAtEndEstimate models the makespan when no processor is reserved for
// post-processing and every post task runs after the mains (Improvement 2's
// selection model): ⌈nbtasks/nbmax⌉·TG + ⌈nbtasks/R⌉·TP.
func PostAtEndEstimate(app Application, t platform.Timing, procs, group int) (float64, error) {
	if err := app.Validate(); err != nil {
		return 0, err
	}
	tg, err := t.MainSeconds(group)
	if err != nil {
		return 0, err
	}
	if procs < group {
		return 0, fmt.Errorf("core: %d processors cannot host one group of %d", procs, group)
	}
	nbmax := procs / group
	if nbmax > app.Scenarios {
		nbmax = app.Scenarios
	}
	nbtasks := app.Tasks()
	ms := float64(ceilDiv(nbtasks, nbmax)) * tg
	if tp := t.PostSeconds(); tp > 0 {
		ms += float64(ceilDiv(nbtasks, procs)) * tp
	}
	return ms, nil
}

// ThroughputEstimate lower-bounds the makespan of an arbitrary (possibly
// unequal-sized) set of groups by steady-state throughput: nbtasks divided by
// the aggregate main-task rate Σ 1/T[gᵢ], plus one trailing post phase. The
// knapsack heuristic maximizes exactly this aggregate rate; the executor
// (internal/exec) provides the exact event-driven value.
func ThroughputEstimate(app Application, t platform.Timing, alloc Allocation) (float64, error) {
	if len(alloc.Groups) == 0 {
		return 0, fmt.Errorf("core: empty allocation")
	}
	rate := 0.0
	for _, g := range alloc.Groups {
		tg, err := t.MainSeconds(g)
		if err != nil {
			return 0, err
		}
		rate += 1 / tg
	}
	ms := float64(app.Tasks()) / rate
	if tp := t.PostSeconds(); tp > 0 {
		ms += tp
	}
	return ms, nil
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		panic("core: ceilDiv by non-positive divisor")
	}
	return (a + b - 1) / b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
