package core

import (
	"math"
	"testing"
	"testing/quick"

	"oagrid/internal/platform"
)

// tiny returns a hand-checkable timing table: a main task takes 10 s on 2
// processors (the only allowed group size), a post task 3 s.
func tiny() platform.Table {
	return platform.Table{Main: map[int]float64{2: 10}, Post: 3}
}

func TestUniformEstimateHandChecked(t *testing.T) {
	cases := []struct {
		name    string
		app     Application
		procs   int
		group   int
		want    float64
		explain string
	}{
		{
			name: "r2_zero_exact_waves", app: Application{Scenarios: 2, Months: 3},
			procs: 4, group: 2, want: 36,
			// nbmax=2, R2=0, 3 waves of 10 s, then 6 posts on 4 procs:
			// 30 + ceil(6/4)*3 = 36 (equation 2).
		},
		{
			name: "r2_positive_posts_keep_up", app: Application{Scenarios: 2, Months: 3},
			procs: 5, group: 2, want: 33,
			// nbmax=2, R2=1, ratio=3 so Npossible=3>=2: no overpass; final
			// wave's 2 posts at the end: 30 + ceil(2/5)*3 = 33 (equation 4).
		},
		{
			name: "incomplete_wave_rleft_absorbs", app: Application{Scenarios: 3, Months: 3},
			procs: 5, group: 2, want: 53,
			// nbmax=2, 9 tasks, n=5, nbused=1, ratio=3, Npossible=3:
			// no overpass, Novertot=2 absorbed by Rleft=3; remPost=1:
			// 50 + ceil(1/5)*3 = 53 (equation 5).
		},
		{
			name: "r2_zero_incomplete_wave", app: Application{Scenarios: 3, Months: 3},
			procs: 4, group: 2, want: 53,
			// nbmax=2, R2=0, 9 tasks, n=5, nbused=1, Rleft=2, ratio=3:
			// remPost = 1 + max(0, 9-1-3*2) = 3; 50 + ceil(3/4)*3 = 53
			// (equation 3).
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := UniformEstimate(tc.app, tiny(), tc.procs, tc.group)
			if err != nil {
				t.Fatalf("UniformEstimate: %v", err)
			}
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("UniformEstimate = %g, want %g", got, tc.want)
			}
		})
	}
}

func TestUniformEstimateZeroPost(t *testing.T) {
	tm := platform.Table{Main: map[int]float64{2: 10}, Post: 0}
	got, err := UniformEstimate(Application{Scenarios: 2, Months: 3}, tm, 4, 2)
	if err != nil {
		t.Fatalf("UniformEstimate: %v", err)
	}
	if got != 30 {
		t.Fatalf("zero-post makespan = %g, want 30", got)
	}
}

func TestUniformEstimateErrors(t *testing.T) {
	if _, err := UniformEstimate(Application{}, tiny(), 4, 2); err == nil {
		t.Error("expected error for invalid application")
	}
	if _, err := UniformEstimate(Application{Scenarios: 1, Months: 1}, tiny(), 1, 2); err == nil {
		t.Error("expected error when the cluster cannot host one group")
	}
	if _, err := UniformEstimate(Application{Scenarios: 1, Months: 1}, tiny(), 4, 3); err == nil {
		t.Error("expected error for a group size outside the table")
	}
}

// TestUniformEstimateLowerBounds checks the model never reports less than
// the two trivial lower bounds: the wave bound and the post-throughput bound.
func TestUniformEstimateLowerBounds(t *testing.T) {
	ref := platform.ReferenceTiming()
	f := func(rRaw, nsRaw, nmRaw uint8) bool {
		procs := 4 + int(rRaw)%200
		app := Application{Scenarios: 1 + int(nsRaw)%12, Months: 1 + int(nmRaw)%40}
		lo, hi := ref.Range()
		for g := lo; g <= hi && g <= procs; g++ {
			ms, err := UniformEstimate(app, ref, procs, g)
			if err != nil {
				return false
			}
			tg, _ := ref.MainSeconds(g)
			nbmax := procs / g
			if nbmax > app.Scenarios {
				nbmax = app.Scenarios
			}
			waves := float64((app.Tasks() + nbmax - 1) / nbmax)
			if ms < waves*tg-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPostAtEndEstimate(t *testing.T) {
	// nbmax=2, 3 waves of 10 plus all 6 posts at the end on 5 procs.
	got, err := PostAtEndEstimate(Application{Scenarios: 2, Months: 3}, tiny(), 5, 2)
	if err != nil {
		t.Fatalf("PostAtEndEstimate: %v", err)
	}
	if want := 30 + 2*3.0; got != want {
		t.Fatalf("PostAtEndEstimate = %g, want %g", got, want)
	}
}

func TestThroughputEstimate(t *testing.T) {
	tm := platform.Table{Main: map[int]float64{2: 10, 3: 6}, Post: 3}
	al := Allocation{Groups: []int{3, 2}}
	// Aggregate rate = 1/6 + 1/10 = 4/15; 12 tasks / rate + one post phase.
	got, err := ThroughputEstimate(Application{Scenarios: 4, Months: 3}, tm, al)
	if err != nil {
		t.Fatalf("ThroughputEstimate: %v", err)
	}
	want := 12/(1.0/6+1.0/10) + 3
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("ThroughputEstimate = %g, want %g", got, want)
	}
	if _, err := ThroughputEstimate(Application{Scenarios: 1, Months: 1}, tm, Allocation{}); err == nil {
		t.Error("expected error for empty allocation")
	}
}

func TestApplicationValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default application invalid: %v", err)
	}
	if Default().Tasks() != 18000 {
		t.Fatalf("default tasks = %d, want 18000", Default().Tasks())
	}
	for _, bad := range []Application{{}, {Scenarios: 1}, {Months: 1}, {Scenarios: -1, Months: 5}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("expected validation error for %+v", bad)
		}
	}
}

func TestAllocationValidate(t *testing.T) {
	app := Application{Scenarios: 3, Months: 2}
	ref := platform.ReferenceTiming()
	good := Allocation{Groups: []int{5, 4}, PostProcs: 1}
	if err := good.Validate(app, ref, 10); err != nil {
		t.Fatalf("valid allocation rejected: %v", err)
	}
	bad := []Allocation{
		{Groups: nil, PostProcs: 1},               // no group
		{Groups: []int{4, 4, 4, 4}},               // more groups than scenarios
		{Groups: []int{3}},                        // below moldable range
		{Groups: []int{12}},                       // above moldable range
		{Groups: []int{4}, PostProcs: -1},         // negative post pool
		{Groups: []int{11, 11, 11}, PostProcs: 0}, // 33 procs on a 10-proc cluster
	}
	for i, al := range bad {
		if err := al.Validate(app, ref, 10); err == nil {
			t.Errorf("case %d: expected validation error for %v", i, al)
		}
	}
}

func TestAllocationString(t *testing.T) {
	al := Allocation{Groups: []int{8, 8, 8, 7, 7, 7, 7}, PostProcs: 1, Heuristic: "redistribute"}
	if got, want := al.String(), "redistribute: 3×8 + 4×7, post=1"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
