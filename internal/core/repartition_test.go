package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"oagrid/internal/platform"
)

func TestRepartitionHandExample(t *testing.T) {
	// Two clusters; the first is twice as fast. Vectors are makespans for
	// 1..4 scenarios.
	perf := [][]float64{
		{10, 20, 30, 40},
		{20, 40, 60, 80},
	}
	res, err := Repartition(perf)
	if err != nil {
		t.Fatalf("Repartition: %v", err)
	}
	// Greedy: s0→c0(10), s1→c0(20)=c1(20) tie→c0? perf[0][1]=20 == perf[1][0]=20;
	// strict less keeps c0 only if 20<20 is false, so c1 wins the tie check
	// order: c0 considered first with 20, c1 not strictly less → c0.
	if got, want := res.Counts, []int{3, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("counts = %v, want %v", got, want)
	}
	if res.Makespan != 30 {
		t.Fatalf("makespan = %g, want 30", res.Makespan)
	}
	opt, err := OptimalRepartition(perf)
	if err != nil {
		t.Fatalf("OptimalRepartition: %v", err)
	}
	if opt.Makespan != 30 {
		t.Fatalf("optimal makespan = %g, want 30", opt.Makespan)
	}
}

func TestRepartitionErrors(t *testing.T) {
	if _, err := Repartition(nil); err == nil {
		t.Error("expected error for empty matrix")
	}
	if _, err := Repartition([][]float64{{}}); err == nil {
		t.Error("expected error for empty vector")
	}
	if _, err := Repartition([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("expected error for ragged matrix")
	}
	if _, err := Repartition([][]float64{{1, -2}}); err == nil {
		t.Error("expected error for non-positive makespan")
	}
	if _, err := Repartition([][]float64{{1, math.NaN()}}); err == nil {
		t.Error("expected error for NaN makespan")
	}
}

// TestRepartitionOptimal is the paper's optimality claim for Algorithm 1
// ("The algorithm gives the optimal repartition for the times given in the
// performance array"): for monotone non-decreasing performance vectors the
// greedy repartition matches exhaustive dynamic programming.
func TestRepartitionOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(5)
		ns := 1 + rng.Intn(10)
		perf := make([][]float64, n)
		for c := range perf {
			perf[c] = make([]float64, ns)
			acc := 0.0
			for k := range perf[c] {
				acc += 1 + rng.Float64()*100
				perf[c][k] = acc
			}
		}
		greedy, err := Repartition(perf)
		if err != nil {
			t.Fatalf("trial %d: greedy: %v", trial, err)
		}
		opt, err := OptimalRepartition(perf)
		if err != nil {
			t.Fatalf("trial %d: optimal: %v", trial, err)
		}
		if math.Abs(greedy.Makespan-opt.Makespan) > 1e-9*opt.Makespan {
			t.Fatalf("trial %d: greedy makespan %g != optimal %g (perf=%v)",
				trial, greedy.Makespan, opt.Makespan, perf)
		}
		total := 0
		for _, c := range greedy.Counts {
			total += c
		}
		if total != ns {
			t.Fatalf("trial %d: greedy assigned %d scenarios, want %d", trial, total, ns)
		}
	}
}

func TestRepartitionAssignmentConsistent(t *testing.T) {
	perf := [][]float64{
		{5, 11, 18, 30},
		{7, 13, 22, 35},
		{9, 20, 33, 50},
	}
	res, err := Repartition(perf)
	if err != nil {
		t.Fatalf("Repartition: %v", err)
	}
	counts := make([]int, len(perf))
	for _, c := range res.Assignment {
		counts[c]++
	}
	if !reflect.DeepEqual(counts, res.Counts) {
		t.Fatalf("assignment %v inconsistent with counts %v", res.Assignment, res.Counts)
	}
}

func TestPerformanceVectorMonotone(t *testing.T) {
	app := Application{Scenarios: 8, Months: 24}
	ref := platform.ReferenceTiming()
	for _, h := range All() {
		vec, err := PerformanceVector(app, ref, 40, h, nil)
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		if len(vec) != app.Scenarios {
			t.Fatalf("%s: vector length %d, want %d", h.Name(), len(vec), app.Scenarios)
		}
		for k := 1; k < len(vec); k++ {
			if vec[k] < vec[k-1]-1e-6 {
				t.Errorf("%s: makespan decreases from %g (k=%d) to %g (k=%d)",
					h.Name(), vec[k-1], k, vec[k], k+1)
			}
		}
	}
}

// TestEstimateEvaluatorUniform checks the fallback evaluator dispatches
// uniform allocations to the exact closed form.
func TestEstimateEvaluatorUniform(t *testing.T) {
	app := Application{Scenarios: 4, Months: 10}
	ref := platform.ReferenceTiming()
	al, err := (Basic{}).Plan(app, ref, 30)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	got, err := EstimateEvaluator().Evaluate(app, ref, 30, al)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	want, err := UniformEstimate(app, ref, 30, al.Groups[0])
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	if got != want {
		t.Fatalf("evaluator = %g, closed form = %g", got, want)
	}
}

// TestRepartitionFavorsFastClusters mirrors the paper's conclusion ("The
// faster, the more DAGs it has to execute"): with two clusters differing only
// in speed, the faster one receives at least as many scenarios.
func TestRepartitionFavorsFastClusters(t *testing.T) {
	app := Default()
	fast := platform.ReferenceTiming()
	slow := fast
	slow.Speed = 1.5
	vFast, err := PerformanceVector(app, fast, 40, Basic{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	vSlow, err := PerformanceVector(app, slow, 40, Basic{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Repartition([][]float64{vFast, vSlow})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[0] < res.Counts[1] {
		t.Fatalf("fast cluster got %d scenarios, slow got %d", res.Counts[0], res.Counts[1])
	}
}
