package core

import (
	"fmt"
	"math"
	"sort"

	"oagrid/internal/knapsack"
	"oagrid/internal/platform"
)

// Heuristic plans an Allocation for an application on a homogeneous cluster.
type Heuristic interface {
	// Name identifies the heuristic in traces and figures.
	Name() string
	// Plan divides procs processors into main-task groups and a post pool.
	Plan(app Application, t platform.Timing, procs int) (Allocation, error)
}

// Heuristic names, used as labels throughout the figures.
const (
	NameBasic        = "basic"
	NameRedistribute = "redistribute" // paper's Improvement 1
	NameAllToMain    = "all-to-main"  // paper's Improvement 2
	NameKnapsack     = "knapsack"     // paper's Improvement 3
)

// All returns the four heuristics of the paper in presentation order.
func All() []Heuristic {
	return []Heuristic{Basic{}, Redistribute{}, AllToMain{}, Knapsack{}}
}

// Improvements returns the three improved heuristics compared against the
// basic one in Figures 8 and 10.
func Improvements() []Heuristic {
	return []Heuristic{Redistribute{}, AllToMain{}, Knapsack{}}
}

// ByName returns the heuristic with the given name.
func ByName(name string) (Heuristic, error) {
	for _, h := range All() {
		if h.Name() == name {
			return h, nil
		}
	}
	return nil, fmt.Errorf("core: unknown heuristic %q", name)
}

// bestUniformGroup scans the moldable range and returns the group size G
// minimizing estimate(G), preferring the smaller G on ties.
func bestUniformGroup(app Application, t platform.Timing, procs int,
	estimate func(group int) (float64, error)) (int, float64, error) {
	lo, hi := t.Range()
	bestG, bestMS := 0, 0.0
	for g := lo; g <= hi; g++ {
		if g > procs {
			break
		}
		ms, err := estimate(g)
		if err != nil {
			return 0, 0, err
		}
		if bestG == 0 || ms < bestMS {
			bestG, bestMS = g, ms
		}
	}
	if bestG == 0 {
		return 0, 0, fmt.Errorf("core: %d processors cannot host any group in [%d,%d]", procs, lo, hi)
	}
	return bestG, bestMS, nil
}

// Basic is the first scheduling heuristic of §4.1: all main tasks get the
// same number of processors G, chosen by minimizing the analytical model over
// G ∈ [4,11]; leftover processors serve post-processing.
type Basic struct{}

// Name implements Heuristic.
func (Basic) Name() string { return NameBasic }

// Plan implements Heuristic.
func (Basic) Plan(app Application, t platform.Timing, procs int) (Allocation, error) {
	if err := app.Validate(); err != nil {
		return Allocation{}, err
	}
	g, _, err := bestUniformGroup(app, t, procs, func(g int) (float64, error) {
		return UniformEstimate(app, t, procs, g)
	})
	if err != nil {
		return Allocation{}, err
	}
	nbmax := minInt(procs/g, app.Scenarios)
	groups := make([]int, nbmax)
	for i := range groups {
		groups[i] = g
	}
	return Allocation{
		Groups:    groups,
		PostProcs: procs - nbmax*g,
		Heuristic: NameBasic,
	}, nil
}

// Redistribute is the paper's Improvement 1: start from the basic grouping,
// keep only as many post-processing processors as the posts actually need
// (⌈nbmax/⌊TG/TP⌋⌉), and spread the processors left over across the main-task
// groups, making some groups one processor larger. For the paper's worked
// example (R = 53, NS = 10 → basic G = 7) this produces 3 groups of 8, 4
// groups of 7 and 1 post processor.
type Redistribute struct{}

// Name implements Heuristic.
func (Redistribute) Name() string { return NameRedistribute }

// Plan implements Heuristic.
func (Redistribute) Plan(app Application, t platform.Timing, procs int) (Allocation, error) {
	base, err := (Basic{}).Plan(app, t, procs)
	if err != nil {
		return Allocation{}, err
	}
	nbmax := len(base.Groups)
	g := base.Groups[0]
	tg, err := t.MainSeconds(g)
	if err != nil {
		return Allocation{}, err
	}
	tp := t.PostSeconds()
	needed := 0
	if tp > 0 {
		ratio := int(tg / tp)
		if ratio < 1 {
			// Posts are longer than mains; keep the whole leftover pool.
			needed = base.PostProcs
		} else {
			needed = minInt(base.PostProcs, ceilDiv(nbmax, ratio))
		}
	}
	extra := base.PostProcs - needed
	groups := append([]int(nil), base.Groups...)
	_, hi := t.Range()
	// Round-robin the spare processors over the groups, capped at the top of
	// the moldable range; whatever cannot be absorbed returns to the post pool.
	for extra > 0 {
		grew := false
		for i := range groups {
			if extra == 0 {
				break
			}
			if groups[i] < hi {
				groups[i]++
				extra--
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(groups)))
	return Allocation{
		Groups:    groups,
		PostProcs: needed + extra,
		Heuristic: NameRedistribute,
	}, nil
}

// AllToMain is the paper's Improvement 2: no processor is reserved for
// post-processing — every processor joins a main-task group (the group size
// is re-optimized under the post-at-the-end model) and post tasks run on
// transiently idle processors or after the mains. This "permits to avoid that
// the resource used to compute the post-processing become idle waiting for
// new tasks".
type AllToMain struct{}

// Name implements Heuristic.
func (AllToMain) Name() string { return NameAllToMain }

// Plan implements Heuristic.
func (AllToMain) Plan(app Application, t platform.Timing, procs int) (Allocation, error) {
	if err := app.Validate(); err != nil {
		return Allocation{}, err
	}
	g, _, err := bestUniformGroup(app, t, procs, func(g int) (float64, error) {
		return PostAtEndEstimate(app, t, procs, g)
	})
	if err != nil {
		return Allocation{}, err
	}
	nbmax := minInt(procs/g, app.Scenarios)
	groups := make([]int, nbmax)
	for i := range groups {
		groups[i] = g
	}
	extra := procs - nbmax*g
	_, hi := t.Range()
	for extra > 0 {
		grew := false
		for i := range groups {
			if extra == 0 {
				break
			}
			if groups[i] < hi {
				groups[i]++
				extra--
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(groups)))
	// extra > 0 only when every group is saturated at the top of the range;
	// those processors can only ever serve post tasks.
	return Allocation{
		Groups:    groups,
		PostProcs: extra,
		Heuristic: NameAllToMain,
	}, nil
}

// Knapsack is the paper's Improvement 3 and best heuristic: the division of R
// processors into groups is an instance of the bounded knapsack problem with
// a cardinality constraint. Item i is "a group of i processors" (i in the
// moldable range), with cost i and value 1/T[i] — "the fraction of a
// multiprocessor task that gets executed during a time unit for that specific
// group of processors" — under Σ i·nᵢ ≤ R and Σ nᵢ ≤ NS.
//
// On top of the paper's formulation the planner is saturation-aware: when an
// allocation has exactly NS groups, no scenario ever waits, so each scenario
// is effectively pinned to one group and the makespan degenerates to
// NM·max(T[gᵢ]) instead of the throughput bound — a slow leftover group then
// drags the whole experiment (see the scheduling-pathology note in
// EXPERIMENTS.md). Plan therefore solves the knapsack for every group-count
// bound m ≤ NS and keeps the solution whose pinning-aware estimate is
// smallest. Literal disables this and returns the paper's raw formulation.
type Knapsack struct {
	// Value optionally overrides the per-item value function; nil means the
	// paper's 1/T[g]. The ablation harness uses this hook.
	Value func(g int, tg float64) float64
	// Literal selects the paper's raw formulation: one solve with the
	// cardinality bound NS, ignoring the pinning degeneration.
	Literal bool
}

// Name implements Heuristic.
func (k Knapsack) Name() string { return NameKnapsack }

// Plan implements Heuristic.
func (k Knapsack) Plan(app Application, t platform.Timing, procs int) (Allocation, error) {
	if err := app.Validate(); err != nil {
		return Allocation{}, err
	}
	prob, sizes, err := k.problem(app, t, procs)
	if err != nil {
		return Allocation{}, err
	}
	bounds := []int{app.Scenarios}
	if !k.Literal {
		bounds = bounds[:0]
		for m := app.Scenarios; m >= 1; m-- {
			bounds = append(bounds, m)
		}
	}
	// Candidate solutions: every cardinality bound m, with and without one
	// processor reserved for post-processing (the reserve lets a max-rate
	// plan that would otherwise consume the whole cluster compete against a
	// basic-shaped plan that absorbs posts concurrently).
	bestGroups := []int(nil)
	bestCost := 0
	bestEst := math.Inf(1)
	maxReserve := 0
	if !k.Literal {
		maxReserve = 1
	}
	for _, m := range bounds {
		for reserve := 0; reserve <= maxReserve; reserve++ {
			if procs-reserve <= 0 {
				continue
			}
			prob.MaxItems = m
			prob.Capacity = procs - reserve
			sol, err := knapsack.Solve(prob)
			if err != nil {
				return Allocation{}, err
			}
			if sol.Items == 0 || sol.Items > m {
				continue
			}
			var groups []int
			for i, cnt := range sol.Counts {
				for j := 0; j < cnt; j++ {
					groups = append(groups, sizes[i])
				}
			}
			est, err := pinAwareEstimate(app, t, groups, procs-sol.Cost, procs)
			if err != nil {
				return Allocation{}, err
			}
			if est < bestEst {
				bestEst = est
				bestGroups = groups
				bestCost = sol.Cost
			}
		}
	}
	// The max-rate solutions above can all carry a slow straggler group when
	// the benchmark table is irregular; make sure the plain uniform
	// groupings (the shapes the basic heuristic uses) compete too, so the
	// planner never returns an allocation it estimates worse than them.
	if !k.Literal {
		lo, hi := t.Range()
		for g := lo; g <= hi && g <= procs; g++ {
			n := minInt(procs/g, app.Scenarios)
			if n == 0 {
				continue
			}
			groups := make([]int, n)
			for i := range groups {
				groups[i] = g
			}
			est, err := pinAwareEstimate(app, t, groups, procs-n*g, procs)
			if err != nil {
				return Allocation{}, err
			}
			if est < bestEst {
				bestEst = est
				bestGroups = groups
				bestCost = n * g
			}
		}
	}
	if len(bestGroups) == 0 {
		lo, _ := t.Range()
		return Allocation{}, fmt.Errorf("core: %d processors cannot host any group of at least %d", procs, lo)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(bestGroups)))
	return Allocation{
		Groups:    bestGroups,
		PostProcs: procs - bestCost,
		Heuristic: NameKnapsack,
	}, nil
}

// pinAwareEstimate models the makespan of a group multiset. Main phase: with
// fewer groups than scenarios the executor rotates scenarios and achieves
// the aggregate-throughput bound; with exactly NS groups every scenario is
// pinned to one group and the slowest group sets the pace. Post phase: with
// no processor left over, every group is busy until the mains end and the
// full post-processing volume drains afterwards on the whole cluster; with a
// leftover pool the posts are absorbed concurrently and only the final
// handful remains.
func pinAwareEstimate(app Application, t platform.Timing, groups []int, leftover, procs int) (float64, error) {
	rate, maxT := 0.0, 0.0
	for _, g := range groups {
		tg, err := t.MainSeconds(g)
		if err != nil {
			return 0, err
		}
		rate += 1 / tg
		if tg > maxT {
			maxT = tg
		}
	}
	var mains float64
	if len(groups) >= app.Scenarios {
		mains = float64(app.Months) * maxT
	} else {
		mains = float64(app.Tasks()) / rate
	}
	if tp := t.PostSeconds(); tp > 0 {
		if leftover == 0 {
			mains += float64(app.Tasks()) * tp / float64(procs)
		} else {
			mains += tp
		}
	}
	return mains, nil
}

// problem builds the knapsack instance for the given cluster size.
func (k Knapsack) problem(app Application, t platform.Timing, procs int) (knapsack.Problem, []int, error) {
	lo, hi := t.Range()
	var items []knapsack.Item
	var sizes []int
	for g := lo; g <= hi; g++ {
		tg, err := t.MainSeconds(g)
		if err != nil {
			return knapsack.Problem{}, nil, err
		}
		v := 1 / tg
		if k.Value != nil {
			v = k.Value(g, tg)
		}
		items = append(items, knapsack.Item{
			Name:  fmt.Sprintf("group-%d", g),
			Cost:  g,
			Value: v,
		})
		sizes = append(sizes, g)
	}
	return knapsack.Problem{
		Items:    items,
		Capacity: procs,
		MaxItems: app.Scenarios,
	}, sizes, nil
}
