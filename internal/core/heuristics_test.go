package core

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"oagrid/internal/knapsack"
	"oagrid/internal/platform"
)

func TestAllHeuristicNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, h := range All() {
		if seen[h.Name()] {
			t.Fatalf("duplicate heuristic name %q", h.Name())
		}
		seen[h.Name()] = true
		got, err := ByName(h.Name())
		if err != nil {
			t.Fatalf("ByName(%q): %v", h.Name(), err)
		}
		if got.Name() != h.Name() {
			t.Fatalf("ByName(%q) returned %q", h.Name(), got.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown heuristic name")
	}
	if len(Improvements()) != 3 {
		t.Fatalf("Improvements() returned %d heuristics, want 3", len(Improvements()))
	}
}

// TestWorkedExample53 reproduces the paper's §4.2 worked example: with
// R = 53 and 10 scenarios the optimal grouping is G = 7 (seven groups of 7,
// 49 processors, 1 post processor needed, 3 idle), and Improvement 1 turns
// the idle processors into 3 groups of 8, 4 groups of 7 and 1 post processor.
func TestWorkedExample53(t *testing.T) {
	app := Default() // 10 scenarios × 1800 months
	ref := platform.ReferenceTiming()

	basic, err := (Basic{}).Plan(app, ref, 53)
	if err != nil {
		t.Fatalf("basic plan: %v", err)
	}
	wantBasic := []int{7, 7, 7, 7, 7, 7, 7}
	if !reflect.DeepEqual(basic.Groups, wantBasic) {
		t.Fatalf("basic grouping = %v, want %v", basic.Groups, wantBasic)
	}
	if basic.PostProcs != 4 {
		t.Fatalf("basic post pool = %d, want 4", basic.PostProcs)
	}

	redis, err := (Redistribute{}).Plan(app, ref, 53)
	if err != nil {
		t.Fatalf("redistribute plan: %v", err)
	}
	wantRedis := []int{8, 8, 8, 7, 7, 7, 7}
	if !reflect.DeepEqual(redis.Groups, wantRedis) {
		t.Fatalf("redistribute grouping = %v, want %v (paper's 3×8 + 4×7)", redis.Groups, wantRedis)
	}
	if redis.PostProcs != 1 {
		t.Fatalf("redistribute post pool = %d, want 1", redis.PostProcs)
	}
}

func TestBasicMatchesExhaustiveScan(t *testing.T) {
	app := Application{Scenarios: 10, Months: 60}
	ref := platform.ReferenceTiming()
	for procs := 11; procs <= 130; procs += 7 {
		al, err := (Basic{}).Plan(app, ref, procs)
		if err != nil {
			t.Fatalf("R=%d: %v", procs, err)
		}
		g := al.Groups[0]
		best, bestG := math.Inf(1), 0
		lo, hi := ref.Range()
		for cand := lo; cand <= hi && cand <= procs; cand++ {
			ms, err := UniformEstimate(app, ref, procs, cand)
			if err != nil {
				t.Fatalf("estimate R=%d G=%d: %v", procs, cand, err)
			}
			if ms < best {
				best, bestG = ms, cand
			}
		}
		if g != bestG {
			t.Errorf("R=%d: basic chose G=%d, exhaustive scan says G=%d", procs, g, bestG)
		}
	}
}

func TestBasicErrorWhenTooSmall(t *testing.T) {
	ref := platform.ReferenceTiming()
	if _, err := (Basic{}).Plan(Default(), ref, 3); err == nil {
		t.Error("expected error for a 3-processor cluster (min group is 4)")
	}
}

func TestAllToMainUsesEverything(t *testing.T) {
	app := Application{Scenarios: 10, Months: 24}
	ref := platform.ReferenceTiming()
	for procs := 11; procs <= 120; procs += 13 {
		al, err := (AllToMain{}).Plan(app, ref, procs)
		if err != nil {
			t.Fatalf("R=%d: %v", procs, err)
		}
		if err := al.Validate(app, ref, procs); err != nil {
			t.Fatalf("R=%d: invalid allocation: %v", procs, err)
		}
		_, hi := ref.Range()
		saturated := true
		for _, g := range al.Groups {
			if g < hi {
				saturated = false
				break
			}
		}
		canGrow := len(al.Groups) < app.Scenarios && procs-al.UsedProcs()+al.PostProcs >= 0
		if al.PostProcs > 0 && !saturated && canGrow {
			// Post processors are only allowed once every group is maxed out.
			t.Errorf("R=%d: all-to-main left %d post processors with unsaturated groups %v",
				procs, al.PostProcs, al.Groups)
		}
		if al.UsedProcs() != procs && len(al.Groups) == app.Scenarios && saturated {
			t.Errorf("R=%d: unused processors unaccounted: %v", procs, al)
		}
	}
}

// TestKnapsackMatchesBruteForce verifies the literal (paper-formulation) DP
// grouping achieves the same aggregate throughput as exhaustive enumeration.
func TestKnapsackMatchesBruteForce(t *testing.T) {
	app := Application{Scenarios: 6, Months: 12}
	ref := platform.ReferenceTiming()
	h := Knapsack{Literal: true}
	for procs := 11; procs <= 66; procs += 5 {
		al, err := h.Plan(app, ref, procs)
		if err != nil {
			t.Fatalf("R=%d: %v", procs, err)
		}
		if err := al.Validate(app, ref, procs); err != nil {
			t.Fatalf("R=%d: invalid allocation %v: %v", procs, al, err)
		}
		prob, _, err := h.problem(app, ref, procs)
		if err != nil {
			t.Fatalf("R=%d: %v", procs, err)
		}
		brute, err := knapsack.SolveBrute(prob)
		if err != nil {
			t.Fatalf("R=%d: brute: %v", procs, err)
		}
		var rate float64
		for _, g := range al.Groups {
			tg, _ := ref.MainSeconds(g)
			rate += 1 / tg
		}
		if math.Abs(rate-brute.Value) > 1e-9*brute.Value {
			t.Errorf("R=%d: knapsack rate %.9f != brute-force optimum %.9f (groups %v)",
				procs, rate, brute.Value, al.Groups)
		}
	}
}

// TestKnapsackNeverWorseThanBasicRate checks the literal knapsack's aggregate
// throughput dominates the basic grouping's throughput, which is the point of
// Improvement 3.
func TestKnapsackNeverWorseThanBasicRate(t *testing.T) {
	app := Application{Scenarios: 10, Months: 12}
	ref := platform.ReferenceTiming()
	rate := func(groups []int) float64 {
		r := 0.0
		for _, g := range groups {
			tg, _ := ref.MainSeconds(g)
			r += 1 / tg
		}
		return r
	}
	for procs := 11; procs <= 140; procs++ {
		b, err := (Basic{}).Plan(app, ref, procs)
		if err != nil {
			t.Fatalf("R=%d basic: %v", procs, err)
		}
		k, err := (Knapsack{Literal: true}).Plan(app, ref, procs)
		if err != nil {
			t.Fatalf("R=%d knapsack: %v", procs, err)
		}
		if rate(k.Groups) < rate(b.Groups)-1e-12 {
			t.Errorf("R=%d: knapsack rate %.9f below basic rate %.9f", procs, rate(k.Groups), rate(b.Groups))
		}
	}
}

// TestKnapsackSaturationAware is the regression test for the pinning
// pathology: at R=59 with 10 scenarios the literal formulation builds ten
// groups including one slow 5-processor group, pinning one scenario chain to
// it (makespan NM·T[5]); the default planner must avoid that and never lose
// to the literal plan under the pin-aware estimate.
func TestKnapsackSaturationAware(t *testing.T) {
	app := Default()
	ref := platform.ReferenceTiming()

	lit, err := (Knapsack{Literal: true}).Plan(app, ref, 59)
	if err != nil {
		t.Fatal(err)
	}
	if len(lit.Groups) != app.Scenarios {
		t.Fatalf("literal plan at R=59 has %d groups, expected the saturated %d: %v",
			len(lit.Groups), app.Scenarios, lit.Groups)
	}
	def, err := (Knapsack{}).Plan(app, ref, 59)
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Groups) >= app.Scenarios {
		t.Fatalf("saturation-aware plan still saturated: %v", def.Groups)
	}
	litEst, err := pinAwareEstimate(app, ref, lit.Groups, 59-lit.UsedProcs()+lit.PostProcs, 59)
	if err != nil {
		t.Fatal(err)
	}
	defEst, err := pinAwareEstimate(app, ref, def.Groups, 59-def.UsedProcs()+def.PostProcs, 59)
	if err != nil {
		t.Fatal(err)
	}
	if defEst > litEst {
		t.Fatalf("saturation-aware estimate %g worse than literal %g", defEst, litEst)
	}

	// Across the sweep the default must never have a worse pin-aware
	// estimate than the literal plan.
	for procs := 11; procs <= 130; procs++ {
		litP, err := (Knapsack{Literal: true}).Plan(app, ref, procs)
		if err != nil {
			t.Fatal(err)
		}
		defP, err := (Knapsack{}).Plan(app, ref, procs)
		if err != nil {
			t.Fatal(err)
		}
		a, err := pinAwareEstimate(app, ref, litP.Groups, litP.PostProcs, procs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := pinAwareEstimate(app, ref, defP.Groups, defP.PostProcs, procs)
		if err != nil {
			t.Fatal(err)
		}
		if b > a*(1+1e-12) {
			t.Errorf("R=%d: saturation-aware estimate %g worse than literal %g", procs, b, a)
		}
	}
}

// TestHeuristicAllocationsAlwaysValid is a property test: every heuristic
// returns a validating allocation for any feasible cluster size.
func TestHeuristicAllocationsAlwaysValid(t *testing.T) {
	ref := platform.ReferenceTiming()
	f := func(rRaw, nsRaw, nmRaw uint8) bool {
		procs := 4 + int(rRaw)%250
		app := Application{Scenarios: 1 + int(nsRaw)%15, Months: 1 + int(nmRaw)%50}
		for _, h := range All() {
			al, err := h.Plan(app, ref, procs)
			if err != nil {
				return false
			}
			if al.Validate(app, ref, procs) != nil {
				return false
			}
			if al.Heuristic != h.Name() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestKnapsackCustomValue exercises the ablation hook. Literal mode keeps
// the hooked value function authoritative (the default planner would
// re-rank candidates by the pin-aware makespan estimate).
func TestKnapsackCustomValue(t *testing.T) {
	app := Application{Scenarios: 4, Months: 6}
	ref := platform.ReferenceTiming()
	h := Knapsack{Literal: true, Value: func(g int, tg float64) float64 { return 1 / (tg * float64(g)) }}
	al, err := h.Plan(app, ref, 30)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if err := al.Validate(app, ref, 30); err != nil {
		t.Fatalf("invalid allocation: %v", err)
	}
	// Under value 1/(T[g]·g) with the calibrated reference curve, the
	// per-group value peaks at g = 6 (g·T[g] is minimal there), and with the
	// cardinality bound the optimum takes only such groups.
	if len(al.Groups) != app.Scenarios {
		t.Fatalf("efficiency-valued knapsack built %d groups, want %d", len(al.Groups), app.Scenarios)
	}
	for _, g := range al.Groups {
		if g != 6 {
			t.Fatalf("efficiency-valued knapsack chose group of %d, want all 6 (min of g·T[g])", g)
		}
	}
}
