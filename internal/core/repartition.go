package core

import (
	"errors"
	"fmt"
	"math"

	"oagrid/internal/platform"
)

// Evaluator computes the makespan of an allocation; internal/exec provides
// the event-driven implementation, and EstimateEvaluator an analytical one.
// The indirection keeps core free of a dependency on the executor.
type Evaluator interface {
	Evaluate(app Application, t platform.Timing, procs int, alloc Allocation) (float64, error)
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(app Application, t platform.Timing, procs int, alloc Allocation) (float64, error)

// Evaluate implements Evaluator.
func (f EvaluatorFunc) Evaluate(app Application, t platform.Timing, procs int, alloc Allocation) (float64, error) {
	return f(app, t, procs, alloc)
}

// EstimateEvaluator is the analytical fallback evaluator: exact (paper
// equations) for uniform allocations, throughput-based otherwise.
func EstimateEvaluator() Evaluator {
	return EvaluatorFunc(func(app Application, t platform.Timing, procs int, alloc Allocation) (float64, error) {
		uniform := true
		for _, g := range alloc.Groups[1:] {
			if g != alloc.Groups[0] {
				uniform = false
				break
			}
		}
		if uniform && len(alloc.Groups) > 0 && alloc.PostProcs == procs-len(alloc.Groups)*alloc.Groups[0] {
			return UniformEstimate(app, t, procs, alloc.Groups[0])
		}
		return ThroughputEstimate(app, t, alloc)
	})
}

// PerformanceVector computes, for one cluster, the makespan of running
// 1, 2, …, NS scenarios with the given heuristic — the vector each cluster
// returns in step (2)/(3) of the paper's Figure-9 protocol. Entry k−1 is the
// makespan of k scenarios.
func PerformanceVector(app Application, t platform.Timing, procs int, h Heuristic, ev Evaluator) ([]float64, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if ev == nil {
		ev = EstimateEvaluator()
	}
	vec := make([]float64, app.Scenarios)
	for k := 1; k <= app.Scenarios; k++ {
		sub := Application{Scenarios: k, Months: app.Months}
		alloc, err := h.Plan(sub, t, procs)
		if err != nil {
			return nil, fmt.Errorf("core: performance vector at k=%d: %w", k, err)
		}
		ms, err := ev.Evaluate(sub, t, procs, alloc)
		if err != nil {
			return nil, fmt.Errorf("core: performance vector at k=%d: %w", k, err)
		}
		vec[k-1] = ms
	}
	return vec, nil
}

// RepartitionResult is the output of the scenario-to-cluster distribution.
type RepartitionResult struct {
	// Counts[c] is the number of scenarios assigned to cluster c.
	Counts []int
	// Assignment[s] is the cluster index chosen for scenario s, in the order
	// Algorithm 1 assigns them.
	Assignment []int
	// Makespan is the resulting global makespan: the maximum over clusters of
	// perf[c][Counts[c]-1].
	Makespan float64
}

// validatePerf checks the performance matrix is rectangular and positive.
func validatePerf(perf [][]float64) (scenarios int, err error) {
	if len(perf) == 0 {
		return 0, errors.New("core: repartition needs at least one cluster")
	}
	ns := len(perf[0])
	if ns == 0 {
		return 0, errors.New("core: empty performance vector")
	}
	for c, row := range perf {
		if len(row) != ns {
			return 0, fmt.Errorf("core: performance vector of cluster %d has length %d, want %d", c, len(row), ns)
		}
		for k, v := range row {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("core: invalid makespan %g for cluster %d at k=%d", v, c, k+1)
			}
		}
	}
	return ns, nil
}

// Repartition implements the paper's Algorithm 1 ("DAGs repartition on
// several clusters"): scenarios are assigned one at a time to the cluster
// whose makespan after receiving one more scenario is smallest. For
// non-decreasing performance vectors this greedy rule minimizes the global
// (max-over-clusters) makespan; TestRepartitionOptimal verifies it against
// exhaustive search.
func Repartition(perf [][]float64) (RepartitionResult, error) {
	ns, err := validatePerf(perf)
	if err != nil {
		return RepartitionResult{}, err
	}
	n := len(perf)
	res := RepartitionResult{
		Counts:     make([]int, n),
		Assignment: make([]int, ns),
	}
	for dag := 0; dag < ns; dag++ {
		msMin := math.Inf(1)
		clusterMin := -1
		for c := 0; c < n; c++ {
			if res.Counts[c] >= ns {
				continue // vector exhausted; cannot take more
			}
			if temp := perf[c][res.Counts[c]]; temp < msMin {
				msMin = temp
				clusterMin = c
			}
		}
		if clusterMin < 0 {
			return RepartitionResult{}, errors.New("core: no cluster can accept another scenario")
		}
		res.Counts[clusterMin]++
		res.Assignment[dag] = clusterMin
	}
	for c := 0; c < n; c++ {
		if res.Counts[c] == 0 {
			continue
		}
		if ms := perf[c][res.Counts[c]-1]; ms > res.Makespan {
			res.Makespan = ms
		}
	}
	return res, nil
}

// OptimalRepartition finds the distribution minimizing the global makespan by
// dynamic programming over (cluster prefix, scenarios placed). It is the
// reference the greedy Algorithm 1 is checked against.
func OptimalRepartition(perf [][]float64) (RepartitionResult, error) {
	ns, err := validatePerf(perf)
	if err != nil {
		return RepartitionResult{}, err
	}
	n := len(perf)
	const inf = math.MaxFloat64
	// best[c][k]: minimal max-makespan placing k scenarios on clusters 0..c.
	best := make([][]float64, n)
	choice := make([][]int, n)
	for c := 0; c < n; c++ {
		best[c] = make([]float64, ns+1)
		choice[c] = make([]int, ns+1)
		for k := 0; k <= ns; k++ {
			if c == 0 {
				if k == 0 {
					best[c][k] = 0
				} else {
					best[c][k] = perf[0][k-1]
					choice[c][k] = k
				}
				continue
			}
			best[c][k] = inf
			for take := 0; take <= k; take++ {
				own := 0.0
				if take > 0 {
					own = perf[c][take-1]
				}
				v := math.Max(own, best[c-1][k-take])
				if v < best[c][k] {
					best[c][k] = v
					choice[c][k] = take
				}
			}
		}
	}
	res := RepartitionResult{
		Counts:     make([]int, n),
		Assignment: make([]int, 0, ns),
		Makespan:   best[n-1][ns],
	}
	k := ns
	for c := n - 1; c >= 0; c-- {
		res.Counts[c] = choice[c][k]
		k -= choice[c][k]
	}
	for c := 0; c < n; c++ {
		for i := 0; i < res.Counts[c]; i++ {
			res.Assignment = append(res.Assignment, c)
		}
	}
	return res, nil
}
