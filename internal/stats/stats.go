// Package stats provides the small statistical toolkit used by the
// experiment harness: means, standard deviations, and labelled series in the
// form the paper's gain plots (Figures 8 and 10) report.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrEmpty is returned by aggregations that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when fewer
// than two samples are present. The paper's Figure 8 error bars are population
// deviations over its five cluster profiles, so we match that convention.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Min returns the smallest value in xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest value in xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2], nil
	}
	return (cp[n/2-1] + cp[n/2]) / 2, nil
}

// GainPercent returns the relative improvement of improved over baseline in
// percent: 100 * (baseline - improved) / baseline. A positive gain means the
// improved makespan is shorter. A zero baseline yields 0.
func GainPercent(baseline, improved float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (baseline - improved) / baseline
}

// Point is one x position of a Series.
type Point struct {
	X      float64
	Mean   float64
	StdDev float64
	// Samples preserves the raw values behind Mean/StdDev so downstream
	// consumers (tests, CSV export) can re-aggregate.
	Samples []float64
}

// Series is a labelled sequence of points, ordered by X. It is the common
// currency between the figure harness, the CLI plotters and the benchmarks.
type Series struct {
	Label  string
	Points []Point
}

// Add appends a point computed from the given samples.
func (s *Series) Add(x float64, samples ...float64) {
	s.Points = append(s.Points, Point{
		X:       x,
		Mean:    Mean(samples),
		StdDev:  StdDev(samples),
		Samples: append([]float64(nil), samples...),
	})
}

// Ys returns the means of the series in order.
func (s *Series) Ys() []float64 {
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ys[i] = p.Mean
	}
	return ys
}

// Xs returns the x positions of the series in order.
func (s *Series) Xs() []float64 {
	xs := make([]float64, len(s.Points))
	for i, p := range s.Points {
		xs[i] = p.X
	}
	return xs
}

// CSV renders the series as "x,mean,stddev" lines with a header, the format
// consumed by gnuplot in the original study.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\nx,mean,stddev\n", s.Label)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%g,%g,%g\n", p.X, p.Mean, p.StdDev)
	}
	return b.String()
}

// ASCIIPlot renders one or more series as a crude fixed-width terminal plot.
// It exists so cmd/oabench can show figure shapes without any plotting
// dependency. Width and height are the plot area in characters.
func ASCIIPlot(width, height int, series ...*Series) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range series {
		for _, p := range s.Points {
			if first {
				xmin, xmax, ymin, ymax = p.X, p.X, p.Mean, p.Mean
				first = false
				continue
			}
			xmin = math.Min(xmin, p.X)
			xmax = math.Max(xmax, p.X)
			ymin = math.Min(ymin, p.Mean)
			ymax = math.Max(ymax, p.Mean)
		}
	}
	if first {
		return "(empty plot)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'*', '+', 'o', 'x', '#', '@'}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			cx := int((p.X - xmin) / (xmax - xmin) * float64(width-1))
			cy := int((p.Mean - ymin) / (ymax - ymin) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "y: [%.3g .. %.3g]\n", ymin, ymax)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "x: [%.3g .. %.3g]   ", xmin, xmax)
	for si, s := range series {
		fmt.Fprintf(&b, "%c=%s ", marks[si%len(marks)], s.Label)
	}
	b.WriteByte('\n')
	return b.String()
}
