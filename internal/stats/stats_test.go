package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %g, want 5", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2) > 1e-12 {
		t.Fatalf("StdDev = %g, want 2", sd)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{3}) != 0 {
		t.Fatal("empty/singleton aggregates should be 0")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if v, err := Min(xs); err != nil || v != 1 {
		t.Fatalf("Min = %g, %v", v, err)
	}
	if v, err := Max(xs); err != nil || v != 5 {
		t.Fatalf("Max = %g, %v", v, err)
	}
	if v, err := Median(xs); err != nil || v != 3 {
		t.Fatalf("Median = %g, %v", v, err)
	}
	if v, err := Median([]float64{1, 2, 3, 4}); err != nil || v != 2.5 {
		t.Fatalf("even Median = %g, %v", v, err)
	}
	if _, err := Min(nil); err == nil {
		t.Fatal("expected ErrEmpty")
	}
	// Median must not mutate its input.
	orig := []float64{9, 1, 5}
	if _, err := Median(orig); err != nil {
		t.Fatal(err)
	}
	if orig[0] != 9 || orig[1] != 1 || orig[2] != 5 {
		t.Fatalf("Median mutated input: %v", orig)
	}
}

func TestGainPercent(t *testing.T) {
	if g := GainPercent(100, 88); g != 12 {
		t.Fatalf("GainPercent = %g, want 12", g)
	}
	if g := GainPercent(100, 110); g != -10 {
		t.Fatalf("GainPercent = %g, want -10", g)
	}
	if g := GainPercent(0, 50); g != 0 {
		t.Fatalf("GainPercent with zero baseline = %g, want 0", g)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Label = "gain1"
	s.Add(20, 1, 2, 3)
	s.Add(40, 4)
	if len(s.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(s.Points))
	}
	if s.Points[0].Mean != 2 {
		t.Fatalf("mean = %g, want 2", s.Points[0].Mean)
	}
	if got := s.Xs(); got[0] != 20 || got[1] != 40 {
		t.Fatalf("Xs = %v", got)
	}
	if got := s.Ys(); got[0] != 2 || got[1] != 4 {
		t.Fatalf("Ys = %v", got)
	}
	csv := s.CSV()
	if !strings.Contains(csv, "# gain1") || !strings.Contains(csv, "20,2,") {
		t.Fatalf("CSV missing content:\n%s", csv)
	}
}

func TestASCIIPlot(t *testing.T) {
	var s Series
	s.Label = "demo"
	for x := 0; x < 10; x++ {
		s.Add(float64(x), float64(x*x))
	}
	out := ASCIIPlot(40, 10, &s)
	if !strings.Contains(out, "*") || !strings.Contains(out, "demo") {
		t.Fatalf("plot missing marks or legend:\n%s", out)
	}
	if got := ASCIIPlot(40, 10); got != "(empty plot)\n" {
		t.Fatalf("empty plot rendering = %q", got)
	}
	// Flat series must not divide by zero.
	var flat Series
	flat.Add(1, 5)
	flat.Add(2, 5)
	_ = ASCIIPlot(20, 5, &flat)
}

// Property: the mean is always within [min, max] and StdDev is non-negative.
func TestMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		return m >= lo-1e-9 && m <= hi+1e-9 && StdDev(xs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
