// Package trace records schedule executions as per-resource spans, validates
// them against the application's dependencies, and renders them as ASCII
// Gantt charts or CSV for inspection.
//
// Resource naming convention: main-task groups are "g0", "g1", …; dedicated
// post-processing processors are "p0", "p1", …; an individual processor of a
// group borrowed for post-processing is "g0.2" (processor 2 of group g0) and
// conflicts with its parent group.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind labels the two task families of the fused model.
type Kind int

const (
	// Main is a fused pre-processing + coupled-run task.
	Main Kind = iota
	// Post is a fused post-processing task.
	Post
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Main {
		return "main"
	}
	return "post"
}

// Span is one task execution on one resource.
type Span struct {
	Resource string
	Kind     Kind
	Scenario int
	Month    int
	Start    float64
	End      float64
}

// Duration returns End − Start.
func (s Span) Duration() float64 { return s.End - s.Start }

// Trace is an append-only record of one schedule execution.
type Trace struct {
	Spans []Span
}

// Add appends a span.
func (t *Trace) Add(s Span) { t.Spans = append(t.Spans, s) }

// Makespan returns the latest span end, or 0 for an empty trace.
func (t *Trace) Makespan() float64 {
	ms := 0.0
	for _, s := range t.Spans {
		if s.End > ms {
			ms = s.End
		}
	}
	return ms
}

// parentResource returns "g0" for "g0.2" and "" for non-borrowed resources.
func parentResource(r string) string {
	if i := strings.IndexByte(r, '.'); i >= 0 {
		return r[:i]
	}
	return ""
}

// Validate checks the structural invariants of a fused-model execution over
// scenarios × months tasks:
//
//  1. every span has positive length and non-negative start;
//  2. spans on the same resource do not overlap, and a span on a borrowed
//     group processor ("g0.2") does not overlap a span on its group ("g0");
//  3. each (scenario, month) pair runs exactly one main and one post task;
//  4. main(s,m) starts at or after main(s,m−1) ends, and post(s,m) starts at
//     or after main(s,m) ends.
func (t *Trace) Validate(scenarios, months int) error {
	type key struct {
		s, m int
		k    Kind
	}
	seen := make(map[key]Span, len(t.Spans))
	byResource := make(map[string][]Span)
	for i, s := range t.Spans {
		if s.Start < 0 || s.End <= s.Start {
			return fmt.Errorf("trace: span %d has invalid interval [%g,%g]", i, s.Start, s.End)
		}
		if s.Scenario < 0 || s.Scenario >= scenarios {
			return fmt.Errorf("trace: span %d has scenario %d outside [0,%d)", i, s.Scenario, scenarios)
		}
		if s.Month < 0 || s.Month >= months {
			return fmt.Errorf("trace: span %d has month %d outside [0,%d)", i, s.Month, months)
		}
		k := key{s.Scenario, s.Month, s.Kind}
		if prev, dup := seen[k]; dup {
			return fmt.Errorf("trace: %v task of scenario %d month %d runs twice (at %g and %g)",
				s.Kind, s.Scenario, s.Month, prev.Start, s.Start)
		}
		seen[k] = s
		byResource[s.Resource] = append(byResource[s.Resource], s)
	}
	// Completeness.
	for sc := 0; sc < scenarios; sc++ {
		for m := 0; m < months; m++ {
			if _, ok := seen[key{sc, m, Main}]; !ok {
				return fmt.Errorf("trace: missing main task of scenario %d month %d", sc, m)
			}
			if _, ok := seen[key{sc, m, Post}]; !ok {
				return fmt.Errorf("trace: missing post task of scenario %d month %d", sc, m)
			}
		}
	}
	// Per-resource overlap, including borrowed processors against their group.
	const eps = 1e-9
	for res, spans := range byResource {
		all := spans
		if parent := parentResource(res); parent != "" {
			all = append(append([]Span(nil), spans...), byResource[parent]...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Start < all[j].Start })
		for i := 1; i < len(all); i++ {
			if all[i].Start < all[i-1].End-eps {
				return fmt.Errorf("trace: resource %s overlap: [%g,%g] and [%g,%g]",
					res, all[i-1].Start, all[i-1].End, all[i].Start, all[i].End)
			}
		}
	}
	// Dependencies.
	for sc := 0; sc < scenarios; sc++ {
		for m := 0; m < months; m++ {
			main := seen[key{sc, m, Main}]
			if m > 0 {
				prev := seen[key{sc, m - 1, Main}]
				if main.Start < prev.End-eps {
					return fmt.Errorf("trace: main of scenario %d month %d starts at %g before month %d ends at %g",
						sc, m, main.Start, m-1, prev.End)
				}
			}
			post := seen[key{sc, m, Post}]
			if post.Start < main.End-eps {
				return fmt.Errorf("trace: post of scenario %d month %d starts at %g before its main ends at %g",
					sc, m, post.Start, main.End)
			}
		}
	}
	return nil
}

// Resources returns the distinct resource names, sorted.
func (t *Trace) Resources() []string {
	set := make(map[string]bool)
	for _, s := range t.Spans {
		set[s.Resource] = true
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// BusySeconds sums span durations per resource.
func (t *Trace) BusySeconds() map[string]float64 {
	busy := make(map[string]float64)
	for _, s := range t.Spans {
		busy[s.Resource] += s.Duration()
	}
	return busy
}

// CSV renders the trace as "resource,kind,scenario,month,start,end" lines.
func (t *Trace) CSV() string {
	var b strings.Builder
	b.WriteString("resource,kind,scenario,month,start,end\n")
	for _, s := range t.Spans {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%g,%g\n", s.Resource, s.Kind, s.Scenario, s.Month, s.Start, s.End)
	}
	return b.String()
}

// Gantt renders an ASCII Gantt chart with the given character width. Each
// row is one resource; 'M' cells contain main work, 'p' cells post work,
// '.' idle time.
func (t *Trace) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	ms := t.Makespan()
	if ms == 0 {
		return "(empty trace)\n"
	}
	resources := t.Resources()
	rows := make(map[string][]byte, len(resources))
	for _, r := range resources {
		rows[r] = []byte(strings.Repeat(".", width))
	}
	for _, s := range t.Spans {
		row := rows[s.Resource]
		lo := int(s.Start / ms * float64(width))
		hi := int(s.End / ms * float64(width))
		if hi >= width {
			hi = width - 1
		}
		mark := byte('M')
		if s.Kind == Post {
			mark = 'p'
		}
		for i := lo; i <= hi; i++ {
			row[i] = mark
		}
	}
	nameW := 0
	for _, r := range resources {
		if len(r) > nameW {
			nameW = len(r)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "makespan: %.0f s\n", ms)
	for _, r := range resources {
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, r, rows[r])
	}
	return b.String()
}
