package trace

import (
	"strings"
	"testing"
)

// twoByTwo builds a valid 2-scenario × 2-month trace on one group and one
// post processor.
func twoByTwo() *Trace {
	tr := &Trace{}
	// Group g0 alternates the two scenarios' months.
	tr.Add(Span{Resource: "g0", Kind: Main, Scenario: 0, Month: 0, Start: 0, End: 10})
	tr.Add(Span{Resource: "g0", Kind: Main, Scenario: 1, Month: 0, Start: 10, End: 20})
	tr.Add(Span{Resource: "g0", Kind: Main, Scenario: 0, Month: 1, Start: 20, End: 30})
	tr.Add(Span{Resource: "g0", Kind: Main, Scenario: 1, Month: 1, Start: 30, End: 40})
	tr.Add(Span{Resource: "p0", Kind: Post, Scenario: 0, Month: 0, Start: 10, End: 13})
	tr.Add(Span{Resource: "p0", Kind: Post, Scenario: 1, Month: 0, Start: 20, End: 23})
	tr.Add(Span{Resource: "p0", Kind: Post, Scenario: 0, Month: 1, Start: 30, End: 33})
	tr.Add(Span{Resource: "p0", Kind: Post, Scenario: 1, Month: 1, Start: 40, End: 43})
	return tr
}

func TestValidateAccepts(t *testing.T) {
	if err := twoByTwo().Validate(2, 2); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestMakespan(t *testing.T) {
	if ms := twoByTwo().Makespan(); ms != 43 {
		t.Fatalf("makespan = %g, want 43", ms)
	}
	if ms := (&Trace{}).Makespan(); ms != 0 {
		t.Fatalf("empty makespan = %g, want 0", ms)
	}
}

func TestValidateRejectsOverlap(t *testing.T) {
	tr := twoByTwo()
	tr.Spans[1].Start = 5 // overlaps span 0 on g0
	if err := tr.Validate(2, 2); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("overlap not detected: %v", err)
	}
}

func TestValidateRejectsBorrowedOverlap(t *testing.T) {
	tr := twoByTwo()
	// A post borrowed on processor 1 of g0 while g0 runs a main.
	tr.Spans[4] = Span{Resource: "g0.1", Kind: Post, Scenario: 0, Month: 0, Start: 15, End: 18}
	if err := tr.Validate(2, 2); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("borrowed overlap not detected: %v", err)
	}
}

func TestValidateRejectsDependencyViolations(t *testing.T) {
	tr := twoByTwo()
	tr.Spans[2].Start, tr.Spans[2].End = 5, 9 // main(0,1) before main(0,0) ends
	err := tr.Validate(2, 2)
	if err == nil {
		t.Fatal("chain violation not detected")
	}

	tr = twoByTwo()
	tr.Spans[4].Start, tr.Spans[4].End = 2, 5 // post(0,0) before main(0,0) ends
	if err := tr.Validate(2, 2); err == nil {
		t.Fatal("post-before-main not detected")
	}
}

func TestValidateRejectsStructuralProblems(t *testing.T) {
	tr := twoByTwo()
	tr.Spans = tr.Spans[:len(tr.Spans)-1] // drop post(1,1)
	if err := tr.Validate(2, 2); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing task not detected: %v", err)
	}

	tr = twoByTwo()
	tr.Add(Span{Resource: "p1", Kind: Post, Scenario: 1, Month: 1, Start: 50, End: 53})
	if err := tr.Validate(2, 2); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate task not detected: %v", err)
	}

	tr = &Trace{}
	tr.Add(Span{Resource: "g0", Kind: Main, Scenario: 0, Month: 0, Start: 5, End: 5})
	if err := tr.Validate(1, 1); err == nil {
		t.Fatal("zero-length span not detected")
	}

	tr = &Trace{}
	tr.Add(Span{Resource: "g0", Kind: Main, Scenario: 3, Month: 0, Start: 0, End: 1})
	if err := tr.Validate(1, 1); err == nil {
		t.Fatal("out-of-range scenario not detected")
	}
}

func TestResourcesAndBusy(t *testing.T) {
	tr := twoByTwo()
	res := tr.Resources()
	if len(res) != 2 || res[0] != "g0" || res[1] != "p0" {
		t.Fatalf("Resources = %v", res)
	}
	busy := tr.BusySeconds()
	if busy["g0"] != 40 || busy["p0"] != 12 {
		t.Fatalf("BusySeconds = %v", busy)
	}
}

func TestCSV(t *testing.T) {
	csv := twoByTwo().CSV()
	if !strings.HasPrefix(csv, "resource,kind,scenario,month,start,end\n") {
		t.Fatalf("CSV header missing:\n%s", csv)
	}
	if !strings.Contains(csv, "g0,main,0,0,0,10") {
		t.Fatalf("CSV row missing:\n%s", csv)
	}
	if got := len(strings.Split(strings.TrimSpace(csv), "\n")); got != 9 {
		t.Fatalf("CSV has %d lines, want 9", got)
	}
}

func TestGantt(t *testing.T) {
	g := twoByTwo().Gantt(40)
	if !strings.Contains(g, "g0") || !strings.Contains(g, "p0") {
		t.Fatalf("Gantt missing resources:\n%s", g)
	}
	if !strings.Contains(g, "M") || !strings.Contains(g, "p") {
		t.Fatalf("Gantt missing marks:\n%s", g)
	}
	if got := (&Trace{}).Gantt(40); got != "(empty trace)\n" {
		t.Fatalf("empty Gantt = %q", got)
	}
}

func TestParentResource(t *testing.T) {
	if p := parentResource("g3.7"); p != "g3" {
		t.Fatalf("parentResource = %q, want g3", p)
	}
	if p := parentResource("p2"); p != "" {
		t.Fatalf("parentResource = %q, want empty", p)
	}
}
