// Package store is the scheduler's durability layer: an append-only
// campaign journal (a JSON-lines write-ahead log under a state directory)
// that records every campaign state transition — admission, per-round
// repartition, chunk completion, requeue, terminal state — and replays them
// on startup so a restarted daemon re-admits every non-terminal campaign
// and keeps serving previously issued campaign IDs.
//
// The write path is strict WAL discipline: a record is fsynced before the
// transition it describes is acknowledged anywhere else (the admission
// verdict, a progress frame, the terminal result). The read path tolerates
// the one corruption a kill -9 can produce — a partial final line — by
// truncating the journal back to the last complete record and resuming
// appends from there. Anything the journal never saw (a chunk killed
// mid-write, an in-flight evaluation) is simply work still remaining, which
// the scheduler re-repartitions; chunk results are deterministic per
// (cluster, scenario count, months), so recovery cannot change what any
// chunk evaluates to.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"oagrid/internal/diet"
)

// Record kinds, in the order a campaign's life emits them.
const (
	// KindAdmitted opens a campaign: ID, shape, heuristic.
	KindAdmitted = "admitted"
	// KindPlanned starts one repartition round.
	KindPlanned = "planned"
	// KindChunk completes one dispatched chunk: the execution report plus
	// the scenario IDs it covered.
	KindChunk = "chunk"
	// KindRequeue returns a failed chunk's scenarios to the campaign.
	KindRequeue = "requeue"
	// KindDone closes a campaign with its terminal state.
	KindDone = "done"
	// KindCancelled closes a campaign as cancelled — a terminal record, so a
	// replay never re-admits the campaign: cancellation survives a kill -9.
	KindCancelled = "cancelled"
)

// Record is one journal line. Kind selects which fields are meaningful.
type Record struct {
	Kind string `json:"kind"`
	ID   uint64 `json:"id"`

	// Admitted. Priority, Labels and Deadline are the campaign's submit
	// options (control plane v2): journaling them with the admission keeps
	// re-admission after a restart priority-ordered and label-queryable.
	Scenarios int               `json:"scenarios,omitempty"`
	Months    int               `json:"months,omitempty"`
	Heuristic string            `json:"heuristic,omitempty"`
	Priority  int               `json:"priority,omitempty"`
	Labels    map[string]string `json:"labels,omitempty"`
	Deadline  time.Duration     `json:"deadline,omitempty"`

	// Planned.
	Round   int                 `json:"round,omitempty"`
	Planned []diet.PlannedChunk `json:"planned,omitempty"`

	// Chunk.
	Chunk *diet.ExecResponse `json:"chunk,omitempty"`
	IDs   []int              `json:"ids,omitempty"`

	// Requeue.
	Requeued int `json:"requeued,omitempty"`

	// Done.
	Status   string  `json:"status,omitempty"`
	Makespan float64 `json:"makespan,omitempty"`
	Requeues int     `json:"requeues,omitempty"`
	Err      string  `json:"err,omitempty"`
}

// Campaign is the replayed state of one journaled campaign: everything the
// scheduler needs to either keep serving its result (terminal) or re-admit
// it with the unfinished scenarios requeued (non-terminal).
type Campaign struct {
	ID        uint64
	Scenarios int
	Months    int
	Heuristic string
	// Priority, Labels and Deadline are the campaign's journaled submit
	// options; re-admission after a restart honors them.
	Priority int
	Labels   map[string]string
	Deadline time.Duration

	// Status is empty while the campaign is live and diet.CampaignDone /
	// diet.CampaignFailed once a terminal record was journaled.
	Status   string
	Makespan float64
	Err      string

	// Rounds counts repartition rounds started so far — the next round's
	// index after recovery.
	Rounds int
	// Remaining lists the scenario IDs with no completed chunk, ascending.
	Remaining []int
	// Reports holds the completed chunk reports, in journal order.
	Reports []diet.ExecResponse
	// Requeues counts chunks returned after a failure.
	Requeues int
	// ScenariosDone counts scenarios covered by Reports.
	ScenariosDone int
	// History is the campaign's reconstructed progress stream, frame for
	// frame what publish() emitted before the restart, so a subscriber that
	// attaches after recovery still sees the full story.
	History []diet.ProgressUpdate

	// records keeps the campaign's raw journal lines so Compact can rewrite
	// a fresh journal without re-deriving them from the folded state.
	records []Record
}

// Records returns a copy of the campaign's raw journal lines in replay
// order. The failover path appends them verbatim into the adopting shard's
// own journal, so an adopted campaign is exactly as durable there as it was
// on the shard that died.
func (c *Campaign) Records() []Record {
	return append([]Record(nil), c.records...)
}

// Terminal reports whether the campaign reached a journaled terminal state.
// A cancelled campaign is terminal: replay must never re-admit it.
func (c *Campaign) Terminal() bool {
	return c.Status == diet.CampaignDone || c.Status == diet.CampaignFailed ||
		c.Status == diet.CampaignCancelled
}

// Store is an open campaign journal. Append is safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	path string
	// off is the end offset of the last acknowledged record — the rollback
	// point when a write fails partway.
	off int64

	// records mirrors the journal in memory, raw lines grouped per campaign
	// (replayed at Open, extended by every Append) — the checkpoint a
	// rotation rewrites the live segment from without re-reading the file.
	records map[uint64][]Record
	// order remembers first-append order of campaign IDs so a rotated
	// journal keeps admission order without sorting on the hot path.
	order []uint64
	// rotateAt arms online rotation: when the live segment's size crosses
	// the next threshold, Append checkpoints the retained campaigns into a
	// fresh segment. 0 leaves the journal append-only between restarts.
	rotateAt int64
	// nextRotate is the size the journal must reach before the next rotation
	// attempt — re-armed after every rotation so a retained set bigger than
	// the threshold cannot trigger a rewrite per append.
	nextRotate int64
	// retain reports the campaign IDs worth keeping, the store's view of the
	// owner's retention policy. IDs it stops reporting are dropped at the
	// next rotation.
	retain func() []uint64
	// gen names the live segment's incarnation for pull-based replication:
	// seeded from the wall clock at Open so two incarnations of one daemon
	// never share a generation, bumped whenever rotation or compaction
	// rewrites the file. A puller whose generation no longer matches must
	// restart its replica from offset 0.
	gen uint64
}

// journalName is the WAL file inside the state directory.
const journalName = "campaigns.wal"

// ErrCorrupt is the typed verdict on a journal with a malformed record
// before its final line — corruption no crash can produce (a kill -9 tears
// at most the tail), so replay refuses the journal instead of silently
// dropping journaled state. A torn final line is not corruption: Open
// truncates it and resumes.
var ErrCorrupt = fmt.Errorf("store: corrupt journal")

// Open creates dir if needed, replays the journal found there (truncating a
// partial trailing record left by a crash mid-write), and returns the store
// positioned for appends plus every recovered campaign keyed by ID.
func Open(dir string) (*Store, map[uint64]*Campaign, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: state dir %s: %w", dir, err)
	}
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: opening journal %s: %w", path, err)
	}
	// Two processes appending to one WAL interleave records into corruption
	// the next replay must reject; fail the second Open fast instead. The
	// advisory lock dies with the process, so a kill -9 leaves no stale
	// lock to clean up.
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: journal %s: %w", path, err)
	}
	campaigns, good, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// A crash mid-append leaves a partial last line; cut the journal back to
	// the last complete record so new appends don't interleave with garbage.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: truncating journal %s to %d: %w", path, good, err)
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	st := &Store{f: f, path: path, off: good, records: make(map[uint64][]Record),
		gen: uint64(time.Now().UnixNano())}
	for _, c := range ByID(campaigns) {
		st.records[c.ID] = append([]Record(nil), c.records...)
		st.order = append(st.order, c.ID)
	}
	return st, campaigns, nil
}

// Path returns the journal's file path.
func (s *Store) Path() string { return s.path }

// Size returns the live journal segment's acknowledged byte length — the
// WAL-size gauge exported by the scheduler's /metrics endpoint. Rotation
// shrinks it; a negative-rotation (append-only) store grows until the next
// restart's compaction.
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.off
}

// Append journals one record: marshal, write, fsync. The record is durable
// when Append returns — callers acknowledge the transition only after. A
// failed write is rolled back by truncating to the last acknowledged
// offset: callers swallow mid-run journal errors by design, and without
// the rollback a torn record (ENOSPC persisting a prefix, say) would sit
// mid-file once later appends succeed, turning a transient hiccup into a
// journal the next replay must reject as corrupt.
func (s *Store) Append(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: marshaling %s record: %w", rec.Kind, err)
	}
	data = append(data, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	rollback := func() {
		_ = s.f.Truncate(s.off)
		_, _ = s.f.Seek(s.off, 0)
	}
	if _, err := s.f.Write(data); err != nil {
		rollback()
		return fmt.Errorf("store: appending to %s: %w", s.path, err)
	}
	if err := s.f.Sync(); err != nil {
		rollback()
		return fmt.Errorf("store: syncing %s: %w", s.path, err)
	}
	s.off += int64(len(data))
	// The in-memory mirror exists to feed rotation; without it armed, the
	// journal is append-only until the next restart's compaction and the
	// mirror must not grow with it (it stays at whatever Open replayed).
	if s.rotateAt > 0 {
		if _, ok := s.records[rec.ID]; !ok {
			s.order = append(s.order, rec.ID)
		}
		s.records[rec.ID] = append(s.records[rec.ID], rec)
		if s.retain != nil && s.off >= s.nextRotate {
			// Best-effort: a failed rotation leaves the intact live segment
			// and re-arms, so a transient disk error costs a bigger journal,
			// not the record just acknowledged.
			_ = s.rotateLocked()
		}
	}
	return nil
}

// AutoRotate arms online rotation: once the live segment grows past
// threshold bytes, the next Append checkpoints the journal — the records of
// the campaigns retain reports, in admission order — into a fresh segment
// via temp-file + rename, exactly like the startup compaction, and drops
// everything else. The owner's advisory lock travels with the live segment.
// retain runs with the store's internal lock held: it may take the owner's
// own locks only because neither owner (scheduler, local runner) ever
// journals while holding them — and it must not call back into the store.
// IDs it returns that the journal does not know are ignored. Arm rotation
// before the first Append: records appended while rotation is off are not
// mirrored, so a later rotation would drop them from the journal.
func (s *Store) AutoRotate(threshold int64, retain func() []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rotateAt = threshold
	s.nextRotate = threshold
	s.retain = retain
}

// Rotate checkpoints the journal immediately, regardless of size — the
// explicit counterpart of the AutoRotate threshold, for owners that want a
// deterministic rotation point (tests, operator-triggered checkpoints). It
// requires AutoRotate to have armed a retain callback.
func (s *Store) Rotate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retain == nil {
		return fmt.Errorf("store: Rotate without a retain policy (call AutoRotate first)")
	}
	return s.rotateLocked()
}

// rotateLocked rewrites the live segment down to the retained campaigns'
// records. Callers hold s.mu. Whatever the outcome, the rotation threshold
// re-arms relative to the resulting segment size: a retained set that is
// itself bigger than the threshold must not rewrite the journal on every
// subsequent append.
func (s *Store) rotateLocked() error {
	keep := make(map[uint64]bool)
	for _, id := range s.retain() {
		keep[id] = true
	}
	err := s.rewriteLocked(func(id uint64) bool { return keep[id] || !s.terminalLocked(id) })
	s.nextRotate = s.off + s.rotateAt
	return err
}

// terminalLocked reports whether the mirrored campaign has a terminal
// record. Rotation never drops a non-terminal campaign, whatever the
// retain snapshot says: an admission record can be fsynced — and its
// verdict acknowledged — moments before the campaign enters the owner's
// table, and pruning it would un-admit a campaign whose ID a client
// already holds. Owners only ever retire terminal campaigns, so keeping
// every live one costs rotation nothing of its bound. Callers hold s.mu.
func (s *Store) terminalLocked(id uint64) bool {
	for i := range s.records[id] {
		switch s.records[id][i].Kind {
		case KindDone, KindCancelled:
			return true
		}
	}
	return false
}

// rewriteLocked replaces the live segment with the records of the campaigns
// keep() admits, in first-admission order, and prunes the in-memory mirror
// to match. Callers hold s.mu.
func (s *Store) rewriteLocked(keep func(uint64) bool) error {
	tmp := s.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: rotating %s: %w", s.path, err)
	}
	abort := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: rotating %s: %w", s.path, err)
	}
	// The lock must travel with the inode that becomes the journal: we hold
	// the old segment's lock, so locking the replacement cannot contend.
	if err := lockFile(f); err != nil {
		return abort(err)
	}
	var off int64
	kept := make([]uint64, 0, len(s.order))
	for _, id := range s.order {
		if !keep(id) {
			continue
		}
		kept = append(kept, id)
		for i := range s.records[id] {
			data, err := json.Marshal(&s.records[id][i])
			if err != nil {
				return abort(err)
			}
			data = append(data, '\n')
			if _, err := f.Write(data); err != nil {
				return abort(err)
			}
			off += int64(len(data))
		}
	}
	if err := f.Sync(); err != nil {
		return abort(err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return abort(err)
	}
	// Adopt the already-open replacement as the journal — no reopen by path,
	// which could fail and leave appends going to the unlinked old inode
	// while reporting success. Every failure path above leaves s.f on the
	// intact previous segment.
	s.f.Close()
	s.f = f
	s.off = off
	s.gen++
	for _, id := range s.order {
		if !keep(id) {
			delete(s.records, id)
		}
	}
	s.order = kept
	return nil
}

// Compact atomically rewrites the journal to hold exactly the given
// campaigns' records, in the given order, dropping everything else. The
// scheduler calls it once at startup with the campaigns it retained, which
// bounds journal growth across restarts (records of pruned campaigns do
// not accumulate forever) and keeps retention consistent: a campaign
// pruned past the cap stays unknown after a restart instead of being
// resurrected by replay. The rewrite goes through a temp file and a
// rename, so a crash mid-compaction leaves either the old journal or the
// new one, never a mix.
func (s *Store) Compact(keep []*Campaign) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := make(map[uint64]bool, len(keep))
	for _, c := range keep {
		kept[c.ID] = true
		// Replayed campaigns are already mirrored from Open; merge any the
		// caller forged independently so the rewrite cannot drop them.
		if _, ok := s.records[c.ID]; !ok {
			s.records[c.ID] = append([]Record(nil), c.records...)
			s.order = append(s.order, c.ID)
		}
	}
	return s.rewriteLocked(func(id uint64) bool { return kept[id] })
}

// Close releases the journal file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// IDs returns a campaign table's keys, whatever the table holds — the
// retain-snapshot shape AutoRotate consumes, shared by the scheduler's and
// the local runner's retention callbacks.
func IDs[V any](m map[uint64]V) []uint64 {
	out := make([]uint64, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	return out
}

// MaxID returns the highest campaign ID in the recovered set — the floor for
// a restarted scheduler's ID counter, so re-issued IDs never collide with
// IDs clients already hold.
func MaxID(campaigns map[uint64]*Campaign) uint64 {
	var max uint64
	for id := range campaigns {
		if id > max {
			max = id
		}
	}
	return max
}

// ByID returns the recovered campaigns sorted by ID, the deterministic
// re-admission order (a restarted queue serves campaigns in the order they
// were originally admitted).
func ByID(campaigns map[uint64]*Campaign) []*Campaign {
	out := make([]*Campaign, 0, len(campaigns))
	for _, c := range campaigns {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// replay scans the journal and folds every complete record into per-campaign
// state. It returns the byte offset just past the last complete record;
// anything after it is for the caller to truncate. Append writes each
// record and its newline in one Write, and a torn write keeps a prefix —
// so a line without its terminating '\n' is an unacknowledged append and
// is dropped, never counted into the good offset (counting it would make
// the caller's Truncate extend the file past EOF with NUL bytes). A record
// that fails to decode on a non-final line is real corruption and surfaces
// as an error rather than silently dropping journaled state.
func replay(f *os.File) (map[uint64]*Campaign, int64, error) {
	campaigns := make(map[uint64]*Campaign)
	r := bufio.NewReader(f)
	var good int64
	var pendingErr error
	for {
		line, err := r.ReadString('\n')
		if err == io.EOF {
			// line, if non-empty, is missing its newline: a torn append.
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("store: reading journal: %w", err)
		}
		if pendingErr != nil {
			// A malformed record with complete records after it: the journal
			// is corrupt beyond crash-truncation repair.
			return nil, 0, pendingErr
		}
		var rec Record
		if jerr := json.Unmarshal([]byte(line), &rec); jerr != nil {
			pendingErr = fmt.Errorf("%w: record at offset %d: %v", ErrCorrupt, good, jerr)
			continue
		}
		apply(campaigns, &rec)
		good += int64(len(line))
	}
	return campaigns, good, nil
}

// apply folds one record into the replayed state, reconstructing the exact
// progress frames the scheduler published for it.
func apply(campaigns map[uint64]*Campaign, rec *Record) {
	if rec.Kind == KindAdmitted {
		c := &Campaign{
			ID:        rec.ID,
			Scenarios: rec.Scenarios,
			Months:    rec.Months,
			Heuristic: rec.Heuristic,
			Priority:  rec.Priority,
			Labels:    rec.Labels,
			Deadline:  rec.Deadline,
			records:   []Record{*rec},
		}
		c.Remaining = make([]int, rec.Scenarios)
		for i := range c.Remaining {
			c.Remaining[i] = i
		}
		campaigns[rec.ID] = c
		return
	}
	c := campaigns[rec.ID]
	if c == nil {
		return // record for a campaign compacted away
	}
	if c.Terminal() {
		// A straggler journaled around a terminal transition (a chunk that
		// raced a cancel claim and was discarded live): replay must not
		// resurrect what the live campaign never surfaced, and the terminal
		// record that won stays won. Dropping it from records also prunes it
		// at the next compaction/rotation.
		return
	}
	c.records = append(c.records, *rec)
	frame := diet.ProgressUpdate{ID: c.ID, Total: c.Scenarios}
	switch rec.Kind {
	case KindPlanned:
		if rec.Round >= c.Rounds {
			c.Rounds = rec.Round + 1
		}
		frame.Stage = diet.StagePlanned
		frame.Planned = rec.Planned
	case KindChunk:
		if rec.Chunk == nil {
			return
		}
		c.Reports = append(c.Reports, *rec.Chunk)
		c.ScenariosDone += rec.Chunk.Scenarios
		c.Remaining = Without(c.Remaining, rec.IDs)
		frame.Stage = diet.StageChunk
		frame.Chunk = rec.Chunk
	case KindRequeue:
		c.Requeues++
		frame.Stage = diet.StageRequeue
		frame.Requeued = rec.Requeued
	case KindDone:
		c.Status = rec.Status
		c.Makespan = rec.Makespan
		c.Requeues = rec.Requeues
		c.Err = rec.Err
		return // terminal state travels on the result, not as a frame
	case KindCancelled:
		c.Status = diet.CampaignCancelled
		c.Err = rec.Err
		return // terminal: replay keeps the campaign out of the re-admission queue
	default:
		return
	}
	frame.Done = c.ScenariosDone
	c.History = append(c.History, frame)
}

// ---- segment export (ring replication) ------------------------------------

// MaxSegmentChunk bounds one ReadSegment answer so a replication pull never
// ships more than a frame's worth of journal at a time; pullers loop until
// they drain the tail.
const MaxSegmentChunk = 1 << 20

// Segment is one ReadSegment answer: journal bytes from the requested
// offset, plus the coordinates the puller needs for its next request.
type Segment struct {
	// Generation is the live segment's incarnation.
	Generation uint64
	// Offset is the byte position the data ends at — the puller's next
	// request offset.
	Offset int64
	// Data holds acknowledged journal bytes (whole records; the acknowledged
	// offset never splits a record).
	Data []byte
	// Reset is true when the requested generation no longer matches: Data
	// then starts at offset 0 of the current generation and the puller must
	// replace its replica, not append to it.
	Reset bool
}

// Generation returns the live segment's incarnation.
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// ReadSegment serves the replication pull: acknowledged journal bytes from
// offset off of generation gen, capped at MaxSegmentChunk. When gen does not
// match the live segment (the journal was rotated or compacted, or the
// daemon restarted), the answer resets to offset 0 of the current
// generation. Reads use ReadAt against the open journal, so concurrent
// appends are unaffected; only bytes at or below the acknowledged offset are
// served — a torn in-flight append is never shipped.
func (s *Store) ReadSegment(gen uint64, off int64) (Segment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seg := Segment{Generation: s.gen}
	if gen != s.gen || off < 0 || off > s.off {
		seg.Reset = true
		off = 0
	}
	n := s.off - off
	if n > MaxSegmentChunk {
		n = MaxSegmentChunk
		// Never split a record across pulls: back off to the last newline so
		// the replica on disk is always a valid (possibly torn-free) journal.
		buf := make([]byte, n)
		if _, err := s.f.ReadAt(buf, off); err != nil {
			return seg, fmt.Errorf("store: reading segment of %s: %w", s.path, err)
		}
		cut := int64(len(buf))
		for cut > 0 && buf[cut-1] != '\n' {
			cut--
		}
		if cut == 0 {
			cut = n // a single record larger than the cap ships whole later; give what we have
		}
		seg.Data = buf[:cut]
		seg.Offset = off + cut
		return seg, nil
	}
	if n > 0 {
		buf := make([]byte, n)
		if _, err := s.f.ReadAt(buf, off); err != nil {
			return seg, fmt.Errorf("store: reading segment of %s: %w", s.path, err)
		}
		seg.Data = buf
	}
	seg.Offset = off + n
	return seg, nil
}

// ReplayFile replays a journal file read-only — no lock, no truncation, no
// store — and returns the folded campaigns. It is the failover path: a ring
// shard replays the replica it tailed from a dead peer to adopt that peer's
// campaigns. A torn final line is ignored exactly as Open would truncate it;
// mid-file corruption returns ErrCorrupt. A missing file is an empty
// journal, not an error.
func ReplayFile(path string) (map[uint64]*Campaign, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[uint64]*Campaign{}, nil
		}
		return nil, fmt.Errorf("store: opening replica %s: %w", path, err)
	}
	defer f.Close()
	campaigns, _, err := replay(f)
	if err != nil {
		return nil, err
	}
	return campaigns, nil
}

// Without returns remaining minus ids, preserving order — the completed-
// chunk subtraction shared by journal replay and the live scheduler.
func Without(remaining []int, ids []int) []int {
	drop := make(map[int]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	out := remaining[:0]
	for _, id := range remaining {
		if !drop[id] {
			out = append(out, id)
		}
	}
	return out
}
