package store

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"oagrid/internal/diet"
)

// journalCampaign writes a full happy-path campaign life into st.
func journalCampaign(t *testing.T, st *Store, id uint64) {
	t.Helper()
	recs := []Record{
		{Kind: KindAdmitted, ID: id, Scenarios: 4, Months: 12, Heuristic: "knapsack"},
		{Kind: KindPlanned, ID: id, Round: 0, Planned: []diet.PlannedChunk{{Cluster: "a", Scenarios: 3}, {Cluster: "b", Scenarios: 1}}},
		{Kind: KindChunk, ID: id, IDs: []int{0, 1, 2}, Chunk: &diet.ExecResponse{Cluster: "a", Scenarios: 3, Makespan: 30, Round: 0, FirstScenario: 0}},
		{Kind: KindRequeue, ID: id, Requeued: 1},
		{Kind: KindPlanned, ID: id, Round: 1, Planned: []diet.PlannedChunk{{Cluster: "a", Scenarios: 1}}},
		{Kind: KindChunk, ID: id, IDs: []int{3}, Chunk: &diet.ExecResponse{Cluster: "a", Scenarios: 1, Makespan: 11.5, Round: 1, FirstScenario: 3}},
		{Kind: KindDone, ID: id, Status: diet.CampaignDone, Makespan: 41.5, Requeues: 1},
	}
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh journal recovered %d campaigns", len(recovered))
	}
	journalCampaign(t, st, 7)
	// A second, unfinished campaign: admitted, one round planned, one chunk
	// done, then the process dies.
	for _, rec := range []Record{
		{Kind: KindAdmitted, ID: 8, Scenarios: 5, Months: 6, Heuristic: "basic"},
		{Kind: KindPlanned, ID: 8, Round: 0, Planned: []diet.PlannedChunk{{Cluster: "a", Scenarios: 5}}},
		{Kind: KindChunk, ID: 8, IDs: []int{1, 3}, Chunk: &diet.ExecResponse{Cluster: "a", Scenarios: 2, Makespan: 9.25, Round: 0, FirstScenario: 1}},
	} {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	st2, recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(recovered) != 2 {
		t.Fatalf("recovered %d campaigns, want 2", len(recovered))
	}
	if got := MaxID(recovered); got != 8 {
		t.Fatalf("MaxID = %d, want 8", got)
	}

	done := recovered[7]
	if !done.Terminal() || done.Status != diet.CampaignDone {
		t.Fatalf("campaign 7 not terminal: %+v", done)
	}
	if math.Float64bits(done.Makespan) != math.Float64bits(41.5) || done.Requeues != 1 {
		t.Fatalf("campaign 7 terminal state %+v", done)
	}
	if len(done.Remaining) != 0 {
		t.Fatalf("campaign 7 still has remaining %v", done.Remaining)
	}
	if len(done.Reports) != 2 || done.ScenariosDone != 4 {
		t.Fatalf("campaign 7 reports %+v, done %d", done.Reports, done.ScenariosDone)
	}
	if done.Rounds != 2 {
		t.Fatalf("campaign 7 rounds = %d, want 2", done.Rounds)
	}
	// History replays frame for frame: planned, chunk, requeue, planned,
	// chunk — with Done/Total reconstructed.
	stages := make([]string, len(done.History))
	for i, u := range done.History {
		stages[i] = u.Stage
		if u.ID != 7 || u.Total != 4 {
			t.Fatalf("frame %d mislabeled: %+v", i, u)
		}
	}
	wantStages := []string{diet.StagePlanned, diet.StageChunk, diet.StageRequeue, diet.StagePlanned, diet.StageChunk}
	if !reflect.DeepEqual(stages, wantStages) {
		t.Fatalf("history stages %v, want %v", stages, wantStages)
	}
	if done.History[1].Done != 3 || done.History[4].Done != 4 {
		t.Fatalf("chunk frames carry Done %d, %d; want 3, 4", done.History[1].Done, done.History[4].Done)
	}

	live := recovered[8]
	if live.Terminal() {
		t.Fatalf("campaign 8 recovered terminal: %+v", live)
	}
	if !reflect.DeepEqual(live.Remaining, []int{0, 2, 4}) {
		t.Fatalf("campaign 8 remaining %v, want [0 2 4]", live.Remaining)
	}
	if live.ScenariosDone != 2 || len(live.Reports) != 1 {
		t.Fatalf("campaign 8 progress %d done, %d reports", live.ScenariosDone, len(live.Reports))
	}
	if math.Float64bits(live.Reports[0].Makespan) != math.Float64bits(9.25) {
		t.Fatalf("chunk makespan did not round-trip bit-exact: %v", live.Reports[0].Makespan)
	}

	// Appends continue cleanly on the reopened journal.
	if err := st2.Append(Record{Kind: KindDone, ID: 8, Status: diet.CampaignFailed, Err: "x"}); err != nil {
		t.Fatal(err)
	}
}

// TestPartialTrailingRecordTruncated: a kill -9 mid-append leaves a torn
// final line; Open must drop exactly that line and keep everything before.
func TestPartialTrailingRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	journalCampaign(t, st, 1)
	st.Close()

	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"chunk","id":1,"chu`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	st2, recovered, err := Open(dir)
	if err != nil {
		t.Fatalf("torn journal rejected: %v", err)
	}
	defer st2.Close()
	if len(recovered) != 1 || !recovered[1].Terminal() {
		t.Fatalf("recovered %+v", recovered)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("journal not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
}

// TestMidFileCorruptionRejected: a malformed record with complete records
// after it is real corruption, not a crash artifact — Open must refuse to
// silently drop journaled state.
func TestMidFileCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	journalCampaign(t, st, 1)
	st.Close()

	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("not json\n" + `{"kind":"admitted","id":2,"scenarios":1,"months":1}` + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, _, err := Open(dir); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestByIDOrder(t *testing.T) {
	m := map[uint64]*Campaign{3: {ID: 3}, 1: {ID: 1}, 2: {ID: 2}}
	got := ByID(m)
	for i, want := range []uint64{1, 2, 3} {
		if got[i].ID != want {
			t.Fatalf("ByID order %v", got)
		}
	}
}

// TestMissingTrailingNewlineDropped: a torn append can persist every byte
// of a record except its terminating newline. Such a record was never
// acknowledged, so Open must drop it — and must NOT count its bytes into
// the truncation offset (which would extend the file with NUL bytes and
// poison the next replay).
func TestMissingTrailingNewlineDropped(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	journalCampaign(t, st, 1)
	st.Close()

	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Complete JSON, missing only the '\n'.
	if _, err := f.WriteString(`{"kind":"admitted","id":2,"scenarios":1,"months":1}`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d campaigns, want 1 (the unterminated admit dropped)", len(recovered))
	}
	if err := st2.Append(Record{Kind: KindAdmitted, ID: 3, Scenarios: 1, Months: 1}); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	// The journal must still be fully parseable on the next open — no NUL
	// padding, no concatenated records.
	st3, recovered, err := Open(dir)
	if err != nil {
		t.Fatalf("journal poisoned after torn-newline recovery: %v", err)
	}
	defer st3.Close()
	if len(recovered) != 2 || recovered[3] == nil {
		t.Fatalf("recovered %+v, want campaigns 1 and 3", recovered)
	}
}

// TestCompactDropsUnkeptCampaigns: compaction rewrites the journal with
// exactly the kept campaigns' records; dropped campaigns stay gone on the
// next replay and appends continue cleanly afterwards.
func TestCompactDropsUnkeptCampaigns(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	journalCampaign(t, st, 1)
	journalCampaign(t, st, 2)
	st.Close()

	st2, recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Compact([]*Campaign{recovered[2]}); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the journal: %d -> %d bytes", before.Size(), after.Size())
	}
	// Appends after compaction land after the kept records.
	if err := st2.Append(Record{Kind: KindAdmitted, ID: 5, Scenarios: 2, Months: 2}); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	st3, recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if len(recovered) != 2 || recovered[1] != nil || recovered[2] == nil || recovered[5] == nil {
		t.Fatalf("post-compaction replay recovered %+v, want campaigns 2 and 5 only", recovered)
	}
	if !recovered[2].Terminal() || recovered[2].Requeues != 1 || len(recovered[2].Reports) != 2 {
		t.Fatalf("kept campaign mangled by compaction: %+v", recovered[2])
	}
}

// TestSecondOpenLockedOut: two processes (here: two opens) on one state dir
// would interleave appends into corruption — the second Open must fail
// fast, and a Close must release the dir for the next owner.
func TestSecondOpenLockedOut(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); err == nil {
		t.Fatal("second Open on a held state dir succeeded")
	}
	// Compaction swaps the journal inode; the lock must move with it.
	journalCampaign(t, st, 1)
	if err := st.Compact(nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); err == nil {
		t.Fatal("state dir unlocked after compaction")
	}
	st.Close()
	st2, _, err := Open(dir)
	if err != nil {
		t.Fatalf("state dir still locked after Close: %v", err)
	}
	st2.Close()
}

// TestCancelledRecordIsTerminal: a cancelled record closes a campaign for
// replay purposes — Terminal() is true and the status survives reopen, so a
// restarted owner never re-admits it.
func TestCancelledRecordIsTerminal(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: KindAdmitted, ID: 7, Scenarios: 4, Months: 12, Heuristic: "knapsack",
			Priority: 5, Labels: map[string]string{"team": "ocean"}, Deadline: 90 * time.Second},
		{Kind: KindChunk, ID: 7, IDs: []int{0, 1}, Chunk: &diet.ExecResponse{Cluster: "a", Scenarios: 2, Makespan: 20}},
		{Kind: KindCancelled, ID: 7},
	}
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	st2, recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	c := recovered[7]
	if c == nil || !c.Terminal() || c.Status != diet.CampaignCancelled {
		t.Fatalf("replayed cancelled campaign = %+v, want terminal cancelled", c)
	}
	// The submit options journaled with the admission round-trip.
	if c.Priority != 5 || c.Labels["team"] != "ocean" || c.Deadline != 90*time.Second {
		t.Fatalf("submit options mangled by replay: %+v", c)
	}
	// The completed chunk is still banked (done work is never lost, even on
	// a cancelled campaign).
	if c.ScenariosDone != 2 || len(c.Reports) != 1 {
		t.Fatalf("cancelled campaign lost its chunk: %+v", c)
	}
}

// TestOnlineRotation: with AutoRotate armed, a journal serving a stream of
// short-lived campaigns stays bounded while open — the live segment is
// checkpointed down to the retained campaigns once it outgrows the
// threshold — and the rotated journal still replays exactly the retained
// set. The advisory lock travels with the live segment.
func TestOnlineRotation(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Retention: only the three most recently admitted campaigns survive.
	var mu sync.Mutex
	var live []uint64
	retain := func() []uint64 {
		mu.Lock()
		defer mu.Unlock()
		return append([]uint64(nil), live...)
	}
	const threshold = 4 << 10
	st.AutoRotate(threshold, retain)

	for id := uint64(1); id <= 60; id++ {
		mu.Lock()
		live = append(live, id)
		if len(live) > 3 {
			live = live[1:]
		}
		mu.Unlock()
		journalCampaign(t, st, id)
	}

	// Bounded: the live segment holds at most the retained campaigns plus
	// one threshold's worth of growth since the last rotation.
	fi, err := os.Stat(st.Path())
	if err != nil {
		t.Fatal(err)
	}
	perCampaign := int64(1 << 10) // generous bound on one campaign's records
	if max := threshold + 3*perCampaign + perCampaign; fi.Size() > max {
		t.Fatalf("journal grew to %d bytes across 60 campaigns (want ≤ %d): rotation never fired", fi.Size(), max)
	}

	// The lock still guards the (rotated) live segment.
	if _, _, err := Open(dir); err == nil {
		t.Fatal("state dir unlocked after online rotation")
	}

	// An explicit checkpoint drops everything the retention no longer
	// reports (campaigns appended since the last threshold crossing linger
	// only until then).
	if err := st.Rotate(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// The rotated journal replays exactly the retained campaigns,
	// bit-complete.
	st2, recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for _, id := range []uint64{58, 59, 60} {
		c := recovered[id]
		if c == nil || !c.Terminal() || c.Requeues != 1 || len(c.Reports) != 2 {
			t.Fatalf("retained campaign %d mangled by rotation: %+v", id, c)
		}
	}
	for id, c := range recovered {
		if id < 58 {
			t.Fatalf("rotation kept pruned campaign %d: %+v", id, c)
		}
	}
}

// TestReplayIgnoresStragglersAfterTerminal: a chunk journaled around a
// cancel claim was discarded live; replay must not resurrect it, and the
// terminal record that won stays won.
func TestReplayIgnoresStragglersAfterTerminal(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: KindAdmitted, ID: 4, Scenarios: 4, Months: 12, Heuristic: "knapsack"},
		{Kind: KindCancelled, ID: 4},
		// Stragglers journaled after the terminal record.
		{Kind: KindChunk, ID: 4, IDs: []int{0, 1}, Chunk: &diet.ExecResponse{Cluster: "a", Scenarios: 2, Makespan: 20}},
		{Kind: KindRequeue, ID: 4, Requeued: 2},
		{Kind: KindDone, ID: 4, Status: diet.CampaignDone, Makespan: 20},
	}
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	st2, recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	c := recovered[4]
	if c == nil || c.Status != diet.CampaignCancelled {
		t.Fatalf("replayed campaign = %+v, want the cancelled verdict to stand", c)
	}
	if c.ScenariosDone != 0 || len(c.Reports) != 0 || c.Requeues != 0 || len(c.History) != 0 {
		t.Fatalf("straggler records resurrected by replay: %+v", c)
	}
}
