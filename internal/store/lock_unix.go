//go:build unix

package store

import (
	"errors"
	"os"
	"syscall"
)

// lockFile takes an exclusive advisory lock on the journal for the life of
// the owning file descriptor: the second daemon pointed at the same state
// dir must fail at Open instead of interleaving appends into corruption.
func lockFile(f *os.File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return errors.New("locked by another process")
		}
		return err
	}
	return nil
}
