//go:build !unix

package store

import "os"

// lockFile is a no-op where flock is unavailable; single-process use of a
// state dir is assumed there.
func lockFile(f *os.File) error { return nil }
