package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"oagrid/internal/diet"
)

// fuzzSeedJournal builds a small valid journal covering every record kind.
func fuzzSeedJournal() []byte {
	recs := []Record{
		{Kind: KindAdmitted, ID: 1, Scenarios: 4, Months: 12, Heuristic: "knapsack",
			Priority: 3, Labels: map[string]string{"team": "ocean"}},
		{Kind: KindPlanned, ID: 1, Round: 0, Planned: []diet.PlannedChunk{{Cluster: "capricorne", Scenarios: 4}}},
		{Kind: KindChunk, ID: 1, Chunk: &diet.ExecResponse{Cluster: "capricorne", Makespan: 42.5, Scenarios: 4}, IDs: []int{0, 1, 2, 3}},
		{Kind: KindDone, ID: 1, Status: diet.CampaignDone, Makespan: 42.5},
		{Kind: KindAdmitted, ID: 2, Scenarios: 2, Months: 6, Heuristic: "gqap"},
		{Kind: KindCancelled, ID: 2, Err: "operator cancel"},
		{Kind: KindAdmitted, ID: 3, Scenarios: 8, Months: 24, Heuristic: "knapsack"},
		{Kind: KindRequeue, ID: 3, Requeued: 8},
	}
	var out []byte
	for i := range recs {
		line, _ := json.Marshal(&recs[i])
		out = append(out, line...)
		out = append(out, '\n')
	}
	return out
}

// FuzzOpen throws arbitrary bytes at the journal replay path — Open's
// replay + torn-tail truncation and the read-only ReplayFile — and demands
// it never panics, fails only with the package's typed corruption error,
// and leaves a journal that a second Open accepts (truncation must repair,
// not merely tolerate, a torn tail).
func FuzzOpen(f *testing.F) {
	valid := fuzzSeedJournal()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("{\n"))
	f.Add([]byte("not json at all\n{\"kind\":\"admitted\",\"id\":1}\n"))
	f.Add(valid[:len(valid)-7])                                // torn tail
	f.Add(append(append([]byte{}, valid...), "{\"kind\":"...)) // torn tail after valid records
	mid := append([]byte{}, valid...)
	mid[len(valid)/2] = 0x00 // mid-file corruption
	f.Add(mid)
	f.Add([]byte("{\"kind\":\"chunk\",\"id\":9}\n")) // chunk without admission
	huge := append([]byte{}, valid...)
	huge = append(huge, []byte("{\"kind\":\"admitted\",\"id\":18446744073709551615,\"scenarios\":3}\n")...)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, journalName)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, campaigns, err := Open(dir)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open failed with an untyped error: %v", err)
			}
			// Corrupt journals must also be refused read-only.
			if _, rerr := ReplayFile(path); rerr == nil || !errors.Is(rerr, ErrCorrupt) {
				t.Fatalf("ReplayFile accepted a journal Open refused: %v", rerr)
			}
			return
		}
		n := len(campaigns)
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		// Open truncated any torn tail: the journal on disk is now clean, so
		// a second Open and the read-only replay must both accept it and see
		// the same campaign set.
		st2, again, err := Open(dir)
		if err != nil {
			t.Fatalf("reopening a repaired journal: %v", err)
		}
		defer st2.Close()
		if len(again) != n {
			t.Fatalf("reopen recovered %d campaigns, first open %d", len(again), n)
		}
		ro, err := ReplayFile(path)
		if err != nil {
			t.Fatalf("ReplayFile on a repaired journal: %v", err)
		}
		if len(ro) != n {
			t.Fatalf("ReplayFile recovered %d campaigns, Open %d", len(ro), n)
		}
	})
}
