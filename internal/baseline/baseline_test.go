package baseline

import (
	"testing"

	"oagrid/internal/core"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
)

func TestCPAPlansValidAllocations(t *testing.T) {
	app := core.Application{Scenarios: 10, Months: 24}
	ref := platform.ReferenceTiming()
	for procs := 11; procs <= 130; procs += 9 {
		al, err := (CPA{}).Plan(app, ref, procs)
		if err != nil {
			t.Fatalf("R=%d: %v", procs, err)
		}
		if err := al.Validate(app, ref, procs); err != nil {
			t.Fatalf("R=%d: invalid allocation %v: %v", procs, al, err)
		}
		if al.Heuristic != "cpa" {
			t.Fatalf("R=%d: heuristic label %q", procs, al.Heuristic)
		}
	}
	if _, err := (CPA{}).Plan(app, ref, 3); err == nil {
		t.Fatal("3-processor cluster accepted")
	}
}

// TestCPAIgnoresScenarioCap shows the paper's §3.2 objection concretely:
// CPA picks one allotment from a critical-path/area tradeoff that knows
// nothing about the NS concurrency cap or the leftover processors, so the
// knapsack heuristic never loses to it and wins clearly at awkward resource
// counts (where mixed group sizes exploit what a uniform allotment wastes).
func TestCPAIgnoresScenarioCap(t *testing.T) {
	app := core.Application{Scenarios: 10, Months: 24}
	ref := platform.ReferenceTiming()
	ev := exec.Evaluator(exec.Options{})
	wins := 0
	for procs := 20; procs <= 120; procs += 3 {
		cpa, err := (CPA{}).Plan(app, ref, procs)
		if err != nil {
			t.Fatal(err)
		}
		knap, err := (core.Knapsack{}).Plan(app, ref, procs)
		if err != nil {
			t.Fatal(err)
		}
		msCPA, err := ev.Evaluate(app, ref, procs, cpa)
		if err != nil {
			t.Fatal(err)
		}
		msKnap, err := ev.Evaluate(app, ref, procs, knap)
		if err != nil {
			t.Fatal(err)
		}
		// Tolerate end-of-run post-drain micro effects (a post task or two);
		// anything bigger would be a planning defect.
		if msKnap > msCPA+2*ref.PostSeconds() {
			t.Errorf("R=%d: knapsack (%g) lost to CPA (%g, groups %v)", procs, msKnap, msCPA, cpa.Groups)
		}
		if msKnap < msCPA*(1-0.01) {
			wins++
		}
	}
	if wins < 5 {
		t.Fatalf("knapsack beat CPA by >1%% at only %d sweep points; expected a clear advantage", wins)
	}
}

func TestSequentialDAGsIsWorst(t *testing.T) {
	app := core.Application{Scenarios: 6, Months: 12}
	ref := platform.ReferenceTiming()
	procs := 44
	seq, err := (SequentialDAGs{}).Plan(app, ref, procs)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Groups) != 1 {
		t.Fatalf("sequential baseline built %d groups", len(seq.Groups))
	}
	ev := exec.Evaluator(exec.Options{})
	msSeq, err := ev.Evaluate(app, ref, procs, seq)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range core.All() {
		al, err := h.Plan(app, ref, procs)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := ev.Evaluate(app, ref, procs, al)
		if err != nil {
			t.Fatal(err)
		}
		if ms >= msSeq {
			t.Fatalf("%s (%g) did not beat one-DAG-at-a-time (%g)", h.Name(), ms, msSeq)
		}
	}
	if _, err := (SequentialDAGs{}).Plan(app, ref, 3); err == nil {
		t.Fatal("3-processor cluster accepted")
	}
}

// TestCPAAllotmentGrowsOnSmallClusters: with few processors the critical
// path dominates the estimate, so CPA grows the allotment above the minimum.
func TestCPAAllotmentGrowsOnSmallClusters(t *testing.T) {
	app := core.Application{Scenarios: 2, Months: 36}
	ref := platform.ReferenceTiming()
	al, err := (CPA{}).Plan(app, ref, 22)
	if err != nil {
		t.Fatal(err)
	}
	if al.Groups[0] <= platform.MinGroup {
		t.Fatalf("CPA stayed at the minimal allotment %v on a small cluster", al.Groups)
	}
}
