// Package baseline implements a CPA-style mixed-parallelism scheduler
// (Radulescu & van Gemund, "Critical Path and Area based Scheduling", ICPP
// 2001 — reference [9] of the paper) adapted to the multi-DAG workload, as
// the related-work comparison the paper's §3.2 argues against: "These
// heuristics are not applicable here because our application does not
// contain a single critical path since all scenario simulations are
// independent."
//
// CPA's two steps are kept: (1) a processor-allotment loop that grows the
// allotment of the critical path's moldable tasks while the max(critical
// path, average area) estimate improves; (2) list scheduling. Because every
// chain is identical, step (1) degenerates to choosing one allotment G for
// all main tasks — but, crucially, CPA has no notion of the NS concurrency
// cap (at most NS main tasks can ever run at once), so its allotment tends
// to be too small on large clusters and the paper's heuristics win. The
// benchmark AblationCPA quantifies that.
package baseline

import (
	"fmt"
	"math"

	"oagrid/internal/core"
	"oagrid/internal/platform"
)

// CPA is the adapted Critical Path and Area based allotment heuristic.
type CPA struct{}

// Name implements core.Heuristic.
func (CPA) Name() string { return "cpa" }

// Plan implements core.Heuristic. The allotment loop mirrors CPA: start
// every moldable task at its minimum allotment and repeatedly grow the
// allotment of critical-path tasks — here, all main tasks at once, since
// every chain is the critical path — while the makespan lower bound
// max(critical-path length, total area / R) improves.
func (CPA) Plan(app core.Application, t platform.Timing, procs int) (core.Allocation, error) {
	if err := app.Validate(); err != nil {
		return core.Allocation{}, err
	}
	lo, hi := t.Range()
	if procs < lo {
		return core.Allocation{}, fmt.Errorf("baseline: %d processors cannot host a group of %d", procs, lo)
	}
	estimate := func(g int) (float64, error) {
		tg, err := t.MainSeconds(g)
		if err != nil {
			return 0, err
		}
		tp := t.PostSeconds()
		// Critical path: one chain of NM mains plus a trailing post.
		cp := float64(app.Months)*tg + tp
		// Average area: total processor-seconds over the cluster.
		area := (float64(app.Tasks())*(tg*float64(g)) + float64(app.Tasks())*tp) / float64(procs)
		return math.Max(cp, area), nil
	}
	g := lo
	best, err := estimate(g)
	if err != nil {
		return core.Allocation{}, err
	}
	for g < hi && g < procs {
		next, err := estimate(g + 1)
		if err != nil {
			return core.Allocation{}, err
		}
		if next >= best {
			break // CPA stops at the first non-improving growth
		}
		g++
		best = next
	}
	// Step 2's list scheduler packs as many G-processor tasks side by side
	// as fit; the group construction mirrors that. CPA knows nothing of the
	// NS cap, but more groups than scenarios can never run concurrently, so
	// building them would only idle processors — the cap here is the
	// executor's reality, not CPA's wisdom.
	nb := procs / g
	if nb > app.Scenarios {
		nb = app.Scenarios
	}
	if nb == 0 {
		return core.Allocation{}, fmt.Errorf("baseline: no group of %d fits on %d processors", g, procs)
	}
	groups := make([]int, nb)
	for i := range groups {
		groups[i] = g
	}
	return core.Allocation{
		Groups:    groups,
		PostProcs: procs - nb*g,
		Heuristic: "cpa",
	}, nil
}

var _ core.Heuristic = CPA{}

// SequentialDAGs is the naive multi-DAG strategy of the paper's §3.1 ("a
// first approach is to schedule each DAG on the resources one after the
// other"): all R processors serve one scenario at a time. Its makespan model
// is NS × (NM × T[min(R, maxG)]) plus the post drain — the yardstick that
// shows why concurrent scheduling with groups matters.
type SequentialDAGs struct{}

// Name implements core.Heuristic.
func (SequentialDAGs) Name() string { return "sequential-dags" }

// Plan implements core.Heuristic: one maximal group; scenarios will be
// executed one after the other by the dispatcher because only one can run at
// a time.
func (SequentialDAGs) Plan(app core.Application, t platform.Timing, procs int) (core.Allocation, error) {
	if err := app.Validate(); err != nil {
		return core.Allocation{}, err
	}
	lo, hi := t.Range()
	if procs < lo {
		return core.Allocation{}, fmt.Errorf("baseline: %d processors cannot host a group of %d", procs, lo)
	}
	g := procs
	if g > hi {
		g = hi
	}
	return core.Allocation{
		Groups:    []int{g},
		PostProcs: procs - g,
		Heuristic: "sequential-dags",
	}, nil
}

var _ core.Heuristic = SequentialDAGs{}
