package platform

import (
	"errors"
	"fmt"
	"sort"
)

// Cluster is one homogeneous pool of processors with a benchmarked timing
// profile, the scheduling unit of the paper's heterogeneous-grid adaptation
// ("Grid'5000 is a grid composed of several clusters. Each cluster is
// composed of homogeneous resources but differs from one another.").
type Cluster struct {
	Name   string
	Procs  int
	Timing Timing

	// Link describes intra-cluster data staging. The scheduling model folds
	// staging into task durations (paper §4.1); the link is used by the
	// middleware demo to annotate restart-transfer costs.
	Link Link
}

// Link is a simple latency/bandwidth pipe model.
type Link struct {
	LatencySeconds float64
	BytesPerSecond float64
}

// TransferSeconds returns the staging time of size bytes over the link. A
// zero-valued link transfers instantly, matching the paper's assumption that
// "data on a site are available to all of its nodes".
func (l Link) TransferSeconds(size int64) float64 {
	if l.BytesPerSecond <= 0 {
		return l.LatencySeconds
	}
	return l.LatencySeconds + float64(size)/l.BytesPerSecond
}

// Validate checks the cluster is usable for scheduling.
func (c *Cluster) Validate() error {
	if c == nil {
		return errors.New("platform: nil cluster")
	}
	if c.Name == "" {
		return errors.New("platform: cluster without a name")
	}
	if c.Procs <= 0 {
		return fmt.Errorf("platform: cluster %s has %d processors", c.Name, c.Procs)
	}
	if c.Timing == nil {
		return fmt.Errorf("platform: cluster %s has no timing model", c.Name)
	}
	lo, hi := c.Timing.Range()
	if lo > hi {
		return fmt.Errorf("platform: cluster %s has an empty moldable range", c.Name)
	}
	for g := lo; g <= hi; g++ {
		s, err := c.Timing.MainSeconds(g)
		if err != nil {
			return fmt.Errorf("platform: cluster %s: %w", c.Name, err)
		}
		if s <= 0 {
			return fmt.Errorf("platform: cluster %s: non-positive main duration at g=%d", c.Name, g)
		}
	}
	if c.Timing.PostSeconds() < 0 {
		return fmt.Errorf("platform: cluster %s: negative post duration", c.Name)
	}
	return nil
}

// WithProcs returns a copy of the cluster resized to n processors. The figure
// harness uses it to sweep resource counts over fixed speed profiles.
func (c *Cluster) WithProcs(n int) *Cluster {
	cp := *c
	cp.Procs = n
	return &cp
}

// Grid is an ordered set of clusters.
type Grid struct {
	Clusters []*Cluster
}

// NewGrid assembles and validates a grid.
func NewGrid(clusters ...*Cluster) (*Grid, error) {
	if len(clusters) == 0 {
		return nil, errors.New("platform: grid needs at least one cluster")
	}
	seen := make(map[string]bool, len(clusters))
	for _, c := range clusters {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("platform: duplicate cluster name %q", c.Name)
		}
		seen[c.Name] = true
	}
	return &Grid{Clusters: append([]*Cluster(nil), clusters...)}, nil
}

// TotalProcs sums processors over all clusters.
func (g *Grid) TotalProcs() int {
	n := 0
	for _, c := range g.Clusters {
		n += c.Procs
	}
	return n
}

// ByName returns the cluster with the given name, or nil.
func (g *Grid) ByName(name string) *Cluster {
	for _, c := range g.Clusters {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Names returns the cluster names in grid order.
func (g *Grid) Names() []string {
	names := make([]string, len(g.Clusters))
	for i, c := range g.Clusters {
		names[i] = c.Name
	}
	return names
}

// SortBySpeed orders clusters from fastest to slowest reference main task
// (T[MaxGroup]), the order in which the repartition discussion of the paper
// presents them ("The faster, the more DAGs it has to execute").
func (g *Grid) SortBySpeed() {
	sort.SliceStable(g.Clusters, func(i, j int) bool {
		ti, erri := g.Clusters[i].Timing.MainSeconds(MaxGroup)
		tj, errj := g.Clusters[j].Timing.MainSeconds(MaxGroup)
		if erri != nil || errj != nil {
			return false
		}
		return ti < tj
	})
}
