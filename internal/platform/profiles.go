package platform

// The original study benchmarked the application "on numerous clusters of
// Grid'5000 ... located all around France", reporting only two anchors: the
// fastest cluster ran one main task on 11 processors in 1177 s and the
// slowest in 1622 s, with the reference Figure-1 benchmark at 1260 s. The
// five profiles below span exactly that range with the reference model in the
// middle, standing in for the five cluster speeds behind Figure 8's averages.
// Names follow Grid'5000 clusters of the era; the speed assignment is
// synthetic (the paper does not publish per-cluster numbers).

// Paper anchor values (seconds for the main task on MaxGroup processors).
const (
	FastestMainSeconds = 1177.0
	SlowestMainSeconds = 1622.0
)

// referenceMainAtMax is T(11) of the reference profile: Seq + Par/MaxPar + Pre.
func referenceMainAtMax() float64 {
	r := ReferenceTiming()
	v, err := r.MainSeconds(MaxGroup)
	if err != nil {
		panic(err) // unreachable: MaxGroup is in range by construction
	}
	return v
}

// speedFor returns the Speed factor that makes T(MaxGroup) equal the wanted
// anchor duration.
func speedFor(wantSeconds float64) float64 {
	return wantSeconds / referenceMainAtMax()
}

// scaledReference returns a reference-shaped Amdahl profile rescaled so that
// the main task on MaxGroup processors takes want seconds.
func scaledReference(wantSeconds float64) Amdahl {
	a := ReferenceTiming()
	a.Speed = speedFor(wantSeconds)
	return a
}

// defaultLink models a 2008-era gigabit cluster interconnect.
var defaultLink = Link{LatencySeconds: 0.1, BytesPerSecond: 100 << 20}

// benchmarkJitter is the relative amplitude of the per-(cluster, group-size)
// irregularity applied to the five profiles. Real benchmark tables are not
// smooth speedup curves — cache sizes, network topology and node placement
// bend individual entries — and those kinks are what the knapsack heuristic
// exploits against the uniform grouping. The value is small enough that the
// tables stay strictly decreasing in the group size.
const benchmarkJitter = 0.035

// kink returns a deterministic perturbation factor in [1-a, 1+a] for one
// (cluster, group) entry, using a splitmix64 hash so profiles are stable
// across runs.
func kink(cluster, g int, a float64) float64 {
	x := uint64(cluster)<<32 ^ uint64(g)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	u := float64(x>>11) / float64(1<<53)
	return 1 + a*(2*u-1)
}

// benchmarkTable builds a cluster's measured-style timing table: the
// reference curve rescaled to the anchor, bent by the cluster's kinks, with
// the MaxGroup entry pinned exactly to the anchor and strict monotonicity
// (more processors never slower) restored.
func benchmarkTable(cluster int, anchorSeconds float64) Table {
	a := scaledReference(anchorSeconds)
	tbl := Table{Main: make(map[int]float64, MaxGroup-MinGroup+1), Post: a.PostSeconds()}
	for g := MinGroup; g <= MaxGroup; g++ {
		s, err := a.MainSeconds(g)
		if err != nil {
			panic(err) // unreachable: g is in range by construction
		}
		if g != MaxGroup {
			s *= kink(cluster, g, benchmarkJitter)
		}
		tbl.Main[g] = s
	}
	// Restore strict decrease from the anchored top end downwards.
	for g := MaxGroup - 1; g >= MinGroup; g-- {
		if tbl.Main[g] <= tbl.Main[g+1] {
			tbl.Main[g] = tbl.Main[g+1] * 1.01
		}
	}
	return tbl
}

// FiveClusters returns the five cluster speed profiles used to reproduce
// Figure 8 (gains averaged over "5 simulations done on clusters with
// different computing powers") and Figure 10 (2 to 5 clusters). Each profile
// is a benchmark-style table: a speed-scaled reference curve with
// per-cluster kinks (see benchmarkTable). Processor counts are placeholders;
// the figure harness resizes them per experiment.
func FiveClusters() []*Cluster {
	anchors := []struct {
		name string
		main float64
	}{
		{"sagittaire", FastestMainSeconds}, // fastest anchor: 1177 s on 11 procs
		{"capricorne", 1262.0},             // reference-shaped: pcr 1260 s + 2 s pre
		{"chicon", 1355.0},
		{"grelon", 1480.0},
		{"azur", SlowestMainSeconds}, // slowest anchor: 1622 s on 11 procs
	}
	clusters := make([]*Cluster, len(anchors))
	for i, a := range anchors {
		clusters[i] = &Cluster{
			Name:   a.name,
			Procs:  64,
			Timing: benchmarkTable(i, a.main),
			Link:   defaultLink,
		}
	}
	return clusters
}

// ReferenceCluster returns the calibration cluster (Figure 1 durations) with
// the given processor count.
func ReferenceCluster(procs int) *Cluster {
	return &Cluster{
		Name:   "reference",
		Procs:  procs,
		Timing: ReferenceTiming(),
		Link:   defaultLink,
	}
}
