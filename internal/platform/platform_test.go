package platform

import (
	"math"
	"testing"
	"testing/quick"
)

// TestPaperAnchors pins the calibration to the values the paper reports:
// pcr on 11 processors takes 1260 s on the reference cluster (Figure 1), the
// fastest Grid'5000 cluster needs 1177 s and the slowest 1622 s (§6).
func TestPaperAnchors(t *testing.T) {
	ref := ReferenceTiming()
	got, err := ref.MainSeconds(MaxGroup)
	if err != nil {
		t.Fatal(err)
	}
	if want := PcrSeconds + PreSeconds; math.Abs(got-want) > 1e-9 {
		t.Fatalf("reference main on %d procs = %g, want %g", MaxGroup, got, want)
	}
	if ref.PostSeconds() != PostSeconds {
		t.Fatalf("reference post = %g, want %g", ref.PostSeconds(), PostSeconds)
	}

	clusters := FiveClusters()
	if len(clusters) != 5 {
		t.Fatalf("FiveClusters returned %d clusters", len(clusters))
	}
	first, err := clusters[0].Timing.MainSeconds(MaxGroup)
	if err != nil {
		t.Fatal(err)
	}
	last, err := clusters[len(clusters)-1].Timing.MainSeconds(MaxGroup)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(first-FastestMainSeconds) > 1e-6 {
		t.Fatalf("fastest cluster main = %g, want %g", first, FastestMainSeconds)
	}
	if math.Abs(last-SlowestMainSeconds) > 1e-6 {
		t.Fatalf("slowest cluster main = %g, want %g", last, SlowestMainSeconds)
	}
	for _, c := range clusters {
		if err := c.Validate(); err != nil {
			t.Errorf("cluster %s invalid: %v", c.Name, err)
		}
	}
}

// TestMoldableRange checks the structural constants of the coupled run:
// 3 sequential components plus 1..8 atmosphere processors gives 4..11.
func TestMoldableRange(t *testing.T) {
	if MinGroup != 4 || MaxGroup != 11 {
		t.Fatalf("moldable range [%d,%d], want [4,11]", MinGroup, MaxGroup)
	}
	ref := ReferenceTiming()
	lo, hi := ref.Range()
	if lo != 4 || hi != 11 {
		t.Fatalf("reference range [%d,%d], want [4,11]", lo, hi)
	}
	if _, err := ref.MainSeconds(3); err == nil {
		t.Error("expected error below the moldable range")
	}
	if _, err := ref.MainSeconds(12); err == nil {
		t.Error("expected error above the moldable range")
	}
}

// TestMainSecondsMonotone: more processors never slow the main task, and the
// per-processor cost curve g·T(g) is U-shaped (most efficient around g=6,
// rising towards g=11) — the shape behind the paper's Figure 7, where small
// optimal groupings appear at low resource counts and G grows stepwise.
func TestMainSecondsMonotone(t *testing.T) {
	ref := ReferenceTiming()
	main := func(g int) float64 {
		s, err := ref.MainSeconds(g)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	prev := math.Inf(1)
	for g := MinGroup; g <= MaxGroup; g++ {
		s := main(g)
		if s >= prev {
			t.Errorf("T(%d)=%g did not improve on T(%d)=%g", g, s, g-1, prev)
		}
		prev = s
	}
	// Efficiency peaks mid-range and degrades towards the saturation end.
	for g := 6; g < MaxGroup; g++ {
		if main(g)*float64(g) >= main(g+1)*float64(g+1) {
			t.Errorf("g·T(g) should grow beyond g=6: %g at %d vs %g at %d",
				main(g)*float64(g), g, main(g+1)*float64(g+1), g+1)
		}
	}
	// The worked-example pin (§4.2): seven groups of 7 outperform ten groups
	// of 5 in aggregate throughput, so the basic heuristic picks G=7 at R=53.
	if 7/main(7) <= 10/main(5) {
		t.Errorf("calibration broken: 7/T(7)=%g should exceed 10/T(5)=%g", 7/main(7), 10/main(5))
	}
}

func TestAmdahlSaturation(t *testing.T) {
	a := ReferenceTiming()
	a.MaxPar = 4 // saturate early: g in [4, 7]
	lo, hi := a.Range()
	if lo != 4 || hi != 7 {
		t.Fatalf("saturated range [%d,%d], want [4,7]", lo, hi)
	}
}

func TestTableTiming(t *testing.T) {
	tbl, err := Tabulate(ReferenceTiming())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatalf("tabulated table invalid: %v", err)
	}
	ref := ReferenceTiming()
	for g := MinGroup; g <= MaxGroup; g++ {
		want, _ := ref.MainSeconds(g)
		got, err := tbl.MainSeconds(g)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("table T(%d)=%g, want %g", g, got, want)
		}
	}
	if _, err := tbl.MainSeconds(99); err == nil {
		t.Error("expected error for missing entry")
	}
	hole := Table{Main: map[int]float64{4: 10, 6: 8}, Post: 1}
	if err := hole.Validate(); err == nil {
		t.Error("expected error for non-contiguous table")
	}
	if err := (Table{}).Validate(); err == nil {
		t.Error("expected error for empty table")
	}
	neg := Table{Main: map[int]float64{4: -1}, Post: 1}
	if err := neg.Validate(); err == nil {
		t.Error("expected error for negative duration")
	}
}

func TestClusterValidate(t *testing.T) {
	good := ReferenceCluster(32)
	if err := good.Validate(); err != nil {
		t.Fatalf("reference cluster invalid: %v", err)
	}
	bad := []*Cluster{
		nil,
		{Name: "", Procs: 4, Timing: ReferenceTiming()},
		{Name: "x", Procs: 0, Timing: ReferenceTiming()},
		{Name: "x", Procs: 4},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestGrid(t *testing.T) {
	g, err := NewGrid(FiveClusters()...)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalProcs() != 5*64 {
		t.Fatalf("TotalProcs = %d, want 320", g.TotalProcs())
	}
	if g.ByName("azur") == nil || g.ByName("nope") != nil {
		t.Fatal("ByName lookup broken")
	}
	if len(g.Names()) != 5 {
		t.Fatalf("Names = %v", g.Names())
	}
	g.SortBySpeed()
	if g.Clusters[0].Name != "sagittaire" || g.Clusters[4].Name != "azur" {
		t.Fatalf("SortBySpeed order: %v", g.Names())
	}
	if _, err := NewGrid(); err == nil {
		t.Error("expected error for empty grid")
	}
	dup := FiveClusters()
	dup[1] = dup[0]
	if _, err := NewGrid(dup...); err == nil {
		t.Error("expected error for duplicate cluster names")
	}
}

func TestWithProcs(t *testing.T) {
	c := ReferenceCluster(10)
	d := c.WithProcs(99)
	if d.Procs != 99 || c.Procs != 10 {
		t.Fatalf("WithProcs mutated original or failed: %d/%d", c.Procs, d.Procs)
	}
	if d.Name != c.Name {
		t.Fatalf("WithProcs changed the name")
	}
}

func TestLinkTransfer(t *testing.T) {
	l := Link{LatencySeconds: 0.5, BytesPerSecond: 1 << 20}
	if got := l.TransferSeconds(2 << 20); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("TransferSeconds = %g, want 2.5", got)
	}
	if got := (Link{}).TransferSeconds(1 << 30); got != 0 {
		t.Fatalf("zero link transfer = %g, want 0", got)
	}
	// The 120 MB restart on a gigabit-class link stays near one second.
	ref := ReferenceCluster(8)
	if s := ref.Link.TransferSeconds(RestartBytes); s < 0.1 || s > 10 {
		t.Fatalf("restart staging %g s implausible", s)
	}
}

// Property: scaling Speed scales every duration proportionally.
func TestSpeedScaling(t *testing.T) {
	f := func(raw uint8) bool {
		factor := 0.5 + float64(raw)/128
		a := ReferenceTiming()
		b := a
		b.Speed = a.Speed * factor
		for g := MinGroup; g <= MaxGroup; g++ {
			va, err1 := a.MainSeconds(g)
			vb, err2 := b.MainSeconds(g)
			if err1 != nil || err2 != nil {
				return false
			}
			if math.Abs(vb-va*factor) > 1e-9*vb {
				return false
			}
		}
		return math.Abs(b.PostSeconds()-a.PostSeconds()*factor) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
