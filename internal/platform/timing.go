// Package platform models the computing platforms of the study: homogeneous
// clusters (each with a benchmarked timing profile for the moldable coupled
// run) and grids made of several such clusters, as on Grid'5000.
//
// The paper's evaluation needs, per cluster, the execution time T[G] of one
// fused main task (pre-processing + process_coupled_run) on G processors,
// G in [4,11], and the fused post-processing time TP. Those values were
// benchmarked on real Grid'5000 clusters; here they come from a calibrated
// analytic model (see Calibration in timing.go) or from explicit tables.
package platform

import (
	"errors"
	"fmt"
	"math"
)

// Task-structure constants of the Ocean-Atmosphere coupled run (paper §2):
// OPA (ocean), TRIP (river runoff) and the OASIS coupler are sequential and
// take one processor each; ARPEGE (atmosphere) is parallel and stops scaling
// beyond 8 processors. Hence the moldable main task runs on 4 to 11
// processors.
const (
	SequentialComponents = 3 // OPA + TRIP + OASIS
	MaxAtmosphereProcs   = 8 // ARPEGE speedup saturates here
	MinGroup             = SequentialComponents + 1
	MaxGroup             = SequentialComponents + MaxAtmosphereProcs
)

// Reference durations in seconds from the paper's Figure 1 benchmark table.
const (
	PreSeconds  = 2.0    // caif (1 s) + mp (1 s), fused into the main task
	PcrSeconds  = 1260.0 // process_coupled_run on the reference grouping
	PostSeconds = 180.0  // cof (60 s) + emi (60 s) + cd (60 s)

	// RestartBytes is the data exchanged between two consecutive monthly
	// simulations of one scenario (120 MB, paper §2). Scenarios stay on one
	// cluster, so this volume never crosses cluster boundaries; the paper
	// folds intra-cluster staging into task durations and so do we.
	RestartBytes = 120 << 20
)

// Timing yields the durations of the two fused tasks of the simplified
// application model on some cluster.
type Timing interface {
	// MainSeconds returns the duration of one fused main task (pre-processing
	// plus one month of coupled run) on g processors. It returns an error for
	// g outside the moldable range.
	MainSeconds(g int) (float64, error)
	// PostSeconds returns the duration of one fused post-processing task on a
	// single processor.
	PostSeconds() float64
	// Range returns the inclusive moldable processor range of the main task.
	Range() (min, max int)
}

// Amdahl is the calibrated analytic timing model:
//
//	T(g) = Speed × (Pre + Seq + Par/min(g-SequentialComponents, MaxPar))
//
// Seq is the time spent in the sequential components (OPA, TRIP, OASIS and
// the serial sections of ARPEGE); Par is the perfectly parallel atmosphere
// work measured at one processor. The calibration (see ReferenceTiming) picks
// Seq and Par so that T(11) matches the paper's 1260 s pcr benchmark and so
// that per-processor efficiency decreases with g, which is what produces the
// small optimal groupings at low resource counts in the paper's Figure 7.
type Amdahl struct {
	Speed  float64 // relative cluster slowness; 1.0 = reference cluster
	Pre    float64 // fused pre-processing seconds
	Seq    float64 // sequential seconds of the coupled run
	Par    float64 // parallelizable seconds at one atmosphere processor
	Post   float64 // fused post-processing seconds
	MaxPar int     // atmosphere processor cap (speedup saturation)
}

var _ Timing = Amdahl{}

// ReferenceTiming returns the timing of the calibration reference cluster:
// pcr(11 procs) = 900 + 2880/8 = 1260 s as in the paper's Figure 1, with a
// 900 s sequential part and 2880 s of single-processor atmosphere work.
//
// These two values are pinned by the paper's own worked example (§4.2): for
// R = 53 and NS = 10 the basic heuristic must pick G = 7 (seven groups of
// seven processors), which requires 10/T[5] < 7/T[7], i.e. a parallel part
// at least ~3× the sequential part; and T(11) must equal 1260 s + 2 s of
// fused pre-processing. The resulting per-processor cost g·T(g) is U-shaped
// (most efficient around g = 6, degrading towards g = 11), which is what
// makes the optimal grouping of Figure 7 start small and grow stepwise with
// the resource count instead of jumping straight to 11.
func ReferenceTiming() Amdahl {
	return Amdahl{
		Speed:  1.0,
		Pre:    PreSeconds,
		Seq:    900,
		Par:    2880,
		Post:   PostSeconds,
		MaxPar: MaxAtmosphereProcs,
	}
}

// MainSeconds implements Timing.
func (a Amdahl) MainSeconds(g int) (float64, error) {
	min, max := a.Range()
	if g < min || g > max {
		return 0, fmt.Errorf("platform: group size %d outside moldable range [%d,%d]", g, min, max)
	}
	ranks := g - SequentialComponents
	if a.MaxPar > 0 && ranks > a.MaxPar {
		ranks = a.MaxPar
	}
	return a.Speed * (a.Pre + a.Seq + a.Par/float64(ranks)), nil
}

// PostSeconds implements Timing.
func (a Amdahl) PostSeconds() float64 { return a.Speed * a.Post }

// Range implements Timing.
func (a Amdahl) Range() (int, int) {
	max := SequentialComponents + a.MaxPar
	if a.MaxPar <= 0 {
		max = MaxGroup
	}
	return MinGroup, max
}

// Table is a timing model backed by an explicit benchmark table, mirroring
// how the original study stored per-cluster measurements.
type Table struct {
	// Main maps a group size to the fused main-task seconds.
	Main map[int]float64
	// Post is the fused post-processing seconds.
	Post float64
}

var _ Timing = Table{}

// MainSeconds implements Timing.
func (t Table) MainSeconds(g int) (float64, error) {
	s, ok := t.Main[g]
	if !ok {
		return 0, fmt.Errorf("platform: no benchmark entry for group size %d", g)
	}
	return s, nil
}

// PostSeconds implements Timing.
func (t Table) PostSeconds() float64 { return t.Post }

// Range implements Timing. It returns the contiguous range covered by the
// table; a non-contiguous table is reported by Validate.
func (t Table) Range() (int, int) {
	lo, hi := math.MaxInt32, 0
	for g := range t.Main {
		if g < lo {
			lo = g
		}
		if g > hi {
			hi = g
		}
	}
	if hi == 0 {
		return 0, -1
	}
	return lo, hi
}

// Validate checks the table is non-empty, contiguous and positive.
func (t Table) Validate() error {
	lo, hi := t.Range()
	if hi < lo {
		return errors.New("platform: empty timing table")
	}
	for g := lo; g <= hi; g++ {
		s, ok := t.Main[g]
		if !ok {
			return fmt.Errorf("platform: timing table has a hole at group size %d", g)
		}
		if s <= 0 {
			return fmt.Errorf("platform: non-positive main duration %g at group size %d", s, g)
		}
	}
	if t.Post < 0 {
		return fmt.Errorf("platform: negative post duration %g", t.Post)
	}
	return nil
}

// Tabulate converts any timing model into an explicit Table, the form the
// knapsack heuristic and the DIET servers exchange.
func Tabulate(tm Timing) (Table, error) {
	lo, hi := tm.Range()
	tbl := Table{Main: make(map[int]float64, hi-lo+1), Post: tm.PostSeconds()}
	for g := lo; g <= hi; g++ {
		s, err := tm.MainSeconds(g)
		if err != nil {
			return Table{}, err
		}
		tbl.Main[g] = s
	}
	return tbl, nil
}
