package grid

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"sort"
	"time"

	"oagrid/internal/diet"
)

// frameTimeout bounds one decode or encode on a scheduler connection.
const frameTimeout = 5 * time.Second

// acceptLoop serves connections until the listener closes. The scheduler
// brings its own loop (instead of diet.Serve) because submit-wait
// connections stream multiple response frames.
func (s *Scheduler) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serveConn(conn)
	}
}

// respSender writes response frames on one connection, hiding the codec
// from the streaming logic. sendProgress exists so the binary sender can
// write a published frame's cached encoding instead of re-encoding it.
type respSender interface {
	send(*diet.Response) error
	sendProgress(*progressFrame) error
}

// gobSender streams legacy-codec responses. gob streams are stateful (type
// definitions travel once per connection), so frames cannot be byte-shared
// across connections — but progress frames still share the one
// ProgressUpdate struct per published frame instead of a per-subscriber
// copy.
type gobSender struct {
	conn net.Conn
	enc  *gob.Encoder
	ver  int
}

func (g *gobSender) send(resp *diet.Response) error {
	resp.Version = g.ver
	_ = g.conn.SetDeadline(time.Now().Add(frameTimeout))
	err := g.enc.Encode(resp)
	if err == nil {
		diet.CountFrames(1, 0)
	}
	return err
}

func (g *gobSender) sendProgress(f *progressFrame) error {
	return g.send(&diet.Response{Progress: &f.u})
}

// binSender streams v4 binary frames.
type binSender struct {
	conn net.Conn
	w    net.Conn // counted writer (CountConn over conn)
	ver  int
}

func (b *binSender) send(resp *diet.Response) error {
	resp.Version = b.ver
	_ = b.conn.SetDeadline(time.Now().Add(frameTimeout))
	return diet.WriteResponseFrame(b.w, resp)
}

func (b *binSender) sendProgress(f *progressFrame) error {
	enc, err := f.encoded()
	if err != nil {
		return err
	}
	_ = b.conn.SetDeadline(time.Now().Add(frameTimeout))
	return diet.WriteRawFrame(b.w, enc)
}

// serveConn sniffs the codec from the connection's first bytes (the v4
// frame magic selects binary framing, anything else the legacy gob codec)
// and serves one request. maxVersion caps what the scheduler will
// negotiate: a daemon capped below v4 refuses binary connections outright —
// the client's version cache then self-heals onto the legacy codec.
func (s *Scheduler) serveConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(frameTimeout))
	cc := diet.CountConn(conn)
	br := bufio.NewReader(cc)
	peek, err := br.Peek(4)
	if err != nil {
		return
	}
	if diet.IsBinaryMagic(peek) {
		if diet.LegacyCodecForced() || s.maxVersion() < diet.ProtocolV4 {
			return // binary refused: drop, peer re-probes over gob
		}
		dec := diet.GetFrameDecoder(false)
		defer diet.PutFrameDecoder(dec)
		req, err := dec.ReadRequest(br)
		if err != nil {
			return
		}
		ver := s.negotiate(req.Version)
		s.dispatch(&binSender{conn: conn, w: cc, ver: ver}, ver, req)
		return
	}
	dec := gob.NewDecoder(br)
	var req diet.Request
	if err := dec.Decode(&req); err != nil {
		return
	}
	diet.CountFrames(0, 1)
	ver := s.negotiate(req.Version)
	s.dispatch(&gobSender{conn: conn, enc: gob.NewEncoder(cc), ver: ver}, ver, &req)
}

// negotiate resolves a connection's effective version under the daemon's
// version cap.
func (s *Scheduler) negotiate(peer int) int {
	ver := diet.NegotiateVersion(peer)
	if max := s.maxVersion(); ver > max {
		ver = max
	}
	return ver
}

// maxVersion is the highest protocol version this daemon speaks
// (Config.MaxProtocol; 0 means the build's newest).
func (s *Scheduler) maxVersion() int {
	if s.cfg.MaxProtocol > 0 {
		return s.cfg.MaxProtocol
	}
	return diet.ProtocolVersion
}

// dispatch routes one decoded request to the streaming or one-shot path.
// The ring kinds come first — they are daemon-to-daemon and never route —
// then ring ownership gets a chance to redirect, forward, or fan the request
// out before the local paths serve it.
func (s *Scheduler) dispatch(send respSender, ver int, req *diet.Request) {
	switch req.Kind {
	case diet.KindRingPing:
		_ = send.send(s.serveRingPing(ver))
		return
	case diet.KindForward:
		_ = send.send(s.serveForward(ver, req.Forward))
		return
	case diet.KindSegment:
		_ = send.send(s.serveSegment(ver, req.Segment))
		return
	}
	if sm := s.shardManager(); sm != nil && s.routeRing(sm, send, ver, req) {
		return
	}
	switch req.Kind {
	case diet.KindSubmit:
		s.serveSubmit(send, ver, req.Submit)
	case diet.KindAttach:
		s.serveAttach(send, ver, req.Attach)
	default:
		resp := s.handle(req)
		_ = send.send(resp)
	}
}

// serveSubmit answers a campaign submission. With Wait set the connection
// streams: the admission verdict goes out immediately; at protocol v2 with
// Progress set, per-campaign progress frames follow; the campaign result
// closes the stream when the run completes. Every frame write refreshes the
// connection deadline, so a stream stays alive exactly as long as its
// campaign — and a client gone mid-stream fails a frame write, which
// releases this goroutine without touching the dispatcher that runs the
// campaign.
func (s *Scheduler) serveSubmit(send respSender, ver int, req *diet.SubmitRequest) {
	if req == nil {
		_ = send.send(&diet.Response{Err: "submit: empty payload"})
		return
	}
	// Features above the negotiated version stay off the wire in both
	// directions: a peer announcing v2 gets v2 semantics even if it smuggled
	// v3 submit fields into the envelope.
	if ver < diet.ProtocolV3 {
		req.Priority, req.Labels, req.Deadline = 0, nil, 0
	}
	c, verdict, err := s.admit(req)
	if err != nil {
		// Malformed campaign: a protocol error, not an admission verdict —
		// retrying it can never succeed.
		_ = send.send(&diet.Response{Err: err.Error()})
		return
	}
	// Subscribe before acknowledging admission: the dispatcher may pop the
	// campaign immediately, and a subscription taken later would race the
	// first planned frame (the history replay makes even that race benign,
	// but late frames would reorder around the verdict).
	var sub chan *progressFrame
	if c != nil && req.Wait && req.Progress && ver >= diet.ProtocolV2 {
		sub = c.subscribe()
		defer c.unsubscribe(sub)
	}
	if err := send.send(&diet.Response{Submit: verdict}); err != nil {
		return
	}
	if c == nil || !req.Wait {
		return
	}
	s.streamCampaign(send, c, sub)
}

// serveAttach reconnects a client to a campaign by ID: the attach verdict
// goes out first, then — at protocol v2 with Progress set — the campaign's
// full replayed history followed by live frames, and finally the result.
// Attaching to a finished campaign replays its history and closes with the
// stored result immediately.
func (s *Scheduler) serveAttach(send respSender, ver int, req *diet.AttachRequest) {
	if req == nil {
		_ = send.send(&diet.Response{Err: "attach: empty payload"})
		return
	}
	c := s.lookup(req.ID)
	if c == nil {
		_ = send.send(&diet.Response{Attach: &diet.AttachResponse{ID: req.ID}})
		return
	}
	// Subscribe before acknowledging, for the same reason serveSubmit does:
	// the replay inside subscribe() pins the history point the live stream
	// continues from.
	var sub chan *progressFrame
	if req.Progress && ver >= diet.ProtocolV2 {
		sub = c.subscribe()
		defer c.unsubscribe(sub)
	}
	snap := c.snapshot()
	if err := send.send(&diet.Response{Attach: &diet.AttachResponse{
		ID:     c.id,
		Found:  true,
		Status: snap.Status,
		Done:   snap.Done,
		Total:  snap.Total,
	}}); err != nil {
		return
	}
	s.streamCampaign(send, c, sub)
}

// streamCampaign pumps a campaign's progress frames into send until the
// campaign ends, then closes the stream with the result. sub may be nil
// (a plain v1 wait): the loop then only waits for completion.
func (s *Scheduler) streamCampaign(send respSender, c *campaign, sub chan *progressFrame) {
	for {
		select {
		case f := <-sub: // nil sub: never ready, plain v1 wait
			if err := send.sendProgress(f); err != nil {
				return
			}
		case <-c.done:
			// Drain progress frames published before completion so the
			// stream is gapless, then close with the result.
			for {
				select {
				case f := <-sub:
					if err := send.sendProgress(f); err != nil {
						return
					}
					continue
				default:
				}
				break
			}
			_ = send.send(&diet.Response{Result: c.snapshot()})
			return
		case <-s.done:
			_ = send.send(&diet.Response{Err: "grid: scheduler shut down"})
			return
		}
	}
}

// handle serves the one-shot request kinds. Register and list keep the
// passive MasterAgent contract, so legacy diet clients work against a live
// scheduler unchanged.
func (s *Scheduler) handle(req *diet.Request) *diet.Response {
	switch req.Kind {
	case diet.KindRegister:
		if req.Register == nil {
			return &diet.Response{Err: "register: empty payload"}
		}
		// The legacy register kind predates speed and drain: reference
		// factor, not draining.
		s.register(diet.SeDInfo(*req.Register), 0, 1.0, false)
		return &diet.Response{Register: &diet.RegisterResponse{Accepted: true}}
	case diet.KindHeartbeat:
		if req.Heartbeat == nil {
			return &diet.Response{Err: "heartbeat: empty payload"}
		}
		hb := req.Heartbeat
		s.register(diet.SeDInfo{Cluster: hb.Cluster, Addr: hb.Addr, Procs: hb.Procs}, hb.InFlight, hb.Speed, hb.Draining)
		return &diet.Response{Heartbeat: &diet.HeartbeatResponse{OK: true}}
	case diet.KindList:
		return &diet.Response{List: &diet.ListResponse{SeDs: s.listSeDs()}}
	case diet.KindResult:
		if req.Result == nil {
			return &diet.Response{Err: "result: empty payload"}
		}
		c := s.lookup(req.Result.ID)
		if c == nil {
			return &diet.Response{Err: fmt.Sprintf("grid: unknown campaign %d", req.Result.ID)}
		}
		return &diet.Response{Result: c.snapshot()}
	case diet.KindStats:
		stats := s.Stats()
		return &diet.Response{Stats: &stats}
	case diet.KindCancel:
		if req.Cancel == nil {
			return &diet.Response{Err: "cancel: empty payload"}
		}
		found, status := s.Cancel(req.Cancel.ID)
		return &diet.Response{Cancel: &diet.CancelResponse{ID: req.Cancel.ID, Found: found, Status: status}}
	case diet.KindInfo:
		if req.Info == nil {
			return &diet.Response{Err: "info: empty payload"}
		}
		return &diet.Response{Info: s.CampaignInfo(req.Info.ID)}
	case diet.KindListCampaigns:
		if req.ListCampaigns == nil {
			return &diet.Response{Err: "list-campaigns: empty payload"}
		}
		return &diet.Response{ListCampaigns: &diet.ListCampaignsResponse{Campaigns: s.ListCampaigns(req.ListCampaigns)}}
	default:
		return &diet.Response{Err: fmt.Sprintf("grid: scheduler: unsupported request %q", req.Kind)}
	}
}

// listSeDs exposes the live daemons in the MasterAgent's list format.
func (s *Scheduler) listSeDs() []diet.SeDInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]diet.SeDInfo, 0, len(s.seds))
	for _, st := range s.seds {
		if st.alive {
			out = append(out, st.info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cluster < out[j].Cluster })
	return out
}
