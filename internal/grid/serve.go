package grid

import (
	"encoding/gob"
	"fmt"
	"net"
	"sort"
	"time"

	"oagrid/internal/diet"
)

// frameTimeout bounds one decode or encode on a scheduler connection.
const frameTimeout = 5 * time.Second

// acceptLoop serves connections until the listener closes. The scheduler
// brings its own loop (instead of diet.Serve) because submit-wait
// connections stream two response frames.
func (s *Scheduler) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serveConn(conn)
	}
}

func (s *Scheduler) serveConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(frameTimeout))
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var req diet.Request
	if err := dec.Decode(&req); err != nil {
		return
	}
	if req.Kind == diet.KindSubmit {
		s.serveSubmit(conn, enc, req.Submit)
		return
	}
	resp := s.handle(&req)
	_ = conn.SetDeadline(time.Now().Add(frameTimeout))
	_ = enc.Encode(resp)
}

// serveSubmit answers a campaign submission. With Wait set the connection
// streams: the admission verdict goes out immediately, the campaign result
// follows on the same connection when the run completes.
func (s *Scheduler) serveSubmit(conn net.Conn, enc *gob.Encoder, req *diet.SubmitRequest) {
	if req == nil {
		_ = enc.Encode(&diet.Response{Err: "submit: empty payload"})
		return
	}
	c, verdict, err := s.admit(req)
	if err != nil {
		// Malformed campaign: a protocol error, not an admission verdict —
		// retrying it can never succeed.
		_ = conn.SetDeadline(time.Now().Add(frameTimeout))
		_ = enc.Encode(&diet.Response{Err: err.Error()})
		return
	}
	_ = conn.SetDeadline(time.Now().Add(frameTimeout))
	if err := enc.Encode(&diet.Response{Submit: verdict}); err != nil {
		return
	}
	if c == nil || !req.Wait {
		return
	}
	_ = conn.SetDeadline(time.Now().Add(s.cfg.CampaignTimeout + frameTimeout))
	select {
	case <-c.done:
		_ = conn.SetDeadline(time.Now().Add(frameTimeout))
		_ = enc.Encode(&diet.Response{Result: c.snapshot()})
	case <-s.done:
		_ = conn.SetDeadline(time.Now().Add(frameTimeout))
		_ = enc.Encode(&diet.Response{Err: "grid: scheduler shut down"})
	}
}

// handle serves the one-shot request kinds. Register and list keep the
// passive MasterAgent contract, so legacy diet clients work against a live
// scheduler unchanged.
func (s *Scheduler) handle(req *diet.Request) *diet.Response {
	switch req.Kind {
	case diet.KindRegister:
		if req.Register == nil {
			return &diet.Response{Err: "register: empty payload"}
		}
		s.register(diet.SeDInfo(*req.Register), 0)
		return &diet.Response{Register: &diet.RegisterResponse{Accepted: true}}
	case diet.KindHeartbeat:
		if req.Heartbeat == nil {
			return &diet.Response{Err: "heartbeat: empty payload"}
		}
		hb := req.Heartbeat
		s.register(diet.SeDInfo{Cluster: hb.Cluster, Addr: hb.Addr, Procs: hb.Procs}, hb.InFlight)
		return &diet.Response{Heartbeat: &diet.HeartbeatResponse{OK: true}}
	case diet.KindList:
		return &diet.Response{List: &diet.ListResponse{SeDs: s.listSeDs()}}
	case diet.KindResult:
		if req.Result == nil {
			return &diet.Response{Err: "result: empty payload"}
		}
		c := s.lookup(req.Result.ID)
		if c == nil {
			return &diet.Response{Err: fmt.Sprintf("grid: unknown campaign %d", req.Result.ID)}
		}
		return &diet.Response{Result: c.snapshot()}
	case diet.KindStats:
		stats := s.Stats()
		return &diet.Response{Stats: &stats}
	default:
		return &diet.Response{Err: fmt.Sprintf("grid: scheduler: unsupported request %q", req.Kind)}
	}
}

// listSeDs exposes the live daemons in the MasterAgent's list format.
func (s *Scheduler) listSeDs() []diet.SeDInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]diet.SeDInfo, 0, len(s.seds))
	for _, st := range s.seds {
		if st.alive {
			out = append(out, st.info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cluster < out[j].Cluster })
	return out
}
