package grid

import (
	"encoding/gob"
	"fmt"
	"net"
	"sort"
	"time"

	"oagrid/internal/diet"
)

// frameTimeout bounds one decode or encode on a scheduler connection.
const frameTimeout = 5 * time.Second

// acceptLoop serves connections until the listener closes. The scheduler
// brings its own loop (instead of diet.Serve) because submit-wait
// connections stream two response frames.
func (s *Scheduler) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serveConn(conn)
	}
}

func (s *Scheduler) serveConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(frameTimeout))
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var req diet.Request
	if err := dec.Decode(&req); err != nil {
		return
	}
	ver := diet.NegotiateVersion(req.Version)
	if req.Kind == diet.KindSubmit {
		s.serveSubmit(conn, enc, ver, req.Submit)
		return
	}
	if req.Kind == diet.KindAttach {
		s.serveAttach(conn, enc, ver, req.Attach)
		return
	}
	resp := s.handle(&req)
	resp.Version = ver
	_ = conn.SetDeadline(time.Now().Add(frameTimeout))
	_ = enc.Encode(resp)
}

// serveSubmit answers a campaign submission. With Wait set the connection
// streams: the admission verdict goes out immediately; at protocol v2 with
// Progress set, per-campaign progress frames follow; the campaign result
// closes the stream when the run completes. Every frame write refreshes the
// connection deadline, so a stream stays alive exactly as long as its
// campaign — and a client gone mid-stream fails a frame write, which
// releases this goroutine without touching the dispatcher that runs the
// campaign.
func (s *Scheduler) serveSubmit(conn net.Conn, enc *gob.Encoder, ver int, req *diet.SubmitRequest) {
	send := func(resp *diet.Response) error {
		resp.Version = ver
		_ = conn.SetDeadline(time.Now().Add(frameTimeout))
		return enc.Encode(resp)
	}
	if req == nil {
		_ = send(&diet.Response{Err: "submit: empty payload"})
		return
	}
	// Features above the negotiated version stay off the wire in both
	// directions: a peer announcing v2 gets v2 semantics even if it smuggled
	// v3 submit fields into the envelope.
	if ver < diet.ProtocolV3 {
		req.Priority, req.Labels, req.Deadline = 0, nil, 0
	}
	c, verdict, err := s.admit(req)
	if err != nil {
		// Malformed campaign: a protocol error, not an admission verdict —
		// retrying it can never succeed.
		_ = send(&diet.Response{Err: err.Error()})
		return
	}
	// Subscribe before acknowledging admission: the dispatcher may pop the
	// campaign immediately, and a subscription taken later would race the
	// first planned frame (the history replay makes even that race benign,
	// but late frames would reorder around the verdict).
	var sub chan diet.ProgressUpdate
	if c != nil && req.Wait && req.Progress && ver >= diet.ProtocolV2 {
		sub = c.subscribe()
		defer c.unsubscribe(sub)
	}
	if err := send(&diet.Response{Submit: verdict}); err != nil {
		return
	}
	if c == nil || !req.Wait {
		return
	}
	s.streamCampaign(send, c, sub)
}

// serveAttach reconnects a client to a campaign by ID: the attach verdict
// goes out first, then — at protocol v2 with Progress set — the campaign's
// full replayed history followed by live frames, and finally the result.
// Attaching to a finished campaign replays its history and closes with the
// stored result immediately.
func (s *Scheduler) serveAttach(conn net.Conn, enc *gob.Encoder, ver int, req *diet.AttachRequest) {
	send := func(resp *diet.Response) error {
		resp.Version = ver
		_ = conn.SetDeadline(time.Now().Add(frameTimeout))
		return enc.Encode(resp)
	}
	if req == nil {
		_ = send(&diet.Response{Err: "attach: empty payload"})
		return
	}
	c := s.lookup(req.ID)
	if c == nil {
		_ = send(&diet.Response{Attach: &diet.AttachResponse{ID: req.ID}})
		return
	}
	// Subscribe before acknowledging, for the same reason serveSubmit does:
	// the replay inside subscribe() pins the history point the live stream
	// continues from.
	var sub chan diet.ProgressUpdate
	if req.Progress && ver >= diet.ProtocolV2 {
		sub = c.subscribe()
		defer c.unsubscribe(sub)
	}
	snap := c.snapshot()
	if err := send(&diet.Response{Attach: &diet.AttachResponse{
		ID:     c.id,
		Found:  true,
		Status: snap.Status,
		Done:   snap.Done,
		Total:  snap.Total,
	}}); err != nil {
		return
	}
	s.streamCampaign(send, c, sub)
}

// streamCampaign pumps a campaign's progress frames into send until the
// campaign ends, then closes the stream with the result. sub may be nil
// (a plain v1 wait): the loop then only waits for completion.
func (s *Scheduler) streamCampaign(send func(*diet.Response) error, c *campaign, sub chan diet.ProgressUpdate) {
	for {
		select {
		case u := <-sub: // nil sub: never ready, plain v1 wait
			if err := send(&diet.Response{Progress: &u}); err != nil {
				return
			}
		case <-c.done:
			// Drain progress frames published before completion so the
			// stream is gapless, then close with the result.
			for {
				select {
				case u := <-sub:
					if err := send(&diet.Response{Progress: &u}); err != nil {
						return
					}
					continue
				default:
				}
				break
			}
			_ = send(&diet.Response{Result: c.snapshot()})
			return
		case <-s.done:
			_ = send(&diet.Response{Err: "grid: scheduler shut down"})
			return
		}
	}
}

// handle serves the one-shot request kinds. Register and list keep the
// passive MasterAgent contract, so legacy diet clients work against a live
// scheduler unchanged.
func (s *Scheduler) handle(req *diet.Request) *diet.Response {
	switch req.Kind {
	case diet.KindRegister:
		if req.Register == nil {
			return &diet.Response{Err: "register: empty payload"}
		}
		s.register(diet.SeDInfo(*req.Register), 0)
		return &diet.Response{Register: &diet.RegisterResponse{Accepted: true}}
	case diet.KindHeartbeat:
		if req.Heartbeat == nil {
			return &diet.Response{Err: "heartbeat: empty payload"}
		}
		hb := req.Heartbeat
		s.register(diet.SeDInfo{Cluster: hb.Cluster, Addr: hb.Addr, Procs: hb.Procs}, hb.InFlight)
		return &diet.Response{Heartbeat: &diet.HeartbeatResponse{OK: true}}
	case diet.KindList:
		return &diet.Response{List: &diet.ListResponse{SeDs: s.listSeDs()}}
	case diet.KindResult:
		if req.Result == nil {
			return &diet.Response{Err: "result: empty payload"}
		}
		c := s.lookup(req.Result.ID)
		if c == nil {
			return &diet.Response{Err: fmt.Sprintf("grid: unknown campaign %d", req.Result.ID)}
		}
		return &diet.Response{Result: c.snapshot()}
	case diet.KindStats:
		stats := s.Stats()
		return &diet.Response{Stats: &stats}
	case diet.KindCancel:
		if req.Cancel == nil {
			return &diet.Response{Err: "cancel: empty payload"}
		}
		found, status := s.Cancel(req.Cancel.ID)
		return &diet.Response{Cancel: &diet.CancelResponse{ID: req.Cancel.ID, Found: found, Status: status}}
	case diet.KindInfo:
		if req.Info == nil {
			return &diet.Response{Err: "info: empty payload"}
		}
		return &diet.Response{Info: s.CampaignInfo(req.Info.ID)}
	case diet.KindListCampaigns:
		if req.ListCampaigns == nil {
			return &diet.Response{Err: "list-campaigns: empty payload"}
		}
		return &diet.Response{ListCampaigns: &diet.ListCampaignsResponse{Campaigns: s.ListCampaigns(req.ListCampaigns)}}
	default:
		return &diet.Response{Err: fmt.Sprintf("grid: scheduler: unsupported request %q", req.Kind)}
	}
}

// listSeDs exposes the live daemons in the MasterAgent's list format.
func (s *Scheduler) listSeDs() []diet.SeDInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]diet.SeDInfo, 0, len(s.seds))
	for _, st := range s.seds {
		if st.alive {
			out = append(out, st.info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cluster < out[j].Cluster })
	return out
}
