package grid

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/diet"
)

// TestWFQProportionalShare: two backlogged tenants with weights 3:1 split
// the dispatch slots 3:1 — exactly, window by window, because the virtual
// finish tags and the name tie-break make the schedule deterministic.
func TestWFQProportionalShare(t *testing.T) {
	app := core.Application{Scenarios: 1, Months: 1}
	s := queueScheduler(Config{TenantWeights: map[string]float64{"heavy": 3, "light": 1}})
	for i := uint64(0); i < 40; i++ {
		tenant := "heavy"
		if i >= 30 {
			tenant = "light"
		}
		s.push(newCampaign(i+1, app, core.NameKnapsack, submitMeta{
			labels: map[string]string{DefaultTenantKey: tenant},
		}))
	}
	heavy, light := 0, 0
	for i := 0; i < 40; i++ {
		c := s.dequeue()
		switch c.tenant {
		case "heavy":
			heavy++
		case "light":
			light++
		default:
			t.Fatalf("pop %d came from unknown tenant %q", i, c.tenant)
		}
		// The weighted share holds over every prefix, not just in aggregate:
		// heavy never gets more than 3 slots ahead of its 3:1 entitlement.
		if d := heavy - 3*light; d < -3 || d > 3 {
			t.Fatalf("after %d pops the split is %d:%d — drifted off the 3:1 share", i+1, heavy, light)
		}
	}
	if heavy != 30 || light != 10 {
		t.Fatalf("40 pops split %d:%d, want 30:10", heavy, light)
	}
}

// TestWFQIdleTenantBanksNoCredit: a tenant that sat idle while another was
// served re-enters at the current virtual time — it does not accumulate
// lag-credit it could burn to lock out the active tenant.
func TestWFQIdleTenantBanksNoCredit(t *testing.T) {
	app := core.Application{Scenarios: 1, Months: 1}
	s := queueScheduler(Config{})
	mk := func(id uint64, tenant string) *campaign {
		return newCampaign(id, app, core.NameKnapsack, submitMeta{
			labels: map[string]string{DefaultTenantKey: tenant},
		})
	}
	// Tenant a is served alone for a while; b is idle the whole time.
	for i := uint64(1); i <= 10; i++ {
		s.push(mk(i, "a"))
	}
	for i := 0; i < 10; i++ {
		s.dequeue()
	}
	// Both become backlogged: equal weights must now alternate — b's idle
	// stretch is worth nothing.
	for i := uint64(11); i <= 16; i++ {
		s.push(mk(i, "a"))
		s.push(mk(i+100, "b"))
	}
	counts := map[string]int{}
	for i := 0; i < 12; i++ {
		c := s.dequeue()
		counts[c.tenant]++
		if d := counts["a"] - counts["b"]; d < -1 || d > 1 {
			t.Fatalf("after %d contended pops the split is a=%d b=%d; idle credit leaked", i+1, counts["a"], counts["b"])
		}
	}
}

// TestAgingLiftsStarvedPriority: within one tenant, a long-waiting
// low-priority campaign overtakes a fresher high-priority one once its age
// boost exceeds the priority gap — and with aging disabled it never does.
func TestAgingLiftsStarvedPriority(t *testing.T) {
	app := core.Application{Scenarios: 1, Months: 1}

	s := queueScheduler(Config{AgeAfter: time.Second})
	old := newCampaign(1, app, core.NameKnapsack, submitMeta{priority: 0})
	old.enqueuedAt = time.Now().Add(-time.Hour) // 3600 aging boosts banked
	fresh := newCampaign(2, app, core.NameKnapsack, submitMeta{priority: 9})
	s.push(fresh)
	s.push(old)
	if c := s.dequeue(); c.id != old.id {
		t.Fatalf("aged priority-0 campaign lost to a fresh priority-9 one (popped %d)", c.id)
	}

	s = queueScheduler(Config{AgeAfter: -1}) // aging disabled
	old = newCampaign(1, app, core.NameKnapsack, submitMeta{priority: 0})
	old.enqueuedAt = time.Now().Add(-time.Hour)
	fresh = newCampaign(2, app, core.NameKnapsack, submitMeta{priority: 9})
	s.push(fresh)
	s.push(old)
	if c := s.dequeue(); c.id != fresh.id {
		t.Fatalf("with aging disabled, priority 9 should pop first (popped %d)", c.id)
	}
}

// submitTenant submits a campaign with a tenant label and priority over the
// raw wire (the Client convenience wrappers carry no labels).
func submitTenant(t *testing.T, addr string, ns, months, pri int, tenant string) *diet.SubmitResponse {
	t.Helper()
	resp, err := diet.RoundTrip(addr, &diet.Request{Version: diet.ProtocolVersion, Kind: diet.KindSubmit, Submit: &diet.SubmitRequest{
		Scenarios: ns, Months: months, Heuristic: core.NameKnapsack, Priority: pri,
		Labels: map[string]string{DefaultTenantKey: tenant},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Submit == nil {
		t.Fatalf("no admission verdict from %s", addr)
	}
	return resp.Submit
}

// TestWeightOneTenantNotStarved is the cross-tenant starvation bound,
// deterministically: a weight-10 tenant floods the single-dispatcher daemon
// with priority-9 campaigns, then a weight-1 tenant submits one priority-0
// campaign — which must reach the SeD within the flood's next 11 dispatch
// slots, because WFQ guarantees it 1 slot in 11 regardless of priorities.
func TestWeightOneTenantNotStarved(t *testing.T) {
	s, err := Start(Config{
		Addr:          "127.0.0.1:0",
		Dispatchers:   1,
		EvictAfter:    2 * time.Second,
		TenantWeights: map[string]float64{"flood": 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	g := startGateSeD(t, s.Addr())
	waitAliveAddr(t, s.Addr(), 1, 10*time.Second)

	// The occupant pins the dispatcher while the queues build up. Campaigns
	// are told apart at the gate by NS: occupant 3, flood 4, victim 5.
	occupant := submitTenant(t, s.Addr(), 3, 6, 9, "flood")
	if !occupant.Accepted {
		t.Fatalf("occupant rejected: %+v", occupant)
	}
	if n := g.nextExec(t); n != 3 {
		t.Fatalf("occupant dispatched %d scenarios, want 3", n)
	}
	var flood []uint64
	for i := 0; i < 10; i++ {
		v := submitTenant(t, s.Addr(), 4, 6, 9, "flood")
		if !v.Accepted {
			t.Fatalf("flood submit %d rejected: %+v", i, v)
		}
		flood = append(flood, v.ID)
	}
	victim := submitTenant(t, s.Addr(), 5, 6, 0, "victim")
	if !victim.Accepted {
		t.Fatalf("victim rejected: %+v", victim)
	}

	g.release <- struct{}{} // finish the occupant; the WFQ schedule begins
	victimAt := -1
	for i := 0; i < 11; i++ {
		n := g.nextExec(t)
		if n == 5 {
			victimAt = i
			break
		}
		if n != 4 {
			t.Fatalf("dispatch %d carried %d scenarios, want flood's 4 or victim's 5", i, n)
		}
		g.release <- struct{}{}
	}
	if victimAt < 0 {
		t.Fatal("weight-1 victim starved: not dispatched within 11 weighted slots")
	}
	t.Logf("victim dispatched in slot %d of 11", victimAt)

	// Drain: release the victim and whatever flood campaigns remain.
	g.release <- struct{}{}
	for i := victimAt + 1; i < 10; i++ {
		if n := g.nextExec(t); n != 4 {
			t.Fatalf("drain dispatch carried %d scenarios, want 4", n)
		}
		g.release <- struct{}{}
	}
	c := &Client{Addr: s.Addr(), Timeout: time.Minute}
	waitStatus(t, c, victim.ID, diet.CampaignDone)
	for _, id := range flood {
		waitStatus(t, c, id, diet.CampaignDone)
	}
}

// TestTenantQuotaRejection: with a per-tenant quota of one queued campaign,
// a tenant's second submission gets the typed retryable quota rejection
// while the shared queue still has room — and succeeds on retry once the
// first campaign leaves the queue.
func TestTenantQuotaRejection(t *testing.T) {
	s, err := Start(Config{
		Addr:        "127.0.0.1:0",
		Dispatchers: 1,
		EvictAfter:  2 * time.Second,
		TenantQuota: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	g := startGateSeD(t, s.Addr())
	waitAliveAddr(t, s.Addr(), 1, 10*time.Second)

	// Occupant (default tenant) pins the dispatcher; q's first campaign
	// queues, exhausting q's quota without filling the shared queue.
	occupant := submitTenant(t, s.Addr(), 3, 6, 0, DefaultTenant)
	if !occupant.Accepted {
		t.Fatalf("occupant rejected: %+v", occupant)
	}
	if n := g.nextExec(t); n != 3 {
		t.Fatalf("occupant dispatched %d scenarios, want 3", n)
	}
	first := submitTenant(t, s.Addr(), 4, 6, 0, "q")
	if !first.Accepted {
		t.Fatalf("first campaign rejected: %+v", first)
	}

	second := submitTenant(t, s.Addr(), 5, 6, 0, "q")
	if second.Accepted {
		t.Fatal("second queued campaign beat the quota of 1")
	}
	if second.Code != diet.RejectQuota {
		t.Fatalf("rejection code %q, want %q", second.Code, diet.RejectQuota)
	}
	// The typed mapping: quota rejections are ErrQuotaExceeded AND
	// ErrRejected (so pre-quota retry loops keep working); queue-full stays
	// plain ErrRejected.
	err = rejectionError(second)
	if !errors.Is(err, ErrQuotaExceeded) || !errors.Is(err, ErrRejected) {
		t.Fatalf("quota rejection mapped to %v, want ErrQuotaExceeded wrapping ErrRejected", err)
	}
	if full := rejectionError(&diet.SubmitResponse{Code: diet.RejectQueueFull}); errors.Is(full, ErrQuotaExceeded) {
		t.Fatalf("queue-full rejection mapped to ErrQuotaExceeded: %v", full)
	}

	// Quota is about queued campaigns: once the first one dispatches, the
	// retry is admitted even though the first is still running.
	g.release <- struct{}{} // occupant finishes; q's first campaign dispatches
	if n := g.nextExec(t); n != 4 {
		t.Fatalf("gate saw %d scenarios, want q's first campaign (4)", n)
	}
	retry := submitTenant(t, s.Addr(), 5, 6, 0, "q")
	if !retry.Accepted {
		t.Fatalf("retry after drain rejected: %+v", retry)
	}
	g.release <- struct{}{}
	if n := g.nextExec(t); n != 5 {
		t.Fatalf("gate saw %d scenarios, want the retried campaign (5)", n)
	}
	g.release <- struct{}{}

	c := &Client{Addr: s.Addr(), Timeout: time.Minute}
	for _, id := range []uint64{occupant.ID, first.ID, retry.ID} {
		waitStatus(t, c, id, diet.CampaignDone)
	}
	stats := s.Stats()
	var q *diet.TenantStatus
	for i := range stats.Tenants {
		if stats.Tenants[i].Tenant == "q" {
			q = &stats.Tenants[i]
		}
	}
	if q == nil {
		t.Fatal("tenant q missing from Stats")
	}
	if q.QuotaRejected != 1 || q.Admitted != 2 || q.Completed != 2 {
		t.Fatalf("tenant q stats %+v, want 1 quota rejection, 2 admitted, 2 completed", q)
	}
}

// TestTenantTableBounded: a client cycling unique tenant-label values
// cannot grow the tenant table (and with it the /metrics cardinality)
// without bound — past maxDynamicTenants distinct names, new ones fold
// into OverflowTenant, while configured tenants always keep their own
// entry and rejected submissions leave no state behind.
func TestTenantTableBounded(t *testing.T) {
	s := queueScheduler(Config{
		QueueCap:      512,
		TenantWeights: map[string]float64{"vip": 2},
	})
	submit := func(tenant string) *diet.SubmitResponse {
		t.Helper()
		_, verdict, err := s.admit(&diet.SubmitRequest{
			Scenarios: 1, Months: 1, Heuristic: core.NameKnapsack,
			Labels: map[string]string{DefaultTenantKey: tenant},
		})
		if err != nil {
			t.Fatal(err)
		}
		return verdict
	}
	overflowing := 40
	for i := 0; i < maxDynamicTenants+overflowing; i++ {
		if v := submit(fmt.Sprintf("churn-%04d", i)); !v.Accepted {
			t.Fatalf("submission %d rejected: %+v", i, v)
		}
	}
	// A configured tenant still gets its own entry after the fold kicks in.
	if v := submit("vip"); !v.Accepted {
		t.Fatalf("vip submission rejected: %+v", v)
	}

	s.mu.Lock()
	total := len(s.tenants)
	overflow := s.tenants[OverflowTenant]
	vip := s.tenants["vip"]
	s.mu.Unlock()
	// The cap plus the overflow bucket plus the configured tenant.
	if total > maxDynamicTenants+2 {
		t.Fatalf("tenant table grew to %d entries, want <= %d", total, maxDynamicTenants+2)
	}
	if overflow == nil || overflow.queued != overflowing {
		t.Fatalf("overflow tenant holds %+v, want %d queued", overflow, overflowing)
	}
	if vip == nil || vip.weight != 2 {
		t.Fatalf("configured tenant folded away: %+v", vip)
	}

	// A rejected submission must not create tenant state: fill the queue,
	// then submit under a fresh name.
	for s.queueLen < s.cfg.QueueCap {
		if v := submit(DefaultTenant); !v.Accepted {
			t.Fatalf("filler rejected early: %+v", v)
		}
	}
	if v := submit("never-admitted"); v.Accepted || v.Code != diet.RejectQueueFull {
		t.Fatalf("expected queue-full rejection, got %+v", v)
	}
	s.mu.Lock()
	ghost := s.tenants["never-admitted"]
	s.mu.Unlock()
	if ghost != nil {
		t.Fatalf("queue-full rejection left tenant state behind: %+v", ghost)
	}
}

// TestMetricsEndpoint: the daemon's /metrics endpoint serves Prometheus
// text with the queue, per-tenant and SeD gauge families, and per-tenant
// counters reflect completed work.
func TestMetricsEndpoint(t *testing.T) {
	f := startFabric(t, Config{
		Addr:          "127.0.0.1:0",
		EvictAfter:    2 * time.Second,
		MetricsAddr:   "127.0.0.1:0",
		TenantWeights: map[string]float64{"ocean": 2},
	}, 2)
	maddr := f.Sched.MetricsAddr()
	if maddr == "" {
		t.Fatal("daemon started without a metrics address")
	}

	verdict := submitTenant(t, f.Sched.Addr(), 2, 6, 0, "ocean")
	if !verdict.Accepted {
		t.Fatalf("submit rejected: %+v", verdict)
	}
	c := &Client{Addr: f.Sched.Addr(), Timeout: time.Minute}
	waitStatus(t, c, verdict.ID, diet.CampaignDone)
	// The status flips Done just before the gauges settle; wait for them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := f.Sched.Stats()
		if st.Completed == 1 && st.Running == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gauges never settled: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get("http://" + maddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q, want Prometheus text", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"oagrid_queue_depth 0",
		"oagrid_running 0",
		"oagrid_campaigns_completed_total 1",
		`oagrid_tenant_weight{tenant="ocean"} 2`,
		`oagrid_tenant_admitted_total{tenant="ocean"} 1`,
		`oagrid_tenant_completed_total{tenant="ocean"} 1`,
		`oagrid_tenant_queue_wait_seconds_count{tenant="ocean"} 1`,
		"oagrid_sed_alive",
		"oagrid_wire_tx_bytes_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics output missing %q:\n%s", want, text)
		}
	}

	// A 404 off the endpoint path, and a clean shutdown with the scheduler.
	if resp, err := http.Get("http://" + maddr + "/nope"); err == nil {
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatal("metrics server served an unknown path")
		}
	}
}

// TestQueuePositionAndWait: Info on a queued campaign reports its 1-based
// within-tenant queue position and a growing wait; after dispatch the
// position clears and the wait freezes at the dispatch latency.
func TestQueuePositionAndWait(t *testing.T) {
	s, err := Start(Config{
		Addr:        "127.0.0.1:0",
		Dispatchers: 1,
		EvictAfter:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	g := startGateSeD(t, s.Addr())
	waitAliveAddr(t, s.Addr(), 1, 10*time.Second)

	occupant := submitTenant(t, s.Addr(), 3, 6, 0, DefaultTenant)
	if n := g.nextExec(t); n != 3 {
		t.Fatalf("occupant dispatched %d scenarios, want 3", n)
	}
	low := submitTenant(t, s.Addr(), 4, 6, 0, DefaultTenant)
	high := submitTenant(t, s.Addr(), 5, 6, 9, DefaultTenant)

	c := &Client{Addr: s.Addr(), Timeout: time.Minute}
	lowInfo, err := c.InfoContext(context.Background(), low.ID)
	if err != nil {
		t.Fatal(err)
	}
	highInfo, err := c.InfoContext(context.Background(), high.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Priority 9 is ahead of priority 0 even though it was submitted later.
	if highInfo.QueuePos != 1 || lowInfo.QueuePos != 2 {
		t.Fatalf("queue positions high=%d low=%d, want 1 and 2", highInfo.QueuePos, lowInfo.QueuePos)
	}
	if lowInfo.Tenant != DefaultTenant {
		t.Fatalf("tenant %q, want %q", lowInfo.Tenant, DefaultTenant)
	}
	if lowInfo.WaitMs <= 0 {
		t.Fatalf("queued campaign reports wait %.3fms, want > 0", lowInfo.WaitMs)
	}

	g.release <- struct{}{} // occupant finishes
	if n := g.nextExec(t); n != 5 {
		t.Fatalf("gate saw %d scenarios, want the priority-9 campaign (5)", n)
	}
	g.release <- struct{}{}
	if n := g.nextExec(t); n != 4 {
		t.Fatalf("gate saw %d scenarios, want the priority-0 campaign (4)", n)
	}
	g.release <- struct{}{}
	for _, id := range []uint64{occupant.ID, low.ID, high.ID} {
		waitStatus(t, c, id, diet.CampaignDone)
	}
	done, err := c.InfoContext(context.Background(), low.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.QueuePos != 0 {
		t.Fatalf("finished campaign still reports queue position %d", done.QueuePos)
	}
	if done.WaitMs <= 0 {
		t.Fatalf("finished campaign reports queue wait %.3fms, want the frozen dispatch latency", done.WaitMs)
	}
}
