package grid

import (
	"math"
	"testing"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/diet"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
)

// startSpeedPair starts a scheduler plus two SeDs serving the same base
// profile under distinct names, the second at the given speed factor.
func startSpeedPair(t *testing.T, speed float64) (*Scheduler, map[string]*platform.Cluster) {
	t.Helper()
	sched, err := Start(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sched.Close() })
	proto := platform.FiveClusters()[0]
	proto.Procs = 30
	clusters := map[string]*platform.Cluster{}
	for i, name := range []string{"alpha", "beta"} {
		cl := *proto
		cl.Name = name
		s := 1.0
		if i == 1 {
			s = speed
		}
		sed, err := diet.StartSeDSpeed("127.0.0.1:0", &cl, exec.Options{}, s)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sed.Close() })
		sed.StartHeartbeats(sched.Addr(), 50*time.Millisecond)
		clusters[name] = &cl
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		alive := 0
		for _, sd := range sched.Stats().SeDs {
			if sd.Alive {
				alive++
			}
		}
		if alive == 2 {
			return sched, clusters
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of 2 SeDs alive", alive)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSpeedAwarePlacement pins the heterogeneous-fleet contract: a SeD
// advertising half the reference speed receives proportionally smaller
// chunks (identical hardware otherwise), while every chunk report stays
// bit-identical to its serial replay on the base profile — the speed factor
// shifts placement, never execution.
func TestSpeedAwarePlacement(t *testing.T) {
	sched, clusters := startSpeedPair(t, 0.5)
	app := core.Application{Scenarios: 30, Months: 12}
	client := &Client{Addr: sched.Addr()}
	res, err := client.Run(app, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}

	share := map[string]int{}
	for _, rep := range res.Reports {
		share[rep.Cluster] += rep.Scenarios
	}
	if share["alpha"]+share["beta"] != app.Scenarios {
		t.Fatalf("scenario accounting: alpha %d + beta %d != %d", share["alpha"], share["beta"], app.Scenarios)
	}
	// A half-speed daemon on otherwise identical hardware should carry
	// about a third of the work (throughput ratio 2:1). Generous bounds:
	// the repartition is makespan-minimizing over an Amdahl profile, not a
	// linear split.
	frac := float64(share["beta"]) / float64(app.Scenarios)
	if frac < 0.15 || frac > 0.45 {
		t.Fatalf("half-speed SeD got %d of %d scenarios (%.0f%%), want roughly a third", share["beta"], app.Scenarios, 100*frac)
	}
	if share["beta"] >= share["alpha"] {
		t.Fatalf("half-speed SeD out-placed the reference daemon: beta %d >= alpha %d", share["beta"], share["alpha"])
	}

	// The speed factor must not leak into execution: every chunk replays
	// bit-identically on the base profile.
	v, err := NewVerifier(clusters, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(app, res); err != nil {
		t.Fatal(err)
	}

	// Determinism across runs: the same campaign on the same fleet lands on
	// the identical placement and bitwise-equal makespan.
	res2, err := client.Run(app, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(res.Makespan) != math.Float64bits(res2.Makespan) {
		t.Fatalf("heterogeneous placement is not deterministic: %g vs %g", res.Makespan, res2.Makespan)
	}
}

// TestRegisterInvalidatesVectorCache pins the capability-change fix: a
// cached performance vector must not survive the daemon re-advertising a
// different address, processor count, or speed factor.
func TestRegisterInvalidatesVectorCache(t *testing.T) {
	sched, err := Start(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sched.Close() })

	info := diet.SeDInfo{Cluster: "c", Addr: "127.0.0.1:1111", Procs: 30}
	seed := func() *sedState {
		t.Helper()
		sched.register(info, 0, 1.0, false)
		sched.mu.Lock()
		st := sched.seds["c"]
		st.vectors[vecKey{months: 12, heuristic: "knapsack"}] = []float64{1, 2, 3, 4}
		sched.mu.Unlock()
		return st
	}
	cached := func(st *sedState) int {
		sched.mu.Lock()
		defer sched.mu.Unlock()
		return len(st.vectors)
	}

	st := seed()
	sched.register(info, 0, 1.0, false)
	if cached(st) != 1 {
		t.Fatal("an unchanged heartbeat dropped the vector cache")
	}
	sched.register(info, 0, 0.5, false)
	if cached(st) != 0 {
		t.Fatal("a speed change kept the stale vector cache")
	}

	st = seed()
	sched.register(diet.SeDInfo{Cluster: "c", Addr: "127.0.0.1:2222", Procs: 30}, 0, 1.0, false)
	if cached(st) != 0 {
		t.Fatal("an address change kept the stale vector cache")
	}

	info = diet.SeDInfo{Cluster: "c", Addr: "127.0.0.1:2222", Procs: 30}
	st = seed()
	sched.register(diet.SeDInfo{Cluster: "c", Addr: "127.0.0.1:2222", Procs: 64}, 0, 1.0, false)
	if cached(st) != 0 {
		t.Fatal("a processor-count change kept the stale vector cache")
	}
}

// TestDrainExcludesAndDeregisters pins the drain state machine at the
// scheduler: a draining daemon drops out of new snapshots immediately,
// deregistration refuses while a lease is held, and succeeds once released.
func TestDrainExcludesAndDeregisters(t *testing.T) {
	sched, err := Start(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sched.Close() })

	a := diet.SeDInfo{Cluster: "a", Addr: "127.0.0.1:1111", Procs: 30}
	b := diet.SeDInfo{Cluster: "b", Addr: "127.0.0.1:2222", Procs: 30}
	sched.register(a, 0, 1.0, false)
	sched.register(b, 0, 1.0, false)

	refs := sched.aliveSeDs()
	if len(refs) != 2 {
		t.Fatalf("got %d dispatchable SeDs, want 2", len(refs))
	}
	// Drain lands mid-round: the held lease must block deregistration.
	sched.register(b, 0, 1.0, true)
	if sched.DeregisterSeD("b", b.Addr) {
		t.Fatal("deregistered a SeD while a round still held its lease")
	}
	second := sched.aliveSeDs()
	if len(second) != 1 || second[0].info.Cluster != "a" {
		t.Fatalf("draining SeD still dispatchable: snapshot %+v, want just a", second)
	}
	sched.releaseSeDs(second)
	sched.releaseSeDs(refs)
	if !sched.DeregisterSeD("b", b.Addr) {
		t.Fatal("deregistration refused after the last lease was released")
	}
	// A straggling draining beat must not resurrect the entry.
	sched.register(b, 0, 1.0, true)
	for _, sd := range sched.Stats().SeDs {
		if sd.Cluster == "b" {
			t.Fatal("a post-deregister draining beat resurrected the SeD")
		}
	}
	// Deregistering a live, non-draining daemon must refuse.
	if sched.DeregisterSeD("a", a.Addr) {
		t.Fatal("deregistered a daemon that never drained")
	}
}
