package grid

import (
	"context"
	"encoding/gob"
	"errors"
	"net"
	"testing"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/diet"
)

// fakeDaemon accepts one submit-wait connection and plays a scripted frame
// sequence with a fixed pause between frames, standing in for a daemon
// whose campaign runs much longer than any single frame timeout.
func fakeDaemon(t *testing.T, frames []*diet.Response, pause time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var req diet.Request
		if err := gob.NewDecoder(conn).Decode(&req); err != nil {
			return
		}
		enc := gob.NewEncoder(conn)
		for i, frame := range frames {
			if i > 0 {
				time.Sleep(pause)
			}
			if err := enc.Encode(frame); err != nil {
				return
			}
		}
		// Leave the connection open: a scripted silence, not an EOF.
		time.Sleep(10 * time.Second)
	}()
	return ln.Addr().String()
}

// TestClientSurvivesCampaignLongerThanTimeout is the regression test for
// the dial-time-deadline bug: a streamed campaign whose total duration
// exceeds the client Timeout must survive as long as frames keep arriving,
// because every received frame refreshes the deadline.
func TestClientSurvivesCampaignLongerThanTimeout(t *testing.T) {
	mkProgress := func(done int) *diet.Response {
		return &diet.Response{Version: diet.ProtocolV2, Progress: &diet.ProgressUpdate{
			ID: 1, Stage: diet.StageChunk, Done: done, Total: 4,
			Chunk: &diet.ExecResponse{Cluster: "c", Scenarios: 1, Makespan: 1},
		}}
	}
	frames := []*diet.Response{
		{Version: diet.ProtocolV2, Submit: &diet.SubmitResponse{ID: 1, Accepted: true}},
		mkProgress(1), mkProgress(2), mkProgress(3), mkProgress(4),
		{Version: diet.ProtocolV2, Result: &diet.CampaignResult{ID: 1, Status: diet.CampaignDone, Makespan: 1}},
	}
	// 5 inter-frame pauses of 120ms ≈ 600ms total stream against a 250ms
	// frame timeout: the old single-deadline client dies mid-stream, the
	// per-frame client finishes.
	addr := fakeDaemon(t, frames, 120*time.Millisecond)
	c := &Client{Addr: addr, Timeout: 250 * time.Millisecond}
	var seen int
	res, err := c.RunContext(context.Background(), core.Application{Scenarios: 4, Months: 6}, core.NameKnapsack, SubmitMeta{}, nil,
		func(u *diet.ProgressUpdate) { seen++ })
	if err != nil {
		t.Fatalf("streamed campaign died: %v", err)
	}
	if res.Status != diet.CampaignDone {
		t.Fatalf("status %q, want done", res.Status)
	}
	if seen != 4 {
		t.Fatalf("saw %d progress frames, want 4", seen)
	}
}

// TestClientTimesOutOnSilentDaemon: a daemon that goes silent mid-stream
// fails the campaign within roughly one frame timeout, not never.
func TestClientTimesOutOnSilentDaemon(t *testing.T) {
	frames := []*diet.Response{
		{Version: diet.ProtocolV2, Submit: &diet.SubmitResponse{ID: 1, Accepted: true}},
		// ... then silence.
	}
	addr := fakeDaemon(t, frames, 0)
	c := &Client{Addr: addr, Timeout: 200 * time.Millisecond}
	start := time.Now()
	_, err := c.RunContext(context.Background(), core.Application{Scenarios: 2, Months: 6}, core.NameKnapsack, SubmitMeta{}, nil, nil)
	if err == nil {
		t.Fatal("silent daemon did not fail the campaign")
	}
	if wait := time.Since(start); wait > 5*time.Second {
		t.Fatalf("timeout took %v", wait)
	}
}

// TestClientContextCancelMidStream: cancelling the context unblocks a read
// parked on a silent connection immediately and surfaces ctx.Err().
func TestClientContextCancelMidStream(t *testing.T) {
	frames := []*diet.Response{
		{Version: diet.ProtocolV2, Submit: &diet.SubmitResponse{ID: 1, Accepted: true}},
	}
	addr := fakeDaemon(t, frames, 0)
	c := &Client{Addr: addr, Timeout: time.Minute}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.RunContext(ctx, core.Application{Scenarios: 2, Months: 6}, core.NameKnapsack, SubmitMeta{}, nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext returned %v, want context.Canceled", err)
	}
	if wait := time.Since(start); wait > 5*time.Second {
		t.Fatalf("cancellation took %v (the minute-long frame deadline won)", wait)
	}
}

// submitRaw opens a raw submit-wait connection at the given protocol
// version and returns every frame the daemon streams back.
func submitRaw(t *testing.T, addr string, version int, req *diet.SubmitRequest) []diet.Response {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	if err := gob.NewEncoder(conn).Encode(&diet.Request{Version: version, Kind: diet.KindSubmit, Submit: req}); err != nil {
		t.Fatal(err)
	}
	dec := gob.NewDecoder(conn)
	var frames []diet.Response
	for {
		var resp diet.Response
		if err := dec.Decode(&resp); err != nil {
			return frames
		}
		frames = append(frames, resp)
		if resp.Err != "" || resp.Result != nil {
			return frames
		}
	}
}

// TestProtocolVersionNegotiation: a v1 client gets the PR-2 wire behaviour
// (verdict + result, no progress frames, even if it asks) while a v2 client
// gets the streamed campaign; both against the same daemon.
func TestProtocolVersionNegotiation(t *testing.T) {
	f := startFabric(t, testConfig(), 3)
	req := func() *diet.SubmitRequest {
		return &diet.SubmitRequest{Scenarios: 6, Months: 12, Heuristic: core.NameKnapsack, Wait: true, Progress: true}
	}

	// Version 0 (a pre-versioning client) and 1 negotiate down to v1.
	for _, v := range []int{0, diet.ProtocolV1} {
		frames := submitRaw(t, f.Sched.Addr(), v, req())
		if len(frames) != 2 {
			t.Fatalf("v%d client got %d frames, want verdict + result only", v, len(frames))
		}
		if frames[0].Version != diet.ProtocolV1 || frames[1].Version != diet.ProtocolV1 {
			t.Fatalf("v%d client saw negotiated versions %d, %d, want %d", v, frames[0].Version, frames[1].Version, diet.ProtocolV1)
		}
		if frames[1].Result == nil || frames[1].Result.Status != diet.CampaignDone {
			t.Fatalf("v%d client campaign did not complete: %+v", v, frames[1])
		}
	}

	// A v2 client on the same daemon streams progress between the frames.
	frames := submitRaw(t, f.Sched.Addr(), diet.ProtocolV2, req())
	if len(frames) < 4 { // verdict + planned + ≥1 chunk + result
		t.Fatalf("v2 client got only %d frames", len(frames))
	}
	var planned, chunks int
	for _, fr := range frames[1 : len(frames)-1] {
		if fr.Version != diet.ProtocolV2 {
			t.Fatalf("v2 frame carried version %d", fr.Version)
		}
		if fr.Progress == nil {
			t.Fatalf("v2 mid-stream frame without progress: %+v", fr)
		}
		switch fr.Progress.Stage {
		case diet.StagePlanned:
			planned++
		case diet.StageChunk:
			chunks++
		}
	}
	if planned == 0 || chunks == 0 {
		t.Fatalf("v2 stream missed stages: %d planned, %d chunk frames", planned, chunks)
	}
	final := frames[len(frames)-1]
	if final.Result == nil || final.Result.Status != diet.CampaignDone {
		t.Fatalf("v2 campaign did not complete: %+v", final)
	}
	if last := frames[len(frames)-2]; last.Progress != nil && last.Progress.Done != 6 {
		t.Fatalf("last progress frame reports %d/6 scenarios", last.Progress.Done)
	}

	// A client announcing a future version negotiates down to the server's.
	frames = submitRaw(t, f.Sched.Addr(), diet.ProtocolVersion+7, req())
	if frames[0].Version != diet.ProtocolVersion {
		t.Fatalf("future client negotiated %d, want %d", frames[0].Version, diet.ProtocolVersion)
	}

	// A versioned no-progress wait keeps the two-frame shape.
	noProg := req()
	noProg.Progress = false
	frames = submitRaw(t, f.Sched.Addr(), diet.ProtocolV2, noProg)
	if len(frames) != 2 {
		t.Fatalf("v2 no-progress wait got %d frames, want 2", len(frames))
	}
}

// TestRunContextStreamsBitIdenticalResult: the ctx client against a real
// fabric returns the same bit-identical reports the legacy Run did, plus a
// gapless progress stream ending at Done == Total.
func TestRunContextStreamsBitIdenticalResult(t *testing.T) {
	f := startFabric(t, testConfig(), 3)
	app := core.Application{Scenarios: 8, Months: 12}
	c := &Client{Addr: f.Sched.Addr()}
	var last *diet.ProgressUpdate
	res, err := c.RunContext(context.Background(), app, core.NameKnapsack, SubmitMeta{}, nil, func(u *diet.ProgressUpdate) { last = u })
	if err != nil {
		t.Fatal(err)
	}
	verifyReports(t, f, app, core.NameKnapsack, res)
	if last == nil || last.Done != app.Scenarios || last.Total != app.Scenarios {
		t.Fatalf("final progress %+v, want %d/%d", last, app.Scenarios, app.Scenarios)
	}
	// Typed taxonomy: a malformed submission is a protocol-level error.
	_, err = c.RunContext(context.Background(), core.Application{Scenarios: 0, Months: 12}, core.NameKnapsack, SubmitMeta{}, nil, nil)
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("malformed submit returned %v, want ErrProtocol", err)
	}
}
