package grid

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/diet"
	"oagrid/internal/store"
)

// campaign is one submitted protocol round moving through the queue. The
// progress fields (remaining, reports, round, ...) live on the campaign
// rather than in runCampaign's frame so a journal replay can rebuild a
// half-finished campaign and the dispatcher can resume it mid-flight.
type campaign struct {
	id        uint64
	app       core.Application
	heuristic string
	// priority orders the admission queue (higher dispatches first); labels
	// and deadline are the campaign's other journaled submit options. All
	// three are immutable after admission.
	priority int
	labels   map[string]string
	deadline time.Duration
	// tenant is the campaign's fair-queueing tenant, derived from labels at
	// admission (and re-derived on journal replay); enqueuedAt is when its
	// queue slot was taken. Both are immutable once the campaign is visible.
	tenant     string
	enqueuedAt time.Time

	// cancelCh closes when a cancel claims the campaign: in-flight SeD round
	// trips abort on it and the dispatcher stops at the next chunk boundary.
	cancelCh chan struct{}

	mu sync.Mutex
	// claimed marks the terminal transition as owned: exactly one path —
	// completion, failure, or cancel — wins claim() and drives the campaign
	// terminal; every frame publish after the claim is dropped, so a cancel
	// verdict is never followed by a chunk frame.
	claimed  bool
	status   string
	makespan float64
	reports  []diet.ExecResponse
	requeues int
	errMsg   string
	// remaining lists the scenario IDs with no completed chunk, ascending.
	remaining []int
	// round is the next repartition round's index; rounds run sequentially,
	// so the campaign makespan is the sum of per-round chunk maxima.
	round int
	// scenariosDone counts scenarios with a finished chunk report, the Done
	// gauge of progress frames.
	scenariosDone int
	// queueWait is the admission-to-dispatch wait, frozen when a dispatcher
	// takes the campaign (dispatched flips true).
	queueWait  time.Duration
	dispatched bool
	// history keeps every progress frame published so far, so a subscriber
	// that attaches after dispatch started still sees the full story. Frames
	// are shared by pointer: one published frame serves every subscriber and
	// every attach replay, and carries its wire encoding computed at most
	// once (see progressFrame).
	history []*progressFrame
	subs    map[chan *progressFrame]struct{}

	// done closes when the campaign reaches a terminal state; submit-wait
	// connections and pollers block on it.
	done chan struct{}
}

// progressFrame is one published (or journal-replayed) progress update,
// serialized at most once however many subscribers receive it. Before this
// existed every subscriber re-encoded every replayed history frame on
// Attach; now binary streams share the one cached encoding and legacy gob
// streams share the one ProgressUpdate struct (gob must re-encode per
// connection — its streams are stateful — but no longer re-copies frames
// per subscriber).
type progressFrame struct {
	u      diet.ProgressUpdate
	once   sync.Once
	enc    []byte
	encErr error
}

// encoded returns the frame's v4 wire bytes, computing them on first use.
// Binary connections negotiate v4 or later, the progress layout is
// identical across those versions, and decoders accept any frame stamped
// at or below their own version — so the one v4 encoding serves every
// binary subscriber whatever it negotiated.
func (f *progressFrame) encoded() ([]byte, error) {
	f.once.Do(func() {
		f.enc, f.encErr = diet.AppendResponseFrame(nil, &diet.Response{Version: diet.ProtocolV4, Progress: &f.u})
	})
	return f.enc, f.encErr
}

// submitMeta carries a campaign's per-submit options (control plane v2).
type submitMeta struct {
	priority int
	labels   map[string]string
	deadline time.Duration
}

// newCampaign builds a fresh campaign with every scenario remaining.
func newCampaign(id uint64, app core.Application, heuristic string, meta submitMeta) *campaign {
	c := &campaign{
		id:        id,
		app:       app,
		heuristic: heuristic,
		priority:  meta.priority,
		labels:    meta.labels,
		deadline:  meta.deadline,
		cancelCh:  make(chan struct{}),
		status:    diet.CampaignQueued,
		remaining: make([]int, app.Scenarios),
		done:      make(chan struct{}),
	}
	for i := range c.remaining {
		c.remaining[i] = i
	}
	return c
}

// recoveredCampaign rebuilds a campaign from its replayed journal state.
func recoveredCampaign(rc *store.Campaign) *campaign {
	c := &campaign{
		id:            rc.ID,
		app:           core.Application{Scenarios: rc.Scenarios, Months: rc.Months},
		heuristic:     rc.Heuristic,
		priority:      rc.Priority,
		labels:        rc.Labels,
		deadline:      rc.Deadline,
		cancelCh:      make(chan struct{}),
		status:        diet.CampaignQueued,
		makespan:      rc.Makespan,
		reports:       rc.Reports,
		requeues:      rc.Requeues,
		errMsg:        rc.Err,
		remaining:     rc.Remaining,
		round:         rc.Rounds,
		scenariosDone: rc.ScenariosDone,
		done:          make(chan struct{}),
	}
	for i := range rc.History {
		c.history = append(c.history, &progressFrame{u: rc.History[i]})
	}
	if rc.Terminal() {
		// Chunk records are journaled in arrival order; the terminal result
		// the original process served was sorted. Re-sort so a recovered
		// snapshot is byte-for-byte the one clients saw before the restart.
		sortReports(c.reports)
		c.status = rc.Status
		c.claimed = true
		if rc.Status == diet.CampaignCancelled {
			close(c.cancelCh)
		}
		close(c.done)
	}
	return c
}

// claim reserves the campaign's terminal transition; exactly one caller
// wins and must then journal the terminal record and call complete.
func (c *campaign) claim() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.claimed {
		return false
	}
	c.claimed = true
	return true
}

// signalCancel aborts the campaign's in-flight work: SeD round trips tied to
// cancelCh return immediately and the dispatcher stops at the next chunk
// boundary. Only the cancel path (which holds the terminal claim) calls it.
func (c *campaign) signalCancel() {
	close(c.cancelCh)
}

// cancelledNow reports whether a cancel has claimed the campaign.
func (c *campaign) cancelledNow() bool {
	select {
	case <-c.cancelCh:
		return true
	default:
		return false
	}
}

// info snapshots the campaign's control-plane view.
func (c *campaign) info() diet.CampaignInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	// The wait gauge ticks while the campaign queues and freezes at its
	// dispatch point; a campaign cancelled in the queue keeps the zero wait
	// (it never dispatched).
	wait := c.queueWait
	if !c.dispatched && c.status == diet.CampaignQueued && !c.enqueuedAt.IsZero() {
		wait = time.Since(c.enqueuedAt)
	}
	return diet.CampaignInfo{
		ID:        c.id,
		Found:     true,
		Status:    c.status,
		Priority:  c.priority,
		Labels:    c.labels,
		Heuristic: c.heuristic,
		Scenarios: c.app.Scenarios,
		Months:    c.app.Months,
		Done:      c.scenariosDone,
		Total:     c.app.Scenarios,
		Rounds:    c.round,
		Requeues:  c.requeues,
		Makespan:  c.makespan,
		Err:       c.errMsg,
		Tenant:    c.tenant,
		WaitMs:    float64(wait) / float64(time.Millisecond),
	}
}

// subscribe registers a progress listener and replays the frames published
// so far into it. The channel is buffered; fan-out never blocks the
// dispatcher — a subscriber that stops draining loses frames, not the
// campaign (the final result travels separately on c.done).
func (c *campaign) subscribe() chan *progressFrame {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Room for the full replay plus a generous live allowance: 4 frames per
	// scenario covers chunk + requeue across several repartition rounds.
	ch := make(chan *progressFrame, len(c.history)+4*c.app.Scenarios+16)
	for _, f := range c.history {
		ch <- f // buffer holds at least len(history); cannot block
	}
	if c.subs == nil {
		c.subs = make(map[chan *progressFrame]struct{})
	}
	c.subs[ch] = struct{}{}
	return ch
}

// unsubscribe detaches a listener.
func (c *campaign) unsubscribe(ch chan *progressFrame) {
	c.mu.Lock()
	delete(c.subs, ch)
	c.mu.Unlock()
}

// publish records one progress frame and fans it out without blocking. A
// frame racing the terminal claim is dropped: once a cancel (or any other
// terminal transition) owns the campaign, nothing may follow its verdict on
// any stream.
//
//oalint:hotpath
func (c *campaign) publish(u diet.ProgressUpdate) {
	u.ID = c.id
	u.Total = c.app.Scenarios
	c.mu.Lock()
	if c.claimed {
		c.mu.Unlock()
		return
	}
	u.Done = c.scenariosDone
	f := &progressFrame{u: u}
	c.history = append(c.history, f)
	for ch := range c.subs {
		select {
		case ch <- f:
		default: // slow subscriber: drop the frame, keep the dispatcher live
		}
	}
	c.mu.Unlock()
}

// snapshot copies the campaign's client-visible state, including the
// scenario-level progress gauges a polling client needs to see motion
// before the terminal state.
func (c *campaign) snapshot() *diet.CampaignResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := &diet.CampaignResult{
		ID:       c.id,
		Status:   c.status,
		Makespan: c.makespan,
		Requeues: c.requeues,
		Done:     c.scenariosDone,
		Total:    c.app.Scenarios,
		Err:      c.errMsg,
	}
	out.Reports = append(out.Reports, c.reports...)
	return out
}

// setStatus records a non-terminal transition. It yields to a terminal
// claim: a dispatcher that popped a campaign an instant before a cancel
// claimed it must not stamp "running" over the terminal status its waiters
// are about to read.
func (c *campaign) setStatus(status string) {
	c.mu.Lock()
	if !c.claimed {
		c.status = status
	}
	c.mu.Unlock()
}

// complete publishes the terminal state and wakes every waiter.
func (c *campaign) complete(status string, makespan float64, reports []diet.ExecResponse, requeues int, errMsg string) {
	c.mu.Lock()
	c.status = status
	c.makespan = makespan
	c.reports = reports
	c.requeues = requeues
	c.errMsg = errMsg
	c.mu.Unlock()
	close(c.done)
}

// dispatchLoop pops campaigns off the priority queue and runs them. A
// campaign cancelled while still queued is popped as a corpse: its terminal
// transition already happened on the cancel path, so the dispatcher only
// releases the queue slot.
func (s *Scheduler) dispatchLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			s.drainQueue()
			return
		case <-s.tokens:
			c := s.dequeue()
			if c.cancelledNow() {
				continue
			}
			s.noteDispatched(c)
			c.setStatus(diet.CampaignRunning)
			if !s.runCampaign(c) {
				// Cancelled mid-run: the cancel path owned the terminal
				// transition and the retention bookkeeping; release only the
				// running gauges.
				s.releaseRunning(c)
			}
		}
	}
}

// drainQueue fails everything still queued at shutdown.
func (s *Scheduler) drainQueue() {
	for {
		select {
		case <-s.tokens:
			c := s.dequeue()
			if c.cancelledNow() {
				continue
			}
			// Not a dispatch: enter the running gauges (failCampaign's finish
			// decrements them) but record no queue wait — a shutdown drain
			// must not inflate the fairness wait moments.
			s.bumpRunning(c)
			if !s.failCampaign(c, "grid: scheduler shut down", false) {
				s.releaseRunning(c)
			}
		default:
			return
		}
	}
}

// failCampaign drives a campaign to the failed state. journal records the
// failure as terminal; shutdown failures pass false, because with a state
// dir a shutdown is a pause — the journal keeps the campaign non-terminal
// and a restarted daemon re-admits it. It reports false when a cancel beat
// it to the terminal claim: the campaign is already cancelled and the
// caller backs out of its gauges.
func (s *Scheduler) failCampaign(c *campaign, msg string, journal bool) bool {
	if !c.claim() {
		return false
	}
	c.mu.Lock()
	reports := append([]diet.ExecResponse(nil), c.reports...)
	requeues := c.requeues
	c.mu.Unlock()
	// Sort the partial reports like the success path does, so a failed
	// snapshot — and its journal-recovered twin — have one canonical order.
	sortReports(reports)
	if journal {
		s.journal(store.Record{Kind: store.KindDone, ID: c.id, Status: diet.CampaignFailed, Requeues: requeues, Err: msg})
	}
	c.complete(diet.CampaignFailed, 0, reports, requeues, msg)
	s.finish(c, true)
	return true
}

// chunkReport is one dispatched chunk's outcome.
type chunkReport struct {
	ref  sedRef
	ids  []int
	resp *diet.ExecResponse
	err  error
}

// runCampaign drives one campaign to a terminal state: repartition the
// remaining scenarios over the live SeDs, dispatch the chunks under the
// per-SeD in-flight limits, and requeue chunks lost to dead daemons until
// nothing remains or the campaign deadline passes. Recovered campaigns
// resume here with their journaled remaining set and completed reports.
// It reports false when a cancel claimed the campaign out from under the
// dispatcher: in-flight chunks were abandoned, their reports discarded, and
// the caller releases the running gauge.
func (s *Scheduler) runCampaign(c *campaign) bool {
	timeout := c.deadline
	if timeout <= 0 {
		timeout = s.cfg.CampaignTimeout
	}
	deadline := time.Now().Add(timeout)

	// abortCtx aborts in-flight SeD round trips the moment the campaign is
	// cancelled — cancellation propagates to the wire, not just to the
	// dispatch loop's checkpoints. Scheduler shutdown deliberately does NOT
	// abort in-flight exchanges: a graceful Close lets them finish and bank
	// their chunks (shutdown is a pause), and aborting would shunt healthy
	// SeDs onto the death/requeue path.
	abortCtx, abort := context.WithCancel(context.Background())
	defer abort()
	go func() {
		select {
		case <-c.cancelCh:
			abort()
		case <-abortCtx.Done():
		}
	}()

	for {
		c.mu.Lock()
		remaining := append([]int(nil), c.remaining...)
		round := c.round
		c.mu.Unlock()
		if len(remaining) == 0 {
			break
		}
		if c.cancelledNow() {
			return false
		}
		select {
		case <-s.done:
			return s.failCampaign(c, "grid: scheduler shut down", false)
		default:
		}
		if time.Now().After(deadline) {
			return s.failCampaign(c, fmt.Sprintf("grid: campaign %d timed out with %d scenarios unplaced", c.id, len(remaining)), true)
		}

		if cont, ok := s.runRound(abortCtx, c, remaining, round); !cont {
			return ok
		}
	}

	if !c.claim() {
		// A cancel won the race against the last chunk boundary.
		return false
	}
	c.mu.Lock()
	reports := append([]diet.ExecResponse(nil), c.reports...)
	requeues := c.requeues
	c.mu.Unlock()

	sortReports(reports)
	makespan := diet.CampaignMakespan(reports)
	s.journal(store.Record{Kind: store.KindDone, ID: c.id, Status: diet.CampaignDone, Makespan: makespan, Requeues: requeues})
	c.complete(diet.CampaignDone, makespan, reports, requeues, "")
	s.finish(c, false)
	return true
}

// runRound runs one repartition-and-dispatch round for c over the current
// live fleet. It returns (true, _) when the outer loop should continue —
// after a completed round or an empty-pool retry backoff — and (false, ok)
// when runCampaign must return ok. The fleet snapshot is leased for exactly
// this round: the deferred releaseSeDs is what lets a draining SeD know
// when the last round that might still dispatch to it has fully processed
// its results, so scale-down can deregister without orphaning a chunk.
func (s *Scheduler) runRound(abortCtx context.Context, c *campaign, remaining []int, round int) (cont, ok bool) {
	// Steps 1-3: performance vectors from every live SeD. A daemon that
	// fails the exchange drops out of this attempt's pool.
	seds := s.aliveSeDs()
	defer s.releaseSeDs(seds)
	var pool []sedRef
	var perf [][]float64
	for _, ref := range seds {
		vec, err := s.vector(ref, len(remaining), c.app.Months, c.heuristic)
		if err != nil {
			s.markDead(ref.st, ref.info.Addr)
			continue
		}
		pool = append(pool, ref)
		perf = append(perf, vec)
	}
	if len(pool) == 0 {
		select {
		case <-s.done:
			return false, s.failCampaign(c, "grid: scheduler shut down", false)
		case <-c.cancelCh:
			return false, false
		case <-time.After(s.cfg.RetryEvery):
		}
		return true, false
	}

	// Step 4: Algorithm-1 repartition of the remaining scenarios.
	rep, err := core.Repartition(perf)
	if err != nil {
		return false, s.failCampaign(c, err.Error(), true)
	}
	chunks := make([][]int, len(pool))
	for slot, cl := range rep.Assignment {
		chunks[cl] = append(chunks[cl], remaining[slot])
	}
	planned := make([]diet.PlannedChunk, 0, len(pool))
	for i, ref := range pool {
		if len(chunks[i]) > 0 {
			planned = append(planned, diet.PlannedChunk{Cluster: ref.info.Cluster, Scenarios: len(chunks[i])})
		}
	}
	s.journal(store.Record{Kind: store.KindPlanned, ID: c.id, Round: round, Planned: planned})
	c.publish(diet.ProgressUpdate{Stage: diet.StagePlanned, Planned: planned})

	// Steps 5-6: dispatch every chunk concurrently, each behind its
	// SeD's in-flight semaphore.
	results := make(chan chunkReport, len(pool))
	launched := 0
	for i, ref := range pool {
		if len(chunks[i]) == 0 {
			continue
		}
		launched++
		go s.dispatchChunk(abortCtx, c, ref, chunks[i], results)
	}
	cancelled := false
	for ; launched > 0; launched-- {
		r := <-results
		if c.cancelledNow() {
			// Cancelled mid-round: drain the remaining chunks (their
			// round trips abort on abortCtx) and discard everything —
			// including genuine results, which must not surface as chunk
			// frames after the cancel verdict. The SeD is not marked
			// dead for an abort-induced error.
			cancelled = true
			continue
		}
		if r.err != nil {
			// The chunk's scenarios stay on the campaign's plate and
			// will be re-repartitioned over the survivors. WAL first:
			// the requeue is fsynced before it shows up in snapshots.
			s.markDead(r.ref.st, r.ref.info.Addr)
			s.journal(store.Record{Kind: store.KindRequeue, ID: c.id, Requeued: len(r.ids)})
			c.mu.Lock()
			if c.claimed {
				c.mu.Unlock()
				cancelled = true
				continue
			}
			c.requeues++
			c.mu.Unlock()
			s.mu.Lock()
			s.requeues++
			s.mu.Unlock()
			c.publish(diet.ProgressUpdate{Stage: diet.StageRequeue, Requeued: len(r.ids)})
			continue
		}
		// Stamp the chunk with its provenance: the round (makespan
		// accounting) and its lowest scenario ID (the report-order
		// tiebreak). IDs are dispatched ascending, so ids[0] is the
		// minimum. WAL discipline: the chunk is fsynced before it
		// becomes visible to snapshots or subscribers, so progress a
		// polling client observed can never regress across a restart.
		// The acceptance is claim-guarded under c.mu: once a cancel owns
		// the campaign, snapshots are frozen — a straggler's journal
		// record is harmless on replay (terminal status wins), but its
		// report must never surface after the cancel verdict.
		r.resp.Round = round
		r.resp.FirstScenario = r.ids[0]
		s.journal(store.Record{Kind: store.KindChunk, ID: c.id, Chunk: r.resp, IDs: r.ids})
		c.mu.Lock()
		if c.claimed {
			c.mu.Unlock()
			cancelled = true
			continue
		}
		c.reports = append(c.reports, *r.resp)
		c.scenariosDone += r.resp.Scenarios
		c.remaining = store.Without(c.remaining, r.ids)
		c.mu.Unlock()
		c.publish(diet.ProgressUpdate{Stage: diet.StageChunk, Chunk: r.resp})
	}
	if cancelled || c.cancelledNow() {
		return false, false
	}
	c.mu.Lock()
	c.round++
	c.mu.Unlock()
	return true, false
}

// sortReports puts chunk reports in their stable, deterministic final
// order, whatever the arrival interleaving was. The sort must be stable
// with a total-order key: the same cluster can serve equal-sized chunks in
// two rounds, and an unstable (Cluster, Scenarios) sort would order those
// ties by interleaving — flaking the bit-identity tests. Round is the
// public tiebreak (a cluster serves at most one chunk per round, and the
// Local runner sorts its reports the same way); FirstScenario — unique
// across completed chunks, whose scenario sets are disjoint — backstops
// the key into a total order.
//
//oalint:deterministic
func sortReports(reports []diet.ExecResponse) {
	sort.SliceStable(reports, func(i, j int) bool {
		if reports[i].Cluster != reports[j].Cluster {
			return reports[i].Cluster < reports[j].Cluster
		}
		if reports[i].Scenarios != reports[j].Scenarios {
			return reports[i].Scenarios < reports[j].Scenarios
		}
		if reports[i].Round != reports[j].Round {
			return reports[i].Round < reports[j].Round
		}
		return reports[i].FirstScenario < reports[j].FirstScenario
	})
}

// dispatchChunk sends one cluster its scenario share (protocol step 5) and
// reports the execution answer (step 6). ctx aborts the round trip when the
// campaign is cancelled or the scheduler shuts down, so a cancel never waits
// out a slow SeD.
func (s *Scheduler) dispatchChunk(ctx context.Context, c *campaign, ref sedRef, ids []int, out chan<- chunkReport) {
	select {
	case ref.st.sem <- struct{}{}:
		defer func() { <-ref.st.sem }()
	case <-ctx.Done():
		out <- chunkReport{ref: ref, ids: ids, err: fmt.Errorf("grid: chunk dispatch aborted: %w", ctx.Err())}
		return
	case <-s.done:
		out <- chunkReport{ref: ref, ids: ids, err: fmt.Errorf("grid: scheduler shut down")}
		return
	}
	resp, err := diet.RoundTripContext(ctx, ref.info.Addr, &diet.Request{Version: diet.ProtocolVersion, Kind: diet.KindExec, Exec: &diet.ExecRequest{
		ScenarioIDs: ids,
		Months:      c.app.Months,
		Heuristic:   c.heuristic,
	}}, sedCallTimeout)
	if err != nil {
		out <- chunkReport{ref: ref, ids: ids, err: err}
		return
	}
	if resp.Exec == nil {
		out <- chunkReport{ref: ref, ids: ids, err: fmt.Errorf("grid: SeD %s returned no execution report", ref.info.Cluster)}
		return
	}
	out <- chunkReport{ref: ref, ids: ids, resp: resp.Exec}
}
