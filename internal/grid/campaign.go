package grid

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/diet"
)

// campaign is one submitted protocol round moving through the queue.
type campaign struct {
	id        uint64
	app       core.Application
	heuristic string

	mu       sync.Mutex
	status   string
	makespan float64
	reports  []diet.ExecResponse
	requeues int
	errMsg   string
	// scenariosDone counts scenarios with a finished chunk report, the Done
	// gauge of progress frames.
	scenariosDone int
	// history keeps every progress frame published so far, so a subscriber
	// that attaches after dispatch started still sees the full story.
	history []diet.ProgressUpdate
	subs    map[chan diet.ProgressUpdate]struct{}

	// done closes when the campaign reaches a terminal state; submit-wait
	// connections and pollers block on it.
	done chan struct{}
}

// subscribe registers a progress listener and replays the frames published
// so far into it. The channel is buffered; fan-out never blocks the
// dispatcher — a subscriber that stops draining loses frames, not the
// campaign (the final result travels separately on c.done).
func (c *campaign) subscribe() chan diet.ProgressUpdate {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Room for the full replay plus a generous live allowance: 4 frames per
	// scenario covers chunk + requeue across several repartition rounds.
	ch := make(chan diet.ProgressUpdate, len(c.history)+4*c.app.Scenarios+16)
	for _, u := range c.history {
		ch <- u // buffer holds at least len(history); cannot block
	}
	if c.subs == nil {
		c.subs = make(map[chan diet.ProgressUpdate]struct{})
	}
	c.subs[ch] = struct{}{}
	return ch
}

// unsubscribe detaches a listener.
func (c *campaign) unsubscribe(ch chan diet.ProgressUpdate) {
	c.mu.Lock()
	delete(c.subs, ch)
	c.mu.Unlock()
}

// publish records one progress frame and fans it out without blocking.
func (c *campaign) publish(u diet.ProgressUpdate) {
	u.ID = c.id
	u.Total = c.app.Scenarios
	c.mu.Lock()
	u.Done = c.scenariosDone
	c.history = append(c.history, u)
	for ch := range c.subs {
		select {
		case ch <- u:
		default: // slow subscriber: drop the frame, keep the dispatcher live
		}
	}
	c.mu.Unlock()
}

// snapshot copies the campaign's client-visible state.
func (c *campaign) snapshot() *diet.CampaignResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := &diet.CampaignResult{
		ID:       c.id,
		Status:   c.status,
		Makespan: c.makespan,
		Requeues: c.requeues,
		Err:      c.errMsg,
	}
	out.Reports = append(out.Reports, c.reports...)
	return out
}

func (c *campaign) setStatus(status string) {
	c.mu.Lock()
	c.status = status
	c.mu.Unlock()
}

// complete publishes the terminal state and wakes every waiter.
func (c *campaign) complete(status string, makespan float64, reports []diet.ExecResponse, requeues int, errMsg string) {
	c.mu.Lock()
	c.status = status
	c.makespan = makespan
	c.reports = reports
	c.requeues = requeues
	c.errMsg = errMsg
	c.mu.Unlock()
	close(c.done)
}

// dispatchLoop pops campaigns off the bounded queue and runs them.
func (s *Scheduler) dispatchLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			s.drainQueue()
			return
		case c := <-s.queue:
			s.mu.Lock()
			s.queueLen--
			s.running++
			s.mu.Unlock()
			c.setStatus(diet.CampaignRunning)
			s.runCampaign(c)
		}
	}
}

// drainQueue fails everything still queued at shutdown.
func (s *Scheduler) drainQueue() {
	for {
		select {
		case c := <-s.queue:
			s.mu.Lock()
			s.queueLen--
			s.running++
			s.mu.Unlock()
			c.complete(diet.CampaignFailed, 0, nil, 0, "grid: scheduler shut down")
			s.finish(c, true)
		default:
			return
		}
	}
}

// chunkReport is one dispatched chunk's outcome.
type chunkReport struct {
	ref  sedRef
	ids  []int
	resp *diet.ExecResponse
	err  error
}

// runCampaign drives one campaign to a terminal state: repartition the
// remaining scenarios over the live SeDs, dispatch the chunks under the
// per-SeD in-flight limits, and requeue chunks lost to dead daemons until
// nothing remains or the campaign deadline passes.
func (s *Scheduler) runCampaign(c *campaign) {
	deadline := time.Now().Add(s.cfg.CampaignTimeout)
	remaining := make([]int, c.app.Scenarios)
	for i := range remaining {
		remaining[i] = i
	}
	var reports []diet.ExecResponse
	requeues := 0

	fail := func(msg string) {
		c.complete(diet.CampaignFailed, 0, nil, requeues, msg)
		s.finish(c, true)
	}

	for len(remaining) > 0 {
		select {
		case <-s.done:
			fail("grid: scheduler shut down")
			return
		default:
		}
		if time.Now().After(deadline) {
			fail(fmt.Sprintf("grid: campaign %d timed out with %d scenarios unplaced", c.id, len(remaining)))
			return
		}

		// Steps 1-3: performance vectors from every live SeD. A daemon that
		// fails the exchange drops out of this attempt's pool.
		seds := s.aliveSeDs()
		var pool []sedRef
		var perf [][]float64
		for _, ref := range seds {
			vec, err := s.vector(ref, len(remaining), c.app.Months, c.heuristic)
			if err != nil {
				s.markDead(ref.st, ref.info.Addr)
				continue
			}
			pool = append(pool, ref)
			perf = append(perf, vec)
		}
		if len(pool) == 0 {
			select {
			case <-s.done:
				fail("grid: scheduler shut down")
				return
			case <-time.After(s.cfg.RetryEvery):
			}
			continue
		}

		// Step 4: Algorithm-1 repartition of the remaining scenarios.
		rep, err := core.Repartition(perf)
		if err != nil {
			fail(err.Error())
			return
		}
		chunks := make([][]int, len(pool))
		for slot, cl := range rep.Assignment {
			chunks[cl] = append(chunks[cl], remaining[slot])
		}
		planned := make([]diet.PlannedChunk, 0, len(pool))
		for i, ref := range pool {
			if len(chunks[i]) > 0 {
				planned = append(planned, diet.PlannedChunk{Cluster: ref.info.Cluster, Scenarios: len(chunks[i])})
			}
		}
		c.publish(diet.ProgressUpdate{Stage: diet.StagePlanned, Planned: planned})

		// Steps 5-6: dispatch every chunk concurrently, each behind its
		// SeD's in-flight semaphore.
		results := make(chan chunkReport, len(pool))
		launched := 0
		for i, ref := range pool {
			if len(chunks[i]) == 0 {
				continue
			}
			launched++
			go s.dispatchChunk(c, ref, chunks[i], results)
		}
		remaining = remaining[:0]
		for ; launched > 0; launched-- {
			r := <-results
			if r.err != nil {
				// The chunk's scenarios go back on the campaign's plate and
				// will be re-repartitioned over the survivors.
				s.markDead(r.ref.st, r.ref.info.Addr)
				remaining = append(remaining, r.ids...)
				requeues++
				c.publish(diet.ProgressUpdate{Stage: diet.StageRequeue, Requeued: len(r.ids)})
				continue
			}
			reports = append(reports, *r.resp)
			c.mu.Lock()
			c.scenariosDone += r.resp.Scenarios
			c.mu.Unlock()
			c.publish(diet.ProgressUpdate{Stage: diet.StageChunk, Chunk: r.resp})
		}
		sort.Ints(remaining)
		if len(remaining) > 0 {
			s.mu.Lock()
			s.requeues++
			s.mu.Unlock()
		}
	}

	// Stable report order whatever the arrival interleaving was.
	sort.Slice(reports, func(i, j int) bool {
		if reports[i].Cluster != reports[j].Cluster {
			return reports[i].Cluster < reports[j].Cluster
		}
		return reports[i].Scenarios < reports[j].Scenarios
	})
	makespan := 0.0
	for _, r := range reports {
		if r.Makespan > makespan {
			makespan = r.Makespan
		}
	}
	c.complete(diet.CampaignDone, makespan, reports, requeues, "")
	s.finish(c, false)
}

// dispatchChunk sends one cluster its scenario share (protocol step 5) and
// reports the execution answer (step 6).
func (s *Scheduler) dispatchChunk(c *campaign, ref sedRef, ids []int, out chan<- chunkReport) {
	select {
	case ref.st.sem <- struct{}{}:
		defer func() { <-ref.st.sem }()
	case <-s.done:
		out <- chunkReport{ref: ref, ids: ids, err: fmt.Errorf("grid: scheduler shut down")}
		return
	}
	resp, err := diet.RoundTripTimeout(ref.info.Addr, &diet.Request{Kind: diet.KindExec, Exec: &diet.ExecRequest{
		ScenarioIDs: ids,
		Months:      c.app.Months,
		Heuristic:   c.heuristic,
	}}, sedCallTimeout)
	if err != nil {
		out <- chunkReport{ref: ref, ids: ids, err: err}
		return
	}
	if resp.Exec == nil {
		out <- chunkReport{ref: ref, ids: ids, err: fmt.Errorf("grid: SeD %s returned no execution report", ref.info.Cluster)}
		return
	}
	out <- chunkReport{ref: ref, ids: ids, resp: resp.Exec}
}
