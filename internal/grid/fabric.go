package grid

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/diet"
	"oagrid/internal/engine"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
)

// Fabric is a scheduler daemon plus an in-process SeD fleet on loopback
// ports — the self-hosted deployment shape shared by the load injector
// (cmd/oaload), the daemon CLI (cmd/oarun -daemon) and the end-to-end
// tests.
type Fabric struct {
	Sched *Scheduler
	// SeDs holds the daemons in cluster-profile order: index 0 serves the
	// fastest cluster and therefore always carries the largest scenario
	// share — the natural victim for failure injection.
	SeDs []*diet.SeD
	// Clusters maps cluster name to the served profile, the inputs a
	// Verifier needs to replay chunk reports serially.
	Clusters map[string]*platform.Cluster
}

// StartFabric starts a scheduler with cfg plus seds in-process daemons over
// the paper's five Grid'5000 cluster profiles (procs processors each), each
// heartbeating every hbEvery.
func StartFabric(cfg Config, seds, procs int, hbEvery time.Duration) (*Fabric, error) {
	return StartFabricSpeeds(cfg, seds, procs, hbEvery, nil)
}

// StartFabricSpeeds is StartFabric for a heterogeneous fleet: SeD i runs at
// speeds[i%len(speeds)] (1.0 = the profile's reference speed, 0.5 = twice as
// slow). A nil or empty speeds slice is the homogeneous fleet. The speed
// factor scales only the advertised performance vectors — chunk execution
// stays on the profile's base timing, so serial verification is unchanged.
func StartFabricSpeeds(cfg Config, seds, procs int, hbEvery time.Duration, speeds []float64) (*Fabric, error) {
	sched, err := Start(cfg)
	if err != nil {
		return nil, err
	}
	f := &Fabric{Sched: sched, Clusters: map[string]*platform.Cluster{}}
	profiles := platform.FiveClusters()
	if seds > len(profiles) {
		seds = len(profiles)
	}
	for i, cl := range profiles[:seds] {
		cl.Procs = procs
		speed := 1.0
		if len(speeds) > 0 {
			speed = speeds[i%len(speeds)]
		}
		sed, err := diet.StartSeDSpeed("127.0.0.1:0", cl, exec.Options{}, speed)
		if err != nil {
			f.Close()
			return nil, err
		}
		sed.StartHeartbeats(sched.Addr(), hbEvery)
		f.SeDs = append(f.SeDs, sed)
		f.Clusters[cl.Name] = cl
	}
	return f, nil
}

// WaitAlive blocks until the scheduler sees n live SeDs.
func (f *Fabric) WaitAlive(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		alive := 0
		for _, sd := range f.Sched.Stats().SeDs {
			if sd.Alive {
				alive++
			}
		}
		if alive >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("grid: only %d SeDs alive after %v, want %d", alive, timeout, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Close stops the SeDs and the scheduler.
func (f *Fabric) Close() {
	for _, sed := range f.SeDs {
		sed.Close()
	}
	f.Sched.Close()
}

// Verifier replays campaign chunk reports serially in-process and demands
// bit-identical makespans: the service must be an exact distributed replay
// of engine.Evaluate, even across failure-driven requeues. Safe for
// concurrent use; replays are memoized per (cluster, scenarios, months).
type Verifier struct {
	clusters  map[string]*platform.Cluster
	heuristic core.Heuristic

	mu   sync.Mutex
	memo map[verifyKey]float64
}

type verifyKey struct {
	cluster           string
	scenarios, months int
}

// NewVerifier builds a verifier over the given cluster profiles.
func NewVerifier(clusters map[string]*platform.Cluster, heuristic string) (*Verifier, error) {
	h, err := core.ByName(heuristic)
	if err != nil {
		return nil, err
	}
	return &Verifier{clusters: clusters, heuristic: h, memo: map[verifyKey]float64{}}, nil
}

// SerialMakespan evaluates (scenarios, months) on the named cluster the way
// a SeD does, but fully serial: plan with the heuristic, run the
// event-driven executor.
//
//oalint:deterministic
func (v *Verifier) SerialMakespan(cluster string, scenarios, months int) (float64, error) {
	key := verifyKey{cluster: cluster, scenarios: scenarios, months: months}
	v.mu.Lock()
	want, ok := v.memo[key]
	v.mu.Unlock()
	if ok {
		return want, nil
	}
	cl := v.clusters[cluster]
	if cl == nil {
		// Autoscale-spawned SeDs serve clones named "<base>#<seq>" that
		// share the base profile's timing and processor count, so the base
		// profile replays them exactly.
		if i := strings.IndexByte(cluster, '#'); i > 0 {
			cl = v.clusters[cluster[:i]]
		}
		if cl == nil {
			return 0, fmt.Errorf("grid: verifier knows no cluster %q", cluster)
		}
	}
	app := core.Application{Scenarios: scenarios, Months: months}
	alloc, err := v.heuristic.Plan(app, cl.Timing, cl.Procs)
	if err != nil {
		return 0, err
	}
	res, err := engine.DES{}.Evaluate(app, cl, alloc, engine.Options{})
	if err != nil {
		return 0, err
	}
	v.mu.Lock()
	v.memo[key] = res.Makespan
	v.mu.Unlock()
	return res.Makespan, nil
}

// Verify checks one completed campaign: every chunk report bit-identical to
// its serial replay, all scenarios accounted for, and the campaign makespan
// equal to the slowest report.
//
//oalint:deterministic
func (v *Verifier) Verify(app core.Application, res *diet.CampaignResult) error {
	if res.Status != diet.CampaignDone {
		return fmt.Errorf("grid: campaign %d status %q: %s", res.ID, res.Status, res.Err)
	}
	chunks := make([]ChunkReport, len(res.Reports))
	for i, rep := range res.Reports {
		chunks[i] = ChunkReport{Cluster: rep.Cluster, Scenarios: rep.Scenarios, Makespan: rep.Makespan, Round: rep.Round}
	}
	if err := v.VerifyChunks(app, res.Makespan, chunks); err != nil {
		return fmt.Errorf("grid: campaign %d: %w", res.ID, err)
	}
	return nil
}

// ChunkReport is the transport-agnostic chunk record VerifyChunks checks —
// the shape shared by diet.ExecResponse and the public client API's cluster
// reports. Round is the repartition round that dispatched the chunk.
type ChunkReport struct {
	Cluster   string
	Scenarios int
	Makespan  float64
	Round     int
}

// VerifyChunks checks a campaign outcome given as chunk records: every
// chunk bit-identical to its serial replay, all scenarios accounted for,
// and the campaign makespan equal to the sum of per-round chunk maxima
// (repartition rounds run sequentially after a requeue, so a multi-round
// campaign takes longer than its slowest single chunk).
//
//oalint:deterministic
func (v *Verifier) VerifyChunks(app core.Application, makespan float64, chunks []ChunkReport) error {
	total := 0
	folded := make([]diet.ExecResponse, 0, len(chunks))
	for _, rep := range chunks {
		want, err := v.SerialMakespan(rep.Cluster, rep.Scenarios, app.Months)
		if err != nil {
			return err
		}
		if math.Float64bits(rep.Makespan) != math.Float64bits(want) {
			return fmt.Errorf("grid: cluster %s with %d scenarios reported %g, serial evaluation %g",
				rep.Cluster, rep.Scenarios, rep.Makespan, want)
		}
		total += rep.Scenarios
		folded = append(folded, diet.ExecResponse{Makespan: rep.Makespan, Round: rep.Round})
	}
	if total != app.Scenarios {
		return fmt.Errorf("grid: executed %d scenarios, want %d", total, app.Scenarios)
	}
	// The shared fold keeps the comparison bit-exact with the scheduler's
	// own accounting.
	wantMs := diet.CampaignMakespan(folded)
	if math.Float64bits(makespan) != math.Float64bits(wantMs) {
		return fmt.Errorf("grid: campaign makespan %g is not the per-round sum %g", makespan, wantMs)
	}
	return nil
}
