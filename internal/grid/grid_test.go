package grid

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/diet"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
)

// testConfig is sized for loopback tests: tight heartbeats so eviction fires
// within test patience, generous campaign timeout so loaded CI boxes pass.
func testConfig() Config {
	return Config{
		Addr:            "127.0.0.1:0",
		QueueCap:        64,
		Dispatchers:     4,
		PerSeDInFlight:  2,
		EvictAfter:      400 * time.Millisecond,
		RetryEvery:      10 * time.Millisecond,
		CampaignTimeout: 90 * time.Second,
	}
}

// startFabric wraps StartFabric with test cleanup and liveness wait; the
// fleet runs the paper's cluster profiles at 30 processors each, as the
// seed tests do.
func startFabric(t *testing.T, cfg Config, n int) *Fabric {
	t.Helper()
	f, err := StartFabric(cfg, n, 30, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	if err := f.WaitAlive(n, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return f
}

// verifyReports checks every chunk report of a campaign against the serial
// evaluation of the same (cluster, count) and the campaign invariants.
func verifyReports(t *testing.T, f *Fabric, app core.Application, heuristic string, res *diet.CampaignResult) {
	t.Helper()
	v, err := NewVerifier(f.Clusters, heuristic)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(app, res); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignMatchesDirectProtocol(t *testing.T) {
	f := startFabric(t, testConfig(), 3)
	app := core.Application{Scenarios: 6, Months: 24}
	client := &Client{Addr: f.Sched.Addr()}
	res, err := client.Run(app, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	verifyReports(t, f, app, core.NameKnapsack, res)

	// The campaign must land on exactly the repartition and makespan the
	// in-process computation over the same clusters gives (clusters in name
	// order, as the scheduler sorts them).
	names := make([]string, 0, len(f.Clusters))
	for name := range f.Clusters {
		names = append(names, name)
	}
	sort.Strings(names)
	perf := make([][]float64, len(names))
	for i, name := range names {
		cl := f.Clusters[name]
		vec, err := core.PerformanceVector(app, cl.Timing, cl.Procs, core.Knapsack{}, exec.Evaluator(exec.Options{}))
		if err != nil {
			t.Fatal(err)
		}
		perf[i] = vec
	}
	want, err := core.Repartition(perf)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVerifier(f.Clusters, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	direct := 0.0
	for i, name := range names {
		if want.Counts[i] == 0 {
			continue
		}
		ms, err := v.SerialMakespan(name, want.Counts[i], app.Months)
		if err != nil {
			t.Fatal(err)
		}
		if ms > direct {
			direct = ms
		}
	}
	if math.Float64bits(res.Makespan) != math.Float64bits(direct) {
		t.Fatalf("daemon makespan %g != direct protocol %g", res.Makespan, direct)
	}
}

// TestConcurrentCampaignsWithSeDFailure is the end-to-end gauntlet: 50
// concurrent campaigns against 3 SeDs with one daemon killed mid-run. Every
// campaign must complete and every chunk report must be bit-identical to a
// serial evaluation.
func TestConcurrentCampaignsWithSeDFailure(t *testing.T) {
	f := startFabric(t, testConfig(), 3)
	const campaigns = 50
	app := core.Application{Scenarios: 4, Months: 12}

	var once sync.Once
	kill := func() {
		once.Do(func() {
			// Silent death of the fastest cluster's daemon — the one that
			// always holds the largest scenario share: the listener closes
			// and the heartbeats stop.
			f.SeDs[0].Close()
		})
	}

	type outcome struct {
		res *diet.CampaignResult
		err error
	}
	results := make(chan outcome, campaigns)
	var wg sync.WaitGroup
	for i := 0; i < campaigns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == campaigns/3 {
				kill()
			}
			client := &Client{Addr: f.Sched.Addr()}
			res, _, err := client.RunRetry(app, core.NameKnapsack, 5*time.Millisecond, time.Now().Add(60*time.Second))
			results <- outcome{res: res, err: err}
		}(i)
	}
	wg.Wait()
	close(results)

	done := 0
	for o := range results {
		if o.err != nil {
			t.Fatalf("campaign failed: %v", o.err)
		}
		verifyReports(t, f, app, core.NameKnapsack, o.res)
		done++
	}
	if done != campaigns {
		t.Fatalf("%d campaigns completed, want %d", done, campaigns)
	}
	stats := f.Sched.Stats()
	if stats.Completed != campaigns {
		t.Fatalf("scheduler counted %d completions, want %d", stats.Completed, campaigns)
	}
	if stats.Failed != 0 {
		t.Fatalf("scheduler counted %d failures, want 0", stats.Failed)
	}
	// The killed daemon must be out of the pool by now.
	for _, sd := range stats.SeDs {
		if sd.Addr == f.SeDs[0].Addr() && sd.Alive {
			t.Fatalf("killed SeD %s still alive in %+v", sd.Cluster, stats.SeDs)
		}
	}
}

func TestAdmissionControlBoundsQueue(t *testing.T) {
	cfg := testConfig()
	cfg.QueueCap = 3
	cfg.Dispatchers = 1
	// No SeD: the dispatcher spins on its head-of-line campaign, so the
	// queue fills deterministically behind it.
	sched, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	client := &Client{Addr: sched.Addr()}
	app := core.Application{Scenarios: 2, Months: 2}

	if _, err := client.Submit(app, core.NameBasic); err != nil {
		t.Fatal(err)
	}
	// Let the lone dispatcher take the head campaign off the queue.
	deadline := time.Now().Add(2 * time.Second)
	for sched.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dispatcher never picked up the first campaign")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < cfg.QueueCap; i++ {
		if _, err := client.Submit(app, core.NameBasic); err != nil {
			t.Fatalf("submission %d rejected with queue not full: %v", i, err)
		}
	}
	_, err = client.Submit(app, core.NameBasic)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("submission beyond QueueCap not rejected: %v", err)
	}
	if got := sched.Stats().Rejected; got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}

func TestSubmitValidation(t *testing.T) {
	sched, err := Start(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	client := &Client{Addr: sched.Addr()}
	if _, err := client.Submit(core.Application{}, core.NameBasic); err == nil {
		t.Fatal("invalid application accepted")
	}
	if _, err := client.Submit(core.Application{Scenarios: 1, Months: 1}, "nope"); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
	if _, err := client.Result(999); err == nil {
		t.Fatal("unknown campaign id answered")
	}
}

func TestHeartbeatEvictionAndRejoin(t *testing.T) {
	cfg := testConfig()
	cfg.EvictAfter = 150 * time.Millisecond
	f := startFabric(t, cfg, 1)
	sed := f.SeDs[0]

	sed.StopHeartbeats()
	deadline := time.Now().Add(5 * time.Second)
	for {
		sd := f.Sched.Stats().SeDs
		if len(sd) == 1 && !sd[0].Alive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("silent SeD never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := f.Sched.Stats().Evicted; got == 0 {
		t.Fatal("eviction counter not incremented")
	}

	// A fresh heartbeat rejoins the daemon; campaigns flow again.
	sed.StartHeartbeats(f.Sched.Addr(), 25*time.Millisecond)
	if err := f.WaitAlive(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	app := core.Application{Scenarios: 2, Months: 6}
	res, err := (&Client{Addr: f.Sched.Addr()}).Run(app, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	verifyReports(t, f, app, core.NameKnapsack, res)
}

// TestLegacyClientAgainstScheduler: the scheduler is a drop-in superset of
// the passive MasterAgent, so the one-shot Figure-9 client must work
// against it unchanged.
func TestLegacyClientAgainstScheduler(t *testing.T) {
	f := startFabric(t, testConfig(), 2)
	app := core.Application{Scenarios: 3, Months: 8}
	res, err := (&diet.Client{MAAddr: f.Sched.Addr()}).Submit(app, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vectors) != 2 {
		t.Fatalf("legacy client saw %d vectors, want 2", len(res.Vectors))
	}
	if res.Makespan <= 0 {
		t.Fatalf("legacy client makespan %g", res.Makespan)
	}
}

// TestResultPolling covers the non-streaming path: submit without wait,
// poll until done.
func TestResultPolling(t *testing.T) {
	f := startFabric(t, testConfig(), 2)
	client := &Client{Addr: f.Sched.Addr()}
	app := core.Application{Scenarios: 3, Months: 6}
	sub, err := client.Submit(app, core.NameRedistribute)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		res, err := client.Result(sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status == diet.CampaignDone {
			verifyReports(t, f, app, core.NameRedistribute, res)
			return
		}
		if res.Status == diet.CampaignFailed {
			t.Fatalf("campaign failed: %s", res.Err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck in %q", res.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPerfVectorCacheWarms: the second identical campaign must not trigger
// new perf round trips (observable through timing is flaky; instead assert
// through the exported stats that both campaigns complete and the daemon
// still answers — the cache path is exercised by every repeated-shape test
// in this file; here we pin the truncation behaviour).
func TestPerfVectorTruncation(t *testing.T) {
	f := startFabric(t, testConfig(), 1)
	client := &Client{Addr: f.Sched.Addr()}
	// Big campaign first fills the cache with a long vector...
	big := core.Application{Scenarios: 5, Months: 6}
	resBig, err := client.Run(big, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	verifyReports(t, f, big, core.NameKnapsack, resBig)
	// ...the smaller one must reuse its prefix and still match serial runs.
	small := core.Application{Scenarios: 2, Months: 6}
	resSmall, err := client.Run(small, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	verifyReports(t, f, small, core.NameKnapsack, resSmall)
}

func TestSchedulerShutdownFailsWaiters(t *testing.T) {
	cfg := testConfig()
	cfg.Dispatchers = 1
	sched, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No SeDs: the campaign spins; Close must unblock the waiter.
	client := &Client{Addr: sched.Addr(), Timeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() {
		_, err := client.Run(core.Application{Scenarios: 1, Months: 1}, core.NameBasic)
		errCh <- err
	}()
	// Wait for the campaign to be running, then pull the plug.
	deadline := time.Now().Add(2 * time.Second)
	for sched.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("campaign never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := sched.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("waiter got a result from a dead scheduler")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter still blocked after scheduler shutdown")
	}
}

func TestStatsTracksQueueHighWater(t *testing.T) {
	cfg := testConfig()
	cfg.Dispatchers = 1
	cfg.QueueCap = 8
	sched, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	client := &Client{Addr: sched.Addr()}
	for i := 0; i < 5; i++ {
		if _, err := client.Submit(core.Application{Scenarios: 1, Months: 1}, core.NameBasic); err != nil {
			t.Fatal(err)
		}
	}
	if got := sched.Stats().MaxQueueDepth; got < 4 {
		t.Fatalf("max queue depth %d, want >= 4", got)
	}
}

func ExampleClient_Run() {
	sched, _ := Start(Config{Addr: "127.0.0.1:0"})
	defer sched.Close()
	cl := platform.ReferenceCluster(30)
	sed, _ := diet.StartSeD("127.0.0.1:0", cl, exec.Options{})
	defer sed.Close()
	sed.StartHeartbeats(sched.Addr(), 100*time.Millisecond)

	client := &Client{Addr: sched.Addr()}
	res, err := client.Run(core.Application{Scenarios: 2, Months: 6}, core.NameKnapsack)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Status, len(res.Reports) > 0, res.Makespan > 0)
	// Output: done true true
}
