package grid

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	osexec "os/exec"
	"reflect"
	"sync"
	"testing"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/diet"
	"oagrid/internal/engine"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
)

// ---------------------------------------------------------------------------
// Subprocess daemon: TestMain doubles as a re-exec hook so the crash test
// can kill -9 a real scheduler process and restart it on the same state dir.

const (
	daemonChildEnv  = "OAGRID_GRID_DAEMON_CHILD"
	daemonAddrEnv   = "OAGRID_GRID_DAEMON_ADDR"
	daemonStateEnv  = "OAGRID_GRID_DAEMON_STATE"
	daemonReadyLine = "LISTENING"
)

func TestMain(m *testing.M) {
	if os.Getenv(daemonChildEnv) == "1" {
		runDaemonChild()
	}
	os.Exit(m.Run())
}

// runDaemonChild is the whole child process: a durable scheduler daemon that
// prints its address and serves until killed. It never returns.
func runDaemonChild() {
	s, err := Start(Config{
		Addr:            os.Getenv(daemonAddrEnv),
		StateDir:        os.Getenv(daemonStateEnv),
		Dispatchers:     2,
		PerSeDInFlight:  2,
		EvictAfter:      2 * time.Second,
		RetryEvery:      10 * time.Millisecond,
		CampaignTimeout: 90 * time.Second,
	})
	if err != nil {
		fmt.Println("CHILD_ERR", err)
		os.Exit(1)
	}
	fmt.Printf("%s %s\n", daemonReadyLine, s.Addr())
	select {}
}

// startDaemonChild re-execs the test binary as a scheduler daemon on addr
// with the given state dir and waits for its ready line.
func startDaemonChild(t *testing.T, addr, stateDir string) (*osexec.Cmd, string) {
	t.Helper()
	cmd := osexec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		daemonChildEnv+"=1",
		daemonAddrEnv+"="+addr,
		daemonStateEnv+"="+stateDir,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("daemon child died before its ready line (%v)", sc.Err())
	}
	line := sc.Text()
	var got string
	if _, err := fmt.Sscanf(line, daemonReadyLine+" %s", &got); err != nil {
		t.Fatalf("daemon child said %q, want %q", line, daemonReadyLine)
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	return cmd, got
}

// waitAliveAddr polls a daemon's stats endpoint until n SeDs are alive —
// the address-based cousin of Fabric.WaitAlive for daemons in another
// process.
func waitAliveAddr(t *testing.T, addr string, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if stats, err := (&Client{Addr: addr, Timeout: time.Second}).Stats(); err == nil {
			alive := 0
			for _, sd := range stats.SeDs {
				if sd.Alive {
					alive++
				}
			}
			if alive >= n {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon at %s never saw %d live SeDs", addr, n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCrashRecoveryKillDashNine is the acceptance gauntlet: a real daemon
// process is SIGKILLed mid-campaign and restarted on the same state dir.
// Every admitted campaign must complete with chunk reports bit-identical to
// serial evaluation, and a reattaching client must receive the full
// progress history replayed from the journal — including the frames it saw
// before the crash.
func TestCrashRecoveryKillDashNine(t *testing.T) {
	dir := t.TempDir()
	cmd1, addr := startDaemonChild(t, "127.0.0.1:0", dir)

	// The SeD fleet lives in the test process, so it survives the daemon's
	// death and rejoins the restarted daemon by heartbeat.
	clusters := map[string]*platform.Cluster{}
	for _, cl := range platform.FiveClusters()[:3] {
		cl.Procs = 30
		sed, err := diet.StartSeD("127.0.0.1:0", cl, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sed.Close() })
		sed.StartHeartbeats(addr, 50*time.Millisecond)
		clusters[cl.Name] = cl
	}
	waitAliveAddr(t, addr, 3, 10*time.Second)

	app := core.Application{Scenarios: 6, Months: 12}
	const campaigns = 8

	var mu sync.Mutex
	ids := make([]uint64, campaigns)
	preChunks := map[uint64][]diet.ExecResponse{}
	var admitted sync.WaitGroup
	admitted.Add(campaigns)
	firstChunk := make(chan struct{})
	var chunkOnce sync.Once

	var wg sync.WaitGroup
	for i := 0; i < campaigns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &Client{Addr: addr, Timeout: 5 * time.Second}
			// The stream is expected to die with the daemon; errors are the
			// point, results (for campaigns that beat the kill) a bonus.
			_, _ = c.RunContext(context.Background(), app, core.NameKnapsack, SubmitMeta{},
				func(id uint64) {
					mu.Lock()
					ids[i] = id
					mu.Unlock()
					admitted.Done()
				},
				func(u *diet.ProgressUpdate) {
					if u.Stage == diet.StageChunk && u.Chunk != nil {
						mu.Lock()
						preChunks[u.ID] = append(preChunks[u.ID], *u.Chunk)
						mu.Unlock()
						chunkOnce.Do(func() { close(firstChunk) })
					}
				})
		}(i)
	}

	// Kill only once every campaign is admitted (journaled) and at least
	// one chunk completed (so the journal holds mid-campaign state).
	admitted.Wait()
	select {
	case <-firstChunk:
	case <-time.After(30 * time.Second):
		t.Fatal("no chunk completed before the planned kill")
	}
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()
	wg.Wait() // every stream has errored out or finished

	// Restart on the same address and state dir; the SeDs rejoin on their
	// next heartbeat and the journal re-admits the unfinished backlog.
	startDaemonChild(t, addr, dir)
	waitAliveAddr(t, addr, 3, 10*time.Second)

	v, err := NewVerifier(clusters, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	client := &Client{Addr: addr, Timeout: 60 * time.Second}
	mu.Lock()
	pre := make(map[uint64][]diet.ExecResponse, len(preChunks))
	for id, chunks := range preChunks {
		pre[id] = append([]diet.ExecResponse(nil), chunks...)
	}
	heldIDs := append([]uint64(nil), ids...)
	mu.Unlock()

	for i, id := range heldIDs {
		if id == 0 {
			t.Fatalf("campaign %d never got an ID", i)
		}
		var frames []diet.ProgressUpdate
		res, err := client.AttachContext(context.Background(), id, nil, func(u *diet.ProgressUpdate) {
			frames = append(frames, *u)
		})
		if err != nil {
			t.Fatalf("attach to campaign %d after restart: %v", id, err)
		}
		if err := v.Verify(app, res); err != nil {
			t.Fatalf("recovered campaign %d not bit-identical: %v", id, err)
		}
		// The replayed history must contain every chunk the client saw
		// before the crash, bit for bit.
		for _, want := range pre[id] {
			found := false
			for _, u := range frames {
				if u.Stage == diet.StageChunk && u.Chunk != nil &&
					u.Chunk.Cluster == want.Cluster &&
					u.Chunk.Scenarios == want.Scenarios &&
					math.Float64bits(u.Chunk.Makespan) == math.Float64bits(want.Makespan) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("campaign %d: pre-crash chunk %s×%d (%g) missing from replayed history",
					id, want.Cluster, want.Scenarios, want.Makespan)
			}
		}
	}

	// The restarted daemon serves fresh campaigns too.
	res, err := client.Run(app, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(app, res); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// In-process restart (graceful shutdown is a pause, not a failure).

// TestSchedulerRestartResumesCampaigns: a durable scheduler closed with a
// queued-but-unserveable campaign re-admits and finishes it after a restart
// on the same state dir, and campaigns finished before the restart stay
// pollable and attachable under their original IDs, bit for bit.
func TestSchedulerRestartResumesCampaigns(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.StateDir = dir
	sched1, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := sched1.Addr()

	clusters := map[string]*platform.Cluster{}
	var seds []*diet.SeD
	for _, cl := range platform.FiveClusters()[:2] {
		cl.Procs = 30
		sed, err := diet.StartSeD("127.0.0.1:0", cl, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sed.StartHeartbeats(addr, 25*time.Millisecond)
		seds = append(seds, sed)
		clusters[cl.Name] = cl
	}
	waitAliveAddr(t, addr, 2, 5*time.Second)

	// Campaign A runs to completion before the restart.
	client := &Client{Addr: addr}
	appA := core.Application{Scenarios: 4, Months: 12}
	resA, err := client.Run(appA, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the fleet, then submit campaign B: it spins with no live SeD and
	// is guaranteed non-terminal when the scheduler shuts down.
	for _, sed := range seds {
		sed.Close()
	}
	appB := core.Application{Scenarios: 5, Months: 6}
	subB, err := client.Submit(appB, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sched1.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("campaign B never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := sched1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same state dir (fresh port: clients reattach by ID,
	// not by connection) with a fresh fleet over the same profiles.
	cfg2 := testConfig()
	cfg2.StateDir = dir
	sched2, err := Start(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer sched2.Close()
	for _, cl := range platform.FiveClusters()[:2] {
		cl.Procs = 30
		sed, err := diet.StartSeD("127.0.0.1:0", cl, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sed.Close() })
		sed.StartHeartbeats(sched2.Addr(), 25*time.Millisecond)
	}
	client2 := &Client{Addr: sched2.Addr(), Timeout: 60 * time.Second}

	// Campaign B resumes and completes bit-identically.
	v, err := NewVerifier(clusters, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	var frames []diet.ProgressUpdate
	resB, err := client2.AttachContext(context.Background(), subB.ID, nil, func(u *diet.ProgressUpdate) {
		frames = append(frames, *u)
	})
	if err != nil {
		t.Fatalf("attach to resumed campaign: %v", err)
	}
	if err := v.Verify(appB, resB); err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("resumed campaign streamed no progress history")
	}

	// Campaign A's terminal state survived the restart bit for bit.
	gotA, err := client2.Result(resA.ID)
	if err != nil {
		t.Fatal(err)
	}
	if gotA.Status != diet.CampaignDone ||
		math.Float64bits(gotA.Makespan) != math.Float64bits(resA.Makespan) ||
		!reflect.DeepEqual(gotA.Reports, resA.Reports) {
		t.Fatalf("campaign A after restart = %+v, want %+v", gotA, resA)
	}

	// An ID the journal never issued is a typed unknown, not a hang.
	_, err = client2.AttachContext(context.Background(), 99999, nil, nil)
	if !errors.Is(err, ErrUnknownCampaign) {
		t.Fatalf("attach to unknown campaign returned %v, want ErrUnknownCampaign", err)
	}
}

// ---------------------------------------------------------------------------
// Flaky SeD: a protocol-complete daemon whose exec handler fails a
// configured number of times before behaving — the deterministic way to
// drive requeue rounds without racing real process kills.

type flakySeD struct {
	cluster *platform.Cluster
	ln      net.Listener

	mu       sync.Mutex
	failures int

	hbStop chan struct{}
}

// startFlakySeD serves cluster like a real SeD but fails its first
// `failures` exec requests, heartbeating the scheduler every hbEvery.
func startFlakySeD(t *testing.T, cluster *platform.Cluster, failures int, schedAddr string, hbEvery time.Duration) *flakySeD {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &flakySeD{cluster: cluster, ln: ln, failures: failures, hbStop: make(chan struct{})}
	go diet.Serve(ln, f.handle)
	go func() {
		tick := time.NewTicker(hbEvery)
		defer tick.Stop()
		for {
			f.beat(schedAddr)
			select {
			case <-f.hbStop:
				return
			case <-tick.C:
			}
		}
	}()
	t.Cleanup(func() {
		close(f.hbStop)
		ln.Close()
	})
	return f
}

func (f *flakySeD) beat(schedAddr string) {
	_, _ = diet.RoundTrip(schedAddr, &diet.Request{Kind: diet.KindHeartbeat, Heartbeat: &diet.HeartbeatRequest{
		Cluster: f.cluster.Name,
		Addr:    f.ln.Addr().String(),
		Procs:   f.cluster.Procs,
	}})
}

func (f *flakySeD) handle(req *diet.Request) *diet.Response {
	switch req.Kind {
	case diet.KindPerf:
		h, err := core.ByName(req.Perf.Heuristic)
		if err != nil {
			return &diet.Response{Err: err.Error()}
		}
		app := core.Application{Scenarios: req.Perf.Scenarios, Months: req.Perf.Months}
		vec, err := engine.PerformanceVector(engine.DES{}, app, f.cluster, h, engine.Options{}, 0)
		if err != nil {
			return &diet.Response{Err: err.Error()}
		}
		return &diet.Response{Perf: &diet.PerfResponse{Cluster: f.cluster.Name, Procs: f.cluster.Procs, Vector: vec}}
	case diet.KindExec:
		f.mu.Lock()
		if f.failures > 0 {
			f.failures--
			f.mu.Unlock()
			return &diet.Response{Err: "flaky SeD: injected exec failure"}
		}
		f.mu.Unlock()
		h, err := core.ByName(req.Exec.Heuristic)
		if err != nil {
			return &diet.Response{Err: err.Error()}
		}
		app := core.Application{Scenarios: len(req.Exec.ScenarioIDs), Months: req.Exec.Months}
		alloc, err := h.Plan(app, f.cluster.Timing, f.cluster.Procs)
		if err != nil {
			return &diet.Response{Err: err.Error()}
		}
		res, err := exec.Run(app, f.cluster.Timing, f.cluster.Procs, alloc, exec.Options{})
		if err != nil {
			return &diet.Response{Err: err.Error()}
		}
		return &diet.Response{Exec: &diet.ExecResponse{
			Cluster:    f.cluster.Name,
			Makespan:   res.Makespan,
			Allocation: alloc,
			Scenarios:  len(req.Exec.ScenarioIDs),
		}}
	default:
		return &diet.Response{Err: fmt.Sprintf("flaky SeD: unsupported request %q", req.Kind)}
	}
}

// TestRequeuedRoundMakespanSummed is the regression test for the multi-round
// makespan accounting bug: repartition rounds run sequentially after a
// requeue, so the campaign makespan must be the sum of per-round chunk
// maxima — the old global max silently dropped the requeued round's time.
func TestRequeuedRoundMakespanSummed(t *testing.T) {
	cfg := testConfig()
	cfg.EvictAfter = 5 * time.Second // keep the flaky SeD pool-eligible between rounds
	sched, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()

	profiles := platform.FiveClusters()[:2]
	for _, cl := range profiles {
		cl.Procs = 30
	}
	steady, err := diet.StartSeD("127.0.0.1:0", profiles[0], exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { steady.Close() })
	steady.StartHeartbeats(sched.Addr(), 20*time.Millisecond)
	startFlakySeD(t, profiles[1], 1, sched.Addr(), 20*time.Millisecond)
	waitAliveAddr(t, sched.Addr(), 2, 5*time.Second)

	app := core.Application{Scenarios: 6, Months: 12}
	res, err := (&Client{Addr: sched.Addr()}).Run(app, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requeues == 0 {
		t.Fatalf("flaky SeD cost no requeue: %+v", res)
	}

	// Recompute the expected accounting from the reports themselves.
	maxByRound := map[int]float64{}
	maxRound, maxSingle := 0, 0.0
	for _, rep := range res.Reports {
		if rep.Makespan > maxByRound[rep.Round] {
			maxByRound[rep.Round] = rep.Makespan
		}
		if rep.Round > maxRound {
			maxRound = rep.Round
		}
		if rep.Makespan > maxSingle {
			maxSingle = rep.Makespan
		}
	}
	if maxRound == 0 {
		t.Fatalf("requeued campaign finished in one round: %+v", res.Reports)
	}
	want := 0.0
	for round := 0; round <= maxRound; round++ {
		want += maxByRound[round]
	}
	if math.Float64bits(res.Makespan) != math.Float64bits(want) {
		t.Fatalf("makespan %g, want per-round sum %g", res.Makespan, want)
	}
	// The regression: the old accounting returned the global max, which is
	// strictly less than the sum whenever a requeued round did real work.
	if res.Makespan <= maxSingle {
		t.Fatalf("makespan %g does not count the requeued round (max single chunk %g)", res.Makespan, maxSingle)
	}
	// And the round-aware verifier agrees end to end.
	v, err := NewVerifier(map[string]*platform.Cluster{
		profiles[0].Name: profiles[0],
		profiles[1].Name: profiles[1],
	}, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(app, res); err != nil {
		t.Fatal(err)
	}
}

// TestSortReportsTotalOrder pins the report-ordering fix: (Cluster,
// Scenarios) ties across rounds must be broken by (Round, FirstScenario)
// under a stable sort, so the final report list is a pure function of the
// chunk set, not of arrival interleaving — and matches the Local runner's
// (cluster, scenarios, round) public order.
func TestSortReportsTotalOrder(t *testing.T) {
	// a and b tie on (Cluster, Scenarios) and disagree between Round order
	// and FirstScenario order: Round must win (a requeued round can rerun
	// lower scenario IDs than an earlier round completed).
	a := diet.ExecResponse{Cluster: "c", Scenarios: 2, Makespan: 10, Round: 0, FirstScenario: 4}
	b := diet.ExecResponse{Cluster: "c", Scenarios: 2, Makespan: 11, Round: 1, FirstScenario: 0}
	c := diet.ExecResponse{Cluster: "b", Scenarios: 2, Makespan: 9, Round: 0, FirstScenario: 2}
	want := []diet.ExecResponse{c, a, b}
	for _, perm := range [][]diet.ExecResponse{{a, b, c}, {b, a, c}, {c, b, a}, {b, c, a}} {
		got := append([]diet.ExecResponse(nil), perm...)
		sortReports(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("sortReports(%v) = %v, want %v", perm, got, want)
		}
	}
}

// TestCampaignMakespanAccounting pins the per-round fold, including rounds
// with no surviving report (every chunk requeued) contributing zero.
func TestCampaignMakespanAccounting(t *testing.T) {
	reports := []diet.ExecResponse{
		{Cluster: "a", Makespan: 10, Round: 0},
		{Cluster: "b", Makespan: 12, Round: 0},
		{Cluster: "a", Makespan: 5, Round: 2}, // round 1 lost everything
	}
	if got := diet.CampaignMakespan(reports); got != 17 {
		t.Fatalf("diet.CampaignMakespan = %g, want 17", got)
	}
	if got := diet.CampaignMakespan(nil); got != 0 {
		t.Fatalf("diet.CampaignMakespan(nil) = %g, want 0", got)
	}
}

// TestPollSnapshotProgress covers the poll-path progress fix: Submit
// without Wait, then Result, must see Done/Total move before the terminal
// state instead of a bare "running".
func TestPollSnapshotProgress(t *testing.T) {
	f := startFabric(t, testConfig(), 2)
	client := &Client{Addr: f.Sched.Addr()}
	app := core.Application{Scenarios: 6, Months: 12}
	sub, err := client.Submit(app, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	lastDone := 0
	for {
		res, err := client.Result(sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if res.Total != app.Scenarios {
			t.Fatalf("snapshot Total = %d, want %d (status %s)", res.Total, app.Scenarios, res.Status)
		}
		if res.Done < lastDone {
			t.Fatalf("snapshot Done went backwards: %d after %d", res.Done, lastDone)
		}
		lastDone = res.Done
		if res.Status == diet.CampaignDone {
			if res.Done != app.Scenarios {
				t.Fatalf("terminal snapshot Done = %d, want %d", res.Done, app.Scenarios)
			}
			verifyReports(t, f, app, core.NameKnapsack, res)
			return
		}
		if res.Status == diet.CampaignFailed {
			t.Fatalf("campaign failed: %s", res.Err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck in %q", res.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAttachReplayAfterManyRequeues drives a campaign far past the
// subscriber buffer's live allowance (len(history) + 4*Scenarios + 16) with
// repeated injected SeD failures, then attaches late — mid-run and again
// after the terminal state. Both subscribers must receive the complete
// replay from the very first planned frame plus a terminal result frame.
func TestAttachReplayAfterManyRequeues(t *testing.T) {
	const failures = 12 // 12 failed rounds ≈ 25 frames, past the 4*1+16 allowance

	cfg := testConfig()
	cfg.EvictAfter = 5 * time.Second
	cfg.RetryEvery = 5 * time.Millisecond
	sched, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()

	cl := platform.FiveClusters()[0]
	cl.Procs = 30
	startFlakySeD(t, cl, failures, sched.Addr(), 10*time.Millisecond)
	waitAliveAddr(t, sched.Addr(), 1, 5*time.Second)

	app := core.Application{Scenarios: 1, Months: 6}
	client := &Client{Addr: sched.Addr(), Timeout: 60 * time.Second}
	sub, err := client.Submit(app, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the requeue churn is well past the live allowance, then
	// attach mid-run (the campaign may race to completion on a loaded box;
	// the replay guarantee is the same either way).
	deadline := time.Now().Add(30 * time.Second)
	for {
		res, err := client.Result(sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if res.Requeues >= failures/2 || res.Status == diet.CampaignDone {
			break
		}
		if res.Status == diet.CampaignFailed {
			t.Fatalf("campaign failed: %s", res.Err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never churned: %+v", res)
		}
		time.Sleep(2 * time.Millisecond)
	}

	checkReplay := func(label string) {
		t.Helper()
		var frames []diet.ProgressUpdate
		var verdict *diet.AttachResponse
		res, err := client.AttachContext(context.Background(), sub.ID,
			func(v *diet.AttachResponse) { verdict = v },
			func(u *diet.ProgressUpdate) { frames = append(frames, *u) })
		if err != nil {
			t.Fatalf("%s attach: %v", label, err)
		}
		if verdict == nil || !verdict.Found || verdict.Total != app.Scenarios {
			t.Fatalf("%s attach verdict %+v", label, verdict)
		}
		if res.Status != diet.CampaignDone {
			t.Fatalf("%s attach ended %q: %s", label, res.Status, res.Err)
		}
		if res.Requeues != failures {
			t.Fatalf("%s: %d requeues, want %d", label, res.Requeues, failures)
		}
		// Full replay: every failed round contributes a planned + requeue
		// pair from frame zero, far beyond the live buffer allowance.
		var planned, requeued, chunks int
		for _, u := range frames {
			switch u.Stage {
			case diet.StagePlanned:
				planned++
			case diet.StageRequeue:
				requeued++
			case diet.StageChunk:
				chunks++
			}
		}
		if len(frames) <= 4*app.Scenarios+16 {
			t.Fatalf("%s: only %d frames — the test no longer exceeds the live allowance", label, len(frames))
		}
		if frames[0].Stage != diet.StagePlanned {
			t.Fatalf("%s: replay starts at %q, not the first planned frame", label, frames[0].Stage)
		}
		if planned != failures+1 || requeued != failures || chunks != 1 {
			t.Fatalf("%s: replay %d planned / %d requeue / %d chunk frames, want %d/%d/1",
				label, planned, requeued, chunks, failures+1, failures)
		}
	}
	checkReplay("mid-run")
	checkReplay("terminal") // the campaign is done now; replay must be intact
}

// TestRestartPrunesBeyondKeepFinished: the retention cap holds across a
// restart — a terminal campaign pruned by the cap is not resurrected by
// journal replay, and the journal itself is compacted down to the
// retained set.
func TestRestartPrunesBeyondKeepFinished(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.StateDir = dir
	cfg.KeepFinished = 1
	sched1, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := platform.FiveClusters()[0]
	cl.Procs = 30
	sed, err := diet.StartSeD("127.0.0.1:0", cl, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sed.Close() })
	sed.StartHeartbeats(sched1.Addr(), 25*time.Millisecond)
	waitAliveAddr(t, sched1.Addr(), 1, 5*time.Second)

	app := core.Application{Scenarios: 2, Months: 6}
	client := &Client{Addr: sched1.Addr()}
	resA, err := client.Run(app, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := client.Run(app, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	// KeepFinished=1: campaign A is pruned the moment B finishes.
	if _, err := client.Result(resA.ID); err == nil {
		t.Fatalf("campaign %d pollable past the retention cap", resA.ID)
	}
	if err := sched1.Close(); err != nil {
		t.Fatal(err)
	}

	cfg2 := testConfig()
	cfg2.StateDir = dir
	cfg2.KeepFinished = 1
	sched2, err := Start(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer sched2.Close()
	client2 := &Client{Addr: sched2.Addr()}
	// The pruned campaign stays unknown after the restart...
	if _, err := client2.AttachContext(context.Background(), resA.ID, nil, nil); !errors.Is(err, ErrUnknownCampaign) {
		t.Fatalf("pruned campaign %d resurrected by replay: %v", resA.ID, err)
	}
	// ...while the retained one is still there, bit for bit.
	gotB, err := client2.Result(resB.ID)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(gotB.Makespan) != math.Float64bits(resB.Makespan) {
		t.Fatalf("retained campaign makespan %g, want %g", gotB.Makespan, resB.Makespan)
	}
}
