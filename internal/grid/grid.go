// Package grid is the online scheduling layer of the DIET hierarchy: a
// long-running master-agent daemon that serves simulation campaigns as a
// service instead of answering one-shot registry queries.
//
// The paper submits ocean-atmosphere campaigns through a DIET MA/SeD tree;
// internal/diet reproduces the six-step protocol of its Figure 9 for a
// single client-driven run. This package turns the master agent into a
// service under load:
//
//	client ──submit──▶ bounded queue ──▶ dispatchers ──▶ SeD pool
//	                  (admission        (per-campaign    (per-SeD in-flight
//	                   control)          protocol run)    limits, heartbeat
//	                                                      eviction, requeue)
//
// A campaign is one full protocol round — performance vectors, Algorithm-1
// repartition, per-cluster execution — run against whatever SeDs are alive
// when the campaign reaches the head of the queue. SeDs beacon liveness;
// daemons that miss the heartbeat deadline are evicted and the scenario
// chunks they held are re-repartitioned across the survivors, so a SeD
// killed mid-campaign costs a requeue, not the campaign. Every evaluation a
// SeD performs goes through internal/engine's batched sweep, which keeps
// results bit-identical to a serial run.
//
// The scheduler speaks the internal/diet gob-over-TCP protocol and is a
// strict superset of the passive MasterAgent: register/list still work, so
// the legacy diet.Client can run its one-shot protocol against a live
// daemon unchanged.
package grid

import (
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/diet"
	"oagrid/internal/store"
)

// Config tunes the scheduler daemon. The zero value of each field picks the
// default documented on it.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// QueueCap bounds the campaign queue; submissions beyond it are rejected
	// at admission (default 64).
	QueueCap int
	// Dispatchers is the number of campaigns served concurrently
	// (default 4).
	Dispatchers int
	// PerSeDInFlight caps concurrent requests the scheduler keeps open
	// against one SeD (default 4).
	PerSeDInFlight int
	// EvictAfter is the heartbeat deadline: a SeD silent for longer is
	// marked dead and excluded from new dispatches (default 3s).
	EvictAfter time.Duration
	// RetryEvery paces campaign retries while no SeD is alive
	// (default 25ms).
	RetryEvery time.Duration
	// CampaignTimeout bounds one campaign end to end, including requeues
	// (default 2m).
	CampaignTimeout time.Duration
	// KeepFinished caps how many finished campaigns stay pollable before
	// the oldest are forgotten (default 4096).
	KeepFinished int
	// RotateBytes arms online WAL rotation: once the live journal segment
	// grows past this many bytes, the next append checkpoints it down to the
	// retained campaigns' records — so a long-lived daemon's campaigns.wal
	// stays bounded between restarts, not just across them. 0 picks the
	// default (4 MiB); negative disables rotation (append-only until the
	// next restart's compaction). Ignored without a StateDir.
	RotateBytes int64
	// StateDir, when non-empty, makes the scheduler durable: every campaign
	// transition is journaled to an append-only WAL under the directory
	// before it is acknowledged, and a scheduler restarted on the same
	// directory replays the journal — terminal campaigns stay pollable and
	// attachable under their original IDs, non-terminal campaigns are
	// re-admitted with their unfinished scenarios requeued. Empty keeps the
	// scheduler purely in-memory.
	StateDir string
	// TenantKey is the label key that names a campaign's fair-queueing
	// tenant (default "team"). Campaigns without the label — including
	// everything submitted by pre-v3 peers, whose labels are stripped —
	// share the DefaultTenant. The tenant table is bounded: beyond
	// maxDynamicTenants distinct unconfigured names, new ones fold into
	// the OverflowTenant (see canonicalTenant).
	TenantKey string
	// TenantWeights assigns fair-queueing weights by tenant name. Dispatch
	// is virtual-time weighted-fair: over any contended stretch a tenant
	// receives dispatch slots proportional to its weight. Unlisted tenants
	// (and entries <= 0) weigh 1.
	TenantWeights map[string]float64
	// TenantQuota caps how many campaigns one tenant may hold in the queue
	// at once; a submission beyond it is rejected with the retryable
	// quota-exceeded code while other tenants keep admitting. 0 means no
	// per-tenant cap (the global QueueCap still applies). TenantQuotas
	// overrides it per tenant (a negative entry means unlimited for that
	// tenant).
	TenantQuota  int
	TenantQuotas map[string]int
	// AgeAfter is the aging interval: a queued campaign's effective
	// priority rises by one for every AgeAfter it has waited, so sustained
	// high-priority traffic cannot starve a low-priority campaign of the
	// same tenant forever. 0 picks the default (10s); negative disables
	// aging. Aging reorders only the admission queue — never a dispatched
	// campaign's results.
	AgeAfter time.Duration
	// MetricsAddr, when non-empty, serves a Prometheus text-format
	// /metrics endpoint on the address ("127.0.0.1:0" for an ephemeral
	// port): queue and per-tenant gauges, SeD utilization, WAL size and
	// wire-level byte counters.
	MetricsAddr string
	// MaxProtocol caps the protocol version this daemon negotiates (0 means
	// the build's newest). A daemon capped below v4 also refuses binary
	// connections, exactly like a real pre-v4 build — the staged-rollout
	// knob, and how tests stand up an old-generation daemon.
	MaxProtocol int
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Dispatchers <= 0 {
		c.Dispatchers = 4
	}
	if c.PerSeDInFlight <= 0 {
		c.PerSeDInFlight = 4
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 3 * time.Second
	}
	if c.RetryEvery <= 0 {
		c.RetryEvery = 25 * time.Millisecond
	}
	if c.CampaignTimeout <= 0 {
		c.CampaignTimeout = 2 * time.Minute
	}
	if c.KeepFinished <= 0 {
		c.KeepFinished = 4096
	}
	if c.RotateBytes == 0 {
		c.RotateBytes = 4 << 20
	}
	if c.TenantKey == "" {
		c.TenantKey = DefaultTenantKey
	}
	if c.AgeAfter == 0 {
		c.AgeAfter = 10 * time.Second
	}
	return c
}

// DefaultTenantKey is the label key that names a campaign's tenant unless
// Config.TenantKey overrides it.
const DefaultTenantKey = "team"

// DefaultTenant is the tenant of campaigns that carry no tenant label.
const DefaultTenant = "default"

// OverflowTenant absorbs submissions from tenant names beyond the dynamic
// cap: they share one weight-1 queue, one quota, and one set of /metrics
// series instead of growing the tenant table.
const OverflowTenant = "other"

// maxDynamicTenants bounds how many distinct unconfigured tenant names the
// scheduler tracks individually. Tenant entries persist for the scheduler's
// lifetime (their counters are /metrics series), and the name is a
// client-supplied label value — without a cap, a client cycling unique
// values would grow the table and the metric cardinality without bound.
// Operator-configured tenants (a TenantWeights or TenantQuotas entry) are
// always tracked and do not count against the cap.
const maxDynamicTenants = 64

// vecKey identifies a cached performance vector. Entry k-1 of a vector is
// the makespan of k scenarios — independent of how many scenarios the
// campaign that fetched it had — so the cache keys on (months, heuristic)
// and keeps the longest vector seen per SeD.
type vecKey struct {
	months    int
	heuristic string
}

// sedState is the scheduler's view of one server daemon.
type sedState struct {
	info     diet.SeDInfo
	alive    bool
	lastBeat time.Time
	inFlight int
	// speed is the daemon's advertised relative speed factor (1.0 for every
	// pre-v7 daemon). A change invalidates the vector cache: the cached
	// advertisements were scaled by the old factor.
	speed float64
	// draining marks a daemon gracefully leaving the fleet: it keeps
	// serving (and banking) the chunks it holds, but aliveSeDs excludes it
	// from every new dispatch pool.
	draining bool
	// leases counts repartition rounds whose dispatch pool snapshot
	// includes this daemon and whose results are not fully processed yet.
	// A draining daemon is deregistrable only at zero leases — the
	// guarantee that a scale-down never strands (and so never requeues) an
	// in-flight chunk.
	leases int
	// sem enforces the per-SeD in-flight limit; it survives re-registration
	// so tokens held across an eviction/rejoin stay accounted.
	sem     chan struct{}
	vectors map[vecKey][]float64
}

// tenantState is one tenant's slice of the weighted-fair queue: its queued
// campaigns, its virtual-time tag, and its service counters.
type tenantState struct {
	name   string
	weight float64
	// vfinish is the virtual finish tag of the tenant's last dispatched
	// campaign (start-time fair queueing): the next dispatch would finish at
	// max(global vtime, vfinish) + 1/weight, and the tenant with the
	// earliest such finish wins the slot — so observed service tracks
	// weights over any contended stretch.
	vfinish float64
	// queue holds the tenant's queued campaigns in admission order; the
	// within-tenant pick is by effective priority (priority plus aging
	// boost), resolved by linear scan at pop time because aging makes the
	// order time-dependent. queued counts reserved admission slots, which
	// lead queue membership by the WAL-append window (mirroring queueLen).
	queue  []*campaign
	queued int
	// running counts the tenant's campaigns currently held by a dispatcher.
	running       int
	admitted      uint64
	completed     uint64
	failed        uint64
	cancelled     uint64
	quotaRejected uint64
	// Queue-wait moments of dispatched campaigns (admission → dispatch).
	waitCount uint64
	waitSum   time.Duration
	waitMax   time.Duration
}

// Scheduler is the online master agent.
type Scheduler struct {
	cfg   Config
	ln    net.Listener
	store *store.Store // nil without a StateDir

	// tokens carries one signal per enqueued campaign; the campaign itself
	// sits in its tenant's queue under mu. A dispatcher first takes a
	// token, then runs the WFQ pick — so admission order only breaks ties,
	// never the fair-queueing order.
	tokens chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup

	metrics *metricsServer // nil without a MetricsAddr

	// shard is the ring runtime once JoinRing ran; nil for a standalone
	// daemon. Atomic because request dispatch reads it lock-free while
	// JoinRing installs it after Start.
	shard atomic.Pointer[shardManager]

	// metricsHook, when set, is invoked at the end of every /metrics render
	// to append subsystem families the scheduler doesn't own (the autoscale
	// controller's fleet gauges). Atomic because scrapes read it lock-free
	// while the subsystem installs it after Start.
	metricsHook atomic.Pointer[func(io.Writer)]

	mu      sync.Mutex
	tenants map[string]*tenantState
	// dynamicTenants counts the tenant entries created for unconfigured
	// names — the population maxDynamicTenants bounds.
	dynamicTenants int
	// vtime is the global virtual clock of the weighted-fair queue: the
	// start tag of the last dispatched campaign.
	vtime     float64
	seds      map[string]*sedState
	campaigns map[uint64]*campaign
	doneOrder []uint64
	nextID    uint64
	queueLen  int
	maxQueue  int
	running   int
	completed uint64
	failed    uint64
	cancelled uint64
	rejected  uint64
	requeues  uint64
	evicted   uint64
}

// tenantName resolves a campaign's tenant from its labels.
func (s *Scheduler) tenantName(labels map[string]string) string {
	if name := labels[s.cfg.TenantKey]; name != "" {
		return name
	}
	return DefaultTenant
}

// tenant returns (creating on first use) a tenant's state. Callers hold
// s.mu and pass canonical names only (see canonicalTenant). Tenant entries
// persist for the scheduler's lifetime: their counters are the /metrics
// series and must not reset when a queue drains.
func (s *Scheduler) tenant(name string) *tenantState {
	t := s.tenants[name]
	if t == nil {
		weight := s.cfg.TenantWeights[name]
		if weight <= 0 {
			weight = 1
		}
		t = &tenantState{name: name, weight: weight}
		s.tenants[name] = t
		if name != DefaultTenant && name != OverflowTenant && !s.configuredTenant(name) {
			s.dynamicTenants++
		}
	}
	return t
}

// configuredTenant reports whether name is operator-declared through a
// weight or quota entry — such tenants always get their own state.
func (s *Scheduler) configuredTenant(name string) bool {
	if _, ok := s.cfg.TenantWeights[name]; ok {
		return true
	}
	_, ok := s.cfg.TenantQuotas[name]
	return ok
}

// canonicalTenant folds a client-supplied tenant name into the bounded
// tenant table: a name with existing state, an operator-configured name,
// and the two well-known names map to themselves; a brand-new dynamic name
// maps to OverflowTenant once maxDynamicTenants distinct ones exist.
// Callers hold s.mu (or run before the scheduler's goroutines start).
func (s *Scheduler) canonicalTenant(name string) string {
	if name == DefaultTenant || name == OverflowTenant ||
		s.tenants[name] != nil || s.configuredTenant(name) {
		return name
	}
	if s.dynamicTenants >= maxDynamicTenants {
		return OverflowTenant
	}
	return name
}

// quotaFor is the tenant's queued-campaign cap: the per-tenant override
// when listed (negative = unlimited), the global default otherwise, 0 = no
// cap.
func (s *Scheduler) quotaFor(name string) int {
	if q, ok := s.cfg.TenantQuotas[name]; ok {
		if q < 0 {
			return 0
		}
		return q
	}
	return s.cfg.TenantQuota
}

// Start listens on cfg.Addr and begins serving. With a StateDir, the
// journal found there is replayed first: terminal campaigns come back
// pollable, non-terminal campaigns are re-admitted ahead of new traffic.
func Start(cfg Config) (*Scheduler, error) {
	cfg = cfg.withDefaults()

	var st *store.Store
	var byID map[uint64]*store.Campaign
	if cfg.StateDir != "" {
		var err error
		st, byID, err = store.Open(cfg.StateDir)
		if err != nil {
			return nil, err
		}
	}
	recovered := store.ByID(byID)

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		if st != nil {
			st.Close()
		}
		return nil, fmt.Errorf("grid: scheduler listen: %w", err)
	}

	// Size the queue to hold the recovered backlog on top of the admission
	// bound: re-admission must never block startup, even after a crash with
	// a full queue.
	live := 0
	for _, rc := range recovered {
		if !rc.Terminal() {
			live++
		}
	}
	s := &Scheduler{
		cfg:       cfg,
		ln:        ln,
		store:     st,
		tokens:    make(chan struct{}, cfg.QueueCap+live),
		done:      make(chan struct{}),
		tenants:   make(map[string]*tenantState),
		seds:      make(map[string]*sedState),
		campaigns: make(map[uint64]*campaign),
	}
	s.nextID = store.MaxID(byID)

	// Rebuild the campaign table and re-admit the unfinished backlog in
	// original admission order, before the dispatchers start. Recovered
	// campaigns keep their journaled priority and labels — and with them
	// their tenant; among equal priorities their lower IDs put them ahead
	// of any new traffic of the same tenant. Re-admission bypasses tenant
	// quotas: a backlog the daemon already accepted must never block
	// startup.
	now := time.Now()
	for _, rc := range recovered {
		c := recoveredCampaign(rc)
		c.tenant = s.tenantName(c.labels)
		s.campaigns[c.id] = c
		if rc.Terminal() {
			s.doneOrder = append(s.doneOrder, c.id)
			continue
		}
		// Re-admitted campaigns go through the same tenant fold as live
		// submissions, so a hostile label set in the journal cannot blow the
		// tenant table either. Safe without s.mu: nothing else runs yet.
		c.tenant = s.canonicalTenant(c.tenant)
		c.enqueuedAt = now
		s.queueLen++
		if s.queueLen > s.maxQueue {
			s.maxQueue = s.queueLen
		}
		s.tenant(c.tenant).queued++
		s.enqueue(c)
	}
	// Apply the retention cap to the recovered terminal set, then compact
	// the journal down to what survived: without this, replay would
	// resurrect campaigns pruned before the restart and the WAL would grow
	// without bound across restarts. Compaction must happen before the
	// listener opens — it rewrites the journal from the recovered records,
	// so appends racing it would be lost.
	for len(s.doneOrder) > cfg.KeepFinished {
		delete(s.campaigns, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
	if st != nil && len(recovered) > 0 {
		kept := make([]*store.Campaign, 0, len(s.campaigns))
		for _, rc := range recovered {
			if _, ok := s.campaigns[rc.ID]; ok {
				kept = append(kept, rc)
			}
		}
		// Best-effort: a failed compaction leaves the previous journal in
		// place, which replays to at least this state.
		_ = st.Compact(kept)
	}
	// Online rotation: once the live segment outgrows the threshold, the
	// journal is checkpointed down to the campaigns still in the table —
	// retention prunes the table, rotation prunes the file. The retain
	// snapshot takes s.mu, which is safe because the scheduler never appends
	// to the journal while holding it.
	if st != nil && cfg.RotateBytes > 0 {
		st.AutoRotate(cfg.RotateBytes, s.retainedIDs)
	}

	if cfg.MetricsAddr != "" {
		m, err := startMetrics(cfg.MetricsAddr, s)
		if err != nil {
			ln.Close()
			if st != nil {
				st.Close()
			}
			return nil, err
		}
		s.metrics = m
	}

	s.wg.Add(1 + cfg.Dispatchers)
	go s.acceptLoop()
	go s.evictLoop()
	for i := 0; i < cfg.Dispatchers; i++ {
		go s.dispatchLoop()
	}
	return s, nil
}

// journal appends one record to the campaign WAL; a no-op without a state
// dir. Mid-run append failures are swallowed: losing a journal line only
// costs re-execution of the affected scenarios after a restart, while
// failing the live campaign would turn a disk hiccup into lost work now.
// The admission record is the exception — admit checks its error, because
// an ID the client holds must always be recoverable.
func (s *Scheduler) journal(rec store.Record) {
	if s.store == nil {
		return
	}
	_ = s.store.Append(rec)
}

// Addr returns the daemon's listen address.
func (s *Scheduler) Addr() string { return s.ln.Addr().String() }

// MetricsAddr returns the /metrics endpoint's listen address, empty when
// the endpoint is off.
func (s *Scheduler) MetricsAddr() string {
	if s.metrics == nil {
		return ""
	}
	return s.metrics.addr()
}

// SetMetricsHook installs (or, with nil, removes) a callback appended to
// every /metrics render after the scheduler's own families. The hook must
// write complete exposition-format families and must not block: it runs on
// the scrape path.
func (s *Scheduler) SetMetricsHook(hook func(io.Writer)) {
	if hook == nil {
		s.metricsHook.Store(nil)
		return
	}
	s.metricsHook.Store(&hook)
}

// Close stops the daemon: the listener closes, queued and running campaigns
// fail with a shutdown error, and the worker goroutines drain. With a state
// dir the shutdown failures are not journaled as terminal — a scheduler
// restarted on the same directory re-admits and finishes them.
func (s *Scheduler) Close() error {
	err := s.ln.Close()
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	if sm := s.shard.Load(); sm != nil {
		sm.close()
	}
	s.wg.Wait()
	if s.metrics != nil {
		s.metrics.close()
	}
	if s.store != nil {
		s.store.Close()
	}
	return err
}

// evictLoop enforces the heartbeat deadline.
func (s *Scheduler) evictLoop() {
	tick := time.NewTicker(s.cfg.EvictAfter / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C:
		}
		now := time.Now()
		s.mu.Lock()
		for _, st := range s.seds {
			if st.alive && now.Sub(st.lastBeat) > s.cfg.EvictAfter {
				st.alive = false
				s.evicted++
			}
		}
		s.mu.Unlock()
	}
}

// register adds or refreshes a SeD entry; beat marks whether the update is a
// heartbeat (refreshing the liveness deadline and reviving evicted entries).
// speed <= 0 — every pre-v7 peer — reads as the reference factor 1.0.
func (s *Scheduler) register(info diet.SeDInfo, inFlight int, speed float64, draining bool) {
	if speed <= 0 {
		speed = 1.0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.seds[info.Cluster]
	if st == nil {
		if draining {
			// A deregistered daemon's last in-flight beats may straggle in
			// after its entry was removed; resurrecting it as a permanent
			// draining ghost would pollute the table and /metrics. A drain
			// flag only ever updates an existing entry.
			return
		}
		st = &sedState{
			sem:     make(chan struct{}, s.cfg.PerSeDInFlight),
			vectors: make(map[vecKey][]float64),
		}
		s.seds[info.Cluster] = st
	}
	if st.info.Addr != "" && (st.info.Addr != info.Addr || st.info.Procs != info.Procs || st.speed != speed) {
		// The daemon's identity or advertised capability changed — a
		// replacement process, a resized cluster, or a new speed factor.
		// Cached vectors describe the old capability, so serving them would
		// misplace every chunk until the key aged out: invalidate.
		st.vectors = make(map[vecKey][]float64)
	}
	if st.info.Addr != "" && st.info.Addr != info.Addr {
		// A replacement daemon is a fresh process: an old drain flag (or a
		// straggling beat from the drained predecessor) must not shadow it.
		st.draining = false
	}
	st.info = info
	st.alive = true
	st.lastBeat = time.Now()
	st.inFlight = inFlight
	st.speed = speed
	if draining {
		st.draining = true
	}
}

// DeregisterSeD removes a drained daemon from the scheduler's table. It
// refuses (returning false) unless the entry matches addr, is draining, and
// holds no leases and no outstanding scheduler requests — the autoscaler
// polls Stats until those gauges read zero, so removal can never strand an
// in-flight chunk. The SeD's own heartbeats must stop before or promptly
// after this call; a straggling draining beat cannot re-create the entry
// (see register).
func (s *Scheduler) DeregisterSeD(cluster, addr string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.seds[cluster]
	if st == nil || st.info.Addr != addr || !st.draining || st.leases > 0 || len(st.sem) > 0 {
		return false
	}
	delete(s.seds, cluster)
	return true
}

// sedRef pairs a daemon's state with an info snapshot taken under the
// mutex: register() overwrites st.info on every heartbeat, so code off the
// lock must work from the snapshot, never from st.info directly.
type sedRef struct {
	st   *sedState
	info diet.SeDInfo
}

// aliveSeDs snapshots the dispatchable daemons in deterministic (cluster
// name) order, so repartition tie-breaks do not depend on map iteration.
// Draining daemons are excluded — they finish what they hold, nothing new
// lands on them. Every returned daemon is leased: the caller owns one lease
// per ref and must hand the same slice to releaseSeDs once the round's
// results are processed. The drain flag and the snapshot are serialized by
// s.mu, so a daemon either drains before a snapshot (excluded) or after
// (lease held until its chunks banked) — never in between.
func (s *Scheduler) aliveSeDs() []sedRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]sedRef, 0, len(s.seds))
	for _, st := range s.seds {
		if st.alive && !st.draining {
			st.leases++
			out = append(out, sedRef{st: st, info: st.info})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].info.Cluster < out[j].info.Cluster })
	return out
}

// releaseSeDs returns the leases aliveSeDs took. Called once per snapshot,
// after the round that used it has fully processed its results.
func (s *Scheduler) releaseSeDs(refs []sedRef) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ref := range refs {
		ref.st.leases--
	}
}

// markDead records a failed exchange with a SeD: it leaves the pool until a
// heartbeat revives it.
func (s *Scheduler) markDead(st *sedState, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Only kill the entry if it still describes the daemon we talked to; a
	// replacement may have re-registered under the same cluster meanwhile.
	if st.alive && st.info.Addr == addr {
		st.alive = false
		s.evicted++
	}
}

// vector returns the SeD's performance vector for at least n scenarios,
// serving from the per-SeD cache when possible.
func (s *Scheduler) vector(ref sedRef, n, months int, heuristic string) ([]float64, error) {
	key := vecKey{months: months, heuristic: heuristic}
	s.mu.Lock()
	if v := ref.st.vectors[key]; len(v) >= n {
		s.mu.Unlock()
		return v[:n:n], nil
	}
	s.mu.Unlock()

	resp, err := diet.RoundTripTimeout(ref.info.Addr, &diet.Request{Version: diet.ProtocolVersion, Kind: diet.KindPerf, Perf: &diet.PerfRequest{
		Scenarios: n,
		Months:    months,
		Heuristic: heuristic,
	}}, sedCallTimeout)
	if err != nil {
		return nil, err
	}
	if resp.Perf == nil || len(resp.Perf.Vector) < n {
		return nil, fmt.Errorf("grid: SeD %s returned a short vector", ref.info.Cluster)
	}
	vec := resp.Perf.Vector
	s.mu.Lock()
	if len(vec) > len(ref.st.vectors[key]) {
		ref.st.vectors[key] = vec
	}
	s.mu.Unlock()
	return vec[:n:n], nil
}

// sedCallTimeout bounds one scheduler→SeD exchange. Evaluations are virtual
// time and fast, but a loaded box (CI under the race detector) can stall a
// goroutine well past the transport's 5s default.
const sedCallTimeout = 30 * time.Second

// Stats snapshots the scheduler's gauges and the SeD table.
func (s *Scheduler) Stats() diet.StatsResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := diet.StatsResponse{
		QueueDepth:    s.queueLen,
		MaxQueueDepth: s.maxQueue,
		Running:       s.running,
		Completed:     s.completed,
		Failed:        s.failed,
		Cancelled:     s.cancelled,
		Rejected:      s.rejected,
		Requeues:      s.requeues,
		Evicted:       s.evicted,
	}
	now := time.Now()
	for _, st := range s.seds {
		out.SeDs = append(out.SeDs, diet.SeDStatus{
			Cluster:     st.info.Cluster,
			Addr:        st.info.Addr,
			Procs:       st.info.Procs,
			Alive:       st.alive,
			InFlight:    st.inFlight,
			Outstanding: len(st.sem),
			SinceBeat:   now.Sub(st.lastBeat),
			Speed:       st.speed,
			Draining:    st.draining,
			Leases:      st.leases,
		})
	}
	for _, t := range s.tenants {
		for _, c := range t.queue {
			if wait := now.Sub(c.enqueuedAt); wait > 0 {
				if ms := float64(wait) / float64(time.Millisecond); ms > out.OldestWaitMs {
					out.OldestWaitMs = ms
				}
			}
		}
	}
	sort.Slice(out.SeDs, func(i, j int) bool { return out.SeDs[i].Cluster < out.SeDs[j].Cluster })
	for _, t := range s.tenants {
		out.Tenants = append(out.Tenants, diet.TenantStatus{
			Tenant:        t.name,
			Weight:        t.weight,
			Queued:        t.queued,
			Running:       t.running,
			Admitted:      t.admitted,
			Completed:     t.completed,
			Failed:        t.failed,
			Cancelled:     t.cancelled,
			QuotaRejected: t.quotaRejected,
			WaitCount:     t.waitCount,
			WaitSumMs:     float64(t.waitSum) / float64(time.Millisecond),
			WaitMaxMs:     float64(t.waitMax) / float64(time.Millisecond),
		})
	}
	sort.Slice(out.Tenants, func(i, j int) bool { return out.Tenants[i].Tenant < out.Tenants[j].Tenant })
	return out
}

// admit applies admission control and enqueues a campaign. A malformed
// request returns an error (a protocol-level failure the client must not
// retry); a full queue or an exhausted tenant quota returns a nil campaign
// with Accepted=false and the matching reject code (a transient verdict
// worth retrying).
func (s *Scheduler) admit(req *diet.SubmitRequest) (*campaign, *diet.SubmitResponse, error) {
	app := core.Application{Scenarios: req.Scenarios, Months: req.Months}
	if err := app.Validate(); err != nil {
		return nil, nil, err
	}
	if _, err := core.ByName(req.Heuristic); err != nil {
		return nil, nil, err
	}
	tenantName := s.tenantName(req.Labels)
	s.mu.Lock()
	if s.queueLen >= s.cfg.QueueCap {
		s.rejected++
		depth := s.queueLen
		s.mu.Unlock()
		return nil, &diet.SubmitResponse{Reason: "queue full", Code: diet.RejectQueueFull, QueueDepth: depth}, nil
	}
	tenantName = s.canonicalTenant(tenantName)
	// The quota check reads existing state only: a tenant without state has
	// nothing queued, so it cannot be over quota — and a rejected submission
	// must not leave persistent per-tenant state (and /metrics series)
	// behind.
	if quota := s.quotaFor(tenantName); quota > 0 {
		if t := s.tenants[tenantName]; t != nil && t.queued >= quota {
			s.rejected++
			t.quotaRejected++
			depth := s.queueLen
			s.mu.Unlock()
			return nil, &diet.SubmitResponse{
				Reason:     fmt.Sprintf("tenant %q admission quota (%d queued) exhausted", tenantName, quota),
				Code:       diet.RejectQuota,
				QueueDepth: depth,
			}, nil
		}
	}
	t := s.tenant(tenantName)
	// Ring members mint only IDs they are home for (ownedIDAfter skips the
	// rest), so two shards can never allocate the same campaign ID however
	// their liveness views diverge; standalone daemons allocate densely.
	s.nextID = s.ownedIDAfter(s.nextID)
	c := newCampaign(s.nextID, app, req.Heuristic, submitMeta{
		priority: req.Priority,
		labels:   req.Labels,
		deadline: req.Deadline,
	})
	c.tenant = tenantName
	c.enqueuedAt = time.Now()
	// Reserve the queue slot (global and tenant) before the journal write:
	// concurrent admissions must never overshoot the admission bound (and
	// with it the token channel's capacity) or the tenant quota.
	s.queueLen++
	if s.queueLen > s.maxQueue {
		s.maxQueue = s.queueLen
	}
	t.queued++
	t.admitted++
	depth := s.queueLen
	s.mu.Unlock()
	// The admission record must be durable before the verdict goes out: an
	// ID the client holds has to survive a crash, or Attach after a restart
	// would deny a campaign the daemon accepted. The submit options are part
	// of the record, so re-admission after a restart keeps the campaign's
	// priority and labels. The campaign enters the table only after the
	// record is durable — were it visible earlier, a Cancel racing the
	// admission could journal its terminal record ahead of the admitted one,
	// and replay (which drops records of unknown campaigns) would resurrect
	// the campaign as live.
	if s.store != nil {
		if err := s.store.Append(store.Record{
			Kind:      store.KindAdmitted,
			ID:        c.id,
			Scenarios: app.Scenarios,
			Months:    app.Months,
			Heuristic: req.Heuristic,
			Priority:  req.Priority,
			Labels:    req.Labels,
			Deadline:  req.Deadline,
		}); err != nil {
			s.mu.Lock()
			s.queueLen--
			s.rejected++
			t.queued--
			t.admitted--
			s.mu.Unlock()
			return nil, nil, fmt.Errorf("grid: journaling admission: %w", err)
		}
	}
	s.mu.Lock()
	s.campaigns[c.id] = c
	s.enqueue(c)
	s.mu.Unlock()
	return c, &diet.SubmitResponse{ID: c.id, Accepted: true, QueueDepth: depth}, nil
}

// enqueue puts a campaign whose queue slots are already reserved (queueLen
// and its tenant's queued counted) on its tenant's queue and signals a
// dispatcher. A tenant going idle→backlogged gets its virtual finish tag
// stamped here, start-time-fair style: max(vtime, old tag) + 1/weight. The
// max keeps an idle tenant from banking credit while away (it re-enters at
// the current virtual time, it does not lock out the others), while a
// backlogged tenant's tag is left alone — it must keep the credit it
// accumulated waiting, or a heavier tenant would re-shadow it every pop and
// starve it. Callers hold s.mu; queueLen never exceeds cap(tokens), so the
// token send cannot block.
func (s *Scheduler) enqueue(c *campaign) {
	t := s.tenant(c.tenant)
	if len(t.queue) == 0 {
		t.vfinish = math.Max(s.vtime, t.vfinish) + 1/t.weight
	}
	t.queue = append(t.queue, c)
	s.tokens <- struct{}{}
}

// effPriority is a queued campaign's dispatch priority at now: its submit
// priority plus one aging boost per AgeAfter waited. Aging bounds
// within-tenant starvation — a priority-0 campaign under a sustained
// priority-P stream dispatches after at most P aging intervals.
func (s *Scheduler) effPriority(c *campaign, now time.Time) int {
	if s.cfg.AgeAfter <= 0 {
		return c.priority
	}
	return c.priority + int(now.Sub(c.enqueuedAt)/s.cfg.AgeAfter)
}

// dequeue runs the weighted-fair pick after a token was consumed: among
// tenants with queued campaigns, dispatch the one with the earliest virtual
// finish tag (stamped at enqueue, advanced by 1/weight per dispatch while
// backlogged) — over any contended stretch each tenant's dispatch share
// tracks its weight, so no tenant starves whatever the others' priorities
// or submit rates. Within the winning tenant the pick is by effective
// (aged) priority, then admission order. Ties across tenants break by
// name, keeping the schedule deterministic. Callers hold no lock.
func (s *Scheduler) dequeue() *campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	var winner *tenantState
	for _, t := range s.tenants {
		if len(t.queue) == 0 {
			continue
		}
		if winner == nil || t.vfinish < winner.vfinish ||
			(t.vfinish == winner.vfinish && t.name < winner.name) {
			winner = t
		}
	}
	t := winner // a token was consumed, so some tenant has a campaign
	if t.vfinish > s.vtime {
		s.vtime = t.vfinish
	}

	now := time.Now()
	best := 0
	for i := 1; i < len(t.queue); i++ {
		bi, bc := t.queue[i], t.queue[best]
		pi, pb := s.effPriority(bi, now), s.effPriority(bc, now)
		if pi > pb || (pi == pb && bi.id < bc.id) {
			best = i
		}
	}
	c := t.queue[best]
	t.queue = append(t.queue[:best], t.queue[best+1:]...)
	t.queued--
	s.queueLen--
	if len(t.queue) > 0 {
		// Still backlogged: the next campaign's finish tag is one more
		// weighted slot past the one just consumed.
		t.vfinish = math.Max(s.vtime, t.vfinish) + 1/t.weight
	}
	return c
}

// noteDispatched moves a freshly popped campaign into the running gauges
// and records its queue wait — the per-tenant fairness signal. Corpses
// (campaigns cancelled while queued) never get here.
func (s *Scheduler) noteDispatched(c *campaign) {
	wait := time.Since(c.enqueuedAt)
	c.mu.Lock()
	if !c.claimed {
		c.queueWait = wait
		c.dispatched = true
	}
	c.mu.Unlock()
	s.mu.Lock()
	s.running++
	t := s.tenant(c.tenant)
	t.running++
	t.waitCount++
	t.waitSum += wait
	if wait > t.waitMax {
		t.waitMax = wait
	}
	s.mu.Unlock()
}

// bumpRunning moves a popped campaign into the running gauges without
// recording a queue wait: the shutdown drain's pops are not dispatches,
// and counting their waits would skew the per-tenant fairness moments
// (waitMax especially) with services that never happened.
func (s *Scheduler) bumpRunning(c *campaign) {
	s.mu.Lock()
	s.running++
	s.tenant(c.tenant).running++
	s.mu.Unlock()
}

// releaseRunning backs a campaign out of the running gauges — the
// dispatcher's bookkeeping when a cancel owned the terminal transition.
func (s *Scheduler) releaseRunning(c *campaign) {
	s.mu.Lock()
	s.running--
	s.tenant(c.tenant).running--
	s.mu.Unlock()
}

// retainedIDs snapshots the campaign table's keys — the journal rotation's
// retention set. Runs under the store's lock; safe because the scheduler
// never journals while holding s.mu.
func (s *Scheduler) retainedIDs() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return store.IDs(s.campaigns)
}

// lookup returns a campaign by ID.
func (s *Scheduler) lookup(id uint64) *campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[id]
}

// finish moves a campaign out of the running gauges and prunes the oldest
// finished entries beyond the retention cap.
func (s *Scheduler) finish(c *campaign, failed bool) {
	s.mu.Lock()
	s.running--
	t := s.tenant(c.tenant)
	t.running--
	if failed {
		s.failed++
		t.failed++
	} else {
		s.completed++
		t.completed++
	}
	s.retire(c)
	s.mu.Unlock()
}

// retire appends a terminal campaign to the retention order and prunes past
// the cap. Callers hold s.mu.
func (s *Scheduler) retire(c *campaign) {
	s.doneOrder = append(s.doneOrder, c.id)
	for len(s.doneOrder) > s.cfg.KeepFinished {
		delete(s.campaigns, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
}

// Cancel aborts a campaign by ID: a queued campaign never dispatches, a
// running one stops cooperatively at the next chunk boundary — its in-flight
// SeD exchanges are abandoned and their reports discarded, so no chunk frame
// follows the verdict. The cancellation is journaled terminally before the
// verdict is returned (WAL-before-ack): a cancelled campaign stays cancelled
// across a kill -9 restart and is never re-admitted by replay. found=false
// means the scheduler does not know the ID; status is the campaign's state
// after the verdict — cancelling an already-terminal campaign is a no-op
// that reports the terminal state that won.
func (s *Scheduler) Cancel(id uint64) (found bool, status string) {
	c := s.lookup(id)
	if c == nil {
		return false, ""
	}
	if !c.claim() {
		// Some other terminal transition (completion, failure, or an earlier
		// cancel) owns the campaign; its status is the verdict. The loser of
		// a claim race may observe the winner's fields only after complete()
		// runs, so wait for the terminal state.
		<-c.done
		return true, c.snapshot().Status
	}
	// Stop work first — in-flight SeD round trips abort on the closed cancel
	// channel — then make the cancellation durable, then publish it.
	c.signalCancel()
	s.journal(store.Record{Kind: store.KindCancelled, ID: c.id})
	c.mu.Lock()
	reports := append([]diet.ExecResponse(nil), c.reports...)
	requeues := c.requeues
	c.mu.Unlock()
	sortReports(reports)
	c.complete(diet.CampaignCancelled, 0, reports, requeues, "")
	// Gauge discipline: a still-queued campaign keeps its queue slot until a
	// dispatcher pops the corpse and skips it (see dispatchLoop); a running
	// campaign's dispatcher notices the lost claim and backs out of the
	// running gauge itself. Cancel only counts and retires.
	s.mu.Lock()
	s.cancelled++
	s.tenant(c.tenant).cancelled++
	s.retire(c)
	s.mu.Unlock()
	return true, diet.CampaignCancelled
}

// queuePositions snapshots every queued campaign's 1-based dispatch
// position within its tenant's queue, by effective priority at now then
// admission order — the order dequeue would serve them if nothing else
// aged across a boundary meanwhile.
func (s *Scheduler) queuePositions() map[uint64]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	pos := make(map[uint64]int)
	for _, t := range s.tenants {
		q := append([]*campaign(nil), t.queue...)
		sort.Slice(q, func(i, j int) bool {
			pi, pj := s.effPriority(q[i], now), s.effPriority(q[j], now)
			if pi != pj {
				return pi > pj
			}
			return q[i].id < q[j].id
		})
		for i, c := range q {
			pos[c.id] = i + 1
		}
	}
	return pos
}

// queuePosition computes one campaign's 1-based dispatch position within
// its tenant's queue — the rank queuePositions would assign it — without
// materializing the batch snapshot: a single pass over the one tenant's
// queue counting campaigns that would dispatch at or before it. 0 when the
// campaign is not queued. This is the single-ID Info path: under a deep
// queue it allocates nothing, where the batch snapshot copies and sorts
// every tenant's queue per call.
//
//oalint:hotpath
func (s *Scheduler) queuePosition(c *campaign) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[c.tenant]
	if t == nil {
		return 0
	}
	now := time.Now()
	pc := s.effPriority(c, now)
	rank, found := 0, false
	for _, q := range t.queue {
		if q == c {
			rank++
			found = true
			continue
		}
		pq := s.effPriority(q, now)
		if pq > pc || (pq == pc && q.id < c.id) {
			rank++
		}
	}
	if !found {
		return 0
	}
	return rank
}

// CampaignInfo snapshots one campaign's control-plane view; an unknown ID
// comes back with Found unset.
func (s *Scheduler) CampaignInfo(id uint64) *diet.CampaignInfo {
	c := s.lookup(id)
	if c == nil {
		return &diet.CampaignInfo{ID: id}
	}
	info := c.info()
	info.QueuePos = s.queuePosition(c)
	return &info
}

// ListCampaigns enumerates the campaign table in admission (ID) order,
// filtered by status and label subset when the request carries them.
func (s *Scheduler) ListCampaigns(req *diet.ListCampaignsRequest) []diet.CampaignInfo {
	s.mu.Lock()
	all := make([]*campaign, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		all = append(all, c)
	}
	s.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	pos := s.queuePositions()
	out := make([]diet.CampaignInfo, 0, len(all))
	for _, c := range all {
		info := c.info()
		info.QueuePos = pos[c.id]
		if req != nil && req.Status != "" && info.Status != req.Status {
			continue
		}
		if req != nil && !diet.LabelsMatch(info.Labels, req.Labels) {
			continue
		}
		out = append(out, info)
	}
	return out
}
