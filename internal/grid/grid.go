// Package grid is the online scheduling layer of the DIET hierarchy: a
// long-running master-agent daemon that serves simulation campaigns as a
// service instead of answering one-shot registry queries.
//
// The paper submits ocean-atmosphere campaigns through a DIET MA/SeD tree;
// internal/diet reproduces the six-step protocol of its Figure 9 for a
// single client-driven run. This package turns the master agent into a
// service under load:
//
//	client ──submit──▶ bounded queue ──▶ dispatchers ──▶ SeD pool
//	                  (admission        (per-campaign    (per-SeD in-flight
//	                   control)          protocol run)    limits, heartbeat
//	                                                      eviction, requeue)
//
// A campaign is one full protocol round — performance vectors, Algorithm-1
// repartition, per-cluster execution — run against whatever SeDs are alive
// when the campaign reaches the head of the queue. SeDs beacon liveness;
// daemons that miss the heartbeat deadline are evicted and the scenario
// chunks they held are re-repartitioned across the survivors, so a SeD
// killed mid-campaign costs a requeue, not the campaign. Every evaluation a
// SeD performs goes through internal/engine's batched sweep, which keeps
// results bit-identical to a serial run.
//
// The scheduler speaks the internal/diet gob-over-TCP protocol and is a
// strict superset of the passive MasterAgent: register/list still work, so
// the legacy diet.Client can run its one-shot protocol against a live
// daemon unchanged.
package grid

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/diet"
	"oagrid/internal/store"
)

// Config tunes the scheduler daemon. The zero value of each field picks the
// default documented on it.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// QueueCap bounds the campaign queue; submissions beyond it are rejected
	// at admission (default 64).
	QueueCap int
	// Dispatchers is the number of campaigns served concurrently
	// (default 4).
	Dispatchers int
	// PerSeDInFlight caps concurrent requests the scheduler keeps open
	// against one SeD (default 4).
	PerSeDInFlight int
	// EvictAfter is the heartbeat deadline: a SeD silent for longer is
	// marked dead and excluded from new dispatches (default 3s).
	EvictAfter time.Duration
	// RetryEvery paces campaign retries while no SeD is alive
	// (default 25ms).
	RetryEvery time.Duration
	// CampaignTimeout bounds one campaign end to end, including requeues
	// (default 2m).
	CampaignTimeout time.Duration
	// KeepFinished caps how many finished campaigns stay pollable before
	// the oldest are forgotten (default 4096).
	KeepFinished int
	// RotateBytes arms online WAL rotation: once the live journal segment
	// grows past this many bytes, the next append checkpoints it down to the
	// retained campaigns' records — so a long-lived daemon's campaigns.wal
	// stays bounded between restarts, not just across them. 0 picks the
	// default (4 MiB); negative disables rotation (append-only until the
	// next restart's compaction). Ignored without a StateDir.
	RotateBytes int64
	// StateDir, when non-empty, makes the scheduler durable: every campaign
	// transition is journaled to an append-only WAL under the directory
	// before it is acknowledged, and a scheduler restarted on the same
	// directory replays the journal — terminal campaigns stay pollable and
	// attachable under their original IDs, non-terminal campaigns are
	// re-admitted with their unfinished scenarios requeued. Empty keeps the
	// scheduler purely in-memory.
	StateDir string
	// MaxProtocol caps the protocol version this daemon negotiates (0 means
	// the build's newest). A daemon capped below v4 also refuses binary
	// connections, exactly like a real pre-v4 build — the staged-rollout
	// knob, and how tests stand up an old-generation daemon.
	MaxProtocol int
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Dispatchers <= 0 {
		c.Dispatchers = 4
	}
	if c.PerSeDInFlight <= 0 {
		c.PerSeDInFlight = 4
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 3 * time.Second
	}
	if c.RetryEvery <= 0 {
		c.RetryEvery = 25 * time.Millisecond
	}
	if c.CampaignTimeout <= 0 {
		c.CampaignTimeout = 2 * time.Minute
	}
	if c.KeepFinished <= 0 {
		c.KeepFinished = 4096
	}
	if c.RotateBytes == 0 {
		c.RotateBytes = 4 << 20
	}
	return c
}

// vecKey identifies a cached performance vector. Entry k-1 of a vector is
// the makespan of k scenarios — independent of how many scenarios the
// campaign that fetched it had — so the cache keys on (months, heuristic)
// and keeps the longest vector seen per SeD.
type vecKey struct {
	months    int
	heuristic string
}

// sedState is the scheduler's view of one server daemon.
type sedState struct {
	info     diet.SeDInfo
	alive    bool
	lastBeat time.Time
	inFlight int
	// sem enforces the per-SeD in-flight limit; it survives re-registration
	// so tokens held across an eviction/rejoin stay accounted.
	sem     chan struct{}
	vectors map[vecKey][]float64
}

// Scheduler is the online master agent.
type Scheduler struct {
	cfg   Config
	ln    net.Listener
	store *store.Store // nil without a StateDir

	// tokens carries one signal per enqueued campaign; the campaign itself
	// sits in the priority-ordered pq under mu. A dispatcher first takes a
	// token, then pops the highest-priority campaign — so admission order
	// only breaks ties, never priority.
	tokens chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup

	mu        sync.Mutex
	pq        campaignQueue
	seds      map[string]*sedState
	campaigns map[uint64]*campaign
	doneOrder []uint64
	nextID    uint64
	queueLen  int
	maxQueue  int
	running   int
	completed uint64
	failed    uint64
	cancelled uint64
	rejected  uint64
	requeues  uint64
	evicted   uint64
}

// Start listens on cfg.Addr and begins serving. With a StateDir, the
// journal found there is replayed first: terminal campaigns come back
// pollable, non-terminal campaigns are re-admitted ahead of new traffic.
func Start(cfg Config) (*Scheduler, error) {
	cfg = cfg.withDefaults()

	var st *store.Store
	var byID map[uint64]*store.Campaign
	if cfg.StateDir != "" {
		var err error
		st, byID, err = store.Open(cfg.StateDir)
		if err != nil {
			return nil, err
		}
	}
	recovered := store.ByID(byID)

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		if st != nil {
			st.Close()
		}
		return nil, fmt.Errorf("grid: scheduler listen: %w", err)
	}

	// Size the queue to hold the recovered backlog on top of the admission
	// bound: re-admission must never block startup, even after a crash with
	// a full queue.
	live := 0
	for _, rc := range recovered {
		if !rc.Terminal() {
			live++
		}
	}
	s := &Scheduler{
		cfg:       cfg,
		ln:        ln,
		store:     st,
		tokens:    make(chan struct{}, cfg.QueueCap+live),
		done:      make(chan struct{}),
		seds:      make(map[string]*sedState),
		campaigns: make(map[uint64]*campaign),
	}
	s.nextID = store.MaxID(byID)

	// Rebuild the campaign table and re-admit the unfinished backlog in
	// original admission order, before the dispatchers start. Recovered
	// campaigns keep their journaled priority; among equal priorities their
	// lower IDs put them ahead of any new traffic.
	for _, rc := range recovered {
		c := recoveredCampaign(rc)
		s.campaigns[c.id] = c
		if rc.Terminal() {
			s.doneOrder = append(s.doneOrder, c.id)
			continue
		}
		s.queueLen++
		if s.queueLen > s.maxQueue {
			s.maxQueue = s.queueLen
		}
		s.enqueue(c)
	}
	// Apply the retention cap to the recovered terminal set, then compact
	// the journal down to what survived: without this, replay would
	// resurrect campaigns pruned before the restart and the WAL would grow
	// without bound across restarts. Compaction must happen before the
	// listener opens — it rewrites the journal from the recovered records,
	// so appends racing it would be lost.
	for len(s.doneOrder) > cfg.KeepFinished {
		delete(s.campaigns, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
	if st != nil && len(recovered) > 0 {
		kept := make([]*store.Campaign, 0, len(s.campaigns))
		for _, rc := range recovered {
			if _, ok := s.campaigns[rc.ID]; ok {
				kept = append(kept, rc)
			}
		}
		// Best-effort: a failed compaction leaves the previous journal in
		// place, which replays to at least this state.
		_ = st.Compact(kept)
	}
	// Online rotation: once the live segment outgrows the threshold, the
	// journal is checkpointed down to the campaigns still in the table —
	// retention prunes the table, rotation prunes the file. The retain
	// snapshot takes s.mu, which is safe because the scheduler never appends
	// to the journal while holding it.
	if st != nil && cfg.RotateBytes > 0 {
		st.AutoRotate(cfg.RotateBytes, s.retainedIDs)
	}

	s.wg.Add(1 + cfg.Dispatchers)
	go s.acceptLoop()
	go s.evictLoop()
	for i := 0; i < cfg.Dispatchers; i++ {
		go s.dispatchLoop()
	}
	return s, nil
}

// journal appends one record to the campaign WAL; a no-op without a state
// dir. Mid-run append failures are swallowed: losing a journal line only
// costs re-execution of the affected scenarios after a restart, while
// failing the live campaign would turn a disk hiccup into lost work now.
// The admission record is the exception — admit checks its error, because
// an ID the client holds must always be recoverable.
func (s *Scheduler) journal(rec store.Record) {
	if s.store == nil {
		return
	}
	_ = s.store.Append(rec)
}

// Addr returns the daemon's listen address.
func (s *Scheduler) Addr() string { return s.ln.Addr().String() }

// Close stops the daemon: the listener closes, queued and running campaigns
// fail with a shutdown error, and the worker goroutines drain. With a state
// dir the shutdown failures are not journaled as terminal — a scheduler
// restarted on the same directory re-admits and finishes them.
func (s *Scheduler) Close() error {
	err := s.ln.Close()
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	s.wg.Wait()
	if s.store != nil {
		s.store.Close()
	}
	return err
}

// evictLoop enforces the heartbeat deadline.
func (s *Scheduler) evictLoop() {
	tick := time.NewTicker(s.cfg.EvictAfter / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C:
		}
		now := time.Now()
		s.mu.Lock()
		for _, st := range s.seds {
			if st.alive && now.Sub(st.lastBeat) > s.cfg.EvictAfter {
				st.alive = false
				s.evicted++
			}
		}
		s.mu.Unlock()
	}
}

// register adds or refreshes a SeD entry; beat marks whether the update is a
// heartbeat (refreshing the liveness deadline and reviving evicted entries).
func (s *Scheduler) register(info diet.SeDInfo, inFlight int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.seds[info.Cluster]
	if st == nil {
		st = &sedState{
			sem:     make(chan struct{}, s.cfg.PerSeDInFlight),
			vectors: make(map[vecKey][]float64),
		}
		s.seds[info.Cluster] = st
	}
	if st.info.Addr != "" && st.info.Addr != info.Addr {
		// A replacement daemon for the cluster: its vectors may differ only
		// if the profile changed, but a fresh cache is the safe default.
		st.vectors = make(map[vecKey][]float64)
	}
	st.info = info
	st.alive = true
	st.lastBeat = time.Now()
	st.inFlight = inFlight
}

// sedRef pairs a daemon's state with an info snapshot taken under the
// mutex: register() overwrites st.info on every heartbeat, so code off the
// lock must work from the snapshot, never from st.info directly.
type sedRef struct {
	st   *sedState
	info diet.SeDInfo
}

// aliveSeDs snapshots the dispatchable daemons in deterministic (cluster
// name) order, so repartition tie-breaks do not depend on map iteration.
func (s *Scheduler) aliveSeDs() []sedRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]sedRef, 0, len(s.seds))
	for _, st := range s.seds {
		if st.alive {
			out = append(out, sedRef{st: st, info: st.info})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].info.Cluster < out[j].info.Cluster })
	return out
}

// markDead records a failed exchange with a SeD: it leaves the pool until a
// heartbeat revives it.
func (s *Scheduler) markDead(st *sedState, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Only kill the entry if it still describes the daemon we talked to; a
	// replacement may have re-registered under the same cluster meanwhile.
	if st.alive && st.info.Addr == addr {
		st.alive = false
		s.evicted++
	}
}

// vector returns the SeD's performance vector for at least n scenarios,
// serving from the per-SeD cache when possible.
func (s *Scheduler) vector(ref sedRef, n, months int, heuristic string) ([]float64, error) {
	key := vecKey{months: months, heuristic: heuristic}
	s.mu.Lock()
	if v := ref.st.vectors[key]; len(v) >= n {
		s.mu.Unlock()
		return v[:n:n], nil
	}
	s.mu.Unlock()

	resp, err := diet.RoundTripTimeout(ref.info.Addr, &diet.Request{Version: diet.ProtocolVersion, Kind: diet.KindPerf, Perf: &diet.PerfRequest{
		Scenarios: n,
		Months:    months,
		Heuristic: heuristic,
	}}, sedCallTimeout)
	if err != nil {
		return nil, err
	}
	if resp.Perf == nil || len(resp.Perf.Vector) < n {
		return nil, fmt.Errorf("grid: SeD %s returned a short vector", ref.info.Cluster)
	}
	vec := resp.Perf.Vector
	s.mu.Lock()
	if len(vec) > len(ref.st.vectors[key]) {
		ref.st.vectors[key] = vec
	}
	s.mu.Unlock()
	return vec[:n:n], nil
}

// sedCallTimeout bounds one scheduler→SeD exchange. Evaluations are virtual
// time and fast, but a loaded box (CI under the race detector) can stall a
// goroutine well past the transport's 5s default.
const sedCallTimeout = 30 * time.Second

// Stats snapshots the scheduler's gauges and the SeD table.
func (s *Scheduler) Stats() diet.StatsResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := diet.StatsResponse{
		QueueDepth:    s.queueLen,
		MaxQueueDepth: s.maxQueue,
		Running:       s.running,
		Completed:     s.completed,
		Failed:        s.failed,
		Cancelled:     s.cancelled,
		Rejected:      s.rejected,
		Requeues:      s.requeues,
		Evicted:       s.evicted,
	}
	now := time.Now()
	for _, st := range s.seds {
		out.SeDs = append(out.SeDs, diet.SeDStatus{
			Cluster:     st.info.Cluster,
			Addr:        st.info.Addr,
			Procs:       st.info.Procs,
			Alive:       st.alive,
			InFlight:    st.inFlight,
			Outstanding: len(st.sem),
			SinceBeat:   now.Sub(st.lastBeat),
		})
	}
	sort.Slice(out.SeDs, func(i, j int) bool { return out.SeDs[i].Cluster < out.SeDs[j].Cluster })
	return out
}

// admit applies admission control and enqueues a campaign. A malformed
// request returns an error (a protocol-level failure the client must not
// retry); a full queue returns a nil campaign with Accepted=false (a
// transient verdict worth retrying).
func (s *Scheduler) admit(req *diet.SubmitRequest) (*campaign, *diet.SubmitResponse, error) {
	app := core.Application{Scenarios: req.Scenarios, Months: req.Months}
	if err := app.Validate(); err != nil {
		return nil, nil, err
	}
	if _, err := core.ByName(req.Heuristic); err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	if s.queueLen >= s.cfg.QueueCap {
		s.rejected++
		depth := s.queueLen
		s.mu.Unlock()
		return nil, &diet.SubmitResponse{Reason: "queue full", QueueDepth: depth}, nil
	}
	s.nextID++
	c := newCampaign(s.nextID, app, req.Heuristic, submitMeta{
		priority: req.Priority,
		labels:   req.Labels,
		deadline: req.Deadline,
	})
	// Reserve the queue slot before the journal write: concurrent admissions
	// must never overshoot the admission bound (and with it the token
	// channel's capacity).
	s.queueLen++
	if s.queueLen > s.maxQueue {
		s.maxQueue = s.queueLen
	}
	depth := s.queueLen
	s.mu.Unlock()
	// The admission record must be durable before the verdict goes out: an
	// ID the client holds has to survive a crash, or Attach after a restart
	// would deny a campaign the daemon accepted. The submit options are part
	// of the record, so re-admission after a restart keeps the campaign's
	// priority and labels. The campaign enters the table only after the
	// record is durable — were it visible earlier, a Cancel racing the
	// admission could journal its terminal record ahead of the admitted one,
	// and replay (which drops records of unknown campaigns) would resurrect
	// the campaign as live.
	if s.store != nil {
		if err := s.store.Append(store.Record{
			Kind:      store.KindAdmitted,
			ID:        c.id,
			Scenarios: app.Scenarios,
			Months:    app.Months,
			Heuristic: req.Heuristic,
			Priority:  req.Priority,
			Labels:    req.Labels,
			Deadline:  req.Deadline,
		}); err != nil {
			s.mu.Lock()
			s.queueLen--
			s.rejected++
			s.mu.Unlock()
			return nil, nil, fmt.Errorf("grid: journaling admission: %w", err)
		}
	}
	s.mu.Lock()
	s.campaigns[c.id] = c
	s.enqueue(c)
	s.mu.Unlock()
	return c, &diet.SubmitResponse{ID: c.id, Accepted: true, QueueDepth: depth}, nil
}

// enqueue puts a campaign whose queue slot is already reserved (queueLen
// counted) on the priority queue and signals a dispatcher. Callers hold
// s.mu; queueLen never exceeds cap(tokens), so the token send cannot block.
func (s *Scheduler) enqueue(c *campaign) {
	heapPush(&s.pq, c)
	s.tokens <- struct{}{}
}

// dequeue pops the highest-priority queued campaign after its token was
// consumed. Callers hold no lock.
func (s *Scheduler) dequeue() *campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := heapPop(&s.pq)
	s.queueLen--
	return c
}

// retainedIDs snapshots the campaign table's keys — the journal rotation's
// retention set. Runs under the store's lock; safe because the scheduler
// never journals while holding s.mu.
func (s *Scheduler) retainedIDs() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return store.IDs(s.campaigns)
}

// lookup returns a campaign by ID.
func (s *Scheduler) lookup(id uint64) *campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[id]
}

// finish moves a campaign out of the running gauge and prunes the oldest
// finished entries beyond the retention cap.
func (s *Scheduler) finish(c *campaign, failed bool) {
	s.mu.Lock()
	s.running--
	if failed {
		s.failed++
	} else {
		s.completed++
	}
	s.retire(c)
	s.mu.Unlock()
}

// retire appends a terminal campaign to the retention order and prunes past
// the cap. Callers hold s.mu.
func (s *Scheduler) retire(c *campaign) {
	s.doneOrder = append(s.doneOrder, c.id)
	for len(s.doneOrder) > s.cfg.KeepFinished {
		delete(s.campaigns, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
}

// Cancel aborts a campaign by ID: a queued campaign never dispatches, a
// running one stops cooperatively at the next chunk boundary — its in-flight
// SeD exchanges are abandoned and their reports discarded, so no chunk frame
// follows the verdict. The cancellation is journaled terminally before the
// verdict is returned (WAL-before-ack): a cancelled campaign stays cancelled
// across a kill -9 restart and is never re-admitted by replay. found=false
// means the scheduler does not know the ID; status is the campaign's state
// after the verdict — cancelling an already-terminal campaign is a no-op
// that reports the terminal state that won.
func (s *Scheduler) Cancel(id uint64) (found bool, status string) {
	c := s.lookup(id)
	if c == nil {
		return false, ""
	}
	if !c.claim() {
		// Some other terminal transition (completion, failure, or an earlier
		// cancel) owns the campaign; its status is the verdict. The loser of
		// a claim race may observe the winner's fields only after complete()
		// runs, so wait for the terminal state.
		<-c.done
		return true, c.snapshot().Status
	}
	// Stop work first — in-flight SeD round trips abort on the closed cancel
	// channel — then make the cancellation durable, then publish it.
	c.signalCancel()
	s.journal(store.Record{Kind: store.KindCancelled, ID: c.id})
	c.mu.Lock()
	reports := append([]diet.ExecResponse(nil), c.reports...)
	requeues := c.requeues
	c.mu.Unlock()
	sortReports(reports)
	c.complete(diet.CampaignCancelled, 0, reports, requeues, "")
	// Gauge discipline: a still-queued campaign keeps its queue slot until a
	// dispatcher pops the corpse and skips it (see dispatchLoop); a running
	// campaign's dispatcher notices the lost claim and backs out of the
	// running gauge itself. Cancel only counts and retires.
	s.mu.Lock()
	s.cancelled++
	s.retire(c)
	s.mu.Unlock()
	return true, diet.CampaignCancelled
}

// CampaignInfo snapshots one campaign's control-plane view; an unknown ID
// comes back with Found unset.
func (s *Scheduler) CampaignInfo(id uint64) *diet.CampaignInfo {
	c := s.lookup(id)
	if c == nil {
		return &diet.CampaignInfo{ID: id}
	}
	info := c.info()
	return &info
}

// ListCampaigns enumerates the campaign table in admission (ID) order,
// filtered by status and label subset when the request carries them.
func (s *Scheduler) ListCampaigns(req *diet.ListCampaignsRequest) []diet.CampaignInfo {
	s.mu.Lock()
	all := make([]*campaign, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		all = append(all, c)
	}
	s.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	out := make([]diet.CampaignInfo, 0, len(all))
	for _, c := range all {
		info := c.info()
		if req != nil && req.Status != "" && info.Status != req.Status {
			continue
		}
		if req != nil && !diet.LabelsMatch(info.Labels, req.Labels) {
			continue
		}
		out = append(out, info)
	}
	return out
}

// campaignQueue is the admission priority queue: a binary max-heap ordered
// by (priority desc, id asc), so higher-priority campaigns dispatch first
// and equal priorities keep strict admission order. Small enough (bounded by
// QueueCap plus the recovered backlog) that hand-rolled sift beats pulling
// in container/heap's interface indirection.
type campaignQueue []*campaign

// before is the heap order: i dispatches ahead of j.
func (q campaignQueue) before(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].id < q[j].id
}

func heapPush(q *campaignQueue, c *campaign) {
	*q = append(*q, c)
	i := len(*q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.before(i, parent) {
			break
		}
		(*q)[i], (*q)[parent] = (*q)[parent], (*q)[i]
		i = parent
	}
}

func heapPop(q *campaignQueue) *campaign {
	old := *q
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	old[last] = nil
	*q = old[:last]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		best := i
		if left < last && q.before(left, best) {
			best = left
		}
		if right < last && q.before(right, best) {
			best = right
		}
		if best == i {
			return top
		}
		(*q)[i], (*q)[best] = (*q)[best], (*q)[i]
		i = best
	}
}
