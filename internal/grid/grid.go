// Package grid is the online scheduling layer of the DIET hierarchy: a
// long-running master-agent daemon that serves simulation campaigns as a
// service instead of answering one-shot registry queries.
//
// The paper submits ocean-atmosphere campaigns through a DIET MA/SeD tree;
// internal/diet reproduces the six-step protocol of its Figure 9 for a
// single client-driven run. This package turns the master agent into a
// service under load:
//
//	client ──submit──▶ bounded queue ──▶ dispatchers ──▶ SeD pool
//	                  (admission        (per-campaign    (per-SeD in-flight
//	                   control)          protocol run)    limits, heartbeat
//	                                                      eviction, requeue)
//
// A campaign is one full protocol round — performance vectors, Algorithm-1
// repartition, per-cluster execution — run against whatever SeDs are alive
// when the campaign reaches the head of the queue. SeDs beacon liveness;
// daemons that miss the heartbeat deadline are evicted and the scenario
// chunks they held are re-repartitioned across the survivors, so a SeD
// killed mid-campaign costs a requeue, not the campaign. Every evaluation a
// SeD performs goes through internal/engine's batched sweep, which keeps
// results bit-identical to a serial run.
//
// The scheduler speaks the internal/diet gob-over-TCP protocol and is a
// strict superset of the passive MasterAgent: register/list still work, so
// the legacy diet.Client can run its one-shot protocol against a live
// daemon unchanged.
package grid

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/diet"
	"oagrid/internal/store"
)

// Config tunes the scheduler daemon. The zero value of each field picks the
// default documented on it.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// QueueCap bounds the campaign queue; submissions beyond it are rejected
	// at admission (default 64).
	QueueCap int
	// Dispatchers is the number of campaigns served concurrently
	// (default 4).
	Dispatchers int
	// PerSeDInFlight caps concurrent requests the scheduler keeps open
	// against one SeD (default 4).
	PerSeDInFlight int
	// EvictAfter is the heartbeat deadline: a SeD silent for longer is
	// marked dead and excluded from new dispatches (default 3s).
	EvictAfter time.Duration
	// RetryEvery paces campaign retries while no SeD is alive
	// (default 25ms).
	RetryEvery time.Duration
	// CampaignTimeout bounds one campaign end to end, including requeues
	// (default 2m).
	CampaignTimeout time.Duration
	// KeepFinished caps how many finished campaigns stay pollable before
	// the oldest are forgotten (default 4096).
	KeepFinished int
	// StateDir, when non-empty, makes the scheduler durable: every campaign
	// transition is journaled to an append-only WAL under the directory
	// before it is acknowledged, and a scheduler restarted on the same
	// directory replays the journal — terminal campaigns stay pollable and
	// attachable under their original IDs, non-terminal campaigns are
	// re-admitted with their unfinished scenarios requeued. Empty keeps the
	// scheduler purely in-memory.
	StateDir string
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Dispatchers <= 0 {
		c.Dispatchers = 4
	}
	if c.PerSeDInFlight <= 0 {
		c.PerSeDInFlight = 4
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 3 * time.Second
	}
	if c.RetryEvery <= 0 {
		c.RetryEvery = 25 * time.Millisecond
	}
	if c.CampaignTimeout <= 0 {
		c.CampaignTimeout = 2 * time.Minute
	}
	if c.KeepFinished <= 0 {
		c.KeepFinished = 4096
	}
	return c
}

// vecKey identifies a cached performance vector. Entry k-1 of a vector is
// the makespan of k scenarios — independent of how many scenarios the
// campaign that fetched it had — so the cache keys on (months, heuristic)
// and keeps the longest vector seen per SeD.
type vecKey struct {
	months    int
	heuristic string
}

// sedState is the scheduler's view of one server daemon.
type sedState struct {
	info     diet.SeDInfo
	alive    bool
	lastBeat time.Time
	inFlight int
	// sem enforces the per-SeD in-flight limit; it survives re-registration
	// so tokens held across an eviction/rejoin stay accounted.
	sem     chan struct{}
	vectors map[vecKey][]float64
}

// Scheduler is the online master agent.
type Scheduler struct {
	cfg   Config
	ln    net.Listener
	store *store.Store // nil without a StateDir

	queue chan *campaign
	done  chan struct{}
	wg    sync.WaitGroup

	mu        sync.Mutex
	seds      map[string]*sedState
	campaigns map[uint64]*campaign
	doneOrder []uint64
	nextID    uint64
	queueLen  int
	maxQueue  int
	running   int
	completed uint64
	failed    uint64
	rejected  uint64
	requeues  uint64
	evicted   uint64
}

// Start listens on cfg.Addr and begins serving. With a StateDir, the
// journal found there is replayed first: terminal campaigns come back
// pollable, non-terminal campaigns are re-admitted ahead of new traffic.
func Start(cfg Config) (*Scheduler, error) {
	cfg = cfg.withDefaults()

	var st *store.Store
	var byID map[uint64]*store.Campaign
	if cfg.StateDir != "" {
		var err error
		st, byID, err = store.Open(cfg.StateDir)
		if err != nil {
			return nil, err
		}
	}
	recovered := store.ByID(byID)

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		if st != nil {
			st.Close()
		}
		return nil, fmt.Errorf("grid: scheduler listen: %w", err)
	}

	// Size the queue to hold the recovered backlog on top of the admission
	// bound: re-admission must never block startup, even after a crash with
	// a full queue.
	live := 0
	for _, rc := range recovered {
		if !rc.Terminal() {
			live++
		}
	}
	s := &Scheduler{
		cfg:       cfg,
		ln:        ln,
		store:     st,
		queue:     make(chan *campaign, cfg.QueueCap+live),
		done:      make(chan struct{}),
		seds:      make(map[string]*sedState),
		campaigns: make(map[uint64]*campaign),
	}
	s.nextID = store.MaxID(byID)

	// Rebuild the campaign table and re-admit the unfinished backlog in
	// original admission order, before the dispatchers start.
	for _, rc := range recovered {
		c := recoveredCampaign(rc)
		s.campaigns[c.id] = c
		if rc.Terminal() {
			s.doneOrder = append(s.doneOrder, c.id)
			continue
		}
		s.queueLen++
		if s.queueLen > s.maxQueue {
			s.maxQueue = s.queueLen
		}
		s.queue <- c
	}
	// Apply the retention cap to the recovered terminal set, then compact
	// the journal down to what survived: without this, replay would
	// resurrect campaigns pruned before the restart and the WAL would grow
	// without bound across restarts. Compaction must happen before the
	// listener opens — it rewrites the journal from the recovered records,
	// so appends racing it would be lost.
	for len(s.doneOrder) > cfg.KeepFinished {
		delete(s.campaigns, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
	if st != nil && len(recovered) > 0 {
		kept := make([]*store.Campaign, 0, len(s.campaigns))
		for _, rc := range recovered {
			if _, ok := s.campaigns[rc.ID]; ok {
				kept = append(kept, rc)
			}
		}
		// Best-effort: a failed compaction leaves the previous journal in
		// place, which replays to at least this state.
		_ = st.Compact(kept)
	}

	s.wg.Add(1 + cfg.Dispatchers)
	go s.acceptLoop()
	go s.evictLoop()
	for i := 0; i < cfg.Dispatchers; i++ {
		go s.dispatchLoop()
	}
	return s, nil
}

// journal appends one record to the campaign WAL; a no-op without a state
// dir. Mid-run append failures are swallowed: losing a journal line only
// costs re-execution of the affected scenarios after a restart, while
// failing the live campaign would turn a disk hiccup into lost work now.
// The admission record is the exception — admit checks its error, because
// an ID the client holds must always be recoverable.
func (s *Scheduler) journal(rec store.Record) {
	if s.store == nil {
		return
	}
	_ = s.store.Append(rec)
}

// Addr returns the daemon's listen address.
func (s *Scheduler) Addr() string { return s.ln.Addr().String() }

// Close stops the daemon: the listener closes, queued and running campaigns
// fail with a shutdown error, and the worker goroutines drain. With a state
// dir the shutdown failures are not journaled as terminal — a scheduler
// restarted on the same directory re-admits and finishes them.
func (s *Scheduler) Close() error {
	err := s.ln.Close()
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	s.wg.Wait()
	if s.store != nil {
		s.store.Close()
	}
	return err
}

// evictLoop enforces the heartbeat deadline.
func (s *Scheduler) evictLoop() {
	tick := time.NewTicker(s.cfg.EvictAfter / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C:
		}
		now := time.Now()
		s.mu.Lock()
		for _, st := range s.seds {
			if st.alive && now.Sub(st.lastBeat) > s.cfg.EvictAfter {
				st.alive = false
				s.evicted++
			}
		}
		s.mu.Unlock()
	}
}

// register adds or refreshes a SeD entry; beat marks whether the update is a
// heartbeat (refreshing the liveness deadline and reviving evicted entries).
func (s *Scheduler) register(info diet.SeDInfo, inFlight int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.seds[info.Cluster]
	if st == nil {
		st = &sedState{
			sem:     make(chan struct{}, s.cfg.PerSeDInFlight),
			vectors: make(map[vecKey][]float64),
		}
		s.seds[info.Cluster] = st
	}
	if st.info.Addr != "" && st.info.Addr != info.Addr {
		// A replacement daemon for the cluster: its vectors may differ only
		// if the profile changed, but a fresh cache is the safe default.
		st.vectors = make(map[vecKey][]float64)
	}
	st.info = info
	st.alive = true
	st.lastBeat = time.Now()
	st.inFlight = inFlight
}

// sedRef pairs a daemon's state with an info snapshot taken under the
// mutex: register() overwrites st.info on every heartbeat, so code off the
// lock must work from the snapshot, never from st.info directly.
type sedRef struct {
	st   *sedState
	info diet.SeDInfo
}

// aliveSeDs snapshots the dispatchable daemons in deterministic (cluster
// name) order, so repartition tie-breaks do not depend on map iteration.
func (s *Scheduler) aliveSeDs() []sedRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]sedRef, 0, len(s.seds))
	for _, st := range s.seds {
		if st.alive {
			out = append(out, sedRef{st: st, info: st.info})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].info.Cluster < out[j].info.Cluster })
	return out
}

// markDead records a failed exchange with a SeD: it leaves the pool until a
// heartbeat revives it.
func (s *Scheduler) markDead(st *sedState, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Only kill the entry if it still describes the daemon we talked to; a
	// replacement may have re-registered under the same cluster meanwhile.
	if st.alive && st.info.Addr == addr {
		st.alive = false
		s.evicted++
	}
}

// vector returns the SeD's performance vector for at least n scenarios,
// serving from the per-SeD cache when possible.
func (s *Scheduler) vector(ref sedRef, n, months int, heuristic string) ([]float64, error) {
	key := vecKey{months: months, heuristic: heuristic}
	s.mu.Lock()
	if v := ref.st.vectors[key]; len(v) >= n {
		s.mu.Unlock()
		return v[:n:n], nil
	}
	s.mu.Unlock()

	resp, err := diet.RoundTripTimeout(ref.info.Addr, &diet.Request{Kind: diet.KindPerf, Perf: &diet.PerfRequest{
		Scenarios: n,
		Months:    months,
		Heuristic: heuristic,
	}}, sedCallTimeout)
	if err != nil {
		return nil, err
	}
	if resp.Perf == nil || len(resp.Perf.Vector) < n {
		return nil, fmt.Errorf("grid: SeD %s returned a short vector", ref.info.Cluster)
	}
	vec := resp.Perf.Vector
	s.mu.Lock()
	if len(vec) > len(ref.st.vectors[key]) {
		ref.st.vectors[key] = vec
	}
	s.mu.Unlock()
	return vec[:n:n], nil
}

// sedCallTimeout bounds one scheduler→SeD exchange. Evaluations are virtual
// time and fast, but a loaded box (CI under the race detector) can stall a
// goroutine well past the transport's 5s default.
const sedCallTimeout = 30 * time.Second

// Stats snapshots the scheduler's gauges and the SeD table.
func (s *Scheduler) Stats() diet.StatsResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := diet.StatsResponse{
		QueueDepth:    s.queueLen,
		MaxQueueDepth: s.maxQueue,
		Running:       s.running,
		Completed:     s.completed,
		Failed:        s.failed,
		Rejected:      s.rejected,
		Requeues:      s.requeues,
		Evicted:       s.evicted,
	}
	now := time.Now()
	for _, st := range s.seds {
		out.SeDs = append(out.SeDs, diet.SeDStatus{
			Cluster:     st.info.Cluster,
			Addr:        st.info.Addr,
			Procs:       st.info.Procs,
			Alive:       st.alive,
			InFlight:    st.inFlight,
			Outstanding: len(st.sem),
			SinceBeat:   now.Sub(st.lastBeat),
		})
	}
	sort.Slice(out.SeDs, func(i, j int) bool { return out.SeDs[i].Cluster < out.SeDs[j].Cluster })
	return out
}

// admit applies admission control and enqueues a campaign. A malformed
// request returns an error (a protocol-level failure the client must not
// retry); a full queue returns a nil campaign with Accepted=false (a
// transient verdict worth retrying).
func (s *Scheduler) admit(req *diet.SubmitRequest) (*campaign, *diet.SubmitResponse, error) {
	app := core.Application{Scenarios: req.Scenarios, Months: req.Months}
	if err := app.Validate(); err != nil {
		return nil, nil, err
	}
	if _, err := core.ByName(req.Heuristic); err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	if s.queueLen >= s.cfg.QueueCap {
		s.rejected++
		depth := s.queueLen
		s.mu.Unlock()
		return nil, &diet.SubmitResponse{Reason: "queue full", QueueDepth: depth}, nil
	}
	s.nextID++
	c := newCampaign(s.nextID, app, req.Heuristic)
	s.campaigns[c.id] = c
	s.queueLen++
	if s.queueLen > s.maxQueue {
		s.maxQueue = s.queueLen
	}
	depth := s.queueLen
	s.mu.Unlock()
	// The admission record must be durable before the verdict goes out: an
	// ID the client holds has to survive a crash, or Attach after a restart
	// would deny a campaign the daemon accepted.
	if s.store != nil {
		if err := s.store.Append(store.Record{
			Kind:      store.KindAdmitted,
			ID:        c.id,
			Scenarios: app.Scenarios,
			Months:    app.Months,
			Heuristic: req.Heuristic,
		}); err != nil {
			s.mu.Lock()
			delete(s.campaigns, c.id)
			s.queueLen--
			s.rejected++
			s.mu.Unlock()
			return nil, nil, fmt.Errorf("grid: journaling admission: %w", err)
		}
	}
	// queueLen never exceeds cap(queue), so this send cannot block.
	s.queue <- c
	return c, &diet.SubmitResponse{ID: c.id, Accepted: true, QueueDepth: depth}, nil
}

// lookup returns a campaign by ID.
func (s *Scheduler) lookup(id uint64) *campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[id]
}

// finish moves a campaign out of the running gauge and prunes the oldest
// finished entries beyond the retention cap.
func (s *Scheduler) finish(c *campaign, failed bool) {
	s.mu.Lock()
	s.running--
	if failed {
		s.failed++
	} else {
		s.completed++
	}
	s.doneOrder = append(s.doneOrder, c.id)
	for len(s.doneOrder) > s.cfg.KeepFinished {
		delete(s.campaigns, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
	s.mu.Unlock()
}
