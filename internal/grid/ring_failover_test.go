package grid

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/diet"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
	"oagrid/internal/ring"
)

// ringTestMember is one in-process shard of a test ring: a durable scheduler
// plus a close guard (the failover test kills one member mid-run and the
// cleanup must not close it twice).
type ringTestMember struct {
	sched *Scheduler
	once  sync.Once
}

func (m *ringTestMember) close() {
	m.once.Do(func() { m.sched.Close() })
}

// startTestRing starts n durable schedulers on ephemeral ports, joins them
// into one ring with tight heartbeats, and registers cleanup.
func startTestRing(t *testing.T, n int, hb, dead time.Duration) ([]*ringTestMember, []string) {
	t.Helper()
	base := t.TempDir()
	members := make([]*ringTestMember, n)
	addrs := make([]string, n)
	for i := range members {
		cfg := testConfig()
		cfg.StateDir = filepath.Join(base, fmt.Sprintf("shard%d", i))
		sched, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = &ringTestMember{sched: sched}
		addrs[i] = sched.Addr()
		t.Cleanup(members[i].close)
	}
	for i, m := range members {
		if err := m.sched.JoinRing(addrs[i], addrs, hb, dead); err != nil {
			t.Fatal(err)
		}
	}
	return members, addrs
}

// startRingSeDs gives one shard a SeD fleet over the paper's first two
// cluster profiles at 30 processors — the same fleet on every shard, which
// is what makes cross-shard failover bit-identical.
func startRingSeDs(t *testing.T, schedAddr string, clusters map[string]*platform.Cluster) {
	t.Helper()
	for _, cl := range platform.FiveClusters()[:2] {
		cl.Procs = 30
		sed, err := diet.StartSeD("127.0.0.1:0", cl, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sed.Close() })
		sed.StartHeartbeats(schedAddr, 25*time.Millisecond)
		clusters[cl.Name] = cl
	}
}

// waitLocalAlive polls a scheduler's own (in-process, non-fanned-out) stats
// until n SeDs are alive.
func waitLocalAlive(t *testing.T, s *Scheduler, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		alive := 0
		for _, sd := range s.Stats().SeDs {
			if sd.Alive {
				alive++
			}
		}
		if alive >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("scheduler %s never saw %d live SeDs", s.Addr(), n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRingFailoverBitIdentical is the tentpole acceptance test: a 3-shard
// ring takes campaigns on every member, one member dies with admitted but
// unstarted campaigns, the survivors replay its WAL replica, adopt its
// campaigns by failover ownership, and finish every one of them — with
// results bit-identical to a standalone daemon running the same application
// over the same cluster profiles.
func TestRingFailoverBitIdentical(t *testing.T) {
	members, addrs := startTestRing(t, 3, 25*time.Millisecond, 150*time.Millisecond)

	// Shards 1 and 2 get identical SeD fleets; shard 0 — the victim — gets
	// none, so its campaigns are guaranteed non-terminal when it dies.
	clusters := map[string]*platform.Cluster{}
	startRingSeDs(t, addrs[1], clusters)
	startRingSeDs(t, addrs[2], clusters)
	waitLocalAlive(t, members[1].sched, 2, 5*time.Second)
	waitLocalAlive(t, members[2].sched, 2, 5*time.Second)

	// Reference outcome: a standalone (ring-free) daemon over the same two
	// profiles. Deterministic evaluation makes every campaign of the same
	// application bit-identical to this, wherever it runs.
	app := core.Application{Scenarios: 4, Months: 12}
	ref := startFabric(t, testConfig(), 2)
	want, err := (&Client{Addr: ref.Sched.Addr(), Timeout: 60 * time.Second}).Run(app, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}

	// Two campaigns per shard, admitted at their submission target (submits
	// are always served locally, so admission spreads ownership).
	const campaigns = 6
	ids := make([]uint64, campaigns)
	for i := 0; i < campaigns; i++ {
		c := &Client{Addr: addrs[i%3], Timeout: 30 * time.Second}
		sub, err := c.Submit(app, core.NameKnapsack)
		if err != nil {
			t.Fatalf("submit %d via %s: %v", i, addrs[i%3], err)
		}
		if !sub.Accepted {
			t.Fatalf("submit %d rejected: %s", i, sub.Reason)
		}
		ids[i] = sub.ID
	}
	// Shard-minted IDs must be home-owned by their minting shard.
	sm0 := members[0].sched.shardManager()
	for i, id := range ids {
		if home := sm0.ring.Home(id); home != addrs[i%3] {
			t.Fatalf("campaign %d (id %d) minted by %s but home is %s", i, id, addrs[i%3], home)
		}
	}

	// Wait until both survivors' replicas cover the victim's whole journal —
	// the durability precondition for failover.
	victim := members[0].sched
	victimSize := victim.store.Size()
	if victimSize == 0 {
		t.Fatal("victim journaled nothing")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for _, si := range []int{1, 2} {
			if members[si].sched.shardManager().replicaBytes(addrs[0]) < victimSize {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never caught up to the victim's %d journal bytes", victimSize)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Kill the victim. The survivors declare it dead after the silence
	// deadline and adopt its campaigns from the replica.
	members[0].close()

	// Drive every campaign to completion through the multi-addr client: it
	// follows ownership redirects, learns routes, and rotates off the dead
	// member. Adoption is asynchronous, so unknown-campaign verdicts and
	// dead-owner windows are retried until the deadline.
	mc := &Client{Addr: addrs[1], Addrs: []string{addrs[2]}, Timeout: 60 * time.Second}
	deadline = time.Now().Add(60 * time.Second)
	for i, id := range ids {
		for {
			res, err := mc.AttachContext(context.Background(), id, nil, nil)
			if err == nil {
				sameCampaignOutcome(t, fmt.Sprintf("ring campaign %d (id %d)", i, id), res, want)
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("campaign %d (id %d) never completed after failover: %v", i, id, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// And the serial verifier agrees end to end.
	v, err := NewVerifier(clusters, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(app, want); err != nil {
		t.Fatal(err)
	}

	// The victim's two campaigns were adopted exactly once across survivors.
	adopted := members[1].sched.shardManager().adopted.Load() +
		members[2].sched.shardManager().adopted.Load()
	if adopted != 2 {
		t.Fatalf("survivors adopted %d campaigns, want 2", adopted)
	}

	// Fan-out views: any surviving member answers for the whole ring.
	infos, err := mc.ListCampaignsContext(context.Background(), &diet.ListCampaignsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != campaigns {
		t.Fatalf("ring-wide list holds %d campaigns, want %d", len(infos), campaigns)
	}
	seen := map[uint64]bool{}
	for _, info := range infos {
		if seen[info.ID] {
			t.Fatalf("ring-wide list repeats campaign %d", info.ID)
		}
		seen[info.ID] = true
	}
	stats, err := mc.StatsContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != campaigns {
		t.Fatalf("ring-wide stats count %d completed, want %d", stats.Completed, campaigns)
	}

	// Fresh work still flows through the survivors.
	res, err := mc.RunContext(context.Background(), app, core.NameKnapsack, SubmitMeta{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameCampaignOutcome(t, "post-failover campaign", res, want)
}

// TestRingRefusesIncompatiblePeer extends the cross-version matrix to ring
// membership: a daemon capped at protocol v4 listed as a ring member is
// refused with the typed ring.ErrIncompatiblePeer — never alive, never a
// forwarding target — while it keeps serving plain client traffic at its own
// negotiated version, bit-identically.
func TestRingRefusesIncompatiblePeer(t *testing.T) {
	oldCfg := testConfig()
	oldCfg.MaxProtocol = diet.ProtocolV4
	oldFabric := startFabric(t, oldCfg, 2)
	oldAddr := oldFabric.Sched.Addr()

	curCfg := testConfig()
	curCfg.StateDir = t.TempDir()
	cur, err := Start(curCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if err := cur.JoinRing(cur.Addr(), []string{cur.Addr(), oldAddr}, 25*time.Millisecond, 150*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// The ping loop must record the typed refusal, not liveness.
	sm := cur.shardManager()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, ok := sm.members.Status(oldAddr)
		if ok && st.Err != nil {
			if !errors.Is(st.Err, ring.ErrIncompatiblePeer) {
				t.Fatalf("peer status error = %v, want ring.ErrIncompatiblePeer", st.Err)
			}
			if st.Alive {
				t.Fatal("incompatible peer reported alive")
			}
			if st.Version != diet.ProtocolV4 {
				t.Fatalf("refused peer recorded version %d, want %d", st.Version, diet.ProtocolV4)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring never refused the v4-capped peer (status %+v, ok %v)", st, ok)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if sm.members.Alive(oldAddr) {
		t.Fatal("incompatible peer counted in the alive set")
	}

	// The refused daemon still serves plain client campaigns at its cap.
	app := core.Application{Scenarios: 4, Months: 12}
	res, err := (&Client{Addr: oldAddr, Timeout: 30 * time.Second}).Run(app, core.NameKnapsack)
	if err != nil {
		t.Fatalf("v4-capped daemon stopped serving plain traffic: %v", err)
	}
	verifyReports(t, oldFabric, app, core.NameKnapsack, res)

	// And the ring member itself keeps answering — the fan-out just skips
	// the refused peer instead of failing on it.
	if _, err := (&Client{Addr: cur.Addr(), Timeout: 10 * time.Second}).Stats(); err != nil {
		t.Fatalf("ring member with a refused peer stopped serving: %v", err)
	}
}

// TestOwnedIDAfterMintsOnlyHomeIDs pins the allocation rule that keeps shard
// ID ranges disjoint: a ring member's allocator skips exactly the IDs other
// shards are home for, and a standalone scheduler allocates densely.
func TestOwnedIDAfterMintsOnlyHomeIDs(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1"}
	for _, self := range members {
		r, err := ring.New(self, members)
		if err != nil {
			t.Fatal(err)
		}
		s := &Scheduler{}
		s.shard.Store(&shardManager{ring: r})
		id := uint64(0)
		for i := 0; i < 200; i++ {
			next := s.ownedIDAfter(id)
			if next <= id {
				t.Fatalf("%s: ownedIDAfter(%d) = %d did not advance", self, id, next)
			}
			if home := r.Home(next); home != self {
				t.Fatalf("%s minted id %d homed at %s", self, next, home)
			}
			for j := id + 1; j < next; j++ {
				if r.Home(j) == self {
					t.Fatalf("%s skipped its own id %d on the way to %d", self, j, next)
				}
			}
			id = next
		}
	}
	// Standalone: every ID qualifies.
	s := &Scheduler{}
	if got := s.ownedIDAfter(7); got != 8 {
		t.Fatalf("standalone ownedIDAfter(7) = %d, want 8", got)
	}
}

// TestRingRouteCacheBounded pins the client route cache's bound: learning
// far more routes than the cap never grows the cache past it, and a
// single-daemon deployment (owner == seed) never populates it at all.
func TestRingRouteCacheBounded(t *testing.T) {
	for i := 0; i < maxRingRoutes+512; i++ {
		learnRoute("bound-test-seed:1", uint64(i+1), "bound-test-owner:1")
	}
	if n := ringRouteCacheLen(); n > maxRingRoutes {
		t.Fatalf("route cache holds %d entries, cap is %d", n, maxRingRoutes)
	}
	before := ringRouteCacheLen()
	learnRoute("solo:1", 42, "solo:1") // owner == seed: the single-daemon case
	if got := ringRouteCacheLen(); got != before {
		t.Fatalf("single-daemon route cached (len %d -> %d)", before, got)
	}
	if got := routeFor("solo:1", 42); got != "" {
		t.Fatalf("routeFor learned a self-route %q", got)
	}
	learnRoute("f:1", 7, "g:1")
	if got := routeFor("f:1", 7); got != "g:1" {
		t.Fatalf("routeFor = %q, want g:1", got)
	}
	forgetRoute("f:1", 7)
	if got := routeFor("f:1", 7); got != "" {
		t.Fatalf("forgotten route still resolves to %q", got)
	}
}

// TestQueuePositionNoAllocs is the regression test for the Info hot path:
// one campaign's queue position must not allocate, however deep the queues
// are — the old implementation rebuilt a sorted position map of every queued
// campaign per Info call.
func TestQueuePositionNoAllocs(t *testing.T) {
	for _, depth := range []int{4, 512} {
		s := &Scheduler{tenants: map[string]*tenantState{}}
		ts := &tenantState{name: "default", weight: 1}
		now := time.Now()
		for i := 0; i < depth; i++ {
			ts.queue = append(ts.queue, &campaign{
				id:         uint64(i + 1),
				priority:   i % 7,
				tenant:     "default",
				enqueuedAt: now,
			})
		}
		s.tenants["default"] = ts
		probe := ts.queue[depth/2]
		allocs := testing.AllocsPerRun(100, func() {
			if got := s.queuePosition(probe); got == 0 {
				t.Fatalf("queued campaign ranked 0")
			}
		})
		if allocs != 0 {
			t.Fatalf("queuePosition allocates %.1f objects/op at depth %d, want 0", allocs, depth)
		}
	}
}
