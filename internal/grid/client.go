package grid

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/diet"
)

// ErrRejected reports an admission-control rejection: the daemon's bounded
// queue was full. Callers may back off and retry.
var ErrRejected = errors.New("grid: campaign rejected")

// Client submits campaigns to a scheduler daemon.
type Client struct {
	// Addr is the scheduler's address.
	Addr string
	// Timeout bounds one Run end to end (default 2m, matching the daemon's
	// campaign timeout).
	Timeout time.Duration
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 2 * time.Minute
}

// Run submits a campaign and streams until its result arrives on the same
// connection. A full queue returns an error wrapping ErrRejected; a campaign
// that the daemon reports as failed returns the daemon's error.
func (c *Client) Run(app core.Application, heuristic string) (*diet.CampaignResult, error) {
	conn, err := net.DialTimeout("tcp", c.Addr, frameTimeout)
	if err != nil {
		return nil, fmt.Errorf("grid: dialing %s: %w", c.Addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(c.timeout())); err != nil {
		return nil, err
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(&diet.Request{Kind: diet.KindSubmit, Submit: &diet.SubmitRequest{
		Scenarios: app.Scenarios,
		Months:    app.Months,
		Heuristic: heuristic,
		Wait:      true,
	}}); err != nil {
		return nil, fmt.Errorf("grid: encoding submit to %s: %w", c.Addr, err)
	}

	var verdict diet.Response
	if err := dec.Decode(&verdict); err != nil {
		return nil, fmt.Errorf("grid: decoding admission verdict from %s: %w", c.Addr, err)
	}
	if verdict.Err != "" {
		return nil, fmt.Errorf("grid: submit: remote error: %s", verdict.Err)
	}
	if verdict.Submit == nil {
		return nil, fmt.Errorf("grid: %s sent no admission verdict", c.Addr)
	}
	if !verdict.Submit.Accepted {
		return nil, fmt.Errorf("%w: %s (queue depth %d)", ErrRejected, verdict.Submit.Reason, verdict.Submit.QueueDepth)
	}

	var final diet.Response
	if err := dec.Decode(&final); err != nil {
		return nil, fmt.Errorf("grid: waiting for campaign %d result: %w", verdict.Submit.ID, err)
	}
	if final.Err != "" {
		return nil, fmt.Errorf("grid: campaign %d: remote error: %s", verdict.Submit.ID, final.Err)
	}
	if final.Result == nil {
		return nil, fmt.Errorf("grid: %s sent no result for campaign %d", c.Addr, verdict.Submit.ID)
	}
	if final.Result.Status == diet.CampaignFailed {
		return final.Result, fmt.Errorf("grid: campaign %d failed: %s", final.Result.ID, final.Result.Err)
	}
	return final.Result, nil
}

// RunRetry is Run with admission-control backoff: a rejected submission is
// retried every pause until accepted or the deadline passes. It returns the
// result and how many rejections were absorbed.
func (c *Client) RunRetry(app core.Application, heuristic string, pause time.Duration, deadline time.Time) (*diet.CampaignResult, int, error) {
	if pause <= 0 {
		pause = 10 * time.Millisecond
	}
	rejected := 0
	for {
		res, err := c.Run(app, heuristic)
		if !errors.Is(err, ErrRejected) {
			return res, rejected, err
		}
		rejected++
		if time.Now().Add(pause).After(deadline) {
			return nil, rejected, err
		}
		time.Sleep(pause)
	}
}

// Submit enqueues a campaign without waiting; poll with Result.
func (c *Client) Submit(app core.Application, heuristic string) (*diet.SubmitResponse, error) {
	resp, err := diet.RoundTrip(c.Addr, &diet.Request{Kind: diet.KindSubmit, Submit: &diet.SubmitRequest{
		Scenarios: app.Scenarios,
		Months:    app.Months,
		Heuristic: heuristic,
	}})
	if err != nil {
		return nil, err
	}
	if resp.Submit == nil {
		return nil, fmt.Errorf("grid: %s sent no admission verdict", c.Addr)
	}
	if !resp.Submit.Accepted {
		return resp.Submit, fmt.Errorf("%w: %s", ErrRejected, resp.Submit.Reason)
	}
	return resp.Submit, nil
}

// Result polls a campaign's current state by ID.
func (c *Client) Result(id uint64) (*diet.CampaignResult, error) {
	resp, err := diet.RoundTrip(c.Addr, &diet.Request{Kind: diet.KindResult, Result: &diet.ResultRequest{ID: id}})
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return nil, fmt.Errorf("grid: %s sent no result for campaign %d", c.Addr, id)
	}
	return resp.Result, nil
}

// Stats fetches the daemon's gauges.
func (c *Client) Stats() (*diet.StatsResponse, error) {
	resp, err := diet.RoundTrip(c.Addr, &diet.Request{Kind: diet.KindStats, Stats: &diet.StatsRequest{}})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("grid: %s sent no stats", c.Addr)
	}
	return resp.Stats, nil
}
