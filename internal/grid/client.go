package grid

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/diet"
)

// Typed failure taxonomy of the campaign client. The oagrid facade re-exports
// these, so importers can errors.Is against them instead of string-matching
// messages from a package they cannot import.
var (
	// ErrRejected reports an admission-control rejection: the daemon's bounded
	// queue was full. Callers may back off and retry.
	ErrRejected = errors.New("grid: campaign rejected")
	// ErrQuotaExceeded reports an admission rejected because the submitting
	// tenant's own queue quota was exhausted — other tenants keep admitting.
	// It wraps ErrRejected (quota rejections are retryable and existing
	// errors.Is(err, ErrRejected) backoff loops keep working), but retrying
	// helps only once the tenant's earlier campaigns drain.
	ErrQuotaExceeded = fmt.Errorf("%w: tenant quota exceeded", ErrRejected)
	// ErrCampaignFailed reports a campaign the daemon accepted but could not
	// drive to completion (timeout, shutdown, no live SeD, ...). The daemon's
	// reason is in the wrapping error's message.
	ErrCampaignFailed = errors.New("grid: campaign failed")
	// ErrProtocol reports a wire-level violation: a missing or malformed
	// frame, or a remote speaking an incompatible protocol. Retrying the same
	// exchange cannot succeed.
	ErrProtocol = errors.New("grid: protocol error")
	// ErrUnknownCampaign reports an attach to a campaign ID the daemon does
	// not know: never admitted, or pruned past the retention cap. Resubmit
	// instead of retrying the attach.
	ErrUnknownCampaign = errors.New("grid: unknown campaign")
	// ErrCampaignCancelled reports a campaign terminated by a server-side
	// cancel (control plane v2). Waiting on it — or attaching to it, even
	// after a daemon restart — resolves with this error; the cancellation is
	// final, so resubmit if the work is still wanted.
	ErrCampaignCancelled = errors.New("grid: campaign cancelled")
	// ErrUnreachable reports an exchange no ring member answered: every
	// candidate was down or unreachable at the transport level. The daemons
	// themselves may be healthy behind a partition — back off and retry.
	ErrUnreachable = errors.New("grid: no scheduler reachable")
)

// Client submits campaigns to a scheduler daemon — or to a ring of them:
// with Addrs set, every exchange can fall back to the other members when the
// primary is unreachable, and v6 ownership redirects are followed and cached
// so steady-state traffic goes straight to the owning shard.
type Client struct {
	// Addr is the scheduler's address — the primary ring member when Addrs
	// is also set. It doubles as the route-cache seed: redirects learned
	// through this client are remembered per (Addr, campaign ID).
	Addr string
	// Addrs lists further ring members to try when Addr (or a cached route)
	// is unreachable. Order is the fallback order; Addr is always tried
	// before them. Empty for a single-daemon deployment.
	Addrs []string
	// Timeout bounds one protocol frame: the dial, the submit write, and each
	// received frame (verdict, progress, result) gets this long. The deadline
	// is refreshed on every frame, so a streamed campaign may run arbitrarily
	// long as a whole — it dies only when the daemon goes silent for Timeout
	// (default 2m, matching the daemon's campaign timeout; against a v1
	// daemon, which sends no progress frames, this is also the whole-campaign
	// bound).
	Timeout time.Duration
}

// ---- ring routing ----------------------------------------------------------

// routeKey scopes a learned campaign route to the client seed that learned
// it, so two clients pointed at unrelated rings never cross-pollute.
type routeKey struct {
	seed string
	id   uint64
}

// maxRingRoutes bounds the learned-route cache the same way the transport
// bounds its peer-version cache: routes are an optimization, not state — an
// evicted victim's next exchange just eats one extra redirect hop.
const maxRingRoutes = 4096

var (
	ringRoutesMu sync.Mutex
	ringRoutes   = make(map[routeKey]string)
)

// learnRoute remembers which shard owns a campaign. A new route arriving at
// the cap evicts an arbitrary existing entry first.
func learnRoute(seed string, id uint64, owner string) {
	if id == 0 || owner == "" || owner == seed {
		return
	}
	ringRoutesMu.Lock()
	defer ringRoutesMu.Unlock()
	k := routeKey{seed: seed, id: id}
	if _, known := ringRoutes[k]; !known && len(ringRoutes) >= maxRingRoutes {
		for victim := range ringRoutes {
			if victim != k {
				delete(ringRoutes, victim)
				break
			}
		}
	}
	ringRoutes[k] = owner
}

// routeFor returns the cached owner for a campaign ("" when unknown).
func routeFor(seed string, id uint64) string {
	ringRoutesMu.Lock()
	defer ringRoutesMu.Unlock()
	return ringRoutes[routeKey{seed: seed, id: id}]
}

// forgetRoute drops a cached route — called when its shard stopped
// answering, so failover rediscovery starts from the surviving members.
func forgetRoute(seed string, id uint64) {
	ringRoutesMu.Lock()
	defer ringRoutesMu.Unlock()
	delete(ringRoutes, routeKey{seed: seed, id: id})
}

// ringRouteCacheLen reports the route cache's current size (tests).
func ringRouteCacheLen() int {
	ringRoutesMu.Lock()
	defer ringRoutesMu.Unlock()
	return len(ringRoutes)
}

// candidates is the address order one exchange walks: the learned route for
// the campaign first (steady-state traffic goes direct), then Addr, then the
// Addrs fallbacks, deduplicated.
func (c *Client) candidates(id uint64) []string {
	out := make([]string, 0, len(c.Addrs)+2)
	seen := make(map[string]bool, len(c.Addrs)+2)
	add := func(a string) {
		if a != "" && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	if id != 0 {
		add(routeFor(c.Addr, id))
	}
	add(c.Addr)
	for _, a := range c.Addrs {
		add(a)
	}
	return out
}

// maxRedirectHops bounds how many ownership redirects one exchange follows
// before moving to the next candidate — enough for a route to settle during
// failover, small enough that a confused ring cannot bounce a client
// forever.
const maxRedirectHops = 3

// ringRoundTrip sends a one-shot request across the client's member set: it
// walks candidates(id), follows up to maxRedirectHops ownership redirects
// per candidate (learning each), rotates to the next member on transport
// failure, and stops immediately on an answered error — a shard that
// answered authoritatively will not answer differently elsewhere. It returns
// the response and the address that served it.
func (c *Client) ringRoundTrip(ctx context.Context, id uint64, req *diet.Request) (*diet.Response, string, error) {
	var lastErr error
	for _, addr := range c.candidates(id) {
		target := addr
		for hop := 0; hop <= maxRedirectHops; hop++ {
			resp, err := diet.RoundTripContext(ctx, target, req, c.timeout())
			if err != nil {
				var remote *diet.RemoteError
				if errors.As(err, &remote) || ctx.Err() != nil {
					return nil, target, err
				}
				forgetRoute(c.Addr, id)
				lastErr = err
				break // transport failure: rotate to the next member
			}
			if resp.Redirect != nil && resp.Redirect.Owner != "" && resp.Redirect.Owner != target {
				learnRoute(c.Addr, id, resp.Redirect.Owner)
				target = resp.Redirect.Owner
				continue
			}
			learnRoute(c.Addr, id, target)
			return resp, target, nil
		}
	}
	if lastErr == nil {
		return nil, "", fmt.Errorf("%w: no member answered %s for campaign %d", ErrUnreachable, req.Kind, id)
	}
	return nil, "", fmt.Errorf("%w: %s for campaign %d: %w", ErrUnreachable, req.Kind, id, lastErr)
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 2 * time.Minute
}

// SubmitMeta is the per-campaign option set of the control plane: priority
// orders the daemon's admission queue, labels tag the campaign for
// List filters, and a non-zero deadline overrides the daemon's per-campaign
// timeout. The zero value is a plain v2-era submission.
type SubmitMeta struct {
	Priority int
	Labels   map[string]string
	Deadline time.Duration
}

// Run submits a campaign and streams until its result arrives on the same
// connection; see RunContext.
func (c *Client) Run(app core.Application, heuristic string) (*diet.CampaignResult, error) {
	return c.RunContext(context.Background(), app, heuristic, SubmitMeta{}, nil, nil)
}

// campaignStream is one open streaming connection: submit-wait or attach.
// The codec is fixed at open time: binary framing when the daemon is known
// to speak v4, the legacy gob codec otherwise (fdec nil).
type campaignStream struct {
	addr string // the member this stream dialed (ring clients rotate)
	conn net.Conn
	cc   net.Conn // counted wrapper around conn
	dec  *gob.Decoder
	fdec *diet.FrameDecoder
	// sawFrame flips after the first decoded frame; a binary stream dying
	// before it downgrades the peer-version cache (the daemon may have been
	// replaced by a pre-v4 build, which drops binary connections on sniff).
	sawFrame bool
	stop     func()
}

func (st *campaignStream) close() {
	st.stop()
	st.conn.Close()
	if st.fdec != nil {
		diet.PutFrameDecoder(st.fdec)
		st.fdec = nil
	}
}

// openStreamAt dials one member, ties the connection to ctx, and sends req.
func (c *Client) openStreamAt(ctx context.Context, addr string, req *diet.Request) (*campaignStream, error) {
	dialer := net.Dialer{Timeout: c.timeout()}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("grid: dialing %s: %w", addr, err)
	}
	stop := diet.AbortOnDone(ctx, conn)
	cc := diet.CountConn(conn)
	st := &campaignStream{addr: addr, conn: conn, cc: cc, stop: stop}
	if err := conn.SetDeadline(time.Now().Add(c.timeout())); err != nil {
		st.close()
		return nil, err
	}
	var encErr error
	if diet.UseBinary(addr, req.Version) {
		// Retained decoding: progress frames and results outlive the stream
		// (the dial layer republishes them as client events).
		st.fdec = diet.GetFrameDecoder(true)
		encErr = diet.WriteRequestFrame(cc, req)
	} else {
		st.dec = gob.NewDecoder(cc)
		encErr = gob.NewEncoder(cc).Encode(req)
		if encErr == nil {
			diet.CountFrames(1, 0)
		}
	}
	if encErr != nil {
		st.close()
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("grid: encoding %s to %s: %w", req.Kind, addr, encErr)
	}
	return st, nil
}

// nextFrame refreshes the deadline before every decode: the stream stays
// alive as long as the daemon keeps talking, however long the campaign.
// The explicit ctx checks bracket the refresh so a cancellation landing
// between decodes is honored instead of silently re-armed away (the
// AbortOnDone watcher keeps re-asserting the past deadline as a backstop
// for the refresh race).
func (c *Client) nextFrame(ctx context.Context, st *campaignStream) (*diet.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_ = st.conn.SetDeadline(time.Now().Add(c.timeout()))
	var resp *diet.Response
	var err error
	if st.fdec != nil {
		resp, err = st.fdec.ReadResponse(st.cc)
	} else {
		resp = &diet.Response{}
		if err = st.dec.Decode(resp); err == nil {
			diet.CountFrames(0, 1)
		}
	}
	if err != nil {
		if st.fdec != nil && !st.sawFrame {
			diet.RecordPeerVersion(st.addr, diet.ProtocolV3)
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	st.sawFrame = true
	diet.RecordPeerVersion(st.addr, resp.Version)
	return resp, ctx.Err()
}

// streamResult consumes a verdict-acknowledged campaign stream to its end:
// progress frames go to onProgress, the result frame closes the exchange.
func (c *Client) streamResult(ctx context.Context, st *campaignStream, id uint64, onProgress func(*diet.ProgressUpdate)) (*diet.CampaignResult, error) {
	for {
		frame, err := c.nextFrame(ctx, st)
		if err != nil {
			return nil, fmt.Errorf("grid: waiting for campaign %d result: %w", id, err)
		}
		switch {
		case frame.Err != "":
			return nil, fmt.Errorf("%w: campaign %d: remote error: %s", ErrCampaignFailed, id, frame.Err)
		case frame.Progress != nil:
			if onProgress != nil {
				onProgress(frame.Progress)
			}
		case frame.Result != nil:
			if frame.Result.Status == diet.CampaignFailed {
				return frame.Result, fmt.Errorf("%w: campaign %d: %s", ErrCampaignFailed, frame.Result.ID, frame.Result.Err)
			}
			if frame.Result.Status == diet.CampaignCancelled {
				return frame.Result, fmt.Errorf("%w: campaign %d", ErrCampaignCancelled, frame.Result.ID)
			}
			return frame.Result, nil
		default:
			return nil, fmt.Errorf("%w: %s sent an empty frame for campaign %d", ErrProtocol, st.addr, id)
		}
	}
}

// RunContext submits a campaign and streams on one connection until the
// result arrives. meta carries the per-campaign submit options (protocol
// v3; a pre-v3 daemon ignores them). The admission verdict's campaign ID is
// delivered to onAdmit when non-nil — hold on to it: it is the handle for
// polling, for Attach after a cut, and for CancelContext. Progress frames
// (protocol v2) are delivered to onProgress when non-nil; they double as
// liveness, refreshing the frame deadline. A full queue returns an error
// wrapping ErrRejected; a campaign the daemon reports as failed returns its
// snapshot and an error wrapping ErrCampaignFailed; one cancelled
// server-side resolves with ErrCampaignCancelled. Cancelling ctx abandons
// only the stream — the daemon notices on its next frame write and releases
// the connection, while the campaign itself keeps running server-side to
// its own deadline (CancelContext is the way to stop the work itself).
func (c *Client) RunContext(ctx context.Context, app core.Application, heuristic string, meta SubmitMeta, onAdmit func(uint64), onProgress func(*diet.ProgressUpdate)) (*diet.CampaignResult, error) {
	req := &diet.Request{Version: diet.ProtocolVersion, Kind: diet.KindSubmit, Submit: &diet.SubmitRequest{
		Scenarios: app.Scenarios,
		Months:    app.Months,
		Heuristic: heuristic,
		Wait:      true,
		Progress:  true,
		Priority:  meta.Priority,
		Labels:    meta.Labels,
		Deadline:  meta.Deadline,
	}}
	// Any ring member admits a submission (ownership is decided at ID
	// allocation, on the daemon), so rotation happens only when the dial
	// itself fails — once the request is on the wire the exchange is not
	// idempotent and must not be replayed elsewhere.
	var st *campaignStream
	var err error
	for _, addr := range c.candidates(0) {
		st, err = c.openStreamAt(ctx, addr, req)
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			return nil, err
		}
	}
	if err != nil {
		return nil, err
	}
	defer st.close()

	verdict, err := c.nextFrame(ctx, st)
	if err != nil {
		return nil, fmt.Errorf("grid: decoding admission verdict from %s: %w", st.addr, err)
	}
	if verdict.Err != "" {
		return nil, fmt.Errorf("%w: submit to %s: remote error: %s", ErrProtocol, st.addr, verdict.Err)
	}
	if verdict.Submit == nil {
		return nil, fmt.Errorf("%w: %s sent no admission verdict", ErrProtocol, st.addr)
	}
	if !verdict.Submit.Accepted {
		return nil, rejectionError(verdict.Submit)
	}
	// The admitting member owns the campaign: remember it so a later Attach
	// or poll through this client goes straight there.
	learnRoute(c.Addr, verdict.Submit.ID, st.addr)
	if onAdmit != nil {
		onAdmit(verdict.Submit.ID)
	}
	return c.streamResult(ctx, st, verdict.Submit.ID, onProgress)
}

// AttachContext reconnects to a previously admitted campaign by ID — after
// a network cut, a client restart, or a daemon restart that replayed its
// journal — and streams to the result exactly like RunContext, starting
// with the campaign's full replayed progress history. The attach verdict is
// delivered to onAttach when non-nil. An ID the daemon does not know
// returns an error wrapping ErrUnknownCampaign.
func (c *Client) AttachContext(ctx context.Context, id uint64, onAttach func(*diet.AttachResponse), onProgress func(*diet.ProgressUpdate)) (*diet.CampaignResult, error) {
	var lastErr error
	for _, addr := range c.candidates(id) {
		target := addr
		for hop := 0; hop <= maxRedirectHops; hop++ {
			res, redirect, reachable, err := c.attachAt(ctx, target, id, onAttach, onProgress)
			if redirect != "" && redirect != target {
				learnRoute(c.Addr, id, redirect)
				target = redirect
				continue
			}
			if err == nil || reachable {
				// Answered — successfully or authoritatively (unknown ID,
				// protocol violation, stream lost mid-result): another member
				// cannot do better, so stop rotating.
				if err == nil {
					learnRoute(c.Addr, id, target)
				}
				return res, err
			}
			if ctx.Err() != nil {
				return nil, err
			}
			forgetRoute(c.Addr, id)
			lastErr = err
			break // member unreachable: rotate
		}
	}
	if lastErr == nil {
		return nil, fmt.Errorf("%w: no member answered attach for campaign %d", ErrUnreachable, id)
	}
	return nil, fmt.Errorf("%w: attach for campaign %d: %w", ErrUnreachable, id, lastErr)
}

// attachAt runs one attach exchange against one member. reachable reports
// whether the member answered the verdict frame — false means the dial or
// the verdict itself failed and the caller may rotate to another member
// (attach is idempotent); a non-empty redirect is the member's ownership
// answer and the caller should retry there.
func (c *Client) attachAt(ctx context.Context, addr string, id uint64, onAttach func(*diet.AttachResponse), onProgress func(*diet.ProgressUpdate)) (res *diet.CampaignResult, redirect string, reachable bool, err error) {
	st, err := c.openStreamAt(ctx, addr, &diet.Request{Version: diet.ProtocolVersion, Kind: diet.KindAttach, Attach: &diet.AttachRequest{
		ID:       id,
		Progress: true,
	}})
	if err != nil {
		return nil, "", false, err
	}
	defer st.close()

	verdict, err := c.nextFrame(ctx, st)
	if err != nil {
		return nil, "", false, fmt.Errorf("grid: decoding attach verdict from %s: %w", addr, err)
	}
	if verdict.Redirect != nil && verdict.Redirect.Owner != "" {
		return nil, verdict.Redirect.Owner, true, nil
	}
	if verdict.Err != "" {
		return nil, "", true, fmt.Errorf("%w: attach to %s: remote error: %s", ErrProtocol, addr, verdict.Err)
	}
	if verdict.Attach == nil {
		return nil, "", true, fmt.Errorf("%w: %s sent no attach verdict", ErrProtocol, addr)
	}
	if !verdict.Attach.Found {
		return nil, "", true, fmt.Errorf("%w: %d at %s", ErrUnknownCampaign, id, addr)
	}
	if onAttach != nil {
		onAttach(verdict.Attach)
	}
	res, err = c.streamResult(ctx, st, id, onProgress)
	return res, "", true, err
}

// RunRetry is Run with admission-control backoff: a rejected submission is
// retried every pause until accepted or the deadline passes. It returns the
// result and how many rejections were absorbed. (Context-aware callers sit
// on the public oagrid Runner surface and bring their own retry loop.)
func (c *Client) RunRetry(app core.Application, heuristic string, pause time.Duration, deadline time.Time) (*diet.CampaignResult, int, error) {
	if pause <= 0 {
		pause = 10 * time.Millisecond
	}
	rejected := 0
	for {
		res, err := c.Run(app, heuristic)
		if !errors.Is(err, ErrRejected) {
			return res, rejected, err
		}
		rejected++
		if time.Now().Add(pause).After(deadline) {
			return nil, rejected, err
		}
		time.Sleep(pause)
	}
}

// Submit enqueues a campaign without waiting; poll with Result.
func (c *Client) Submit(app core.Application, heuristic string) (*diet.SubmitResponse, error) {
	return c.SubmitContext(context.Background(), app, heuristic)
}

// SubmitContext enqueues a campaign without waiting (the async half of the
// protocol); poll with ResultContext.
func (c *Client) SubmitContext(ctx context.Context, app core.Application, heuristic string) (*diet.SubmitResponse, error) {
	resp, servedBy, err := c.ringRoundTrip(ctx, 0, &diet.Request{Version: diet.ProtocolVersion, Kind: diet.KindSubmit, Submit: &diet.SubmitRequest{
		Scenarios: app.Scenarios,
		Months:    app.Months,
		Heuristic: heuristic,
	}})
	if err != nil {
		return nil, err
	}
	if resp.Submit == nil {
		return nil, fmt.Errorf("%w: %s sent no admission verdict", ErrProtocol, servedBy)
	}
	if !resp.Submit.Accepted {
		return resp.Submit, rejectionError(resp.Submit)
	}
	learnRoute(c.Addr, resp.Submit.ID, servedBy)
	return resp.Submit, nil
}

// rejectionError maps an admission rejection to its typed sentinel: the
// quota code gets ErrQuotaExceeded (which itself wraps ErrRejected), every
// other rejection — including a pre-quota daemon's codeless one — the plain
// queue-full ErrRejected.
func rejectionError(v *diet.SubmitResponse) error {
	if v.Code == diet.RejectQuota {
		return fmt.Errorf("%w: %s (queue depth %d)", ErrQuotaExceeded, v.Reason, v.QueueDepth)
	}
	return fmt.Errorf("%w: %s (queue depth %d)", ErrRejected, v.Reason, v.QueueDepth)
}

// Result polls a campaign's current state by ID.
func (c *Client) Result(id uint64) (*diet.CampaignResult, error) {
	return c.ResultContext(context.Background(), id)
}

// ResultContext polls a campaign's current state by ID.
func (c *Client) ResultContext(ctx context.Context, id uint64) (*diet.CampaignResult, error) {
	resp, servedBy, err := c.ringRoundTrip(ctx, id, &diet.Request{Version: diet.ProtocolVersion, Kind: diet.KindResult, Result: &diet.ResultRequest{ID: id}})
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return nil, fmt.Errorf("%w: %s sent no result for campaign %d", ErrProtocol, servedBy, id)
	}
	return resp.Result, nil
}

// Stats fetches the daemon's gauges.
func (c *Client) Stats() (*diet.StatsResponse, error) {
	return c.StatsContext(context.Background())
}

// StatsContext fetches the daemon's gauges.
func (c *Client) StatsContext(ctx context.Context) (*diet.StatsResponse, error) {
	resp, servedBy, err := c.ringRoundTrip(ctx, 0, &diet.Request{Version: diet.ProtocolVersion, Kind: diet.KindStats, Stats: &diet.StatsRequest{}})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("%w: %s sent no stats", ErrProtocol, servedBy)
	}
	return resp.Stats, nil
}

// CancelContext asks the daemon to cancel a campaign by ID and returns the
// campaign's status after the verdict. The daemon journals the cancellation
// before answering, so a returned CampaignCancelled survives any restart.
// An unknown ID returns an error wrapping ErrUnknownCampaign; a campaign
// that reached done/failed first returns that status with a nil error —
// cancelling a finished campaign is a no-op, not a failure.
func (c *Client) CancelContext(ctx context.Context, id uint64) (string, error) {
	resp, servedBy, err := c.ringRoundTrip(ctx, id, &diet.Request{Version: diet.ProtocolVersion, Kind: diet.KindCancel, Cancel: &diet.CancelRequest{ID: id}})
	if err != nil {
		return "", err
	}
	if resp.Cancel == nil {
		return "", fmt.Errorf("%w: %s sent no cancel verdict for campaign %d", ErrProtocol, servedBy, id)
	}
	if !resp.Cancel.Found {
		return "", fmt.Errorf("%w: %d at %s", ErrUnknownCampaign, id, servedBy)
	}
	return resp.Cancel.Status, nil
}

// InfoContext fetches one campaign's control-plane snapshot. An unknown ID
// returns an error wrapping ErrUnknownCampaign.
func (c *Client) InfoContext(ctx context.Context, id uint64) (*diet.CampaignInfo, error) {
	resp, servedBy, err := c.ringRoundTrip(ctx, id, &diet.Request{Version: diet.ProtocolVersion, Kind: diet.KindInfo, Info: &diet.InfoRequest{ID: id}})
	if err != nil {
		return nil, err
	}
	if resp.Info == nil {
		return nil, fmt.Errorf("%w: %s sent no info for campaign %d", ErrProtocol, servedBy, id)
	}
	if !resp.Info.Found {
		return nil, fmt.Errorf("%w: %d at %s", ErrUnknownCampaign, id, servedBy)
	}
	return resp.Info, nil
}

// ListCampaignsContext enumerates the daemon's campaign table in admission
// order, filtered by the request's status and label subset when set (a nil
// filter lists everything).
func (c *Client) ListCampaignsContext(ctx context.Context, filter *diet.ListCampaignsRequest) ([]diet.CampaignInfo, error) {
	if filter == nil {
		filter = &diet.ListCampaignsRequest{}
	}
	resp, servedBy, err := c.ringRoundTrip(ctx, 0, &diet.Request{Version: diet.ProtocolVersion, Kind: diet.KindListCampaigns, ListCampaigns: filter})
	if err != nil {
		return nil, err
	}
	if resp.ListCampaigns == nil {
		return nil, fmt.Errorf("%w: %s sent no campaign list", ErrProtocol, servedBy)
	}
	return resp.ListCampaigns.Campaigns, nil
}
