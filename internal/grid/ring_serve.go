package grid

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"oagrid/internal/diet"
)

// ---- ring request serving --------------------------------------------------
//
// The wire side of the scheduler ring (protocol v6). Three daemon-to-daemon
// kinds are served here — the membership ping, the WAL segment pull, and the
// forwarded-request envelope — plus the ownership routing that decides, per
// client request, whether this shard serves, redirects (v6 clients), or
// forwards/proxies on the client's behalf (legacy clients).

// serveRingPing answers the ring membership handshake. Every daemon answers
// — membership needs no prior ring state on the responder — but only a
// connection negotiated at v6 or later is accepted: a version-capped or
// pre-ring daemon is refused membership while it keeps serving plain client
// traffic on the same socket.
func (s *Scheduler) serveRingPing(ver int) *diet.Response {
	s.mu.Lock()
	owned := len(s.campaigns)
	s.mu.Unlock()
	return &diet.Response{Ring: &diet.RingPingResponse{
		Accepted: ver >= diet.ProtocolV6,
		Version:  ver,
		Owned:    owned,
	}}
}

// serveSegment ships acknowledged journal bytes to a ring peer tailing this
// shard's WAL for failover replay.
func (s *Scheduler) serveSegment(ver int, req *diet.SegmentRequest) *diet.Response {
	if ver < diet.ProtocolV6 {
		return &diet.Response{Err: "grid: ring-segment requires protocol v6"}
	}
	if req == nil {
		return &diet.Response{Err: "ring-segment: empty payload"}
	}
	if s.store == nil {
		return &diet.Response{Err: "grid: no journal to ship (daemon has no StateDir)"}
	}
	seg, err := s.store.ReadSegment(req.Generation, req.Offset)
	if err != nil {
		return &diet.Response{Err: err.Error()}
	}
	return &diet.Response{Segment: &diet.SegmentResponse{
		Generation: seg.Generation,
		Offset:     seg.Offset,
		Data:       seg.Data,
		Reset:      seg.Reset,
	}}
}

// serveForward unwraps a daemon-to-daemon envelope and serves the inner
// request locally, whatever this shard's ownership view says — the sender
// already resolved ownership, and refusing to recurse is what keeps a stale
// view from looping a request around the ring. Only one-shot kinds travel
// forwarded; streaming kinds (submit-wait, attach) redirect or proxy instead.
func (s *Scheduler) serveForward(ver int, req *diet.ForwardRequest) *diet.Response {
	if ver < diet.ProtocolV6 {
		return &diet.Response{Err: "grid: ring-forward requires protocol v6"}
	}
	if req == nil || req.Inner == nil {
		return &diet.Response{Err: "ring-forward: empty payload"}
	}
	inner := req.Inner
	if inner.Forward != nil || diet.RingKind(inner.Kind) {
		return &diet.Response{Err: "grid: ring-forward cannot nest ring kinds"}
	}
	switch inner.Kind {
	case diet.KindSubmit, diet.KindAttach:
		return &diet.Response{Err: fmt.Sprintf("grid: ring-forward cannot carry streaming kind %q", inner.Kind)}
	}
	if sm := s.shardManager(); sm != nil {
		sm.served.Add(1)
	}
	return s.handle(inner)
}

// ringCampaignID extracts the campaign ID a request is about, for the kinds
// the ring routes by ownership. Submit is deliberately absent: submissions
// are always admitted by the shard that received them (the allocator mints
// only self-homed IDs, so local admission never collides), and List/Stats
// fan out instead of routing.
func ringCampaignID(req *diet.Request) (uint64, bool) {
	switch req.Kind {
	case diet.KindCancel:
		if req.Cancel != nil {
			return req.Cancel.ID, true
		}
	case diet.KindInfo:
		if req.Info != nil {
			return req.Info.ID, true
		}
	case diet.KindResult:
		if req.Result != nil {
			return req.Result.ID, true
		}
	case diet.KindAttach:
		if req.Attach != nil {
			return req.Attach.ID, true
		}
	}
	return 0, false
}

// routeRing applies ring ownership to one client request. It reports true
// when the request was fully answered here (fanned out, redirected,
// forwarded, or proxied); false means the caller should serve it locally —
// either this shard owns the campaign, already holds it (adopted from a dead
// peer), or the kind does not route.
func (s *Scheduler) routeRing(sm *shardManager, send respSender, ver int, req *diet.Request) bool {
	switch req.Kind {
	case diet.KindStats:
		_ = send.send(s.fanoutStats(sm))
		return true
	case diet.KindListCampaigns:
		_ = send.send(s.fanoutList(sm, req.ListCampaigns))
		return true
	}
	id, ok := ringCampaignID(req)
	if !ok || id == 0 {
		return false
	}
	owner := sm.owner(id)
	if owner == sm.ring.Self() || s.lookup(id) != nil {
		return false
	}
	if ver >= diet.ProtocolV6 {
		// Redirect fast path: tell the client which shard owns the campaign
		// and let it retry direct; its route cache makes the detour one-time.
		sm.redirected.Add(1)
		_ = send.send(&diet.Response{Redirect: &diet.RedirectInfo{ID: id, Owner: owner}})
		return true
	}
	if req.Kind == diet.KindAttach {
		sm.proxied.Add(1)
		s.proxyAttach(send, ver, owner, req.Attach)
		return true
	}
	// Legacy one-shot: forward server-side so pre-v6 clients see a single
	// campaign namespace without ever learning the ring exists.
	sm.forwarded.Add(1)
	resp, err := sm.forwardTo(owner, req)
	if err != nil {
		var remote *diet.RemoteError
		if errors.As(err, &remote) {
			_ = send.send(&diet.Response{Err: remote.Msg})
		} else {
			_ = send.send(&diet.Response{Err: fmt.Sprintf("grid: forwarding %s to %s: %v", req.Kind, owner, err)})
		}
		return true
	}
	_ = send.send(resp)
	return true
}

// forwardTo wraps inner in the daemon-to-daemon envelope and round-trips it
// to peer p.
func (sm *shardManager) forwardTo(p string, inner *diet.Request) (*diet.Response, error) {
	return diet.RoundTripTimeout(p, &diet.Request{
		Version: diet.ProtocolVersion,
		Kind:    diet.KindForward,
		Forward: &diet.ForwardRequest{From: sm.ring.Self(), Inner: inner},
	}, ringCallTimeout)
}

// fanoutStats merges this shard's gauges with every alive peer's into one
// ring-wide snapshot: counters sum, the queue high-water mark takes the max,
// SeD tables concatenate, and tenants merge by name. A peer that fails the
// exchange is simply skipped — a partial snapshot from the survivors beats
// no snapshot.
func (s *Scheduler) fanoutStats(sm *shardManager) *diet.Response {
	sm.fanouts.Add(1)
	total := s.Stats()
	for _, p := range sm.ring.Peers() {
		if !sm.members.Alive(p) {
			continue
		}
		resp, err := sm.forwardTo(p, &diet.Request{Version: diet.ProtocolVersion, Kind: diet.KindStats, Stats: &diet.StatsRequest{}})
		if err != nil || resp.Stats == nil {
			continue
		}
		mergeStats(&total, resp.Stats)
	}
	return &diet.Response{Stats: &total}
}

func mergeStats(dst *diet.StatsResponse, src *diet.StatsResponse) {
	dst.QueueDepth += src.QueueDepth
	if src.MaxQueueDepth > dst.MaxQueueDepth {
		dst.MaxQueueDepth = src.MaxQueueDepth
	}
	dst.Running += src.Running
	dst.Completed += src.Completed
	dst.Failed += src.Failed
	dst.Cancelled += src.Cancelled
	dst.Rejected += src.Rejected
	dst.Requeues += src.Requeues
	dst.Evicted += src.Evicted
	dst.SeDs = append(dst.SeDs, src.SeDs...)
	dst.Tenants = mergeTenants(dst.Tenants, src.Tenants)
}

// mergeTenants folds two per-tenant breakdowns by tenant name: gauges and
// counters sum, the wait maximum takes the max, and the weight — configured
// identically on every shard — keeps whichever side reports the larger.
func mergeTenants(a, b []diet.TenantStatus) []diet.TenantStatus {
	byName := make(map[string]diet.TenantStatus, len(a)+len(b))
	for _, t := range a {
		byName[t.Tenant] = t
	}
	for _, t := range b {
		d, ok := byName[t.Tenant]
		if !ok {
			byName[t.Tenant] = t
			continue
		}
		d.Queued += t.Queued
		d.Running += t.Running
		d.Admitted += t.Admitted
		d.Completed += t.Completed
		d.Failed += t.Failed
		d.Cancelled += t.Cancelled
		d.QuotaRejected += t.QuotaRejected
		d.WaitCount += t.WaitCount
		d.WaitSumMs += t.WaitSumMs
		if t.WaitMaxMs > d.WaitMaxMs {
			d.WaitMaxMs = t.WaitMaxMs
		}
		if t.Weight > d.Weight {
			d.Weight = t.Weight
		}
		byName[t.Tenant] = d
	}
	out := make([]diet.TenantStatus, 0, len(byName))
	for _, t := range byName {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// fanoutList enumerates the ring-wide campaign namespace: the local table
// plus every alive peer's, deduplicated by ID (an adopted campaign can
// briefly exist on two shards) and returned in ascending admission order.
func (s *Scheduler) fanoutList(sm *shardManager, filter *diet.ListCampaignsRequest) *diet.Response {
	if filter == nil {
		return &diet.Response{Err: "list-campaigns: empty payload"}
	}
	sm.fanouts.Add(1)
	all := s.ListCampaigns(filter)
	seen := make(map[uint64]bool, len(all))
	for _, ci := range all {
		seen[ci.ID] = true
	}
	for _, p := range sm.ring.Peers() {
		if !sm.members.Alive(p) {
			continue
		}
		resp, err := sm.forwardTo(p, &diet.Request{Version: diet.ProtocolVersion, Kind: diet.KindListCampaigns, ListCampaigns: filter})
		if err != nil || resp.ListCampaigns == nil {
			continue
		}
		for _, ci := range resp.ListCampaigns.Campaigns {
			if !seen[ci.ID] {
				seen[ci.ID] = true
				all = append(all, ci)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return &diet.Response{ListCampaigns: &diet.ListCampaignsResponse{Campaigns: all}}
}

// proxyAttach relays an attach stream for a legacy (pre-v6) client: this
// shard attaches to the owner with the in-package client and replays the
// verdict, progress frames, and result onto the client's connection. A v6
// client would get a one-frame redirect instead; the proxy exists so the
// ring is invisible to clients that predate it.
func (s *Scheduler) proxyAttach(send respSender, ver int, owner string, req *diet.AttachRequest) {
	if req == nil {
		_ = send.send(&diet.Response{Err: "attach: empty payload"})
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	relay := &Client{Addr: owner}
	verdictSent := false
	onAttach := func(v *diet.AttachResponse) {
		verdictSent = true
		if send.send(&diet.Response{Attach: v}) != nil {
			cancel() // client gone: tear the relay stream down too
		}
	}
	var onProgress func(*diet.ProgressUpdate)
	if req.Progress && ver >= diet.ProtocolV2 {
		onProgress = func(u *diet.ProgressUpdate) {
			if send.sendProgress(&progressFrame{u: *u}) != nil {
				cancel()
			}
		}
	}
	res, err := relay.AttachContext(ctx, req.ID, onAttach, onProgress)
	switch {
	case res != nil:
		// Terminal snapshot, whatever its status: the client maps
		// failed/cancelled results to its typed errors itself.
		_ = send.send(&diet.Response{Result: res})
	case errors.Is(err, ErrUnknownCampaign):
		// Mirror serveAttach's unknown-ID verdict (Found unset).
		_ = send.send(&diet.Response{Attach: &diet.AttachResponse{ID: req.ID}})
	case err != nil && !verdictSent:
		_ = send.send(&diet.Response{Err: fmt.Sprintf("grid: proxying attach for campaign %d to %s: %v", req.ID, owner, err)})
	case err != nil:
		_ = send.send(&diet.Response{Err: fmt.Sprintf("grid: attach proxy to %s lost: %v", owner, err)})
	}
}
