package grid

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oagrid/internal/diet"
	"oagrid/internal/ring"
	"oagrid/internal/store"
)

// ringCallTimeout bounds one shard-to-shard exchange: a ring ping, a WAL
// segment pull, or a forwarded one-shot request. Ring peers are other
// daemons on the same deployment, so the transport default is generous
// enough.
const ringCallTimeout = 5 * time.Second

// shardManager is the scheduler's ring runtime: the consistent-hash
// ownership view, the peer liveness tracker, the WAL replica tails, and the
// failover that replays a dead peer's campaigns into this shard. It is
// attached to a running Scheduler by JoinRing and driven by one loop
// goroutine per shard.
type shardManager struct {
	s       *Scheduler
	ring    *ring.Ring
	members *ring.Members
	hbEvery time.Duration

	stop chan struct{}
	wg   sync.WaitGroup

	// Shard gauges, exposed on /metrics.
	forwarded  atomic.Uint64 // requests forwarded to the owner for legacy clients
	redirected atomic.Uint64 // v6 clients pointed at the owner to retry direct
	proxied    atomic.Uint64 // attach streams relayed to the owner for legacy clients
	fanouts    atomic.Uint64 // list/stats fan-outs over the alive peer set
	served     atomic.Uint64 // forwarded requests served on a peer's behalf
	adopted    atomic.Uint64 // campaigns adopted from dead peers' replicas

	mu    sync.Mutex
	tails map[string]*replicaTail
	// failedOver latches peers whose replica was already replayed since
	// they last went dead, so a dead peer is adopted once per death, not
	// once per tick. A peer coming back alive clears its latch; a change in
	// the alive set clears every latch, because ownership under the new
	// view may hand this shard campaigns an earlier replay skipped.
	failedOver map[string]bool
	lastAlive  string
}

// replicaTail is the pull state of one peer's WAL replica: the generation
// and offset acknowledged so far, and the local file the segments append to.
type replicaTail struct {
	path string
	gen  uint64
	off  int64
}

// replicaName maps a peer address onto its replica file name under the
// state dir ("127.0.0.1:7714" → "replica-127.0.0.1_7714.wal").
func replicaName(addr string) string {
	return "replica-" + strings.NewReplacer(":", "_", "/", "_").Replace(addr) + ".wal"
}

// JoinRing makes this scheduler one shard of a static daemon ring: self is
// the address peers know this shard by (it must appear in members), members
// is the full ring list shared by every shard. Campaign IDs are owned by
// consistent hash — this shard only mints IDs it is home for, forwards or
// redirects requests for campaigns it does not own, and fans List/Stats out
// over the alive peers. Every hbEvery it pings each peer (the v6 ring
// handshake; an incompatible peer is refused membership with
// ring.ErrIncompatiblePeer in its status) and tails each peer's WAL into a
// local replica; a peer silent past deadAfter is declared dead and its
// campaigns — those whose failover owner is this shard — are replayed from
// the replica, re-admitted, and finished here. Ring membership requires a
// StateDir: the WAL is both the replication source and the failover
// substrate. Call after Start; zero durations pick 1s heartbeats and a
// 4-heartbeat death deadline.
func (s *Scheduler) JoinRing(self string, members []string, hbEvery, deadAfter time.Duration) error {
	if s.store == nil {
		return errors.New("grid: ring membership requires a StateDir (the WAL is the failover substrate)")
	}
	r, err := ring.New(self, members)
	if err != nil {
		return err
	}
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	if deadAfter <= 0 {
		deadAfter = 4 * hbEvery
	}
	sm := &shardManager{
		s:          s,
		ring:       r,
		members:    ring.NewMembers(r, deadAfter),
		hbEvery:    hbEvery,
		stop:       make(chan struct{}),
		tails:      make(map[string]*replicaTail),
		failedOver: make(map[string]bool),
	}
	for _, p := range r.Peers() {
		sm.tails[p] = &replicaTail{path: filepath.Join(s.cfg.StateDir, replicaName(p))}
	}
	if !s.shard.CompareAndSwap(nil, sm) {
		return errors.New("grid: scheduler already joined a ring")
	}
	// The allocator must never again mint an ID this shard is not home
	// for; advance past any foreign recovered IDs immediately.
	s.mu.Lock()
	s.nextID = s.ownedIDAfter(s.nextID) - 1
	s.mu.Unlock()
	sm.wg.Add(1)
	go sm.loop()
	return nil
}

// shardManager returns the ring runtime, nil when the scheduler is not a
// ring member.
func (s *Scheduler) shardManager() *shardManager {
	return s.shard.Load()
}

// ownedIDAfter returns the smallest ID strictly greater than id that this
// shard is home for under the ring's full member list — the allocation rule
// that keeps ID ranges disjoint across shards however their liveness views
// diverge. Without a ring every ID qualifies. Callers hold s.mu.
func (s *Scheduler) ownedIDAfter(id uint64) uint64 {
	sm := s.shard.Load()
	id++
	if sm == nil {
		return id
	}
	for sm.ring.Home(id) != sm.ring.Self() {
		id++
	}
	return id
}

// owner resolves a campaign ID's current owner under the live member view.
func (sm *shardManager) owner(id uint64) string {
	return sm.ring.Owner(id, sm.members.AliveFn())
}

// close stops the ring loop and waits it out.
func (sm *shardManager) close() {
	select {
	case <-sm.stop:
	default:
		close(sm.stop)
	}
	sm.wg.Wait()
}

// loop is the shard heartbeat: every hbEvery it pings each peer, tails the
// alive ones' WALs, and runs failover for the dead ones. The first tick
// fires immediately so a freshly joined ring converges fast.
func (sm *shardManager) loop() {
	defer sm.wg.Done()
	tick := time.NewTicker(sm.hbEvery)
	defer tick.Stop()
	sm.tick()
	for {
		select {
		case <-sm.stop:
			return
		case <-tick.C:
			sm.tick()
		}
	}
}

func (sm *shardManager) tick() {
	for _, p := range sm.ring.Peers() {
		sm.ping(p)
		if sm.members.Alive(p) {
			sm.pull(p)
			sm.mu.Lock()
			delete(sm.failedOver, p)
			sm.mu.Unlock()
		}
	}
	// Failover after the full ping round: adoption decisions use the
	// freshest liveness view the ring can have this tick. When the alive
	// set changed, every dead peer's replica is re-evaluated — ownership
	// under the new view may have moved campaigns to this shard that an
	// earlier replay correctly left to someone else.
	aliveKey := ""
	for _, m := range sm.ring.Members() {
		if sm.members.Alive(m) {
			aliveKey += m + ","
		}
	}
	sm.mu.Lock()
	if aliveKey != sm.lastAlive {
		sm.lastAlive = aliveKey
		clear(sm.failedOver)
	}
	sm.mu.Unlock()
	for _, p := range sm.ring.Peers() {
		if sm.members.Alive(p) {
			continue
		}
		sm.mu.Lock()
		done := sm.failedOver[p]
		if !done {
			sm.failedOver[p] = true
		}
		sm.mu.Unlock()
		if !done {
			sm.failover(p)
		}
	}
}

// ping runs the v6 ring handshake against one peer and folds the outcome
// into the liveness view. A peer answering below v6 (a version-capped or
// pre-ring build) is recorded as refused — it keeps serving plain client
// traffic, it just cannot be a ring member.
func (sm *shardManager) ping(p string) {
	resp, err := diet.RoundTripTimeout(p, &diet.Request{
		Version: diet.ProtocolVersion,
		Kind:    diet.KindRingPing,
		Ring:    &diet.RingPingRequest{From: sm.ring.Self(), Members: sm.ring.Members()},
	}, ringCallTimeout)
	if err != nil {
		sm.members.ObservePing(p, 0, false, err)
		return
	}
	if resp.Ring == nil {
		sm.members.ObservePing(p, 0, false, fmt.Errorf("grid: ring peer %s sent no ping response", p))
		return
	}
	sm.members.ObservePing(p, resp.Ring.Version, resp.Ring.Accepted, nil)
}

// maxPullsPerTick bounds how many segment chunks one tick pulls from one
// peer, so a peer with a huge backlog cannot stall the heartbeat loop.
const maxPullsPerTick = 16

// pull tails one peer's WAL into the local replica file: segments are
// requested from the acknowledged (generation, offset) and appended; a
// generation mismatch (the peer rotated, compacted, or restarted its
// journal) resets the replica and restarts the tail from offset 0.
func (sm *shardManager) pull(p string) {
	sm.mu.Lock()
	tail := sm.tails[p]
	sm.mu.Unlock()
	if tail == nil {
		return
	}
	for i := 0; i < maxPullsPerTick; i++ {
		resp, err := diet.RoundTripTimeout(p, &diet.Request{
			Version: diet.ProtocolVersion,
			Kind:    diet.KindSegment,
			Segment: &diet.SegmentRequest{From: sm.ring.Self(), Generation: tail.gen, Offset: tail.off},
		}, ringCallTimeout)
		if err != nil || resp.Segment == nil {
			return
		}
		seg := resp.Segment
		if seg.Reset {
			if err := os.WriteFile(tail.path, seg.Data, 0o644); err != nil {
				return
			}
			tail.gen, tail.off = seg.Generation, seg.Offset
			continue
		}
		if len(seg.Data) == 0 {
			return // caught up
		}
		f, err := os.OpenFile(tail.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return
		}
		_, werr := f.Write(seg.Data)
		if cerr := f.Close(); werr != nil || cerr != nil {
			return
		}
		tail.off = seg.Offset
	}
}

// replicaBytes reports one peer replica's on-disk size, 0 when absent.
func (sm *shardManager) replicaBytes(p string) int64 {
	sm.mu.Lock()
	tail := sm.tails[p]
	sm.mu.Unlock()
	if tail == nil {
		return 0
	}
	fi, err := os.Stat(tail.path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// failover replays a dead peer's WAL replica and adopts every campaign
// whose failover owner is this shard: terminal campaigns come back pollable
// and attachable under their original IDs, non-terminal ones are re-admitted
// with their unfinished scenarios requeued and finish here — bit-identically,
// because every shard runs the same cluster profiles and the evaluation is
// deterministic. Campaigns owned by other survivors are left to them; the
// dead peer's own IDs can never collide with ours because allocation is
// home-based.
func (sm *shardManager) failover(p string) {
	sm.mu.Lock()
	tail := sm.tails[p]
	sm.mu.Unlock()
	if tail == nil {
		return
	}
	byID, err := store.ReplayFile(tail.path)
	if err != nil || len(byID) == 0 {
		return
	}
	alive := sm.members.AliveFn()
	self := sm.ring.Self()
	n := 0
	for _, rc := range store.ByID(byID) {
		if sm.ring.Owner(rc.ID, alive) != self {
			continue
		}
		if sm.s.adoptCampaign(rc) {
			n++
		}
	}
	if n > 0 {
		sm.adopted.Add(uint64(n))
	}
}

// adoptCampaign installs one replayed campaign from a dead peer's replica
// into this scheduler, exactly as startup recovery would: its journal
// records are re-appended to our own WAL first (durable before visible),
// terminal campaigns go straight to the finished table, and non-terminal
// ones are re-admitted bypassing quotas — a backlog a ring member already
// accepted must never be dropped by its successor. Reports false when the
// campaign is already known here.
func (s *Scheduler) adoptCampaign(rc *store.Campaign) bool {
	if s.lookup(rc.ID) != nil {
		return false
	}
	for _, rec := range rc.Records() {
		if err := s.store.Append(rec); err != nil {
			return false
		}
	}
	c := recoveredCampaign(rc)
	c.tenant = s.tenantName(c.labels)
	s.mu.Lock()
	if s.campaigns[rc.ID] != nil {
		s.mu.Unlock()
		return false
	}
	c.tenant = s.canonicalTenant(c.tenant)
	s.campaigns[c.id] = c
	if rc.Terminal() {
		s.retire(c)
		s.mu.Unlock()
		return true
	}
	c.enqueuedAt = time.Now()
	s.queueLen++
	if s.queueLen > s.maxQueue {
		s.maxQueue = s.queueLen
	}
	t := s.tenant(c.tenant)
	t.queued++
	if len(t.queue) == 0 {
		t.vfinish = math.Max(s.vtime, t.vfinish) + 1/t.weight
	}
	t.queue = append(t.queue, c)
	s.mu.Unlock()
	// The token send runs off the lock: adoption may overshoot the
	// admission bound (and with it the token channel's capacity), and a
	// blocked send must never hold s.mu. The campaign is already queued, so
	// order holds: tokens never outnumber queued campaigns.
	select {
	case s.tokens <- struct{}{}:
	case <-s.done:
	}
	return true
}
