package grid

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/diet"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
)

// queueScheduler builds a bare scheduler — queue structures only, no
// listener or dispatchers — for exercising enqueue/dequeue directly.
func queueScheduler(cfg Config) *Scheduler {
	return &Scheduler{
		cfg:       cfg.withDefaults(),
		tokens:    make(chan struct{}, 1024),
		done:      make(chan struct{}),
		tenants:   make(map[string]*tenantState),
		campaigns: make(map[uint64]*campaign),
	}
}

// push reserves the queue slots and enqueues like admit does, minus the
// admission control.
func (s *Scheduler) push(c *campaign) {
	if c.tenant == "" {
		c.tenant = s.tenantName(c.labels)
	}
	if c.enqueuedAt.IsZero() {
		c.enqueuedAt = time.Now()
	}
	s.mu.Lock()
	s.queueLen++
	s.tenant(c.tenant).queued++
	s.tenant(c.tenant).admitted++
	s.enqueue(c)
	s.mu.Unlock()
}

// TestCampaignQueueOrder: within one tenant the queue pops by (priority
// desc, id asc) — higher priorities first, strict admission order within a
// priority.
func TestCampaignQueueOrder(t *testing.T) {
	app := core.Application{Scenarios: 1, Months: 1}
	s := queueScheduler(Config{})
	type in struct {
		id  uint64
		pri int
	}
	pushes := []in{{1, 0}, {2, 5}, {3, 0}, {4, 5}, {5, -3}, {6, 9}, {7, 0}}
	for _, p := range pushes {
		s.push(newCampaign(p.id, app, core.NameKnapsack, submitMeta{priority: p.pri}))
	}
	want := []uint64{6, 2, 4, 1, 3, 7, 5}
	for i, id := range want {
		c := s.dequeue()
		if c.id != id {
			t.Fatalf("pop %d returned campaign %d (priority %d), want %d", i, c.id, c.priority, id)
		}
	}
	if s.queueLen != 0 {
		t.Fatalf("queue still holds %d campaigns after draining", s.queueLen)
	}
}

// TestSchedulerCancelQueuedCampaign: a campaign cancelled while still
// queued never dispatches — the dispatcher pops the corpse and skips it —
// and later traffic keeps flowing.
func TestSchedulerCancelQueuedCampaign(t *testing.T) {
	// One dispatcher and a long occupant keep the victim queued while the
	// cancel lands.
	f := startFabric(t, Config{
		Addr:        "127.0.0.1:0",
		Dispatchers: 1,
		EvictAfter:  2 * time.Second,
	}, 2)

	c := &Client{Addr: f.Sched.Addr(), Timeout: time.Minute}
	occupant, err := c.Submit(core.Application{Scenarios: 6, Months: 120}, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := c.Submit(core.Application{Scenarios: 6, Months: 120}, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}

	status, err := c.CancelContext(context.Background(), victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status != diet.CampaignCancelled {
		t.Fatalf("cancel verdict %q, want cancelled", status)
	}
	info, err := c.InfoContext(context.Background(), victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != diet.CampaignCancelled || info.Done != 0 {
		t.Fatalf("queued victim info %+v, want cancelled with no work done", info)
	}

	// The occupant and fresh traffic still complete.
	for _, id := range []uint64{occupant.ID} {
		deadline := time.Now().Add(60 * time.Second)
		for {
			res, err := c.Result(id)
			if err != nil {
				t.Fatal(err)
			}
			if res.Status == diet.CampaignDone {
				break
			}
			if res.Status == diet.CampaignFailed || res.Status == diet.CampaignCancelled {
				t.Fatalf("occupant ended %q: %s", res.Status, res.Err)
			}
			if time.Now().After(deadline) {
				t.Fatalf("occupant stuck in %q", res.Status)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if _, err := c.Run(core.Application{Scenarios: 2, Months: 6}, core.NameKnapsack); err != nil {
		t.Fatalf("daemon unhealthy after queued cancel: %v", err)
	}
	stats := f.Sched.Stats()
	if stats.Cancelled != 1 {
		t.Fatalf("stats report %d cancelled campaigns, want 1", stats.Cancelled)
	}
}

// gateSeD is a scripted server daemon: performance vectors answer
// instantly with a synthetic monotone vector, but every exec request parks
// on a gate until the test releases it — so the test controls exactly when
// chunks are in flight and in what order the dispatcher serves campaigns.
type gateSeD struct {
	ln net.Listener
	// execArrived carries the scenario count of each exec request in
	// arrival order; campaigns are told apart by their distinct NS.
	execArrived chan int
	// release lets one parked exec answer per token.
	release chan struct{}
	stop    chan struct{}
}

func startGateSeD(t *testing.T, schedAddr string) *gateSeD {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	g := &gateSeD{
		ln:          ln,
		execArrived: make(chan int, 16),
		release:     make(chan struct{}, 16),
		stop:        make(chan struct{}),
	}
	go diet.Serve(ln, g.handle)
	go func() {
		for {
			_, _ = diet.RoundTrip(schedAddr, &diet.Request{Kind: diet.KindHeartbeat, Heartbeat: &diet.HeartbeatRequest{
				Cluster: "gate", Addr: ln.Addr().String(), Procs: 8,
			}})
			select {
			case <-g.stop:
				return
			case <-time.After(50 * time.Millisecond):
			}
		}
	}()
	t.Cleanup(func() {
		close(g.stop)
		ln.Close()
	})
	return g
}

func (g *gateSeD) handle(req *diet.Request) *diet.Response {
	switch req.Kind {
	case diet.KindPerf:
		vec := make([]float64, req.Perf.Scenarios)
		for i := range vec {
			vec[i] = float64(i + 1)
		}
		return &diet.Response{Perf: &diet.PerfResponse{Cluster: "gate", Procs: 8, Vector: vec}}
	case diet.KindExec:
		g.execArrived <- len(req.Exec.ScenarioIDs)
		select {
		case <-g.release:
		case <-g.stop:
		}
		return &diet.Response{Exec: &diet.ExecResponse{
			Cluster:   "gate",
			Makespan:  float64(len(req.Exec.ScenarioIDs)),
			Scenarios: len(req.Exec.ScenarioIDs),
		}}
	default:
		return &diet.Response{Err: "gate SeD: unsupported " + req.Kind}
	}
}

// nextExec waits for the next exec arrival at the gate.
func (g *gateSeD) nextExec(t *testing.T) int {
	t.Helper()
	select {
	case n := <-g.execArrived:
		return n
	case <-time.After(20 * time.Second):
		t.Fatal("no exec request reached the gate SeD")
		return 0
	}
}

// waitStatus polls a campaign until it reaches the wanted status.
func waitStatus(t *testing.T, c *Client, id uint64, want string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		info, err := c.InfoContext(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Status == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %d stuck in %q, want %q", id, info.Status, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPriorityOrdersAdmission: with the single dispatcher pinned by an
// in-flight campaign, a higher-priority later submission is dispatched
// ahead of an earlier lower-priority one — observed deterministically as
// the order in which exec requests reach the gate SeD.
func TestPriorityOrdersAdmission(t *testing.T) {
	s, err := Start(Config{Addr: "127.0.0.1:0", Dispatchers: 1, EvictAfter: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	g := startGateSeD(t, s.Addr())
	waitAliveAddr(t, s.Addr(), 1, 10*time.Second)

	c := &Client{Addr: s.Addr(), Timeout: time.Minute}
	// Campaigns are told apart by NS: occupant 3, low 4, high 5.
	occupant, err := c.Submit(core.Application{Scenarios: 3, Months: 6}, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	if n := g.nextExec(t); n != 3 {
		t.Fatalf("occupant dispatched %d scenarios, want 3", n)
	}
	// The dispatcher is now parked on the occupant's chunk; these two queue.
	low, err := c.SubmitContext(context.Background(), core.Application{Scenarios: 4, Months: 6}, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	highReq := &diet.Request{Version: diet.ProtocolVersion, Kind: diet.KindSubmit, Submit: &diet.SubmitRequest{
		Scenarios: 5, Months: 6, Heuristic: core.NameKnapsack, Priority: 9,
		Labels: map[string]string{"tier": "gold"},
	}}
	resp, err := diet.RoundTrip(s.Addr(), highReq)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Submit == nil || !resp.Submit.Accepted {
		t.Fatalf("high-priority submit not accepted: %+v", resp)
	}
	high := resp.Submit

	g.release <- struct{}{} // finish the occupant
	if n := g.nextExec(t); n != 5 {
		t.Fatalf("after the occupant, the dispatcher served %d scenarios, want the high-priority 5", n)
	}
	g.release <- struct{}{}
	if n := g.nextExec(t); n != 4 {
		t.Fatalf("after the high-priority campaign, the dispatcher served %d scenarios, want 4", n)
	}
	g.release <- struct{}{}

	for _, id := range []uint64{occupant.ID, low.ID, high.ID} {
		waitStatus(t, c, id, diet.CampaignDone)
	}
	// The submit options round-tripped into the control-plane view.
	info, err := c.InfoContext(context.Background(), high.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Priority != 9 || info.Labels["tier"] != "gold" {
		t.Fatalf("high-priority info %+v, want priority 9 and its labels", info)
	}
}

// TestCancelDiscardsInFlightChunk is the chunk-boundary guarantee,
// deterministically: a campaign whose only chunk is parked at the gate SeD
// is cancelled; the verdict returns, the chunk is then released — and its
// report must be discarded: no chunk frame on the stream, progress gauges
// frozen at zero, the connection closed with the cancelled verdict.
func TestCancelDiscardsInFlightChunk(t *testing.T) {
	s, err := Start(Config{Addr: "127.0.0.1:0", Dispatchers: 1, EvictAfter: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	g := startGateSeD(t, s.Addr())
	waitAliveAddr(t, s.Addr(), 1, 10*time.Second)

	c := &Client{Addr: s.Addr(), Timeout: time.Minute}
	idCh := make(chan uint64, 1)
	var mu sync.Mutex
	var stages []string
	errCh := make(chan error, 1)
	go func() {
		_, err := c.RunContext(context.Background(), core.Application{Scenarios: 4, Months: 6}, core.NameKnapsack, SubmitMeta{},
			func(id uint64) { idCh <- id },
			func(u *diet.ProgressUpdate) {
				mu.Lock()
				stages = append(stages, u.Stage)
				mu.Unlock()
			})
		errCh <- err
	}()
	id := <-idCh
	if n := g.nextExec(t); n != 4 {
		t.Fatalf("gate saw %d scenarios, want 4", n)
	}
	// The chunk is in flight. Cancel, then let it answer.
	status, err := c.CancelContext(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if status != diet.CampaignCancelled {
		t.Fatalf("cancel verdict %q", status)
	}
	g.release <- struct{}{}

	if err := <-errCh; !errors.Is(err, ErrCampaignCancelled) {
		t.Fatalf("stream resolved with %v, want ErrCampaignCancelled", err)
	}
	mu.Lock()
	for _, stage := range stages {
		if stage == diet.StageChunk {
			t.Fatal("a chunk frame followed the cancel verdict")
		}
	}
	mu.Unlock()
	// Gauges frozen at the claim: the released chunk was discarded.
	time.Sleep(200 * time.Millisecond)
	info, err := c.InfoContext(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != diet.CampaignCancelled || info.Done != 0 {
		t.Fatalf("cancelled campaign info %+v, want cancelled with nothing done", info)
	}
	// The daemon still serves new work through the same gate.
	verdict, err := c.SubmitContext(context.Background(), core.Application{Scenarios: 2, Months: 6}, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	if n := g.nextExec(t); n != 2 {
		t.Fatalf("post-cancel campaign dispatched %d scenarios, want 2", n)
	}
	g.release <- struct{}{}
	waitStatus(t, c, verdict.ID, diet.CampaignDone)
}

// TestCancelSurvivesKillDashNine is the control plane's acceptance
// gauntlet: a campaign is cancelled on a durable daemon, the daemon is
// SIGKILLed, and the restarted daemon must still know the campaign as
// cancelled — never re-admitting it — because the cancelled record was
// fsynced before the cancel verdict went out.
func TestCancelSurvivesKillDashNine(t *testing.T) {
	dir := t.TempDir()
	cmd1, addr := startDaemonChild(t, "127.0.0.1:0", dir)

	// The SeD fleet lives in the test process and rejoins the restarted
	// daemon by heartbeat.
	for _, cl := range platform.FiveClusters()[:3] {
		cl.Procs = 30
		sed, err := diet.StartSeD("127.0.0.1:0", cl, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sed.Close() })
		sed.StartHeartbeats(addr, 50*time.Millisecond)
	}
	waitAliveAddr(t, addr, 3, 10*time.Second)

	c := &Client{Addr: addr, Timeout: 30 * time.Second}
	// Big enough that the cancel lands mid-evaluation, not after the fact.
	verdict, err := c.SubmitContext(context.Background(), core.Application{Scenarios: 10, Months: 1800}, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	id := verdict.ID

	// Wait until the campaign is actually running — cancel mid-round, with
	// chunks in flight.
	deadline := time.Now().Add(20 * time.Second)
	for {
		info, err := c.InfoContext(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Status == diet.CampaignRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never started running (status %q)", info.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	status, err := c.CancelContext(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if status != diet.CampaignCancelled {
		t.Fatalf("cancel verdict %q, want cancelled", status)
	}

	// kill -9 and restart on the same state dir.
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()
	_, addr2 := startDaemonChild(t, addr, dir)
	if addr2 != addr {
		t.Fatalf("restarted daemon on %s, want %s", addr2, addr)
	}
	waitAliveAddr(t, addr, 3, 10*time.Second)

	// The replayed campaign is still cancelled: not re-admitted, and an
	// attach resolves with the typed error.
	info, err := c.InfoContext(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != diet.CampaignCancelled {
		t.Fatalf("replayed campaign status %q, want cancelled", info.Status)
	}
	if _, err := c.AttachContext(context.Background(), id, nil, nil); !errors.Is(err, ErrCampaignCancelled) {
		t.Fatalf("attach to replayed cancelled campaign returned %v, want ErrCampaignCancelled", err)
	}
	queued, err := c.ListCampaignsContext(context.Background(), &diet.ListCampaignsRequest{Status: diet.CampaignQueued})
	if err != nil {
		t.Fatal(err)
	}
	for _, ci := range queued {
		if ci.ID == id {
			t.Fatal("cancelled campaign was re-admitted by journal replay")
		}
	}

	// And the daemon still serves new work bit-identically.
	res, err := c.Run(core.Application{Scenarios: 4, Months: 12}, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != diet.CampaignDone {
		t.Fatalf("post-restart campaign status %q", res.Status)
	}
}
