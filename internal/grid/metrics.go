package grid

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"oagrid/internal/diet"
)

// metricsServer is the daemon's observability endpoint: an HTTP listener
// serving the scheduler's gauges in the Prometheus text exposition format
// on GET /metrics. It is read-only and deliberately stdlib-only — the
// format is simple enough that hand-writing it beats carrying a client
// library dependency for one endpoint.
type metricsServer struct {
	ln  net.Listener
	srv *http.Server
}

func startMetrics(addr string, s *Scheduler) (*metricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("grid: metrics listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.writeMetrics(w)
	})
	m := &metricsServer{ln: ln, srv: &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}}
	go m.srv.Serve(ln)
	return m, nil
}

func (m *metricsServer) addr() string { return m.ln.Addr().String() }

func (m *metricsServer) close() { _ = m.srv.Close() }

// promReplacer escapes label values per the exposition format; stateless
// and safe for concurrent use, so built once instead of per label value.
var promReplacer = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string { return promReplacer.Replace(v) }

// metricsWriter accumulates one exposition-format family at a time.
type metricsWriter struct {
	w io.Writer
}

// family writes the # HELP / # TYPE preamble.
func (mw *metricsWriter) family(name, typ, help string) {
	fmt.Fprintf(mw.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample writes one sample line; labels alternate key, value.
func (mw *metricsWriter) sample(name string, value float64, labels ...string) {
	if len(labels) == 0 {
		fmt.Fprintf(mw.w, "%s %v\n", name, value)
		return
	}
	pairs := make([]string, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, fmt.Sprintf("%s=%q", labels[i], promEscape(labels[i+1])))
	}
	fmt.Fprintf(mw.w, "%s{%s} %v\n", name, strings.Join(pairs, ","), value)
}

// writeMetrics renders the scheduler's full gauge set: queue and campaign
// counters, the per-tenant weighted-fair-queueing breakdown, per-SeD
// utilization, the WAL size, and the process-wide wire accounting.
func (s *Scheduler) writeMetrics(w io.Writer) {
	st := s.Stats()
	mw := &metricsWriter{w: w}

	mw.family("oagrid_queue_depth", "gauge", "Campaigns currently queued for dispatch.")
	mw.sample("oagrid_queue_depth", float64(st.QueueDepth))
	mw.family("oagrid_queue_depth_max", "gauge", "High-water mark of the campaign queue.")
	mw.sample("oagrid_queue_depth_max", float64(st.MaxQueueDepth))
	mw.family("oagrid_running", "gauge", "Campaigns currently held by a dispatcher.")
	mw.sample("oagrid_running", float64(st.Running))

	mw.family("oagrid_campaigns_completed_total", "counter", "Campaigns finished successfully.")
	mw.sample("oagrid_campaigns_completed_total", float64(st.Completed))
	mw.family("oagrid_campaigns_failed_total", "counter", "Campaigns driven to the failed state.")
	mw.sample("oagrid_campaigns_failed_total", float64(st.Failed))
	mw.family("oagrid_campaigns_cancelled_total", "counter", "Campaigns terminated by server-side cancel.")
	mw.sample("oagrid_campaigns_cancelled_total", float64(st.Cancelled))
	mw.family("oagrid_submits_rejected_total", "counter", "Submissions rejected at admission (queue-full and quota).")
	mw.sample("oagrid_submits_rejected_total", float64(st.Rejected))
	mw.family("oagrid_requeues_total", "counter", "Chunks lost to dead SeDs and re-repartitioned.")
	mw.sample("oagrid_requeues_total", float64(st.Requeues))
	mw.family("oagrid_seds_evicted_total", "counter", "SeD evictions for missed heartbeats or failed exchanges.")
	mw.sample("oagrid_seds_evicted_total", float64(st.Evicted))

	mw.family("oagrid_tenant_weight", "gauge", "Configured weighted-fair-queueing weight.")
	for _, t := range st.Tenants {
		mw.sample("oagrid_tenant_weight", t.Weight, "tenant", t.Tenant)
	}
	mw.family("oagrid_tenant_queued", "gauge", "Queued campaigns per tenant.")
	for _, t := range st.Tenants {
		mw.sample("oagrid_tenant_queued", float64(t.Queued), "tenant", t.Tenant)
	}
	mw.family("oagrid_tenant_running", "gauge", "Running campaigns per tenant.")
	for _, t := range st.Tenants {
		mw.sample("oagrid_tenant_running", float64(t.Running), "tenant", t.Tenant)
	}
	mw.family("oagrid_tenant_admitted_total", "counter", "Campaigns admitted per tenant.")
	for _, t := range st.Tenants {
		mw.sample("oagrid_tenant_admitted_total", float64(t.Admitted), "tenant", t.Tenant)
	}
	mw.family("oagrid_tenant_completed_total", "counter", "Campaigns completed per tenant.")
	for _, t := range st.Tenants {
		mw.sample("oagrid_tenant_completed_total", float64(t.Completed), "tenant", t.Tenant)
	}
	mw.family("oagrid_tenant_failed_total", "counter", "Campaigns failed per tenant.")
	for _, t := range st.Tenants {
		mw.sample("oagrid_tenant_failed_total", float64(t.Failed), "tenant", t.Tenant)
	}
	mw.family("oagrid_tenant_cancelled_total", "counter", "Campaigns cancelled per tenant.")
	for _, t := range st.Tenants {
		mw.sample("oagrid_tenant_cancelled_total", float64(t.Cancelled), "tenant", t.Tenant)
	}
	mw.family("oagrid_tenant_quota_rejected_total", "counter", "Submissions rejected by the tenant's admission quota.")
	for _, t := range st.Tenants {
		mw.sample("oagrid_tenant_quota_rejected_total", float64(t.QuotaRejected), "tenant", t.Tenant)
	}
	mw.family("oagrid_tenant_queue_wait_seconds_sum", "counter", "Summed admission-to-dispatch wait per tenant.")
	for _, t := range st.Tenants {
		mw.sample("oagrid_tenant_queue_wait_seconds_sum", t.WaitSumMs/1000, "tenant", t.Tenant)
	}
	mw.family("oagrid_tenant_queue_wait_seconds_count", "counter", "Dispatches contributing to the wait sum per tenant.")
	for _, t := range st.Tenants {
		mw.sample("oagrid_tenant_queue_wait_seconds_count", float64(t.WaitCount), "tenant", t.Tenant)
	}
	mw.family("oagrid_tenant_queue_wait_seconds_max", "gauge", "Longest admission-to-dispatch wait per tenant.")
	for _, t := range st.Tenants {
		mw.sample("oagrid_tenant_queue_wait_seconds_max", t.WaitMaxMs/1000, "tenant", t.Tenant)
	}

	mw.family("oagrid_sed_alive", "gauge", "1 when the SeD is within its heartbeat deadline.")
	for _, sd := range st.SeDs {
		alive := 0.0
		if sd.Alive {
			alive = 1
		}
		mw.sample("oagrid_sed_alive", alive, "cluster", sd.Cluster)
	}
	mw.family("oagrid_sed_outstanding", "gauge", "Scheduler-held open requests against the SeD.")
	for _, sd := range st.SeDs {
		mw.sample("oagrid_sed_outstanding", float64(sd.Outstanding), "cluster", sd.Cluster)
	}
	mw.family("oagrid_sed_utilization", "gauge", "Outstanding requests over the per-SeD in-flight limit (0-1).")
	for _, sd := range st.SeDs {
		mw.sample("oagrid_sed_utilization", float64(sd.Outstanding)/float64(s.cfg.PerSeDInFlight), "cluster", sd.Cluster)
	}
	mw.family("oagrid_sed_speed", "gauge", "Advertised speed factor (1 = reference, 0.5 = twice as slow).")
	for _, sd := range st.SeDs {
		speed := sd.Speed
		if speed <= 0 {
			speed = 1
		}
		mw.sample("oagrid_sed_speed", speed, "cluster", sd.Cluster)
	}
	mw.family("oagrid_sed_draining", "gauge", "1 when the SeD is draining: alive, finishing in-flight work, excluded from new rounds.")
	for _, sd := range st.SeDs {
		draining := 0.0
		if sd.Draining {
			draining = 1
		}
		mw.sample("oagrid_sed_draining", draining, "cluster", sd.Cluster)
	}

	if s.store != nil {
		mw.family("oagrid_wal_bytes", "gauge", "Live campaign-journal segment size.")
		mw.sample("oagrid_wal_bytes", float64(s.store.Size()))
	}

	wire := diet.WireStats()
	mw.family("oagrid_wire_tx_bytes_total", "counter", "Process-wide wire bytes sent.")
	mw.sample("oagrid_wire_tx_bytes_total", float64(wire.BytesTx))
	mw.family("oagrid_wire_rx_bytes_total", "counter", "Process-wide wire bytes received.")
	mw.sample("oagrid_wire_rx_bytes_total", float64(wire.BytesRx))
	mw.family("oagrid_wire_tx_frames_total", "counter", "Process-wide wire frames sent.")
	mw.sample("oagrid_wire_tx_frames_total", float64(wire.FramesTx))
	mw.family("oagrid_wire_rx_frames_total", "counter", "Process-wide wire frames received.")
	mw.sample("oagrid_wire_rx_frames_total", float64(wire.FramesRx))

	if sm := s.shardManager(); sm != nil {
		s.writeRingMetrics(mw, sm)
	}
	if hook := s.metricsHook.Load(); hook != nil {
		(*hook)(w)
	}
}

// writeRingMetrics renders the shard gauges of a ring member: the ring size
// and per-peer liveness, the routing counters (forwards, redirects, proxied
// attaches, fan-outs, requests served on peers' behalf), failover adoptions,
// and each peer replica's on-disk size.
func (s *Scheduler) writeRingMetrics(mw *metricsWriter, sm *shardManager) {
	mw.family("oagrid_ring_size", "gauge", "Configured ring member count, this shard included.")
	mw.sample("oagrid_ring_size", float64(len(sm.ring.Members())))
	mw.family("oagrid_ring_peer_alive", "gauge", "1 when the ring peer answered its membership ping within the death deadline.")
	for _, ps := range sm.members.Snapshot() {
		alive := 0.0
		if ps.Alive {
			alive = 1
		}
		mw.sample("oagrid_ring_peer_alive", alive, "peer", ps.Addr)
	}
	mw.family("oagrid_ring_forwarded_total", "counter", "Requests forwarded to their owning shard for legacy clients.")
	mw.sample("oagrid_ring_forwarded_total", float64(sm.forwarded.Load()))
	mw.family("oagrid_ring_redirects_total", "counter", "Ownership redirects answered to v6 clients.")
	mw.sample("oagrid_ring_redirects_total", float64(sm.redirected.Load()))
	mw.family("oagrid_ring_proxied_total", "counter", "Attach streams relayed to their owning shard for legacy clients.")
	mw.sample("oagrid_ring_proxied_total", float64(sm.proxied.Load()))
	mw.family("oagrid_ring_fanouts_total", "counter", "List/stats requests fanned out over the alive peer set.")
	mw.sample("oagrid_ring_fanouts_total", float64(sm.fanouts.Load()))
	mw.family("oagrid_ring_served_total", "counter", "Forwarded requests served here on a peer's behalf.")
	mw.sample("oagrid_ring_served_total", float64(sm.served.Load()))
	mw.family("oagrid_ring_adopted_total", "counter", "Campaigns adopted from dead peers' WAL replicas.")
	mw.sample("oagrid_ring_adopted_total", float64(sm.adopted.Load()))
	mw.family("oagrid_ring_replica_bytes", "gauge", "On-disk size of the peer's tailed WAL replica.")
	for _, p := range sm.ring.Peers() {
		mw.sample("oagrid_ring_replica_bytes", float64(sm.replicaBytes(p)), "peer", p)
	}
}
