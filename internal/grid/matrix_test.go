package grid

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/diet"
)

// sameCampaignOutcome demands two campaign results are bit-identical where
// it matters: same report sequence (cluster, scenario count, round, first
// scenario, makespan bits) and same campaign makespan bits.
func sameCampaignOutcome(t *testing.T, tag string, got, want *diet.CampaignResult) {
	t.Helper()
	if math.Float64bits(got.Makespan) != math.Float64bits(want.Makespan) {
		t.Fatalf("%s: campaign makespan %g, want bit-identical %g", tag, got.Makespan, want.Makespan)
	}
	if len(got.Reports) != len(want.Reports) {
		t.Fatalf("%s: %d chunk reports, want %d", tag, len(got.Reports), len(want.Reports))
	}
	for i := range got.Reports {
		g, w := got.Reports[i], want.Reports[i]
		if g.Cluster != w.Cluster || g.Scenarios != w.Scenarios || g.Round != w.Round ||
			g.FirstScenario != w.FirstScenario || math.Float64bits(g.Makespan) != math.Float64bits(w.Makespan) {
			t.Fatalf("%s: report %d is %+v, want %+v", tag, i, g, w)
		}
	}
}

// TestCrossVersionMatrix runs the same campaign through every client
// generation against a v4 daemon — a pre-versioning (v0) client, raw v1,
// v2 and v3 gob clients, and the real v4 client on the binary codec — and
// demands every combination negotiates its own version and produces a
// bit-identical campaign.
func TestCrossVersionMatrix(t *testing.T) {
	f := startFabric(t, testConfig(), 3)
	addr := f.Sched.Addr()
	app := core.Application{Scenarios: 6, Months: 12}

	// Baseline: the v4 client, twice — the first submit-wait exchange runs
	// over the legacy codec (unknown peer), learns the daemon speaks v4,
	// and the second runs on binary framing end to end.
	client := &Client{Addr: addr}
	want, err := client.RunContext(context.Background(), app, core.NameKnapsack, SubmitMeta{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	verifyReports(t, f, app, core.NameKnapsack, want)
	if got := diet.PeerVersion(addr); got < diet.ProtocolV4 {
		t.Fatalf("after a v4 exchange the peer cache holds %d, want >= %d", got, diet.ProtocolV4)
	}
	binRes, err := client.RunContext(context.Background(), app, core.NameKnapsack, SubmitMeta{}, nil, nil)
	if err != nil {
		t.Fatalf("binary-codec campaign: %v", err)
	}
	sameCampaignOutcome(t, "v4-binary vs v4-legacy", binRes, want)

	// Every legacy generation against the same daemon.
	for _, v := range []int{0, diet.ProtocolV1, diet.ProtocolV2, diet.ProtocolV3} {
		frames := submitRaw(t, addr, v, &diet.SubmitRequest{
			Scenarios: app.Scenarios, Months: app.Months, Heuristic: core.NameKnapsack,
			Wait: true, Progress: true,
		})
		if len(frames) < 2 {
			t.Fatalf("v%d client got %d frames", v, len(frames))
		}
		wantVer := v
		if v == 0 {
			wantVer = diet.ProtocolV1
		}
		if frames[0].Version != wantVer {
			t.Fatalf("v%d client negotiated %d, want %d", v, frames[0].Version, wantVer)
		}
		final := frames[len(frames)-1]
		if final.Result == nil || final.Result.Status != diet.CampaignDone {
			t.Fatalf("v%d campaign did not complete: %+v", v, final)
		}
		sameCampaignOutcome(t, "v"+string(rune('0'+v))+" vs v4", final.Result, want)
		// Pre-v2 clients must see no progress frames at all.
		if wantVer < diet.ProtocolV2 && len(frames) != 2 {
			t.Fatalf("v%d client got %d frames, want verdict + result", v, len(frames))
		}
	}
}

// TestBinaryConnSpeaksV4 proves the daemon really serves the binary codec
// on its one port: a raw frame exchange negotiates v4 and answers stats.
func TestBinaryConnSpeaksV4(t *testing.T) {
	f := startFabric(t, testConfig(), 1)
	conn, err := net.Dial("tcp", f.Sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	if err := diet.WriteRequestFrame(conn, &diet.Request{
		Version: diet.ProtocolVersion, Kind: diet.KindStats, Stats: &diet.StatsRequest{},
	}); err != nil {
		t.Fatal(err)
	}
	dec := &diet.FrameDecoder{Retain: true}
	resp, err := dec.ReadResponse(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != diet.ProtocolVersion {
		t.Fatalf("binary connection negotiated %d, want %d", resp.Version, diet.ProtocolVersion)
	}
	if resp.Stats == nil {
		t.Fatalf("no stats in binary response: %+v", resp)
	}
}

// TestSubmitCompatAcrossV4V5 pins the staged-rollout rows the v5 Code
// field could break: a current client against a daemon capped at protocol
// v4, and a raw v4 binary client against a current daemon. In both mixed
// pairings the submit verdict must round-trip over binary framing — the
// v5 field stays off the wire, because the strict binary decoder rejects
// any trailing bytes.
func TestSubmitCompatAcrossV4V5(t *testing.T) {
	cfg := testConfig()
	cfg.MaxProtocol = diet.ProtocolV4
	f := startFabric(t, cfg, 3)
	addr := f.Sched.Addr()
	app := core.Application{Scenarios: 6, Months: 12}

	// Current client, v4-capped daemon. The first campaign runs over legacy
	// gob (unknown peer) and caches the daemon's v4 answer; the second runs
	// on binary framing, where the daemon must emit byte-exact v4 submit
	// verdicts a strict reader accepts.
	client := &Client{Addr: addr, Timeout: 30 * time.Second}
	want, err := client.RunContext(context.Background(), app, core.NameKnapsack, SubmitMeta{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := diet.PeerVersion(addr); got != diet.ProtocolV4 {
		t.Fatalf("peer cache holds %d after talking to a v4-capped daemon, want %d", got, diet.ProtocolV4)
	}
	binRes, err := client.RunContext(context.Background(), app, core.NameKnapsack, SubmitMeta{}, nil, nil)
	if err != nil {
		t.Fatalf("binary campaign against a v4-capped daemon: %v", err)
	}
	sameCampaignOutcome(t, "current client vs v4 daemon", binRes, want)

	// Raw v4 binary client, current daemon: the negotiated version is v4, so
	// the verdict frame must end at QueueDepth — a smuggled Code field would
	// fail this strict decode with trailing payload bytes.
	f2 := startFabric(t, testConfig(), 1)
	conn, err := net.Dial("tcp", f2.Sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	if err := diet.WriteRequestFrame(conn, &diet.Request{
		Version: diet.ProtocolV4, Kind: diet.KindSubmit, Submit: &diet.SubmitRequest{
			Scenarios: 2, Months: 6, Heuristic: core.NameKnapsack,
		},
	}); err != nil {
		t.Fatal(err)
	}
	dec := &diet.FrameDecoder{Retain: true}
	resp, err := dec.ReadResponse(conn)
	if err != nil {
		t.Fatalf("v4 binary client decoding a current daemon's verdict: %v", err)
	}
	if resp.Version != diet.ProtocolV4 {
		t.Fatalf("v4 binary submit negotiated %d, want %d", resp.Version, diet.ProtocolV4)
	}
	if resp.Submit == nil || !resp.Submit.Accepted {
		t.Fatalf("v4 binary submit rejected: %+v", resp)
	}
	if resp.Submit.Code != "" {
		t.Fatalf("v4 verdict carried code %q", resp.Submit.Code)
	}
}

// TestV4ClientAgainstV3Daemon covers the downgrade row of the matrix: a
// daemon capped at protocol v3 (a stand-in for a pre-v4 build — it refuses
// binary connections outright) serves a current client, which negotiates
// down, stays on the legacy codec, and gets a bit-identical campaign. Then
// a poisoned version cache (claiming the daemon speaks v4) self-heals: the
// dropped binary connection downgrades the cache and the retry succeeds.
func TestV4ClientAgainstV3Daemon(t *testing.T) {
	cfg := testConfig()
	cfg.MaxProtocol = diet.ProtocolV3
	f := startFabric(t, cfg, 3)
	addr := f.Sched.Addr()
	app := core.Application{Scenarios: 6, Months: 12}

	client := &Client{Addr: addr, Timeout: 10 * time.Second}
	var verdictVer int
	res, err := client.RunContext(context.Background(), app, core.NameKnapsack, SubmitMeta{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	verifyReports(t, f, app, core.NameKnapsack, res)
	if got := diet.PeerVersion(addr); got != diet.ProtocolV3 {
		t.Fatalf("peer cache holds %d after talking to a v3 daemon, want %d", got, diet.ProtocolV3)
	}

	// Reference outcome from a raw v3 client.
	frames := submitRaw(t, addr, diet.ProtocolV3, &diet.SubmitRequest{
		Scenarios: app.Scenarios, Months: app.Months, Heuristic: core.NameKnapsack, Wait: true,
	})
	final := frames[len(frames)-1]
	if final.Result == nil {
		t.Fatalf("raw v3 campaign returned no result: %+v", final)
	}
	verdictVer = frames[0].Version
	if verdictVer != diet.ProtocolV3 {
		t.Fatalf("v3 daemon answered version %d", verdictVer)
	}
	sameCampaignOutcome(t, "v4-client vs v3-client on v3 daemon", res, final.Result)

	// Poison the cache: claim the daemon speaks v4. The next exchange opens
	// a binary connection, which the capped daemon drops on sniff; the
	// failure must downgrade the cache so the follow-up heals onto gob.
	diet.RecordPeerVersion(addr, diet.ProtocolV4)
	_, err = client.StatsContext(context.Background())
	if err == nil {
		t.Fatal("binary exchange against a v3 daemon unexpectedly succeeded")
	}
	if got := diet.PeerVersion(addr); got >= diet.ProtocolV4 {
		t.Fatalf("failed binary exchange left the cache at %d", got)
	}
	if _, err := client.StatsContext(context.Background()); err != nil {
		t.Fatalf("exchange after self-heal: %v", err)
	}
	if _, err := client.RunContext(context.Background(), app, core.NameKnapsack, SubmitMeta{}, nil, nil); err != nil {
		t.Fatalf("campaign after self-heal: %v", err)
	}
}
